// Socket-transport latency microbench: what a real process boundary
// costs the balancer, measured on the two traffic shapes that matter.
//
//   - socket_rtt  (n=2): message round-trip over the framed stream
//     socket path — send, frame-encode, kernel, frame-decode, match —
//     the per-hop cost every transfer packet pays twice.
//   - socket_txn  (n=4): one balancing transaction's worth of traffic,
//     as the SPMD runtime shapes it: two 4-rank gather rounds (the
//     replicated trigger + load collectives) plus one point-to-point
//     transfer with a deadline-guarded receive.
//
// Ranks are real forked processes over Unix-domain sockets (--tcp for
// the TCP loopback backend); the measuring rank reports through the
// rendezvous directory.  Rows land in BENCH_core.json's shape so
// tools/perf_check.sh gates them like every other hot-path metric.
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "mp/process_group.hpp"
#include "mp/remote_comm.hpp"
#include "mp/socket_transport.hpp"
#include "obs/metrics.hpp"
#include "support/check.hpp"

using namespace dlb;

namespace {

using Clock = std::chrono::steady_clock;

// One leg's outcome: the latency plus the delivered wire traffic the
// measuring rank observed on its hottest incoming link.  The counts
// are exact, not sampled — the protocol blocks until every frame is
// through, so messages == what the shape dictates and bytes/messages
// is the deterministic framing overhead the perf gate pins.
struct LegResult {
  double us = 0.0;
  std::uint64_t link_messages = 0;
  std::uint64_t link_bytes = 0;
};

LegResult read_reported(const std::string& path) {
  std::ifstream in(path);
  LegResult r;
  DLB_ENSURE(static_cast<bool>(in >> r.us >> r.link_messages >>
                               r.link_bytes) &&
                 r.us >= 0.0,
             "measuring rank reported nothing");
  return r;
}

void report_leg(const std::string& path, double us,
                obs::MetricsRegistry& reg, int from) {
  const std::string link = "mp.link." + std::to_string(from) + "->0";
  std::ofstream(path) << us << " "
                      << reg.counter(link + ".messages").value() << " "
                      << reg.counter(link + ".bytes").value() << "\n";
}

LegResult time_rtt(bool tcp, int pings) {
  const std::string dir = ProcessGroup::make_rendezvous_dir();
  const std::string report = dir + "/measured_us";
  auto group = ProcessGroup::spawn(2, [&dir, &report, tcp, pings](int r) {
    SocketOptions opts;
    opts.dir = dir;
    opts.tcp = tcp;
    SocketTransport t(r, 2, opts);
    obs::MetricsRegistry reg;
    if (r == 0) t.attach_obs(SocketObs{nullptr, &reg});
    const std::int64_t word[1] = {42};
    const int warmup = pings / 10 + 1;
    if (r == 0) {
      for (int i = 0; i < warmup; ++i) {
        t.send(1, 1, word, 1);
        t.recv(1, 2);
      }
      const auto t0 = Clock::now();
      for (int i = 0; i < pings; ++i) {
        t.send(1, 1, word, 1);
        t.recv(1, 2);
      }
      const double us =
          std::chrono::duration<double, std::micro>(Clock::now() - t0)
              .count() /
          pings;
      report_leg(report, us, reg, 1);
    } else {
      for (int i = 0; i < warmup + pings; ++i) {
        t.recv(0, 1);
        t.send(0, 2, word, 1);
      }
    }
    t.close();
    return 0;
  });
  DLB_ENSURE(group.wait_all(std::chrono::milliseconds(120000)),
             "rtt bench did not finish");
  const LegResult res = read_reported(report);
  ProcessGroup::remove_rendezvous_dir(dir);
  return res;
}

LegResult time_txn(bool tcp, int rounds) {
  constexpr int kRanks = 4;
  const std::string dir = ProcessGroup::make_rendezvous_dir();
  const std::string report = dir + "/measured_us";
  auto group = ProcessGroup::spawn(kRanks, [&dir, &report, tcp,
                                            rounds](int r) {
    SocketOptions opts;
    opts.dir = dir;
    opts.tcp = tcp;
    SocketTransport t(r, kRanks, opts);
    obs::MetricsRegistry reg;
    if (r == 0) t.attach_obs(SocketObs{nullptr, &reg});
    SocketComm comm(t, SocketCommConfig{});
    const int next = (r + 1) % kRanks;
    const int prev = (r + kRanks - 1) % kRanks;
    GatherResult gathered;
    const auto txn = [&] {
      comm.allgather_checked(17, gathered);  // trigger round
      comm.allgather_checked(23, gathered);  // load round
      comm.send(next, 100, {1});
      const auto transfer =
          comm.recv_for(prev, 100, std::chrono::milliseconds(1000));
      DLB_ENSURE(transfer.has_value(), "transfer lost on a clean network");
    };
    const int warmup = rounds / 10 + 1;
    for (int i = 0; i < warmup; ++i) txn();
    const auto t0 = Clock::now();
    for (int i = 0; i < rounds; ++i) txn();
    if (r == 0) {
      const double us =
          std::chrono::duration<double, std::micro>(Clock::now() - t0)
              .count() /
          rounds;
      // The hottest incoming link at rank 0 is prev->0: two gather
      // contributions plus the ring transfer per transaction.
      report_leg(report, us, reg, prev);
    }
    comm.close();
    return 0;
  });
  DLB_ENSURE(group.wait_all(std::chrono::milliseconds(240000)),
             "txn bench did not finish");
  const LegResult res = read_reported(report);
  ProcessGroup::remove_rendezvous_dir(dir);
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opts;
  opts.add_int("pings", 2000, "round trips to time (rtt leg)")
      .add_int("rounds", 400, "balance transactions to time (txn leg)")
      .add_flag("tcp", "TCP loopback instead of Unix-domain sockets")
      .add_string("json_out", "", "write the measured rows as JSON "
                                  "(BENCH_core.json shape)");
  if (!opts.parse(argc, argv)) return 1;
  const bool tcp = opts.get_flag("tcp");

  bench::print_header(
      "socket transport latency (rtt + balance transaction)",
      "engineering extension: the cost of a real process boundary under "
      "the transputer-style message protocol");

  const LegResult rtt =
      time_rtt(tcp, static_cast<int>(opts.get_int("pings")));
  const LegResult txn =
      time_txn(tcp, static_cast<int>(opts.get_int("rounds")));
  const auto per_msg = [](const LegResult& r) {
    return r.link_messages == 0
               ? 0.0
               : static_cast<double>(r.link_bytes) /
                     static_cast<double>(r.link_messages);
  };

  TextTable table(
      {"workload", "ranks", "latency us", "link msgs", "wire B/msg"});
  table.row().cell("socket_rtt").cell(std::size_t{2}).cell(rtt.us, 1)
      .cell(static_cast<std::size_t>(rtt.link_messages))
      .cell(per_msg(rtt), 1);
  table.row().cell("socket_txn").cell(std::size_t{4}).cell(txn.us, 1)
      .cell(static_cast<std::size_t>(txn.link_messages))
      .cell(per_msg(txn), 1);
  table.print(std::cout);
  std::cout << "\ntransport: " << (tcp ? "tcp loopback" : "unix-domain")
            << "; txn = two 4-rank gather rounds + one deadline-guarded "
               "p2p transfer; link columns = delivered traffic on the "
               "measuring rank's hottest incoming link (exact, so the "
               "perf gate pins wire overhead)\n";

  bench::JsonRows json;
  json.row()
      .set("workload", "socket_rtt")
      .set("n", std::int64_t{2})
      .set("rtt_us", rtt.us)
      .set("link_messages", static_cast<std::int64_t>(rtt.link_messages))
      .set("link_bytes", static_cast<std::int64_t>(rtt.link_bytes))
      .set("wire_bytes_per_msg", per_msg(rtt));
  json.row()
      .set("workload", "socket_txn")
      .set("n", std::int64_t{4})
      .set("txn_us", txn.us)
      .set("link_messages", static_cast<std::int64_t>(txn.link_messages))
      .set("link_bytes", static_cast<std::int64_t>(txn.link_bytes))
      .set("wire_bytes_per_msg", per_msg(txn));
  const std::string json_out = opts.get_string("json_out");
  if (!json_out.empty() && json.write_file(json_out))
    std::cout << "(json written to " << json_out << ")\n";
  return 0;
}
