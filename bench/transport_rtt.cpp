// Socket-transport latency microbench: what a real process boundary
// costs the balancer, measured on the two traffic shapes that matter.
//
//   - socket_rtt  (n=2): message round-trip over the framed stream
//     socket path — send, frame-encode, kernel, frame-decode, match —
//     the per-hop cost every transfer packet pays twice.
//   - socket_txn  (n=4): one balancing transaction's worth of traffic,
//     as the SPMD runtime shapes it: two 4-rank gather rounds (the
//     replicated trigger + load collectives) plus one point-to-point
//     transfer with a deadline-guarded receive.
//
// Ranks are real forked processes over Unix-domain sockets (--tcp for
// the TCP loopback backend); the measuring rank reports through the
// rendezvous directory.  Rows land in BENCH_core.json's shape so
// tools/perf_check.sh gates them like every other hot-path metric.
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "mp/process_group.hpp"
#include "mp/remote_comm.hpp"
#include "mp/socket_transport.hpp"
#include "support/check.hpp"

using namespace dlb;

namespace {

using Clock = std::chrono::steady_clock;

double read_reported_us(const std::string& path) {
  std::ifstream in(path);
  double us = -1.0;
  DLB_ENSURE(static_cast<bool>(in >> us) && us >= 0.0,
             "measuring rank reported nothing");
  return us;
}

double time_rtt(bool tcp, int pings) {
  const std::string dir = ProcessGroup::make_rendezvous_dir();
  const std::string report = dir + "/measured_us";
  auto group = ProcessGroup::spawn(2, [&dir, &report, tcp, pings](int r) {
    SocketOptions opts;
    opts.dir = dir;
    opts.tcp = tcp;
    SocketTransport t(r, 2, opts);
    const std::int64_t word[1] = {42};
    const int warmup = pings / 10 + 1;
    if (r == 0) {
      for (int i = 0; i < warmup; ++i) {
        t.send(1, 1, word, 1);
        t.recv(1, 2);
      }
      const auto t0 = Clock::now();
      for (int i = 0; i < pings; ++i) {
        t.send(1, 1, word, 1);
        t.recv(1, 2);
      }
      const double us =
          std::chrono::duration<double, std::micro>(Clock::now() - t0)
              .count() /
          pings;
      std::ofstream(report) << us << "\n";
    } else {
      for (int i = 0; i < warmup + pings; ++i) {
        t.recv(0, 1);
        t.send(0, 2, word, 1);
      }
    }
    t.close();
    return 0;
  });
  DLB_ENSURE(group.wait_all(std::chrono::milliseconds(120000)),
             "rtt bench did not finish");
  const double us = read_reported_us(report);
  ProcessGroup::remove_rendezvous_dir(dir);
  return us;
}

double time_txn(bool tcp, int rounds) {
  constexpr int kRanks = 4;
  const std::string dir = ProcessGroup::make_rendezvous_dir();
  const std::string report = dir + "/measured_us";
  auto group = ProcessGroup::spawn(kRanks, [&dir, &report, tcp,
                                            rounds](int r) {
    SocketOptions opts;
    opts.dir = dir;
    opts.tcp = tcp;
    SocketTransport t(r, kRanks, opts);
    SocketComm comm(t, SocketCommConfig{});
    const int next = (r + 1) % kRanks;
    const int prev = (r + kRanks - 1) % kRanks;
    GatherResult gathered;
    const auto txn = [&] {
      comm.allgather_checked(17, gathered);  // trigger round
      comm.allgather_checked(23, gathered);  // load round
      comm.send(next, 100, {1});
      const auto transfer =
          comm.recv_for(prev, 100, std::chrono::milliseconds(1000));
      DLB_ENSURE(transfer.has_value(), "transfer lost on a clean network");
    };
    const int warmup = rounds / 10 + 1;
    for (int i = 0; i < warmup; ++i) txn();
    const auto t0 = Clock::now();
    for (int i = 0; i < rounds; ++i) txn();
    if (r == 0) {
      const double us =
          std::chrono::duration<double, std::micro>(Clock::now() - t0)
              .count() /
          rounds;
      std::ofstream(report) << us << "\n";
    }
    comm.close();
    return 0;
  });
  DLB_ENSURE(group.wait_all(std::chrono::milliseconds(240000)),
             "txn bench did not finish");
  const double us = read_reported_us(report);
  ProcessGroup::remove_rendezvous_dir(dir);
  return us;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opts;
  opts.add_int("pings", 2000, "round trips to time (rtt leg)")
      .add_int("rounds", 400, "balance transactions to time (txn leg)")
      .add_flag("tcp", "TCP loopback instead of Unix-domain sockets")
      .add_string("json_out", "", "write the measured rows as JSON "
                                  "(BENCH_core.json shape)");
  if (!opts.parse(argc, argv)) return 1;
  const bool tcp = opts.get_flag("tcp");

  bench::print_header(
      "socket transport latency (rtt + balance transaction)",
      "engineering extension: the cost of a real process boundary under "
      "the transputer-style message protocol");

  const double rtt_us =
      time_rtt(tcp, static_cast<int>(opts.get_int("pings")));
  const double txn_us =
      time_txn(tcp, static_cast<int>(opts.get_int("rounds")));

  TextTable table({"workload", "ranks", "latency us"});
  table.row().cell("socket_rtt").cell(std::size_t{2}).cell(rtt_us, 1);
  table.row().cell("socket_txn").cell(std::size_t{4}).cell(txn_us, 1);
  table.print(std::cout);
  std::cout << "\ntransport: " << (tcp ? "tcp loopback" : "unix-domain")
            << "; txn = two 4-rank gather rounds + one deadline-guarded "
               "p2p transfer\n";

  bench::JsonRows json;
  json.row()
      .set("workload", "socket_rtt")
      .set("n", std::int64_t{2})
      .set("rtt_us", rtt_us);
  json.row()
      .set("workload", "socket_txn")
      .set("n", std::int64_t{4})
      .set("txn_us", txn_us);
  const std::string json_out = opts.get_string("json_out");
  if (!json_out.empty() && json.write_file(json_out))
    std::cout << "(json written to " << json_out << ")\n";
  return 0;
}
