// Ablation: locality-aware partner choice (the paper's "further research"
// direction) — partners drawn from a topology neighborhood instead of the
// whole network.
//
// The paper's model assumes distance-free O(1) balancing operations
// (wormhole routing); on a real interconnect each migrated packet pays
// hop costs.  Restricting partners to a radius-r ball cuts hops per
// packet at the price of balancing quality — this bench quantifies the
// tradeoff on ring, torus, hypercube and de Bruijn networks of 64 nodes.
#include <iostream>

#include "bench_common.hpp"
#include "core/system.hpp"
#include "metrics/imbalance.hpp"
#include "support/stats.hpp"

using namespace dlb;

namespace {

struct Result {
  double cov = 0.0;
  double hops_per_packet = 0.0;
  double ops = 0.0;
};

Result run_one(const Topology& topo, bool local, unsigned radius,
               std::uint32_t runs, std::uint32_t steps, Rng& seeder) {
  RunningMoments cov;
  RunningMoments hops;
  RunningMoments ops;
  for (std::uint32_t r = 0; r < runs; ++r) {
    BalancerConfig cfg;
    cfg.f = 1.1;
    cfg.delta = 2;
    System sys(topo.size(), cfg, seeder.next(), &topo);
    if (local) sys.restrict_partners_to_neighborhood(radius);
    Rng wl_rng = seeder.split();
    const Workload wl = Workload::paper_benchmark(
        topo.size(), steps, WorkloadParams{}, wl_rng);
    sys.run(wl);
    cov.add(measure_imbalance(sys.loads()).cov);
    hops.add(sys.costs().hops_per_packet());
    ops.add(static_cast<double>(sys.balance_operations()));
  }
  return Result{cov.mean(), hops.mean(), ops.mean()};
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opts;
  opts.add_int("steps", 400, "global time steps")
      .add_int("runs", 15, "runs per configuration")
      .add_int("radius", 2, "neighborhood radius for local partner choice")
      .add_int("seed", 1993, "master seed");
  if (!opts.parse(argc, argv)) return 1;
  const auto steps = static_cast<std::uint32_t>(opts.get_int("steps"));
  const auto runs = static_cast<std::uint32_t>(opts.get_int("runs"));
  const auto radius = static_cast<unsigned>(opts.get_int("radius"));
  Rng seeder(static_cast<std::uint64_t>(opts.get_int("seed")));

  bench::print_header(
      "Ablation — global random partners vs topology neighborhoods",
      "local partners cut hops/packet, cost some balance quality; the gap "
      "shrinks on low-diameter networks");

  TextTable table({"topology", "diameter", "partners", "final CoV",
                   "hops/packet", "balance ops"});
  const Topology topologies[] = {
      Topology::ring(64), Topology::torus2d(8, 8), Topology::hypercube(6),
      Topology::de_bruijn(6)};
  for (const Topology& topo : topologies) {
    for (bool local : {false, true}) {
      const Result res = run_one(topo, local, radius, runs, steps, seeder);
      table.row()
          .cell(to_string(topo.kind()))
          .cell(static_cast<std::size_t>(topo.diameter()))
          .cell(local ? ("ball r=" + std::to_string(radius)) : "global")
          .cell(res.cov, 3)
          .cell(res.hops_per_packet, 2)
          .cell(res.ops, 0);
    }
  }
  table.print(std::cout);
  return 0;
}
