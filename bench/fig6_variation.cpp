// Figure 6: variation density of a non-generating processor in the
// one-processor-generator model, for delta in {1, 2, 4}, f in {1.1, 1.2},
// processor counts {2..10, 15, 20, 25, 30, 35} and up to 150 balancing
// steps.
//
// The paper computes these curves with an O(p^2 t^3) recursion over
// computation graphs; we use the exact O(t) moment recursion ([D8] in
// DESIGN.md) and cross-check selected points against a Monte-Carlo run of
// the real integer algorithm.
//
// Paper expectation: the variation density is small (< ~1), converges
// quickly in both t and n, decreases with delta and increases with f.
#include <iostream>

#include "bench_common.hpp"
#include "support/plot.hpp"
#include "theory/variation.hpp"

using namespace dlb;

int main(int argc, char** argv) {
  CliOptions opts;
  opts.add_int("steps", 150, "balancing steps (x-axis of Figure 6)")
      .add_int("mc_runs", 300, "Monte-Carlo runs for the cross-check")
      .add_int("seed", 1993, "master seed");
  if (!opts.parse(argc, argv)) return 1;
  const auto steps = static_cast<std::uint32_t>(opts.get_int("steps"));
  const auto mc_runs = static_cast<std::uint32_t>(opts.get_int("mc_runs"));
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed"));

  bench::print_header(
      "Figure 6 — variation density",
      "VD is small, converges quickly in t and n; lower for larger delta, "
      "higher for larger f");

  const std::uint32_t ns[] = {2,  3,  4,  5,  6,  7,  8,
                              9,  10, 15, 20, 25, 30, 35};

  for (double f : {1.1, 1.2}) {
    for (std::uint32_t delta : {1u, 2u, 4u}) {
      TextTable table({"n", "VD@10", "VD@50", "VD@100", "VD@150",
                       "ratio@150"});
      for (std::uint32_t n : ns) {
        if (delta >= n) continue;
        VariationParams p;
        p.n = n;
        p.delta = delta;
        p.f = f;
        VariationRecursion rec(p);
        double vd10 = 0.0;
        double vd50 = 0.0;
        double vd100 = 0.0;
        for (std::uint32_t t = 1; t <= steps; ++t) {
          rec.step();
          if (t == 10) vd10 = rec.vd_other();
          if (t == 50) vd50 = rec.vd_other();
          if (t == 100) vd100 = rec.vd_other();
        }
        table.row()
            .cell(static_cast<std::size_t>(n))
            .cell(vd10, 4)
            .cell(vd50, 4)
            .cell(vd100, 4)
            .cell(rec.vd_other(), 4)
            .cell(rec.ratio(), 4);
      }
      std::cout << "-- delta=" << delta << " f=" << f
                << " (exact recursion) --\n";
      table.print(std::cout);
      std::cout << '\n';
    }
  }

  // The Figure 6 curves themselves (n = 20), as ASCII plots.
  std::cout << "-- Figure 6 curves, n=20: VD vs balancing steps --\n";
  {
    std::vector<PlotSeries> curves;
    const char glyphs[] = {'1', '2', '4', 'a', 'b', 'c'};
    std::size_t g = 0;
    for (double f : {1.1, 1.2}) {
      for (std::uint32_t delta : {1u, 2u, 4u}) {
        VariationParams p;
        p.n = 20;
        p.delta = delta;
        p.f = f;
        VariationRecursion rec(p);
        PlotSeries series;
        series.label =
            "d=" + std::to_string(delta) + ",f=" + format_double(f, 1);
        series.glyph = glyphs[g++ % sizeof(glyphs)];
        series.values.push_back(rec.vd_other());
        for (std::uint32_t t = 1; t <= steps; ++t) {
          rec.step();
          series.values.push_back(rec.vd_other());
        }
        curves.push_back(std::move(series));
      }
    }
    PlotOptions plot_opts;
    plot_opts.y_label = "variation density";
    render_plot(std::cout, curves, plot_opts);
    std::cout << '\n';
  }

  // Monte-Carlo cross-check of the real integer algorithm at a few points.
  std::cout << "-- Monte-Carlo cross-check (real algorithm, " << mc_runs
            << " runs, 40 balancing steps) --\n";
  TextTable mc_table({"n", "delta", "f", "VD exact", "VD MC", "rel err"});
  struct Point {
    std::uint32_t n;
    std::uint32_t delta;
    double f;
  };
  for (const Point& pt : {Point{10, 1, 1.1}, Point{20, 1, 1.2},
                          Point{20, 2, 1.1}, Point{35, 4, 1.2}}) {
    VariationParams p;
    p.n = pt.n;
    p.delta = pt.delta;
    p.f = pt.f;
    VariationRecursion rec(p);
    rec.advance(40);
    const auto mc = estimate_variation_mc(p, 40, mc_runs, seed, 2000);
    const double rel =
        rec.vd_other() > 0
            ? (mc.vd_other - rec.vd_other()) / rec.vd_other()
            : 0.0;
    mc_table.row()
        .cell(static_cast<std::size_t>(pt.n))
        .cell(static_cast<std::size_t>(pt.delta))
        .cell(pt.f, 1)
        .cell(rec.vd_other(), 4)
        .cell(mc.vd_other, 4)
        .cell(rel, 3);
  }
  mc_table.print(std::cout);

  // Relaxed delta > 1 algorithm (the variant the paper's recursion
  // evaluates for delta > 1).
  std::cout << "\n-- relaxed delta>1 algorithm (delta sequential pairwise "
               "balances) --\n";
  TextTable relaxed({"delta", "f", "VD@150 exact", "VD@150 relaxed"});
  for (std::uint32_t delta : {2u, 4u}) {
    for (double f : {1.1, 1.2}) {
      VariationParams p;
      p.n = 20;
      p.delta = delta;
      p.f = f;
      VariationRecursion exact(p);
      p.relaxed_pairwise = true;
      VariationRecursion rel(p);
      exact.advance(150);
      rel.advance(150);
      relaxed.row()
          .cell(static_cast<std::size_t>(delta))
          .cell(f, 1)
          .cell(exact.vd_other(), 4)
          .cell(rel.vd_other(), 4);
    }
  }
  relaxed.print(std::cout);
  return 0;
}
