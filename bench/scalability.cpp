// Scalability: the paper's claim that the balancing quality is
// independent of the network size ("achieves very good performance even
// on networks containing up to 1024 processors"; Theorems 2/4 are
// n-free).
//
// We sweep n from 16 to 65536 and measure, on the §7 workload scaled to
// each size, (a) the cross-processor coefficient of variation at the end
// of the run, (b) the producer/rest ratio in the one-producer model vs
// the n-free bound δ/(δ+1−f), and (c) wall-clock per simulated step (the
// simulator's own scalability).
//
// Expectation: (a) and (b) flat or improving in n, always under the
// bound; (c) grows only with the event loop (O(n) per step) — balancing
// work is O(δ · active classes) per operation since the sparse-class fast
// path, so us/step should grow far slower than the old O(n·δ) regime.
//
// Sizes n ≥ 16384 only became reachable with the O(active) sparse ledger
// (dense ledgers would cost O(n²) bytes — ~64 GB at n = 65536); they run
// a shortened horizon (≤ 50 steps, 1 run) because the point there is
// per-step cost and memory feasibility, not end-state quality, and the
// one-producer ratio is skipped: its 40·n-step horizon is infeasible and
// the bound it checks is n-free anyway.
#include <algorithm>
#include <fstream>
#include <iostream>

#include "bench_common.hpp"
#include "core/system.hpp"
#include "metrics/imbalance.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"
#include "support/stats.hpp"
#include "theory/operators.hpp"
#include "workload/serving.hpp"

using namespace dlb;

namespace {

// ---- Serving sweep (--workload serving) -------------------------------
//
// The Zipf serving workload compiles into the same phase schedule the
// engines already consume, so this sweep answers: does the skewed,
// bursty demand change the engines' per-step cost or the end-state
// balance quality as n grows?  Rows are keyed "serving_step" and carry
// step_us per engine plus the final CoV — timing columns, so the perf
// gate machinery could pick them up, but the gate's fixed invocation
// runs the sparse sweep only and never produces these rows.
int run_serving_sweep(const CliOptions& opts, Rng& master,
                      bench::JsonRows& json) {
  const auto steps =
      std::min(static_cast<std::uint32_t>(opts.get_int("steps")), 200u);
  const auto max_n = static_cast<std::uint32_t>(opts.get_int("max_n"));
  const auto shards = static_cast<std::uint32_t>(opts.get_int("shards"));
  const double alpha = std::stod(opts.get_string("alpha"));
  const auto sessions =
      static_cast<std::uint64_t>(opts.get_int("sessions"));

  bench::print_header(
      "Serving workload sweep — Zipf skew through all engines",
      "skewed bursty demand: balance quality stays flat in n, step cost "
      "tracks the active set");

  TextTable table({"n", "serial us/step", "parallel us/step",
                   "async us/step", "final CoV", "end backlog/proc"});
  for (std::uint32_t n = 64; n <= std::min(max_n, 16384u); n *= 4) {
    ServingParams params;
    params.alpha = alpha;
    params.sessions = sessions;
    const Workload wl = ServingWorkload::build(n, steps, params,
                                               master.next());
    BalancerConfig cfg;
    cfg.f = 1.1;
    cfg.delta = 2;
    const auto time_run = [&](auto&& drive) {
      double best = 0.0;
      for (int rep = 0; rep < 3; ++rep) {
        System sys(n, cfg, 20260809);
        const obs::Stopwatch watch;
        drive(sys);
        const double us = watch.elapsed_us() / static_cast<double>(steps);
        if (rep == 0 || us < best) best = us;
      }
      return best;
    };
    const double serial_us =
        time_run([&](System& sys) { sys.run(wl); });
    const double parallel_us =
        time_run([&](System& sys) { sys.run_parallel(wl, shards); });
    const double async_us = time_run(
        [&](System& sys) { sys.run_async(wl, std::min(shards, n)); });
    // One more serial pass to read end-state quality and leftover work.
    System sys(n, cfg, 20260809);
    sys.run(wl);
    const double cov = measure_imbalance(sys.loads()).cov;
    std::int64_t backlog = 0;
    for (const std::int64_t l : sys.loads()) backlog += l;
    const double backlog_per_proc =
        static_cast<double>(backlog) / static_cast<double>(n);
    table.row()
        .cell(static_cast<std::size_t>(n))
        .cell(serial_us, 1)
        .cell(parallel_us, 1)
        .cell(async_us, 1)
        .cell(cov, 3)
        .cell(backlog_per_proc, 2);
    json.row()
        .set("workload", "serving_step")
        .set("n", n)
        .set("alpha", alpha)
        .set("shards", shards)
        .set("step_us", serial_us)
        .set("parallel_us", parallel_us)
        .set("async_us", async_us)
        .set("final_cov", cov)
        .set("backlog_per_proc", backlog_per_proc);
  }
  table.print(std::cout);
  std::cout << "\n(all engines drive the same compiled serving schedule; "
               "the hot Zipf head keeps a few processors saturated, so "
               "the balancer — not the scheduler — determines how much "
               "backlog survives to the horizon.)\n";

  const std::string json_out = opts.get_string("json_out");
  if (!json_out.empty() && json.write_file(json_out))
    std::cout << "(json written to " << json_out << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opts;
  opts.add_int("steps", 300, "global time steps")
      .add_int("runs", 5, "runs per size")
      .add_int("max_n", 65536, "largest network size")
      .add_int("sparse_max_n", 1048576, "largest size for the sparse sweep")
      .add_int("active", 64, "active processors in the sparse sweep")
      .add_int("shards", 4, "threads for the run_parallel column")
      .add_int("trace_n", 65536, "network size for the instrumented run")
      .add_int("seed", 1993, "master seed")
      .add_string("engine", "all", "sparse-sweep engines to time: "
                                   "all|serial|lockstep|async")
      .add_string("workload", "paper", "paper (dense+sparse sweeps) or "
                                       "serving (Zipf serving sweep)")
      .add_string("alpha", "1.1", "serving sweep: Zipf exponent")
      .add_int("sessions", 2000000, "serving sweep: user-session universe")
      .add_string("json_out", "", "write the measured rows as JSON "
                                  "(BENCH_core.json shape)")
      .add_string("metrics_out", "", "write the instrumented run's metrics "
                                     "snapshot as JSON")
      .add_string("trace_out", "", "write the instrumented run's trace as "
                                   "Chrome trace-event JSON (Perfetto)");
  if (!opts.parse(argc, argv)) return 1;
  const std::string engine = opts.get_string("engine");
  const bool with_serial = engine == "all" || engine == "serial";
  const bool with_lockstep = engine == "all" || engine == "lockstep";
  const bool with_async = engine == "all" || engine == "async";
  if (!with_serial && !with_lockstep && !with_async) {
    std::cerr << "unknown --engine '" << engine
              << "' (expected all|serial|lockstep|async)\n";
    return 1;
  }
  const auto steps = static_cast<std::uint32_t>(opts.get_int("steps"));
  const auto runs = static_cast<std::uint32_t>(opts.get_int("runs"));
  const auto max_n = static_cast<std::uint32_t>(opts.get_int("max_n"));
  Rng master(static_cast<std::uint64_t>(opts.get_int("seed")));
  bench::JsonRows json;

  const std::string workload = opts.get_string("workload");
  if (workload == "serving") return run_serving_sweep(opts, master, json);
  if (workload != "paper") {
    std::cerr << "unknown --workload '" << workload
              << "' (expected paper|serving)\n";
    return 1;
  }

  bench::print_header(
      "Scalability — balance quality vs network size (Thms 2/4 are n-free)",
      "CoV and producer ratio flat in n; bound d/(d+1-f) holds at 4096");

  const double f = 1.1;
  const std::uint32_t delta = 2;
  const double bound = fixpoint_limit(delta, f);

  TextTable table({"n", "final CoV (paper wl)", "producer ratio",
                   "FIX(n,d,f)", "bound d/(d+1-f)", "us/step"});
  for (std::uint32_t n = 16; n <= max_n; n *= 4) {
    // Large sizes: shortened horizon, single run, no one-producer part
    // (see the header comment).
    const bool large = n >= 16384;
    const std::uint32_t run_steps = large ? std::min(steps, 50u) : steps;
    const std::uint32_t run_count = large ? 1 : runs;
    RunningMoments cov;
    RunningMoments ratio;
    double us_per_step = 0.0;
    for (std::uint32_t r = 0; r < run_count; ++r) {
      // (a) §7 workload quality.
      {
        BalancerConfig cfg;
        cfg.f = f;
        cfg.delta = delta;
        System sys(n, cfg, master.next());
        Rng wl_rng = master.split();
        const Workload wl = Workload::paper_benchmark(
            n, run_steps, WorkloadParams{}, wl_rng);
        const obs::Stopwatch watch;
        sys.run(wl);
        us_per_step += watch.elapsed_us() /
                       static_cast<double>(run_steps) /
                       static_cast<double>(run_count);
        cov.add(measure_imbalance(sys.loads()).cov);
      }
      // (b) one-producer ratio vs the n-free bound.  The horizon scales
      // with n so every processor ends with ~40 packets — at O(1)
      // packets per processor the ratio would measure integer
      // quantization, not the algorithm.
      if (!large) {
        BalancerConfig cfg;
        cfg.f = f;
        cfg.delta = delta;
        System sys(n, cfg, master.next());
        sys.run(Workload::one_producer(n, std::max(steps * 4, 40 * n)));
        RunningMoments others;
        for (std::uint32_t i = 1; i < n; ++i)
          others.add(static_cast<double>(sys.load(i)));
        if (others.mean() > 0)
          ratio.add(static_cast<double>(sys.load(0)) / others.mean());
      }
    }
    TextTable& row = table.row();
    row.cell(static_cast<std::size_t>(n)).cell(cov.mean(), 3);
    if (large) {
      row.cell("-");
    } else {
      row.cell(ratio.mean(), 3);
    }
    row.cell(fixpoint(ModelParams{static_cast<double>(n),
                                  static_cast<double>(delta), f}),
             3)
        .cell(bound, 3)
        .cell(us_per_step, 1);
    bench::JsonRows::Row& jrow = json.row();
    jrow.set("workload", "paper_quality")
        .set("n", n)
        .set("final_cov", cov.mean())
        .set("us_per_step", us_per_step);
    if (!large) jrow.set("producer_ratio", ratio.mean());
  }
  table.print(std::cout);
  std::cout << "\n(The ratio is sampled mid-growth-cycle, so compare it "
               "against f*FIX rather than FIX itself; it must stay below "
               "f*bound = "
            << format_double(f * bound, 3) << ".)\n";

  // ---- Event-batched step engine on sparse demand ----------------------
  //
  // The §7 workload keeps every processor inside a phase, so the table
  // above measures the dense regime.  Here only `active` processors have
  // phases: the batched driver's step cost is O(active + balancing) while
  // the reference loop still samples all n processors — the gap is the
  // point of the compiled schedule.  The reference column is skipped
  // above 2^16 (it is precisely the O(n) wall the batching removes); the
  // run_parallel column shards the same workload across threads; the
  // async columns run the barrier-free engine in its deterministic
  // epoch-fenced mode and its relaxed free-running mode.  --engine
  // restricts the sweep to one family (perf_check.sh uses this to time
  // each engine in isolation).
  const auto sparse_max_n =
      static_cast<std::uint32_t>(opts.get_int("sparse_max_n"));
  const auto active = static_cast<std::uint32_t>(opts.get_int("active"));
  const auto shards = static_cast<std::uint32_t>(opts.get_int("shards"));
  const std::uint32_t sparse_steps = 50;

  bench::print_header(
      "Event-batched stepping — sparse demand (active processors fixed)",
      "batched us/step flat in n; reference grows O(n); speedup >= 5x at "
      "n = 65536");

  TextTable sparse_table({"n", "active", "ref us/step", "batched us/step",
                          "speedup", "parallel us/step", "async us/step",
                          "relaxed us/step", "shards", "allocs/step",
                          "async allocs/step"});
  for (std::uint32_t n = 16384; n <= sparse_max_n; n *= 4) {
    BalancerConfig cfg;
    // f = 1.1 makes every load fluctuation trigger a balance, burying the
    // step loop (the thing this sweep measures) under balancing work that
    // is identical in both columns; f = 2 keeps balancing present but
    // proportionate.
    cfg.f = 2.0;
    cfg.delta = delta;
    const Workload wl =
        Workload::sparse_hotspot(n, sparse_steps, std::min(active, n),
                                 0.8, 0.5);
    // Best of three: one timed pass is a ~millisecond window, and on a
    // shared box a single scheduler preemption doubles it — the min is
    // the pass the perf gate can actually reproduce.
    const auto time_run = [&](auto&& drive) {
      double best = 0.0;
      for (int rep = 0; rep < 3; ++rep) {
        System sys(n, cfg, 20260807);
        const obs::Stopwatch watch;
        drive(sys);
        const double us =
            watch.elapsed_us() / static_cast<double>(sparse_steps);
        if (rep == 0 || us < best) best = us;
      }
      return best;
    };
    const bool with_reference = with_serial && n <= 65536;
    const double ref_us =
        with_reference
            ? time_run([&](System& sys) { sys.run_reference(wl); })
            : 0.0;
    const double batched_us =
        with_serial ? time_run([&](System& sys) { sys.run(wl); }) : 0.0;
    const double parallel_us =
        with_lockstep
            ? time_run([&](System& sys) { sys.run_parallel(wl, shards); })
            : 0.0;
    const std::uint32_t async_shards = std::min(shards, n);
    double async_us = 0.0;
    double relaxed_us = 0.0;
    if (with_async) {
      async_us = time_run(
          [&](System& sys) { sys.run_async(wl, async_shards); });
      AsyncOptions relaxed;
      relaxed.relaxed_order = true;
      relaxed_us = time_run([&](System& sys) {
        sys.run_async(wl, async_shards, relaxed);
      });
    }
    // ---- Alloc-instrumented pass (DESIGN.md §11) ---------------------
    //
    // Separate from the timed columns: each engine re-runs with metrics
    // attached and the zero-alloc opt-in (reserve_classes) on, and the
    // alloc.{count,warmup_end_step} publications collapse into one
    // allocs-per-step number — 0.0 when the allocator went quiet within
    // the first half of the horizon (the steady state is
    // allocation-free), count/steps otherwise.  A longer horizon than
    // the timed sweep so "half the horizon" is a real warmup budget.
    // Skipped above 2^16: the opt-in pre-sizes every ledger, and that
    // setup cost is the one part of the contract that scales with n.
    const std::uint32_t alloc_steps = 200;
    double serial_alloc = -1.0;
    double parallel_alloc = -1.0;
    double async_alloc = -1.0;
    double relaxed_alloc = -1.0;
    if (n <= 65536) {
      const Workload awl = Workload::sparse_hotspot(
          n, alloc_steps, std::min(active, n), 0.8, 0.5);
      const auto allocs_per_step = [&](const char* prefix,
                                       std::uint32_t warmup_units,
                                       auto&& drive) -> double {
        obs::MetricsRegistry registry;
        BalancerConfig acfg = cfg;
        // The class universe is the `active` producers' classes; 4x
        // headroom keeps ledger writes allocation-free (§11).
        acfg.reserve_classes = std::min(n, 4 * active);
        System sys(n, acfg, 20260807);
        sys.attach_metrics(&registry);
        drive(sys);
        const obs::MetricsSnapshot snap = registry.snapshot();
        const std::string p(prefix);
        const obs::MetricValue* count = snap.find(p + ".alloc.count");
        const obs::MetricValue* warmup =
            snap.find(p + ".alloc.warmup_end_step");
        if (count == nullptr || warmup == nullptr) return -1.0;
        if (warmup->value <= static_cast<std::int64_t>(warmup_units / 2))
          return 0.0;
        return static_cast<double>(count->value) /
               static_cast<double>(alloc_steps);
      };
      if (with_serial)
        serial_alloc = allocs_per_step(
            "system", alloc_steps, [&](System& sys) { sys.run(awl); });
      if (with_lockstep)
        parallel_alloc = allocs_per_step(
            "run_parallel", alloc_steps,
            [&](System& sys) { sys.run_parallel(awl, shards); });
      if (with_async) {
        // The epoch-fenced engine tallies per epoch, not per step, so
        // its warmup budget is in epochs.
        const AsyncOptions det;
        async_alloc = allocs_per_step(
            "async",
            (alloc_steps + det.epoch_steps - 1) / det.epoch_steps,
            [&](System& sys) { sys.run_async(awl, async_shards); });
        AsyncOptions relaxed_opts;
        relaxed_opts.relaxed_order = true;
        relaxed_alloc = allocs_per_step(
            "async", alloc_steps, [&](System& sys) {
              sys.run_async(awl, async_shards, relaxed_opts);
            });
      }
    }

    TextTable& row = sparse_table.row();
    row.cell(static_cast<std::size_t>(n))
        .cell(static_cast<std::size_t>(std::min(active, n)));
    if (with_reference) {
      row.cell(ref_us, 1);
    } else {
      row.cell("-");
    }
    if (with_serial) {
      row.cell(batched_us, 1);
    } else {
      row.cell("-");
    }
    if (with_reference) {
      row.cell(ref_us / batched_us, 1);
    } else {
      row.cell("-");
    }
    if (with_lockstep) {
      row.cell(parallel_us, 1);
    } else {
      row.cell("-");
    }
    if (with_async) {
      row.cell(async_us, 1).cell(relaxed_us, 1);
    } else {
      row.cell("-").cell("-");
    }
    row.cell(static_cast<std::size_t>(shards));
    if (serial_alloc >= 0.0) {
      row.cell(serial_alloc, 1);
    } else {
      row.cell("-");
    }
    if (async_alloc >= 0.0) {
      row.cell(async_alloc, 1);
    } else {
      row.cell("-");
    }
    if (with_serial || with_lockstep) {
      bench::JsonRows::Row& jrow = json.row();
      jrow.set("workload", "sparse_step")
          .set("n", n)
          .set("active", std::min(active, n))
          .set("shards", shards);
      if (with_serial) jrow.set("step_us", batched_us);
      if (with_lockstep) jrow.set("parallel_us", parallel_us);
      if (with_reference) jrow.set("ref_us", ref_us);
      if (serial_alloc >= 0.0) jrow.set("allocs_per_step", serial_alloc);
      if (parallel_alloc >= 0.0)
        jrow.set("parallel_allocs_per_step", parallel_alloc);
    }
    if (with_async) {
      // A separate row keyed (async_step, n) so perf_check.sh gates the
      // deterministic engine's step_us with the same machinery as the
      // serial sweep; relaxed_us and the speedup ride along as context.
      bench::JsonRows::Row& arow = json.row();
      arow.set("workload", "async_step")
          .set("n", n)
          .set("active", std::min(active, n))
          .set("shards", async_shards)
          .set("step_us", async_us)
          .set("relaxed_us", relaxed_us);
      if (with_serial && batched_us > 0.0)
        arow.set("speedup_vs_serial", batched_us / relaxed_us);
      if (async_alloc >= 0.0) arow.set("allocs_per_step", async_alloc);
      if (relaxed_alloc >= 0.0)
        arow.set("relaxed_allocs_per_step", relaxed_alloc);
    }
  }
  sparse_table.print(std::cout);
  std::cout << "\n(run_parallel pays two barriers per step, so it only "
               "wins once per-step work dwarfs the synchronization — "
               "its column is the protocol's overhead floor here.  The "
               "async columns are the barrier-free engine: epoch-fenced "
               "deterministic mode, then relaxed free-running mode.)\n";

  // ---- Instrumented run (opt-in) ---------------------------------------
  //
  // One extra run_parallel with the observability layer attached: the
  // metrics snapshot carries per-shard work / barrier-wait / serial-drain
  // histograms, the trace renders one span per shard phase in Perfetto.
  // Kept separate from the timed columns above so they always measure the
  // obs-detached hot path.
  const std::string metrics_out = opts.get_string("metrics_out");
  const std::string trace_out = opts.get_string("trace_out");
  if (!metrics_out.empty() || !trace_out.empty()) {
    const auto trace_n = static_cast<std::uint32_t>(opts.get_int("trace_n"));
    obs::MetricsRegistry registry;
    obs::TraceBuffer trace;
    trace.set_enabled(true);
    System sys(trace_n, [&] {
      BalancerConfig cfg;
      cfg.f = 2.0;
      cfg.delta = delta;
      return cfg;
    }(), 20260807);
    sys.attach_metrics(&registry);
    sys.attach_trace(&trace);
    const Workload wl = Workload::sparse_hotspot(
        trace_n, sparse_steps, std::min(active, trace_n), 0.8, 0.5);
    sys.run_parallel(wl, shards);
    // Same workload through the barrier-free engine on a fresh System,
    // sharing the registry and trace: the artifact then carries both
    // protocols side by side (local_phase/barrier_wait spans next to
    // async_local/async_drain, run_parallel.* next to async.*).
    {
      System async_sys(trace_n, [&] {
        BalancerConfig cfg;
        cfg.f = 2.0;
        cfg.delta = delta;
        return cfg;
      }(), 20260807);
      async_sys.attach_metrics(&registry);
      async_sys.attach_trace(&trace);
      async_sys.run_async(wl, std::min(shards, trace_n));
    }
    const obs::MetricsSnapshot snap = registry.snapshot();
    bench::JsonRows::Row& jrow = json.row();
    jrow.set("workload", "instrumented")
        .set("n", trace_n)
        .set("shards", shards);
    bench::JsonRows::append_metrics(jrow, snap, "run_parallel.");
    bench::JsonRows::append_metrics(jrow, snap, "system.");
    bench::JsonRows::append_metrics(jrow, snap, "async.");
    if (!metrics_out.empty()) {
      std::ofstream os(metrics_out);
      if (os.good()) {
        snap.write_json(os);
        std::cout << "(metrics written to " << metrics_out << ")\n";
      } else {
        std::cerr << "cannot write " << metrics_out << "\n";
      }
    }
    if (!trace_out.empty()) {
      std::ofstream os(trace_out);
      if (os.good()) {
        trace.write_chrome_json(os, "scalability");
        std::cout << "(trace written to " << trace_out << ", "
                  << trace.size() << " events";
        if (trace.dropped() > 0)
          std::cout << ", " << trace.dropped() << " dropped";
        std::cout << ")\n";
      } else {
        std::cerr << "cannot write " << trace_out << "\n";
      }
    }
  }

  const std::string json_out = opts.get_string("json_out");
  if (!json_out.empty() && json.write_file(json_out))
    std::cout << "(json written to " << json_out << ")\n";
  return 0;
}
