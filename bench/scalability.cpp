// Scalability: the paper's claim that the balancing quality is
// independent of the network size ("achieves very good performance even
// on networks containing up to 1024 processors"; Theorems 2/4 are
// n-free).
//
// We sweep n from 16 to 65536 and measure, on the §7 workload scaled to
// each size, (a) the cross-processor coefficient of variation at the end
// of the run, (b) the producer/rest ratio in the one-producer model vs
// the n-free bound δ/(δ+1−f), and (c) wall-clock per simulated step (the
// simulator's own scalability).
//
// Expectation: (a) and (b) flat or improving in n, always under the
// bound; (c) grows only with the event loop (O(n) per step) — balancing
// work is O(δ · active classes) per operation since the sparse-class fast
// path, so us/step should grow far slower than the old O(n·δ) regime.
//
// Sizes n ≥ 16384 only became reachable with the O(active) sparse ledger
// (dense ledgers would cost O(n²) bytes — ~64 GB at n = 65536); they run
// a shortened horizon (≤ 50 steps, 1 run) because the point there is
// per-step cost and memory feasibility, not end-state quality, and the
// one-producer ratio is skipped: its 40·n-step horizon is infeasible and
// the bound it checks is n-free anyway.
#include <algorithm>
#include <chrono>
#include <iostream>

#include "bench_common.hpp"
#include "core/system.hpp"
#include "metrics/imbalance.hpp"
#include "support/stats.hpp"
#include "theory/operators.hpp"

using namespace dlb;

int main(int argc, char** argv) {
  CliOptions opts;
  opts.add_int("steps", 300, "global time steps")
      .add_int("runs", 5, "runs per size")
      .add_int("max_n", 65536, "largest network size")
      .add_int("seed", 1993, "master seed");
  if (!opts.parse(argc, argv)) return 1;
  const auto steps = static_cast<std::uint32_t>(opts.get_int("steps"));
  const auto runs = static_cast<std::uint32_t>(opts.get_int("runs"));
  const auto max_n = static_cast<std::uint32_t>(opts.get_int("max_n"));
  Rng master(static_cast<std::uint64_t>(opts.get_int("seed")));

  bench::print_header(
      "Scalability — balance quality vs network size (Thms 2/4 are n-free)",
      "CoV and producer ratio flat in n; bound d/(d+1-f) holds at 4096");

  const double f = 1.1;
  const std::uint32_t delta = 2;
  const double bound = fixpoint_limit(delta, f);

  TextTable table({"n", "final CoV (paper wl)", "producer ratio",
                   "FIX(n,d,f)", "bound d/(d+1-f)", "us/step"});
  for (std::uint32_t n = 16; n <= max_n; n *= 4) {
    // Large sizes: shortened horizon, single run, no one-producer part
    // (see the header comment).
    const bool large = n >= 16384;
    const std::uint32_t run_steps = large ? std::min(steps, 50u) : steps;
    const std::uint32_t run_count = large ? 1 : runs;
    RunningMoments cov;
    RunningMoments ratio;
    double us_per_step = 0.0;
    for (std::uint32_t r = 0; r < run_count; ++r) {
      // (a) §7 workload quality.
      {
        BalancerConfig cfg;
        cfg.f = f;
        cfg.delta = delta;
        System sys(n, cfg, master.next());
        Rng wl_rng = master.split();
        const Workload wl = Workload::paper_benchmark(
            n, run_steps, WorkloadParams{}, wl_rng);
        const auto start = std::chrono::steady_clock::now();
        sys.run(wl);
        const auto stop = std::chrono::steady_clock::now();
        us_per_step +=
            std::chrono::duration<double, std::micro>(stop - start)
                .count() /
            static_cast<double>(run_steps) /
            static_cast<double>(run_count);
        cov.add(measure_imbalance(sys.loads()).cov);
      }
      // (b) one-producer ratio vs the n-free bound.  The horizon scales
      // with n so every processor ends with ~40 packets — at O(1)
      // packets per processor the ratio would measure integer
      // quantization, not the algorithm.
      if (!large) {
        BalancerConfig cfg;
        cfg.f = f;
        cfg.delta = delta;
        System sys(n, cfg, master.next());
        sys.run(Workload::one_producer(n, std::max(steps * 4, 40 * n)));
        RunningMoments others;
        for (std::uint32_t i = 1; i < n; ++i)
          others.add(static_cast<double>(sys.load(i)));
        if (others.mean() > 0)
          ratio.add(static_cast<double>(sys.load(0)) / others.mean());
      }
    }
    TextTable& row = table.row();
    row.cell(static_cast<std::size_t>(n)).cell(cov.mean(), 3);
    if (large) {
      row.cell("-");
    } else {
      row.cell(ratio.mean(), 3);
    }
    row.cell(fixpoint(ModelParams{static_cast<double>(n),
                                  static_cast<double>(delta), f}),
             3)
        .cell(bound, 3)
        .cell(us_per_step, 1);
  }
  table.print(std::cout);
  std::cout << "\n(The ratio is sampled mid-growth-cycle, so compare it "
               "against f*FIX rather than FIX itself; it must stay below "
               "f*bound = "
            << format_double(f * bound, 3) << ".)\n";
  return 0;
}
