// Baseline comparison: the paper's algorithm against no-balancing, the
// §5 random-scatter strawman, Rudolph-Slivkin-Allalouf-Upfal (SPAA'91,
// the paper's reference [20]), work stealing, and first-order diffusion
// on a torus — all replaying the SAME recorded demand traces.
//
// Expectation: our algorithm and RSU achieve low spread; random scatter
// has near-equal *expected* loads but enormous per-processor variance
// (the paper's argument for analyzing variation); work stealing serves
// consumers but doesn't equalize; diffusion balances only at topology
// speed; no-balancing is the worst on spread and failures.
#include <iostream>
#include <memory>
#include <sstream>

#include "baselines/adapter.hpp"
#include "baselines/diffusion.hpp"
#include "baselines/dimension_exchange.hpp"
#include "baselines/gradient.hpp"
#include "baselines/latency_probe.hpp"
#include "baselines/rss.hpp"
#include "baselines/rsu.hpp"
#include "baselines/simple.hpp"
#include "baselines/stealing.hpp"
#include "bench_common.hpp"
#include "metrics/imbalance.hpp"
#include "support/stats.hpp"
#include "workload/serving.hpp"

using namespace dlb;

namespace {

// ---- Serving mode -----------------------------------------------------
//
// Zipf-skewed session traffic (workload/serving.hpp) replayed against
// the strategies that matter for a request-serving frontend: the
// industry-standard RSS indirection table, work stealing, the paper's
// algorithm, and the no-balancing floor.  Each strategy runs behind a
// LatencyProbe, so the table reports p50/p99/p999 queueing latency (in
// steps, FIFO-drain semantics) next to the imbalance and cost columns.
// Percentiles are averaged across trace realizations.
int run_serving(const CliOptions& opts, std::uint32_t n, std::uint32_t steps,
                std::uint32_t runs, Rng& master) {
  std::vector<double> alphas;
  {
    std::stringstream ss(opts.get_string("alphas"));
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      if (!tok.empty()) alphas.push_back(std::stod(tok));
    }
  }
  if (alphas.empty()) {
    std::cerr << "--alphas needs at least one value\n";
    return 1;
  }
  const auto sessions =
      static_cast<std::uint64_t>(opts.get_int("sessions"));

  bench::print_header(
      "Request serving under Zipf skew — tail latency vs imbalance",
      "balance buys tail latency: table steering strands flash-crowd "
      "backlog, randomized partners drain it");

  const std::size_t kStrategies = 5;
  const char* names[kStrategies] = {"none", "rss-indirection", "stealing",
                                    "dlb f=1.1 d=2", "dlb f=1.1 d=4"};

  bench::JsonRows json;
  TextTable table({"alpha", "strategy", "lat p50", "lat p99", "lat p999",
                   "lat mean", "served", "avg CoV", "failures", "messages",
                   "moved"});
  for (const double alpha : alphas) {
    struct Agg {
      RunningMoments p50, p99, p999, mean_lat, cov, failures, messages,
          moved;
      std::uint64_t served = 0;
      std::uint64_t arrived = 0;
    };
    std::vector<Agg> agg(kStrategies);
    for (std::uint32_t run = 0; run < runs; ++run) {
      ServingParams params;
      params.alpha = alpha;
      params.sessions = sessions;
      const std::uint64_t wl_seed = master.next();
      const Workload wl = ServingWorkload::build(n, steps, params, wl_seed);
      Rng trace_rng = master.split();
      const Trace trace = Trace::record(wl, trace_rng);
      const std::uint64_t seed = master.next();

      std::vector<std::unique_ptr<LoadBalancer>> strategies(kStrategies);
      strategies[0] = std::make_unique<NoBalancing>(n);
      strategies[1] = std::make_unique<RssIndirection>(
          n, RssIndirection::Params{}, seed);
      strategies[2] = std::make_unique<WorkStealing>(
          n, WorkStealing::Params{}, seed + 1);
      {
        BalancerConfig cfg;
        cfg.f = 1.1;
        cfg.delta = 2;
        strategies[3] = std::make_unique<DlbAdapter>(n, cfg, seed + 2);
        cfg.delta = 4;
        strategies[4] = std::make_unique<DlbAdapter>(n, cfg, seed + 3);
      }

      for (std::size_t s = 0; s < kStrategies; ++s) {
        LatencyProbe probe(*strategies[s]);
        RunningMoments cov_over_time;
        run_trace(probe, trace,
                  [&](std::uint32_t, const std::vector<std::int64_t>& loads) {
                    cov_over_time.add(measure_imbalance(loads).cov);
                  });
        const LatencyTracker& lat = probe.latency();
        agg[s].p50.add(lat.percentile(0.50));
        agg[s].p99.add(lat.percentile(0.99));
        agg[s].p999.add(lat.percentile(0.999));
        agg[s].mean_lat.add(lat.mean());
        agg[s].cov.add(cov_over_time.mean());
        agg[s].served += lat.served();
        agg[s].arrived += lat.arrived();
        agg[s].failures.add(
            static_cast<double>(strategies[s]->consume_failures()));
        agg[s].messages.add(
            static_cast<double>(strategies[s]->messages()));
        agg[s].moved.add(
            static_cast<double>(strategies[s]->packets_moved()));
      }
    }
    for (std::size_t s = 0; s < kStrategies; ++s) {
      const double served_frac =
          agg[s].arrived == 0
              ? 0.0
              : static_cast<double>(agg[s].served) /
                    static_cast<double>(agg[s].arrived);
      table.row()
          .cell(format_double(alpha, 2))
          .cell(names[s])
          .cell(agg[s].p50.mean(), 1)
          .cell(agg[s].p99.mean(), 1)
          .cell(agg[s].p999.mean(), 1)
          .cell(agg[s].mean_lat.mean(), 2)
          .cell(served_frac, 3)
          .cell(agg[s].cov.mean(), 3)
          .cell(agg[s].failures.mean(), 0)
          .cell(agg[s].messages.mean(), 0)
          .cell(agg[s].moved.mean(), 0);
      json.row()
          .set("workload", "serving")
          .set("n", n)
          .set("alpha", alpha)
          .set("strategy", names[s])
          .set("lat_p50", agg[s].p50.mean())
          .set("lat_p99", agg[s].p99.mean())
          .set("lat_p999", agg[s].p999.mean())
          .set("lat_mean", agg[s].mean_lat.mean())
          .set("served_frac", served_frac)
          .set("cov", agg[s].cov.mean())
          .set("consume_failures", agg[s].failures.mean())
          .set("messages", agg[s].messages.mean())
          .set("packets_moved", agg[s].moved.mean());
    }
  }
  table.print(std::cout);
  std::cout << "\n(latency in steps, FIFO-drain virtual clock; 'served' = "
               "fraction of arrivals consumed within the horizon.  RSS "
               "steers arrivals for free but cannot migrate backlog; the "
               "paper's algorithm pays messages/moves to drain it.)\n";

  const std::string json_out = opts.get_string("json_out");
  if (!json_out.empty() && json.write_file(json_out))
    std::cout << "(json written to " << json_out << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opts;
  opts.add_int("processors", 64, "network size n (must be a square for the "
                                 "diffusion torus)")
      .add_int("steps", 500, "global time steps")
      .add_int("runs", 30, "trace realizations")
      .add_int("seed", 1993, "master seed")
      .add_string("workload", "paper", "demand model: paper|serving")
      .add_string("alphas", "0.8,1.1,1.4",
                  "serving mode: comma-separated Zipf exponents")
      .add_int("sessions", 2000000, "serving mode: user-session universe")
      .add_string("json_out", "", "serving mode: write rows as JSON "
                                  "(BENCH_core.json shape)");
  if (!opts.parse(argc, argv)) return 1;
  const auto n = static_cast<std::uint32_t>(opts.get_int("processors"));
  const auto steps = static_cast<std::uint32_t>(opts.get_int("steps"));
  const auto runs = static_cast<std::uint32_t>(opts.get_int("runs"));
  Rng master(static_cast<std::uint64_t>(opts.get_int("seed")));

  const std::string workload = opts.get_string("workload");
  if (workload == "serving") return run_serving(opts, n, steps, runs, master);
  if (workload != "paper") {
    std::cerr << "unknown --workload '" << workload
              << "' (expected paper|serving)\n";
    return 1;
  }

  bench::print_header(
      "Baseline comparison on identical demand traces (§7 workload)",
      "ours & RSU: low spread; scatter: huge variance; stealing: fed "
      "consumers, high spread; diffusion: topology-speed balance");

  const Topology torus = Topology::balanced_torus(n);

  struct Row {
    RunningMoments cov;        // time-avg coefficient of variation
    RunningMoments proc0_vd;   // variation density of processor 0's load
    RunningMoments failures;
    RunningMoments messages;
    RunningMoments moved;
  };
  std::vector<std::string> names{"none",          "random-scatter",
                                 "rsu-91",        "stealing",
                                 "diffusion",     "gradient-87",
                                 "dlb f=1.1 d=1", "dlb f=1.1 d=4"};
  const bool power_of_two = (n & (n - 1)) == 0;
  unsigned dim = 0;
  if (power_of_two) {
    while ((1u << dim) < n) ++dim;
    names.push_back("dimension-exchange");
  }
  const std::size_t kStrategies = names.size();
  std::vector<Row> rows_out(kStrategies);

  for (std::uint32_t run = 0; run < runs; ++run) {
    Rng trace_rng = master.split();
    Rng wl_rng = master.split();
    const Workload wl =
        Workload::paper_benchmark(n, steps, WorkloadParams{}, wl_rng);
    const Trace trace = Trace::record(wl, trace_rng);
    const std::uint64_t seed = master.next();

    std::vector<std::unique_ptr<LoadBalancer>> strategies(kStrategies);
    strategies[0] = std::make_unique<NoBalancing>(n);
    strategies[1] = std::make_unique<RandomScatter>(n, seed);
    strategies[2] = std::make_unique<RudolphUpfal>(
        n, RudolphUpfal::Params{}, seed + 1);
    strategies[3] = std::make_unique<WorkStealing>(
        n, WorkStealing::Params{}, seed + 2);
    strategies[4] =
        std::make_unique<Diffusion>(torus, Diffusion::Params{});
    strategies[5] =
        std::make_unique<GradientModel>(torus, GradientModel::Params{});
    {
      BalancerConfig cfg;
      cfg.f = 1.1;
      cfg.delta = 1;
      strategies[6] = std::make_unique<DlbAdapter>(n, cfg, seed + 3);
      cfg.delta = 4;
      strategies[7] = std::make_unique<DlbAdapter>(n, cfg, seed + 4);
    }
    if (power_of_two)
      strategies[8] = std::make_unique<DimensionExchange>(
          dim, DimensionExchange::Params{});

    for (std::size_t s = 0; s < kStrategies; ++s) {
      RunningMoments cov_over_time;
      RunningMoments proc0;
      run_trace(*strategies[s], trace,
                [&](std::uint32_t, const std::vector<std::int64_t>& loads) {
                  cov_over_time.add(measure_imbalance(loads).cov);
                  proc0.add(static_cast<double>(loads[0]));
                });
      rows_out[s].cov.add(cov_over_time.mean());
      rows_out[s].proc0_vd.add(proc0.variation_density());
      rows_out[s].failures.add(
          static_cast<double>(strategies[s]->consume_failures()));
      rows_out[s].messages.add(
          static_cast<double>(strategies[s]->messages()));
      rows_out[s].moved.add(
          static_cast<double>(strategies[s]->packets_moved()));
    }
  }

  TextTable table({"strategy", "avg CoV across procs", "proc-0 VD over time",
                   "consume failures", "messages", "packets moved"});
  for (std::size_t s = 0; s < kStrategies; ++s) {
    table.row()
        .cell(names[s])
        .cell(rows_out[s].cov.mean(), 3)
        .cell(rows_out[s].proc0_vd.mean(), 3)
        .cell(rows_out[s].failures.mean(), 0)
        .cell(rows_out[s].messages.mean(), 0)
        .cell(rows_out[s].moved.mean(), 0);
  }
  table.print(std::cout);
  return 0;
}
