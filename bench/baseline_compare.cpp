// Baseline comparison: the paper's algorithm against no-balancing, the
// §5 random-scatter strawman, Rudolph-Slivkin-Allalouf-Upfal (SPAA'91,
// the paper's reference [20]), work stealing, and first-order diffusion
// on a torus — all replaying the SAME recorded demand traces.
//
// Expectation: our algorithm and RSU achieve low spread; random scatter
// has near-equal *expected* loads but enormous per-processor variance
// (the paper's argument for analyzing variation); work stealing serves
// consumers but doesn't equalize; diffusion balances only at topology
// speed; no-balancing is the worst on spread and failures.
#include <iostream>
#include <memory>

#include "baselines/adapter.hpp"
#include "baselines/diffusion.hpp"
#include "baselines/dimension_exchange.hpp"
#include "baselines/gradient.hpp"
#include "baselines/rsu.hpp"
#include "baselines/simple.hpp"
#include "baselines/stealing.hpp"
#include "bench_common.hpp"
#include "metrics/imbalance.hpp"
#include "support/stats.hpp"

using namespace dlb;

int main(int argc, char** argv) {
  CliOptions opts;
  opts.add_int("processors", 64, "network size n (must be a square for the "
                                 "diffusion torus)")
      .add_int("steps", 500, "global time steps")
      .add_int("runs", 30, "trace realizations")
      .add_int("seed", 1993, "master seed");
  if (!opts.parse(argc, argv)) return 1;
  const auto n = static_cast<std::uint32_t>(opts.get_int("processors"));
  const auto steps = static_cast<std::uint32_t>(opts.get_int("steps"));
  const auto runs = static_cast<std::uint32_t>(opts.get_int("runs"));
  Rng master(static_cast<std::uint64_t>(opts.get_int("seed")));

  bench::print_header(
      "Baseline comparison on identical demand traces (§7 workload)",
      "ours & RSU: low spread; scatter: huge variance; stealing: fed "
      "consumers, high spread; diffusion: topology-speed balance");

  const Topology torus = Topology::balanced_torus(n);

  struct Row {
    RunningMoments cov;        // time-avg coefficient of variation
    RunningMoments proc0_vd;   // variation density of processor 0's load
    RunningMoments failures;
    RunningMoments messages;
    RunningMoments moved;
  };
  std::vector<std::string> names{"none",          "random-scatter",
                                 "rsu-91",        "stealing",
                                 "diffusion",     "gradient-87",
                                 "dlb f=1.1 d=1", "dlb f=1.1 d=4"};
  const bool power_of_two = (n & (n - 1)) == 0;
  unsigned dim = 0;
  if (power_of_two) {
    while ((1u << dim) < n) ++dim;
    names.push_back("dimension-exchange");
  }
  const std::size_t kStrategies = names.size();
  std::vector<Row> rows_out(kStrategies);

  for (std::uint32_t run = 0; run < runs; ++run) {
    Rng trace_rng = master.split();
    Rng wl_rng = master.split();
    const Workload wl =
        Workload::paper_benchmark(n, steps, WorkloadParams{}, wl_rng);
    const Trace trace = Trace::record(wl, trace_rng);
    const std::uint64_t seed = master.next();

    std::vector<std::unique_ptr<LoadBalancer>> strategies(kStrategies);
    strategies[0] = std::make_unique<NoBalancing>(n);
    strategies[1] = std::make_unique<RandomScatter>(n, seed);
    strategies[2] = std::make_unique<RudolphUpfal>(
        n, RudolphUpfal::Params{}, seed + 1);
    strategies[3] = std::make_unique<WorkStealing>(
        n, WorkStealing::Params{}, seed + 2);
    strategies[4] =
        std::make_unique<Diffusion>(torus, Diffusion::Params{});
    strategies[5] =
        std::make_unique<GradientModel>(torus, GradientModel::Params{});
    {
      BalancerConfig cfg;
      cfg.f = 1.1;
      cfg.delta = 1;
      strategies[6] = std::make_unique<DlbAdapter>(n, cfg, seed + 3);
      cfg.delta = 4;
      strategies[7] = std::make_unique<DlbAdapter>(n, cfg, seed + 4);
    }
    if (power_of_two)
      strategies[8] = std::make_unique<DimensionExchange>(
          dim, DimensionExchange::Params{});

    for (std::size_t s = 0; s < kStrategies; ++s) {
      RunningMoments cov_over_time;
      RunningMoments proc0;
      run_trace(*strategies[s], trace,
                [&](std::uint32_t, const std::vector<std::int64_t>& loads) {
                  cov_over_time.add(measure_imbalance(loads).cov);
                  proc0.add(static_cast<double>(loads[0]));
                });
      rows_out[s].cov.add(cov_over_time.mean());
      rows_out[s].proc0_vd.add(proc0.variation_density());
      rows_out[s].failures.add(
          static_cast<double>(strategies[s]->consume_failures()));
      rows_out[s].messages.add(
          static_cast<double>(strategies[s]->messages()));
      rows_out[s].moved.add(
          static_cast<double>(strategies[s]->packets_moved()));
    }
  }

  TextTable table({"strategy", "avg CoV across procs", "proc-0 VD over time",
                   "consume failures", "messages", "packets moved"});
  for (std::size_t s = 0; s < kStrategies; ++s) {
    table.row()
        .cell(names[s])
        .cell(rows_out[s].cov.mean(), 3)
        .cell(rows_out[s].proc0_vd.mean(), 3)
        .cell(rows_out[s].failures.mean(), 0)
        .cell(rows_out[s].messages.mean(), 0)
        .cell(rows_out[s].moved.mean(), 0);
  }
  table.print(std::cout);
  return 0;
}
