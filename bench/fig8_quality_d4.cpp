// Figure 8: balancing quality over time, delta = 4, f in {1.1, 1.8}.
// Same setup as Figure 7 (see fig7_quality_d1.cpp) with delta = 4.
//
// Paper expectation: envelopes tighter than Figure 7's across the board —
// delta has the larger impact on balancing quality; with delta = 4 the
// difference between f = 1.1 and f = 1.8 nearly vanishes.
#include <iostream>

#include "bench_common.hpp"

using namespace dlb;

int main(int argc, char** argv) {
  CliOptions opts = bench::paper_options();
  if (!opts.parse(argc, argv)) return 1;
  ExperimentSpec spec = bench::spec_from(opts);
  spec.config.delta = 4;
  spec.config.borrow_cap = 4;

  bench::print_header(
      "Figure 8 — balancing quality, delta = 4, f in {1.1, 1.8}",
      "tighter than Figure 7; the f = 1.1 vs 1.8 gap nearly vanishes");

  double worst[2] = {0.0, 0.0};
  int idx = 0;
  for (double f : {1.1, 1.8}) {
    spec.config.f = f;
    LoadSeriesRecorder recorder(spec.horizon);
    run_experiment(spec, paper_workload_factory(), recorder);
    bench::print_series(recorder, 25,
                        "delta=4 f=" + format_double(f, 1) + " ("
                            + std::to_string(spec.runs) + " runs)",
                        &opts,
                        "fig8_d4_f" + std::to_string(int(f * 10)));
    bench::plot_series(recorder, "delta=4 f=" + format_double(f, 1));
    for (std::uint32_t t = 100; t < spec.horizon; ++t) {
      const double avg = recorder.series().mean(t);
      if (avg <= 0) continue;
      worst[idx] =
          std::max(worst[idx], (recorder.series().max(t) - avg) / avg);
    }
    std::cout << "max relative deviation of the envelope (t >= 100): "
              << format_double(worst[idx], 3) << "\n\n";
    ++idx;
  }
  std::cout << "f-impact at delta=4 (should be small): |"
            << format_double(worst[0], 3) << " - "
            << format_double(worst[1], 3) << "| = "
            << format_double(std::abs(worst[0] - worst[1]), 3) << '\n';
  return 0;
}
