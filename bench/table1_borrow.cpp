// Table 1: borrow-protocol activity as a function of the borrow cap C,
// for C in {4, 8, 16, 32}, f = 1.1, delta = 1, on the §7 benchmark
// workload (64 processors, 500 steps, 100 runs).
//
// Paper values (per-run averages):
//            C=4      C=8      C=16     C=32
//   total    107.777  109.451  109.661  109.616
//   remote     3.949    0.333    0.033    0.032
//   fail       0.298    0.019    0.016    0.019
//   decrease   3.838    1.899    1.609    1.637
//
// Expectation for the reproduction (shape, not absolutes): total borrow is
// large and nearly independent of C; remote borrow and borrow fail drop
// steeply as C grows; decrease simulations fall toward a floor.
#include <iostream>

#include "bench_common.hpp"

using namespace dlb;

int main(int argc, char** argv) {
  CliOptions opts = bench::paper_options();
  if (!opts.parse(argc, argv)) return 1;
  ExperimentSpec spec = bench::spec_from(opts);
  spec.config.f = 1.1;
  spec.config.delta = 1;

  bench::print_header(
      "Table 1 — borrowing activity vs parameter C (f=1.1, delta=1)",
      "total borrow ~const in C; remote borrow & fail drop steeply with C");

  std::vector<BorrowCounterRecorder> recs(4);
  const std::uint32_t caps[] = {4, 8, 16, 32};
  for (std::size_t i = 0; i < 4; ++i) {
    spec.config.borrow_cap = caps[i];
    run_experiment(spec, paper_workload_factory(), recs[i]);
  }
  const double n = spec.processors;
  auto emit_into = [&](TextTable& table, const char* name, auto getter,
                       double divisor) {
    auto& row = table.row().cell(name);
    for (auto& rec : recs) row.cell(getter(rec) / divisor, 3);
  };
  auto emit_both = [&](TextTable& per_proc, TextTable& totals,
                       const char* name, auto getter) {
    emit_into(per_proc, name, getter, n);
    emit_into(totals, name, getter, 1.0);
  };

  // The paper's magnitudes are recovered as per-processor averages
  // (their totals over 64 processors would be ~64x larger than Table 1's
  // entries); we print both normalizations.
  TextTable per_proc({"counter (avg/run/processor)", "C=4", "C=8", "C=16",
                      "C=32"});
  TextTable totals({"counter (avg/run, whole machine)", "C=4", "C=8",
                    "C=16", "C=32"});
  emit_both(per_proc, totals, "total borrow",
            [](const BorrowCounterRecorder& r) {
              return r.avg_total_borrow();
            });
  emit_both(per_proc, totals, "remote borrow",
            [](const BorrowCounterRecorder& r) {
              return r.avg_remote_borrow();
            });
  emit_both(per_proc, totals, "borrow fail",
            [](const BorrowCounterRecorder& r) {
              return r.avg_borrow_fail();
            });
  emit_both(per_proc, totals, "decrease sim",
            [](const BorrowCounterRecorder& r) {
              return r.avg_decrease_sim();
            });
  per_proc.print(std::cout);
  std::cout << '\n';
  totals.print(std::cout);
  bench::maybe_write_csv(per_proc, opts, "table1_per_processor");
  bench::maybe_write_csv(totals, opts, "table1_totals");

  std::cout << "\npaper (for shape comparison):\n"
            << "  total borrow   107.777  109.451  109.661  109.616\n"
            << "  remote borrow    3.949    0.333    0.033    0.032\n"
            << "  borrow fail      0.298    0.019    0.016    0.019\n"
            << "  decrease sim     3.838    1.899    1.609    1.637\n";
  return 0;
}
