// Microbenchmarks (google-benchmark): throughput of the core primitives —
// the snake redistribution kernel, a full balancing operation, a global
// simulation step, and the PRNG primitives they lean on.
#include <benchmark/benchmark.h>

#include "core/snake.hpp"
#include "core/system.hpp"
#include "support/rng.hpp"

namespace {

using namespace dlb;

void BM_RngNext(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

void BM_RngSampleDistinct(benchmark::State& state) {
  Rng rng(2);
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto k = static_cast<std::uint32_t>(state.range(1));
  for (auto _ : state)
    benchmark::DoNotOptimize(rng.sample_distinct(n, k, 0));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * k);
}
BENCHMARK(BM_RngSampleDistinct)->Args({64, 1})->Args({64, 4})->Args({1024, 4});

void BM_SnakeRedistribute(benchmark::State& state) {
  const auto participants = static_cast<std::size_t>(state.range(0));
  const auto classes = static_cast<std::size_t>(state.range(1));
  Rng rng(3);
  std::vector<std::vector<std::int64_t>> counts(
      participants, std::vector<std::int64_t>(classes));
  for (auto& row : counts)
    for (auto& cell : row) cell = static_cast<std::int64_t>(rng.below(100));
  for (auto _ : state) {
    auto work = counts;
    SnakeOptions opts;
    opts.start =
        static_cast<std::size_t>(state.iterations()) % participants;
    benchmark::DoNotOptimize(snake_redistribute(work, opts));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(participants * classes));
}
BENCHMARK(BM_SnakeRedistribute)
    ->Args({2, 64})
    ->Args({5, 64})
    ->Args({5, 1024})
    ->Args({9, 1024});

void BM_BalanceOperation(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto delta = static_cast<std::uint32_t>(state.range(1));
  BalancerConfig cfg;
  cfg.f = 1e9;  // no automatic triggers: we time force_balance alone
  cfg.delta = delta;
  System sys(n, cfg, 4);
  Rng rng(5);
  for (std::uint32_t p = 0; p < n; ++p) {
    const std::uint64_t packets = rng.below(64);
    for (std::uint64_t i = 0; i < packets; ++i) sys.generate(p);
  }
  std::uint32_t initiator = 0;
  for (auto _ : state) {
    sys.force_balance(initiator);
    initiator = (initiator + 1) % n;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BalanceOperation)
    ->Args({64, 1})
    ->Args({64, 4})
    ->Args({256, 4})
    ->Args({1024, 4});

void BM_SystemStep(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  BalancerConfig cfg;
  cfg.f = 1.1;
  cfg.delta = 2;
  System sys(n, cfg, 6);
  const Workload wl = Workload::uniform(n, 1u << 30, 0.6, 0.5);
  std::vector<WorkEvent> events(n);
  Rng rng(7);
  std::uint32_t t = 0;
  for (auto _ : state) {
    for (std::uint32_t p = 0; p < n; ++p) events[p] = wl.sample(p, t, rng);
    sys.step(t, events);
    ++t;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_SystemStep)->Arg(16)->Arg(64)->Arg(256);

void BM_OneProducerRun(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t seed = 8;
  for (auto _ : state) {
    BalancerConfig cfg;
    cfg.f = 1.1;
    cfg.delta = 2;
    System sys(n, cfg, seed++);
    sys.run(Workload::one_producer(n, 500));
    benchmark::DoNotOptimize(sys.total_load());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          500);
}
BENCHMARK(BM_OneProducerRun)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
