// Microbenchmarks (google-benchmark): throughput of the core primitives —
// the snake redistribution kernel, a full balancing operation, a global
// simulation step, and the PRNG primitives they lean on.
//
// Besides the google-benchmark suite, main() times the three hot-path
// entry points (generate, consume, balance) with a plain chrono harness
// and writes BENCH_core.json to the working directory — the
// machine-readable record the perf gate diffs across PRs.  Run with
// --benchmark_filter=NONE to emit only the JSON.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/checkpoint.hpp"
#include "core/snake.hpp"
#include "core/system.hpp"
#include "support/rng.hpp"

namespace {

using namespace dlb;

void BM_RngNext(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

void BM_RngSampleDistinct(benchmark::State& state) {
  Rng rng(2);
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto k = static_cast<std::uint32_t>(state.range(1));
  for (auto _ : state)
    benchmark::DoNotOptimize(rng.sample_distinct(n, k, 0));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * k);
}
BENCHMARK(BM_RngSampleDistinct)->Args({64, 1})->Args({64, 4})->Args({1024, 4});

void BM_SnakeRedistribute(benchmark::State& state) {
  const auto participants = static_cast<std::size_t>(state.range(0));
  const auto classes = static_cast<std::size_t>(state.range(1));
  Rng rng(3);
  std::vector<std::vector<std::int64_t>> counts(
      participants, std::vector<std::int64_t>(classes));
  for (auto& row : counts)
    for (auto& cell : row) cell = static_cast<std::int64_t>(rng.below(100));
  for (auto _ : state) {
    auto work = counts;
    SnakeOptions opts;
    opts.start =
        static_cast<std::size_t>(state.iterations()) % participants;
    benchmark::DoNotOptimize(snake_redistribute(work, opts));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(participants * classes));
}
BENCHMARK(BM_SnakeRedistribute)
    ->Args({2, 64})
    ->Args({5, 64})
    ->Args({5, 1024})
    ->Args({9, 1024});

void BM_BalanceOperation(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto delta = static_cast<std::uint32_t>(state.range(1));
  BalancerConfig cfg;
  cfg.f = 1e9;  // no automatic triggers: we time force_balance alone
  cfg.delta = delta;
  System sys(n, cfg, 4);
  Rng rng(5);
  for (std::uint32_t p = 0; p < n; ++p) {
    const std::uint64_t packets = rng.below(64);
    for (std::uint64_t i = 0; i < packets; ++i) sys.generate(p);
  }
  std::uint32_t initiator = 0;
  for (auto _ : state) {
    sys.force_balance(initiator);
    initiator = (initiator + 1) % n;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BalanceOperation)
    ->Args({64, 1})
    ->Args({64, 4})
    ->Args({256, 4})
    ->Args({1024, 4});

void BM_SystemStep(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  BalancerConfig cfg;
  cfg.f = 1.1;
  cfg.delta = 2;
  System sys(n, cfg, 6);
  const Workload wl = Workload::uniform(n, 1u << 30, 0.6, 0.5);
  std::vector<WorkEvent> events(n);
  Rng rng(7);
  std::uint32_t t = 0;
  for (auto _ : state) {
    for (std::uint32_t p = 0; p < n; ++p) events[p] = wl.sample(p, t, rng);
    sys.step(t, events);
    ++t;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_SystemStep)->Arg(16)->Arg(64)->Arg(256);

void BM_OneProducerRun(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t seed = 8;
  for (auto _ : state) {
    BalancerConfig cfg;
    cfg.f = 1.1;
    cfg.delta = 2;
    System sys(n, cfg, seed++);
    sys.run(Workload::one_producer(n, 500));
    benchmark::DoNotOptimize(sys.total_load());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          500);
}
BENCHMARK(BM_OneProducerRun)->Arg(16)->Arg(64);

// ---- BENCH_core.json: the cross-PR perf record -------------------------

struct CoreTimings {
  double generate_ns = 0;
  double consume_ns = 0;
  double balance_ns = 0;
  // Sparse-ledger heap bytes per processor, averaged over the system the
  // balance batches finished on (steady-state capacities, not the empty
  // construction state).
  double ledger_bytes_per_proc = 0;
};

// Current resident set (VmRSS, kB) from /proc/self/status; 0 when the
// field is unavailable (non-Linux).
long read_rss_kb() {
  std::ifstream status("/proc/self/status");
  std::string key;
  long value = 0;
  std::string unit;
  while (status >> key) {
    if (key == "VmRSS:") {
      status >> value >> unit;
      return value;
    }
    std::getline(status, unit);
  }
  return 0;
}

double mean_ledger_bytes(const System& sys) {
  double total = 0;
  for (std::uint32_t p = 0; p < sys.processors(); ++p)
    total += static_cast<double>(sys.processor(p).ledger.memory_bytes());
  return total / static_cast<double>(sys.processors());
}

template <typename Body>
double time_ns_per_op(std::uint64_t iters, Body&& body) {
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) body(i);
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(stop - start).count() /
         static_cast<double>(iters);
}

// Builds a system in the sparse regime the fast path targets: every
// processor holds 32..63 packets of its own class and nothing else, so a
// (delta+1)-party balance sees a handful of active classes regardless of n.
// Constructed through the checkpoint loader so l_old can be preset to the
// stock — warming up via generate() is impossible here, because a
// processor with l_old == 0 triggers a balancing operation on its first
// generate regardless of f ([D1]), and those warmup balances would smear
// the stocks across classes before the timing starts.  With l_old equal
// to the stock and f = 1e9 the timed event loops are trigger-free.
System make_sparse_system(std::uint32_t n, std::uint64_t seed) {
  Rng stock_rng(seed + 1);
  std::vector<std::int64_t> stock(n);
  std::int64_t total = 0;
  for (auto& s : stock) {
    s = 32 + static_cast<std::int64_t>(stock_rng.below(32));
    total += s;
  }
  std::ostringstream os;
  os << "dlb-checkpoint 2\n";
  os << n << ' ' << 4 << ' ' << 4 << ' ' << 0 << '\n';  // delta, cap
  os.precision(17);
  os << std::hexfloat << 1e9 << std::defaultfloat << '\n';  // f
  const auto rng_state = Rng(seed).state();
  os << rng_state[0] << ' ' << rng_state[1] << ' ' << rng_state[2] << ' '
     << rng_state[3] << '\n';
  os << total << ' ' << 0 << ' ' << 0 << '\n';  // generated consumed ops
  os << "0 0 0 0 0 0\n";                        // cost totals
  os << -1 << '\n';                             // no partner radius
  for (std::uint32_t p = 0; p < n; ++p) {
    // l_old = stock, local_time = 0, one sparse entry: the own class.
    os << stock[p] << " 0 1\n" << p << ' ' << stock[p] << " 0\n";
  }
  std::istringstream is(os.str());
  return load_checkpoint(is, nullptr);
}

// The opposite regime, DESIGN.md §6's fully dense limit: every processor
// holds one packet of *every* class, so each deal spans k = n columns.
// This is where the compact machinery pays its overhead (per-entry keys,
// merge passes) instead of reaping sparsity — the crossover the `dense`
// BENCH_core.json row tracks.
System make_dense_system(std::uint32_t n, std::uint64_t seed) {
  std::ostringstream os;
  os << "dlb-checkpoint 2\n";
  os << n << ' ' << 4 << ' ' << 4 << ' ' << 0 << '\n';
  os.precision(17);
  os << std::hexfloat << 1e9 << std::defaultfloat << '\n';
  const auto rng_state = Rng(seed).state();
  os << rng_state[0] << ' ' << rng_state[1] << ' ' << rng_state[2] << ' '
     << rng_state[3] << '\n';
  os << static_cast<std::uint64_t>(n) * n << " 0 0\n";
  os << "0 0 0 0 0 0\n";
  os << -1 << '\n';
  for (std::uint32_t p = 0; p < n; ++p) {
    os << "1 0 " << n << '\n';  // l_old = d[p][p] = 1, n sparse entries
    for (std::uint32_t j = 0; j < n; ++j)
      os << j << " 1 0" << (j + 1 < n ? " " : "\n");
  }
  std::istringstream is(os.str());
  return load_checkpoint(is, nullptr);
}

CoreTimings measure_core(std::uint32_t n,
                         System (*make_system)(std::uint32_t,
                                               std::uint64_t)) {
  CoreTimings out;
  {
    System sys = make_system(n, 4);
    const std::uint64_t event_iters = 200000;
    out.generate_ns = time_ns_per_op(
        event_iters, [&](std::uint64_t i) { sys.generate(i % n); });
    out.consume_ns = time_ns_per_op(event_iters, [&](std::uint64_t i) {
      benchmark::DoNotOptimize(sys.consume(i % n));
    });
  }
  // Balancing is timed in short batches over fresh systems: a long
  // force_balance loop would smear packets across ever more classes and
  // measure a self-inflicted dense regime instead of the workload the
  // factory sets up (see the determinism workload: ~a dozen active
  // classes per ledger at n = 1024).
  const std::uint64_t ops_per_batch = n >= 1024 ? 256 : 64;
  const std::uint64_t total_ops = 2048;
  double balance_total_ns = 0;
  for (std::uint64_t done = 0; done < total_ops; done += ops_per_batch) {
    System sys = make_system(n, 4 + done);
    balance_total_ns +=
        time_ns_per_op(ops_per_batch, [&](std::uint64_t i) {
          sys.force_balance(static_cast<std::uint32_t>(
              (done * 131 + i * 17) % n));
        }) *
        static_cast<double>(ops_per_batch);
    if (done + ops_per_batch >= total_ops)
      out.ledger_bytes_per_proc = mean_ledger_bytes(sys);
  }
  out.balance_ns = balance_total_ns / static_cast<double>(total_ops);
  return out;
}

struct BenchRow {
  const char* workload;
  std::uint32_t n;
  System (*make_system)(std::uint32_t, std::uint64_t);
};

void write_bench_json(const char* path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  out << "{\n  \"benchmark\": \"core_hot_paths\",\n  \"unit\": \"ns/op\","
      << "\n  \"workloads\": {\"sparse\": \"own-class packets only, "
      << "delta=4\", \"dense\": \"one packet of every class (k = n), "
      << "delta=4\"},\n  \"results\": [";
  const BenchRow rows[] = {
      {"sparse", 64, make_sparse_system},
      {"sparse", 1024, make_sparse_system},
      {"sparse", 16384, make_sparse_system},
      {"dense", 64, make_dense_system},
  };
  bool first = true;
  for (const BenchRow& row : rows) {
    // Min over repetitions: the best pass is the least disturbed by
    // scheduler noise and closest to the true cost of the code.  Five
    // repetitions — this records numbers on shared/virtualized boxes
    // whose run-to-run variance exceeds the ±30% perf gate.
    CoreTimings t = measure_core(row.n, row.make_system);
    for (int rep = 1; rep < 5; ++rep) {
      const CoreTimings r = measure_core(row.n, row.make_system);
      t.generate_ns = std::min(t.generate_ns, r.generate_ns);
      t.consume_ns = std::min(t.consume_ns, r.consume_ns);
      t.balance_ns = std::min(t.balance_ns, r.balance_ns);
      t.ledger_bytes_per_proc =
          std::min(t.ledger_bytes_per_proc, r.ledger_bytes_per_proc);
    }
    if (!first) out << ',';
    first = false;
    char buf[320];
    std::snprintf(buf, sizeof(buf),
                  "\n    {\"workload\": \"%s\", \"n\": %u, "
                  "\"generate_ns\": %.1f, \"consume_ns\": %.1f, "
                  "\"balance_ns\": %.1f, \"ledger_bytes_per_proc\": %.0f, "
                  "\"rss_kb\": %ld}",
                  row.workload, row.n, t.generate_ns, t.consume_ns,
                  t.balance_ns, t.ledger_bytes_per_proc, read_rss_kb());
    out << buf;
  }
  out << "\n  ]\n}\n";
  std::printf("wrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_bench_json("BENCH_core.json");
  return 0;
}
