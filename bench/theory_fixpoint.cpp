// Theorems 1-3: convergence of the ratio operators and the fixed point
// FIX(n, delta, f), cross-checked against the simulated one-processor
// model.
//
// Paper expectation: G^t(1) increases monotonically to FIX(n, delta, f)
// <= delta/(delta+1-f); C^t(1) decreases to FIX(n, delta, 1/f); the
// simulated post-balance ratio of the real (integer) algorithm matches.
#include <iostream>

#include "bench_common.hpp"
#include "core/one_processor.hpp"
#include "support/stats.hpp"
#include "theory/operators.hpp"

using namespace dlb;

int main(int argc, char** argv) {
  CliOptions opts;
  opts.add_int("runs", 400, "Monte-Carlo runs for the simulation column")
      .add_int("seed", 1993, "master seed");
  if (!opts.parse(argc, argv)) return 1;
  const auto runs = static_cast<std::uint32_t>(opts.get_int("runs"));
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed"));

  bench::print_header(
      "Theorems 1-3 — fixed point of the ratio operators",
      "G^t(1) -> FIX(n,d,f) <= d/(d+1-f); C^t(1) -> FIX(n,d,1/f); "
      "simulation matches");

  // Theorem 1: convergence trace for a representative configuration.
  {
    ModelParams p{64, 2, 1.5};
    std::cout << "-- G^t(1) convergence, n=64 delta=2 f=1.5 --\n";
    TextTable table({"t", "G^t(1)", "FIX", "gap"});
    const double fix = fixpoint(p);
    for (std::uint32_t t : {1u, 2u, 5u, 10u, 20u, 50u, 100u}) {
      const double g = iterate_G(1.0, t, p);
      table.row()
          .cell(static_cast<std::size_t>(t))
          .cell(g, 6)
          .cell(fix, 6)
          .cell(fix - g, 6);
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  // Theorem 2: FIX vs n, approaching delta/(delta+1-f).
  {
    std::cout << "-- FIX(n, delta, f) vs n (Theorem 2 limit) --\n";
    TextTable table({"delta", "f", "n=8", "n=64", "n=1024", "n=10^6",
                     "limit d/(d+1-f)"});
    struct Cfg {
      double delta;
      double f;
    };
    for (const Cfg& c : {Cfg{1, 1.1}, Cfg{1, 1.8}, Cfg{2, 1.5},
                         Cfg{4, 1.1}, Cfg{4, 1.8}}) {
      auto& row = table.row()
                      .cell(static_cast<std::size_t>(c.delta))
                      .cell(c.f, 1);
      for (double n : {8.0, 64.0, 1024.0, 1e6})
        row.cell(fixpoint(ModelParams{n, c.delta, c.f}), 5);
      row.cell(fixpoint_limit(c.delta, c.f), 5);
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  // Theorem 3 sandwich + simulation cross-check (post-balance ratio).
  {
    std::cout << "-- simulated post-balance ratio vs FIX (" << runs
              << " runs, 60 balancing steps, integer algorithm) --\n";
    TextTable table({"n", "delta", "f", "FIX", "simulated", "rel err",
                     "bound d/(d+1-f)"});
    struct Cfg {
      std::uint32_t n;
      std::uint32_t delta;
      double f;
    };
    Rng seeder(seed);
    for (const Cfg& c : {Cfg{16, 1, 1.1}, Cfg{16, 1, 1.5}, Cfg{64, 2, 1.5},
                         Cfg{64, 4, 1.8}, Cfg{35, 4, 1.2}}) {
      ModelParams mp{static_cast<double>(c.n),
                     static_cast<double>(c.delta), c.f};
      RunningMoments ratio;
      for (std::uint32_t r = 0; r < runs; ++r) {
        OneProcessorModel::Params op;
        op.n = c.n;
        op.delta = c.delta;
        op.f = c.f;
        OneProcessorModel model(op, seeder.next());
        for (std::uint32_t i = 0; i < c.n; ++i) model.set_load(i, 1000);
        model.set_trigger_baseline(1000);
        model.run_grow(60);
        ratio.add(model.ratio_to_average());
      }
      const double fix = fixpoint(mp);
      table.row()
          .cell(static_cast<std::size_t>(c.n))
          .cell(static_cast<std::size_t>(c.delta))
          .cell(c.f, 1)
          .cell(fix, 4)
          .cell(ratio.mean(), 4)
          .cell((ratio.mean() - fix) / fix, 3)
          .cell(fixpoint_limit(c.delta, c.f), 4);
    }
    table.print(std::cout);
  }
  return 0;
}
