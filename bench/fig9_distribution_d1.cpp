// Figure 9: per-processor load distribution at t in {50, 200, 400},
// delta = 1, f in {1.1, 1.8} (64 processors, §7 workload, 100 runs).
//
// The paper plots, for every one of the 64 processors, the expected load
// and the min/max load observed over all runs at the three snapshot
// times.  We print the same data (one row per processor) plus a compact
// spread summary per snapshot.
//
// Paper expectation: per-processor expectations are nearly flat across
// the machine despite the very inhomogeneous phase workload; the spread
// is wider for f = 1.8 than for f = 1.1.
#include <iostream>

#include "bench_common.hpp"

using namespace dlb;

namespace {

void run_figure(ExperimentSpec spec, double f,
                const dlb::CliOptions& opts) {
  spec.config.f = f;
  const std::vector<std::uint32_t> times{49, 199, 399};  // 0-based steps
  SnapshotRecorder recorder(spec.processors, times);
  run_experiment(spec, paper_workload_factory(), recorder);

  std::cout << "-- delta=" << spec.config.delta << " f=" << f << " --\n";
  TextTable table({"proc", "E@50", "min@50", "max@50", "E@200", "min@200",
                   "max@200", "E@400", "min@400", "max@400"});
  for (std::uint32_t p = 0; p < spec.processors; ++p) {
    auto& row = table.row().cell(static_cast<std::size_t>(p));
    for (std::size_t s = 0; s < times.size(); ++s) {
      const RunningMoments& m = recorder.at(s, p);
      row.cell(m.mean(), 1).cell(m.min(), 0).cell(m.max(), 0);
    }
  }
  table.print(std::cout);
  bench::maybe_write_csv(table, opts,
                         "fig9_d1_f" + std::to_string(int(f * 10)));

  // Per-processor expected-load curves (x = processor index), the visual
  // of the paper's figure.
  {
    std::vector<PlotSeries> curves;
    const char* labels[] = {"E@50", "E@200", "E@400"};
    const char glyphs[] = {'a', 'b', 'c'};
    for (std::size_t snap = 0; snap < times.size(); ++snap) {
      PlotSeries series{labels[snap], glyphs[snap], {}};
      for (std::uint32_t p = 0; p < spec.processors; ++p)
        series.values.push_back(recorder.at(snap, p).mean());
      curves.push_back(std::move(series));
    }
    PlotOptions plot_opts;
    plot_opts.x_label = "processor";
    plot_opts.y_label = "expected load per processor";
    render_plot(std::cout, curves, plot_opts);
  }

  TextTable summary({"snapshot t", "E spread (max-min of means)",
                     "widest run envelope"});
  for (std::size_t s = 0; s < times.size(); ++s) {
    double lo = 1e18;
    double hi = -1e18;
    double widest = 0.0;
    for (std::uint32_t p = 0; p < spec.processors; ++p) {
      const RunningMoments& m = recorder.at(s, p);
      lo = std::min(lo, m.mean());
      hi = std::max(hi, m.mean());
      widest = std::max(widest, m.max() - m.min());
    }
    summary.row()
        .cell(static_cast<std::size_t>(times[s] + 1))
        .cell(hi - lo, 2)
        .cell(widest, 0);
  }
  std::cout << '\n';
  summary.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opts = bench::paper_options();
  if (!opts.parse(argc, argv)) return 1;
  ExperimentSpec spec = bench::spec_from(opts);
  spec.config.delta = 1;
  spec.config.borrow_cap = 4;

  bench::print_header(
      "Figure 9 — load distribution across processors, delta = 1",
      "per-processor expected loads nearly flat; spread wider at f = 1.8");
  for (double f : {1.1, 1.8}) run_figure(spec, f, opts);
  return 0;
}
