// Ablation: what happens to the paper's guarantee when balancing
// operations are NOT instantaneous.
//
// §2 justifies constant-time balancing by wormhole routing; the
// asynchronous event-driven simulator makes the three-message transaction
// explicit and charges hop_latency x distance per message.  While
// messages fly, demand keeps arriving, partners are locked, and
// overlapping transactions refuse each other.  This bench sweeps the hop
// latency on a 64-node torus and hypercube and reports balance quality
// and protocol friction.
//
// Expectation: quality degrades gracefully with latency (stale
// assignments, deferred demand) but remains far better than no
// balancing; low-diameter topologies degrade less.
#include <iostream>

#include "bench_common.hpp"
#include "core/async_system.hpp"
#include "metrics/imbalance.hpp"
#include "support/stats.hpp"

using namespace dlb;

int main(int argc, char** argv) {
  CliOptions opts;
  opts.add_int("steps", 400, "application time steps")
      .add_int("runs", 10, "runs per configuration")
      .add_int("seed", 1993, "master seed");
  if (!opts.parse(argc, argv)) return 1;
  const auto steps = static_cast<std::uint32_t>(opts.get_int("steps"));
  const auto runs = static_cast<std::uint32_t>(opts.get_int("runs"));
  Rng master(static_cast<std::uint64_t>(opts.get_int("seed")));

  bench::print_header(
      "Ablation — message latency vs the O(1)-operation assumption (§2)",
      "quality degrades gracefully with hop latency; low diameter helps");

  TextTable table({"topology", "hop latency", "final CoV", "balance ops",
                   "aborted", "refusals", "deferred demand"});
  const Topology topologies[] = {Topology::torus2d(8, 8),
                                 Topology::hypercube(6)};
  for (const Topology& topo : topologies) {
    for (double latency : {0.0, 0.1, 0.5, 2.0, 8.0}) {
      RunningMoments cov;
      RunningMoments ops;
      RunningMoments aborted;
      RunningMoments refusals;
      RunningMoments deferred;
      for (std::uint32_t r = 0; r < runs; ++r) {
        Rng wl_rng = master.split();
        Rng trace_rng = master.split();
        const Workload wl = Workload::paper_benchmark(
            topo.size(), steps, WorkloadParams{}, wl_rng);
        const Trace trace = Trace::record(wl, trace_rng);
        AsyncConfig cfg;
        cfg.f = 1.1;
        cfg.delta = 2;
        cfg.hop_latency = latency;
        cfg.seed = master.next();
        AsyncSystem sys(topo, cfg);
        sys.run(trace);
        cov.add(measure_imbalance(sys.loads()).cov);
        ops.add(static_cast<double>(sys.stats().balance_ops));
        aborted.add(static_cast<double>(sys.stats().aborted_ops));
        refusals.add(static_cast<double>(sys.stats().refusals));
        deferred.add(static_cast<double>(sys.stats().deferred_events));
      }
      table.row()
          .cell(to_string(topo.kind()))
          .cell(latency, 1)
          .cell(cov.mean(), 3)
          .cell(ops.mean(), 0)
          .cell(aborted.mean(), 0)
          .cell(refusals.mean(), 0)
          .cell(deferred.mean(), 0);
    }
  }
  table.print(std::cout);
  return 0;
}
