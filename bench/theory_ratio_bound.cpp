// Theorem 4: in the full n-processor model with borrowing,
//   E(l_i^t) <= f^2 * delta/(delta+1-f) * (E(l_j^t) + C)
// for ALL processor pairs (i, j) and times t.
//
// We measure expected per-processor loads on the §7 workload at several
// snapshot times and report the worst measured "bound usage":
//   usage = max_i E(l_i) / (factor * (min_j E(l_j) + C)),
// which must stay <= 1 (typically far below — the theorem is loose).
#include <iostream>

#include "bench_common.hpp"
#include "theory/bounds.hpp"

using namespace dlb;

int main(int argc, char** argv) {
  CliOptions opts = bench::paper_options();
  if (!opts.parse(argc, argv)) return 1;
  ExperimentSpec base = bench::spec_from(opts);

  bench::print_header(
      "Theorem 4 — pairwise expected-load ratio bound (full model)",
      "max E(l_i) <= f^2 * d/(d+1-f) * (min E(l_j) + C) at every time");

  TextTable table({"f", "delta", "C", "t", "max E", "min E", "factor",
                   "bound", "usage"});
  struct Cfg {
    double f;
    std::uint32_t delta;
    std::uint32_t cap;
  };
  for (const Cfg& c : {Cfg{1.1, 1, 4}, Cfg{1.8, 1, 4}, Cfg{1.1, 4, 4},
                       Cfg{1.8, 4, 4}, Cfg{1.4, 2, 16}}) {
    ExperimentSpec spec = base;
    spec.config.f = c.f;
    spec.config.delta = c.delta;
    spec.config.borrow_cap = c.cap;
    const std::vector<std::uint32_t> times{49, 199, 399};
    SnapshotRecorder recorder(spec.processors, times);
    run_experiment(spec, paper_workload_factory(), recorder);
    const double factor = theorem4_factor(c.delta, c.f);
    for (std::size_t s = 0; s < times.size(); ++s) {
      double max_mean = 0.0;
      double min_mean = 1e18;
      for (std::uint32_t p = 0; p < spec.processors; ++p) {
        const double m = recorder.at(s, p).mean();
        max_mean = std::max(max_mean, m);
        min_mean = std::min(min_mean, m);
      }
      const double bound = factor * (min_mean + c.cap);
      table.row()
          .cell(c.f, 1)
          .cell(static_cast<std::size_t>(c.delta))
          .cell(static_cast<std::size_t>(c.cap))
          .cell(static_cast<std::size_t>(times[s] + 1))
          .cell(max_mean, 2)
          .cell(min_mean, 2)
          .cell(factor, 2)
          .cell(bound, 2)
          .cell(max_mean / bound, 3);
    }
  }
  table.print(std::cout);
  std::cout << "\nusage <= 1 everywhere confirms the Theorem 4 envelope "
               "holds in the full simulation.\n";
  return 0;
}
