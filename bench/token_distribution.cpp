// The (static) token distribution problem — the paper's references
// [12, 16, 17] study exactly this: K tokens sit on one processor, no
// further generation or consumption, how fast do different schemes
// spread them?
//
// The paper explicitly distinguishes its *dynamic* setting from this
// static problem ("does not consider the dynamic generation and
// consumption of workload").  This bench shows the flip side of that
// distinction concretely:
//   * schedule-driven schemes (diffusion, dimension exchange, RSU's
//     per-step coin flips) solve the static instance on their own;
//   * the paper's algorithm is *demand-driven* — its trigger fires on
//     load changes — so on a perfectly static instance it does nothing
//     after the initial burst; give the machine a trickle of demand
//     (1% generation probability) and it spreads the backlog promptly.
#include <iostream>
#include <memory>

#include "baselines/adapter.hpp"
#include "baselines/diffusion.hpp"
#include "baselines/dimension_exchange.hpp"
#include "baselines/rsu.hpp"
#include "baselines/simple.hpp"
#include "bench_common.hpp"
#include "metrics/imbalance.hpp"
#include "support/check.hpp"

using namespace dlb;

namespace {

/// Steps until the load spread (max - min) drops to <= tolerance, or
/// `limit` if it never does.
std::uint32_t steps_to_balance(LoadBalancer& balancer, const Trace& trace,
                               std::int64_t tolerance, std::uint32_t limit) {
  std::uint32_t reached = limit;
  std::uint32_t t_now = 0;
  run_trace(balancer, trace,
            [&](std::uint32_t t, const std::vector<std::int64_t>& loads) {
              t_now = t;
              if (reached != limit) return;
              const auto report = measure_imbalance(loads);
              if (report.max_load - report.min_load <=
                  static_cast<double>(tolerance))
                reached = t + 1;
            });
  (void)t_now;
  return reached;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opts;
  opts.add_int("processors", 64, "network size (power of two)")
      .add_int("tokens", 6400, "tokens initially on processor 0")
      .add_int("limit", 2000, "step budget")
      .add_int("seed", 1993, "master seed");
  if (!opts.parse(argc, argv)) return 1;
  const auto n = static_cast<std::uint32_t>(opts.get_int("processors"));
  const auto tokens = static_cast<std::int64_t>(opts.get_int("tokens"));
  const auto limit = static_cast<std::uint32_t>(opts.get_int("limit"));
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed"));

  bench::print_header(
      "Token distribution (static; the paper's refs [12,16,17])",
      "schedule-driven schemes solve it alone; the paper's demand-driven "
      "trigger needs a demand trickle — its setting is dynamic by design");

  unsigned dim = 0;
  while ((1u << dim) < n) ++dim;
  DLB_REQUIRE((1u << dim) == n, "processors must be a power of two");
  const Topology torus = Topology::balanced_torus(n);

  // Static demand: nothing ever happens.
  const Trace static_demand(n, limit);
  // Trickle demand: every processor generates with probability 0.01.
  Rng trickle_rng(seed);
  const Trace trickle = Trace::record(
      Workload::uniform(n, limit, 0.01, 0.0), trickle_rng);

  const std::int64_t tolerance =
      std::max<std::int64_t>(2, tokens / (8 * n));

  TextTable table({"strategy", "demand", "steps to max-min <= tol",
                   "packets moved"});
  auto run_one = [&](std::unique_ptr<LoadBalancer> balancer,
                     const Trace& trace, const char* demand) {
    for (std::int64_t i = 0; i < tokens; ++i) balancer->generate(0);
    const std::uint32_t steps =
        steps_to_balance(*balancer, trace, tolerance, limit);
    table.row()
        .cell(balancer->name() + (steps >= limit ? " (never)" : ""))
        .cell(demand)
        .cell(static_cast<std::size_t>(steps))
        .cell(static_cast<unsigned long long>(balancer->packets_moved()));
  };

  run_one(std::make_unique<Diffusion>(torus, Diffusion::Params{}),
          static_demand, "static");
  run_one(std::make_unique<DimensionExchange>(
              dim, DimensionExchange::Params{}),
          static_demand, "static");
  run_one(std::make_unique<RudolphUpfal>(n, RudolphUpfal::Params{}, seed),
          static_demand, "static");
  {
    BalancerConfig cfg;
    cfg.f = 1.1;
    cfg.delta = 2;
    run_one(std::make_unique<DlbAdapter>(n, cfg, seed), static_demand,
            "static");
    run_one(std::make_unique<DlbAdapter>(n, cfg, seed), trickle,
            "1% trickle");
  }
  table.print(std::cout);
  std::cout << "\ntolerance (max-min) = " << tolerance << " packets, "
            << tokens << " tokens on processor 0 at t=0.\n";
  return 0;
}
