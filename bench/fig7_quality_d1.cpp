// Figure 7: balancing quality over time, delta = 1, f in {1.1, 1.8}.
//
// 64 processors, 500 global steps, the §7 phase workload
// (g in [0.1,0.9], c in [0.1,0.7], phase length in [150,400]), C = 4,
// 100 runs.  For each time step: the average load of a processor and the
// most extreme single-processor loads ever observed across all runs.
//
// Paper expectation: min/max envelopes hug the average; f = 1.1 gives a
// visibly tighter envelope than f = 1.8.
#include <iostream>

#include "bench_common.hpp"

using namespace dlb;

int main(int argc, char** argv) {
  CliOptions opts = bench::paper_options();
  if (!opts.parse(argc, argv)) return 1;
  ExperimentSpec spec = bench::spec_from(opts);
  spec.config.delta = 1;
  spec.config.borrow_cap = 4;

  bench::print_header(
      "Figure 7 — balancing quality, delta = 1, f in {1.1, 1.8}",
      "min/max envelopes stay close to the average; smaller f = tighter");

  for (double f : {1.1, 1.8}) {
    spec.config.f = f;
    LoadSeriesRecorder recorder(spec.horizon);
    run_experiment(spec, paper_workload_factory(), recorder);
    bench::print_series(recorder, 25,
                        "delta=1 f=" + format_double(f, 1) + " ("
                            + std::to_string(spec.runs) + " runs)",
                        &opts,
                        "fig7_d1_f" + std::to_string(int(f * 10)));
    bench::plot_series(recorder, "delta=1 f=" + format_double(f, 1));
    // Envelope width summary for quick comparison.
    double worst = 0.0;
    for (std::uint32_t t = 100; t < spec.horizon; ++t) {
      const double avg = recorder.series().mean(t);
      if (avg <= 0) continue;
      worst = std::max(worst, (recorder.series().max(t) - avg) / avg);
    }
    std::cout << "max relative deviation of the envelope (t >= 100): "
              << format_double(worst, 3) << "\n\n";
  }
  return 0;
}
