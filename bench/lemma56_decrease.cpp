// Lemmas 5/6 (§6): expected number of balancing operations needed to
// shrink processor i's class-i load from x to x - c, compared with the
// lower bound, the closed-form upper bound (Lemma 5) and the improved
// iterative upper bound (Lemma 6).
//
// Paper expectation: "the bounds are very close to reality", the count is
// nearly independent of delta and n, very sensitive to f (more operations
// for smaller f), and depends on c/x rather than on x alone.
#include <iostream>

#include "bench_common.hpp"
#include "core/one_processor.hpp"
#include "support/stats.hpp"
#include "theory/bounds.hpp"

using namespace dlb;

namespace {

double measure_ops(std::uint32_t n, std::uint32_t delta, double f,
                   std::int64_t x, std::int64_t c, std::uint32_t runs,
                   Rng& seeder) {
  ModelParams mp{static_cast<double>(n), static_cast<double>(delta), f};
  const double fix = fixpoint(mp);
  RunningMoments ops;
  for (std::uint32_t r = 0; r < runs; ++r) {
    OneProcessorModel::Params op;
    op.n = n;
    op.delta = delta;
    op.f = f;
    OneProcessorModel model(op, seeder.next());
    model.set_load(0, x);
    for (std::uint32_t i = 1; i < n; ++i)
      model.set_load(
          i, static_cast<std::int64_t>(static_cast<double>(x) / fix));
    model.set_trigger_baseline(x);
    ops.add(static_cast<double>(
        model.consume_total(static_cast<std::uint64_t>(c))));
  }
  return ops.mean();
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opts;
  opts.add_int("runs", 80, "runs per configuration")
      .add_int("seed", 1993, "master seed");
  if (!opts.parse(argc, argv)) return 1;
  const auto runs = static_cast<std::uint32_t>(opts.get_int("runs"));
  Rng seeder(static_cast<std::uint64_t>(opts.get_int("seed")));

  bench::print_header(
      "Lemmas 5/6 — cost of simulating a workload decrease",
      "bounds close to measurement; sensitive to f, insensitive to n, "
      "delta, and to x at fixed c/x");

  std::cout << "-- f sweep (n=32, delta=1, x=3000, c=1200) --\n";
  {
    TextTable table({"f", "lower (L5)", "measured", "upper (L6)",
                     "upper (L5)", "L5 upper valid"});
    for (double f : {1.1, 1.2, 1.3, 1.5, 1.8}) {
      ModelParams mp{32, 1, f};
      const auto l5 = lemma5_bounds(3000, 1200, mp);
      const double l6 = lemma6_upper(3000, 1200, mp);
      const double measured = measure_ops(32, 1, f, 3000, 1200, runs, seeder);
      table.row()
          .cell(f, 1)
          .cell(l5.lower, 1)
          .cell(measured, 1)
          .cell(l6, 1)
          .cell(l5.upper_valid ? l5.upper : 0.0, 1)
          .cell(l5.upper_valid ? "yes" : "no");
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  std::cout << "-- delta sweep (n=32, f=1.3): count nearly flat --\n";
  {
    TextTable table({"delta", "lower (L5)", "measured", "upper (L6)"});
    for (std::uint32_t delta : {1u, 2u, 4u, 8u}) {
      ModelParams mp{32, static_cast<double>(delta), 1.3};
      const auto l5 = lemma5_bounds(3000, 1200, mp);
      const double l6 = lemma6_upper(3000, 1200, mp);
      const double measured =
          measure_ops(32, delta, 1.3, 3000, 1200, runs, seeder);
      table.row()
          .cell(static_cast<std::size_t>(delta))
          .cell(l5.lower, 1)
          .cell(measured, 1)
          .cell(l6, 1);
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  std::cout << "-- n sweep (delta=1, f=1.3): count nearly flat --\n";
  {
    TextTable table({"n", "lower (L5)", "measured", "upper (L6)"});
    for (std::uint32_t n : {8u, 16u, 32u, 64u, 128u}) {
      ModelParams mp{static_cast<double>(n), 1, 1.3};
      const auto l5 = lemma5_bounds(3000, 1200, mp);
      const double l6 = lemma6_upper(3000, 1200, mp);
      const double measured =
          measure_ops(n, 1, 1.3, 3000, 1200, runs, seeder);
      table.row()
          .cell(static_cast<std::size_t>(n))
          .cell(l5.lower, 1)
          .cell(measured, 1)
          .cell(l6, 1);
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  std::cout << "-- scale sweep at fixed c/x = 0.4 (n=32, delta=1, f=1.3) --\n";
  {
    TextTable table({"x", "c", "lower (L5)", "measured", "upper (L6)"});
    for (std::int64_t x : {500, 2000, 8000, 32000}) {
      const std::int64_t c = (x * 2) / 5;
      ModelParams mp{32, 1, 1.3};
      const auto l5 = lemma5_bounds(static_cast<double>(x),
                                    static_cast<double>(c), mp);
      const double l6 = lemma6_upper(static_cast<double>(x),
                                     static_cast<double>(c), mp);
      const double measured = measure_ops(32, 1, 1.3, x, c, runs, seeder);
      table.row()
          .cell(static_cast<long long>(x))
          .cell(static_cast<long long>(c))
          .cell(l5.lower, 1)
          .cell(measured, 1)
          .cell(l6, 1);
    }
    table.print(std::cout);
  }
  return 0;
}
