// Shared plumbing for the figure/table reproduction binaries.
//
// Each binary regenerates one table or figure of the paper: it runs the
// experiment, prints the series/rows the paper reports, and states the
// paper's qualitative expectation next to the measured values so the
// output is self-auditing.
#pragma once

#include <cstdint>
#include <cstdio>
#include <deque>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.hpp"
#include "metrics/recorder.hpp"
#include "obs/metrics.hpp"
#include "support/cli.hpp"
#include "support/plot.hpp"
#include "support/table.hpp"

namespace dlb::bench {

/// Machine-readable benchmark output: ordered key/value rows, written as
/// {"results": [{...}, ...]} — the shape BENCH_core.json and
/// tools/perf_check.sh consume.  Values render as JSON scalars;
/// append_metrics() folds a metrics snapshot into a row so benches report
/// the same numbers the observability layer collected.
class JsonRows {
 public:
  class Row {
   public:
    Row& set(const std::string& key, const std::string& v) {
      fields_.emplace_back(key, "\"" + obs::json_escape(v) + "\"");
      return *this;
    }
    Row& set(const std::string& key, const char* v) {
      return set(key, std::string(v));
    }
    Row& set(const std::string& key, double v) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.9g", v);
      // JSON has no inf/nan literals.
      fields_.emplace_back(key, v == v && v - v == 0.0 ? buf : "null");
      return *this;
    }
    Row& set(const std::string& key, std::int64_t v) {
      fields_.emplace_back(key, std::to_string(v));
      return *this;
    }
    Row& set(const std::string& key, std::uint64_t v) {
      fields_.emplace_back(key, std::to_string(v));
      return *this;
    }
    Row& set(const std::string& key, std::uint32_t v) {
      return set(key, static_cast<std::uint64_t>(v));
    }

   private:
    friend class JsonRows;
    std::vector<std::pair<std::string, std::string>> fields_;
  };

  Row& row() {
    rows_.emplace_back();
    return rows_.back();
  }

  /// Folds every instrument whose name starts with `prefix` into `row`:
  /// counters/gauges as "<name>", histograms as "<name>.{count,mean,
  /// p50,p99}" — so e.g. run_parallel barrier-wait percentiles land in
  /// the same row as the wall-clock columns.
  static void append_metrics(Row& row, const obs::MetricsSnapshot& snap,
                             const std::string& prefix) {
    for (const obs::MetricValue& m : snap.values) {
      if (m.name.rfind(prefix, 0) != 0) continue;
      if (m.kind == obs::MetricValue::Kind::Histogram) {
        row.set(m.name + ".count", m.count)
            .set(m.name + ".mean", m.mean)
            .set(m.name + ".p50", m.p50)
            .set(m.name + ".p99", m.p99)
            .set(m.name + ".p999", m.p999);
      } else {
        row.set(m.name, static_cast<std::int64_t>(m.value));
      }
    }
  }

  void write(std::ostream& os) const {
    os << "{\"results\": [";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      os << (r == 0 ? "\n  {" : ",\n  {");
      const auto& fields = rows_[r].fields_;
      for (std::size_t i = 0; i < fields.size(); ++i) {
        if (i != 0) os << ", ";
        os << '"' << obs::json_escape(fields[i].first)
           << "\": " << fields[i].second;
      }
      os << '}';
    }
    os << "\n]}\n";
  }

  bool write_file(const std::string& path) const {
    std::ofstream os(path);
    if (!os.good()) {
      std::cerr << "cannot write " << path << "\n";
      return false;
    }
    write(os);
    return os.good();
  }

 private:
  std::deque<Row> rows_;  // deque: row() hands out stable references
};

/// Prints the standard header every reproduction binary starts with.
inline void print_header(const std::string& experiment,
                         const std::string& paper_claim) {
  std::cout << "== " << experiment << " ==\n"
            << "paper: Luling & Monien, SPAA'93 — " << paper_claim << "\n\n";
}

void maybe_write_csv(const TextTable& table, const CliOptions& opts,
                     const std::string& name);

/// Figures 7/8 series printer: avg / min / max load per step, thinned to
/// every `stride` steps.  When `opts`/`csv_name` are given, the *full*
/// (unthinned) series is also written as CSV.
inline void print_series(const LoadSeriesRecorder& recorder,
                         std::uint32_t stride, const std::string& label,
                         const CliOptions* opts = nullptr,
                         const std::string& csv_name = "") {
  std::cout << "-- " << label << " --\n";
  TextTable table({"step", "avg load", "min load", "max load"});
  for (std::uint32_t t = 0; t < recorder.series().steps(); t += stride) {
    table.row()
        .cell(static_cast<std::size_t>(t + 1))
        .cell(recorder.series().mean(t), 2)
        .cell(recorder.series().min(t), 0)
        .cell(recorder.series().max(t), 0);
  }
  const std::uint32_t last =
      static_cast<std::uint32_t>(recorder.series().steps()) - 1;
  if (last % stride != 0) {
    table.row()
        .cell(static_cast<std::size_t>(last + 1))
        .cell(recorder.series().mean(last), 2)
        .cell(recorder.series().min(last), 0)
        .cell(recorder.series().max(last), 0);
  }
  table.print(std::cout);
  std::cout << '\n';
  if (opts != nullptr && !csv_name.empty()) {
    TextTable full({"step", "avg", "min", "max"});
    for (std::uint32_t t = 0; t < recorder.series().steps(); ++t) {
      full.row()
          .cell(static_cast<std::size_t>(t + 1))
          .cell(recorder.series().mean(t), 4)
          .cell(recorder.series().min(t), 0)
          .cell(recorder.series().max(t), 0);
    }
    maybe_write_csv(full, *opts, csv_name);
  }
}

/// ASCII rendering of the avg/min/max envelope — the visual shape of
/// Figures 7/8.
inline void plot_series(const LoadSeriesRecorder& recorder,
                        const std::string& label) {
  PlotSeries avg{"avg", '*', {}};
  PlotSeries lo{"min", '.', {}};
  PlotSeries hi{"max", '^', {}};
  for (std::uint32_t t = 0; t < recorder.series().steps(); ++t) {
    avg.values.push_back(recorder.series().mean(t));
    lo.values.push_back(recorder.series().min(t));
    hi.values.push_back(recorder.series().max(t));
  }
  PlotOptions opts;
  opts.y_label = "load (" + label + ")";
  render_plot(std::cout, {lo, hi, avg}, opts);
  std::cout << '\n';
}

/// The paper's §7 experiment setup (64 processors, 500 steps, 100 runs)
/// with CLI overrides.
inline CliOptions paper_options() {
  CliOptions opts;
  opts.add_int("processors", 64, "network size n")
      .add_int("steps", 500, "global time steps")
      .add_int("runs", 100, "independent runs per configuration")
      .add_int("seed", 1993, "master seed")
      .add_string("csv_dir", "", "also write each table as CSV into this "
                                 "directory");
  return opts;
}

/// Writes `table` as <csv_dir>/<name>.csv when --csv_dir was given.
inline void maybe_write_csv(const TextTable& table, const CliOptions& opts,
                            const std::string& name) {
  const std::string& dir = opts.get_string("csv_dir");
  if (dir.empty()) return;
  const std::string path = dir + "/" + name + ".csv";
  std::ofstream os(path);
  if (!os.good()) {
    std::cerr << "cannot write " << path << "\n";
    return;
  }
  table.write_csv(os);
  std::cout << "(csv written to " << path << ")\n";
}

inline ExperimentSpec spec_from(const CliOptions& opts) {
  ExperimentSpec spec;
  spec.processors = static_cast<std::uint32_t>(opts.get_int("processors"));
  spec.horizon = static_cast<std::uint32_t>(opts.get_int("steps"));
  spec.runs = static_cast<std::uint32_t>(opts.get_int("runs"));
  spec.seed = static_cast<std::uint64_t>(opts.get_int("seed"));
  return spec;
}

}  // namespace dlb::bench
