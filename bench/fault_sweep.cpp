// Fault sweep: balancing quality degradation and ledger integrity of
// the failure-tolerant SPMD runtime as the message-drop rate rises from
// 0 to 20%, with and without a mid-run processor crash.
//
// The paper assumes a reliable transputer network; this bench answers
// the engineering question its §7 experiments could not: how gracefully
// does the replicated-decision balancer degrade when the network is
// *not* reliable?  Two claims are checked per cell:
//   - conservation-modulo-declared-loss holds exactly at every drop
//     rate (the ledger closes: sum(final) == generated - consumed -
//     declared lost), and
//   - imbalance (max/avg over live processors) degrades smoothly with
//     the drop rate rather than collapsing -- lost Assigns cost balance
//     quality, never correctness.
//
// The crash column additionally kills one rank halfway through the run:
// survivors must redraw partners over the live set and finish with the
// same ledger guarantee (the dead rank's drift since its last journal
// checkpoint is the declared crash loss).
#include <chrono>
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "mp/spmd_balance.hpp"
#include "mp/spmd_socket.hpp"
#include "workload/trace.hpp"

using namespace dlb;

int main(int argc, char** argv) {
  CliOptions opts;
  opts.add_int("ranks", 8, "SPMD ranks (threads)")
      .add_int("steps", 400, "global time steps")
      .add_int("ckpt", 10, "journal checkpoint interval (steps)")
      .add_int("timeout-ms", 25, "per-transfer receive deadline")
      .add_int("seed", 1993, "fault-plan seed")
      .add_string("transport", "local",
                  "rank wiring: local (threads) or socket (forked "
                  "processes over Unix-domain sockets; --kill cells are "
                  "then real SIGKILLs)")
      .add_string("csv_dir", "", "also write the table as CSV into this "
                                 "directory");
  if (!opts.parse(argc, argv)) return 1;
  const int n = static_cast<int>(opts.get_int("ranks"));
  const auto steps = static_cast<std::uint32_t>(opts.get_int("steps"));
  const bool socket = opts.get_string("transport") == "socket";
  if (!socket && opts.get_string("transport") != "local") {
    std::cerr << "--transport must be local or socket\n";
    return 1;
  }

  bench::print_header(
      socket ? "fault sweep (drop rate x crash), socket transport"
             : "fault sweep (drop rate x crash)",
      "robustness extension: conservation modulo declared loss under "
      "unreliable links and processor crashes");

  // Identical demand for every cell, as in the baseline benches.
  Rng wl_rng(31);
  const Workload wl = Workload::paper_benchmark(
      static_cast<std::uint32_t>(n), steps, WorkloadParams{}, wl_rng);
  Rng trace_rng(32);
  const Trace trace = Trace::record(wl, trace_rng);

  SpmdParams params;
  params.recv_timeout =
      std::chrono::milliseconds(opts.get_int("timeout-ms"));

  TextTable table({"drop %", "crash", "dead", "max/avg live", "timeouts",
                   "dropped", "lost load", "crash loss", "ledger"});
  bool all_conserved = true;
  const std::vector<double> drops = {0.0, 0.05, 0.10, 0.15, 0.20};
  for (const bool with_crash : {false, true}) {
    for (const double drop : drops) {
      FaultPlan plan;
      plan.seed = static_cast<std::uint64_t>(opts.get_int("seed"));
      plan.default_link.drop = drop;
      plan.journal_interval =
          static_cast<std::uint32_t>(opts.get_int("ckpt"));
      if (with_crash) plan.kill(n / 2, steps / 2);

      SpmdReport report;
      if (socket) {
        SocketRunOptions sock;
        sock.ranks = n;
        sock.params = params;
        sock.plan = plan;
        report = run_spmd_balancer_socket(trace, sock).report;
      } else {
        World world(n);
        world.set_fault_plan(plan);
        report = run_spmd_balancer(world, trace, params);
      }
      all_conserved = all_conserved && report.conserved;

      table.row()
          .cell(drop * 100.0, 0)
          .cell(with_crash ? "yes" : "no")
          .cell(static_cast<std::size_t>(report.ranks_dead))
          .cell(report.max_over_avg, 2)
          .cell(static_cast<std::size_t>(report.recv_timeouts))
          .cell(static_cast<std::size_t>(report.messages_dropped))
          .cell(static_cast<long long>(report.transfer_lost))
          .cell(static_cast<long long>(report.crash_lost))
          .cell(report.conserved ? "closes" : "VIOLATED");
    }
  }
  table.print(std::cout);
  bench::maybe_write_csv(table, opts, "fault_sweep");

  std::cout << "\nexpectation: the ledger closes in every cell; max/avg "
               "rises smoothly with the drop rate (and with a crash) "
               "instead of collapsing.\n"
            << "ledger check: "
            << (all_conserved ? "all cells conserve" : "CONSERVATION BUG")
            << "\n";
  return all_conserved ? 0 : 2;
}
