// Figure 10: per-processor load distribution at t in {50, 200, 400},
// delta = 4, f in {1.1, 1.8} — the delta = 4 companion of Figure 9.
//
// Paper expectation: "the figures show the large impact of parameter
// delta on the balancing quality, whereas the parameter f plays only a
// minor role, if delta is already large" — spreads here are clearly
// smaller than in Figure 9 and nearly identical between the two f values.
#include <iostream>

#include "bench_common.hpp"

using namespace dlb;

namespace {

double run_figure(ExperimentSpec spec, double f,
                  const dlb::CliOptions& opts) {
  spec.config.f = f;
  const std::vector<std::uint32_t> times{49, 199, 399};
  SnapshotRecorder recorder(spec.processors, times);
  run_experiment(spec, paper_workload_factory(), recorder);

  std::cout << "-- delta=" << spec.config.delta << " f=" << f << " --\n";
  TextTable table({"proc", "E@50", "min@50", "max@50", "E@200", "min@200",
                   "max@200", "E@400", "min@400", "max@400"});
  for (std::uint32_t p = 0; p < spec.processors; ++p) {
    auto& row = table.row().cell(static_cast<std::size_t>(p));
    for (std::size_t s = 0; s < times.size(); ++s) {
      const RunningMoments& m = recorder.at(s, p);
      row.cell(m.mean(), 1).cell(m.min(), 0).cell(m.max(), 0);
    }
  }
  table.print(std::cout);
  bench::maybe_write_csv(table, opts,
                         "fig10_d4_f" + std::to_string(int(f * 10)));

  double final_spread = 0.0;
  TextTable summary({"snapshot t", "E spread (max-min of means)",
                     "widest run envelope"});
  for (std::size_t s = 0; s < times.size(); ++s) {
    double lo = 1e18;
    double hi = -1e18;
    double widest = 0.0;
    for (std::uint32_t p = 0; p < spec.processors; ++p) {
      const RunningMoments& m = recorder.at(s, p);
      lo = std::min(lo, m.mean());
      hi = std::max(hi, m.mean());
      widest = std::max(widest, m.max() - m.min());
    }
    summary.row()
        .cell(static_cast<std::size_t>(times[s] + 1))
        .cell(hi - lo, 2)
        .cell(widest, 0);
    final_spread = hi - lo;
  }
  std::cout << '\n';
  summary.print(std::cout);
  std::cout << '\n';
  return final_spread;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opts = bench::paper_options();
  if (!opts.parse(argc, argv)) return 1;
  ExperimentSpec spec = bench::spec_from(opts);
  spec.config.delta = 4;
  spec.config.borrow_cap = 4;

  bench::print_header(
      "Figure 10 — load distribution across processors, delta = 4",
      "spreads much smaller than Figure 9; f nearly irrelevant at delta=4");
  const double s1 = run_figure(spec, 1.1, opts);
  const double s2 = run_figure(spec, 1.8, opts);
  std::cout << "f impact on final E-spread at delta=4: |"
            << format_double(s1, 2) << " - " << format_double(s2, 2)
            << "| = " << format_double(std::abs(s1 - s2), 2) << '\n';
  return 0;
}
