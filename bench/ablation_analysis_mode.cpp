// Ablation [D7]: the practical balancing operation (every class dealt over
// all participants, as in the implementations of [7]) versus the
// analysis-mode variant (§4: a non-initiating participant's own class is
// balanced only among the *other* participants, keeping its candidates
// random for the proof).
//
// Expectation: both conserve load and balance well; analysis mode pays a
// little quality (a participant's own class cannot flow to it during
// others' operations) for proof cleanliness — the practical variant is
// the one the paper's applications ship.
#include <iostream>

#include "bench_common.hpp"
#include "metrics/imbalance.hpp"
#include "support/stats.hpp"

using namespace dlb;

int main(int argc, char** argv) {
  CliOptions opts = bench::paper_options();
  if (!opts.parse(argc, argv)) return 1;
  ExperimentSpec base = bench::spec_from(opts);
  base.runs = std::min<std::uint32_t>(base.runs, 40);

  bench::print_header(
      "Ablation [D7] — practical vs analysis-mode class dealing",
      "similar balance; analysis mode slightly looser, same conservation");

  TextTable table({"mode", "f", "delta", "E-spread @end", "widest envelope",
                   "avg balance ops/run", "avg packets moved/run"});
  for (bool analysis : {false, true}) {
    for (double f : {1.1, 1.8}) {
      ExperimentSpec spec = base;
      spec.config.f = f;
      spec.config.delta = 2;
      spec.config.analysis_mode = analysis;
      SnapshotRecorder snap(spec.processors, {spec.horizon - 1});
      ActivityRecorder activity;
      MultiRecorder multi;
      multi.attach(&snap);
      multi.attach(&activity);
      run_experiment(spec, paper_workload_factory(), multi);
      double lo = 1e18;
      double hi = -1e18;
      double widest = 0.0;
      for (std::uint32_t p = 0; p < spec.processors; ++p) {
        const RunningMoments& m = snap.at(0, p);
        lo = std::min(lo, m.mean());
        hi = std::max(hi, m.mean());
        widest = std::max(widest, m.max() - m.min());
      }
      table.row()
          .cell(analysis ? "analysis" : "practical")
          .cell(f, 1)
          .cell(static_cast<std::size_t>(spec.config.delta))
          .cell(hi - lo, 2)
          .cell(widest, 0)
          .cell(activity.avg_operations_per_run(), 1)
          .cell(activity.avg_packets_moved_per_run(), 0);
    }
  }
  table.print(std::cout);
  return 0;
}
