#include <gtest/gtest.h>

#include <memory>

#include "baselines/adapter.hpp"
#include "baselines/balancer.hpp"
#include "baselines/diffusion.hpp"
#include "baselines/rsu.hpp"
#include "baselines/simple.hpp"
#include "baselines/stealing.hpp"
#include "metrics/imbalance.hpp"
#include "support/stats.hpp"

namespace dlb {
namespace {

Trace make_trace(std::uint32_t n, std::uint32_t horizon, double g, double c,
                 std::uint64_t seed) {
  Rng rng(seed);
  return Trace::record(Workload::uniform(n, horizon, g, c), rng);
}

Trace hotspot_trace(std::uint32_t n, std::uint32_t horizon,
                    std::uint64_t seed) {
  Rng rng(seed);
  return Trace::record(Workload::hotspot(n, horizon, 1, 0.9, 0.3), rng);
}

void expect_conservation(LoadBalancer& balancer, const Trace& trace) {
  // total load == generations − successful consumptions; successful
  // consumptions == attempts − failures.
  const std::int64_t expected =
      static_cast<std::int64_t>(trace.total_generations()) -
      (static_cast<std::int64_t>(trace.total_consume_attempts()) -
       static_cast<std::int64_t>(balancer.consume_failures()));
  EXPECT_EQ(balancer.total_load(), expected) << balancer.name();
}

TEST(NoBalancing, ConservesAndNeverMoves) {
  const auto trace = make_trace(8, 200, 0.5, 0.4, 1);
  NoBalancing nb(8);
  run_trace(nb, trace);
  expect_conservation(nb, trace);
  EXPECT_EQ(nb.packets_moved(), 0u);
  EXPECT_EQ(nb.messages(), 0u);
}

TEST(NoBalancing, HotspotStaysUnbalanced) {
  const auto trace = hotspot_trace(8, 300, 2);
  NoBalancing nb(8);
  run_trace(nb, trace);
  const auto report = measure_imbalance(nb.loads());
  // All load sits on processor 0.
  EXPECT_GT(report.max_over_avg, 6.0);
}

TEST(RandomScatter, ConservesLoad) {
  const auto trace = make_trace(8, 200, 0.6, 0.3, 3);
  RandomScatter rs(8, 99);
  run_trace(rs, trace);
  expect_conservation(rs, trace);
  EXPECT_GT(rs.packets_moved(), 0u);
}

TEST(RandomScatter, ExpectedBalanceButHugeVariance) {
  // §5's point: the per-step load of a fixed processor has mean ~ total/n
  // but enormous spread.
  const auto trace = hotspot_trace(8, 400, 4);
  RandomScatter rs(8, 7);
  RunningMoments proc0;
  run_trace(rs, trace,
            [&](std::uint32_t, const std::vector<std::int64_t>& loads) {
              proc0.add(static_cast<double>(loads[0]));
            });
  // Variation density of a single processor's load over time is large
  // (most steps zero, occasionally the whole queue).
  EXPECT_GT(proc0.variation_density(), 1.0);
}

TEST(RudolphUpfal, ConservesAndBalancesHotspot) {
  // Supply-rich hotspot (see WorkStealing test for the rationale): the
  // residual load must end far better spread than with no balancing.
  Rng rng(5);
  const Trace trace =
      Trace::record(Workload::hotspot(16, 400, 1, 0.9, 0.05), rng);
  RudolphUpfal rsu(16, {}, 11);
  run_trace(rsu, trace);
  expect_conservation(rsu, trace);
  EXPECT_GT(rsu.messages(), 0u);

  NoBalancing nb(16);
  run_trace(nb, trace);
  const auto r_rsu = measure_imbalance(rsu.loads());
  const auto r_nb = measure_imbalance(nb.loads());
  EXPECT_LT(r_rsu.max_deviation, r_nb.max_deviation / 2.0);
  EXPECT_LT(rsu.consume_failures(), nb.consume_failures());
}

TEST(RudolphUpfal, EmptyConsumeProbesForWork) {
  RudolphUpfal rsu(2, {}, 13);
  rsu.generate(0);
  rsu.generate(0);
  rsu.generate(0);
  rsu.generate(0);
  // Processor 1 is empty; its consume should (with probability 1 per the
  // scheme) probe and often acquire work.
  int successes = 0;
  for (int i = 0; i < 4; ++i) successes += rsu.consume(1);
  EXPECT_GT(successes, 0);
}

TEST(WorkStealing, ConservesAndServesStarvedConsumers) {
  // Supply must exceed demand for the failure-rate comparison to be about
  // *policy*: one producer at 0.9 packets/step vs 15 consumers at 0.05
  // attempts/step each (0.75 total).
  Rng rng(6);
  const Trace trace =
      Trace::record(Workload::hotspot(16, 400, 1, 0.9, 0.05), rng);
  WorkStealing ws(16, {}, 17);
  run_trace(ws, trace);
  expect_conservation(ws, trace);
  EXPECT_GT(ws.steals(), 0u);
  // Stealing keeps consumers fed: failure rate far below no-balancing.
  NoBalancing nb(16);
  run_trace(nb, trace);
  EXPECT_LT(ws.consume_failures(), nb.consume_failures() / 2);
}

TEST(WorkStealing, StealsHalf) {
  WorkStealing ws(2, {.max_probes = 1u}, 19);
  for (int i = 0; i < 10; ++i) ws.generate(0);
  EXPECT_TRUE(ws.consume(1));  // must steal from 0 (the only victim)
  // Victim had 10 -> thief stole 5, consumed 1.
  EXPECT_EQ(ws.loads()[0], 5);
  EXPECT_EQ(ws.loads()[1], 4);
}

TEST(Diffusion, ConservesOnTopology) {
  const auto topo = Topology::torus2d(4, 4);
  const auto trace = hotspot_trace(16, 300, 8);
  Diffusion diff(topo, {});
  run_trace(diff, trace);
  expect_conservation(diff, trace);
  EXPECT_GT(diff.packets_moved(), 0u);
}

TEST(Diffusion, SpreadsLoadAcrossTorus) {
  const auto topo = Topology::torus2d(4, 4);
  Diffusion diff(topo, {});
  for (int i = 0; i < 1600; ++i) diff.generate(0);
  for (std::uint32_t step = 0; step < 50; ++step) diff.end_step(step);
  const auto report = measure_imbalance(diff.loads());
  EXPECT_LT(report.max_over_avg, 2.0);
  EXPECT_GT(report.min_load, 0.0);
}

TEST(Diffusion, AlphaDefaultsToStableValue) {
  const auto topo = Topology::hypercube(3);  // degree 3
  Diffusion diff(topo, {});
  EXPECT_DOUBLE_EQ(diff.alpha(), 0.25);
}

TEST(DlbAdapter, MatchesDirectSystemRun) {
  const auto trace = make_trace(8, 200, 0.6, 0.4, 9);
  BalancerConfig cfg;
  DlbAdapter adapter(8, cfg, 42);
  run_trace(adapter, trace);
  System direct(8, cfg, 42);
  direct.run(trace);
  EXPECT_EQ(adapter.loads(), direct.loads());
  expect_conservation(adapter, trace);
}

TEST(DlbAdapter, ReportsCosts) {
  const auto trace = hotspot_trace(8, 200, 10);
  DlbAdapter adapter(8, BalancerConfig{}, 43);
  run_trace(adapter, trace);
  EXPECT_GT(adapter.messages(), 0u);
  EXPECT_GT(adapter.packets_moved(), 0u);
}

TEST(DlbAdapter, BeginRunReanchorsCostBaselines) {
  // The adapter counts *deltas* of the wrapped System's cost ledger.  If
  // the System is driven directly between run_trace calls, the ledger
  // advances outside the adapter's counting; begin_run (called by
  // run_trace) must re-anchor the baselines so the externally-opened gap
  // is not attributed to the next run.
  const auto trace = hotspot_trace(8, 200, 10);
  DlbAdapter adapter(8, BalancerConfig{}, 47);
  run_trace(adapter, trace);
  const std::uint64_t counted_before = adapter.messages();

  Rng rng(2);
  adapter.system().run(
      Workload::paper_benchmark(8, 100, WorkloadParams{}, rng));
  const std::uint64_t totals_before_replay =
      adapter.system().costs().totals().messages;
  EXPECT_GT(totals_before_replay, 0u);

  Rng rng2(3);
  const Trace replay =
      Trace::record(Workload::uniform(8, 20, 0.0, 0.5), rng2);
  run_trace(adapter, replay);
  const std::uint64_t replay_delta =
      adapter.system().costs().totals().messages - totals_before_replay;
  // Exactly the replay's own ledger delta was counted — nothing leaked
  // from the direct run.
  EXPECT_EQ(adapter.messages() - counted_before, replay_delta);
}

TEST(Comparison, DlbBeatsNoBalancingOnHotspot) {
  const auto trace = hotspot_trace(16, 400, 11);
  DlbAdapter ours(16, BalancerConfig{}, 44);
  NoBalancing none(16);
  run_trace(ours, trace);
  run_trace(none, trace);
  const auto r_ours = measure_imbalance(ours.loads());
  const auto r_none = measure_imbalance(none.loads());
  EXPECT_LT(r_ours.max_over_avg, r_none.max_over_avg);
  EXPECT_LT(ours.consume_failures(), none.consume_failures());
}

TEST(Comparison, DlbVarianceFarBelowRandomScatter) {
  const auto trace = hotspot_trace(8, 400, 12);
  DlbAdapter ours(8, BalancerConfig{}, 45);
  RandomScatter scatter(8, 46);
  RunningMoments ours0;
  RunningMoments scatter0;
  run_trace(ours, trace,
            [&](std::uint32_t, const std::vector<std::int64_t>& loads) {
              ours0.add(static_cast<double>(loads[0]));
            });
  run_trace(scatter, trace,
            [&](std::uint32_t, const std::vector<std::int64_t>& loads) {
              scatter0.add(static_cast<double>(loads[0]));
            });
  EXPECT_LT(ours0.variation_density(), scatter0.variation_density());
}

}  // namespace
}  // namespace dlb
