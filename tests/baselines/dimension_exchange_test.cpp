#include "baselines/dimension_exchange.hpp"

#include <gtest/gtest.h>

#include "baselines/simple.hpp"
#include "metrics/imbalance.hpp"
#include "support/check.hpp"

namespace dlb {
namespace {

TEST(DimensionExchange, OneFullSweepBalancesStaticLoad) {
  DimensionExchange dx(3, {.one_dimension_per_step = false});
  for (int i = 0; i < 80; ++i) dx.generate(0);
  dx.end_step(0);  // full sweep: all 3 dimensions
  const auto loads = dx.loads();
  for (std::int64_t l : loads) EXPECT_EQ(l, 10);
}

TEST(DimensionExchange, AsynchronousScheduleConvergesInDSteps) {
  DimensionExchange dx(4, {});
  for (int i = 0; i < 160; ++i) dx.generate(5);
  for (std::uint32_t t = 0; t < 4; ++t) dx.end_step(t);
  const auto report = measure_imbalance(dx.loads());
  EXPECT_LE(report.max_load - report.min_load, 1.0);
}

TEST(DimensionExchange, OddPacketsStayWithinOne) {
  DimensionExchange dx(3, {.one_dimension_per_step = false});
  for (int i = 0; i < 83; ++i) dx.generate(2);  // not divisible by 8
  dx.end_step(0);
  const auto report = measure_imbalance(dx.loads());
  EXPECT_LE(report.max_load - report.min_load, 1.0);
  std::int64_t total = 0;
  for (std::int64_t l : dx.loads()) total += l;
  EXPECT_EQ(total, 83);
}

TEST(DimensionExchange, ConservesUnderTrace) {
  Rng rng(3);
  const Trace trace =
      Trace::record(Workload::hotspot(16, 300, 1, 0.9, 0.2), rng);
  DimensionExchange dx(4, {});
  run_trace(dx, trace);
  std::int64_t total = 0;
  for (std::int64_t l : dx.loads()) total += l;
  const auto consumed =
      static_cast<std::int64_t>(trace.total_consume_attempts()) -
      static_cast<std::int64_t>(dx.consume_failures());
  EXPECT_EQ(total,
            static_cast<std::int64_t>(trace.total_generations()) - consumed);
}

TEST(DimensionExchange, BeatsNoBalancingOnHotspot) {
  Rng rng(5);
  const Trace trace =
      Trace::record(Workload::hotspot(16, 400, 1, 0.9, 0.05), rng);
  DimensionExchange dx(4, {});
  NoBalancing nb(16);
  run_trace(dx, trace);
  run_trace(nb, trace);
  EXPECT_LT(measure_imbalance(dx.loads()).max_deviation,
            measure_imbalance(nb.loads()).max_deviation / 2.0);
  EXPECT_LT(dx.consume_failures(), nb.consume_failures());
}

TEST(DimensionExchange, ValidatesDimension) {
  EXPECT_THROW(DimensionExchange(0, {}), contract_error);
  EXPECT_THROW(DimensionExchange(21, {}), contract_error);
}

}  // namespace
}  // namespace dlb
