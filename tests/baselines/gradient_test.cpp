#include "baselines/gradient.hpp"

#include <gtest/gtest.h>

#include "baselines/simple.hpp"
#include "metrics/imbalance.hpp"
#include "support/check.hpp"

namespace dlb {
namespace {

TEST(GradientModel, ProximityZeroWhenLight) {
  const auto topo = Topology::ring(6);
  GradientModel gm(topo, {});
  gm.end_step(0);
  for (std::uint32_t p = 0; p < 6; ++p) EXPECT_EQ(gm.proximity(p), 0u);
}

TEST(GradientModel, ProximityPropagatesOneHopPerStep) {
  const auto topo = Topology::ring(8);
  GradientModel::Params params;
  params.low_watermark = 0;
  params.high_watermark = 100;  // no pushing: isolate the proximity sweep
  GradientModel gm(topo, params);
  // Load every processor except 0 so only 0 is light.
  for (std::uint32_t p = 1; p < 8; ++p)
    for (int i = 0; i < 5; ++i) gm.generate(p);
  // Sweep 1 seeds the light node; its neighbors learn on sweep 2, and
  // the estimate advances one hop per further sweep.
  gm.end_step(0);
  EXPECT_EQ(gm.proximity(0), 0u);
  EXPECT_GT(gm.proximity(1), 1u);
  gm.end_step(1);
  EXPECT_EQ(gm.proximity(1), 1u);
  EXPECT_EQ(gm.proximity(7), 1u);
  EXPECT_GT(gm.proximity(4), 2u);
  gm.end_step(2);
  EXPECT_EQ(gm.proximity(2), 2u);
  gm.end_step(3);
  gm.end_step(4);
  EXPECT_EQ(gm.proximity(4), 4u);
}

TEST(GradientModel, PushesDownTheGradient) {
  const auto topo = Topology::ring(8);
  GradientModel gm(topo, {});
  for (int i = 0; i < 40; ++i) gm.generate(0);
  for (std::uint32_t step = 0; step < 60; ++step) gm.end_step(step);
  const auto report = measure_imbalance(gm.loads());
  // Work flowed off the hotspot toward light processors.
  EXPECT_LT(report.max_load, 40.0);
  EXPECT_GT(gm.packets_moved(), 0u);
  std::int64_t total = 0;
  for (std::int64_t l : gm.loads()) total += l;
  EXPECT_EQ(total, 40);
}

TEST(GradientModel, ConservesUnderTrace) {
  const auto topo = Topology::torus2d(4, 4);
  Rng rng(3);
  const Trace trace =
      Trace::record(Workload::hotspot(16, 300, 2, 0.9, 0.2), rng);
  GradientModel gm(topo, {});
  run_trace(gm, trace);
  std::int64_t total = 0;
  for (std::int64_t l : gm.loads()) total += l;
  const auto consumed =
      static_cast<std::int64_t>(trace.total_consume_attempts()) -
      static_cast<std::int64_t>(gm.consume_failures());
  EXPECT_EQ(total,
            static_cast<std::int64_t>(trace.total_generations()) - consumed);
}

TEST(GradientModel, BeatsNoBalancingOnHotspot) {
  const auto topo = Topology::torus2d(4, 4);
  Rng rng(5);
  const Trace trace =
      Trace::record(Workload::hotspot(16, 400, 1, 0.9, 0.05), rng);
  GradientModel gm(topo, {});
  NoBalancing nb(16);
  run_trace(gm, trace);
  run_trace(nb, trace);
  EXPECT_LT(measure_imbalance(gm.loads()).max_deviation,
            measure_imbalance(nb.loads()).max_deviation);
  EXPECT_LT(gm.consume_failures(), nb.consume_failures());
}

TEST(GradientModel, ValidatesParams) {
  const auto topo = Topology::ring(4);
  GradientModel::Params bad;
  bad.low_watermark = 5;
  bad.high_watermark = 5;
  EXPECT_THROW(GradientModel(topo, bad), contract_error);
  bad.low_watermark = -1;
  EXPECT_THROW(GradientModel(topo, bad), contract_error);
}

}  // namespace
}  // namespace dlb
