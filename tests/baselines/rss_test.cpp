// RSS indirection-table baseline: conservation, table invariants, the
// controller's reaction to skew, and the cost-model contract (steering
// is free, remaps are control-plane messages).
#include <gtest/gtest.h>

#include "baselines/rss.hpp"
#include "baselines/simple.hpp"
#include "metrics/imbalance.hpp"
#include "support/check.hpp"
#include "workload/trace.hpp"

namespace dlb {
namespace {

void expect_conservation(LoadBalancer& balancer, const Trace& trace) {
  const std::int64_t expected =
      static_cast<std::int64_t>(trace.total_generations()) -
      (static_cast<std::int64_t>(trace.total_consume_attempts()) -
       static_cast<std::int64_t>(balancer.consume_failures()));
  EXPECT_EQ(balancer.total_load(), expected) << balancer.name();
}

TEST(RssIndirection, TableDefaultsToPowerOfTwoAtLeast4n) {
  RssIndirection small(8, {}, 1);
  EXPECT_EQ(small.bucket_count(), 128u);  // clamped to the NIC-like floor
  RssIndirection big(100, {}, 1);
  EXPECT_EQ(big.bucket_count(), 512u);  // next pow2 >= 400
  const std::uint32_t buckets = big.bucket_count();
  EXPECT_EQ(buckets & (buckets - 1), 0u);
  for (std::uint32_t flow = 0; flow < 1000; ++flow)
    EXPECT_LT(big.bucket_of(flow), buckets);
}

TEST(RssIndirection, RejectsNonPowerOfTwoTable) {
  RssIndirection::Params params;
  params.buckets = 100;
  EXPECT_THROW(RssIndirection(8, params, 1), contract_error);
}

TEST(RssIndirection, ConservesLoadAndSteeringIsFree) {
  Rng rng(3);
  const Trace trace =
      Trace::record(Workload::uniform(16, 300, 0.5, 0.4), rng);
  RssIndirection rss(16, {}, 7);
  run_trace(rss, trace);
  expect_conservation(rss, trace);
  // Data-plane contract: hashing a packet into the table moves nothing.
  // The only cost is control-plane remaps, one message each.
  EXPECT_EQ(rss.packets_moved(), 0u);
  EXPECT_EQ(rss.messages(), rss.reassignments());
}

TEST(RssIndirection, ControllerReactsToSkew) {
  // One flow (arrival processor 0) carries all traffic: the controller
  // must notice the imbalance at its check period and remap buckets.
  Rng rng(5);
  const Trace trace =
      Trace::record(Workload::hotspot(16, 300, 1, 0.9, 0.2), rng);
  RssIndirection rss(16, {}, 11);
  run_trace(rss, trace);
  EXPECT_GT(rss.reassignments(), 0u);
}

TEST(RssIndirection, AdaptiveTableBeatsFrozenTableUnderSkew) {
  // Same skewed trace, controller on vs off (check_period > horizon):
  // moving hot buckets away from the victim must cut consume failures
  // and end-state imbalance.  Single-flow caveat: one flow cannot be
  // split, so use several hot arrival processors.
  Rng rng(6);
  const Trace trace =
      Trace::record(Workload::hotspot(16, 400, 4, 0.9, 0.25), rng);

  RssIndirection adaptive(16, {}, 13);
  run_trace(adaptive, trace);

  RssIndirection::Params frozen_params;
  frozen_params.check_period = 100000;  // never checks within the horizon
  RssIndirection frozen(16, frozen_params, 13);
  run_trace(frozen, trace);

  EXPECT_EQ(frozen.reassignments(), 0u);
  EXPECT_GT(adaptive.reassignments(), 0u);
  const auto r_adaptive = measure_imbalance(adaptive.loads());
  const auto r_frozen = measure_imbalance(frozen.loads());
  EXPECT_LT(r_adaptive.max_deviation, r_frozen.max_deviation);
  EXPECT_LE(adaptive.consume_failures(), frozen.consume_failures());
}

TEST(RssIndirection, ReassignmentDoesNotMigrateBacklog) {
  // Pile backlog onto whatever processor bucket_of(flow 0) maps to, then
  // trigger a rebalance: the table may change, but the queued packets
  // stay where they are (real RSS cannot reach into queues).
  RssIndirection rss(4, {}, 17);
  for (int i = 0; i < 100; ++i) rss.generate(0);
  const std::vector<std::int64_t> before = rss.loads();
  for (std::uint32_t t = 0; t < 50; ++t) rss.end_step(t);
  EXPECT_GT(rss.reassignments(), 0u);
  EXPECT_EQ(rss.loads(), before);
}

TEST(RssIndirection, ConsumeFailsOnlyWhenEmpty) {
  RssIndirection rss(2, {}, 19);
  EXPECT_FALSE(rss.consume(0));
  EXPECT_EQ(rss.consume_failures(), 1u);
  rss.generate(0);
  const std::vector<std::int64_t> loads = rss.loads();
  // The packet landed on table_[bucket_of(0)] — consume from there.
  const std::uint32_t holder = loads[0] == 1 ? 0u : 1u;
  EXPECT_TRUE(rss.consume(holder));
  EXPECT_EQ(rss.total_load(), 0);
}

}  // namespace
}  // namespace dlb
