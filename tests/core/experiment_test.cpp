#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include "support/check.hpp"

namespace dlb {
namespace {

TEST(Experiment, RunsRequestedNumberOfRuns) {
  ExperimentSpec spec;
  spec.processors = 8;
  spec.horizon = 50;
  spec.runs = 5;
  spec.seed = 1;
  BorrowCounterRecorder recorder;
  run_experiment(spec, paper_workload_factory(), recorder);
  EXPECT_EQ(recorder.runs(), 5u);
}

TEST(Experiment, SeriesRecorderSeesEveryStep) {
  ExperimentSpec spec;
  spec.processors = 4;
  spec.horizon = 30;
  spec.runs = 3;
  spec.seed = 2;
  LoadSeriesRecorder recorder(30);
  run_experiment(spec, paper_workload_factory(), recorder);
  // 4 processors x 3 runs observations per step.
  EXPECT_EQ(recorder.series().at(0).count(), 12u);
  EXPECT_EQ(recorder.series().at(29).count(), 12u);
}

TEST(Experiment, DeterministicInMasterSeed) {
  ExperimentSpec spec;
  spec.processors = 6;
  spec.horizon = 40;
  spec.runs = 4;
  spec.seed = 33;
  LoadSeriesRecorder a(40);
  LoadSeriesRecorder b(40);
  run_experiment(spec, paper_workload_factory(), a);
  run_experiment(spec, paper_workload_factory(), b);
  for (std::uint32_t t = 0; t < 40; ++t) {
    EXPECT_DOUBLE_EQ(a.series().mean(t), b.series().mean(t));
    EXPECT_DOUBLE_EQ(a.series().max(t), b.series().max(t));
  }
}

TEST(Experiment, DifferentSeedsProduceDifferentRuns) {
  ExperimentSpec spec;
  spec.processors = 6;
  spec.horizon = 40;
  spec.runs = 2;
  spec.seed = 1;
  LoadSeriesRecorder a(40);
  run_experiment(spec, paper_workload_factory(), a);
  spec.seed = 2;
  LoadSeriesRecorder b(40);
  run_experiment(spec, paper_workload_factory(), b);
  bool any_diff = false;
  for (std::uint32_t t = 0; t < 40 && !any_diff; ++t)
    any_diff = a.series().mean(t) != b.series().mean(t);
  EXPECT_TRUE(any_diff);
}

TEST(Experiment, CustomFactoryIsUsed) {
  ExperimentSpec spec;
  spec.processors = 4;
  spec.horizon = 20;
  spec.runs = 2;
  LoadSeriesRecorder recorder(20);
  run_experiment(
      spec,
      [](std::uint32_t n, std::uint32_t horizon, Rng&) {
        return Workload::one_producer(n, horizon);
      },
      recorder);
  // One producer at probability 1: total load at the last step is exactly
  // the horizon, so the mean across 4 processors is horizon / 4.
  EXPECT_DOUBLE_EQ(recorder.series().mean(19), 20.0 / 4.0);
}

TEST(Experiment, ParallelMatchesSequentialStatistics) {
  ExperimentSpec spec;
  spec.processors = 8;
  spec.horizon = 60;
  spec.runs = 12;
  spec.seed = 99;

  LoadSeriesRecorder sequential(60);
  run_experiment(spec, paper_workload_factory(), sequential);

  LoadSeriesRecorder parallel(60);
  run_experiment_parallel(
      spec, paper_workload_factory(), parallel, /*threads=*/3,
      [] { return LoadSeriesRecorder(60); });

  for (std::uint32_t t = 0; t < 60; ++t) {
    EXPECT_EQ(parallel.series().at(t).count(),
              sequential.series().at(t).count());
    // min/max are order-independent; means agree up to merge rounding.
    EXPECT_DOUBLE_EQ(parallel.series().min(t), sequential.series().min(t));
    EXPECT_DOUBLE_EQ(parallel.series().max(t), sequential.series().max(t));
    EXPECT_NEAR(parallel.series().mean(t), sequential.series().mean(t),
                1e-9);
    EXPECT_NEAR(parallel.series().stddev(t), sequential.series().stddev(t),
                1e-9);
  }
}

TEST(Experiment, ParallelBorrowCountersMatchSequential) {
  ExperimentSpec spec;
  spec.processors = 8;
  spec.horizon = 80;
  spec.runs = 10;
  spec.seed = 5;
  spec.config.borrow_cap = 2;

  BorrowCounterRecorder sequential;
  run_experiment(spec, paper_workload_factory(), sequential);

  BorrowCounterRecorder parallel;
  run_experiment_parallel(spec, paper_workload_factory(), parallel, 4,
                          [] { return BorrowCounterRecorder(); });

  EXPECT_EQ(parallel.runs(), sequential.runs());
  EXPECT_EQ(parallel.totals().total_borrow,
            sequential.totals().total_borrow);
  EXPECT_EQ(parallel.totals().remote_borrow,
            sequential.totals().remote_borrow);
  EXPECT_EQ(parallel.totals().borrow_fail, sequential.totals().borrow_fail);
  EXPECT_EQ(parallel.totals().decrease_sim,
            sequential.totals().decrease_sim);
}

TEST(Experiment, ParallelWithMoreThreadsThanRuns) {
  ExperimentSpec spec;
  spec.processors = 4;
  spec.horizon = 20;
  spec.runs = 2;
  ActivityRecorder result;
  run_experiment_parallel(spec, paper_workload_factory(), result, 8,
                          [] { return ActivityRecorder(); });
  EXPECT_GT(result.total_operations(), 0u);
}

TEST(Experiment, ZeroRunsRejected) {
  ExperimentSpec spec;
  spec.runs = 0;
  BorrowCounterRecorder recorder;
  EXPECT_THROW(run_experiment(spec, paper_workload_factory(), recorder),
               contract_error);
}

}  // namespace
}  // namespace dlb
