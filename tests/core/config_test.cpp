#include "core/config.hpp"

#include <gtest/gtest.h>

#include "support/check.hpp"

namespace dlb {
namespace {

TEST(BalancerConfig, DefaultsAreValid) {
  BalancerConfig cfg;
  EXPECT_NO_THROW(cfg.validate(64));
  EXPECT_NO_THROW(cfg.validate(64, /*strict_theory=*/true));
}

TEST(BalancerConfig, DeltaMustBeSmallerThanNetwork) {
  BalancerConfig cfg;
  cfg.delta = 4;
  EXPECT_NO_THROW(cfg.validate(5));
  EXPECT_THROW(cfg.validate(4), contract_error);
  cfg.delta = 0;
  EXPECT_THROW(cfg.validate(8), contract_error);
}

TEST(BalancerConfig, FactorBelowOneRejected) {
  BalancerConfig cfg;
  cfg.f = 0.9;
  EXPECT_THROW(cfg.validate(8), contract_error);
}

TEST(BalancerConfig, StrictTheoryEnforcesFBelowDeltaPlusOne) {
  BalancerConfig cfg;
  cfg.delta = 1;
  cfg.f = 1.9;
  EXPECT_NO_THROW(cfg.validate(8));
  EXPECT_NO_THROW(cfg.validate(8, true));
  cfg.f = 2.0;
  EXPECT_NO_THROW(cfg.validate(8));
  EXPECT_THROW(cfg.validate(8, true), contract_error);
  cfg.delta = 4;
  EXPECT_NO_THROW(cfg.validate(8, true));
}

TEST(BalancerConfig, NeedsTwoProcessors) {
  BalancerConfig cfg;
  EXPECT_THROW(cfg.validate(1), contract_error);
}

TEST(BalancerConfig, DescribeListsParameters) {
  BalancerConfig cfg;
  cfg.f = 1.8;
  cfg.delta = 4;
  cfg.borrow_cap = 16;
  const std::string desc = cfg.describe();
  EXPECT_NE(desc.find("f=1.8"), std::string::npos);
  EXPECT_NE(desc.find("delta=4"), std::string::npos);
  EXPECT_NE(desc.find("C=16"), std::string::npos);
  EXPECT_EQ(desc.find("analysis"), std::string::npos);
  cfg.analysis_mode = true;
  EXPECT_NE(cfg.describe().find("analysis"), std::string::npos);
}

}  // namespace
}  // namespace dlb
