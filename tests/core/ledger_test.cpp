#include "core/ledger.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace dlb {
namespace {

TEST(Ledger, StartsEmpty) {
  Ledger ledger(4);
  EXPECT_EQ(ledger.classes(), 4u);
  EXPECT_EQ(ledger.real_load(), 0);
  EXPECT_EQ(ledger.borrowed_total(), 0);
  EXPECT_EQ(ledger.virtual_load(), 0);
  ledger.check(4);
}

TEST(Ledger, AddRemoveRealKeepsSums) {
  Ledger ledger(3);
  ledger.add_real(0, 5);
  ledger.add_real(2, 3);
  EXPECT_EQ(ledger.d(0), 5);
  EXPECT_EQ(ledger.d(2), 3);
  EXPECT_EQ(ledger.real_load(), 8);
  ledger.remove_real(0, 2);
  EXPECT_EQ(ledger.d(0), 3);
  EXPECT_EQ(ledger.real_load(), 6);
  ledger.check(0);
}

TEST(Ledger, RemoveMoreThanHeldThrows) {
  Ledger ledger(2);
  ledger.add_real(0, 1);
  EXPECT_THROW(ledger.remove_real(0, 2), contract_error);
  EXPECT_THROW(ledger.remove_real(1, 1), contract_error);
}

TEST(Ledger, BorrowConvertsRealIntoMarker) {
  Ledger ledger(3);
  ledger.add_real(1, 2);
  ledger.borrow(1);
  EXPECT_EQ(ledger.d(1), 1);
  EXPECT_EQ(ledger.b(1), 1);
  EXPECT_EQ(ledger.real_load(), 1);
  EXPECT_EQ(ledger.borrowed_total(), 1);
  // Virtual load is preserved by borrowing.
  EXPECT_EQ(ledger.virtual_load(), 2);
  ledger.check(1);
}

TEST(Ledger, BorrowRequiresRealPacketAndNoExistingMarker) {
  Ledger ledger(2);
  EXPECT_THROW(ledger.borrow(0), contract_error);  // no packet
  ledger.add_real(0, 2);
  ledger.borrow(0);
  EXPECT_THROW(ledger.borrow(0), contract_error);  // marker already set
}

TEST(Ledger, ClearMarker) {
  Ledger ledger(2);
  ledger.add_real(1, 1);
  ledger.borrow(1);
  ledger.clear_marker(1);
  EXPECT_EQ(ledger.b(1), 0);
  EXPECT_EQ(ledger.borrowed_total(), 0);
  EXPECT_THROW(ledger.clear_marker(1), contract_error);
}

TEST(Ledger, RepayWithGeneration) {
  Ledger ledger(2);
  ledger.add_real(1, 1);
  ledger.borrow(1);
  ledger.repay_with_generation(1);
  EXPECT_EQ(ledger.b(1), 0);
  EXPECT_EQ(ledger.d(1), 1);
  EXPECT_EQ(ledger.real_load(), 1);
  EXPECT_THROW(ledger.repay_with_generation(1), contract_error);
}

TEST(Ledger, ReplaceRecomputesSums) {
  Ledger ledger(3);
  ledger.replace({1, 2, 3}, {0, 1, 0});
  EXPECT_EQ(ledger.real_load(), 6);
  EXPECT_EQ(ledger.borrowed_total(), 1);
  EXPECT_EQ(ledger.virtual_load(), 7);
  ledger.check(1);
}

TEST(Ledger, ReplaceValidatesShapeAndSign) {
  Ledger ledger(2);
  EXPECT_THROW(ledger.replace({1}, {0, 0}), contract_error);
  EXPECT_THROW(ledger.replace({-1, 0}, {0, 0}), contract_error);
  EXPECT_THROW(ledger.replace({0, 0}, {0, -2}), contract_error);
}

TEST(Ledger, FirstMarkedClass) {
  Ledger ledger(4);
  EXPECT_EQ(ledger.first_marked_class(), 4u);
  ledger.add_real(2, 1);
  ledger.borrow(2);
  EXPECT_EQ(ledger.first_marked_class(), 2u);
}

TEST(Ledger, CheckDetectsCapViolation) {
  Ledger ledger(3);
  ledger.replace({0, 0, 0}, {1, 1, 1});
  EXPECT_THROW(ledger.check(2), contract_error);
  ledger.check(3);
}

TEST(Ledger, OutOfRangeClassThrows) {
  Ledger ledger(2);
  EXPECT_THROW(ledger.add_real(2, 1), contract_error);
  EXPECT_THROW(ledger.borrow(5), contract_error);
}

// ---- Sparse-index property test ----------------------------------------
//
// The incrementally maintained indexes must stay consistent with the dense
// arrays under any interleaving of mutators:
//   (L3) active_classes() == { j : d[j] > 0 || b[j] > 0 }, ascending;
//   (L4) marked_classes() == { j : b[j] > 0 }, ascending.
// Exercises every mutator (add/remove/borrow/clear/repay/set_d/set_b/
// replace) against a dense reference model with randomized operations.

void expect_indexes_match_dense(const Ledger& ledger, std::uint32_t classes) {
  std::vector<std::uint32_t> want_active;
  std::vector<std::uint32_t> want_marked;
  for (std::uint32_t j = 0; j < classes; ++j) {
    if (ledger.d(j) > 0 || ledger.b(j) > 0) want_active.push_back(j);
    if (ledger.b(j) > 0) want_marked.push_back(j);
  }
  EXPECT_EQ(ledger.active_classes(), want_active);
  EXPECT_EQ(ledger.marked_classes(), want_marked);
}

TEST(LedgerProperty, SparseIndexesTrackDenseArraysUnderRandomOps) {
  constexpr std::uint32_t kClasses = 24;
  constexpr std::uint32_t kCap = 6;
  Rng rng(0x1eadbeef);
  Ledger ledger(kClasses);
  for (int op = 0; op < 4000; ++op) {
    const auto j = static_cast<std::uint32_t>(rng.below(kClasses));
    switch (rng.below(8)) {
      case 0:
        ledger.add_real(j, 1 + static_cast<std::int64_t>(rng.below(3)));
        break;
      case 1:
        if (ledger.d(j) > 0)
          ledger.remove_real(
              j, 1 + static_cast<std::int64_t>(
                         rng.below(static_cast<std::uint64_t>(ledger.d(j)))));
        break;
      case 2:
        if (ledger.d(j) > 0 && ledger.b(j) == 0 &&
            ledger.borrowed_total() < kCap)
          ledger.borrow(j);
        break;
      case 3:
        if (ledger.b(j) > 0) ledger.clear_marker(j);
        break;
      case 4:
        if (ledger.b(j) > 0) ledger.repay_with_generation(j);
        break;
      case 5:
        ledger.set_d(j, static_cast<std::int64_t>(rng.below(4)));
        break;
      case 6:
        ledger.set_b(j, ledger.b(j) == 0 && ledger.borrowed_total() < kCap
                            ? 1
                            : 0);
        break;
      case 7: {
        // Full replace with a fresh random state (the checkpoint path).
        std::vector<std::int64_t> d(kClasses);
        std::vector<std::int64_t> b(kClasses);
        std::int64_t markers = 0;
        for (std::uint32_t c = 0; c < kClasses; ++c) {
          d[c] = static_cast<std::int64_t>(rng.below(3));
          if (markers < kCap && rng.below(4) == 0) {
            b[c] = 1;
            ++markers;
          }
        }
        ledger.replace(std::move(d), std::move(b));
        break;
      }
    }
    ledger.check(kCap);
    expect_indexes_match_dense(ledger, kClasses);
  }
}

TEST(LedgerProperty, FirstMarkedClassMatchesMarkedListHead) {
  Ledger ledger(8);
  EXPECT_EQ(ledger.first_marked_class(), 8u);
  ledger.add_real(5, 2);
  ledger.add_real(2, 1);
  ledger.borrow(5);
  EXPECT_EQ(ledger.first_marked_class(), 5u);
  ledger.borrow(2);
  EXPECT_EQ(ledger.first_marked_class(), 2u);
  ledger.clear_marker(2);
  EXPECT_EQ(ledger.first_marked_class(), 5u);
  ledger.clear_marker(5);
  EXPECT_EQ(ledger.first_marked_class(), 8u);
}

}  // namespace
}  // namespace dlb
