#include "core/ledger.hpp"

#include <gtest/gtest.h>

#include "support/check.hpp"

namespace dlb {
namespace {

TEST(Ledger, StartsEmpty) {
  Ledger ledger(4);
  EXPECT_EQ(ledger.classes(), 4u);
  EXPECT_EQ(ledger.real_load(), 0);
  EXPECT_EQ(ledger.borrowed_total(), 0);
  EXPECT_EQ(ledger.virtual_load(), 0);
  ledger.check(4);
}

TEST(Ledger, AddRemoveRealKeepsSums) {
  Ledger ledger(3);
  ledger.add_real(0, 5);
  ledger.add_real(2, 3);
  EXPECT_EQ(ledger.d(0), 5);
  EXPECT_EQ(ledger.d(2), 3);
  EXPECT_EQ(ledger.real_load(), 8);
  ledger.remove_real(0, 2);
  EXPECT_EQ(ledger.d(0), 3);
  EXPECT_EQ(ledger.real_load(), 6);
  ledger.check(0);
}

TEST(Ledger, RemoveMoreThanHeldThrows) {
  Ledger ledger(2);
  ledger.add_real(0, 1);
  EXPECT_THROW(ledger.remove_real(0, 2), contract_error);
  EXPECT_THROW(ledger.remove_real(1, 1), contract_error);
}

TEST(Ledger, BorrowConvertsRealIntoMarker) {
  Ledger ledger(3);
  ledger.add_real(1, 2);
  ledger.borrow(1);
  EXPECT_EQ(ledger.d(1), 1);
  EXPECT_EQ(ledger.b(1), 1);
  EXPECT_EQ(ledger.real_load(), 1);
  EXPECT_EQ(ledger.borrowed_total(), 1);
  // Virtual load is preserved by borrowing.
  EXPECT_EQ(ledger.virtual_load(), 2);
  ledger.check(1);
}

TEST(Ledger, BorrowRequiresRealPacketAndNoExistingMarker) {
  Ledger ledger(2);
  EXPECT_THROW(ledger.borrow(0), contract_error);  // no packet
  ledger.add_real(0, 2);
  ledger.borrow(0);
  EXPECT_THROW(ledger.borrow(0), contract_error);  // marker already set
}

TEST(Ledger, ClearMarker) {
  Ledger ledger(2);
  ledger.add_real(1, 1);
  ledger.borrow(1);
  ledger.clear_marker(1);
  EXPECT_EQ(ledger.b(1), 0);
  EXPECT_EQ(ledger.borrowed_total(), 0);
  EXPECT_THROW(ledger.clear_marker(1), contract_error);
}

TEST(Ledger, RepayWithGeneration) {
  Ledger ledger(2);
  ledger.add_real(1, 1);
  ledger.borrow(1);
  ledger.repay_with_generation(1);
  EXPECT_EQ(ledger.b(1), 0);
  EXPECT_EQ(ledger.d(1), 1);
  EXPECT_EQ(ledger.real_load(), 1);
  EXPECT_THROW(ledger.repay_with_generation(1), contract_error);
}

TEST(Ledger, ReplaceRecomputesSums) {
  Ledger ledger(3);
  ledger.replace({1, 2, 3}, {0, 1, 0});
  EXPECT_EQ(ledger.real_load(), 6);
  EXPECT_EQ(ledger.borrowed_total(), 1);
  EXPECT_EQ(ledger.virtual_load(), 7);
  ledger.check(1);
}

TEST(Ledger, ReplaceValidatesShapeAndSign) {
  Ledger ledger(2);
  EXPECT_THROW(ledger.replace({1}, {0, 0}), contract_error);
  EXPECT_THROW(ledger.replace({-1, 0}, {0, 0}), contract_error);
  EXPECT_THROW(ledger.replace({0, 0}, {0, -2}), contract_error);
}

TEST(Ledger, FirstMarkedClass) {
  Ledger ledger(4);
  EXPECT_EQ(ledger.first_marked_class(), 4u);
  ledger.add_real(2, 1);
  ledger.borrow(2);
  EXPECT_EQ(ledger.first_marked_class(), 2u);
}

TEST(Ledger, CheckDetectsCapViolation) {
  Ledger ledger(3);
  ledger.replace({0, 0, 0}, {1, 1, 1});
  EXPECT_THROW(ledger.check(2), contract_error);
  ledger.check(3);
}

TEST(Ledger, OutOfRangeClassThrows) {
  Ledger ledger(2);
  EXPECT_THROW(ledger.add_real(2, 1), contract_error);
  EXPECT_THROW(ledger.borrow(5), contract_error);
}

}  // namespace
}  // namespace dlb
