#include "core/ledger.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace dlb {
namespace {

TEST(Ledger, StartsEmpty) {
  Ledger ledger(4);
  EXPECT_EQ(ledger.classes(), 4u);
  EXPECT_EQ(ledger.real_load(), 0);
  EXPECT_EQ(ledger.borrowed_total(), 0);
  EXPECT_EQ(ledger.virtual_load(), 0);
  ledger.check(4);
}

TEST(Ledger, AddRemoveRealKeepsSums) {
  Ledger ledger(3);
  ledger.add_real(0, 5);
  ledger.add_real(2, 3);
  EXPECT_EQ(ledger.d(0), 5);
  EXPECT_EQ(ledger.d(2), 3);
  EXPECT_EQ(ledger.real_load(), 8);
  ledger.remove_real(0, 2);
  EXPECT_EQ(ledger.d(0), 3);
  EXPECT_EQ(ledger.real_load(), 6);
  ledger.check(0);
}

TEST(Ledger, RemoveMoreThanHeldThrows) {
  Ledger ledger(2);
  ledger.add_real(0, 1);
  EXPECT_THROW(ledger.remove_real(0, 2), contract_error);
  EXPECT_THROW(ledger.remove_real(1, 1), contract_error);
}

TEST(Ledger, BorrowConvertsRealIntoMarker) {
  Ledger ledger(3);
  ledger.add_real(1, 2);
  ledger.borrow(1);
  EXPECT_EQ(ledger.d(1), 1);
  EXPECT_EQ(ledger.b(1), 1);
  EXPECT_EQ(ledger.real_load(), 1);
  EXPECT_EQ(ledger.borrowed_total(), 1);
  // Virtual load is preserved by borrowing.
  EXPECT_EQ(ledger.virtual_load(), 2);
  ledger.check(1);
}

TEST(Ledger, BorrowRequiresRealPacketAndNoExistingMarker) {
  Ledger ledger(2);
  EXPECT_THROW(ledger.borrow(0), contract_error);  // no packet
  ledger.add_real(0, 2);
  ledger.borrow(0);
  EXPECT_THROW(ledger.borrow(0), contract_error);  // marker already set
}

TEST(Ledger, ClearMarker) {
  Ledger ledger(2);
  ledger.add_real(1, 1);
  ledger.borrow(1);
  ledger.clear_marker(1);
  EXPECT_EQ(ledger.b(1), 0);
  EXPECT_EQ(ledger.borrowed_total(), 0);
  EXPECT_THROW(ledger.clear_marker(1), contract_error);
}

TEST(Ledger, RepayWithGeneration) {
  Ledger ledger(2);
  ledger.add_real(1, 1);
  ledger.borrow(1);
  ledger.repay_with_generation(1);
  EXPECT_EQ(ledger.b(1), 0);
  EXPECT_EQ(ledger.d(1), 1);
  EXPECT_EQ(ledger.real_load(), 1);
  EXPECT_THROW(ledger.repay_with_generation(1), contract_error);
}

TEST(Ledger, ReplaceRecomputesSums) {
  Ledger ledger(3);
  ledger.replace({1, 2, 3}, {0, 1, 0});
  EXPECT_EQ(ledger.real_load(), 6);
  EXPECT_EQ(ledger.borrowed_total(), 1);
  EXPECT_EQ(ledger.virtual_load(), 7);
  ledger.check(1);
}

TEST(Ledger, ReplaceValidatesShapeAndSign) {
  Ledger ledger(2);
  EXPECT_THROW(ledger.replace({1}, {0, 0}), contract_error);
  EXPECT_THROW(ledger.replace({-1, 0}, {0, 0}), contract_error);
  EXPECT_THROW(ledger.replace({0, 0}, {0, -2}), contract_error);
}

TEST(Ledger, ReplaceDealtRequiresSupersetOfActive) {
  Ledger ledger(6);
  ledger.add_real(2, 3);
  ledger.add_real(4, 1);
  // Covering {2, 4} works and fully replaces the state (class 2 keeps
  // only a marker, class 1 is newly inserted).
  const std::uint32_t cls[] = {1, 2, 4};
  const std::int64_t d_vals[] = {5, 0, 2};
  const std::int64_t b_vals[] = {0, 1, 0};
  ledger.replace_dealt(cls, 3, d_vals, b_vals);
  EXPECT_EQ(ledger.d(1), 5);
  EXPECT_EQ(ledger.d(2), 0);
  EXPECT_EQ(ledger.b(2), 1);
  EXPECT_EQ(ledger.d(4), 2);
  EXPECT_EQ(ledger.real_load(), 7);
  EXPECT_EQ(ledger.borrowed_total(), 1);
  ledger.check(1);
  // Omitting an active class (2 still holds a marker) breaks the
  // superset precondition; the contract check fires before any mutation.
  const std::uint32_t missing[] = {1, 4};
  const std::int64_t dv[] = {1, 1};
  const std::int64_t bv[] = {0, 0};
  EXPECT_THROW(ledger.replace_dealt(missing, 2, dv, bv), contract_error);
  EXPECT_EQ(ledger.real_load(), 7);  // untouched by the rejected call
  EXPECT_EQ(ledger.borrowed_total(), 1);
  ledger.check(1);
}

TEST(Ledger, FirstMarkedClass) {
  Ledger ledger(4);
  EXPECT_EQ(ledger.first_marked_class(), 4u);
  ledger.add_real(2, 1);
  ledger.borrow(2);
  EXPECT_EQ(ledger.first_marked_class(), 2u);
}

TEST(Ledger, CheckDetectsCapViolation) {
  Ledger ledger(3);
  ledger.replace({0, 0, 0}, {1, 1, 1});
  EXPECT_THROW(ledger.check(2), contract_error);
  ledger.check(3);
}

TEST(Ledger, OutOfRangeClassThrows) {
  Ledger ledger(2);
  EXPECT_THROW(ledger.add_real(2, 1), contract_error);
  EXPECT_THROW(ledger.borrow(5), contract_error);
}

// ---- Sparse-storage property test --------------------------------------
//
// The compact (class, d, b) storage is now the source of truth, so the
// test maintains its own trivial dense reference model (two plain O(n)
// vectors updated alongside every mutation) and checks the full ledger
// surface against it after every step:
//   - d(j)/b(j) point lookups, real/borrowed/virtual totals (L1, L2);
//   - active_classes()/marked_classes() order and content (L3, L4);
//   - the parallel count vectors active_d()/active_b() and the dense
//     materializations dense_d()/dense_b();
//   - Ledger::check, which verifies the storage invariants S1/S2 (no
//     zero entries, strictly ascending keys, parallel shapes).
// Exercises every mutator: add/remove/borrow/clear (settle)/repay/
// set_d/set_b/replace, the general merge write-back apply_dealt with
// random ascending class subsets, and the hot-path rebuild write-back
// replace_dealt with random supersets of the active list.

struct DenseReference {
  std::vector<std::int64_t> d;
  std::vector<std::int64_t> b;

  explicit DenseReference(std::uint32_t classes) : d(classes, 0), b(classes, 0) {}

  std::int64_t borrowed() const {
    std::int64_t total = 0;
    for (std::int64_t v : b) total += v;
    return total;
  }
};

void expect_matches_reference(const Ledger& ledger,
                              const DenseReference& ref,
                              std::uint32_t cap) {
  ledger.check(cap);  // L1-L4 plus the storage invariants S1/S2
  const auto classes = static_cast<std::uint32_t>(ref.d.size());
  std::int64_t real = 0;
  std::int64_t borrowed = 0;
  std::vector<std::uint32_t> want_active;
  std::vector<std::uint32_t> want_marked;
  for (std::uint32_t j = 0; j < classes; ++j) {
    ASSERT_EQ(ledger.d(j), ref.d[j]) << "class " << j;
    ASSERT_EQ(ledger.b(j), ref.b[j]) << "class " << j;
    real += ref.d[j];
    borrowed += ref.b[j];
    if (ref.d[j] > 0 || ref.b[j] > 0) want_active.push_back(j);
    if (ref.b[j] > 0) want_marked.push_back(j);
  }
  EXPECT_EQ(ledger.real_load(), real);
  EXPECT_EQ(ledger.borrowed_total(), borrowed);
  EXPECT_EQ(ledger.virtual_load(), real + borrowed);
  EXPECT_EQ(ledger.active_classes(), want_active);
  EXPECT_EQ(ledger.marked_classes(), want_marked);
  const auto& active = ledger.active_classes();
  const auto& d_counts = ledger.active_d();
  const auto& b_counts = ledger.active_b();
  ASSERT_EQ(d_counts.size(), active.size());
  ASSERT_EQ(b_counts.size(), active.size());
  for (std::size_t i = 0; i < active.size(); ++i) {
    EXPECT_EQ(d_counts[i], ref.d[active[i]]);
    EXPECT_EQ(b_counts[i], ref.b[active[i]]);
  }
  EXPECT_EQ(ledger.dense_d(), ref.d);
  EXPECT_EQ(ledger.dense_b(), ref.b);
}

TEST(LedgerProperty, SparseStorageTracksDenseReferenceUnderRandomOps) {
  constexpr std::uint32_t kClasses = 24;
  constexpr std::uint32_t kCap = 6;
  Rng rng(0x1eadbeef);
  Ledger ledger(kClasses);
  DenseReference ref(kClasses);
  for (int op = 0; op < 4000; ++op) {
    const auto j = static_cast<std::uint32_t>(rng.below(kClasses));
    switch (rng.below(10)) {
      case 0: {
        const auto count = 1 + static_cast<std::int64_t>(rng.below(3));
        ledger.add_real(j, count);
        ref.d[j] += count;
        break;
      }
      case 1:
        if (ledger.d(j) > 0) {
          const auto count =
              1 + static_cast<std::int64_t>(
                      rng.below(static_cast<std::uint64_t>(ledger.d(j))));
          ledger.remove_real(j, count);
          ref.d[j] -= count;
        }
        break;
      case 2:
        if (ledger.d(j) > 0 && ledger.b(j) == 0 &&
            ledger.borrowed_total() < kCap) {
          ledger.borrow(j);
          ref.d[j] -= 1;
          ref.b[j] += 1;
        }
        break;
      case 3:
        if (ledger.b(j) > 0) {
          ledger.clear_marker(j);
          ref.b[j] -= 1;
        }
        break;
      case 4:
        if (ledger.b(j) > 0) {
          ledger.repay_with_generation(j);
          ref.b[j] -= 1;
          ref.d[j] += 1;
        }
        break;
      case 5: {
        const auto v = static_cast<std::int64_t>(rng.below(4));
        ledger.set_d(j, v);
        ref.d[j] = v;
        break;
      }
      case 6: {
        const std::int64_t v =
            ledger.b(j) == 0 && ledger.borrowed_total() < kCap ? 1 : 0;
        ledger.set_b(j, v);
        ref.b[j] = v;
        break;
      }
      case 7: {
        // Full replace with a fresh random state (test/restore path).
        DenseReference next(kClasses);
        std::int64_t markers = 0;
        for (std::uint32_t c = 0; c < kClasses; ++c) {
          next.d[c] = static_cast<std::int64_t>(rng.below(3));
          if (markers < kCap && rng.below(4) == 0) {
            next.b[c] = 1;
            ++markers;
          }
        }
        ledger.replace(next.d, next.b);
        ref = next;
        break;
      }
      case 8: {
        // Balancing write-back over a random ascending class subset,
        // including zero assignments (entry drops) and absent classes
        // (entry inserts) — the sparse merge path's full case space.
        std::vector<std::uint32_t> cls;
        std::vector<std::int64_t> d_vals;
        std::vector<std::int64_t> b_vals;
        std::int64_t budget = kCap - ref.borrowed();
        for (std::uint32_t c = 0; c < kClasses; ++c) {
          if (rng.below(3) != 0) continue;
          cls.push_back(c);
          d_vals.push_back(static_cast<std::int64_t>(rng.below(4)));
          budget += ref.b[c];  // c's old marker is overwritten
          if (budget > 0 && rng.below(4) == 0) {
            b_vals.push_back(1);
            --budget;
          } else {
            b_vals.push_back(0);
          }
        }
        ledger.apply_dealt(cls.data(), cls.size(), d_vals.data(),
                           b_vals.data());
        for (std::size_t i = 0; i < cls.size(); ++i) {
          ref.d[cls[i]] = d_vals[i];
          ref.b[cls[i]] = b_vals[i];
        }
        break;
      }
      case 9: {
        // Hot-path write-back: cls must cover every active class.  Build
        // it as the current active list plus random extra classes, with
        // fresh random values — zeros included, so covered entries drop
        // and extra classes may insert.  The old state is irrelevant to
        // the result, so the reference resets wholesale.
        std::vector<std::uint32_t> cls;
        std::vector<std::int64_t> d_vals;
        std::vector<std::int64_t> b_vals;
        const auto& active = ledger.active_classes();
        std::size_t ai = 0;
        std::int64_t budget = kCap;  // every old marker is overwritten
        for (std::uint32_t c = 0; c < kClasses; ++c) {
          const bool required = ai < active.size() && active[ai] == c;
          if (required) ++ai;
          if (!required && rng.below(3) != 0) continue;
          cls.push_back(c);
          d_vals.push_back(static_cast<std::int64_t>(rng.below(4)));
          if (budget > 0 && rng.below(4) == 0) {
            b_vals.push_back(1);
            --budget;
          } else {
            b_vals.push_back(0);
          }
        }
        ledger.replace_dealt(cls.data(), cls.size(), d_vals.data(),
                             b_vals.data());
        ref = DenseReference(kClasses);
        for (std::size_t i = 0; i < cls.size(); ++i) {
          ref.d[cls[i]] = d_vals[i];
          ref.b[cls[i]] = b_vals[i];
        }
        break;
      }
    }
    expect_matches_reference(ledger, ref, kCap);
  }
}

TEST(LedgerProperty, FirstMarkedClassMatchesMarkedListHead) {
  Ledger ledger(8);
  EXPECT_EQ(ledger.first_marked_class(), 8u);
  ledger.add_real(5, 2);
  ledger.add_real(2, 1);
  ledger.borrow(5);
  EXPECT_EQ(ledger.first_marked_class(), 5u);
  ledger.borrow(2);
  EXPECT_EQ(ledger.first_marked_class(), 2u);
  ledger.clear_marker(2);
  EXPECT_EQ(ledger.first_marked_class(), 5u);
  ledger.clear_marker(5);
  EXPECT_EQ(ledger.first_marked_class(), 8u);
}

}  // namespace
}  // namespace dlb
