#include "core/snake.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <tuple>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace dlb {
namespace {

using Matrix = std::vector<std::vector<std::int64_t>>;

std::int64_t row_total(const Matrix& m, std::size_t r) {
  return std::accumulate(m[r].begin(), m[r].end(), std::int64_t{0});
}

std::int64_t column_total(const Matrix& m, std::size_t j) {
  std::int64_t total = 0;
  for (const auto& row : m) total += row[j];
  return total;
}

void expect_s1_s2(const Matrix& m) {
  const std::size_t rows = m.size();
  const std::size_t cols = m[0].size();
  // (S1) per-class spread <= 1
  for (std::size_t j = 0; j < cols; ++j) {
    std::int64_t lo = m[0][j];
    std::int64_t hi = m[0][j];
    for (std::size_t r = 1; r < rows; ++r) {
      lo = std::min(lo, m[r][j]);
      hi = std::max(hi, m[r][j]);
    }
    EXPECT_LE(hi - lo, 1) << "class " << j;
  }
  // (S2) row-total spread <= 1
  std::int64_t lo = row_total(m, 0);
  std::int64_t hi = lo;
  for (std::size_t r = 1; r < rows; ++r) {
    lo = std::min(lo, row_total(m, r));
    hi = std::max(hi, row_total(m, r));
  }
  EXPECT_LE(hi - lo, 1);
}

TEST(Snake, SimpleTwoPartyEqualization) {
  Matrix counts{{10, 0}, {0, 0}};
  snake_redistribute(counts);
  expect_s1_s2(counts);
  EXPECT_EQ(column_total(counts, 0), 10);
  EXPECT_EQ(column_total(counts, 1), 0);
}

TEST(Snake, ConservesEveryClass) {
  Matrix counts{{3, 7, 1}, {0, 2, 9}, {5, 5, 5}};
  const Matrix before = counts;
  snake_redistribute(counts);
  for (std::size_t j = 0; j < 3; ++j)
    EXPECT_EQ(column_total(counts, j), column_total(before, j));
  expect_s1_s2(counts);
}

// Captures on_flow callbacks for inspection.
struct RecordingSink final : SnakeFlowSink {
  struct Flow {
    std::size_t col;
    std::size_t from;
    std::size_t to;
    std::int64_t amount;
    bool operator==(const Flow& o) const {
      return col == o.col && from == o.from && to == o.to &&
             amount == o.amount;
    }
  };
  std::vector<Flow> flows;
  std::uint64_t total = 0;

  void on_flow(std::size_t col, std::size_t from, std::size_t to,
               std::int64_t amount) override {
    flows.push_back({col, from, to, amount});
    total += static_cast<std::uint64_t>(amount);
  }
};

// Runs the compact overload on a copy of `m`, returning the flat result,
// the continuation pointer and the recorded flows.
struct CompactRun {
  std::vector<std::int64_t> counts;
  std::size_t ptr;
  RecordingSink sink;
};

CompactRun run_compact(const Matrix& m, std::size_t start,
                       const std::vector<std::size_t>* excluded = nullptr) {
  CompactRun out;
  const std::size_t rows = m.size();
  const std::size_t cols = m[0].size();
  out.counts.reserve(rows * cols);
  for (const auto& row : m)
    out.counts.insert(out.counts.end(), row.begin(), row.end());
  SnakeCompactOptions opts;
  opts.start = start;
  opts.flows = &out.sink;
  if (excluded != nullptr) opts.excluded_row_per_column = excluded->data();
  out.ptr = snake_redistribute(out.counts.data(), rows, cols, opts);
  return out;
}

TEST(Snake, AlreadyBalancedIsStable) {
  Matrix counts{{2, 2}, {2, 2}, {2, 2}};
  const Matrix before = counts;
  snake_redistribute(counts);
  EXPECT_EQ(counts, before);
  // ... and the compact deal reports no flows on balanced input.
  const CompactRun run = run_compact(before, 0);
  EXPECT_TRUE(run.sink.flows.empty());
  EXPECT_EQ(run.sink.total, 0u);
}

TEST(Snake, SingleParticipantIsIdentity) {
  Matrix counts{{4, 9, 0}};
  const Matrix before = counts;
  snake_redistribute(counts);
  EXPECT_EQ(counts, before);
}

TEST(Snake, StartPointerRotatesRemainder) {
  Matrix a{{5, 0}, {0, 0}};
  Matrix b = a;
  SnakeOptions o1;
  o1.start = 0;
  SnakeOptions o2;
  o2.start = 1;
  snake_redistribute(a, o1);
  snake_redistribute(b, o2);
  // Pool of 5 over 2: one side gets 3, the other 2; the start pointer
  // decides which.
  EXPECT_EQ(a[0][0] + a[1][0], 5);
  EXPECT_EQ(b[0][0] + b[1][0], 5);
  EXPECT_NE(a[0][0], b[0][0]);
}

TEST(Snake, ReturnsContinuationPointer) {
  Matrix counts{{5, 4}, {0, 0}, {0, 0}};
  SnakeOptions opts;
  opts.start = 0;
  const std::size_t ptr = snake_redistribute(counts, opts);
  // 5 % 3 = 2 remainder deals + 4 % 3 = 1 -> pointer advanced 3 (mod 3).
  EXPECT_EQ(ptr, 0u);
  expect_s1_s2(counts);
}

TEST(Snake, ExclusionKeepsExcludedRowUntouched) {
  Matrix counts{{9, 0}, {0, 0}, {3, 0}};
  std::vector<std::size_t> excluded{0, static_cast<std::size_t>(-1)};
  SnakeOptions opts;
  opts.excluded_participant_per_class = &excluded;
  snake_redistribute(counts, opts);
  // Row 0 keeps its 9 packets of class 0; rows 1 and 2 share the 3.
  EXPECT_EQ(counts[0][0], 9);
  EXPECT_EQ(counts[1][0] + counts[2][0], 3);
  EXPECT_LE(std::abs(counts[1][0] - counts[2][0]), 1);
}

TEST(Snake, RejectsBadInputs) {
  Matrix empty;
  EXPECT_THROW(snake_redistribute(empty), contract_error);
  Matrix ragged{{1, 2}, {1}};
  EXPECT_THROW(snake_redistribute(ragged), contract_error);
  Matrix negative{{-1}};
  EXPECT_THROW(snake_redistribute(negative), contract_error);
  Matrix ok{{1}, {2}};
  SnakeOptions opts;
  opts.start = 5;
  EXPECT_THROW(snake_redistribute(ok, opts), contract_error);
}

TEST(SnakeFlows, ReportsReceivedPackets) {
  // {4,0} / {0,2} with start 0 deals class 0 as 2/2 and class 1 as 1/1:
  // 2 class-0 packets flow row0 -> row1 and 1 class-1 packet row1 -> row0.
  const Matrix before{{4, 0}, {0, 2}};
  const CompactRun run = run_compact(before, 0);
  ASSERT_EQ(run.sink.flows.size(), 2u);
  EXPECT_EQ(run.sink.flows[0], (RecordingSink::Flow{0, 0, 1, 2}));
  EXPECT_EQ(run.sink.flows[1], (RecordingSink::Flow{1, 1, 0, 1}));
  EXPECT_EQ(run.sink.total, 3u);
}

TEST(SnakeFlows, CompactRejectsBadInputs) {
  std::vector<std::int64_t> counts{1, 2};
  SnakeCompactOptions opts;
  EXPECT_THROW(snake_redistribute(nullptr, 1, 2, opts), contract_error);
  EXPECT_THROW(snake_redistribute(counts.data(), 0, 2, opts), contract_error);
  opts.start = 3;
  EXPECT_THROW(snake_redistribute(counts.data(), 2, 1, opts), contract_error);
  opts.start = 0;
  counts[0] = -1;
  EXPECT_THROW(snake_redistribute(counts.data(), 2, 1, opts), contract_error);
}

// All-zero columns must be invisible to the deal: same results for the
// surviving columns, same continuation pointer, same flows.  This is the
// property System::balance relies on when it restricts the deal to the
// union of the participants' active classes.
TEST(SnakeFlows, ZeroColumnsDoNotAffectDealOrPointer) {
  const Matrix dense{{0, 4, 0, 0, 1}, {0, 0, 0, 2, 0}, {0, 7, 0, 0, 0}};
  const Matrix compact{{4, 0, 1}, {0, 2, 0}, {7, 0, 0}};  // columns 1, 3, 4
  const std::vector<std::size_t> col_map{1, 3, 4};
  for (std::size_t start = 0; start < 3; ++start) {
    const CompactRun dense_run = run_compact(dense, start);
    const CompactRun compact_run = run_compact(compact, start);
    EXPECT_EQ(dense_run.ptr, compact_run.ptr) << "start " << start;
    ASSERT_EQ(dense_run.sink.flows.size(), compact_run.sink.flows.size());
    for (std::size_t i = 0; i < dense_run.sink.flows.size(); ++i) {
      RecordingSink::Flow mapped = compact_run.sink.flows[i];
      mapped.col = col_map[mapped.col];
      EXPECT_EQ(dense_run.sink.flows[i], mapped) << "flow " << i;
    }
    for (std::size_t r = 0; r < 3; ++r)
      for (std::size_t c = 0; c < 3; ++c)
        EXPECT_EQ(dense_run.counts[r * 5 + col_map[c]],
                  compact_run.counts[r * 3 + c]);
  }
}

// ---- Property sweep: random matrices, all sizes ------------------------

struct SnakeCase {
  std::size_t participants;
  std::size_t classes;
  std::uint64_t seed;
};

class SnakeProperty : public ::testing::TestWithParam<SnakeCase> {};

TEST_P(SnakeProperty, S1AndS2HoldAndMassIsConserved) {
  const auto& param = GetParam();
  Rng rng(param.seed);
  Matrix counts(param.participants,
                std::vector<std::int64_t>(param.classes, 0));
  for (auto& row : counts)
    for (auto& cell : row)
      cell = static_cast<std::int64_t>(rng.below(40));
  const Matrix before = counts;
  SnakeOptions opts;
  opts.start = static_cast<std::size_t>(rng.below(param.participants));
  const std::size_t dense_ptr = snake_redistribute(counts, opts);
  for (std::size_t j = 0; j < param.classes; ++j)
    EXPECT_EQ(column_total(counts, j), column_total(before, j));
  expect_s1_s2(counts);

  // The compact overload must agree cell-for-cell with the dense one, hand
  // back the same continuation pointer, and report flows whose total
  // matches the packets actually received.
  const CompactRun run = run_compact(before, opts.start);
  EXPECT_EQ(run.ptr, dense_ptr);
  std::uint64_t received = 0;
  for (std::size_t r = 0; r < param.participants; ++r)
    for (std::size_t j = 0; j < param.classes; ++j) {
      EXPECT_EQ(run.counts[r * param.classes + j], counts[r][j]);
      if (run.counts[r * param.classes + j] > before[r][j])
        received += static_cast<std::uint64_t>(
            run.counts[r * param.classes + j] - before[r][j]);
    }
  EXPECT_EQ(run.sink.total, received);
}

// Exclusion ([D7]) property sweep: excluded rows keep their class count,
// the rest balance to ±1, and per-class mass is conserved.
class SnakeExclusionProperty : public ::testing::TestWithParam<SnakeCase> {};

TEST_P(SnakeExclusionProperty, ExcludedRowsUntouchedAndMassConserved) {
  const auto& param = GetParam();
  if (param.participants < 2) GTEST_SKIP();
  Rng rng(param.seed ^ 0xe8c1);
  Matrix counts(param.participants,
                std::vector<std::int64_t>(param.classes, 0));
  for (auto& row : counts)
    for (auto& cell : row)
      cell = static_cast<std::int64_t>(rng.below(25));
  // Random exclusions: roughly half the classes exclude a random row.
  std::vector<std::size_t> excluded(param.classes,
                                    static_cast<std::size_t>(-1));
  for (std::size_t j = 0; j < param.classes; ++j) {
    if (rng.bernoulli(0.5))
      excluded[j] = static_cast<std::size_t>(rng.below(param.participants));
  }
  const Matrix before = counts;
  SnakeOptions opts;
  opts.start = static_cast<std::size_t>(rng.below(param.participants));
  opts.excluded_participant_per_class = &excluded;
  const std::size_t dense_ptr = snake_redistribute(counts, opts);

  // Dense/compact agreement under exclusions as well.
  const CompactRun run = run_compact(before, opts.start, &excluded);
  EXPECT_EQ(run.ptr, dense_ptr);
  for (std::size_t r = 0; r < param.participants; ++r)
    for (std::size_t j = 0; j < param.classes; ++j)
      EXPECT_EQ(run.counts[r * param.classes + j], counts[r][j]);

  for (std::size_t j = 0; j < param.classes; ++j) {
    EXPECT_EQ(column_total(counts, j), column_total(before, j));
    std::int64_t lo = std::numeric_limits<std::int64_t>::max();
    std::int64_t hi = std::numeric_limits<std::int64_t>::min();
    for (std::size_t r = 0; r < param.participants; ++r) {
      if (r == excluded[j]) {
        EXPECT_EQ(counts[r][j], before[r][j]) << "excluded row moved";
        continue;
      }
      lo = std::min(lo, counts[r][j]);
      hi = std::max(hi, counts[r][j]);
    }
    if (excluded[j] >= param.participants ||
        param.participants > 1) {
      EXPECT_LE(hi - lo, 1) << "class " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SnakeExclusionProperty,
    ::testing::Values(SnakeCase{2, 8, 21}, SnakeCase{3, 16, 22},
                      SnakeCase{5, 32, 23}, SnakeCase{8, 8, 24},
                      SnakeCase{4, 64, 25}),
    [](const ::testing::TestParamInfo<SnakeCase>& ti) {
      return "m" + std::to_string(ti.param.participants) + "_c" +
             std::to_string(ti.param.classes) + "_s" +
             std::to_string(ti.param.seed);
    });

INSTANTIATE_TEST_SUITE_P(
    Sweep, SnakeProperty,
    ::testing::Values(
        SnakeCase{2, 1, 1}, SnakeCase{2, 5, 2}, SnakeCase{3, 3, 3},
        SnakeCase{4, 10, 4}, SnakeCase{5, 64, 5}, SnakeCase{8, 8, 6},
        SnakeCase{7, 33, 7}, SnakeCase{2, 64, 8}, SnakeCase{16, 16, 9},
        SnakeCase{3, 100, 10}, SnakeCase{6, 2, 11}, SnakeCase{9, 40, 12}),
    [](const ::testing::TestParamInfo<SnakeCase>& ti) {
      return "m" + std::to_string(ti.param.participants) + "_c" +
             std::to_string(ti.param.classes) + "_s" +
             std::to_string(ti.param.seed);
    });

}  // namespace
}  // namespace dlb
