#include "core/item_system.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "support/check.hpp"

namespace dlb {
namespace {

BalancerConfig cfg(double f = 1.2, std::uint32_t delta = 2,
                   std::uint32_t cap = 4) {
  BalancerConfig c;
  c.f = f;
  c.delta = delta;
  c.borrow_cap = cap;
  return c;
}

TEST(ItemSystem, ProduceConsumeRoundTrip) {
  ItemSystem<int> items(4, cfg(), 1);
  items.produce(0, 42);
  items.check();
  // The packet may have been balanced away from 0; find it.
  std::optional<int> got;
  for (std::uint32_t p = 0; p < 4 && !got; ++p) {
    if (items.queue_size(p) > 0) got = items.consume(p);
  }
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 42);
  EXPECT_EQ(items.total_items(), 0u);
  items.check();
}

TEST(ItemSystem, ConsumeOnEmptyReturnsNothing) {
  ItemSystem<int> items(3, cfg(), 2);
  EXPECT_FALSE(items.consume(1).has_value());
  items.check();
}

TEST(ItemSystem, QueuesTrackLoadsThroughBalancing) {
  ItemSystem<int> items(8, cfg(1.1, 2), 3);
  int next = 0;
  Rng rng(4);
  for (int step = 0; step < 500; ++step) {
    const auto p = static_cast<std::uint32_t>(rng.below(8));
    if (rng.bernoulli(0.6)) items.produce(p, next++);
    if (rng.bernoulli(0.5)) items.consume(p);
    if (step % 50 == 0) items.check();
  }
  items.check();
  EXPECT_EQ(items.total_items(),
            static_cast<std::size_t>(items.system().total_load()));
}

TEST(ItemSystem, NoItemIsLostOrDuplicated) {
  ItemSystem<int> items(6, cfg(1.1, 3), 5);
  std::set<int> outstanding;
  Rng rng(6);
  int next = 0;
  for (int step = 0; step < 800; ++step) {
    const auto p = static_cast<std::uint32_t>(rng.below(6));
    if (rng.bernoulli(0.55)) {
      items.produce(p, next);
      outstanding.insert(next);
      ++next;
    }
    if (rng.bernoulli(0.5)) {
      if (auto got = items.consume(p)) {
        // Every consumed item must be exactly one we produced earlier.
        ASSERT_EQ(outstanding.erase(*got), 1u) << "item " << *got;
      }
    }
  }
  // The still-queued items are exactly the outstanding set.
  std::multiset<int> queued;
  for (std::uint32_t p = 0; p < 6; ++p)
    for (int v : items.queue(p)) queued.insert(v);
  EXPECT_EQ(queued.size(), outstanding.size());
  for (int v : outstanding) EXPECT_EQ(queued.count(v), 1u);
  items.check();
}

TEST(ItemSystem, BalancingSpreadsItemsAcrossQueues) {
  ItemSystem<std::string> items(8, cfg(1.1, 2), 7);
  for (int i = 0; i < 200; ++i)
    items.produce(0, "task-" + std::to_string(i));
  items.check();
  // Low-f balancing from one producer: most processors hold items now.
  int populated = 0;
  for (std::uint32_t p = 0; p < 8; ++p)
    populated += items.queue_size(p) > 0;
  EXPECT_GE(populated, 6);
}

TEST(ItemSystem, MoveOnlyPayloads) {
  ItemSystem<std::unique_ptr<int>> items(4, cfg(), 8);
  items.produce(0, std::make_unique<int>(7));
  items.produce(0, std::make_unique<int>(9));
  items.check();
  int sum = 0;
  for (std::uint32_t p = 0; p < 4; ++p) {
    while (auto got = items.consume(p)) sum += **got;
  }
  EXPECT_EQ(sum, 16);
}

TEST(ItemSystem, WorksWithBorrowProtocolSettlement) {
  // Heavy consumption with a tight cap exercises remote-exchange
  // migrations, which also go through the item mirror.
  ItemSystem<int> items(6, cfg(1.1, 1, 1), 9);
  Rng rng(10);
  int next = 0;
  for (int step = 0; step < 600; ++step) {
    const auto p = static_cast<std::uint32_t>(rng.below(6));
    if (rng.bernoulli(0.45)) items.produce(p, next++);
    if (rng.bernoulli(0.65)) items.consume(p);
  }
  items.check();
}

TEST(ItemSystem, OutOfRangeThrows) {
  ItemSystem<int> items(2, cfg(1.2, 1), 11);
  EXPECT_THROW(items.produce(2, 1), contract_error);
  EXPECT_THROW(items.consume(5), contract_error);
  EXPECT_THROW(items.queue_size(9), contract_error);
}

}  // namespace
}  // namespace dlb
