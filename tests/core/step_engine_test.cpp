// Event-batched step engine: the batched run() must be bit-identical to
// the plain O(n) reference loop, and the recorder's incremental loads
// snapshot must be indistinguishable from a per-step rebuild.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/system.hpp"
#include "metrics/recorder.hpp"
#include "support/rng.hpp"
#include "workload/workload.hpp"

namespace dlb {
namespace {

BalancerConfig cfg(double f = 1.5, std::uint32_t delta = 2,
                   std::uint32_t cap = 4) {
  BalancerConfig c;
  c.f = f;
  c.delta = delta;
  c.borrow_cap = cap;
  return c;
}

/// Captures every on_loads snapshot verbatim.
class LoadsTape final : public Recorder {
 public:
  void on_loads(std::uint32_t t,
                const std::vector<std::int64_t>& loads) override {
    steps.push_back(t);
    tape.push_back(loads);
  }
  std::vector<std::uint32_t> steps;
  std::vector<std::vector<std::int64_t>> tape;
};

std::vector<Workload> corpus() {
  Rng layout(7);
  const WorkloadParams params;
  std::vector<Workload> out;
  out.push_back(Workload::paper_benchmark(24, 800, params, layout));
  out.push_back(Workload::sparse_hotspot(256, 400, 6, 0.8, 0.4));
  out.push_back(Workload::wave(16, 300, 4));
  out.push_back(Workload::flip_flop(10, 240, 40, 0.7, 0.6));
  out.push_back(Workload::one_producer_consumer(12, 200, 0.9, 0.5));
  return out;
}

TEST(StepEngine, BatchedRunIsBitIdenticalToReference) {
  for (const Workload& wl : corpus()) {
    System batched(wl.processors(), cfg(), 1234);
    System reference(wl.processors(), cfg(), 1234);
    batched.run(wl);
    reference.run_reference(wl);
    EXPECT_EQ(batched.loads(), reference.loads()) << wl.name();
    EXPECT_EQ(batched.total_generated(), reference.total_generated());
    EXPECT_EQ(batched.total_consumed(), reference.total_consumed());
    EXPECT_EQ(batched.balance_operations(), reference.balance_operations());
    EXPECT_EQ(batched.costs().totals().packets_moved,
              reference.costs().totals().packets_moved);
    EXPECT_EQ(batched.costs().totals().messages,
              reference.costs().totals().messages);
    // Same draws in the same order: the generators end in the same state.
    EXPECT_EQ(batched.rng().state(), reference.rng().state()) << wl.name();
    batched.check_invariants();
  }
}

TEST(StepEngine, PostStepCheckHoldsEveryStep) {
  const Workload wl = Workload::sparse_hotspot(128, 300, 8, 0.8, 0.5);
  System sys(wl.processors(), cfg(), 99);
  sys.set_post_step_check(true);
  sys.run(wl);  // check_invariants throws on any per-step violation
  EXPECT_EQ(sys.total_load(),
            static_cast<std::int64_t>(sys.total_generated()) -
                static_cast<std::int64_t>(sys.total_consumed()));
}

TEST(StepEngine, IncrementalRecorderLoadsMatchRebuild) {
  for (const Workload& wl : corpus()) {
    LoadsTape batched_tape;
    System batched(wl.processors(), cfg(), 77);
    batched.attach_recorder(&batched_tape);
    batched.run(wl);

    LoadsTape reference_tape;
    System reference(wl.processors(), cfg(), 77);
    reference.attach_recorder(&reference_tape);
    reference.run_reference(wl);

    ASSERT_EQ(batched_tape.steps.size(), wl.horizon()) << wl.name();
    EXPECT_EQ(batched_tape.steps, reference_tape.steps);
    EXPECT_EQ(batched_tape.tape, reference_tape.tape) << wl.name();
    // The incremental snapshot agrees with a from-scratch read-back.
    EXPECT_EQ(batched_tape.tape.back(), batched.loads());
  }
}

TEST(StepEngine, RecorderAttachedMidLifeSeesFreshLoads) {
  // The loads cache is built lazily on the first observed step; direct
  // mutations before that must still be reflected.
  const Workload wl = Workload::uniform(8, 50, 0.6, 0.4);
  System sys(8, cfg(), 5);
  sys.generate(0);
  sys.generate(0);
  LoadsTape tape;
  sys.attach_recorder(&tape);
  sys.run(wl);
  EXPECT_EQ(tape.tape.back(), sys.loads());
}

TEST(StepEngine, SparseHotspotDoesNotInventEvents) {
  // Only the 2 active processors have phases, generating with
  // probability 1 and never consuming: exactly 2 packets per step enter
  // the system, whatever the batching does.  (Idle processors can still
  // *hold* load — balancing spreads it — but they never fire events.)
  const Workload wl = Workload::sparse_hotspot(64, 10, 2, 1.0, 0.0);
  System sys(64, cfg(), 3);
  sys.run(wl);
  EXPECT_EQ(sys.total_generated(), 20u);
  EXPECT_EQ(sys.total_consumed(), 0u);
  EXPECT_EQ(sys.total_load(), 20);
  sys.check_invariants();
}

}  // namespace
}  // namespace dlb
