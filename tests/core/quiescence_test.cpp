// Unit tests for the Dijkstra–Safra quiescence detector driven as a
// single-threaded state machine: the safety property (no premature
// verdict while a message is in flight) and the liveness bound (at most
// two extra circles once truly quiescent) are both deterministic given
// an explicit event order, so no threads are needed to pin them.
#include "core/quiescence.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "support/check.hpp"

namespace dlb {
namespace {

// Forwards the token through shards 1..S-1 and back to the initiator,
// then lets the initiator evaluate the circle.  Returns the verdict.
bool complete_circle(QuiescenceDetector& det) {
  for (std::uint32_t s = 1; s < det.shards(); ++s) {
    EXPECT_TRUE(det.holds_token(s));
    EXPECT_FALSE(det.forward_token(s));  // non-initiators never decide
  }
  EXPECT_TRUE(det.holds_token(0));
  return det.forward_token(0);
}

TEST(Quiescence, SingleShardDecidesInOneCall) {
  QuiescenceDetector det(1);
  EXPECT_FALSE(det.quiescent());
  EXPECT_TRUE(det.forward_token(0));
  EXPECT_TRUE(det.quiescent());
  EXPECT_EQ(det.circles(), 1u);
}

TEST(Quiescence, IdleRingNeedsExactlyOneCircle) {
  QuiescenceDetector det(3);
  EXPECT_FALSE(det.forward_token(0));  // launch the first probe
  EXPECT_TRUE(complete_circle(det));
  EXPECT_TRUE(det.quiescent());
  EXPECT_EQ(det.circles(), 1u);
}

// Safety: a message still in flight (sent, not yet received) must block
// the verdict, even though every shard looks passive and forwards the
// token.  Only after the receive — and after the color it left behind
// has been washed out by a further circle — may the verdict land.
TEST(Quiescence, InFlightMessageBlocksTheVerdict) {
  QuiescenceDetector det(3);
  det.on_send(0);                      // 0 -> 2, still in the ring
  EXPECT_FALSE(det.forward_token(0));  // probe starts anyway

  // Circle 1: everyone passive, but the global count is +1.
  EXPECT_FALSE(complete_circle(det));
  EXPECT_FALSE(det.quiescent());

  det.on_receive(2);  // the message lands; shard 2 turns black

  // Circle 2: counts cancel (+1 - 1 = 0) but shard 2's black color
  // poisons the token — the receive might have re-activated it after
  // the token passed, so the circle proves nothing.
  EXPECT_FALSE(complete_circle(det));
  EXPECT_FALSE(det.quiescent());

  // Circle 3: all white, zero count — quiescent, two circles after the
  // system actually became idle (the liveness bound).
  EXPECT_TRUE(complete_circle(det));
  EXPECT_TRUE(det.quiescent());
  EXPECT_EQ(det.circles(), 3u);
}

// A send/receive pair fully delivered before the probe starts leaves a
// black receiver; one extra circle washes the color out.
TEST(Quiescence, DeliveredMessageCostsOneExtraCircle) {
  QuiescenceDetector det(2);
  det.on_send(0);
  det.on_receive(1);
  EXPECT_FALSE(det.forward_token(0));
  EXPECT_FALSE(complete_circle(det));  // dirty: shard 1 was black
  EXPECT_TRUE(complete_circle(det));   // clean
  EXPECT_EQ(det.circles(), 2u);
}

// The epoch-fenced engine reuses one detector per epoch: after reset()
// the next round must behave like a fresh detector while the circle
// count keeps accumulating.
TEST(Quiescence, ResetRearmsForTheNextEpoch) {
  QuiescenceDetector det(2);
  EXPECT_FALSE(det.forward_token(0));
  EXPECT_TRUE(complete_circle(det));
  det.reset();
  EXPECT_FALSE(det.quiescent());
  EXPECT_TRUE(det.holds_token(0));  // token stays with the initiator

  det.on_send(0);  // next epoch has traffic: 0 -> 1
  det.on_receive(1);
  EXPECT_FALSE(det.forward_token(0));
  EXPECT_FALSE(complete_circle(det));  // dirty: shard 1 turned black
  EXPECT_TRUE(complete_circle(det));
  EXPECT_TRUE(det.quiescent());
  EXPECT_EQ(det.circles(), 3u);  // cumulative across the reset
}

TEST(Quiescence, ForwardingWithoutTheTokenThrows) {
  QuiescenceDetector det(3);
  EXPECT_THROW(det.forward_token(1), contract_error);
}

TEST(Quiescence, ResetBeforeVerdictThrows) {
  QuiescenceDetector det(2);
  EXPECT_THROW(det.reset(), contract_error);
}

}  // namespace
}  // namespace dlb
