#include "core/one_processor.hpp"

#include <gtest/gtest.h>

#include "support/check.hpp"
#include "support/stats.hpp"
#include "theory/operators.hpp"

namespace dlb {
namespace {

OneProcessorModel::Params params(std::uint32_t n, std::uint32_t delta,
                                 double f, bool relaxed = false) {
  OneProcessorModel::Params p;
  p.n = n;
  p.delta = delta;
  p.f = f;
  p.relaxed_pairwise = relaxed;
  return p;
}

TEST(OneProcessorModel, FirstRoundGeneratesOnePacket) {
  OneProcessorModel model(params(4, 1, 1.5), 1);
  const std::uint64_t generated = model.grow_round();
  EXPECT_EQ(generated, 1u);  // l_old == 0: first packet triggers
  EXPECT_EQ(model.balance_operations(), 1u);
  EXPECT_EQ(model.total_load(), 1);
}

TEST(OneProcessorModel, GrowthFactorBetweenBalances) {
  OneProcessorModel model(params(8, 1, 1.5), 2);
  for (std::uint32_t i = 0; i < 8; ++i) model.set_load(i, 100);
  model.set_trigger_baseline(100);
  const std::uint64_t generated = model.grow_round();
  // Needs to reach 150 from 100: exactly 50 packets.
  EXPECT_EQ(generated, 50u);
  EXPECT_EQ(model.total_load(), 8 * 100 + 50);
}

TEST(OneProcessorModel, EqualizationIsWithinOne) {
  OneProcessorModel model(params(2, 1, 2.0), 3);
  model.set_load(0, 11);
  model.set_trigger_baseline(5);
  model.grow_round();  // triggers quickly, then equalizes both processors
  EXPECT_LE(std::abs(model.load(0) - model.load(1)), 1);
}

TEST(OneProcessorModel, LoadConservedThroughBalancing) {
  OneProcessorModel model(params(16, 4, 1.2), 4);
  std::uint64_t generated = 0;
  for (int r = 0; r < 50; ++r) generated += model.grow_round();
  EXPECT_EQ(model.total_load(), static_cast<std::int64_t>(generated));
}

TEST(OneProcessorModel, RatioConvergesTowardFix) {
  // Average the ratio over many runs: it must approach FIX(n, delta, f)
  // and respect the Theorem 1 upper bound.
  const std::uint32_t n = 16;
  const std::uint32_t delta = 2;
  const double f = 1.5;
  ModelParams mp{static_cast<double>(n), static_cast<double>(delta), f};
  const double fix = fixpoint(mp);

  RunningMoments ratio;
  Rng seeder(99);
  for (int run = 0; run < 300; ++run) {
    OneProcessorModel model(params(n, delta, f), seeder.next());
    for (std::uint32_t i = 0; i < n; ++i) model.set_load(i, 500);
    model.set_trigger_baseline(500);
    model.run_grow(60);
    ratio.add(model.ratio_to_average());
  }
  EXPECT_NEAR(ratio.mean(), fix, 0.15 * fix);
  // Theorem 2's n-free bound with slack for integer rounding noise.
  EXPECT_LT(ratio.mean(), fixpoint_limit(delta, f) * 1.1);
}

TEST(OneProcessorModel, ConsumeTotalDrainsAndCountsOps) {
  OneProcessorModel model(params(8, 1, 1.3), 5);
  for (std::uint32_t i = 0; i < 8; ++i) model.set_load(i, 100);
  model.set_trigger_baseline(100);
  const std::uint64_t ops = model.consume_total(300);
  EXPECT_GT(ops, 0u);
  EXPECT_EQ(model.total_load(), 800 - 300);
}

TEST(OneProcessorModel, ConsumeStopsWhenSystemEmpty) {
  OneProcessorModel model(params(4, 1, 1.5), 6);
  model.set_load(0, 10);
  model.set_trigger_baseline(10);
  model.consume_total(1000);  // asks for more than exists
  EXPECT_EQ(model.total_load(), 0);
}

TEST(OneProcessorModel, RelaxedPairwiseCountsOneOpPerRound) {
  OneProcessorModel model(params(8, 4, 1.2, /*relaxed=*/true), 7);
  model.grow_round();
  EXPECT_EQ(model.balance_operations(), 1u);
}

TEST(OneProcessorModel, RelaxedConservesLoad) {
  OneProcessorModel model(params(8, 4, 1.2, /*relaxed=*/true), 8);
  std::uint64_t generated = 0;
  for (int r = 0; r < 40; ++r) generated += model.grow_round();
  EXPECT_EQ(model.total_load(), static_cast<std::int64_t>(generated));
}

TEST(OneProcessorModel, InvalidParamsThrow) {
  EXPECT_THROW(OneProcessorModel(params(1, 1, 1.1), 1), contract_error);
  EXPECT_THROW(OneProcessorModel(params(4, 4, 1.1), 1), contract_error);
  EXPECT_THROW(OneProcessorModel(params(4, 0, 1.1), 1), contract_error);
  EXPECT_THROW(OneProcessorModel(params(4, 1, 0.5), 1), contract_error);
}

TEST(OneProcessorModel, SetLoadValidation) {
  OneProcessorModel model(params(4, 1, 1.1), 9);
  EXPECT_THROW(model.set_load(4, 1), contract_error);
  EXPECT_THROW(model.set_load(0, -1), contract_error);
}

// Parameterized sweep: the Theorem 2 bound FIX <= delta/(delta+1-f) holds
// for the *measured* mean ratio across the valid (f, delta) range.
struct RatioCase {
  std::uint32_t n;
  std::uint32_t delta;
  double f;
};

class RatioBound : public ::testing::TestWithParam<RatioCase> {};

TEST_P(RatioBound, MeasuredRatioRespectsTheorem2) {
  const auto& prm = GetParam();
  RunningMoments ratio;
  Rng seeder(1234);
  for (int run = 0; run < 150; ++run) {
    OneProcessorModel model(params(prm.n, prm.delta, prm.f), seeder.next());
    for (std::uint32_t i = 0; i < prm.n; ++i) model.set_load(i, 400);
    model.set_trigger_baseline(400);
    model.run_grow(50);
    ratio.add(model.ratio_to_average());
  }
  const double bound = fixpoint_limit(prm.delta, prm.f);
  EXPECT_LT(ratio.mean(), bound * 1.10)  // 10% slack: rounding + sampling
      << "n=" << prm.n << " delta=" << prm.delta << " f=" << prm.f;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RatioBound,
    ::testing::Values(RatioCase{8, 1, 1.1}, RatioCase{8, 1, 1.5},
                      RatioCase{16, 2, 1.1}, RatioCase{16, 2, 2.0},
                      RatioCase{32, 4, 1.1}, RatioCase{32, 4, 2.5},
                      RatioCase{64, 4, 1.8}, RatioCase{16, 8, 4.0}),
    [](const ::testing::TestParamInfo<RatioCase>& ti) {
      return "n" + std::to_string(ti.param.n) + "_d" +
             std::to_string(ti.param.delta) + "_f" +
             std::to_string(static_cast<int>(ti.param.f * 10));
    });

}  // namespace
}  // namespace dlb
