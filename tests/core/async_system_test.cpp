#include "core/async_system.hpp"

#include <gtest/gtest.h>

#include "metrics/imbalance.hpp"
#include "support/check.hpp"

namespace dlb {
namespace {

Trace make_trace(std::uint32_t n, std::uint32_t horizon, double g, double c,
                 std::uint64_t seed) {
  Rng rng(seed);
  return Trace::record(Workload::uniform(n, horizon, g, c), rng);
}

AsyncConfig cfg(double f = 1.2, std::uint32_t delta = 2,
                double latency = 0.5, std::uint64_t seed = 1) {
  AsyncConfig c;
  c.f = f;
  c.delta = delta;
  c.hop_latency = latency;
  c.seed = seed;
  return c;
}

TEST(AsyncSystem, ConservesLoadAtDrain) {
  const auto topo = Topology::torus2d(4, 4);
  const auto trace = make_trace(16, 300, 0.6, 0.4, 2);
  AsyncSystem sys(topo, cfg());
  sys.run(trace);
  std::int64_t total = 0;
  for (std::int64_t l : sys.loads()) total += l;
  EXPECT_EQ(total, static_cast<std::int64_t>(sys.stats().generated) -
                       static_cast<std::int64_t>(sys.stats().consumed));
  EXPECT_EQ(sys.stats().generated, trace.total_generations());
}

TEST(AsyncSystem, DeterministicInSeed) {
  const auto topo = Topology::hypercube(3);
  const auto trace = make_trace(8, 200, 0.7, 0.4, 3);
  AsyncSystem a(topo, cfg(1.2, 2, 0.7, 9));
  AsyncSystem b(topo, cfg(1.2, 2, 0.7, 9));
  a.run(trace);
  b.run(trace);
  EXPECT_EQ(a.loads(), b.loads());
  EXPECT_EQ(a.stats().balance_ops, b.stats().balance_ops);
  EXPECT_EQ(a.stats().messages, b.stats().messages);
}

TEST(AsyncSystem, ZeroLatencyBalancesHotspot) {
  const auto topo = Topology::torus2d(4, 4);
  Rng rng(4);
  const Trace trace =
      Trace::record(Workload::hotspot(16, 400, 1, 0.9, 0.0), rng);
  AsyncSystem sys(topo, cfg(1.1, 2, 0.0, 5));
  sys.run(trace);
  const auto report = measure_imbalance(sys.loads());
  EXPECT_LT(report.max_over_avg, 2.0);
  EXPECT_GT(sys.stats().balance_ops, 0u);
}

TEST(AsyncSystem, LatencyDegradesButDoesNotBreakBalance) {
  const auto topo = Topology::torus2d(4, 4);
  Rng rng(6);
  const Trace trace =
      Trace::record(Workload::hotspot(16, 400, 1, 0.9, 0.0), rng);
  AsyncSystem slow(topo, cfg(1.1, 2, 5.0, 7));
  slow.run(trace);
  std::int64_t total = 0;
  for (std::int64_t l : slow.loads()) total += l;
  EXPECT_EQ(total, static_cast<std::int64_t>(slow.stats().generated));
  // Still far better than no balancing (hotspot would hold everything).
  const auto report = measure_imbalance(slow.loads());
  EXPECT_LT(report.max_over_avg, 8.0);
}

TEST(AsyncSystem, HighLatencyCausesRefusalsAndDeferrals) {
  const auto topo = Topology::ring(8);
  const auto trace = make_trace(8, 300, 0.8, 0.5, 8);
  AsyncSystem sys(topo, cfg(1.05, 3, 3.0, 11));
  sys.run(trace);
  // With slow messages and aggressive triggers, overlapping transactions
  // must have occurred: refusals and/or deferred demand are nonzero.
  EXPECT_GT(sys.stats().refusals + sys.stats().deferred_events, 0u);
}

TEST(AsyncSystem, NeighborhoodPartnersStayLocal) {
  // On a ring with radius-1 partners, only processor 0 generates; its
  // transactions can only reach 1 and 15 directly, and load can only
  // leak further when those neighbors themselves trigger.
  const auto ring = Topology::ring(16);
  Rng rng(12);
  const Trace trace =
      Trace::record(Workload::hotspot(16, 100, 1, 0.9, 0.0), rng);
  AsyncConfig c = cfg(1.5, 2, 0.0, 13);
  c.partner_radius = 1;
  AsyncSystem sys(ring, c);
  sys.run(trace);
  std::int64_t total = 0;
  for (std::int64_t l : sys.loads()) total += l;
  EXPECT_EQ(total, static_cast<std::int64_t>(sys.stats().generated));
  // The far side of the ring cannot have received anything: with f=1.5
  // neighbors of neighbors trigger rarely in 100 steps.
  EXPECT_EQ(sys.loads()[8], 0);
}

TEST(AsyncSystem, NeighborhoodConservesUnderChurn) {
  const auto topo = Topology::torus2d(4, 4);
  const auto trace = make_trace(16, 250, 0.7, 0.5, 14);
  AsyncConfig c = cfg(1.1, 3, 0.5, 15);
  c.partner_radius = 2;
  AsyncSystem sys(topo, c);
  sys.run(trace);
  std::int64_t total = 0;
  for (std::int64_t l : sys.loads()) total += l;
  EXPECT_EQ(total, static_cast<std::int64_t>(sys.stats().generated) -
                       static_cast<std::int64_t>(sys.stats().consumed));
}

TEST(AsyncSystem, SnapshotsCoverHorizon) {
  const auto topo = Topology::ring(4);
  const auto trace = make_trace(4, 50, 0.5, 0.3, 9);
  AsyncSystem sys(topo, cfg());
  sys.run(trace);
  ASSERT_EQ(sys.snapshots().size(), 50u);
  for (const auto& snap : sys.snapshots()) EXPECT_EQ(snap.size(), 4u);
  // Final snapshot equals... the last snapshot is taken before trailing
  // in-flight messages drain, so compare totals only loosely: the drained
  // final state is authoritative.
  EXPECT_EQ(sys.loads().size(), 4u);
}

TEST(AsyncSystem, EmptyTraceDoesNothing) {
  const auto topo = Topology::ring(4);
  const Trace trace(4, 20);
  AsyncSystem sys(topo, cfg());
  sys.run(trace);
  EXPECT_EQ(sys.stats().balance_ops, 0u);
  EXPECT_EQ(sys.stats().messages, 0u);
  for (std::int64_t l : sys.loads()) EXPECT_EQ(l, 0);
}

TEST(AsyncSystem, RunIsSingleUse) {
  const auto topo = Topology::ring(4);
  const Trace trace(4, 10);
  AsyncSystem sys(topo, cfg());
  sys.run(trace);
  EXPECT_THROW(sys.run(trace), contract_error);
}

TEST(AsyncSystem, ValidatesConfig) {
  const auto topo = Topology::ring(4);
  EXPECT_THROW(AsyncSystem(topo, cfg(1.0)), contract_error);
  EXPECT_THROW(AsyncSystem(topo, cfg(1.2, 4)), contract_error);
  EXPECT_THROW(AsyncSystem(topo, cfg(1.2, 1, -1.0)), contract_error);
}

TEST(AsyncSystem, TraceTopologyMismatchThrows) {
  const auto topo = Topology::ring(4);
  const auto trace = make_trace(8, 10, 0.5, 0.5, 10);
  AsyncSystem sys(topo, cfg());
  EXPECT_THROW(sys.run(trace), contract_error);
}

// Latency sweep property: conservation and protocol drain hold for every
// latency, trigger aggressiveness, and topology combination.
struct AsyncCase {
  double latency;
  double f;
  std::uint32_t delta;
  std::uint64_t seed;
};

class AsyncProperty : public ::testing::TestWithParam<AsyncCase> {};

TEST_P(AsyncProperty, ConservationAndDrainAcrossLatencies) {
  const auto& prm = GetParam();
  const auto topo = Topology::torus2d(4, 4);
  const auto trace = make_trace(16, 250, 0.7, 0.5, prm.seed);
  AsyncSystem sys(topo, cfg(prm.f, prm.delta, prm.latency, prm.seed));
  sys.run(trace);  // run() itself asserts full drain
  std::int64_t total = 0;
  for (std::int64_t l : sys.loads()) {
    EXPECT_GE(l, 0);
    total += l;
  }
  EXPECT_EQ(total, static_cast<std::int64_t>(sys.stats().generated) -
                       static_cast<std::int64_t>(sys.stats().consumed));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AsyncProperty,
    ::testing::Values(AsyncCase{0.0, 1.1, 1, 1}, AsyncCase{0.1, 1.1, 2, 2},
                      AsyncCase{1.0, 1.05, 3, 3}, AsyncCase{2.5, 1.2, 4, 4},
                      AsyncCase{10.0, 1.5, 2, 5},
                      AsyncCase{0.01, 2.0, 8, 6}),
    [](const ::testing::TestParamInfo<AsyncCase>& ti) {
      return "lat" +
             std::to_string(static_cast<int>(ti.param.latency * 100)) +
             "_f" + std::to_string(static_cast<int>(ti.param.f * 100)) +
             "_d" + std::to_string(ti.param.delta);
    });

}  // namespace
}  // namespace dlb
