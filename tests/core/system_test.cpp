#include "core/system.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>

#include "support/check.hpp"

namespace dlb {
namespace {

BalancerConfig cfg(double f = 1.1, std::uint32_t delta = 1,
                   std::uint32_t cap = 4) {
  BalancerConfig c;
  c.f = f;
  c.delta = delta;
  c.borrow_cap = cap;
  return c;
}

TEST(System, StartsEmpty) {
  System sys(4, cfg(), 1);
  EXPECT_EQ(sys.total_load(), 0);
  EXPECT_EQ(sys.total_generated(), 0u);
  EXPECT_EQ(sys.balance_operations(), 0u);
  sys.check_invariants();
}

TEST(System, GenerateIncreasesLoadAndTriggersFirstBalance) {
  System sys(4, cfg(), 2);
  sys.generate(0);
  // [D1]: with l_old == 0 the first self packet crosses the trigger.
  EXPECT_GE(sys.balance_operations(), 1u);
  EXPECT_EQ(sys.total_load(), 1);
  sys.check_invariants();
}

TEST(System, ConsumeOnEmptyFails) {
  System sys(3, cfg(), 3);
  EXPECT_FALSE(sys.consume(1));
  EXPECT_EQ(sys.total_consumed(), 0u);
}

TEST(System, GenerateConsumeRoundTrip) {
  System sys(2, cfg(), 4);
  sys.generate(0);
  EXPECT_TRUE(sys.consume(0) || sys.consume(1));
  EXPECT_EQ(sys.total_load(), 0);
  sys.check_invariants();
}

TEST(System, PacketConservationUnderLoad) {
  System sys(8, cfg(1.1, 2), 5);
  const Workload wl = Workload::uniform(8, 300, 0.6, 0.4);
  sys.run(wl);
  sys.check_invariants();
  EXPECT_EQ(sys.total_load(),
            static_cast<std::int64_t>(sys.total_generated()) -
                static_cast<std::int64_t>(sys.total_consumed()));
}

TEST(System, OneProducerSpreadsLoadAcrossNetwork) {
  System sys(8, cfg(1.1, 2), 6);
  const Workload wl = Workload::one_producer(8, 400);
  sys.run(wl);
  sys.check_invariants();
  EXPECT_EQ(sys.total_load(), 400);
  const auto loads = sys.loads();
  // Every processor should have received a share.
  for (std::int64_t l : loads) EXPECT_GT(l, 0);
  // And no processor should dominate: max within a small factor of avg.
  const std::int64_t maxl = *std::max_element(loads.begin(), loads.end());
  EXPECT_LT(static_cast<double>(maxl), 3.0 * 400.0 / 8.0);
}

TEST(System, BalanceEqualizesParticipants) {
  System sys(2, cfg(10.0, 1), 7);  // huge f: no automatic triggers
  for (int i = 0; i < 10; ++i) sys.generate(0);
  // f = 10 with l_old updated after the first packet: the first packet
  // triggers (l_old 0); afterwards growth to 10x is needed, so loads can
  // skew. Force one explicit balance and verify +/-1.
  sys.force_balance(0);
  const auto loads = sys.loads();
  EXPECT_LE(std::abs(loads[0] - loads[1]), 1);
  sys.check_invariants();
}

TEST(System, LedgerRowTotalsMatchLoads) {
  System sys(6, cfg(1.2, 2), 8);
  const Workload wl = Workload::uniform(6, 200, 0.5, 0.3);
  sys.run(wl);
  for (std::uint32_t p = 0; p < 6; ++p) {
    std::int64_t row = 0;
    for (std::uint32_t j = 0; j < 6; ++j)
      row += sys.processor(p).ledger.d(j);
    EXPECT_EQ(row, sys.load(p));
  }
}

TEST(System, BorrowCapIsRespected) {
  System sys(6, cfg(1.1, 1, 2), 9);
  const Workload wl = Workload::uniform(6, 400, 0.4, 0.6);
  sys.run(wl);  // consumption-heavy: exercises the borrow protocol
  for (std::uint32_t p = 0; p < 6; ++p) {
    EXPECT_LE(sys.processor(p).ledger.borrowed_total(), 2);
    for (std::uint32_t j = 0; j < 6; ++j)
      EXPECT_LE(sys.processor(p).ledger.b(j), 1);
  }
  sys.check_invariants();
}

TEST(System, BorrowCapZeroDisablesBorrowing) {
  System sys(4, cfg(1.1, 1, 0), 10);
  const Workload wl = Workload::uniform(4, 200, 0.4, 0.6);
  sys.run(wl);
  for (std::uint32_t p = 0; p < 4; ++p)
    EXPECT_EQ(sys.processor(p).ledger.borrowed_total(), 0);
  sys.check_invariants();
}

TEST(System, DeterministicForEqualSeeds) {
  const Workload wl = Workload::uniform(8, 150, 0.6, 0.4);
  System a(8, cfg(1.1, 2), 77);
  System b(8, cfg(1.1, 2), 77);
  a.run(wl);
  b.run(wl);
  EXPECT_EQ(a.loads(), b.loads());
  EXPECT_EQ(a.balance_operations(), b.balance_operations());
  EXPECT_EQ(a.total_generated(), b.total_generated());
}

TEST(System, TraceReplayMatchesLiveRunDemand) {
  const Workload wl = Workload::uniform(4, 100, 0.5, 0.5);
  Rng trace_rng(55);
  const Trace trace = Trace::record(wl, trace_rng);
  System sys(4, cfg(), 11);
  sys.run(trace);
  sys.check_invariants();
  // Each generation in the trace became a packet; consumption attempts
  // are bounded by the trace.
  EXPECT_EQ(sys.total_generated(), trace.total_generations());
  EXPECT_LE(sys.total_consumed(), trace.total_consume_attempts());
}

TEST(System, LocalTimeTicksForAllParticipants) {
  System sys(4, cfg(10.0, 3), 12);
  sys.generate(0);        // first packet triggers one balance (l_old was 0)
  sys.force_balance(0);   // plus one forced: all 4 procs participate twice
  for (std::uint32_t p = 0; p < 4; ++p)
    EXPECT_EQ(sys.processor(p).local_time, 2u);
}

TEST(System, ShrinkTriggerFiresOnConsumption) {
  System sys(4, cfg(1.5, 1), 13);
  const Workload grow = Workload::one_producer(4, 100);
  sys.run(grow);
  const std::uint64_t ops_after_growth = sys.balance_operations();
  // Now consume processor 0's own packets; its d[0] shrink by factor f
  // must eventually fire the shrink trigger.
  for (int i = 0; i < 30; ++i) sys.consume(0);
  EXPECT_GT(sys.balance_operations(), ops_after_growth);
  sys.check_invariants();
}

TEST(System, TopologySizeMismatchThrows) {
  const auto topo = Topology::ring(8);
  EXPECT_THROW(System(4, cfg(), 1, &topo), contract_error);
}

TEST(System, NeighborhoodRestrictionNeedsTopology) {
  System sys(4, cfg(), 14);
  EXPECT_THROW(sys.restrict_partners_to_neighborhood(1), contract_error);
}

TEST(System, NeighborhoodPartnersComeFromBall) {
  const auto ring = Topology::ring(16);
  System sys(16, cfg(1.1, 2), 15, &ring);
  sys.restrict_partners_to_neighborhood(1);
  const Workload wl = Workload::one_producer(16, 200);
  sys.run(wl);
  sys.check_invariants();
  // With radius-1 partners on a ring, load spreads but distant nodes get
  // less than near ones early: at least the immediate neighbors of 0
  // must hold load.
  EXPECT_GT(sys.load(1) + sys.load(15), 0);
}

TEST(System, HopCostsAccountedOnTopology) {
  const auto ring = Topology::ring(8);
  System sys(8, cfg(1.1, 2), 16, &ring);
  const Workload wl = Workload::one_producer(8, 200);
  sys.run(wl);
  const CostTotals& totals = sys.costs().totals();
  EXPECT_GT(totals.balance_ops, 0u);
  EXPECT_GT(totals.packets_moved, 0u);
  // On a ring with global random partners, average hop distance > 1.
  EXPECT_GT(totals.packet_hops, totals.packets_moved);
}

TEST(System, NetFlowNeverExceedsGrossTraffic) {
  System sys(8, cfg(1.1, 2), 21);
  const Workload wl = Workload::uniform(8, 300, 0.6, 0.4);
  sys.run(wl);
  const CostTotals& totals = sys.costs().totals();
  EXPECT_GT(totals.packets_moved, 0u);
  EXPECT_LE(totals.packets_moved_net, totals.packets_moved);
}

TEST(System, AnalysisModeStillConservesAndBalances) {
  BalancerConfig c = cfg(1.1, 2);
  c.analysis_mode = true;
  System sys(8, c, 17);
  const Workload wl = Workload::uniform(8, 300, 0.6, 0.3);
  sys.run(wl);
  sys.check_invariants();
  EXPECT_EQ(sys.total_load(),
            static_cast<std::int64_t>(sys.total_generated()) -
                static_cast<std::int64_t>(sys.total_consumed()));
}

TEST(System, StepValidatesEventVectorSize) {
  System sys(3, cfg(), 18);
  std::vector<WorkEvent> wrong(2);
  EXPECT_THROW(sys.step(0, wrong), contract_error);
}

TEST(System, ForceBalanceOutOfRangeThrows) {
  System sys(3, cfg(), 19);
  EXPECT_THROW(sys.force_balance(3), contract_error);
  EXPECT_THROW(sys.generate(5), contract_error);
  EXPECT_THROW(sys.consume(7), contract_error);
  EXPECT_THROW(sys.load(9), contract_error);
}

}  // namespace
}  // namespace dlb
