// Targeted tests of the §4 borrow protocol paths.  Small networks with a
// huge trigger factor keep balancing under test control; assertions are
// on protocol events and ledger invariants rather than on exact random
// outcomes.
#include <gtest/gtest.h>

#include "core/system.hpp"
#include "metrics/recorder.hpp"

namespace dlb {
namespace {

BalancerConfig cfg(std::uint32_t cap, double f = 100.0,
                   std::uint32_t delta = 1) {
  BalancerConfig c;
  c.f = f;
  c.delta = delta;
  c.borrow_cap = cap;
  return c;
}

// Puts packets of processor 0's class onto every processor.
void spread_class0(System& sys, int packets) {
  for (int i = 0; i < packets; ++i) sys.generate(0);
  sys.force_balance(0);
}

TEST(BorrowProtocol, LocalBorrowEmitsEventAndCreatesMarker) {
  System sys(2, cfg(4), 1);
  BorrowCounterRecorder rec;
  rec.begin_run(0);
  sys.attach_recorder(&rec);

  spread_class0(sys, 8);  // both processors now hold class-0 packets
  ASSERT_GT(sys.processor(1).ledger.d(0), 0);
  ASSERT_EQ(sys.processor(1).ledger.d(1), 0);

  // Processor 1 consumes: no self-generated packets -> must borrow.
  ASSERT_TRUE(sys.consume(1));
  EXPECT_EQ(sys.processor(1).ledger.b(0), 1);
  EXPECT_EQ(sys.processor(1).ledger.borrowed_total(), 1);
  rec.end_run();
  EXPECT_EQ(rec.totals().total_borrow, 1u);
  sys.check_invariants();
}

TEST(BorrowProtocol, GenerationRepaysOutstandingDebt) {
  System sys(2, cfg(4), 2);
  spread_class0(sys, 8);
  ASSERT_TRUE(sys.consume(1));
  ASSERT_EQ(sys.processor(1).ledger.borrowed_total(), 1);
  const std::int64_t d0_before = sys.processor(1).ledger.d(0);

  // The appendix generate path: the new packet is booked against the
  // marker (class 0), not as a class-1 packet.
  sys.generate(1);
  EXPECT_EQ(sys.processor(1).ledger.borrowed_total(), 0);
  EXPECT_EQ(sys.processor(1).ledger.d(0), d0_before + 1);
  EXPECT_EQ(sys.processor(1).ledger.d(1), 0);
  sys.check_invariants();
}

TEST(BorrowProtocol, CapExhaustionTriggersRemoteExchange) {
  // C = 1: the second credit consumption must settle remotely first.
  System sys(2, cfg(1), 3);
  BorrowCounterRecorder rec;
  rec.begin_run(0);
  sys.attach_recorder(&rec);

  spread_class0(sys, 12);
  ASSERT_GT(sys.processor(0).ledger.d(0), 0);

  ASSERT_TRUE(sys.consume(1));  // borrow 1 (cap reached)
  ASSERT_TRUE(sys.consume(1));  // settle + borrow again
  rec.end_run();
  EXPECT_GE(rec.totals().remote_borrow, 1u);
  EXPECT_GE(rec.totals().decrease_sim, 1u);
  EXPECT_LE(sys.processor(1).ledger.borrowed_total(), 1);
  sys.check_invariants();
}

TEST(BorrowProtocol, RemoteExchangeMigratesRealPackets) {
  System sys(2, cfg(1), 4);
  spread_class0(sys, 12);
  const std::int64_t gen_d0 = sys.processor(0).ledger.d(0);
  ASSERT_TRUE(sys.consume(1));
  ASSERT_TRUE(sys.consume(1));
  // Settlement ships real class-0 packets from their generator.
  EXPECT_LT(sys.processor(0).ledger.d(0), gen_d0);
  EXPECT_GT(sys.costs().totals().packets_moved_net, 0u);
  sys.check_invariants();
}

TEST(BorrowProtocol, EmptyGeneratorResolutionOccursUnderPressure) {
  // The [D5] path (settlement against a generator that holds none of its
  // own packets) cannot be pinned down deterministically — generation
  // repays debts and draining triggers rebalances — but it must occur
  // under sustained consumption pressure with a tight cap, and the run
  // must stay consistent when it does.
  std::uint64_t fails = 0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    BalancerConfig c = cfg(1, 1.1, 1);
    System sys(8, c, seed);
    BorrowCounterRecorder rec;
    rec.begin_run(0);
    sys.attach_recorder(&rec);
    const Workload wl = Workload::uniform(8, 500, 0.4, 0.7);
    sys.run(wl);
    rec.end_run();
    fails += rec.totals().borrow_fail;
    sys.check_invariants();
  }
  EXPECT_GT(fails, 0u);
}

TEST(BorrowProtocol, ConsumeFailsOnlyWhenTrulyEmpty) {
  System sys(3, cfg(2, 100.0, 2), 6);
  EXPECT_FALSE(sys.consume(0));
  spread_class0(sys, 3);
  // Total 3 packets; 3 consumes from any processors must succeed, the
  // 4th must fail.
  int successes = 0;
  for (int i = 0; i < 6; ++i) {
    if (sys.consume(static_cast<std::uint32_t>(i % 3))) ++successes;
  }
  EXPECT_EQ(successes, 3);
  EXPECT_EQ(sys.total_load(), 0);
  sys.check_invariants();
}

TEST(BorrowProtocol, BorrowCapZeroForbidsCreditConsumption) {
  System sys(2, cfg(0), 7);
  spread_class0(sys, 8);
  ASSERT_GT(sys.processor(1).ledger.d(0), 0);
  ASSERT_EQ(sys.processor(1).ledger.d(1), 0);
  // Processor 1 holds only foreign packets and cannot borrow.
  EXPECT_FALSE(sys.consume(1));
  EXPECT_EQ(sys.processor(1).ledger.borrowed_total(), 0);
  sys.check_invariants();
}

TEST(BorrowProtocol, MarkersRedistributeWithinCapDuringBalance) {
  // Markers are dealt like packets during a balancing operation and the
  // per-class <= 1 marker rule survives.
  System sys(4, cfg(4, 100.0, 3), 8);
  spread_class0(sys, 16);
  // All non-generators consume on credit.
  for (std::uint32_t p = 1; p < 4; ++p) {
    if (sys.processor(p).ledger.d(0) > 0) {
      ASSERT_TRUE(sys.consume(p));
    }
  }
  sys.force_balance(0);
  for (std::uint32_t p = 0; p < 4; ++p) {
    for (std::uint32_t j = 0; j < 4; ++j)
      EXPECT_LE(sys.processor(p).ledger.b(j), 1);
  }
  sys.check_invariants();
}

TEST(BorrowProtocol, LongCreditHeavyRunStaysConsistent) {
  // Consumption-dominated workload: the protocol is exercised thousands
  // of times; invariants and the cap must hold throughout.
  BalancerConfig c = cfg(2, 1.1, 2);
  System sys(8, c, 9);
  BorrowCounterRecorder rec;
  rec.begin_run(0);
  sys.attach_recorder(&rec);
  const Workload wl = Workload::uniform(8, 600, 0.45, 0.65);
  sys.run(wl);
  rec.end_run();
  EXPECT_GT(rec.totals().total_borrow, 100u);
  sys.check_invariants();
  for (std::uint32_t p = 0; p < 8; ++p)
    EXPECT_LE(sys.processor(p).ledger.borrowed_total(), 2);
}

}  // namespace
}  // namespace dlb
