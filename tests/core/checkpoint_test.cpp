#include "core/checkpoint.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "support/check.hpp"

namespace dlb {
namespace {

BalancerConfig cfg() {
  BalancerConfig c;
  c.f = 1.2;
  c.delta = 2;
  c.borrow_cap = 3;
  return c;
}

TEST(Checkpoint, RoundTripPreservesState) {
  System original(8, cfg(), 42);
  const Workload wl = Workload::uniform(8, 150, 0.6, 0.4);
  original.run(wl);

  std::stringstream buffer;
  save_checkpoint(original, buffer);
  System restored = load_checkpoint(buffer);

  EXPECT_EQ(restored.processors(), original.processors());
  EXPECT_EQ(restored.loads(), original.loads());
  EXPECT_EQ(restored.total_generated(), original.total_generated());
  EXPECT_EQ(restored.total_consumed(), original.total_consumed());
  EXPECT_EQ(restored.balance_operations(), original.balance_operations());
  for (std::uint32_t p = 0; p < 8; ++p) {
    EXPECT_EQ(restored.processor(p).ledger.dense_d(),
              original.processor(p).ledger.dense_d());
    EXPECT_EQ(restored.processor(p).ledger.dense_b(),
              original.processor(p).ledger.dense_b());
    EXPECT_EQ(restored.processor(p).l_old, original.processor(p).l_old);
    EXPECT_EQ(restored.processor(p).local_time,
              original.processor(p).local_time);
  }
  EXPECT_EQ(restored.costs().totals().packets_moved,
            original.costs().totals().packets_moved);
}

TEST(Checkpoint, RestoredRunContinuesBitIdentically) {
  // Uninterrupted: 300 steps.  Interrupted: 150 steps, checkpoint,
  // restore, 150 more steps on the same demand.  Results must match
  // exactly.
  const Workload wl = Workload::uniform(8, 300, 0.6, 0.4);
  Rng trace_rng(9);
  const Trace trace = Trace::record(wl, trace_rng);

  System uninterrupted(8, cfg(), 7);
  uninterrupted.run(trace);

  System first_half(8, cfg(), 7);
  std::vector<WorkEvent> events(8);
  for (std::uint32_t t = 0; t < 150; ++t) {
    for (std::uint32_t p = 0; p < 8; ++p) events[p] = trace.at(p, t);
    first_half.step(t, events);
  }
  std::stringstream buffer;
  save_checkpoint(first_half, buffer);
  System second_half = load_checkpoint(buffer);
  for (std::uint32_t t = 150; t < 300; ++t) {
    for (std::uint32_t p = 0; p < 8; ++p) events[p] = trace.at(p, t);
    second_half.step(t, events);
  }

  EXPECT_EQ(second_half.loads(), uninterrupted.loads());
  EXPECT_EQ(second_half.balance_operations(),
            uninterrupted.balance_operations());
  EXPECT_EQ(second_half.total_generated(),
            uninterrupted.total_generated());
  for (std::uint32_t p = 0; p < 8; ++p) {
    EXPECT_EQ(second_half.processor(p).ledger.dense_d(),
              uninterrupted.processor(p).ledger.dense_d());
  }
}

TEST(Checkpoint, PreservesNeighborhoodRestriction) {
  const auto ring = Topology::ring(8);
  System original(8, cfg(), 5, &ring);
  original.restrict_partners_to_neighborhood(2);
  original.run(Workload::one_producer(8, 100));

  std::stringstream buffer;
  save_checkpoint(original, buffer);
  System restored = load_checkpoint(buffer, &ring);
  EXPECT_EQ(restored.partner_radius(), original.partner_radius());
  EXPECT_EQ(restored.loads(), original.loads());
}

TEST(Checkpoint, NeighborhoodCheckpointWithoutTopologyThrows) {
  const auto ring = Topology::ring(8);
  System original(8, cfg(), 5, &ring);
  original.restrict_partners_to_neighborhood(1);
  std::stringstream buffer;
  save_checkpoint(original, buffer);
  EXPECT_THROW(load_checkpoint(buffer), contract_error);
}

TEST(Checkpoint, SavesSparseVersion2) {
  System original(8, cfg(), 42);
  original.run(Workload::uniform(8, 60, 0.6, 0.4));
  std::stringstream buffer;
  save_checkpoint(original, buffer);
  std::string magic;
  int version = 0;
  buffer >> magic >> version;
  EXPECT_EQ(magic, "dlb-checkpoint");
  EXPECT_EQ(version, 2);
  // The sparse body must round-trip (also covered by the tests above,
  // which go through the same save/load pair).
  buffer.seekg(0);
  System restored = load_checkpoint(buffer);
  EXPECT_EQ(restored.loads(), original.loads());
}

TEST(Checkpoint, ReadsDenseVersion1) {
  // A version-1 checkpoint (dense 2n-cell ledger rows) must restore into
  // the sparse storage: processor 0 holds 3 packets of class 0 plus a
  // class-1 marker, processor 1 holds 1 packet of class 1.
  std::ostringstream os;
  os << "dlb-checkpoint 1\n";
  os << "2 1 4 0\n";
  os.precision(17);
  os << std::hexfloat << 1.5 << std::defaultfloat << '\n';
  const auto rng_state = Rng(7).state();
  os << rng_state[0] << ' ' << rng_state[1] << ' ' << rng_state[2] << ' '
     << rng_state[3] << '\n';
  os << "5 1 0\n";       // generated consumed balance_ops (loads sum = 4)
  os << "0 0 0 0 0 0\n"; // cost totals
  os << "-1\n";          // no partner radius
  os << "3 0\n" << "3 0\n" << "0 1\n";  // proc 0: l_old/local_time, d, b
  os << "1 0\n" << "0 1\n" << "0 0\n";  // proc 1
  std::istringstream is(os.str());
  System restored = load_checkpoint(is);
  EXPECT_EQ(restored.processors(), 2u);
  EXPECT_EQ(restored.processor(0).ledger.d(0), 3);
  EXPECT_EQ(restored.processor(0).ledger.b(1), 1);
  EXPECT_EQ(restored.processor(1).ledger.d(1), 1);
  EXPECT_EQ(restored.processor(0).ledger.active_classes(),
            (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(restored.processor(1).ledger.active_classes(),
            (std::vector<std::uint32_t>{1}));
}

TEST(Checkpoint, RejectsGarbage) {
  std::stringstream not_a_checkpoint("hello world");
  EXPECT_THROW(load_checkpoint(not_a_checkpoint), contract_error);
  std::stringstream wrong_version("dlb-checkpoint 999\n");
  EXPECT_THROW(load_checkpoint(wrong_version), contract_error);
  std::stringstream truncated("dlb-checkpoint 1\n4 2 3 0\n");
  EXPECT_THROW(load_checkpoint(truncated), contract_error);
}

TEST(Checkpoint, ExactDoubleRoundTrip) {
  // f is written in hexfloat: an "ugly" value must survive exactly.
  BalancerConfig c;
  c.f = 1.0 + 1.0 / 3.0;
  c.delta = 1;
  System original(4, c, 3);
  original.generate(0);
  std::stringstream buffer;
  save_checkpoint(original, buffer);
  System restored = load_checkpoint(buffer);
  EXPECT_EQ(restored.config().f, c.f);
}

}  // namespace
}  // namespace dlb
