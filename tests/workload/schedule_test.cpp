#include "workload/schedule.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "support/check.hpp"
#include "support/rng.hpp"
#include "workload/workload.hpp"

namespace dlb {
namespace {

Workload make(std::uint32_t processors, std::uint32_t horizon,
              std::vector<std::vector<Phase>> phases) {
  return Workload(processors, horizon, std::move(phases), "test");
}

std::vector<std::uint32_t> active_ids(
    const std::vector<ActiveSchedule::Entry>& entries) {
  std::vector<std::uint32_t> ids;
  for (const auto& e : entries) ids.push_back(e.proc);
  return ids;
}

TEST(ActiveSchedule, TracksPhaseBoundaries) {
  // p0: [0,2], p1: [2,4], p2: no phases at all.
  const Workload wl = make(3, 6,
                           {{Phase{0, 2, 0.5, 0.5}},
                            {Phase{2, 4, 0.5, 0.5}},
                            {}});
  ActiveSchedule sched(wl);
  EXPECT_EQ(sched.compiled_phases(), 2u);
  EXPECT_EQ(active_ids(sched.advance(0)), (std::vector<std::uint32_t>{0}));
  EXPECT_EQ(active_ids(sched.advance(1)), (std::vector<std::uint32_t>{0}));
  EXPECT_EQ(active_ids(sched.advance(2)), (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(active_ids(sched.advance(3)), (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(active_ids(sched.advance(4)), (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(active_ids(sched.advance(5)), (std::vector<std::uint32_t>{}));
}

TEST(ActiveSchedule, BackToBackPhasesHandOff) {
  const Workload wl =
      make(1, 4, {{Phase{0, 1, 0.3, 0.0}, Phase{2, 3, 0.9, 0.0}}});
  ActiveSchedule sched(wl);
  const auto& at0 = sched.advance(0);
  ASSERT_EQ(at0.size(), 1u);
  EXPECT_DOUBLE_EQ(at0[0].phase->generate_prob, 0.3);
  sched.advance(1);
  const auto& at2 = sched.advance(2);
  ASSERT_EQ(at2.size(), 1u);
  EXPECT_DOUBLE_EQ(at2[0].phase->generate_prob, 0.9);
}

TEST(ActiveSchedule, SilentPhasesAreElided) {
  // A fully silent phase draws no randomness and fires no events, so the
  // compiler drops it: the processor never shows up as active.
  const Workload wl = make(2, 4,
                           {{Phase{0, 3, 0.0, 0.0}},
                            {Phase{1, 2, 0.4, 0.0}}});
  ActiveSchedule sched(wl);
  EXPECT_EQ(sched.compiled_phases(), 1u);
  EXPECT_TRUE(sched.advance(0).empty());
  EXPECT_EQ(active_ids(sched.advance(1)), (std::vector<std::uint32_t>{1}));
}

TEST(ActiveSchedule, ProcessorRangeRestriction) {
  const Workload wl = Workload::uniform(8, 5, 0.5, 0.5);
  ActiveSchedule sched(wl, 2, 5);
  EXPECT_EQ(active_ids(sched.advance(0)),
            (std::vector<std::uint32_t>{2, 3, 4}));
}

TEST(ActiveSchedule, ResetRewindsToStepZero) {
  const Workload wl = make(2, 3, {{Phase{1, 2, 0.5, 0.5}}, {}});
  ActiveSchedule sched(wl);
  sched.advance(0);
  sched.advance(1);
  sched.reset();
  EXPECT_TRUE(sched.advance(0).empty());
  EXPECT_EQ(active_ids(sched.advance(1)), (std::vector<std::uint32_t>{0}));
}

TEST(ActiveSchedule, OutOfOrderAdvanceThrows) {
  const Workload wl = Workload::uniform(2, 4, 0.5, 0.5);
  ActiveSchedule sched(wl);
  sched.advance(0);
  EXPECT_THROW(sched.advance(2), contract_error);
}

// The bit-identity foundation: sampling only the scheduled processors
// consumes exactly the same RNG stream as sampling all of them, for any
// phase layout — including sparse ones where most processors are idle.
TEST(ActiveSchedule, BatchedSamplingMatchesDenseSampling) {
  Rng layout(99);
  const WorkloadParams params;
  const std::vector<Workload> workloads = {
      Workload::paper_benchmark(16, 600, params, layout),
      Workload::sparse_hotspot(64, 200, 5, 0.7, 0.3),
      Workload::wave(12, 120, 3),
      Workload::one_producer(8, 50),
  };
  for (const Workload& wl : workloads) {
    Rng dense_rng(4242);
    Rng batched_rng(4242);
    ActiveSchedule sched(wl);
    for (std::uint32_t t = 0; t < wl.horizon(); ++t) {
      std::vector<std::pair<std::uint32_t, WorkEvent>> dense;
      for (std::uint32_t p = 0; p < wl.processors(); ++p) {
        const WorkEvent ev = wl.sample(p, t, dense_rng);
        if (ev.generate || ev.consume) dense.emplace_back(p, ev);
      }
      std::vector<std::pair<std::uint32_t, WorkEvent>> batched;
      for (const auto& e : sched.advance(t)) {
        WorkEvent ev;
        ev.generate = batched_rng.bernoulli(e.phase->generate_prob);
        ev.consume = batched_rng.bernoulli(e.phase->consume_prob);
        if (ev.generate || ev.consume) batched.emplace_back(e.proc, ev);
      }
      ASSERT_EQ(dense.size(), batched.size()) << wl.name() << " t=" << t;
      for (std::size_t i = 0; i < dense.size(); ++i) {
        EXPECT_EQ(dense[i].first, batched[i].first);
        EXPECT_EQ(dense[i].second.generate, batched[i].second.generate);
        EXPECT_EQ(dense[i].second.consume, batched[i].second.consume);
      }
    }
    EXPECT_EQ(dense_rng.state(), batched_rng.state()) << wl.name();
  }
}

// The async engine's ownership law: the strided schedules over all
// offsets partition the full schedule — every (step, processor) entry
// appears in exactly the schedule of offset p mod stride.
TEST(ActiveSchedule, StridedSchedulesPartitionTheFullSchedule) {
  Rng layout(5);
  const WorkloadParams params;
  const std::vector<Workload> workloads = {
      Workload::paper_benchmark(24, 150, params, layout),
      Workload::sparse_hotspot(64, 100, 7, 0.7, 0.3),
  };
  for (const Workload& wl : workloads) {
    for (std::uint32_t stride : {1u, 3u, 4u}) {
      ActiveSchedule full(wl);
      std::vector<ActiveSchedule> strided;
      for (std::uint32_t offset = 0; offset < stride; ++offset)
        strided.push_back(ActiveSchedule::strided(wl, offset, stride));
      for (std::uint32_t t = 0; t < wl.horizon(); ++t) {
        std::vector<std::uint32_t> merged;
        for (ActiveSchedule& sched : strided)
          for (const auto& e : sched.advance(t)) {
            EXPECT_EQ(e.proc % stride,
                      static_cast<std::uint32_t>(&sched - strided.data()));
            merged.push_back(e.proc);
          }
        std::sort(merged.begin(), merged.end());
        ASSERT_EQ(merged, active_ids(full.advance(t)))
            << wl.name() << " stride=" << stride << " t=" << t;
      }
    }
  }
}

TEST(ActiveSchedule, StridedValidatesOffsetAndStride) {
  const Workload wl = Workload::uniform(8, 4, 0.5, 0.5);
  EXPECT_THROW(ActiveSchedule::strided(wl, 0, 0), contract_error);
  EXPECT_THROW(ActiveSchedule::strided(wl, 3, 3), contract_error);
}

}  // namespace
}  // namespace dlb
