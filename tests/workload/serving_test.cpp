// Serving workload: the bounded Zipf sampler against its analytic pmf,
// determinism of the compiled schedule, and the scenario structure
// (diurnal envelope, flash crowds, engine compatibility).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "core/system.hpp"
#include "support/rng.hpp"
#include "workload/schedule.hpp"
#include "workload/serving.hpp"
#include "workload/trace.hpp"

namespace dlb {
namespace {

// ---- ZipfSampler ------------------------------------------------------

TEST(ZipfSampler, PmfIsNormalizedAndMonotone) {
  for (double alpha : {0.8, 1.0, 1.4}) {
    ZipfSampler z(500, alpha);
    double total = 0.0;
    for (std::uint64_t k = 1; k <= z.n(); ++k) {
      const double p = z.pmf(k);
      EXPECT_GT(p, 0.0);
      if (k > 1) EXPECT_LT(p, z.pmf(k - 1));
      total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-12) << "alpha=" << alpha;
  }
}

TEST(ZipfSampler, SamplesStayInRange) {
  ZipfSampler z(100, 1.1);
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t k = z.sample(rng);
    ASSERT_GE(k, 1u);
    ASSERT_LE(k, 100u);
  }
}

// Empirical rank frequencies converge to the analytic pmf — the
// statistical correctness of rejection inversion.  With 200k draws the
// standard error of a head rank's frequency is ~sqrt(p/200k) < 0.0011,
// so a 4-sigma band stays well under the 0.005 absolute tolerance.
TEST(ZipfSampler, FrequencyMatchesAnalyticPmf) {
  for (double alpha : {0.8, 1.1, 1.4}) {
    ZipfSampler z(1000, alpha);
    Rng rng(20260809);
    const int draws = 200000;
    std::map<std::uint64_t, int> freq;
    for (int i = 0; i < draws; ++i) ++freq[z.sample(rng)];
    // Head ranks individually...
    for (std::uint64_t k = 1; k <= 10; ++k) {
      const double observed =
          static_cast<double>(freq[k]) / static_cast<double>(draws);
      EXPECT_NEAR(observed, z.pmf(k), 0.005)
          << "alpha=" << alpha << " rank=" << k;
    }
    // ...and the tail in aggregate (ranks > 100).
    double tail_expected = 0.0;
    for (std::uint64_t k = 101; k <= z.n(); ++k) tail_expected += z.pmf(k);
    int tail_observed = 0;
    for (const auto& [k, c] : freq)
      if (k > 100) tail_observed += c;
    EXPECT_NEAR(static_cast<double>(tail_observed) / draws, tail_expected,
                0.01)
        << "alpha=" << alpha;
  }
}

TEST(ZipfSampler, DeterministicGivenSeed) {
  ZipfSampler z(1u << 20, 1.1);
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(z.sample(a), z.sample(b));
}

// A multi-million-rank universe must sample without any O(n) setup —
// this is the property that makes ServingParams::sessions = 2e6 viable.
TEST(ZipfSampler, HugeUniverseSamplesCheaply) {
  ZipfSampler z(2'000'000, 1.1);
  Rng rng(3);
  std::uint64_t max_seen = 0;
  for (int i = 0; i < 20000; ++i) max_seen = std::max(max_seen, z.sample(rng));
  EXPECT_LE(max_seen, 2'000'000u);
  EXPECT_GT(max_seen, 1000u);  // the tail is actually reachable
}

// ---- ServingWorkload --------------------------------------------------

ServingParams small_params() {
  ServingParams p;
  p.sessions = 50000;
  return p;
}

TEST(ServingWorkload, BuildIsDeterministic) {
  const auto p = small_params();
  const Workload a = ServingWorkload::build(16, 200, p, 99);
  const Workload b = ServingWorkload::build(16, 200, p, 99);
  ASSERT_EQ(a.processors(), b.processors());
  for (std::uint32_t i = 0; i < a.processors(); ++i) {
    const auto& pa = a.phases_of(i);
    const auto& pb = b.phases_of(i);
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t j = 0; j < pa.size(); ++j) {
      EXPECT_EQ(pa[j].start, pb[j].start);
      EXPECT_EQ(pa[j].end, pb[j].end);
      EXPECT_DOUBLE_EQ(pa[j].generate_prob, pb[j].generate_prob);
      EXPECT_DOUBLE_EQ(pa[j].consume_prob, pb[j].consume_prob);
    }
  }
}

TEST(ServingWorkload, PhasesCoverHorizonWithValidProbabilities) {
  const auto p = small_params();
  const std::uint32_t horizon = 230;  // not a multiple of segment_steps
  const Workload wl = ServingWorkload::build(8, horizon, p, 5);
  EXPECT_EQ(wl.horizon(), horizon);
  for (std::uint32_t i = 0; i < 8; ++i) {
    const auto& phases = wl.phases_of(i);
    ASSERT_FALSE(phases.empty());
    std::uint32_t expected_start = 0;
    for (const Phase& ph : phases) {
      EXPECT_EQ(ph.start, expected_start);  // contiguous segments
      EXPECT_GE(ph.generate_prob, 0.0);
      EXPECT_LE(ph.generate_prob, 1.0);
      EXPECT_DOUBLE_EQ(ph.consume_prob, p.service_prob);
      expected_start = ph.end + 1;
    }
    EXPECT_EQ(phases.back().end, horizon - 1);
  }
}

TEST(ServingWorkload, ArrivalMixIsSkewedAndNormalized) {
  const auto p = small_params();
  const std::vector<double> mix =
      ServingWorkload::arrival_mix(32, p, 77, 200000);
  ASSERT_EQ(mix.size(), 32u);
  double total = 0.0;
  for (double m : mix) total += m;
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Zipf(1.1) over 50k sessions hashed onto 32 processors: the processor
  // holding rank 1 alone carries >> 1/n of the traffic.
  const double hottest = *std::max_element(mix.begin(), mix.end());
  EXPECT_GT(hottest, 2.0 / 32.0);
}

TEST(ServingWorkload, SessionProcessorIsStableAndInRange) {
  for (std::uint64_t session : {1ull, 2ull, 999ull, 49999ull}) {
    const std::uint32_t p = ServingWorkload::session_processor(session, 16, 9);
    EXPECT_LT(p, 16u);
    EXPECT_EQ(p, ServingWorkload::session_processor(session, 16, 9));
  }
  // The hash actually spreads sessions (not constant).
  std::vector<int> hits(16, 0);
  for (std::uint64_t s = 1; s <= 1600; ++s)
    ++hits[ServingWorkload::session_processor(s, 16, 9)];
  for (int h : hits) EXPECT_GT(h, 0);
}

TEST(ServingWorkload, FlashCrowdRaisesRatesInsideItsWindow) {
  ServingParams p = small_params();
  p.flash_crowds = 1;
  p.flash_boost = 6.0;
  p.flash_width = 0.25;  // 4 of 16 processors
  p.diurnal_depth = 0.0;  // isolate the flash effect
  const std::uint32_t horizon = 400;
  const Workload with = ServingWorkload::build(16, horizon, p, 123);
  ServingParams quiet = p;
  quiet.flash_crowds = 0;
  const Workload without = ServingWorkload::build(16, horizon, quiet, 123);
  // Same seed, same Zipf segment rates: the only differences are inside
  // the flash window, and they only ever *raise* generate_prob.
  int raised = 0;
  for (std::uint32_t i = 0; i < 16; ++i) {
    for (std::uint32_t t = 0; t < horizon; t += 10) {
      const double gw = with.generate_prob(i, t);
      const double go = without.generate_prob(i, t);
      EXPECT_GE(gw, go - 1e-12);
      if (gw > go + 1e-12) ++raised;
    }
  }
  EXPECT_GT(raised, 0);
}

TEST(ServingWorkload, DiurnalEnvelopeModulatesRates) {
  ServingParams p = small_params();
  p.flash_crowds = 0;
  p.diurnal_depth = 0.35;
  p.diurnal_period = 200;
  const Workload wave = ServingWorkload::build(8, 400, p, 55);
  ServingParams flat = p;
  flat.diurnal_depth = 0.0;
  const Workload base = ServingWorkload::build(8, 400, flat, 55);
  // Some segment must sit above the flat rate (peak) and some below
  // (trough) for at least one processor.
  bool above = false;
  bool below = false;
  for (std::uint32_t i = 0; i < 8; ++i) {
    for (std::uint32_t t = 0; t < 400; t += 25) {
      const double gw = wave.generate_prob(i, t);
      const double gb = base.generate_prob(i, t);
      if (gw > gb + 1e-12) above = true;
      if (gw < gb - 1e-12) below = true;
    }
  }
  EXPECT_TRUE(above);
  EXPECT_TRUE(below);
}

// The compiled schedule drives the real engines: serial batched run and
// trace replay both conserve load and terminate.
TEST(ServingWorkload, EnginesDriveTheCompiledSchedule) {
  const auto p = small_params();
  const Workload wl = ServingWorkload::build(16, 150, p, 2026);
  const ActiveSchedule schedule(wl);
  EXPECT_EQ(schedule.horizon(), wl.horizon());

  BalancerConfig cfg;
  System sys(16, cfg, 31);
  sys.run(wl);
  std::int64_t total = 0;
  for (const std::int64_t l : sys.loads()) {
    EXPECT_GE(l, 0);
    total += l;
  }
  EXPECT_GE(total, 0);

  Rng rng(17);
  const Trace trace = Trace::record(wl, rng);
  EXPECT_GT(trace.total_generations(), 0u);
  EXPECT_GT(trace.total_consume_attempts(), 0u);
}

}  // namespace
}  // namespace dlb
