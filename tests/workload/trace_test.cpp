#include "workload/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "support/check.hpp"

namespace dlb {
namespace {

TEST(Trace, SetAndGetRoundTrip) {
  Trace trace(3, 5);
  trace.set(1, 2, WorkEvent{true, false});
  trace.set(2, 4, WorkEvent{true, true});
  EXPECT_TRUE(trace.at(1, 2).generate);
  EXPECT_FALSE(trace.at(1, 2).consume);
  EXPECT_TRUE(trace.at(2, 4).generate);
  EXPECT_TRUE(trace.at(2, 4).consume);
  EXPECT_FALSE(trace.at(0, 0).generate);
}

TEST(Trace, RecordResolvesWorkloadDeterministically) {
  const auto wl = Workload::uniform(4, 100, 0.5, 0.3);
  Rng a(11);
  Rng b(11);
  const Trace ta = Trace::record(wl, a);
  const Trace tb = Trace::record(wl, b);
  EXPECT_EQ(ta, tb);
}

TEST(Trace, CountsMatchProbabilities) {
  const auto wl = Workload::uniform(8, 1000, 0.5, 0.25);
  Rng rng(21);
  const Trace trace = Trace::record(wl, rng);
  const double cells = 8.0 * 1000.0;
  EXPECT_NEAR(static_cast<double>(trace.total_generations()) / cells, 0.5,
              0.02);
  EXPECT_NEAR(static_cast<double>(trace.total_consume_attempts()) / cells,
              0.25, 0.02);
  EXPECT_EQ(trace.net_demand(),
            static_cast<std::int64_t>(trace.total_generations()) -
                static_cast<std::int64_t>(trace.total_consume_attempts()));
}

TEST(Trace, SaveLoadRoundTrip) {
  const auto wl = Workload::uniform(5, 37, 0.4, 0.4);
  Rng rng(33);
  const Trace original = Trace::record(wl, rng);
  std::stringstream buffer;
  original.save(buffer);
  const Trace loaded = Trace::load(buffer);
  EXPECT_EQ(original, loaded);
}

TEST(Trace, LoadRejectsMalformedInput) {
  std::stringstream bad("2 2\n01\n4x\n");
  EXPECT_THROW(Trace::load(bad), contract_error);
  std::stringstream truncated("2 2\n01\n");
  EXPECT_THROW(Trace::load(truncated), contract_error);
}

TEST(Trace, OutOfRangeAccessThrows) {
  Trace trace(2, 3);
  EXPECT_THROW(trace.at(2, 0), contract_error);
  EXPECT_THROW(trace.at(0, 3), contract_error);
  EXPECT_THROW(trace.set(5, 0, WorkEvent{}), contract_error);
}

TEST(Trace, OneProducerTraceShape) {
  const auto wl = Workload::one_producer(4, 50);
  Rng rng(44);
  const Trace trace = Trace::record(wl, rng);
  EXPECT_EQ(trace.total_generations(), 50u);  // probability 1 on proc 0
  EXPECT_EQ(trace.total_consume_attempts(), 0u);
  for (std::uint32_t t = 0; t < 50; ++t) {
    EXPECT_TRUE(trace.at(0, t).generate);
    EXPECT_FALSE(trace.at(1, t).generate);
  }
}

}  // namespace
}  // namespace dlb
