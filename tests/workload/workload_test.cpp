#include "workload/workload.hpp"

#include <gtest/gtest.h>

#include "support/check.hpp"

namespace dlb {
namespace {

TEST(Workload, OneProducerShape) {
  const auto wl = Workload::one_producer(8, 100);
  EXPECT_EQ(wl.processors(), 8u);
  EXPECT_EQ(wl.horizon(), 100u);
  EXPECT_DOUBLE_EQ(wl.generate_prob(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(wl.generate_prob(0, 99), 1.0);
  EXPECT_DOUBLE_EQ(wl.consume_prob(0, 50), 0.0);
  for (std::uint32_t p = 1; p < 8; ++p) {
    EXPECT_DOUBLE_EQ(wl.generate_prob(p, 10), 0.0);
    EXPECT_DOUBLE_EQ(wl.consume_prob(p, 10), 0.0);
  }
}

TEST(Workload, UniformProbabilities) {
  const auto wl = Workload::uniform(4, 50, 0.6, 0.4);
  for (std::uint32_t p = 0; p < 4; ++p) {
    EXPECT_DOUBLE_EQ(wl.generate_prob(p, 25), 0.6);
    EXPECT_DOUBLE_EQ(wl.consume_prob(p, 25), 0.4);
  }
}

TEST(Workload, SampleMatchesProbabilities) {
  const auto wl = Workload::uniform(2, 10, 0.7, 0.2);
  Rng rng(5);
  int gens = 0;
  int cons = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    const WorkEvent ev = wl.sample(0, 5, rng);
    gens += ev.generate;
    cons += ev.consume;
  }
  EXPECT_NEAR(gens / double(kTrials), 0.7, 0.02);
  EXPECT_NEAR(cons / double(kTrials), 0.2, 0.02);
}

TEST(Workload, OutsidePhaseIsIdle) {
  std::vector<std::vector<Phase>> phases(1);
  phases[0].push_back(Phase{10, 20, 0.5, 0.5});
  const Workload wl(1, 100, std::move(phases), "test");
  EXPECT_DOUBLE_EQ(wl.generate_prob(0, 5), 0.0);
  EXPECT_DOUBLE_EQ(wl.generate_prob(0, 10), 0.5);
  EXPECT_DOUBLE_EQ(wl.generate_prob(0, 20), 0.5);
  EXPECT_DOUBLE_EQ(wl.generate_prob(0, 21), 0.0);
  Rng rng(1);
  const WorkEvent ev = wl.sample(0, 99, rng);
  EXPECT_FALSE(ev.generate);
  EXPECT_FALSE(ev.consume);
}

TEST(Workload, PhaseLookupSupportsRandomAccess) {
  std::vector<std::vector<Phase>> phases(1);
  phases[0].push_back(Phase{0, 9, 0.1, 0.0});
  phases[0].push_back(Phase{10, 19, 0.2, 0.0});
  phases[0].push_back(Phase{20, 29, 0.3, 0.0});
  const Workload wl(1, 30, std::move(phases), "test");
  // Forward then backward: the cursor memo must not break correctness.
  EXPECT_DOUBLE_EQ(wl.generate_prob(0, 25), 0.3);
  EXPECT_DOUBLE_EQ(wl.generate_prob(0, 5), 0.1);
  EXPECT_DOUBLE_EQ(wl.generate_prob(0, 15), 0.2);
  EXPECT_DOUBLE_EQ(wl.generate_prob(0, 0), 0.1);
}

TEST(Workload, PaperBenchmarkCoversHorizonWithValidPhases) {
  Rng rng(77);
  WorkloadParams params;  // paper defaults
  const auto wl = Workload::paper_benchmark(64, 500, params, rng);
  EXPECT_EQ(wl.processors(), 64u);
  for (std::uint32_t p = 0; p < 64; ++p) {
    const auto& phases = wl.phases_of(p);
    ASSERT_FALSE(phases.empty());
    EXPECT_EQ(phases.front().start, 0u);
    EXPECT_EQ(phases.back().end, 499u);
    std::uint32_t expected_start = 0;
    for (const auto& ph : phases) {
      EXPECT_EQ(ph.start, expected_start);
      EXPECT_GE(ph.generate_prob, params.g_low);
      EXPECT_LE(ph.generate_prob, params.g_high);
      EXPECT_GE(ph.consume_prob, params.c_low);
      EXPECT_LE(ph.consume_prob, params.c_high);
      const std::uint32_t len = ph.end - ph.start + 1;
      // The last phase may be clipped by the horizon.
      if (ph.end != 499u) {
        EXPECT_GE(len, params.len_low);
        EXPECT_LE(len, params.len_high);
      }
      expected_start = ph.end + 1;
    }
  }
}

TEST(Workload, PaperBenchmarkIsDeterministicInSeed) {
  WorkloadParams params;
  Rng a(3);
  Rng b(3);
  const auto wa = Workload::paper_benchmark(8, 200, params, a);
  const auto wb = Workload::paper_benchmark(8, 200, params, b);
  for (std::uint32_t p = 0; p < 8; ++p) {
    for (std::uint32_t t = 0; t < 200; t += 17) {
      EXPECT_DOUBLE_EQ(wa.generate_prob(p, t), wb.generate_prob(p, t));
      EXPECT_DOUBLE_EQ(wa.consume_prob(p, t), wb.consume_prob(p, t));
    }
  }
}

TEST(Workload, HotspotSplitsRoles) {
  const auto wl = Workload::hotspot(10, 50, 2, 0.9, 0.3);
  EXPECT_DOUBLE_EQ(wl.generate_prob(0, 10), 0.9);
  EXPECT_DOUBLE_EQ(wl.generate_prob(1, 10), 0.9);
  EXPECT_DOUBLE_EQ(wl.generate_prob(2, 10), 0.0);
  EXPECT_DOUBLE_EQ(wl.consume_prob(2, 10), 0.3);
}

TEST(Workload, WaveMovesTheHotProcessor) {
  const auto wl = Workload::wave(4, 40, 10);
  EXPECT_GT(wl.generate_prob(0, 5), 0.0);
  EXPECT_DOUBLE_EQ(wl.generate_prob(1, 5), 0.0);
  EXPECT_GT(wl.generate_prob(1, 15), 0.0);
  EXPECT_DOUBLE_EQ(wl.generate_prob(0, 15), 0.0);
}

TEST(Workload, BurstyAlternates) {
  const auto wl = Workload::bursty(2, 40, 10, 0.8, 0.6);
  EXPECT_DOUBLE_EQ(wl.generate_prob(0, 5), 0.8);
  EXPECT_DOUBLE_EQ(wl.consume_prob(0, 5), 0.0);
  EXPECT_DOUBLE_EQ(wl.generate_prob(0, 15), 0.0);
  EXPECT_DOUBLE_EQ(wl.consume_prob(0, 15), 0.6);
}

TEST(Workload, FlipFlopHalvesAlternate) {
  const auto wl = Workload::flip_flop(4, 40, 10, 0.8, 0.6);
  // First epoch: first half generates, second half consumes.
  EXPECT_DOUBLE_EQ(wl.generate_prob(0, 5), 0.8);
  EXPECT_DOUBLE_EQ(wl.consume_prob(3, 5), 0.6);
  // Second epoch: roles swap.
  EXPECT_DOUBLE_EQ(wl.consume_prob(0, 15), 0.6);
  EXPECT_DOUBLE_EQ(wl.generate_prob(3, 15), 0.8);
}

TEST(Workload, InvalidPhasesRejected) {
  {
    std::vector<std::vector<Phase>> phases(1);
    phases[0].push_back(Phase{10, 5, 0.5, 0.5});  // start > end
    EXPECT_THROW(Workload(1, 100, std::move(phases), "bad"), contract_error);
  }
  {
    std::vector<std::vector<Phase>> phases(1);
    phases[0].push_back(Phase{0, 10, 0.5, 0.5});
    phases[0].push_back(Phase{5, 20, 0.5, 0.5});  // overlap
    EXPECT_THROW(Workload(1, 100, std::move(phases), "bad"), contract_error);
  }
  {
    std::vector<std::vector<Phase>> phases(1);
    phases[0].push_back(Phase{0, 10, 1.5, 0.5});  // probability > 1
    EXPECT_THROW(Workload(1, 100, std::move(phases), "bad"), contract_error);
  }
}

TEST(Workload, WrongPhaseListCountRejected) {
  std::vector<std::vector<Phase>> phases(3);
  EXPECT_THROW(Workload(2, 100, std::move(phases), "bad"), contract_error);
}

}  // namespace
}  // namespace dlb
