// Steady-state allocation proof for all four drivers.
//
// Each engine samples the global counting operator-new hook around every
// step (obs/alloc.hpp) and publishes `<prefix>.alloc.warmup_end_step`:
// one past the last step that performed any heap allocation (0 = never).
// These tests run each driver with pre-sized ledgers
// (BalancerConfig::reserve_classes = n) on a steady workload and assert
// that all allocation activity dies out in the first half of the run —
// pools, rings, and scratch leases have warmed, and the remaining steps
// are allocation-free (DESIGN.md §11).
//
// The bound is horizon/2 rather than an exact warmup length because the
// warmup is workload-shaped: a scratch vector is first leased at the
// first balancing operation, a mailbox ring grows until the in-flight
// high-water mark, and those points depend on seed and schedule.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/config.hpp"
#include "core/system.hpp"
#include "obs/metrics.hpp"
#include "runtime/threaded_system.hpp"
#include "support/rng.hpp"
#include "workload/trace.hpp"
#include "workload/workload.hpp"

namespace dlb {
namespace {

std::int64_t gauge(const obs::MetricsRegistry& registry,
                   const std::string& name) {
  const obs::MetricsSnapshot snap = registry.snapshot();
  const obs::MetricValue* v = snap.find(name);
  EXPECT_NE(v, nullptr) << name << " not published";
  return v != nullptr ? v->value : -1;
}

BalancerConfig steady_config(std::uint32_t n) {
  BalancerConfig cfg;
  cfg.f = 1.2;
  cfg.delta = 2;
  // The zero-alloc knob: pre-size every ledger's compact storage so
  // first-touch class growth cannot allocate mid-run.
  cfg.reserve_classes = n;
  return cfg;
}

TEST(ZeroAllocSteadyState, SerialRun) {
  constexpr std::uint32_t kN = 64;
  constexpr std::uint32_t kHorizon = 400;
  System sys(kN, steady_config(kN), 17);
  obs::MetricsRegistry registry;
  sys.attach_metrics(&registry);
  sys.run(Workload::uniform(kN, kHorizon, 0.7, 0.5));
  EXPECT_LT(gauge(registry, "system.alloc.warmup_end_step"),
            static_cast<std::int64_t>(kHorizon / 2));
}

TEST(ZeroAllocSteadyState, LockstepParallelRun) {
  constexpr std::uint32_t kN = 64;
  constexpr std::uint32_t kHorizon = 300;
  System sys(kN, steady_config(kN), 23);
  obs::MetricsRegistry registry;
  sys.attach_metrics(&registry);
  sys.run_parallel(Workload::uniform(kN, kHorizon, 0.7, 0.5), 4);
  EXPECT_LT(gauge(registry, "run_parallel.alloc.warmup_end_step"),
            static_cast<std::int64_t>(kHorizon / 2));
}

TEST(ZeroAllocSteadyState, AsyncDeterministicRun) {
  constexpr std::uint32_t kN = 64;
  constexpr std::uint32_t kHorizon = 400;
  AsyncOptions options;
  options.epoch_steps = 8;  // det mode tallies per epoch, not per step
  const std::uint32_t epochs = kHorizon / options.epoch_steps;
  System sys(kN, steady_config(kN), 29);
  obs::MetricsRegistry registry;
  sys.attach_metrics(&registry);
  sys.run_async(Workload::uniform(kN, kHorizon, 0.7, 0.5), 4, options);
  EXPECT_LT(gauge(registry, "async.alloc.warmup_end_step"),
            static_cast<std::int64_t>(epochs / 2));
}

TEST(ZeroAllocSteadyState, AsyncRelaxedRun) {
  constexpr std::uint32_t kN = 64;
  constexpr std::uint32_t kHorizon = 400;
  AsyncOptions options;
  options.relaxed_order = true;
  System sys(kN, steady_config(kN), 31);
  obs::MetricsRegistry registry;
  sys.attach_metrics(&registry);
  sys.run_async(Workload::uniform(kN, kHorizon, 0.7, 0.5), 4, options);
  // Relaxed workers note the final quiescence/termination phase against
  // the last step index, so a dirty termination would fail this bound.
  EXPECT_LT(gauge(registry, "async.alloc.warmup_end_step"),
            static_cast<std::int64_t>(kHorizon / 2));
}

TEST(ZeroAllocSteadyState, ThreadedRun) {
  constexpr std::uint32_t kN = 8;
  constexpr std::uint32_t kHorizon = 1000;
  Rng rng(1234);
  const Trace trace =
      Trace::record(Workload::uniform(kN, kHorizon, 0.7, 0.5), rng);
  ThreadedConfig cfg;
  cfg.f = 1.2;
  cfg.delta = 2;
  cfg.seed = 37;
  ThreadedSystem sys(kN, cfg);
  obs::MetricsRegistry registry;
  sys.attach_metrics(&registry);
  sys.run(trace);
  // Workers also charge the post-horizon serve/shutdown phase to the
  // final step, so the whole drain must be allocation-free too.
  EXPECT_LT(gauge(registry, "threaded.alloc.warmup_end_step"),
            static_cast<std::int64_t>(kHorizon / 2));
}

TEST(ZeroAllocSteadyState, AllocCountersAreConsistent) {
  // Sanity on the published shape: count/bytes/dirty_steps all present,
  // and a dirty tally implies nonzero bytes.
  constexpr std::uint32_t kN = 32;
  System sys(kN, steady_config(kN), 41);
  obs::MetricsRegistry registry;
  sys.attach_metrics(&registry);
  sys.run(Workload::uniform(kN, 200, 0.7, 0.5));
  const std::int64_t count = gauge(registry, "system.alloc.count");
  const std::int64_t bytes = gauge(registry, "system.alloc.bytes");
  const std::int64_t dirty = gauge(registry, "system.alloc.dirty_steps");
  EXPECT_GE(count, 0);
  EXPECT_GE(dirty, 0);
  if (count > 0) {
    EXPECT_GT(bytes, 0);
  }
  EXPECT_LE(dirty, count);  // a dirty step has at least one allocation
}

}  // namespace
}  // namespace dlb
