// Integration: the paper's theorems, checked against the *full* n-processor
// simulator (ledger bookkeeping, borrow protocol and all) rather than the
// stripped one-processor model.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/experiment.hpp"
#include "core/system.hpp"
#include "support/stats.hpp"
#include "theory/bounds.hpp"
#include "theory/operators.hpp"

namespace dlb {
namespace {

TEST(TheoryVsSim, OneProducerRatioTracksFixpoint) {
  // Full System, one producer.  The §3 fixed point describes the ratio at
  // the instants *after* a balancing operation; a measurement at a fixed
  // global time samples a uniformly random phase of the growth cycle, in
  // which the producer holds between FIX and f·FIX times the others'
  // load.  (This phase factor is exactly why Theorem 4 carries an f²
  // fudge.)  So the measured ratio must lie in [FIX, f·FIX] and be close
  // to the mid-cycle value FIX·(1+f)/2.
  const std::uint32_t n = 16;
  BalancerConfig cfg;
  cfg.f = 1.5;
  cfg.delta = 2;
  ModelParams mp{static_cast<double>(n), static_cast<double>(cfg.delta),
                 cfg.f};
  const double fix = fixpoint(mp);

  RunningMoments producer;
  RunningMoments others;
  Rng seeder(7);
  for (int run = 0; run < 100; ++run) {
    System sys(n, cfg, seeder.next());
    sys.run(Workload::one_producer(n, 2000));
    producer.add(static_cast<double>(sys.load(0)));
    for (std::uint32_t i = 1; i < n; ++i)
      others.add(static_cast<double>(sys.load(i)));
  }
  const double measured_ratio = producer.mean() / others.mean();
  EXPECT_GT(measured_ratio, fix * 0.95);
  EXPECT_LT(measured_ratio, cfg.f * fix * 1.05);
  EXPECT_NEAR(measured_ratio, fix * (1.0 + cfg.f) / 2.0, 0.15 * fix);
}

TEST(TheoryVsSim, Theorem4BoundHoldsOnPaperWorkload) {
  // E(l_i) <= f²·δ/(δ+1−f) · (E(l_j) + C) for all pairs i, j: verify with
  // the measured expected loads at several times on the §7 benchmark.
  ExperimentSpec spec;
  spec.processors = 32;
  spec.horizon = 400;
  spec.runs = 60;
  spec.seed = 11;
  spec.config.f = 1.4;
  spec.config.delta = 2;
  spec.config.borrow_cap = 4;

  SnapshotRecorder recorder(spec.processors, {100, 250, 399});
  run_experiment(spec, paper_workload_factory(), recorder);

  const double factor =
      theorem4_factor(spec.config.delta, spec.config.f);
  for (std::size_t snap = 0; snap < 3; ++snap) {
    double max_mean = 0.0;
    double min_mean = 1e18;
    for (std::uint32_t p = 0; p < spec.processors; ++p) {
      const double m = recorder.at(snap, p).mean();
      max_mean = std::max(max_mean, m);
      min_mean = std::min(min_mean, m);
    }
    EXPECT_LE(max_mean,
              factor * (min_mean + spec.config.borrow_cap) + 1e-9)
        << "snapshot " << snap;
  }
}

TEST(TheoryVsSim, TighterDeltaImprovesBalance) {
  // Thm 2 predicts better balance for larger delta; verify the measured
  // cross-processor spread shrinks.
  auto spread_for = [](std::uint32_t delta) {
    ExperimentSpec spec;
    spec.processors = 32;
    spec.horizon = 300;
    spec.runs = 30;
    spec.seed = 13;
    spec.config.f = 1.4;
    spec.config.delta = delta;
    SnapshotRecorder recorder(spec.processors, {299});
    run_experiment(spec, paper_workload_factory(), recorder);
    double max_mean = 0.0;
    double min_mean = 1e18;
    for (std::uint32_t p = 0; p < spec.processors; ++p) {
      const double m = recorder.at(0, p).mean();
      max_mean = std::max(max_mean, m);
      min_mean = std::min(min_mean, m);
    }
    return max_mean - min_mean;
  };
  EXPECT_LT(spread_for(8), spread_for(1));
}

TEST(TheoryVsSim, SmallerFCostsMoreOperations) {
  // §6 tradeoff: lower f => more balancing operations on the same demand.
  auto ops_for = [](double f) {
    BalancerConfig cfg;
    cfg.f = f;
    cfg.delta = 1;
    System sys(16, cfg, 17);
    sys.run(Workload::one_producer(16, 1000));
    return sys.balance_operations();
  };
  EXPECT_GT(ops_for(1.05), ops_for(1.5));
  EXPECT_GT(ops_for(1.5), ops_for(2.5));
}

TEST(TheoryVsSim, LargerDeltaCostsMoreMessagesPerOp) {
  // The per-operation *message* cost is exactly 2δ (invitation +
  // assignment per partner); migration volume per op need not grow with
  // δ because better balance shrinks the surplus each op has to move.
  auto messages_per_op = [](std::uint32_t delta) {
    BalancerConfig cfg;
    cfg.f = 1.3;
    cfg.delta = delta;
    System sys(32, cfg, 19);
    sys.run(Workload::one_producer(32, 2000));
    return static_cast<double>(sys.costs().totals().messages) /
           static_cast<double>(sys.costs().totals().balance_ops);
  };
  EXPECT_DOUBLE_EQ(messages_per_op(1), 2.0);
  EXPECT_DOUBLE_EQ(messages_per_op(8), 16.0);
}

TEST(TheoryVsSim, VariationOfFullSystemIsSmall) {
  // §5's qualitative claim on the real algorithm: the per-processor load
  // at a fixed late time has a small coefficient of variation across runs.
  ExperimentSpec spec;
  spec.processors = 16;
  spec.horizon = 300;
  spec.runs = 80;
  spec.seed = 23;
  spec.config.f = 1.1;
  spec.config.delta = 4;
  SnapshotRecorder recorder(spec.processors, {299});
  run_experiment(spec, paper_workload_factory(), recorder);
  for (std::uint32_t p = 0; p < spec.processors; ++p) {
    EXPECT_LT(recorder.at(0, p).variation_density(), 1.0) << "proc " << p;
  }
}

}  // namespace
}  // namespace dlb
