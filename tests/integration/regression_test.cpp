// Golden regression fixtures: fixed seeds must keep producing exactly
// these results.  A change here means the algorithm's observable
// behaviour changed — intentional changes must update the fixtures (and
// the experiment records in EXPERIMENTS.md, whose numbers would shift
// too).  Unintentional changes are caught before they silently alter
// every figure.
#include <gtest/gtest.h>

#include "core/one_processor.hpp"
#include "core/system.hpp"
#include "support/rng.hpp"

namespace dlb {
namespace {

TEST(GoldenRegression, RngStream) {
  Rng rng(123);
  const std::uint64_t expected[] = {
      3628370374969813497ull, 17885451940711451998ull,
      8622752019489400367ull, 2342437615205057030ull,
      6230968350287952094ull};
  for (std::uint64_t e : expected) EXPECT_EQ(rng.next(), e);
}

TEST(GoldenRegression, UniformWorkloadRun) {
  System sys(8, BalancerConfig{}, 2024);
  sys.run(Workload::uniform(8, 200, 0.6, 0.4));
  EXPECT_EQ(sys.loads(),
            (std::vector<std::int64_t>{36, 35, 36, 36, 37, 36, 36, 36}));
  EXPECT_EQ(sys.balance_operations(), 1423u);
  EXPECT_EQ(sys.total_generated(), 929u);
  EXPECT_EQ(sys.total_consumed(), 641u);
}

TEST(GoldenRegression, PaperWorkloadRun) {
  BalancerConfig cfg;
  cfg.f = 1.5;
  cfg.delta = 3;
  cfg.borrow_cap = 2;
  System sys(12, cfg, 777);
  Rng wl_rng(55);
  sys.run(Workload::paper_benchmark(12, 300, WorkloadParams{}, wl_rng));
  EXPECT_EQ(sys.loads(), (std::vector<std::int64_t>{13, 13, 12, 12, 12, 12,
                                                    14, 12, 13, 13, 12, 12}));
  EXPECT_EQ(sys.balance_operations(), 1610u);
}

TEST(GoldenRegression, OneProcessorModelRun) {
  OneProcessorModel::Params p;
  p.n = 10;
  p.delta = 2;
  p.f = 1.3;
  OneProcessorModel model(p, 99);
  model.run_grow(30);
  EXPECT_EQ(model.loads(),
            (std::vector<std::int64_t>{3, 3, 3, 2, 3, 2, 3, 3, 4, 4}));
}

}  // namespace
}  // namespace dlb
