// Property sweep: the algorithm's invariants hold under every combination
// of parameters, workload shapes and seeds — checked *during* the run, not
// only at the end.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/system.hpp"
#include "metrics/imbalance.hpp"
#include "support/stats.hpp"

namespace dlb {
namespace {

struct PropertyCase {
  std::uint32_t n;
  double f;
  std::uint32_t delta;
  std::uint32_t borrow_cap;
  bool analysis_mode;
  std::string workload;
  std::uint64_t seed;
};

Workload make_workload(const std::string& kind, std::uint32_t n,
                       std::uint32_t horizon, Rng& rng) {
  if (kind == "paper")
    return Workload::paper_benchmark(n, horizon, WorkloadParams{}, rng);
  if (kind == "one-producer") return Workload::one_producer(n, horizon);
  if (kind == "uniform") return Workload::uniform(n, horizon, 0.6, 0.5);
  if (kind == "hotspot") return Workload::hotspot(n, horizon, 1, 0.9, 0.4);
  if (kind == "wave") return Workload::wave(n, horizon, 20);
  if (kind == "bursty") return Workload::bursty(n, horizon, 25, 0.8, 0.8);
  if (kind == "flip-flop")
    return Workload::flip_flop(n, horizon, 30, 0.8, 0.8);
  ADD_FAILURE() << "unknown workload kind " << kind;
  return Workload::uniform(n, horizon, 0.0, 0.0);
}

class SystemProperty : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(SystemProperty, InvariantsHoldThroughoutTheRun) {
  const auto& prm = GetParam();
  const std::uint32_t horizon = 250;
  BalancerConfig cfg;
  cfg.f = prm.f;
  cfg.delta = prm.delta;
  cfg.borrow_cap = prm.borrow_cap;
  cfg.analysis_mode = prm.analysis_mode;

  Rng wl_rng(prm.seed);
  const Workload wl = make_workload(prm.workload, prm.n, horizon, wl_rng);
  System sys(prm.n, cfg, prm.seed ^ 0xabcdef);

  std::vector<WorkEvent> events(prm.n);
  Rng ev_rng(prm.seed + 1);
  for (std::uint32_t t = 0; t < horizon; ++t) {
    for (std::uint32_t p = 0; p < prm.n; ++p)
      events[p] = wl.sample(p, t, ev_rng);
    sys.step(t, events);
    if (t % 25 == 0) sys.check_invariants();
  }
  sys.check_invariants();

  // Load never negative; conservation exact.
  std::int64_t total = 0;
  for (std::int64_t l : sys.loads()) {
    EXPECT_GE(l, 0);
    total += l;
  }
  EXPECT_EQ(total, static_cast<std::int64_t>(sys.total_generated()) -
                       static_cast<std::int64_t>(sys.total_consumed()));
}

std::vector<PropertyCase> property_cases() {
  std::vector<PropertyCase> cases;
  std::uint64_t seed = 1;
  for (std::uint32_t n : {2u, 3u, 8u, 32u}) {
    for (double f : {1.0, 1.1, 1.8, 3.0}) {
      for (std::uint32_t delta : {1u, 4u}) {
        if (delta >= n) continue;
        for (std::uint32_t cap : {0u, 4u}) {
          cases.push_back(PropertyCase{n, f, delta, cap, false,
                                       seed % 2 ? "paper" : "uniform",
                                       seed});
          ++seed;
        }
      }
    }
  }
  // Workload-shape sweep at one representative parameter point.
  for (const char* kind : {"one-producer", "hotspot", "wave", "bursty",
                           "flip-flop"}) {
    cases.push_back(PropertyCase{16, 1.2, 2, 4, false, kind, seed++});
  }
  // Analysis-mode variants.
  cases.push_back(PropertyCase{16, 1.1, 2, 4, true, "paper", seed++});
  cases.push_back(PropertyCase{8, 1.5, 3, 8, true, "hotspot", seed++});
  return cases;
}

std::string case_name(const ::testing::TestParamInfo<PropertyCase>& ti) {
  const auto& p = ti.param;
  std::string name = "n" + std::to_string(p.n) + "_f" +
                     std::to_string(static_cast<int>(p.f * 10)) + "_d" +
                     std::to_string(p.delta) + "_C" +
                     std::to_string(p.borrow_cap) + "_" + p.workload + "_s" +
                     std::to_string(p.seed);
  for (char& c : name)
    if (c == '-') c = '_';
  return name + (p.analysis_mode ? "_am" : "");
}

INSTANTIATE_TEST_SUITE_P(Sweep, SystemProperty,
                         ::testing::ValuesIn(property_cases()), case_name);

// A second property: after any forced balancing operation the participants'
// real loads differ by at most one.
class ForcedBalanceProperty
    : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ForcedBalanceProperty, ParticipantsWithinOneAfterBalance) {
  const std::uint32_t delta = GetParam();
  const std::uint32_t n = 12;
  BalancerConfig cfg;
  cfg.f = 100.0;  // disable automatic triggers beyond the first packet
  cfg.delta = delta;
  System sys(n, cfg, 555 + delta);
  // Build a deliberately lumpy state.
  Rng rng(99);
  for (std::uint32_t p = 0; p < n; ++p) {
    const auto packets = rng.below(50);
    for (std::uint64_t i = 0; i < packets; ++i) sys.generate(p);
  }
  const std::int64_t before = sys.total_load();
  // With delta == n-1, a forced balance flattens everything to ±1.
  if (delta == n - 1) {
    sys.force_balance(0);
    const auto loads = sys.loads();
    const auto minmax = std::minmax_element(loads.begin(), loads.end());
    EXPECT_LE(*minmax.second - *minmax.first, 1);
  } else {
    sys.force_balance(0);
  }
  EXPECT_EQ(sys.total_load(), before);
  sys.check_invariants();
}

INSTANTIATE_TEST_SUITE_P(DeltaSweep, ForcedBalanceProperty,
                         ::testing::Values(1u, 2u, 4u, 11u));

// A third property: the recorder loads snapshot is delta-maintained
// (System::touch_load updates loads_cache_ at every real-load mutation
// instead of rebuilding), so the vector handed to on_loads at the final
// step must equal a from-scratch loads() rebuild.  The sweep leans on
// the paths that mutate *other* processors' loads behind p's back —
// settlements, remote exchanges, empty-generator resolutions under a
// tiny borrow_cap — and covers all three step drivers.
class LastLoadsRecorder final : public Recorder {
 public:
  void on_loads(std::uint32_t t,
                const std::vector<std::int64_t>& loads) override {
    (void)t;
    last_ = loads;  // copy: the caller reuses the buffer across steps
    ++calls_;
  }
  const std::vector<std::int64_t>& last() const { return last_; }
  std::uint64_t calls() const { return calls_; }

 private:
  std::vector<std::int64_t> last_;
  std::uint64_t calls_ = 0;
};

struct LoadsCacheCase {
  std::uint32_t n;
  double f;
  std::uint32_t delta;
  std::uint32_t borrow_cap;
  bool analysis_mode;
  std::string workload;
  std::string driver;
  std::uint64_t seed;
};

class LoadsCacheProperty
    : public ::testing::TestWithParam<LoadsCacheCase> {};

TEST_P(LoadsCacheProperty, DeltaMaintainedSnapshotMatchesFullRebuild) {
  const auto& prm = GetParam();
  const std::uint32_t horizon = 200;
  BalancerConfig cfg;
  cfg.f = prm.f;
  cfg.delta = prm.delta;
  cfg.borrow_cap = prm.borrow_cap;
  cfg.analysis_mode = prm.analysis_mode;

  Rng wl_rng(prm.seed);
  const Workload wl = make_workload(prm.workload, prm.n, horizon, wl_rng);
  System sys(prm.n, cfg, prm.seed * 7919 + 1);
  LastLoadsRecorder recorder;
  sys.attach_recorder(&recorder);
  if (prm.driver == "run") {
    sys.run(wl);
  } else if (prm.driver == "run_reference") {
    sys.run_reference(wl);
  } else {
    sys.run_parallel(wl, 2);
  }
  ASSERT_EQ(recorder.calls(), horizon);
  // loads() rebuilds from the ledgers; the recorder saw the incremental
  // cache.  Any divergence means a mutation path missed touch_load.
  EXPECT_EQ(recorder.last(), sys.loads());
  sys.check_invariants();
}

std::vector<LoadsCacheCase> loads_cache_cases() {
  std::vector<LoadsCacheCase> cases;
  std::uint64_t seed = 101;
  for (const char* driver : {"run", "run_reference", "run_parallel"}) {
    // Consume-heavy uniform demand with borrow_cap 1 maximizes the
    // settlement / remote-exchange traffic that touches remote loads.
    cases.push_back({8, 1.1, 2, 1, false, "uniform", driver, seed++});
    cases.push_back({8, 1.1, 2, 1, true, "uniform", driver, seed++});
    cases.push_back({16, 1.2, 3, 2, false, "hotspot", driver, seed++});
    cases.push_back({32, 1.5, 1, 0, false, "paper", driver, seed++});
  }
  return cases;
}

std::string loads_cache_case_name(
    const ::testing::TestParamInfo<LoadsCacheCase>& ti) {
  const auto& p = ti.param;
  std::string name = p.driver + "_n" + std::to_string(p.n) + "_C" +
                     std::to_string(p.borrow_cap) + "_" + p.workload +
                     "_s" + std::to_string(p.seed);
  for (char& c : name)
    if (c == '-') c = '_';
  return name + (p.analysis_mode ? "_am" : "");
}

INSTANTIATE_TEST_SUITE_P(DriverSweep, LoadsCacheProperty,
                         ::testing::ValuesIn(loads_cache_cases()),
                         loads_cache_case_name);

}  // namespace
}  // namespace dlb
