// Soak tests: long randomized runs that hammer every subsystem together
// and verify the invariants continuously.  These are the "does anything
// drift after hours of simulated time" checks, sized to stay inside the
// CI budget.
#include <gtest/gtest.h>

#include "core/system.hpp"
#include "metrics/imbalance.hpp"
#include "support/stats.hpp"

namespace dlb {
namespace {

TEST(Soak, TenThousandStepsWithPhaseChurn) {
  // Long horizon, short phases: the workload mixture flips constantly.
  BalancerConfig cfg;
  cfg.f = 1.1;
  cfg.delta = 2;
  cfg.borrow_cap = 4;
  System sys(16, cfg, 20260704);

  WorkloadParams params;
  params.len_low = 20;
  params.len_high = 60;
  Rng wl_rng(5);
  const Workload wl =
      Workload::paper_benchmark(16, 10000, params, wl_rng);

  std::vector<WorkEvent> events(16);
  Rng ev_rng(6);
  for (std::uint32_t t = 0; t < 10000; ++t) {
    for (std::uint32_t p = 0; p < 16; ++p)
      events[p] = wl.sample(p, t, ev_rng);
    sys.step(t, events);
    if (t % 500 == 0) sys.check_invariants();
  }
  sys.check_invariants();
  EXPECT_GT(sys.balance_operations(), 1000u);
}

TEST(Soak, AlternatingFloodAndDrain) {
  // Regimes that maximize trigger churn: flood everything, then drain
  // everything, repeatedly.  Every packet must stay accounted for.
  BalancerConfig cfg;
  cfg.f = 1.05;  // hair trigger
  cfg.delta = 3;
  cfg.borrow_cap = 2;
  System sys(8, cfg, 31337);
  Rng rng(7);
  for (int cycle = 0; cycle < 20; ++cycle) {
    // Flood.
    for (int i = 0; i < 200; ++i)
      sys.generate(static_cast<std::uint32_t>(rng.below(8)));
    sys.check_invariants();
    // Drain until empty (consumers chosen at random; the borrow
    // machinery must keep satisfying them until the system is empty).
    int guard = 0;
    while (sys.total_load() > 0 && guard < 100000) {
      sys.consume(static_cast<std::uint32_t>(rng.below(8)));
      ++guard;
    }
    EXPECT_EQ(sys.total_load(), 0) << "cycle " << cycle;
    sys.check_invariants();
  }
}

TEST(Soak, ManySmallSystemsManySeeds) {
  // Breadth instead of depth: 60 systems with different shapes.
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    const std::uint32_t n = 2 + static_cast<std::uint32_t>(seed % 7);
    BalancerConfig cfg;
    cfg.f = 1.0 + 0.1 * static_cast<double>(seed % 12);
    cfg.delta = 1 + static_cast<std::uint32_t>(seed % (n - 1 > 0 ? n - 1 : 1));
    if (cfg.delta >= n) cfg.delta = n - 1;
    cfg.borrow_cap = static_cast<std::uint32_t>(seed % 5);
    System sys(n, cfg, seed);
    const Workload wl = Workload::uniform(n, 150, 0.7, 0.6);
    sys.run(wl);
    sys.check_invariants();
  }
}

TEST(Soak, DrainToEmptyNeverDeadlocksUnderBorrowing) {
  // A consumption-only epilogue after a generation-heavy prologue: the
  // ledger must allow the network to empty completely from any state.
  BalancerConfig cfg;
  cfg.f = 1.2;
  cfg.delta = 1;
  cfg.borrow_cap = 1;  // tightest interesting cap
  System sys(6, cfg, 2025);
  sys.run(Workload::uniform(6, 300, 0.8, 0.2));
  const std::int64_t backlog = sys.total_load();
  ASSERT_GT(backlog, 0);
  // Everyone only consumes now.
  std::int64_t drained = 0;
  int guard = 0;
  while (sys.total_load() > 0 && guard < 1000000) {
    for (std::uint32_t p = 0; p < 6; ++p)
      if (sys.consume(p)) ++drained;
    ++guard;
  }
  EXPECT_EQ(sys.total_load(), 0);
  EXPECT_EQ(drained, backlog);
  sys.check_invariants();
}

}  // namespace
}  // namespace dlb
