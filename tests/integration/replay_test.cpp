// Reproducibility: every randomized component is a pure function of its
// seed, traces replay bit-identically, and the comparison harness feeds
// identical demand to every strategy.
#include <gtest/gtest.h>

#include <sstream>

#include "baselines/adapter.hpp"
#include "baselines/rsu.hpp"
#include "baselines/simple.hpp"
#include "baselines/stealing.hpp"
#include "core/one_processor.hpp"
#include "core/system.hpp"
#include "theory/variation.hpp"

namespace dlb {
namespace {

TEST(Replay, SystemFullStateDeterminism) {
  const Workload wl = Workload::uniform(8, 200, 0.6, 0.5);
  BalancerConfig cfg;
  cfg.delta = 2;
  System a(8, cfg, 12345);
  System b(8, cfg, 12345);
  a.run(wl);
  b.run(wl);
  // Not only loads: the entire ledger state must match.
  for (std::uint32_t p = 0; p < 8; ++p) {
    EXPECT_EQ(a.processor(p).ledger.dense_d(),
              b.processor(p).ledger.dense_d());
    EXPECT_EQ(a.processor(p).ledger.dense_b(),
              b.processor(p).ledger.dense_b());
    EXPECT_EQ(a.processor(p).l_old, b.processor(p).l_old);
    EXPECT_EQ(a.processor(p).local_time, b.processor(p).local_time);
  }
  EXPECT_EQ(a.costs().totals().packets_moved,
            b.costs().totals().packets_moved);
}

TEST(Replay, TraceThroughTextRoundTripDrivesIdenticalRun) {
  Rng wl_rng(5);
  const Workload wl =
      Workload::paper_benchmark(6, 150, WorkloadParams{}, wl_rng);
  Rng trace_rng(9);
  const Trace original = Trace::record(wl, trace_rng);
  std::stringstream buffer;
  original.save(buffer);
  const Trace loaded = Trace::load(buffer);

  BalancerConfig cfg;
  System a(6, cfg, 77);
  System b(6, cfg, 77);
  a.run(original);
  b.run(loaded);
  EXPECT_EQ(a.loads(), b.loads());
  EXPECT_EQ(a.balance_operations(), b.balance_operations());
}

TEST(Replay, OneProcessorModelDeterminism) {
  OneProcessorModel::Params p;
  p.n = 16;
  p.delta = 2;
  p.f = 1.2;
  OneProcessorModel a(p, 31);
  OneProcessorModel b(p, 31);
  a.run_grow(40);
  b.run_grow(40);
  EXPECT_EQ(a.loads(), b.loads());
}

TEST(Replay, VariationMcDeterminism) {
  VariationParams p;
  p.n = 10;
  p.delta = 1;
  p.f = 1.1;
  const auto a = estimate_variation_mc(p, 20, 50, 7);
  const auto b = estimate_variation_mc(p, 20, 50, 7);
  EXPECT_DOUBLE_EQ(a.vd_other, b.vd_other);
  EXPECT_DOUBLE_EQ(a.ratio, b.ratio);
}

TEST(Replay, BaselinesAreDeterministicInSeed) {
  const Workload wl = Workload::uniform(8, 150, 0.6, 0.4);
  Rng trace_rng(3);
  const Trace trace = Trace::record(wl, trace_rng);

  RandomScatter s1(8, 11);
  RandomScatter s2(8, 11);
  run_trace(s1, trace);
  run_trace(s2, trace);
  EXPECT_EQ(s1.loads(), s2.loads());

  RudolphUpfal r1(8, {}, 13);
  RudolphUpfal r2(8, {}, 13);
  run_trace(r1, trace);
  run_trace(r2, trace);
  EXPECT_EQ(r1.loads(), r2.loads());

  WorkStealing w1(8, {}, 17);
  WorkStealing w2(8, {}, 17);
  run_trace(w1, trace);
  run_trace(w2, trace);
  EXPECT_EQ(w1.loads(), w2.loads());
}

TEST(Replay, EveryStrategySeesIdenticalDemand) {
  // All strategies must report the same generation count when replaying
  // the same trace — the precondition for any fair comparison.
  const Workload wl = Workload::uniform(8, 200, 0.5, 0.4);
  Rng trace_rng(21);
  const Trace trace = Trace::record(wl, trace_rng);
  const auto expected =
      static_cast<std::int64_t>(trace.total_generations());

  NoBalancing nb(8);
  DlbAdapter ours(8, BalancerConfig{}, 1);
  run_trace(nb, trace);
  run_trace(ours, trace);
  EXPECT_EQ(nb.total_load() +
                (static_cast<std::int64_t>(trace.total_consume_attempts()) -
                 static_cast<std::int64_t>(nb.consume_failures())),
            expected);
  EXPECT_EQ(ours.total_load() +
                (static_cast<std::int64_t>(trace.total_consume_attempts()) -
                 static_cast<std::int64_t>(ours.consume_failures())),
            expected);
}

}  // namespace
}  // namespace dlb
