// Determinism gate for the sparse-class fast path.
//
// The balancing hot path is allowed to change its internal bookkeeping
// (compact active-class views instead of dense O(n) scans) only if the
// simulation stays bit-identical: same RNG draw sequence, same packet
// movements, same costs.  These tests pin that down twice over:
//   1. a (seed, workload) pair run twice must produce identical load
//      vectors, operation counts, cost totals and full ledger state;
//   2. the same runs must match golden values recorded from the dense
//      reference implementation (the pre-sparse-path simulator), at
//      n = 64 (the paper's size), n = 1024 (the first scaling target)
//      and n = 4096 (the regime the O(active)-memory sparse ledger
//      storage targets; golden recorded from the dense-storage simulator
//      immediately before the storage rewrite).
// A mismatch here means the optimization changed observable behaviour —
// which the §4 analysis (and every EXPERIMENTS.md number) forbids.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/system.hpp"

namespace dlb {
namespace {

struct RunSummary {
  std::vector<std::int64_t> loads;
  std::uint64_t balance_ops = 0;
  std::uint64_t generated = 0;
  std::uint64_t consumed = 0;
  CostTotals costs;
  // FNV-1a over every ledger cell (d and b), l_old and local_time of
  // every processor — the full observable simulator state.
  std::uint64_t state_hash = 0;
};

std::uint64_t fnv1a(std::uint64_t hash, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (8 * byte)) & 0xffu;
    hash *= 0x100000001b3ull;
  }
  return hash;
}

RunSummary run_paper_workload(std::uint32_t n, std::uint32_t steps,
                              std::uint64_t seed) {
  BalancerConfig cfg;
  cfg.f = 1.1;
  cfg.delta = 4;
  cfg.borrow_cap = 4;
  System sys(n, cfg, seed);
  Rng wl_rng(seed ^ 0x9e3779b97f4a7c15ull);
  sys.run(Workload::paper_benchmark(n, steps, WorkloadParams{}, wl_rng));
  sys.check_invariants();

  RunSummary out;
  out.loads = sys.loads();
  out.balance_ops = sys.balance_operations();
  out.generated = sys.total_generated();
  out.consumed = sys.total_consumed();
  out.costs = sys.costs().totals();
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::uint32_t p = 0; p < n; ++p) {
    const ProcessorState& st = sys.processor(p);
    h = fnv1a(h, static_cast<std::uint64_t>(st.l_old));
    h = fnv1a(h, st.local_time);
    for (std::uint32_t j = 0; j < n; ++j) {
      h = fnv1a(h, static_cast<std::uint64_t>(st.ledger.d(j)));
      h = fnv1a(h, static_cast<std::uint64_t>(st.ledger.b(j)));
    }
  }
  out.state_hash = h;
  return out;
}

void expect_identical(const RunSummary& a, const RunSummary& b) {
  EXPECT_EQ(a.loads, b.loads);
  EXPECT_EQ(a.balance_ops, b.balance_ops);
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.consumed, b.consumed);
  EXPECT_EQ(a.costs.balance_ops, b.costs.balance_ops);
  EXPECT_EQ(a.costs.messages, b.costs.messages);
  EXPECT_EQ(a.costs.packets_moved, b.costs.packets_moved);
  EXPECT_EQ(a.costs.packets_moved_net, b.costs.packets_moved_net);
  EXPECT_EQ(a.costs.packet_hops, b.costs.packet_hops);
  EXPECT_EQ(a.costs.partner_links, b.costs.partner_links);
  EXPECT_EQ(a.state_hash, b.state_hash);
}

// The summaries are reused by the golden tests below; computing each
// workload once keeps the suite fast at n = 1024.
const RunSummary& summary64() {
  static const RunSummary s = run_paper_workload(64, 400, 1993);
  return s;
}

const RunSummary& summary1024() {
  static const RunSummary s = run_paper_workload(1024, 100, 1993);
  return s;
}

const RunSummary& summary4096() {
  static const RunSummary s = run_paper_workload(4096, 60, 1993);
  return s;
}

TEST(Determinism, PaperWorkload64RunsTwiceIdentically) {
  expect_identical(summary64(), run_paper_workload(64, 400, 1993));
}

TEST(Determinism, PaperWorkload1024RunsTwiceIdentically) {
  expect_identical(summary1024(), run_paper_workload(1024, 100, 1993));
}

TEST(Determinism, PaperWorkload4096RunsTwiceIdentically) {
  expect_identical(summary4096(), run_paper_workload(4096, 60, 1993));
}

// Golden values recorded from the dense reference implementation (the
// simulator before the sparse-class fast path).  Any drift here means the
// optimization changed packet movements or the RNG draw sequence.
TEST(Determinism, GoldenTrace64) {
  const RunSummary& s = summary64();
  std::int64_t load_sum = 0;
  for (std::int64_t l : s.loads) load_sum += l;
  EXPECT_EQ(load_sum, static_cast<std::int64_t>(s.generated) -
                          static_cast<std::int64_t>(s.consumed));
  EXPECT_EQ(s.balance_ops, 9484ull);
  EXPECT_EQ(s.generated, 12990ull);
  EXPECT_EQ(s.consumed, 10444ull);
  EXPECT_EQ(s.costs.packets_moved, 425427ull);
  EXPECT_EQ(s.costs.packets_moved_net, 14016ull);
  EXPECT_EQ(s.costs.messages, 75872ull);
  EXPECT_EQ(s.costs.partner_links, 37936ull);
  EXPECT_EQ(s.state_hash, 1213408750952030548ull);
}

TEST(Determinism, GoldenTrace1024) {
  const RunSummary& s = summary1024();
  std::int64_t load_sum = 0;
  for (std::int64_t l : s.loads) load_sum += l;
  EXPECT_EQ(load_sum, static_cast<std::int64_t>(s.generated) -
                          static_cast<std::int64_t>(s.consumed));
  EXPECT_EQ(s.balance_ops, 16206ull);
  EXPECT_EQ(s.generated, 51108ull);
  EXPECT_EQ(s.consumed, 39832ull);
  EXPECT_EQ(s.costs.packets_moved, 356702ull);
  EXPECT_EQ(s.costs.packets_moved_net, 33110ull);
  EXPECT_EQ(s.costs.messages, 129648ull);
  EXPECT_EQ(s.costs.partner_links, 64824ull);
  EXPECT_EQ(s.state_hash, 8698541309493278188ull);
}

TEST(Determinism, GoldenTrace4096) {
  const RunSummary& s = summary4096();
  std::int64_t load_sum = 0;
  for (std::int64_t l : s.loads) load_sum += l;
  EXPECT_EQ(load_sum, static_cast<std::int64_t>(s.generated) -
                          static_cast<std::int64_t>(s.consumed));
  EXPECT_EQ(s.balance_ops, 41203ull);
  EXPECT_EQ(s.generated, 122673ull);
  EXPECT_EQ(s.consumed, 94687ull);
  EXPECT_EQ(s.costs.packets_moved, 571386ull);
  EXPECT_EQ(s.costs.packets_moved_net, 80664ull);
  EXPECT_EQ(s.costs.messages, 329624ull);
  EXPECT_EQ(s.costs.partner_links, 164812ull);
  EXPECT_EQ(s.state_hash, 8169236399539953127ull);
}

}  // namespace
}  // namespace dlb
