// Unit tests for the cross-process observability plumbing (src/obs):
// histogram merging against the sorted-sample oracle, the line-format
// registry state transport (write_state / merge_state), and the
// rank-trace format + TraceMerger (offset correction, rebasing, flow
// matching, detector rerouting, Chrome JSON shape).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "obs/merge.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace dlb {
namespace {

// ---- Histogram merge --------------------------------------------------

// The merge contract: percentiles of (h1 merged h2) equal percentiles
// of one histogram that recorded the concatenated samples — exactly,
// because merging is cell-wise addition — and both sit within the fine
// cell of the true sorted-order statistic.
TEST(HistogramMerge, MatchesConcatenatedSampleOracle) {
  Rng rng(20260809);
  obs::Histogram left, right, direct;
  std::vector<std::uint64_t> all;
  for (int i = 0; i < 4000; ++i) {
    // Latency-like spread over ~16 binary orders of magnitude.
    const std::uint64_t v = rng.next() >> (48 + rng.below(16));
    (i % 3 == 0 ? left : right).record(v);
    direct.record(v);
    all.push_back(v);
  }
  left.merge(right);

  std::sort(all.begin(), all.end());
  EXPECT_EQ(left.count(), all.size());
  EXPECT_EQ(left.sum(), direct.sum());
  EXPECT_EQ(left.min(), all.front());
  EXPECT_EQ(left.max(), all.back());
  for (double q : {0.1, 0.5, 0.9, 0.99, 0.999}) {
    // Merging loses nothing: bit-identical to the direct histogram.
    EXPECT_DOUBLE_EQ(left.percentile(q), direct.percentile(q)) << q;
    // And the usual sub-bucket guarantee holds against the sorted
    // concatenated samples (cell bounds, clamped to the true extremes
    // like the single-histogram oracle test).
    const std::size_t n = all.size();
    std::size_t rank =
        static_cast<std::size_t>(q * static_cast<double>(n) + 0.5);
    rank = std::min(std::max<std::size_t>(rank, 1), n);
    const std::size_t cell = obs::Histogram::cell_of(all[rank - 1]);
    EXPECT_GE(left.percentile(q),
              std::min(obs::Histogram::cell_lo(cell),
                       static_cast<double>(all.front())))
        << q;
    EXPECT_LE(left.percentile(q),
              std::max(obs::Histogram::cell_hi(cell),
                       static_cast<double>(all.back())))
        << q;
  }
}

TEST(HistogramMerge, EmptySidesAreIdentity) {
  obs::Histogram a, b;
  a.record(7);
  a.record(900);
  const auto before = a.state();
  a.merge(b);  // empty right side: no-op
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 7u);
  EXPECT_EQ(a.max(), 900u);
  b.merge(before);  // empty left side: becomes a copy
  EXPECT_EQ(b.count(), 2u);
  EXPECT_EQ(b.sum(), 907u);
  EXPECT_EQ(b.min(), 7u);
  EXPECT_EQ(b.max(), 900u);
  EXPECT_DOUBLE_EQ(b.percentile(0.5), a.percentile(0.5));
}

TEST(HistogramMerge, StateRoundTripsSparseCells) {
  obs::Histogram h;
  for (std::uint64_t v : {1u, 1u, 64u, 100000u}) h.record(v);
  const auto s = h.state();
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.cells.size(), 3u);  // 1 twice -> one cell
  obs::Histogram copy;
  copy.merge(s);
  EXPECT_EQ(copy.count(), h.count());
  EXPECT_EQ(copy.cells(), h.cells());
}

// ---- Registry state transport ----------------------------------------

TEST(MergeState, RoundTripAndPrefix) {
  obs::MetricsRegistry src;
  src.counter("mp.sent").add(41);
  src.gauge("spmd.final_load").set(-3);
  for (std::uint64_t v : {10u, 20u, 4000u})
    src.histogram("rtt_ns").record(v);

  std::ostringstream dump;
  src.write_state(dump);

  obs::MetricsRegistry dst;
  std::istringstream plain(dump.str());
  obs::merge_state(plain, dst);
  std::istringstream prefixed(dump.str());
  obs::merge_state(prefixed, dst, "rank2.");

  const auto snap = dst.snapshot();
  ASSERT_NE(snap.find("mp.sent"), nullptr);
  EXPECT_EQ(snap.find("mp.sent")->value, 41);
  ASSERT_NE(snap.find("rank2.mp.sent"), nullptr);
  EXPECT_EQ(snap.find("rank2.mp.sent")->value, 41);
  EXPECT_EQ(snap.find("spmd.final_load")->value, -3);
  EXPECT_EQ(snap.find("rank2.rtt_ns")->count, 3u);
  EXPECT_EQ(snap.find("rank2.rtt_ns")->min, 10u);
  EXPECT_EQ(snap.find("rank2.rtt_ns")->max, 4000u);
}

TEST(MergeState, RepeatedMergesAccumulate) {
  obs::MetricsRegistry src;
  src.counter("c").add(5);
  src.gauge("g").set(2);
  src.histogram("h").record(16);
  std::ostringstream dump;
  src.write_state(dump);

  obs::MetricsRegistry dst;
  for (int i = 0; i < 3; ++i) {
    std::istringstream is(dump.str());
    obs::merge_state(is, dst);
  }
  const auto snap = dst.snapshot();
  EXPECT_EQ(snap.find("c")->value, 15);
  EXPECT_EQ(snap.find("g")->value, 6);  // gauges add across ranks
  EXPECT_EQ(snap.find("h")->count, 3u);
}

TEST(MergeState, KindMismatchTripsContract) {
  obs::MetricsRegistry src;
  src.counter("x").add(1);
  std::ostringstream dump;
  src.write_state(dump);

  obs::MetricsRegistry dst;
  dst.gauge("x").set(9);  // same name, different kind
  std::istringstream is(dump.str());
  EXPECT_THROW(obs::merge_state(is, dst), contract_error);
}

TEST(MergeState, MalformedDumpsThrow) {
  obs::MetricsRegistry dst;
  for (const char* bad :
       {"not-a-dump 1\n", "dlb-metrics 2\n", "dlb-metrics 1\nz q 4\n",
        "dlb-metrics 1\nc only_name\n",
        "dlb-metrics 1\nh h 1 1 1 1 99999 0 1\n"}) {
    std::istringstream is(bad);
    EXPECT_THROW(obs::merge_state(is, dst), contract_error) << bad;
  }
}

// ---- Rank-trace format + TraceMerger ---------------------------------

TEST(TraceMerger, OffsetCorrectionRebasingAndFlowMatching) {
  obs::TraceBuffer b0(64), b1(64);
  // Rank 0 (reference): a send at local t=1000, within a span.
  b0.record("step", "spmd", 500, 2000, 0, 7);
  b0.record_flow("mp.msg", "transfer", 1000, 0, 42, /*start=*/true, 3);
  // Rank 1: clock runs 1_000_000 ns behind the reference; its local
  // t=4000 is reference t=4000 + offset.
  const std::int64_t offset = 1'000'000;
  b1.record_flow("mp.msg", "transfer", 4000, 0, 42, /*start=*/false, 3);
  b1.instant("crash", "crash", 0, 11);

  std::stringstream f0, f1;
  obs::write_rank_trace(f0, b0, 0, 0);
  obs::write_rank_trace(f1, b1, 1, offset);

  obs::TraceMerger m;
  m.add_rank(f0);
  m.add_rank(f1);
  EXPECT_EQ(m.ranks(), 2);
  EXPECT_TRUE(m.has_rank(1));
  EXPECT_EQ(m.offset_ns(1), offset);
  EXPECT_EQ(m.dropped(0), 0u);

  const auto events = m.events();
  ASSERT_EQ(events.size(), 4u);
  // Earliest corrected event (rank 0's span at 500) rebases to 0.
  EXPECT_EQ(events.front().ts_ns, 0u);
  EXPECT_TRUE(std::is_sorted(
      events.begin(), events.end(),
      [](const auto& a, const auto& b) { return a.ts_ns < b.ts_ns; }));

  const auto flows = m.matched_flows();
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].id, 42u);
  EXPECT_EQ(flows[0].src_rank, 0);
  EXPECT_EQ(flows[0].dst_rank, 1);
  EXPECT_EQ(flows[0].arg, 3u);
  // Corrected recv = 4000 + 1_000_000, rebased by 500.
  EXPECT_EQ(flows[0].send_ts_ns, 500u);
  EXPECT_EQ(flows[0].recv_ts_ns, 4000u + 1'000'000u - 500u);
  EXPECT_GE(flows[0].recv_ts_ns, flows[0].send_ts_ns);
}

TEST(TraceMerger, HalfFlowsAreSkippedNotMatched) {
  obs::TraceBuffer b0(16);
  b0.record_flow("mp.msg", "transfer", 10, 0, 1, true);
  b0.record_flow("mp.msg", "transfer", 20, 0, 2, true);
  obs::TraceBuffer b1(16);
  b1.record_flow("mp.msg", "transfer", 30, 0, 2, false);
  std::stringstream f0, f1;
  obs::write_rank_trace(f0, b0, 0, 0);
  obs::write_rank_trace(f1, b1, 1, 0);
  obs::TraceMerger m;
  m.add_rank(f0);
  m.add_rank(f1);
  const auto flows = m.matched_flows();
  ASSERT_EQ(flows.size(), 1u);  // flow 1's recv never arrived
  EXPECT_EQ(flows[0].id, 2u);
}

TEST(TraceMerger, ChromeJsonCarriesTracksFlowsAndDetectorRerouting) {
  obs::TraceBuffer b0(32), b1(32);
  b0.record("step", "spmd", 100, 50, 0, 1);
  b0.record_flow("mp.msg", "transfer", 120, 0, 9, true);
  // Rank 0 notices rank 1 dying: detector events reroute to pid 1.
  b0.instant("eof", "detector", 0, /*indicted rank=*/1);
  b1.record_flow("mp.msg", "transfer", 300, 0, 9, false);
  std::stringstream f0, f1;
  obs::write_rank_trace(f0, b0, 0, 0);
  obs::write_rank_trace(f1, b1, 1, -777);
  obs::TraceMerger m;
  m.add_rank(f0);
  m.add_rank(f1);

  std::ostringstream os;
  m.write_chrome_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"rank 0\""), std::string::npos);
  EXPECT_NE(json.find("\"rank 1\""), std::string::npos);
  EXPECT_NE(json.find("clock_offset_ns=-777"), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"f\""), std::string::npos);
  EXPECT_NE(json.find("\"bp\": \"e\""), std::string::npos);
  // The detector verdict lives on the indicted rank's track with the
  // noticing rank recorded in its args.
  EXPECT_NE(json.find("\"eof\""), std::string::npos);
  EXPECT_NE(json.find("\"by\": 0"), std::string::npos);
}

TEST(TraceMerger, RejectsMalformedAndDuplicateInputs) {
  obs::TraceMerger m;
  std::istringstream bad_magic("not-a-trace 1 0 0 0\n");
  EXPECT_THROW(m.add_rank(bad_magic), contract_error);
  std::istringstream bad_phase("dlb-rank-trace 1 0 0 0\ne 9 0 0 0 0 0 a b\n");
  EXPECT_THROW(m.add_rank(bad_phase), contract_error);

  obs::TraceBuffer b(8);
  b.instant("x", "y", 0);
  std::stringstream f0, f0_again;
  obs::write_rank_trace(f0, b, 0, 0);
  obs::write_rank_trace(f0_again, b, 0, 0);
  obs::TraceMerger m2;
  m2.add_rank(f0);
  EXPECT_THROW(m2.add_rank(f0_again), contract_error);
}

TEST(WriteRankTrace, RefusesNamesWithWhitespace) {
  obs::TraceBuffer b(8);
  b.instant("has space", "cat", 0);
  std::ostringstream os;
  EXPECT_THROW(obs::write_rank_trace(os, b, 0, 0), contract_error);
}

}  // namespace
}  // namespace dlb
