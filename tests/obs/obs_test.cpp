// Unit tests for the observability layer (src/obs) plus its wiring into
// the step engines: metrics instruments against brute-force oracles,
// trace buffer semantics, scoped timers, and the per-subsystem
// instrumentation (System, run_parallel, ThreadedSystem, mp::World,
// the MetricsRecorder bridge).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "metrics/obs_bridge.hpp"
#include "mp/communicator.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"
#include "runtime/threaded_system.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace dlb {
namespace {

// ---- Instruments ------------------------------------------------------

TEST(Counter, AccumulatesAndDefaultsToOne) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, LastWriteWinsAndSignedDeltas) {
  obs::Gauge g;
  g.set(7);
  EXPECT_EQ(g.value(), 7);
  g.add(-10);
  EXPECT_EQ(g.value(), -3);
}

TEST(Histogram, BucketBoundaries) {
  EXPECT_EQ(obs::Histogram::bucket_of(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_of(1), 0u);
  EXPECT_EQ(obs::Histogram::bucket_of(2), 1u);
  EXPECT_EQ(obs::Histogram::bucket_of(3), 1u);
  EXPECT_EQ(obs::Histogram::bucket_of(4), 2u);
  EXPECT_EQ(obs::Histogram::bucket_of((1ull << 40) + 5), 40u);
  EXPECT_EQ(obs::Histogram::bucket_of(~std::uint64_t{0}), 63u);
  EXPECT_EQ(obs::Histogram::bucket_lo(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_lo(10), 1024u);
}

TEST(Histogram, CountSumMinMaxMean) {
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
  for (std::uint64_t v : {5u, 10u, 100u, 3u}) h.record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 118u);
  EXPECT_EQ(h.min(), 3u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 118.0 / 4.0);
}

// The bucket-level guarantee: the reported quantile lies in the same
// power-of-two bucket as the exact order statistic of the recorded
// values (and inside [min, max]).
TEST(Histogram, PercentileMatchesSortedOracleAtBucketLevel) {
  Rng rng(20260807);
  obs::Histogram h;
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 5000; ++i) {
    // Spread over ~18 binary orders of magnitude, like latencies do.
    const std::uint64_t v = rng.below(1u << (1 + rng.below(18)));
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    const std::size_t n = values.size();
    std::size_t rank = static_cast<std::size_t>(
        q * static_cast<double>(n) + 0.5);
    rank = std::min(std::max<std::size_t>(rank, 1), n);
    const std::uint64_t exact = values[rank - 1];
    const double estimate = h.percentile(q);
    const std::size_t bucket = obs::Histogram::bucket_of(exact);
    const double lo = static_cast<double>(obs::Histogram::bucket_lo(bucket));
    const double hi =
        bucket + 1 < obs::Histogram::kBuckets
            ? static_cast<double>(obs::Histogram::bucket_lo(bucket + 1))
            : static_cast<double>(h.max());
    // The estimate is clamped to [min, max], which can pull it out of
    // the theoretical bucket range only toward the true extremes.
    EXPECT_GE(estimate, std::min(lo, static_cast<double>(values.front())))
        << "q=" << q;
    EXPECT_LE(estimate, std::max(hi, static_cast<double>(values.back())))
        << "q=" << q;
  }
  // The extremes stay inside the recorded range (the clamp).
  EXPECT_GE(h.percentile(0.0), static_cast<double>(values.front()));
  EXPECT_LE(h.percentile(1.0), static_cast<double>(values.back()));
}

TEST(Histogram, PercentileIsExactWhenOneValueRepeats) {
  obs::Histogram h;
  for (int i = 0; i < 100; ++i) h.record(4096);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 4096.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 4096.0);
}

TEST(Histogram, CellBoundariesRefineBuckets) {
  // Sub-bucket cells subdivide every power-of-two bucket 16 ways; the
  // aggregate view must still report the 64 coarse buckets unchanged.
  EXPECT_EQ(obs::Histogram::kCells,
            obs::Histogram::kBuckets * obs::Histogram::kSubBuckets);
  EXPECT_EQ(obs::Histogram::cell_of(0), 0u);
  // Bucket 5 covers [32, 64): value 40 sits in sub-bucket (40-32)/2 = 4.
  EXPECT_EQ(obs::Histogram::cell_of(40),
            5 * obs::Histogram::kSubBuckets + 4);
  EXPECT_DOUBLE_EQ(obs::Histogram::cell_lo(5 * obs::Histogram::kSubBuckets),
                   32.0);
  EXPECT_DOUBLE_EQ(
      obs::Histogram::cell_lo(5 * obs::Histogram::kSubBuckets + 4), 40.0);
  // The top cell's upper edge is 2^64, without overflowing.
  EXPECT_GT(obs::Histogram::cell_hi(obs::Histogram::kCells - 1),
            obs::Histogram::cell_lo(obs::Histogram::kCells - 1));
  // cell_of stays in range at the extremes.
  EXPECT_LT(obs::Histogram::cell_of(~std::uint64_t{0}),
            obs::Histogram::kCells);
  obs::Histogram h;
  h.record(40);
  const auto cells = h.cells();
  EXPECT_EQ(cells[5 * obs::Histogram::kSubBuckets + 4], 1u);
  EXPECT_EQ(h.buckets()[5], 1u);
}

// The log-linear refinement bounds the quantile's relative error by
// one sub-bucket width: 1/16 = 6.25% of the value (plus interpolation
// slack), versus a full power of two (100%) before.  Checked against
// the exact order statistic on heavy-tailed data at the quantiles the
// serving bench reports.
TEST(Histogram, PercentileRelativeErrorWithinSubBucket) {
  Rng rng(20260809);
  obs::Histogram h;
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t v = rng.below(1u << (1 + rng.below(18)));
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    const std::size_t n = values.size();
    std::size_t rank =
        static_cast<std::size_t>(q * static_cast<double>(n) + 0.5);
    rank = std::min(std::max<std::size_t>(rank, 1), n);
    const double exact = static_cast<double>(values[rank - 1]);
    const double estimate = h.percentile(q);
    // One sub-bucket of relative slack, plus a small absolute floor for
    // the tiny-value buckets where cells are single integers.
    EXPECT_NEAR(estimate, exact, exact / 16.0 + 2.0) << "q=" << q;
  }
}

TEST(Histogram, SnapshotCarriesP999) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("lat");
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  const obs::MetricsSnapshot snap = reg.snapshot();
  const obs::MetricValue* m = snap.find("lat");
  ASSERT_NE(m, nullptr);
  EXPECT_GT(m->p999, m->p50);
  EXPECT_GE(m->p999, m->p99);
  EXPECT_NEAR(m->p999, 999.0, 999.0 / 16.0 + 2.0);
  std::ostringstream json;
  snap.write_json(json);
  EXPECT_NE(json.str().find("\"p999\""), std::string::npos);
  std::ostringstream csv;
  snap.write_csv(csv);
  EXPECT_NE(csv.str().find("p999"), std::string::npos);
}

// ---- Registry and snapshot --------------------------------------------

TEST(MetricsRegistry, ReturnsStableInstrumentsByName) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("x");
  obs::Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(reg.counter("x").value(), 3u);
}

TEST(MetricsRegistry, KindMismatchThrows) {
  obs::MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), contract_error);
  EXPECT_THROW(reg.histogram("x"), contract_error);
}

TEST(MetricsRegistry, SnapshotCarriesEveryInstrument) {
  obs::MetricsRegistry reg;
  reg.counter("ops").add(5);
  reg.gauge("level").set(-2);
  obs::Histogram& h = reg.histogram("lat");
  h.record(10);
  h.record(30);
  const obs::MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.values.size(), 3u);
  const obs::MetricValue* ops = snap.find("ops");
  ASSERT_NE(ops, nullptr);
  EXPECT_EQ(ops->value, 5);
  const obs::MetricValue* level = snap.find("level");
  ASSERT_NE(level, nullptr);
  EXPECT_EQ(level->value, -2);
  const obs::MetricValue* lat = snap.find("lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count, 2u);
  EXPECT_EQ(lat->total, 40u);
  EXPECT_GT(lat->p99, 0.0);
  EXPECT_EQ(snap.find("missing"), nullptr);
}

TEST(MetricsSnapshot, JsonAndCsvExport) {
  obs::MetricsRegistry reg;
  reg.counter("a.count").add(1);
  reg.gauge("b\"quote").set(2);
  reg.histogram("c.lat").record(7);
  const obs::MetricsSnapshot snap = reg.snapshot();
  std::ostringstream json;
  snap.write_json(json);
  const std::string j = json.str();
  EXPECT_NE(j.find("\"counters\""), std::string::npos);
  EXPECT_NE(j.find("\"gauges\""), std::string::npos);
  EXPECT_NE(j.find("\"histograms\""), std::string::npos);
  EXPECT_NE(j.find("a.count"), std::string::npos);
  EXPECT_NE(j.find("b\\\"quote"), std::string::npos);  // escaped
  std::ostringstream csv;
  snap.write_csv(csv);
  EXPECT_NE(csv.str().find("name,kind,value"), std::string::npos);
  EXPECT_NE(csv.str().find("c.lat"), std::string::npos);
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(obs::json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(obs::json_escape("plain"), "plain");
}

// ---- Trace buffer -----------------------------------------------------

TEST(TraceBuffer, RecordsSpansAndInstants) {
  obs::TraceBuffer trace(16);
  trace.record("work", "test", 100, 50, 1, 7);
  trace.instant("marker", "test", 2, 9);
  ASSERT_EQ(trace.size(), 2u);
  const auto events = trace.events();
  EXPECT_STREQ(events[0].name, "work");
  EXPECT_EQ(events[0].ts_ns, 100u);
  EXPECT_EQ(events[0].dur_ns, 50u);
  EXPECT_EQ(events[0].tid, 1u);
  EXPECT_EQ(events[0].arg, 7u);
  EXPECT_EQ(events[1].dur_ns, 0u);  // instant
}

TEST(TraceBuffer, DropsNewestWhenFullAndCounts) {
  obs::TraceBuffer trace(4);
  for (std::uint64_t i = 0; i < 7; ++i)
    trace.record("e", "test", i, 1, 0, i);
  EXPECT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace.dropped(), 3u);
  // The first four events survive — drop-newest, not wraparound.
  const auto events = trace.events();
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(events[i].arg, i);
}

TEST(TraceBuffer, DisabledBufferRecordsNothing) {
  obs::TraceBuffer trace(8);
  trace.set_enabled(false);
  trace.record("e", "test", 0, 1, 0);
  EXPECT_EQ(trace.size(), 0u);
  EXPECT_EQ(trace.dropped(), 0u);
  trace.set_enabled(true);
  trace.record("e", "test", 0, 1, 0);
  EXPECT_EQ(trace.size(), 1u);
}

TEST(TraceBuffer, ClearResetsEventsAndDropCounter) {
  obs::TraceBuffer trace(2);
  for (int i = 0; i < 5; ++i) trace.record("e", "t", 0, 1, 0);
  trace.clear();
  EXPECT_EQ(trace.size(), 0u);
  EXPECT_EQ(trace.dropped(), 0u);
  trace.record("e", "t", 0, 1, 0);
  EXPECT_EQ(trace.size(), 1u);
}

TEST(TraceBuffer, ChromeJsonHasMetadataSpansAndInstants) {
  obs::TraceBuffer trace(16);
  trace.set_thread_name(0, "main");
  trace.set_thread_name(3, "shard 2");
  trace.record("span", "cat", 1000, 2000, 3, 11);
  trace.instant("mark", "cat", 0, 5);
  std::ostringstream os;
  trace.write_chrome_json(os, "proc");
  const std::string j = os.str();
  EXPECT_NE(j.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(j.find("process_name"), std::string::npos);
  EXPECT_NE(j.find("thread_name"), std::string::npos);
  EXPECT_NE(j.find("shard 2"), std::string::npos);
  EXPECT_NE(j.find("\"ph\": \"X\""), std::string::npos);  // complete span
  EXPECT_NE(j.find("\"ph\": \"i\""), std::string::npos);  // instant
  EXPECT_NE(j.find("\"ph\": \"M\""), std::string::npos);  // metadata
}

// ---- Scoped timers ----------------------------------------------------

TEST(ScopedTimer, FeedsHistogramAndTraceSpan) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("scope_ns");
  obs::TraceBuffer trace(8);
  {
    const obs::ScopedTimer timer(&h, &trace, "scope", "test", 4, 42);
  }
  EXPECT_EQ(h.count(), 1u);
  ASSERT_EQ(trace.size(), 1u);
  const auto events = trace.events();
  EXPECT_STREQ(events[0].name, "scope");
  EXPECT_EQ(events[0].tid, 4u);
  EXPECT_EQ(events[0].arg, 42u);
}

TEST(ScopedTimer, UnarmedWithNullSinksOrDisabledTrace) {
  {
    const obs::ScopedTimer timer(nullptr);  // must be a no-op
  }
  obs::TraceBuffer trace(8);
  trace.set_enabled(false);
  {
    const obs::ScopedTimer timer(nullptr, &trace, "e", "t", 0);
  }
  EXPECT_EQ(trace.size(), 0u);
}

TEST(Stopwatch, MeasuresElapsedTimeMonotonically) {
  const obs::Stopwatch watch;
  const std::uint64_t a = watch.elapsed_ns();
  const std::uint64_t b = watch.elapsed_ns();
  EXPECT_GE(b, a);
  EXPECT_GE(watch.elapsed_us(), 0.0);
}

// ---- MetricsRecorder bridge -------------------------------------------

TEST(MetricsRecorderBridge, ForwardsEveryHookIntoCounters) {
  obs::MetricsRegistry reg;
  MetricsRecorder rec(reg);
  rec.on_balance_op(0, 2, 9);
  rec.on_balance_op(1, 1, 1);
  rec.on_migration(0, 1, 4);
  rec.on_borrow_event(BorrowEvent::TotalBorrow);
  rec.on_borrow_event(BorrowEvent::RemoteBorrow);
  rec.on_borrow_event(BorrowEvent::BorrowFail);
  rec.on_borrow_event(BorrowEvent::DecreaseSim);
  rec.on_fault(FaultEvent::Timeout, 3);
  rec.on_fault(FaultEvent::AbortedOp, 2);
  rec.on_fault(FaultEvent::LostPacket, 5);
  rec.on_fault(FaultEvent::RankDeath, 1);
  EXPECT_EQ(reg.counter("recorder.balance_ops").value(), 2u);
  EXPECT_EQ(reg.counter("recorder.packets_moved").value(), 10u);
  EXPECT_EQ(reg.counter("recorder.migrations").value(), 4u);
  EXPECT_EQ(reg.counter("recorder.borrow.total").value(), 1u);
  EXPECT_EQ(reg.counter("recorder.borrow.remote").value(), 1u);
  EXPECT_EQ(reg.counter("recorder.borrow.fail").value(), 1u);
  EXPECT_EQ(reg.counter("recorder.borrow.decrease_sim").value(), 1u);
  EXPECT_EQ(reg.counter("fault.timeouts").value(), 3u);
  EXPECT_EQ(reg.counter("fault.aborted_ops").value(), 2u);
  EXPECT_EQ(reg.counter("fault.lost_packets").value(), 5u);
  EXPECT_EQ(reg.counter("fault.ranks_dead").value(), 1u);
}

// ---- System wiring ----------------------------------------------------

TEST(SystemObs, CountersAgreeWithSystemInspection) {
  BalancerConfig cfg;
  cfg.f = 1.2;
  cfg.delta = 2;
  System sys(16, cfg, 99);
  obs::MetricsRegistry reg;
  sys.attach_metrics(&reg);
  Rng wl_rng(7);
  const std::uint32_t horizon = 200;
  sys.run(Workload::paper_benchmark(16, horizon, WorkloadParams{}, wl_rng));
  EXPECT_EQ(reg.counter("system.generated").value(), sys.total_generated());
  EXPECT_EQ(reg.counter("system.consumed").value(), sys.total_consumed());
  EXPECT_EQ(reg.counter("system.balance_ops").value(),
            sys.balance_operations());
  EXPECT_GT(sys.balance_operations(), 0u);
  // One duration sample per balancing operation; one active sample per
  // step.
  EXPECT_EQ(reg.histogram("system.balance_ns").count(),
            sys.balance_operations());
  EXPECT_EQ(reg.histogram("system.step.active").count(), horizon);
}

TEST(SystemObs, MetricsMatchRunWithoutMetrics) {
  // Attaching the registry must not perturb the simulation itself.
  BalancerConfig cfg;
  cfg.f = 1.3;
  cfg.delta = 1;
  Rng wl_rng(11);
  const Workload wl = Workload::uniform(8, 150, 0.7, 0.5);
  System plain(8, cfg, 5);
  plain.run(wl);
  System instrumented(8, cfg, 5);
  obs::MetricsRegistry reg;
  obs::TraceBuffer trace(1 << 12);
  instrumented.attach_metrics(&reg);
  instrumented.attach_trace(&trace);
  instrumented.run(wl);
  EXPECT_EQ(plain.loads(), instrumented.loads());
  EXPECT_EQ(plain.balance_operations(), instrumented.balance_operations());
  EXPECT_GT(trace.size(), 0u);
}

TEST(SystemObs, TraceCarriesStepAndBalanceSpans) {
  BalancerConfig cfg;
  cfg.f = 1.1;
  cfg.delta = 2;
  System sys(8, cfg, 3);
  obs::TraceBuffer trace(1 << 12);
  sys.attach_trace(&trace);
  Rng wl_rng(13);
  sys.run(Workload::paper_benchmark(8, 100, WorkloadParams{}, wl_rng));
  std::set<std::string> names;
  for (const obs::TraceEvent& e : trace.events()) names.insert(e.name);
  EXPECT_TRUE(names.count("step"));
  EXPECT_TRUE(names.count("balance_op"));
}

// ---- run_parallel phase profiling -------------------------------------

TEST(RunParallelObs, PerShardPhaseHistogramsAndPercentiles) {
  BalancerConfig cfg;
  cfg.f = 1.5;
  cfg.delta = 2;
  System sys(64, cfg, 17);
  obs::MetricsRegistry reg;
  sys.attach_metrics(&reg);
  const std::uint32_t horizon = 80;
  sys.run_parallel(Workload::uniform(64, horizon, 0.7, 0.5), 2);
  const obs::MetricsSnapshot snap = reg.snapshot();
  for (const std::string shard : {"shard0", "shard1"}) {
    const obs::MetricValue* work =
        snap.find("run_parallel." + shard + ".work_ns");
    const obs::MetricValue* barrier =
        snap.find("run_parallel." + shard + ".barrier_wait_ns");
    ASSERT_NE(work, nullptr) << shard;
    ASSERT_NE(barrier, nullptr) << shard;
    EXPECT_EQ(work->count, horizon) << shard;
    EXPECT_EQ(barrier->count, horizon) << shard;
    // The acceptance surface: barrier-wait p50/p99 per shard.
    EXPECT_GT(barrier->p99, 0.0) << shard;
    EXPECT_GE(barrier->p99, barrier->p50) << shard;
  }
  const obs::MetricValue* drain = snap.find("run_parallel.serial_drain_ns");
  ASSERT_NE(drain, nullptr);
  EXPECT_EQ(drain->count, horizon);
}

TEST(RunParallelObs, TraceShowsDistinctShardAndSerialSpans) {
  BalancerConfig cfg;
  cfg.f = 1.5;
  cfg.delta = 2;
  System sys(64, cfg, 23);
  obs::TraceBuffer trace(1 << 14);
  sys.attach_trace(&trace);
  sys.run_parallel(Workload::uniform(64, 60, 0.7, 0.5), 2);
  std::set<std::uint32_t> local_tids;
  std::set<std::uint32_t> barrier_tids;
  std::set<std::uint32_t> drain_tids;
  for (const obs::TraceEvent& e : trace.events()) {
    const std::string name = e.name;
    if (name == "local_phase") local_tids.insert(e.tid);
    if (name == "barrier_wait") barrier_tids.insert(e.tid);
    if (name == "serial_drain") drain_tids.insert(e.tid);
  }
  // Shard s records on track s + 1; the serial coordinator on track 0.
  EXPECT_EQ(local_tids, (std::set<std::uint32_t>{1, 2}));
  EXPECT_EQ(barrier_tids, (std::set<std::uint32_t>{1, 2}));
  EXPECT_EQ(drain_tids, (std::set<std::uint32_t>{0}));
}

TEST(RunParallelObs, ParallelRunStaysDeterministicUnderInstrumentation) {
  BalancerConfig cfg;
  cfg.f = 1.4;
  cfg.delta = 1;
  const Workload wl = Workload::uniform(32, 100, 0.6, 0.4);
  System plain(32, cfg, 29);
  plain.run_parallel(wl, 2);
  System instrumented(32, cfg, 29);
  obs::MetricsRegistry reg;
  obs::TraceBuffer trace(1 << 14);
  instrumented.attach_metrics(&reg);
  instrumented.attach_trace(&trace);
  instrumented.run_parallel(wl, 2);
  EXPECT_EQ(plain.loads(), instrumented.loads());
}

// ---- ThreadedSystem wiring --------------------------------------------

TEST(ThreadedObs, PublishesAggregatedStatsAsCounters) {
  Rng rng(31);
  const Trace trace = Trace::record(Workload::hotspot(4, 300, 1, 0.9, 0.2),
                                    rng);
  ThreadedConfig cfg;
  cfg.f = 1.2;
  cfg.delta = 2;
  cfg.seed = 31;
  ThreadedSystem sys(4, cfg);
  obs::MetricsRegistry reg;
  sys.attach_metrics(&reg);
  sys.run(trace);
  const ThreadedStats& stats = sys.stats();
  EXPECT_GT(stats.balance_ops, 0u);
  EXPECT_EQ(reg.counter("threaded.balance_ops").value(), stats.balance_ops);
  EXPECT_EQ(reg.counter("threaded.messages").value(), stats.messages);
  EXPECT_EQ(reg.counter("threaded.generated").value(), stats.generated);
  EXPECT_EQ(reg.counter("threaded.consumed").value(), stats.consumed);
  EXPECT_EQ(reg.counter("threaded.fault.timeouts").value(), stats.timeouts);
  EXPECT_EQ(reg.gauge("threaded.lost_load").value(), stats.lost_load);
  // Every initiated transaction gets one duration sample (including
  // the ones whose partners all refused).
  EXPECT_GE(reg.histogram("threaded.txn_ns").count(), stats.balance_ops);
}

TEST(ThreadedObs, TraceRecordsTransactionSpansPerProcessor) {
  Rng rng(37);
  const Trace workload =
      Trace::record(Workload::hotspot(4, 300, 1, 0.9, 0.2), rng);
  ThreadedConfig cfg;
  cfg.f = 1.2;
  cfg.delta = 2;
  cfg.seed = 37;
  ThreadedSystem sys(4, cfg);
  obs::TraceBuffer trace(1 << 14);
  sys.attach_trace(&trace);
  sys.run(workload);
  std::uint64_t txn_spans = 0;
  std::uint64_t lock_spans = 0;
  for (const obs::TraceEvent& e : trace.events()) {
    const std::string name = e.name;
    if (name == "balance_txn") ++txn_spans;
    if (name == "partner_lock") ++lock_spans;
    EXPECT_LT(e.tid, 4u);  // one track per processor
  }
  EXPECT_GE(txn_spans, sys.stats().balance_ops);
  EXPECT_GT(lock_spans, 0u);
}

// ---- mp::World wiring -------------------------------------------------

TEST(WorldObs, CountsDeliveredTrafficPerLink) {
  World world(2);
  obs::MetricsRegistry reg;
  world.attach_metrics(&reg);
  world.launch([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 7, {1, 2, 3});
      comm.send(1, 7, {4});
    }
    if (comm.rank() == 1) {
      (void)comm.recv(0, 7);
      (void)comm.recv(0, 7);
    }
    comm.barrier();
  });
  EXPECT_EQ(reg.counter("mp.link.0->1.messages").value(), 2u);
  EXPECT_EQ(reg.counter("mp.link.0->1.bytes").value(), 4u * 8u);
  EXPECT_EQ(reg.counter("mp.link.1->0.messages").value(), 0u);
  EXPECT_EQ(reg.counter("mp.messages").value(), 2u);
  EXPECT_EQ(reg.counter("mp.bytes").value(), 4u * 8u);
  EXPECT_GE(reg.counter("mp.collective_rounds").value(), 1u);
}

TEST(WorldObs, CountsDropsAndRecvTimeouts) {
  World world(2);
  FaultPlan plan;
  plan.default_link.drop = 1.0;  // every message vanishes
  world.set_fault_plan(plan);
  obs::MetricsRegistry reg;
  world.attach_metrics(&reg);
  world.launch([](Comm& comm) {
    if (comm.rank() == 0) comm.send(1, 3, {42});
    if (comm.rank() == 1) {
      const auto msg =
          comm.recv_for(0, 3, std::chrono::milliseconds(30));
      EXPECT_FALSE(msg.has_value());
    }
    comm.barrier();
  });
  EXPECT_EQ(reg.counter("mp.dropped").value(), 1u);
  EXPECT_EQ(reg.counter("mp.recv_timeouts").value(), 1u);
  EXPECT_EQ(reg.counter("mp.link.0->1.messages").value(), 0u);
  EXPECT_EQ(world.fault_stats().messages_dropped, 1u);
}

TEST(WorldObs, DetachedWorldRunsUnchanged) {
  World world(2);
  world.attach_metrics(nullptr);
  std::int64_t total = 0;
  world.launch([&](Comm& comm) {
    const std::int64_t sum = comm.allreduce_sum(comm.rank() + 1);
    if (comm.rank() == 0) total = sum;
  });
  EXPECT_EQ(total, 3);
}

}  // namespace
}  // namespace dlb
