#include "obs/alloc.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace dlb::obs {
namespace {

TEST(AllocCounting, CountsAKnownAllocationScript) {
  // Three vector reserves of known sizes: exactly three operator-new
  // calls of exactly the requested byte counts (int64 has no array
  // cookie and libstdc++ allocates precisely what reserve asks for).
  AllocPhase phase;
  phase.rebase();
  std::vector<std::int64_t> a;
  a.reserve(8);
  std::vector<std::int64_t> b;
  b.reserve(32);
  std::vector<std::int64_t> c;
  c.reserve(100);
  const AllocCounts delta = phase.delta();
  EXPECT_EQ(delta.count, 3u);
  EXPECT_EQ(delta.bytes, (8u + 32u + 100u) * sizeof(std::int64_t));
}

TEST(AllocCounting, QuietSpansReportZero) {
  std::vector<std::int64_t> warm;
  warm.reserve(64);
  AllocPhase phase;
  phase.rebase();
  for (int i = 0; i < 64; ++i) warm.push_back(i);  // within capacity
  warm.clear();
  const AllocCounts delta = phase.delta();
  EXPECT_EQ(delta.count, 0u);
  EXPECT_EQ(delta.bytes, 0u);
}

TEST(AllocCounting, TakeSamplesAndRebases) {
  AllocPhase phase;
  phase.rebase();
  std::vector<std::int64_t> v;
  v.reserve(16);
  EXPECT_EQ(phase.take().count, 1u);
  // take() rebased: the same allocation is not reported twice.
  EXPECT_EQ(phase.take().count, 0u);
}

TEST(AllocCounting, CountersAreThreadLocal) {
  // A worker thread sampling around its own allocation sees exactly
  // that allocation — never the spawning thread's activity.
  AllocCounts worker_delta{};
  std::thread worker([&worker_delta] {
    AllocPhase phase;
    phase.rebase();
    std::vector<std::int64_t> v;
    v.reserve(16);
    worker_delta = phase.delta();
  });
  worker.join();
  EXPECT_EQ(worker_delta.count, 1u);
  EXPECT_EQ(worker_delta.bytes, 16u * sizeof(std::int64_t));
}

TEST(AllocTallyTest, TracksDirtyStepsAndWarmupEnd) {
  AllocTally tally;
  EXPECT_EQ(tally.last_dirty_step, -1);
  tally.note(0, AllocCounts{2, 64});
  tally.note(1, AllocCounts{0, 0});  // clean step: ignored
  tally.note(2, AllocCounts{1, 32});
  tally.note(3, AllocCounts{0, 0});
  EXPECT_EQ(tally.count, 3u);
  EXPECT_EQ(tally.bytes, 96u);
  EXPECT_EQ(tally.dirty_steps, 2u);
  EXPECT_EQ(tally.last_dirty_step, 2);
}

TEST(AllocTallyTest, MergeCombinesWorkerTallies) {
  AllocTally a;
  a.note(5, AllocCounts{1, 8});
  AllocTally b;
  b.note(9, AllocCounts{4, 128});
  a.merge(b);
  EXPECT_EQ(a.count, 5u);
  EXPECT_EQ(a.bytes, 136u);
  EXPECT_EQ(a.dirty_steps, 2u);
  EXPECT_EQ(a.last_dirty_step, 9);
}

TEST(AllocPublish, ExportsCountersAndWarmupGauge) {
  MetricsRegistry registry;
  AllocTally tally;
  tally.note(7, AllocCounts{3, 256});
  publish(registry, "engine", tally);
  const MetricsSnapshot snap = registry.snapshot();
  const MetricValue* count = snap.find("engine.alloc.count");
  const MetricValue* bytes = snap.find("engine.alloc.bytes");
  const MetricValue* dirty = snap.find("engine.alloc.dirty_steps");
  const MetricValue* warmup = snap.find("engine.alloc.warmup_end_step");
  ASSERT_NE(count, nullptr);
  ASSERT_NE(bytes, nullptr);
  ASSERT_NE(dirty, nullptr);
  ASSERT_NE(warmup, nullptr);
  EXPECT_EQ(count->value, 3);
  EXPECT_EQ(bytes->value, 256);
  EXPECT_EQ(dirty->value, 1);
  EXPECT_EQ(warmup->value, 8);  // last dirty step + 1
}

TEST(AllocPublish, CleanTallyReportsWarmupZero) {
  MetricsRegistry registry;
  publish(registry, "engine", AllocTally{});
  const MetricsSnapshot snap = registry.snapshot();
  const MetricValue* warmup = snap.find("engine.alloc.warmup_end_step");
  ASSERT_NE(warmup, nullptr);
  EXPECT_EQ(warmup->value, 0);  // no instrumented phase ever allocated
}

}  // namespace
}  // namespace dlb::obs
