#include "support/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace dlb {
namespace {

TEST(RunningMoments, EmptyIsZero) {
  RunningMoments rm;
  EXPECT_TRUE(rm.empty());
  EXPECT_EQ(rm.count(), 0u);
  EXPECT_DOUBLE_EQ(rm.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rm.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rm.variation_density(), 0.0);
}

TEST(RunningMoments, SingleValue) {
  RunningMoments rm;
  rm.add(5.0);
  EXPECT_DOUBLE_EQ(rm.mean(), 5.0);
  EXPECT_DOUBLE_EQ(rm.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rm.min(), 5.0);
  EXPECT_DOUBLE_EQ(rm.max(), 5.0);
}

TEST(RunningMoments, KnownSample) {
  RunningMoments rm;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rm.add(x);
  EXPECT_DOUBLE_EQ(rm.mean(), 5.0);
  EXPECT_DOUBLE_EQ(rm.variance(), 4.0);  // classic textbook sample
  EXPECT_DOUBLE_EQ(rm.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(rm.min(), 2.0);
  EXPECT_DOUBLE_EQ(rm.max(), 9.0);
  EXPECT_DOUBLE_EQ(rm.variation_density(), 0.4);
}

TEST(RunningMoments, SampleVarianceUsesBesselCorrection) {
  RunningMoments rm;
  for (double x : {1.0, 2.0, 3.0}) rm.add(x);
  EXPECT_DOUBLE_EQ(rm.sample_variance(), 1.0);
  EXPECT_NEAR(rm.variance(), 2.0 / 3.0, 1e-12);
}

TEST(RunningMoments, MergeMatchesSequential) {
  Rng rng(71);
  RunningMoments whole;
  RunningMoments left;
  RunningMoments right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-3.0, 17.0);
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningMoments, MergeWithEmptySides) {
  RunningMoments filled;
  filled.add(1.0);
  filled.add(3.0);
  RunningMoments empty;
  RunningMoments a = filled;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  RunningMoments b = empty;
  b.merge(filled);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningMoments, NumericallyStableForLargeOffsets) {
  RunningMoments rm;
  // Values around 1e9 with variance 1: naive sum-of-squares would lose
  // all precision here.
  for (double x : {1e9, 1e9 + 1, 1e9 + 2, 1e9 + 3, 1e9 + 4}) rm.add(x);
  EXPECT_NEAR(rm.variance(), 2.0, 1e-6);
}

TEST(PercentileSorted, InterpolatesLinearly) {
  std::vector<double> v{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 1.0 / 3.0), 20.0);
}

TEST(PercentileSorted, RejectsBadInputs) {
  std::vector<double> empty;
  EXPECT_THROW(percentile_sorted(empty, 0.5), contract_error);
  std::vector<double> v{1.0};
  EXPECT_THROW(percentile_sorted(v, 1.5), contract_error);
}

TEST(Summarize, FiveNumberSummary) {
  Summary s = summarize({9.0, 1.0, 5.0, 3.0, 7.0});
  EXPECT_EQ(s.n, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.median, 5.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.p25, 3.0);
  EXPECT_DOUBLE_EQ(s.p75, 7.0);
}

TEST(Summarize, EmptySample) {
  Summary s = summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(SeriesAggregator, PerStepStatistics) {
  SeriesAggregator agg(3);
  agg.add(0, 1.0);
  agg.add(0, 3.0);
  agg.add(1, 10.0);
  agg.add(2, -2.0);
  agg.add(2, 2.0);
  agg.add(2, 6.0);
  EXPECT_DOUBLE_EQ(agg.mean(0), 2.0);
  EXPECT_DOUBLE_EQ(agg.min(0), 1.0);
  EXPECT_DOUBLE_EQ(agg.max(0), 3.0);
  EXPECT_DOUBLE_EQ(agg.mean(1), 10.0);
  EXPECT_DOUBLE_EQ(agg.mean(2), 2.0);
  EXPECT_DOUBLE_EQ(agg.min(2), -2.0);
  EXPECT_DOUBLE_EQ(agg.max(2), 6.0);
}

TEST(SeriesAggregator, MergeCombinesCellWise) {
  SeriesAggregator a(2);
  SeriesAggregator b(2);
  a.add(0, 1.0);
  a.add(1, 10.0);
  b.add(0, 3.0);
  b.add(1, 30.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.mean(0), 2.0);
  EXPECT_DOUBLE_EQ(a.mean(1), 20.0);
  EXPECT_DOUBLE_EQ(a.min(1), 10.0);
  EXPECT_DOUBLE_EQ(a.max(1), 30.0);
  EXPECT_EQ(a.at(0).count(), 2u);
}

TEST(SeriesAggregator, MergeRejectsMismatchedHorizons) {
  SeriesAggregator a(2);
  SeriesAggregator b(3);
  EXPECT_THROW(a.merge(b), contract_error);
}

TEST(SeriesAggregator, RejectsOutOfRangeStep) {
  SeriesAggregator agg(2);
  EXPECT_THROW(agg.add(2, 1.0), contract_error);
  EXPECT_THROW(agg.mean(5), contract_error);
}

}  // namespace
}  // namespace dlb
