#include "support/ring_queue.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <memory>
#include <string>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace dlb {
namespace {

TEST(RingQueue, FifoRoundTrip) {
  RingQueue<int> q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  q.push_back(1);
  q.push_back(2);
  q.push_back(3);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.front(), 1);
  EXPECT_EQ(q.pop_front(), 1);
  EXPECT_EQ(q.pop_front(), 2);
  EXPECT_EQ(q.pop_front(), 3);
  EXPECT_TRUE(q.empty());
}

TEST(RingQueue, GrowsPastMinCapacityPreservingOrder) {
  RingQueue<int> q;
  for (int i = 0; i < 100; ++i) q.push_back(i);
  EXPECT_EQ(q.size(), 100u);
  EXPECT_GE(q.capacity(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(q.pop_front(), i);
}

TEST(RingQueue, WrapAroundReusesStorage) {
  RingQueue<int> q;
  // Prime past the head so subsequent pushes wrap.
  for (int i = 0; i < 6; ++i) q.push_back(i);
  for (int i = 0; i < 6; ++i) q.pop_front();
  const std::size_t cap = q.capacity();
  // Many laps around the buffer: capacity must never change again.
  int next_in = 100;
  int next_out = 100;
  for (int lap = 0; lap < 50; ++lap) {
    for (int i = 0; i < 5; ++i) q.push_back(next_in++);
    for (int i = 0; i < 5; ++i) EXPECT_EQ(q.pop_front(), next_out++);
  }
  EXPECT_EQ(q.capacity(), cap);
}

TEST(RingQueue, RandomAccessUsesLogicalIndices) {
  RingQueue<int> q;
  // Shift the head off zero first so logical != physical.
  for (int i = 0; i < 5; ++i) q.push_back(-1);
  for (int i = 0; i < 5; ++i) q.pop_front();
  for (int i = 0; i < 10; ++i) q.push_back(10 * i);
  for (std::size_t i = 0; i < 10; ++i)
    EXPECT_EQ(q[i], static_cast<int>(10 * i));
}

TEST(RingQueue, EraseMatchesDequeOracle) {
  // Drive a RingQueue and a std::deque with the same random mixed
  // workload (push, pop, middle erase) across many wraparounds; the
  // contents must stay identical throughout.
  RingQueue<std::uint32_t> q;
  std::deque<std::uint32_t> oracle;
  Rng rng(7);
  std::uint32_t next = 0;
  for (int op = 0; op < 5000; ++op) {
    const std::uint64_t choice = rng.below(4);
    if (choice <= 1 || oracle.empty()) {  // bias towards pushes
      q.push_back(next);
      oracle.push_back(next);
      ++next;
    } else if (choice == 2) {
      EXPECT_EQ(q.pop_front(), oracle.front());
      oracle.pop_front();
    } else {
      const auto i = static_cast<std::size_t>(rng.below(oracle.size()));
      q.erase(i);
      oracle.erase(oracle.begin() + static_cast<std::ptrdiff_t>(i));
    }
    ASSERT_EQ(q.size(), oracle.size());
    if (!oracle.empty()) ASSERT_EQ(q.front(), oracle.front());
  }
  for (std::size_t i = 0; i < oracle.size(); ++i) ASSERT_EQ(q[i], oracle[i]);
}

TEST(RingQueue, EraseShiftsTheShorterSide) {
  RingQueue<int> q;
  for (int i = 0; i < 9; ++i) q.push_back(i);  // forces a wrap at cap 8->16
  q.erase(1);  // near the front: shifts the front side
  q.erase(6);  // near the back: shifts the back side
  const int expected[] = {0, 2, 3, 4, 5, 6, 8};
  ASSERT_EQ(q.size(), 7u);
  for (std::size_t i = 0; i < 7; ++i) EXPECT_EQ(q[i], expected[i]);
}

TEST(RingQueue, ClearKeepsCapacity) {
  RingQueue<std::string> q;
  for (int i = 0; i < 20; ++i) q.push_back("payload-" + std::to_string(i));
  const std::size_t cap = q.capacity();
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.capacity(), cap);
  q.push_back("fresh");
  EXPECT_EQ(q.front(), "fresh");
}

TEST(RingQueue, SupportsMoveOnlyTypes) {
  RingQueue<std::unique_ptr<int>> q;
  for (int i = 0; i < 12; ++i) q.push_back(std::make_unique<int>(i));
  for (int i = 0; i < 12; ++i) {
    auto p = q.pop_front();
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(*p, i);
  }
}

TEST(RingQueue, ReserveAvoidsLaterGrowth) {
  RingQueue<int> q;
  q.reserve(100);
  const std::size_t cap = q.capacity();
  EXPECT_GE(cap, 100u);
  for (int i = 0; i < 100; ++i) q.push_back(i);
  EXPECT_EQ(q.capacity(), cap);
}

TEST(RingQueue, FrontAndIndexGuardAgainstMisuse) {
  RingQueue<int> q;
  EXPECT_THROW(q.front(), contract_error);
  EXPECT_THROW(q.pop_front(), contract_error);
  q.push_back(1);
  EXPECT_THROW(q[1], contract_error);
  EXPECT_THROW(q.erase(1), contract_error);
}

}  // namespace
}  // namespace dlb
