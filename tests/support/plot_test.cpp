#include "support/plot.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "support/check.hpp"

namespace dlb {
namespace {

TEST(Plot, RendersGlyphsAndLegend) {
  std::ostringstream os;
  PlotSeries up{"rising", '*', {0, 1, 2, 3, 4, 5}};
  render_plot(os, {up});
  const std::string out = os.str();
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("*=rising"), std::string::npos);
  EXPECT_NE(out.find("step"), std::string::npos);
}

TEST(Plot, RisingSeriesOccupiesCorners) {
  std::ostringstream os;
  PlotOptions opts;
  opts.width = 10;
  opts.height = 5;
  render_plot(os, {PlotSeries{"r", '*', {0, 1, 2, 3, 4}}}, opts);
  std::vector<std::string> lines;
  std::string line;
  std::istringstream is(os.str());
  while (std::getline(is, line)) lines.push_back(line);
  // First canvas row (top) must contain the max at the right edge;
  // last canvas row (bottom) the min at the left edge.
  const std::string& top_row = lines[0];
  const std::string& bottom_row = lines[4];
  EXPECT_EQ(top_row.back(), '*');
  EXPECT_EQ(bottom_row[bottom_row.find('|') + 1], '*');
}

TEST(Plot, MultipleSeriesOverdrawInOrder) {
  std::ostringstream os;
  PlotSeries a{"first", 'a', {1, 1, 1}};
  PlotSeries b{"second", 'b', {1, 1, 1}};  // identical: b overdraws a
  render_plot(os, {a, b});
  std::istringstream is(os.str());
  std::string line;
  bool saw_b_in_canvas = false;
  while (std::getline(is, line)) {
    const auto bar = line.find('|');
    if (bar == std::string::npos) continue;  // not a canvas row
    const std::string canvas = line.substr(bar + 1);
    EXPECT_EQ(canvas.find('a'), std::string::npos) << line;
    if (canvas.find('b') != std::string::npos) saw_b_in_canvas = true;
  }
  EXPECT_TRUE(saw_b_in_canvas);
  // 'a' survives in the legend.
  EXPECT_NE(os.str().find("a=first"), std::string::npos);
}

TEST(Plot, FixedRangeClampsOutliers) {
  std::ostringstream os;
  PlotOptions opts;
  opts.y_min = 0.0;
  opts.y_max = 1.0;
  render_plot(os, {PlotSeries{"s", '*', {-5.0, 0.5, 100.0}}}, opts);
  EXPECT_NE(os.str().find('*'), std::string::npos);
}

TEST(Plot, FlatSeriesDoesNotDivideByZero) {
  std::ostringstream os;
  render_plot(os, {PlotSeries{"flat", '*', {2.0, 2.0, 2.0}}});
  EXPECT_NE(os.str().find('*'), std::string::npos);
}

TEST(Plot, SinglePointSeries) {
  std::ostringstream os;
  render_plot(os, {PlotSeries{"dot", '*', {1.0}}});
  EXPECT_NE(os.str().find('*'), std::string::npos);
}

TEST(Plot, RejectsDegenerateInput) {
  std::ostringstream os;
  EXPECT_THROW(render_plot(os, {}), contract_error);
  EXPECT_THROW(render_plot(os, {PlotSeries{"empty", '*', {}}}),
               contract_error);
  PlotOptions tiny;
  tiny.width = 2;
  EXPECT_THROW(render_plot(os, {PlotSeries{"s", '*', {1.0}}}, tiny),
               contract_error);
}

}  // namespace
}  // namespace dlb
