#include "support/check.hpp"

#include <gtest/gtest.h>

#include <string>

namespace dlb {
namespace {

TEST(Check, RequirePassesOnTrue) {
  EXPECT_NO_THROW(DLB_REQUIRE(1 + 1 == 2, "math works"));
}

TEST(Check, RequireThrowsContractError) {
  EXPECT_THROW(DLB_REQUIRE(false, "boom"), contract_error);
}

TEST(Check, EnsureThrowsContractError) {
  EXPECT_THROW(DLB_ENSURE(false, "boom"), contract_error);
}

TEST(Check, MessageContainsExpressionLocationAndText) {
  try {
    DLB_REQUIRE(2 > 3, "two is not bigger");
    FAIL() << "should have thrown";
  } catch (const contract_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 > 3"), std::string::npos);
    EXPECT_NE(what.find("check_test.cpp"), std::string::npos);
    EXPECT_NE(what.find("two is not bigger"), std::string::npos);
    EXPECT_NE(what.find("precondition"), std::string::npos);
  }
}

TEST(Check, EnsureIsLabelledInvariant) {
  try {
    DLB_ENSURE(false, "state corrupt");
    FAIL() << "should have thrown";
  } catch (const contract_error& e) {
    EXPECT_NE(std::string(e.what()).find("invariant"), std::string::npos);
  }
}

TEST(Check, ContractErrorIsLogicError) {
  // Callers may catch std::logic_error generically.
  EXPECT_THROW(DLB_REQUIRE(false, ""), std::logic_error);
}

}  // namespace
}  // namespace dlb
