#include "support/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "support/check.hpp"

namespace dlb {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable table({"name", "value"});
  table.row().cell("alpha").cell(1.5, 2);
  table.row().cell("beta").cell(42LL);
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.50"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
}

TEST(TextTable, CsvRoundTrip) {
  TextTable table({"a", "b", "c"});
  table.row().cell(1).cell(2).cell(3);
  table.row().cell(4).cell(5).cell(6);
  std::ostringstream os;
  table.write_csv(os);
  EXPECT_EQ(os.str(), "a,b,c\n1,2,3\n4,5,6\n");
}

TEST(TextTable, CellWithoutRowThrows) {
  TextTable table({"x"});
  EXPECT_THROW(table.cell("oops"), contract_error);
}

TEST(TextTable, OverfullRowThrows) {
  TextTable table({"x"});
  table.row().cell("ok");
  EXPECT_THROW(table.cell("too many"), contract_error);
}

TEST(TextTable, IncompletePreviousRowThrows) {
  TextTable table({"x", "y"});
  table.row().cell("only one");
  EXPECT_THROW(table.row(), contract_error);
}

TEST(TextTable, EmptyHeaderListThrows) {
  EXPECT_THROW(TextTable({}), contract_error);
}

TEST(FormatDouble, FixedPrecision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 0), "2");
  EXPECT_EQ(format_double(-0.5, 3), "-0.500");
}

TEST(TextTable, NumericCellsRightAligned) {
  TextTable table({"metric", "value"});
  table.row().cell("count").cell(7);
  std::ostringstream os;
  table.print(os);
  // The value column header is "value" (5 wide); "7" should be padded
  // on the left (right-aligned) -> the line ends with "    7".
  const std::string out = os.str();
  EXPECT_NE(out.find("    7"), std::string::npos);
}

}  // namespace
}  // namespace dlb
