#include "support/cli.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "support/check.hpp"

namespace dlb {
namespace {

// argv helper: builds a mutable char** from string literals.
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : storage_(std::move(args)) {
    for (auto& s : storage_) pointers_.push_back(s.data());
  }
  int argc() const { return static_cast<int>(pointers_.size()); }
  char** argv() { return pointers_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> pointers_;
};

CliOptions make_options() {
  CliOptions opts;
  opts.add_int("runs", 100, "number of runs")
      .add_double("f", 1.1, "trigger factor")
      .add_string("mode", "default", "mode name")
      .add_flag("verbose", "print more");
  return opts;
}

TEST(CliOptions, DefaultsWithoutArguments) {
  auto opts = make_options();
  Argv argv({"prog"});
  ASSERT_TRUE(opts.parse(argv.argc(), argv.argv()));
  EXPECT_EQ(opts.get_int("runs"), 100);
  EXPECT_DOUBLE_EQ(opts.get_double("f"), 1.1);
  EXPECT_EQ(opts.get_string("mode"), "default");
  EXPECT_FALSE(opts.get_flag("verbose"));
}

TEST(CliOptions, EqualsSyntax) {
  auto opts = make_options();
  Argv argv({"prog", "--runs=7", "--f=1.8", "--mode=fast", "--verbose"});
  ASSERT_TRUE(opts.parse(argv.argc(), argv.argv()));
  EXPECT_EQ(opts.get_int("runs"), 7);
  EXPECT_DOUBLE_EQ(opts.get_double("f"), 1.8);
  EXPECT_EQ(opts.get_string("mode"), "fast");
  EXPECT_TRUE(opts.get_flag("verbose"));
}

TEST(CliOptions, SpaceSeparatedValue) {
  auto opts = make_options();
  Argv argv({"prog", "--runs", "55"});
  ASSERT_TRUE(opts.parse(argv.argc(), argv.argv()));
  EXPECT_EQ(opts.get_int("runs"), 55);
}

TEST(CliOptions, FlagWithExplicitZeroIsFalse) {
  auto opts = make_options();
  Argv argv({"prog", "--verbose=0"});
  ASSERT_TRUE(opts.parse(argv.argc(), argv.argv()));
  EXPECT_FALSE(opts.get_flag("verbose"));
}

TEST(CliOptions, NegativeNumbersParse) {
  auto opts = make_options();
  Argv argv({"prog", "--runs=-3", "--f=-1.5"});
  ASSERT_TRUE(opts.parse(argv.argc(), argv.argv()));
  EXPECT_EQ(opts.get_int("runs"), -3);
  EXPECT_DOUBLE_EQ(opts.get_double("f"), -1.5);
}

TEST(CliOptions, UnknownOptionFails) {
  auto opts = make_options();
  Argv argv({"prog", "--bogus=1"});
  EXPECT_FALSE(opts.parse(argv.argc(), argv.argv()));
}

TEST(CliOptions, HelpReturnsFalse) {
  auto opts = make_options();
  Argv argv({"prog", "--help"});
  EXPECT_FALSE(opts.parse(argv.argc(), argv.argv()));
}

TEST(CliOptions, MalformedIntegerFails) {
  auto opts = make_options();
  Argv argv({"prog", "--runs=abc"});
  EXPECT_FALSE(opts.parse(argv.argc(), argv.argv()));
}

TEST(CliOptions, MalformedDoubleFails) {
  auto opts = make_options();
  Argv argv({"prog", "--f=1.1x"});
  EXPECT_FALSE(opts.parse(argv.argc(), argv.argv()));
}

TEST(CliOptions, MissingValueFails) {
  auto opts = make_options();
  Argv argv({"prog", "--runs"});
  EXPECT_FALSE(opts.parse(argv.argc(), argv.argv()));
}

TEST(CliOptions, UndeclaredLookupThrows) {
  auto opts = make_options();
  EXPECT_THROW(opts.get_int("nothere"), contract_error);
  EXPECT_THROW(opts.get_int("f"), contract_error);  // kind mismatch
}

TEST(CliOptions, DuplicateDeclarationThrows) {
  CliOptions opts;
  opts.add_int("x", 1, "first");
  EXPECT_THROW(opts.add_double("x", 2.0, "dup"), contract_error);
}

}  // namespace
}  // namespace dlb
