#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "support/check.hpp"

namespace dlb {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowRejectsZeroBound) {
  Rng rng(5);
  EXPECT_THROW(rng.below(0), contract_error);
}

TEST(Rng, BelowIsApproximatelyUniform) {
  Rng rng(2024);
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(kBuckets)];
  // Each bucket expects 10000; allow 5 sigma (~sqrt(9000) ≈ 95 -> 475).
  for (int c : counts) EXPECT_NEAR(c, kDraws / kBuckets, 500);
}

TEST(Rng, RangeInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, RangeSingleton) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.range(42, 42), 42);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(17);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(1.5, 2.5);
    EXPECT_GE(u, 1.5);
    EXPECT_LT(u, 2.5);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (parent.next() == child.next()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, SampleDistinctProducesDistinctValues) {
  Rng rng(37);
  for (int trial = 0; trial < 100; ++trial) {
    auto sample = rng.sample_distinct(20, 7, 20);
    std::set<std::uint32_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 7u);
    for (std::uint32_t v : sample) EXPECT_LT(v, 20u);
  }
}

TEST(Rng, SampleDistinctHonorsExclusion) {
  Rng rng(41);
  for (int trial = 0; trial < 200; ++trial) {
    auto sample = rng.sample_distinct(10, 5, 3);
    for (std::uint32_t v : sample) {
      EXPECT_NE(v, 3u);
      EXPECT_LT(v, 10u);
    }
  }
}

TEST(Rng, SampleDistinctFullDraw) {
  Rng rng(43);
  auto sample = rng.sample_distinct(5, 4, 0);  // all but the excluded 0
  std::set<std::uint32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique, (std::set<std::uint32_t>{1, 2, 3, 4}));
}

TEST(Rng, SampleDistinctRejectsOversizedRequest) {
  Rng rng(47);
  EXPECT_THROW(rng.sample_distinct(5, 5, 0), contract_error);
  EXPECT_THROW(rng.sample_distinct(5, 6, 5), contract_error);
}

TEST(Rng, SampleDistinctIsRoughlyUniform) {
  Rng rng(53);
  std::vector<int> counts(8, 0);
  constexpr int kTrials = 40000;
  for (int trial = 0; trial < kTrials; ++trial) {
    for (std::uint32_t v : rng.sample_distinct(8, 2, 8)) ++counts[v];
  }
  // Each of the 8 values expects kTrials * 2 / 8 hits.
  for (int c : counts) EXPECT_NEAR(c, kTrials / 4, kTrials / 40);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(59);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleMovesElements) {
  Rng rng(61);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);
}

}  // namespace
}  // namespace dlb
