#include "support/spsc_ring.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace dlb {
namespace {

TEST(SpscRing, PushPopRoundTrip) {
  SpscRing<int> ring(4);
  EXPECT_TRUE(ring.empty());
  EXPECT_TRUE(ring.push(1));
  EXPECT_TRUE(ring.push(2));
  EXPECT_FALSE(ring.empty());
  int out = 0;
  EXPECT_TRUE(ring.pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(ring.pop(out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(ring.pop(out));
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, RejectsPushWhenFull) {
  SpscRing<int> ring(4);  // capacity rounds to a power of two (4)
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.push(i));
  EXPECT_FALSE(ring.push(99));
  int out = 0;
  EXPECT_TRUE(ring.pop(out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(ring.push(99));  // freed slot is reusable
  for (int expected : {1, 2, 3, 99}) {
    EXPECT_TRUE(ring.pop(out));
    EXPECT_EQ(out, expected);
  }
}

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  SpscRing<int> ring(5);  // rounds to 8
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.push(i));
  EXPECT_FALSE(ring.push(8));
}

TEST(SpscRing, WrapsAroundManyTimes) {
  SpscRing<std::uint32_t> ring(8);
  std::uint32_t next_in = 0;
  std::uint32_t next_out = 0;
  for (int round = 0; round < 1000; ++round) {
    for (int i = 0; i < 5; ++i) ASSERT_TRUE(ring.push(next_in++));
    for (int i = 0; i < 5; ++i) {
      std::uint32_t out = 0;
      ASSERT_TRUE(ring.pop(out));
      ASSERT_EQ(out, next_out++);
    }
  }
  EXPECT_TRUE(ring.empty());
}

// The contract the async engine relies on: one producer, one consumer,
// no locks — every value arrives exactly once, in order.  Run under the
// tsan preset this also proves the acquire/release pairing.
TEST(SpscRing, SingleProducerSingleConsumerDeliversInOrder) {
  constexpr std::uint32_t kCount = 100000;
  SpscRing<std::uint32_t> ring(64);
  std::vector<std::uint32_t> received;
  received.reserve(kCount);
  std::thread consumer([&] {
    std::uint32_t out = 0;
    while (received.size() < kCount)
      if (ring.pop(out)) received.push_back(out);
  });
  for (std::uint32_t i = 0; i < kCount; ++i)
    while (!ring.push(i)) std::this_thread::yield();
  consumer.join();
  ASSERT_EQ(received.size(), kCount);
  for (std::uint32_t i = 0; i < kCount; ++i) ASSERT_EQ(received[i], i);
}

}  // namespace
}  // namespace dlb
