#include "support/spsc_ring.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "support/ring_queue.hpp"

namespace dlb {
namespace {

TEST(SpscRing, PushPopRoundTrip) {
  SpscRing<int> ring(4);
  EXPECT_TRUE(ring.empty());
  EXPECT_TRUE(ring.push(1));
  EXPECT_TRUE(ring.push(2));
  EXPECT_FALSE(ring.empty());
  int out = 0;
  EXPECT_TRUE(ring.pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(ring.pop(out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(ring.pop(out));
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, RejectsPushWhenFull) {
  SpscRing<int> ring(4);  // capacity rounds to a power of two (4)
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.push(i));
  EXPECT_FALSE(ring.push(99));
  int out = 0;
  EXPECT_TRUE(ring.pop(out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(ring.push(99));  // freed slot is reusable
  for (int expected : {1, 2, 3, 99}) {
    EXPECT_TRUE(ring.pop(out));
    EXPECT_EQ(out, expected);
  }
}

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  SpscRing<int> ring(5);  // rounds to 8
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.push(i));
  EXPECT_FALSE(ring.push(8));
}

TEST(SpscRing, WrapsAroundManyTimes) {
  SpscRing<std::uint32_t> ring(8);
  std::uint32_t next_in = 0;
  std::uint32_t next_out = 0;
  for (int round = 0; round < 1000; ++round) {
    for (int i = 0; i < 5; ++i) ASSERT_TRUE(ring.push(next_in++));
    for (int i = 0; i < 5; ++i) {
      std::uint32_t out = 0;
      ASSERT_TRUE(ring.pop(out));
      ASSERT_EQ(out, next_out++);
    }
  }
  EXPECT_TRUE(ring.empty());
}

// The contract the async engine relies on: one producer, one consumer,
// no locks — every value arrives exactly once, in order.  Run under the
// tsan preset this also proves the acquire/release pairing.
TEST(SpscRing, SingleProducerSingleConsumerDeliversInOrder) {
  constexpr std::uint32_t kCount = 100000;
  SpscRing<std::uint32_t> ring(64);
  std::vector<std::uint32_t> received;
  received.reserve(kCount);
  std::thread consumer([&] {
    std::uint32_t out = 0;
    while (received.size() < kCount)
      if (ring.pop(out)) received.push_back(out);
  });
  for (std::uint32_t i = 0; i < kCount; ++i)
    while (!ring.push(i)) std::this_thread::yield();
  consumer.join();
  ASSERT_EQ(received.size(), kCount);
  for (std::uint32_t i = 0; i < kCount; ++i) ASSERT_EQ(received[i], i);
}

// The overflow discipline the async engine layers on top of the ring: a
// full push parks the message in a sender-local pending queue, and the
// pending queue is flushed ahead of any new message, so FIFO order
// survives arbitrary interleavings of overflow and drain.  A tiny ring
// against bursty production makes overflow the common case.
TEST(SpscRing, PendingOverflowBufferPreservesFifoUnderStress) {
  constexpr std::uint32_t kCount = 50000;
  SpscRing<std::uint32_t> ring(8);
  std::vector<std::uint32_t> received;
  received.reserve(kCount);
  std::thread consumer([&] {
    std::uint32_t out = 0;
    std::uint32_t spins = 0;
    while (received.size() < kCount) {
      if (ring.pop(out)) {
        received.push_back(out);
        // Stall periodically so the producer's ring fills up and the
        // pending path is exercised thousands of times.
        if ((++spins & 0x3FF) == 0) std::this_thread::yield();
      }
    }
  });
  RingQueue<std::uint32_t> pending;
  const auto offer = [&](std::uint32_t value) {
    // Older parked messages go first; only an empty pending queue lets
    // the new message take the fast path straight into the ring.
    while (!pending.empty() && ring.push(pending.front())) pending.pop_front();
    if (!pending.empty() || !ring.push(value)) pending.push_back(value);
  };
  for (std::uint32_t burst = 0; burst * 100 < kCount; ++burst)
    for (std::uint32_t i = 0; i < 100; ++i) offer(burst * 100 + i);
  while (!pending.empty()) {  // final drain of the parked tail
    if (ring.push(pending.front()))
      pending.pop_front();
    else
      std::this_thread::yield();
  }
  consumer.join();
  ASSERT_EQ(received.size(), kCount);
  for (std::uint32_t i = 0; i < kCount; ++i) ASSERT_EQ(received[i], i);
}

}  // namespace
}  // namespace dlb
