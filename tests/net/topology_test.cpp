#include "net/topology.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "support/check.hpp"

namespace dlb {
namespace {

TEST(Topology, CompleteGraphProperties) {
  const auto topo = Topology::complete(8);
  EXPECT_EQ(topo.size(), 8u);
  EXPECT_EQ(topo.edge_count(), 8u * 7u / 2u);
  EXPECT_TRUE(topo.connected());
  EXPECT_EQ(topo.diameter(), 1u);
  for (ProcId u = 0; u < 8; ++u) EXPECT_EQ(topo.degree(u), 7u);
  EXPECT_EQ(topo.distance(2, 5), 1u);
  EXPECT_EQ(topo.distance(3, 3), 0u);
}

TEST(Topology, RingProperties) {
  const auto topo = Topology::ring(10);
  EXPECT_EQ(topo.edge_count(), 10u);
  EXPECT_TRUE(topo.connected());
  EXPECT_EQ(topo.diameter(), 5u);
  EXPECT_EQ(topo.distance(0, 5), 5u);
  EXPECT_EQ(topo.distance(0, 9), 1u);
  for (ProcId u = 0; u < 10; ++u) EXPECT_EQ(topo.degree(u), 2u);
}

TEST(Topology, RingOfTwo) {
  const auto topo = Topology::ring(2);
  EXPECT_EQ(topo.edge_count(), 1u);
  EXPECT_EQ(topo.distance(0, 1), 1u);
}

TEST(Topology, Torus2DProperties) {
  const auto topo = Topology::torus2d(4, 4);
  EXPECT_EQ(topo.size(), 16u);
  EXPECT_TRUE(topo.connected());
  for (ProcId u = 0; u < 16; ++u) EXPECT_EQ(topo.degree(u), 4u);
  // 4x4 torus diameter = 2 + 2.
  EXPECT_EQ(topo.diameter(), 4u);
  // Wrap-around: (0,0) and (3,0) are adjacent.
  EXPECT_EQ(topo.distance(0, 12), 1u);
}

TEST(Topology, HypercubeProperties) {
  const auto topo = Topology::hypercube(5);
  EXPECT_EQ(topo.size(), 32u);
  EXPECT_TRUE(topo.connected());
  EXPECT_EQ(topo.diameter(), 5u);
  for (ProcId u = 0; u < 32; ++u) EXPECT_EQ(topo.degree(u), 5u);
  // Distance equals Hamming distance.
  EXPECT_EQ(topo.distance(0b00000, 0b10101), 3u);
}

TEST(Topology, DeBruijnProperties) {
  const auto topo = Topology::de_bruijn(4);
  EXPECT_EQ(topo.size(), 16u);
  EXPECT_TRUE(topo.connected());
  // Binary de Bruijn on 2^d nodes has diameter d.
  EXPECT_LE(topo.diameter(), 4u);
  for (ProcId u = 0; u < 16; ++u) EXPECT_LE(topo.degree(u), 4u);
}

TEST(Topology, Mesh2DProperties) {
  const auto topo = Topology::mesh2d(3, 4);
  EXPECT_EQ(topo.size(), 12u);
  EXPECT_TRUE(topo.connected());
  // Corner degree 2, edge degree 3, interior degree 4.
  EXPECT_EQ(topo.degree(0), 2u);
  EXPECT_EQ(topo.degree(1), 3u);
  EXPECT_EQ(topo.degree(5), 4u);
  // No wrap-around: (0,0) to (2,3) takes 2+3 hops.
  EXPECT_EQ(topo.distance(0, 11), 5u);
  EXPECT_EQ(topo.diameter(), 5u);
}

TEST(Topology, CubeConnectedCyclesProperties) {
  const unsigned d = 3;
  const auto topo = Topology::cube_connected_cycles(d);
  EXPECT_EQ(topo.size(), d * 8u);
  EXPECT_TRUE(topo.connected());
  // CCC is 3-regular.
  for (ProcId u = 0; u < topo.size(); ++u) EXPECT_EQ(topo.degree(u), 3u);
}

TEST(Topology, ButterflyProperties) {
  const unsigned d = 3;
  const auto topo = Topology::butterfly(d);
  EXPECT_EQ(topo.size(), d * 8u);
  EXPECT_TRUE(topo.connected());
  // The wrapped butterfly is 4-regular.
  for (ProcId u = 0; u < topo.size(); ++u) EXPECT_EQ(topo.degree(u), 4u);
  // Diameter of the wrapped butterfly is about floor(3d/2).
  EXPECT_LE(topo.diameter(), 3u * d / 2u + 1u);
}

TEST(Topology, BinaryTreeProperties) {
  const auto topo = Topology::binary_tree(4);
  EXPECT_EQ(topo.size(), 15u);
  EXPECT_TRUE(topo.connected());
  EXPECT_EQ(topo.degree(0), 2u);    // root
  EXPECT_EQ(topo.degree(1), 3u);    // internal
  EXPECT_EQ(topo.degree(14), 1u);   // leaf
  EXPECT_EQ(topo.edge_count(), 14u);
  // Leaf-to-leaf through the root.
  EXPECT_EQ(topo.distance(7, 14), 6u);
  EXPECT_EQ(topo.diameter(), 6u);
}

TEST(Topology, BalancedTorusFactorization) {
  // 64 = 8x8, 12 = 3x4 (rows = largest divisor <= sqrt), 7 -> ring.
  EXPECT_EQ(Topology::balanced_torus(64).kind(), TopologyKind::Torus2D);
  EXPECT_EQ(Topology::balanced_torus(64).size(), 64u);
  EXPECT_EQ(Topology::balanced_torus(64).diameter(), 8u);  // 8x8 torus
  EXPECT_EQ(Topology::balanced_torus(12).size(), 12u);
  EXPECT_EQ(Topology::balanced_torus(7).kind(), TopologyKind::Ring);
  EXPECT_EQ(Topology::balanced_torus(7).size(), 7u);
  EXPECT_THROW(Topology::balanced_torus(1), contract_error);
}

TEST(Topology, RandomRegularIsConnectedAndDeterministic) {
  const auto a = Topology::random_regular(20, 4, 99);
  const auto b = Topology::random_regular(20, 4, 99);
  EXPECT_TRUE(a.connected());
  EXPECT_EQ(a.edge_count(), b.edge_count());
  for (ProcId u = 0; u < 20; ++u)
    EXPECT_EQ(a.neighbors(u), b.neighbors(u));
  // Different seed -> (almost surely) different graph.
  const auto c = Topology::random_regular(20, 4, 100);
  bool any_diff = false;
  for (ProcId u = 0; u < 20; ++u)
    any_diff |= (a.neighbors(u) != c.neighbors(u));
  EXPECT_TRUE(any_diff);
}

TEST(Topology, NeighborsAreSymmetric) {
  for (const auto& topo :
       {Topology::ring(7), Topology::torus2d(3, 5), Topology::hypercube(4),
        Topology::de_bruijn(3), Topology::random_regular(15, 4, 1),
        Topology::mesh2d(3, 3), Topology::cube_connected_cycles(3),
        Topology::butterfly(3), Topology::binary_tree(3)}) {
    for (ProcId u = 0; u < topo.size(); ++u) {
      for (ProcId v : topo.neighbors(u)) {
        const auto& back = topo.neighbors(v);
        EXPECT_TRUE(std::find(back.begin(), back.end(), u) != back.end())
            << topo.describe() << " edge " << u << "-" << v;
      }
    }
  }
}

TEST(Topology, NoSelfLoopsOrDuplicates) {
  for (const auto& topo :
       {Topology::complete(6), Topology::ring(6), Topology::de_bruijn(3),
        Topology::random_regular(9, 4, 5)}) {
    for (ProcId u = 0; u < topo.size(); ++u) {
      std::set<ProcId> seen;
      for (ProcId v : topo.neighbors(u)) {
        EXPECT_NE(v, u) << topo.describe();
        EXPECT_TRUE(seen.insert(v).second) << topo.describe();
      }
    }
  }
}

TEST(Topology, DistanceIsSymmetricAndTriangular) {
  const auto topo = Topology::torus2d(4, 5);
  for (ProcId u = 0; u < topo.size(); u += 3) {
    for (ProcId v = 0; v < topo.size(); v += 4) {
      EXPECT_EQ(topo.distance(u, v), topo.distance(v, u));
      for (ProcId w = 0; w < topo.size(); w += 7) {
        EXPECT_LE(topo.distance(u, w),
                  topo.distance(u, v) + topo.distance(v, w));
      }
    }
  }
}

TEST(Topology, InvalidConstructionThrows) {
  EXPECT_THROW(Topology::ring(1), contract_error);
  EXPECT_THROW(Topology::torus2d(1, 5), contract_error);
  EXPECT_THROW(Topology::hypercube(0), contract_error);
  EXPECT_THROW(Topology::random_regular(2, 4, 1), contract_error);
  EXPECT_THROW(Topology::mesh2d(1, 1), contract_error);
  EXPECT_THROW(Topology::cube_connected_cycles(2), contract_error);
  EXPECT_THROW(Topology::butterfly(1), contract_error);
  EXPECT_THROW(Topology::binary_tree(1), contract_error);
}

TEST(Topology, OutOfRangeQueriesThrow) {
  const auto topo = Topology::ring(4);
  EXPECT_THROW(topo.neighbors(4), contract_error);
  EXPECT_THROW(topo.distance(0, 9), contract_error);
}

TEST(Topology, DescribeMentionsKindAndSize) {
  const auto topo = Topology::hypercube(3);
  const std::string desc = topo.describe();
  EXPECT_NE(desc.find("hypercube"), std::string::npos);
  EXPECT_NE(desc.find("n=8"), std::string::npos);
}

}  // namespace
}  // namespace dlb
