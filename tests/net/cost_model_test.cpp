#include "net/cost_model.hpp"

#include <gtest/gtest.h>

namespace dlb {
namespace {

TEST(CostLedger, OperationAccounting) {
  CostLedger ledger;
  ledger.record_operation(0, 3);
  ledger.record_operation(1, 1);
  EXPECT_EQ(ledger.totals().balance_ops, 2u);
  EXPECT_EQ(ledger.totals().messages, 8u);  // 2 per partner
  EXPECT_EQ(ledger.totals().partner_links, 4u);
}

TEST(CostLedger, MigrationWithoutTopologyCountsOneHop) {
  CostLedger ledger;
  ledger.record_migration(0, 5, 10);
  EXPECT_EQ(ledger.totals().packets_moved, 10u);
  EXPECT_EQ(ledger.totals().packet_hops, 10u);
}

TEST(CostLedger, MigrationUsesTopologyDistance) {
  const auto ring = Topology::ring(8);
  CostLedger ledger(&ring);
  ledger.record_migration(0, 4, 3);  // distance 4 on an 8-ring
  EXPECT_EQ(ledger.totals().packets_moved, 3u);
  EXPECT_EQ(ledger.totals().packet_hops, 12u);
}

TEST(CostLedger, SelfAndZeroMigrationsIgnored) {
  CostLedger ledger;
  ledger.record_migration(2, 2, 100);
  ledger.record_migration(0, 1, 0);
  EXPECT_EQ(ledger.totals().packets_moved, 0u);
}

TEST(CostLedger, DerivedRates) {
  CostLedger ledger;
  EXPECT_DOUBLE_EQ(ledger.packets_per_operation(), 0.0);
  EXPECT_DOUBLE_EQ(ledger.hops_per_packet(), 0.0);
  ledger.record_operation(0, 2);
  ledger.record_operation(0, 2);
  ledger.record_migration(0, 1, 6);
  EXPECT_DOUBLE_EQ(ledger.packets_per_operation(), 3.0);
  EXPECT_DOUBLE_EQ(ledger.hops_per_packet(), 1.0);
}

TEST(CostLedger, NetMigrationTracksSeparately) {
  CostLedger ledger;
  ledger.record_migration(0, 1, 10);
  ledger.record_net_migration(4);
  EXPECT_EQ(ledger.totals().packets_moved, 10u);
  EXPECT_EQ(ledger.totals().packets_moved_net, 4u);
}

TEST(CostLedger, ResetClearsTotals) {
  CostLedger ledger;
  ledger.record_operation(0, 1);
  ledger.record_migration(0, 1, 5);
  ledger.reset();
  EXPECT_EQ(ledger.totals().balance_ops, 0u);
  EXPECT_EQ(ledger.totals().packets_moved, 0u);
}

TEST(CostTotals, Accumulate) {
  CostTotals a;
  a.balance_ops = 1;
  a.messages = 2;
  CostTotals b;
  b.balance_ops = 3;
  b.packets_moved = 7;
  a += b;
  EXPECT_EQ(a.balance_ops, 4u);
  EXPECT_EQ(a.messages, 2u);
  EXPECT_EQ(a.packets_moved, 7u);
}

}  // namespace
}  // namespace dlb
