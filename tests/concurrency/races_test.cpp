// Thread-safety regression tests.  These exist to fail under
// ThreadSanitizer (the tsan preset runs this binary): each test pins a
// const API that used to carry a hidden mutable write — a benign-looking
// data race that blocked sharing these objects across threads — plus the
// determinism and conservation contracts of the sharded step driver.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "core/ledger.hpp"
#include "core/system.hpp"
#include "support/check.hpp"
#include "metrics/recorder.hpp"
#include "support/rng.hpp"
#include "workload/workload.hpp"

namespace dlb {
namespace {

BalancerConfig cfg(double f = 1.5, std::uint32_t delta = 2,
                   std::uint32_t cap = 4) {
  BalancerConfig c;
  c.f = f;
  c.delta = delta;
  c.borrow_cap = cap;
  return c;
}

// Workload::find_phase used to advance a mutable per-processor cursor
// from const sample(), racing when two threads shared one Workload.  Now
// lookup is stateless: concurrent const sampling must be clean (TSan)
// and agree with a single-threaded pass (each thread brings its own Rng,
// seeded identically, so the draws match).
TEST(SharedWorkload, ConcurrentSamplingIsRaceFreeAndDeterministic) {
  Rng layout(11);
  const WorkloadParams params;
  const Workload wl = Workload::paper_benchmark(32, 400, params, layout);

  std::vector<WorkEvent> expected;
  {
    Rng rng(5005);
    for (std::uint32_t t = 0; t < wl.horizon(); ++t)
      for (std::uint32_t p = 0; p < wl.processors(); ++p)
        expected.push_back(wl.sample(p, t, rng));
  }

  constexpr int kThreads = 4;
  std::vector<std::vector<WorkEvent>> results(kThreads);
  {
    std::vector<std::jthread> threads;
    for (int i = 0; i < kThreads; ++i) {
      threads.emplace_back([&wl, &out = results[static_cast<std::size_t>(i)]] {
        Rng rng(5005);
        for (std::uint32_t t = 0; t < wl.horizon(); ++t)
          for (std::uint32_t p = 0; p < wl.processors(); ++p)
            out.push_back(wl.sample(p, t, rng));
      });
    }
  }
  for (const auto& result : results) {
    ASSERT_EQ(result.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(result[i].generate, expected[i].generate);
      EXPECT_EQ(result[i].consume, expected[i].consume);
    }
  }
}

// Ledger::d/b const lookups used to refresh a mutable slot hint, so two
// threads *reading* one ledger raced.  Const access is now write-free.
TEST(SharedLedger, ConcurrentConstReadsAreRaceFree) {
  Ledger ledger(256);
  for (std::uint32_t j = 0; j < 256; j += 3) ledger.add_real(j, j + 1);
  ledger.borrow(3);
  ledger.borrow(9);
  const Ledger& shared = ledger;

  constexpr int kThreads = 4;
  std::vector<std::int64_t> sums(kThreads, 0);
  {
    std::vector<std::jthread> threads;
    for (int i = 0; i < kThreads; ++i) {
      threads.emplace_back([&shared, i, &sum = sums[static_cast<std::size_t>(i)]] {
        // Interleave ascending and descending scans so the threads keep
        // asking for *different* classes at the same time — the pattern
        // that made the shared hint thrash.
        for (int pass = 0; pass < 50; ++pass) {
          for (std::uint32_t j = 0; j < 256; ++j) {
            const std::uint32_t q = (i % 2 == 0) ? j : 255 - j;
            sum += shared.d(q) + shared.b(q);
          }
        }
      });
    }
  }
  for (int i = 1; i < kThreads; ++i) EXPECT_EQ(sums[0], sums[static_cast<std::size_t>(i)]);
}

// run_parallel contract: a (seed, workload, shards) triple fully
// determines the run.
TEST(RunParallel, SameSeedAndShardsReproduceTheRun) {
  Rng layout(21);
  const WorkloadParams params;
  const Workload wl = Workload::paper_benchmark(64, 500, params, layout);
  for (std::uint32_t shards : {1u, 3u, 4u}) {
    System a(wl.processors(), cfg(), 909);
    System b(wl.processors(), cfg(), 909);
    a.run_parallel(wl, shards);
    b.run_parallel(wl, shards);
    EXPECT_EQ(a.loads(), b.loads()) << shards << " shards";
    EXPECT_EQ(a.total_generated(), b.total_generated());
    EXPECT_EQ(a.total_consumed(), b.total_consumed());
    EXPECT_EQ(a.balance_operations(), b.balance_operations());
    EXPECT_EQ(a.rng().state(), b.rng().state());
  }
}

// Packet conservation holds after every step of a sharded run, for any
// shard count (including shard boundaries cutting through the hotspot).
TEST(RunParallel, ConservesPacketsEveryStepUnderSharding) {
  const Workload wl = Workload::sparse_hotspot(96, 300, 13, 0.8, 0.5);
  for (std::uint32_t shards : {1u, 2u, 5u}) {
    System sys(wl.processors(), cfg(), 4321);
    sys.set_post_step_check(true);  // check_invariants after every step
    sys.run_parallel(wl, shards);
    EXPECT_EQ(sys.total_load(),
              static_cast<std::int64_t>(sys.total_generated()) -
                  static_cast<std::int64_t>(sys.total_consumed()));
  }
}

// run_async contract (deterministic mode): a (seed, workload, shards,
// epoch_steps) tuple fully determines the run — the token-serialized
// operation layer leaves no room for timing to leak into the result.
TEST(RunAsync, SameSeedAndShardsReproduceTheRun) {
  Rng layout(21);
  const WorkloadParams params;
  const Workload wl = Workload::paper_benchmark(64, 500, params, layout);
  for (std::uint32_t shards : {1u, 2u, 4u}) {
    System a(wl.processors(), cfg(), 909);
    System b(wl.processors(), cfg(), 909);
    a.run_async(wl, shards);
    b.run_async(wl, shards);
    EXPECT_EQ(a.loads(), b.loads()) << shards << " shards";
    EXPECT_EQ(a.total_generated(), b.total_generated());
    EXPECT_EQ(a.total_consumed(), b.total_consumed());
    EXPECT_EQ(a.balance_operations(), b.balance_operations());
  }
}

// The epoch length is part of the determinism key, not a correctness
// knob: any value reproduces, including the degenerate per-step fence.
TEST(RunAsync, EpochLengthReproducesIncludingDegenerate) {
  Rng layout(7);
  const WorkloadParams params;
  const Workload wl = Workload::paper_benchmark(48, 300, params, layout);
  for (std::uint32_t epoch_steps : {1u, 5u, 64u}) {
    AsyncOptions opts;
    opts.epoch_steps = epoch_steps;
    System a(wl.processors(), cfg(), 1234);
    System b(wl.processors(), cfg(), 1234);
    a.run_async(wl, 3, opts);
    b.run_async(wl, 3, opts);
    EXPECT_EQ(a.loads(), b.loads()) << "epoch_steps=" << epoch_steps;
    EXPECT_EQ(a.balance_operations(), b.balance_operations());
  }
}

// Packet conservation holds at every epoch fence, for any shard count —
// concurrent local phases plus token-slot settlements must never lose or
// invent a packet.  post_step_check makes shard 0 verify the full
// invariant set at each epoch close.
TEST(RunAsync, ConservesPacketsAtEveryEpochFence) {
  const Workload wl = Workload::sparse_hotspot(96, 300, 13, 0.8, 0.5);
  for (std::uint32_t shards : {1u, 2u, 5u}) {
    System sys(wl.processors(), cfg(), 4321);
    sys.set_post_step_check(true);  // check_invariants per epoch
    sys.run_async(wl, shards);
    EXPECT_EQ(sys.total_load(),
              static_cast<std::int64_t>(sys.total_generated()) -
                  static_cast<std::int64_t>(sys.total_consumed()));
  }
}

// Relaxed mode trades reproducibility away but NOT conservation: with
// balancing operations running concurrently under the per-processor
// locks, the ledgers must still balance to the global generated-minus-
// consumed total at the end.
TEST(RunAsync, RelaxedModeStillConservesPackets) {
  const Workload wl = Workload::sparse_hotspot(128, 400, 17, 0.8, 0.6);
  AsyncOptions opts;
  opts.relaxed_order = true;
  for (std::uint32_t shards : {2u, 4u}) {
    System sys(wl.processors(), cfg(), 99);
    sys.set_post_step_check(true);  // full invariant check after the run
    sys.run_async(wl, shards, opts);
    EXPECT_EQ(sys.total_load(),
              static_cast<std::int64_t>(sys.total_generated()) -
                  static_cast<std::int64_t>(sys.total_consumed()));
  }
}

// Settlement-heavy regime: consume outpaces generate and the borrow cap
// is tiny, so the cross-shard settle/remote-exchange/forced-balance path
// (the most intricate lock choreography in the engine) runs constantly.
TEST(RunAsync, SurvivesSettlementHeavyTraffic) {
  const Workload wl = Workload::uniform(64, 250, 0.3, 0.9);
  for (const bool relaxed : {false, true}) {
    AsyncOptions opts;
    opts.relaxed_order = relaxed;
    opts.epoch_steps = 8;
    System sys(wl.processors(), cfg(1.5, 2, 1), 777);
    sys.set_post_step_check(true);
    sys.run_async(wl, 4, opts);
    EXPECT_EQ(sys.total_load(),
              static_cast<std::int64_t>(sys.total_generated()) -
                  static_cast<std::int64_t>(sys.total_consumed()))
        << (relaxed ? "relaxed" : "deterministic");
  }
}

// The async driver has no serial per-step point to observe loads from,
// so attaching a recorder is a contract violation, not a silent no-op.
TEST(RunAsync, RejectsAttachedRecorder) {
  class Null final : public Recorder {};
  const Workload wl = Workload::uniform(8, 10, 0.5, 0.5);
  Null tape;
  System sys(wl.processors(), cfg(), 1);
  sys.attach_recorder(&tape);
  EXPECT_THROW(sys.run_async(wl, 2), contract_error);
}

// The recorder's loads stream from a sharded run matches a from-scratch
// read-back at the end (the incremental cache sees phase-1 mutations).
TEST(RunParallel, RecorderSeesConsistentLoads) {
  class LastLoads final : public Recorder {
   public:
    void on_loads(std::uint32_t t,
                  const std::vector<std::int64_t>& loads) override {
      (void)t;
      last = loads;
      ++calls;
    }
    std::vector<std::int64_t> last;
    std::uint32_t calls = 0;
  };
  const Workload wl = Workload::sparse_hotspot(64, 200, 9, 0.7, 0.4);
  LastLoads tape;
  System sys(wl.processors(), cfg(), 31);
  sys.attach_recorder(&tape);
  sys.run_parallel(wl, 4);
  EXPECT_EQ(tape.calls, wl.horizon());
  EXPECT_EQ(tape.last, sys.loads());
}

}  // namespace
}  // namespace dlb
