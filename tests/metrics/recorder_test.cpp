#include "metrics/recorder.hpp"

#include <gtest/gtest.h>

#include "support/check.hpp"

namespace dlb {
namespace {

TEST(BorrowCounters, BumpAndAccumulate) {
  BorrowCounters c;
  c.bump(BorrowEvent::TotalBorrow);
  c.bump(BorrowEvent::TotalBorrow);
  c.bump(BorrowEvent::RemoteBorrow);
  c.bump(BorrowEvent::BorrowFail);
  c.bump(BorrowEvent::DecreaseSim);
  EXPECT_EQ(c.total_borrow, 2u);
  EXPECT_EQ(c.remote_borrow, 1u);
  EXPECT_EQ(c.borrow_fail, 1u);
  EXPECT_EQ(c.decrease_sim, 1u);

  BorrowCounters d;
  d.bump(BorrowEvent::TotalBorrow);
  c += d;
  EXPECT_EQ(c.total_borrow, 3u);
}

TEST(BorrowCounterRecorder, PerRunAverages) {
  BorrowCounterRecorder rec;
  rec.begin_run(0);
  rec.on_borrow_event(BorrowEvent::TotalBorrow);
  rec.on_borrow_event(BorrowEvent::TotalBorrow);
  rec.on_borrow_event(BorrowEvent::RemoteBorrow);
  rec.end_run();
  rec.begin_run(1);
  rec.on_borrow_event(BorrowEvent::TotalBorrow);
  rec.end_run();
  EXPECT_EQ(rec.runs(), 2u);
  EXPECT_DOUBLE_EQ(rec.avg_total_borrow(), 1.5);
  EXPECT_DOUBLE_EQ(rec.avg_remote_borrow(), 0.5);
  EXPECT_DOUBLE_EQ(rec.avg_borrow_fail(), 0.0);
}

TEST(BorrowCounterRecorder, MisbracketedRunsThrow) {
  BorrowCounterRecorder rec;
  EXPECT_THROW(rec.end_run(), contract_error);
  rec.begin_run(0);
  EXPECT_THROW(rec.begin_run(1), contract_error);
}

TEST(LoadSeriesRecorder, AggregatesAcrossProcessorsAndRuns) {
  LoadSeriesRecorder rec(2);
  rec.on_loads(0, {1, 3});
  rec.on_loads(1, {10, 10});
  rec.on_loads(0, {5, 7});  // "second run"
  EXPECT_DOUBLE_EQ(rec.series().mean(0), 4.0);
  EXPECT_DOUBLE_EQ(rec.series().min(0), 1.0);
  EXPECT_DOUBLE_EQ(rec.series().max(0), 7.0);
  EXPECT_DOUBLE_EQ(rec.series().mean(1), 10.0);
}

TEST(LoadSeriesRecorder, IgnoresStepsBeyondHorizon) {
  LoadSeriesRecorder rec(1);
  rec.on_loads(0, {2});
  rec.on_loads(7, {99});  // silently dropped
  EXPECT_DOUBLE_EQ(rec.series().max(0), 2.0);
}

TEST(SnapshotRecorder, CapturesOnlySnapshotTimes) {
  SnapshotRecorder rec(2, {1, 3});
  rec.on_loads(0, {100, 100});
  rec.on_loads(1, {4, 6});
  rec.on_loads(2, {100, 100});
  rec.on_loads(3, {8, 2});
  EXPECT_DOUBLE_EQ(rec.at(0, 0).mean(), 4.0);
  EXPECT_DOUBLE_EQ(rec.at(0, 1).mean(), 6.0);
  EXPECT_DOUBLE_EQ(rec.at(1, 0).mean(), 8.0);
  EXPECT_DOUBLE_EQ(rec.at(1, 1).mean(), 2.0);
  EXPECT_EQ(rec.at(0, 0).count(), 1u);
}

TEST(SnapshotRecorder, AccumulatesAcrossRuns) {
  SnapshotRecorder rec(1, {0});
  rec.on_loads(0, {2});
  rec.on_loads(0, {6});
  EXPECT_DOUBLE_EQ(rec.at(0, 0).mean(), 4.0);
  EXPECT_DOUBLE_EQ(rec.at(0, 0).min(), 2.0);
  EXPECT_DOUBLE_EQ(rec.at(0, 0).max(), 6.0);
}

TEST(SnapshotRecorder, ShapeValidation) {
  SnapshotRecorder rec(2, {0});
  EXPECT_THROW(rec.on_loads(0, {1}), contract_error);
  EXPECT_THROW(rec.at(1, 0), contract_error);
  EXPECT_THROW(rec.at(0, 2), contract_error);
}

TEST(ActivityRecorder, AveragesPerRun) {
  ActivityRecorder rec;
  rec.begin_run(0);
  rec.on_balance_op(0, 1, 10);
  rec.on_balance_op(1, 1, 20);
  rec.end_run();
  rec.begin_run(1);
  rec.on_balance_op(2, 1, 30);
  rec.end_run();
  EXPECT_EQ(rec.total_operations(), 3u);
  EXPECT_EQ(rec.total_packets_moved(), 60u);
  EXPECT_DOUBLE_EQ(rec.avg_operations_per_run(), 1.5);
  EXPECT_DOUBLE_EQ(rec.avg_packets_moved_per_run(), 30.0);
}

TEST(FaultCounterRecorder, AccumulatesAcrossRuns) {
  FaultCounterRecorder rec;
  rec.begin_run(0);
  rec.on_fault(FaultEvent::Timeout, 2);
  rec.on_fault(FaultEvent::LostPacket, 3);
  rec.end_run();
  rec.begin_run(1);
  rec.on_fault(FaultEvent::Timeout, 1);
  rec.on_fault(FaultEvent::AbortedOp, 4);
  rec.on_fault(FaultEvent::RankDeath, 1);
  rec.end_run();
  EXPECT_EQ(rec.runs(), 2u);
  EXPECT_EQ(rec.totals().timeouts, 3u);
  EXPECT_EQ(rec.totals().aborted_ops, 4u);
  EXPECT_EQ(rec.totals().lost_packets, 3u);
  EXPECT_EQ(rec.totals().ranks_dead, 1u);
}

TEST(MultiRecorder, FansOutAllHooks) {
  BorrowCounterRecorder borrow;
  ActivityRecorder activity;
  LoadSeriesRecorder series(1);
  MultiRecorder multi;
  multi.attach(&borrow);
  multi.attach(&activity);
  multi.attach(&series);

  multi.begin_run(0);
  multi.on_borrow_event(BorrowEvent::TotalBorrow);
  multi.on_balance_op(0, 2, 5);
  multi.on_loads(0, {1, 2, 3});
  multi.end_run();

  EXPECT_DOUBLE_EQ(borrow.avg_total_borrow(), 1.0);
  EXPECT_EQ(activity.total_operations(), 1u);
  EXPECT_DOUBLE_EQ(series.series().mean(0), 2.0);
}

// A probe recording the raw arguments of the hooks MultiRecorder must
// forward verbatim — on_migration and on_fault have no aggregating
// recorder above to witness them.
struct ProbeRecorder final : Recorder {
  struct Migration {
    std::uint32_t from, to;
    std::uint64_t count;
  };
  std::vector<Migration> migrations;
  FaultCounters faults;

  void on_migration(std::uint32_t from, std::uint32_t to,
                    std::uint64_t count) override {
    migrations.push_back({from, to, count});
  }
  void on_fault(FaultEvent event, std::uint64_t count) override {
    faults.bump(event, count);
  }
};

TEST(MultiRecorder, FansOutMigrationsToEveryAttachedRecorder) {
  ProbeRecorder a;
  ProbeRecorder b;
  MultiRecorder multi;
  multi.attach(&a);
  multi.attach(&b);

  multi.on_migration(3, 7, 11);
  multi.on_migration(7, 3, 2);

  for (const ProbeRecorder* probe : {&a, &b}) {
    ASSERT_EQ(probe->migrations.size(), 2u);
    EXPECT_EQ(probe->migrations[0].from, 3u);
    EXPECT_EQ(probe->migrations[0].to, 7u);
    EXPECT_EQ(probe->migrations[0].count, 11u);
    EXPECT_EQ(probe->migrations[1].from, 7u);
    EXPECT_EQ(probe->migrations[1].to, 3u);
    EXPECT_EQ(probe->migrations[1].count, 2u);
  }
}

TEST(MultiRecorder, FansOutFaultsToEveryAttachedRecorder) {
  ProbeRecorder a;
  FaultCounterRecorder counting;
  MultiRecorder multi;
  multi.attach(&a);
  multi.attach(&counting);

  counting.begin_run(0);
  multi.on_fault(FaultEvent::Timeout, 5);
  multi.on_fault(FaultEvent::LostPacket, 2);
  multi.on_fault(FaultEvent::RankDeath, 1);
  counting.end_run();

  EXPECT_EQ(a.faults.timeouts, 5u);
  EXPECT_EQ(a.faults.lost_packets, 2u);
  EXPECT_EQ(a.faults.ranks_dead, 1u);
  EXPECT_EQ(counting.totals().timeouts, 5u);
  EXPECT_EQ(counting.totals().lost_packets, 2u);
  EXPECT_EQ(counting.totals().ranks_dead, 1u);
}

TEST(MultiRecorder, RejectsNull) {
  MultiRecorder multi;
  EXPECT_THROW(multi.attach(nullptr), contract_error);
}

}  // namespace
}  // namespace dlb
