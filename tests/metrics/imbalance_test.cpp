#include "metrics/imbalance.hpp"

#include <gtest/gtest.h>

#include "support/check.hpp"

namespace dlb {
namespace {

TEST(Imbalance, PerfectlyBalanced) {
  const auto r = measure_imbalance({5, 5, 5, 5});
  EXPECT_DOUBLE_EQ(r.min_load, 5.0);
  EXPECT_DOUBLE_EQ(r.max_load, 5.0);
  EXPECT_DOUBLE_EQ(r.avg_load, 5.0);
  EXPECT_DOUBLE_EQ(r.max_over_avg, 1.0);
  EXPECT_DOUBLE_EQ(r.max_over_min, 1.0);
  EXPECT_DOUBLE_EQ(r.cov, 0.0);
  EXPECT_DOUBLE_EQ(r.max_deviation, 0.0);
}

TEST(Imbalance, SkewedVector) {
  const auto r = measure_imbalance({0, 0, 0, 8});
  EXPECT_DOUBLE_EQ(r.avg_load, 2.0);
  EXPECT_DOUBLE_EQ(r.max_over_avg, 4.0);
  // min is guarded to 1 to avoid division by zero.
  EXPECT_DOUBLE_EQ(r.max_over_min, 8.0);
  EXPECT_DOUBLE_EQ(r.max_deviation, 6.0);
  EXPECT_GT(r.cov, 1.0);
}

TEST(Imbalance, AllEmpty) {
  const auto r = measure_imbalance({0, 0, 0});
  EXPECT_DOUBLE_EQ(r.max_over_avg, 0.0);
  EXPECT_DOUBLE_EQ(r.max_over_min, 0.0);
  EXPECT_DOUBLE_EQ(r.cov, 0.0);
}

TEST(Imbalance, SingleProcessor) {
  const auto r = measure_imbalance({7});
  EXPECT_DOUBLE_EQ(r.max_over_avg, 1.0);
  EXPECT_DOUBLE_EQ(r.cov, 0.0);
}

TEST(Imbalance, EmptyVectorThrows) {
  EXPECT_THROW(measure_imbalance({}), contract_error);
}

}  // namespace
}  // namespace dlb
