// LatencyTracker against hand-computed FIFO oracles, and the
// LatencyProbe decorator wiring it into run_trace.
#include <gtest/gtest.h>

#include "baselines/latency_probe.hpp"
#include "baselines/simple.hpp"
#include "baselines/stealing.hpp"
#include "metrics/latency.hpp"
#include "support/check.hpp"
#include "workload/trace.hpp"

namespace dlb {
namespace {

TEST(LatencyTracker, HandComputedFifoOracle) {
  LatencyTracker lt;
  // Arrivals at steps {0, 0, 1, 3}; consumes at steps {1, 2, 2, 7}.
  // FIFO pairing: (0->1)=1, (0->2)=2, (1->2)=1, (3->7)=4.
  lt.on_generate(0);
  lt.on_generate(0);
  lt.on_generate(1);
  lt.on_consume(1);
  lt.on_consume(2);
  lt.on_consume(2);
  lt.on_generate(3);
  lt.on_consume(7);
  EXPECT_EQ(lt.arrived(), 4u);
  EXPECT_EQ(lt.served(), 4u);
  EXPECT_EQ(lt.pending(), 0u);
  EXPECT_EQ(lt.histogram().sum(), 1u + 2u + 1u + 4u);
  EXPECT_EQ(lt.histogram().min(), 1u);
  EXPECT_EQ(lt.histogram().max(), 4u);
  EXPECT_DOUBLE_EQ(lt.mean(), 2.0);
}

TEST(LatencyTracker, SameStepServiceIsZeroLatency) {
  LatencyTracker lt;
  lt.on_generate(5);
  lt.on_consume(5);
  EXPECT_EQ(lt.histogram().max(), 0u);
  EXPECT_DOUBLE_EQ(lt.mean(), 0.0);
}

TEST(LatencyTracker, PendingBacklogAges) {
  LatencyTracker lt;
  for (int i = 0; i < 10; ++i) lt.on_generate(0);
  lt.on_consume(100);
  EXPECT_EQ(lt.pending(), 9u);
  EXPECT_EQ(lt.histogram().max(), 100u);
  // The unserved 9 contribute nothing to the distribution (yet).
  EXPECT_EQ(lt.histogram().count(), 1u);
}

TEST(LatencyTracker, RunLengthEncodingHandlesBigCohorts) {
  LatencyTracker lt;
  for (std::uint32_t t = 0; t < 100; ++t)
    for (int i = 0; i < 1000; ++i) lt.on_generate(t);
  for (int i = 0; i < 100000; ++i) lt.on_consume(100);
  EXPECT_EQ(lt.served(), 100000u);
  EXPECT_EQ(lt.pending(), 0u);
  // Mean latency = mean over t of (100 - t) = 50.5.
  EXPECT_DOUBLE_EQ(lt.mean(), 50.5);
}

TEST(LatencyTracker, GuardsAgainstMisuse) {
  LatencyTracker backwards;
  backwards.on_generate(5);
  EXPECT_THROW(backwards.on_generate(4), contract_error);

  LatencyTracker empty;
  EXPECT_THROW(empty.on_consume(0), contract_error);

  LatencyTracker early;
  early.on_generate(5);
  EXPECT_THROW(early.on_consume(4), contract_error);
}

// ---- LatencyProbe -----------------------------------------------------

TEST(LatencyProbe, ForwardsAndMeasuresThroughRunTrace) {
  // Deterministic workload: every step, proc 0 generates and proc 1
  // attempts to consume.  With no balancing, proc 1 never succeeds, so
  // zero packets are served; with stealing, the backlog is drained and
  // latencies are small.
  Rng rng(4);
  const Trace trace =
      Trace::record(Workload::hotspot(2, 100, 1, 1.0, 1.0), rng);

  NoBalancing nb(2);
  LatencyProbe nb_probe(nb);
  run_trace(nb_probe, trace);
  EXPECT_GT(nb_probe.latency().arrived(), 0u);

  WorkStealing ws(2, {}, 21);
  LatencyProbe ws_probe(ws);
  run_trace(ws_probe, trace);
  EXPECT_EQ(ws_probe.latency().arrived(), nb_probe.latency().arrived());
  EXPECT_GT(ws_probe.latency().served(), nb_probe.latency().served());
  // The probe is transparent: counters and loads come from the inner
  // balancer unchanged.
  EXPECT_EQ(ws_probe.name(), ws.name());
  EXPECT_EQ(ws_probe.loads(), ws.loads());
}

TEST(LatencyProbe, BeginRunResetsMeasurementForReuse) {
  Rng rng(8);
  const Trace trace =
      Trace::record(Workload::uniform(2, 50, 0.8, 0.8), rng);
  NoBalancing nb(2);
  LatencyProbe probe(nb);
  run_trace(probe, trace);
  const std::uint64_t first_arrived = probe.latency().arrived();
  EXPECT_GT(first_arrived, 0u);
  // Replaying through the same probe starts a fresh measurement: stale
  // cohorts from run 1 (stamped on the old timeline) must not leak into
  // run 2's latencies — nor trip the tracker's FIFO-order guards when
  // the clock rewinds to step 0.
  run_trace(probe, trace);
  EXPECT_EQ(probe.latency().arrived(), first_arrived);
}

}  // namespace
}  // namespace dlb
