// Wire-format tests for the socket transport's frames (mp/frame.hpp):
// roundtrip fidelity, stream reassembly, and — the part that guards the
// conservation ledger — corruption turning into *counted loss* instead
// of garbage messages or a desynced stream.
#include "mp/frame.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "mp/payload.hpp"

namespace dlb {
namespace {

std::vector<std::uint8_t> encode_one(FrameKind kind, int source, int tag,
                                     const std::vector<std::int64_t>& words) {
  std::vector<std::uint8_t> out;
  FrameHeader h;
  h.kind = kind;
  h.source = source;
  h.tag = tag;
  h.words = static_cast<std::uint32_t>(words.size());
  frame::encode(out, h, words.data(), words.size());
  return out;
}

TEST(FrameTest, RoundtripInlinePayload) {
  const std::vector<std::int64_t> words = {1, -2, 3000000000LL, -4};
  const auto bytes = encode_one(FrameKind::Data, 3, 17, words);
  const auto d = frame::decode(bytes.data(), bytes.size());
  ASSERT_EQ(d.status, frame::DecodeStatus::Ok);
  EXPECT_EQ(d.consumed, bytes.size());
  EXPECT_EQ(d.header.kind, FrameKind::Data);
  EXPECT_EQ(d.header.source, 3);
  EXPECT_EQ(d.header.tag, 17);
  ASSERT_EQ(d.header.words, words.size());
  MpPayload payload;
  frame::read_words(d, payload, nullptr);
  for (std::size_t i = 0; i < words.size(); ++i)
    EXPECT_EQ(payload[i], words[i]);
}

TEST(FrameTest, RoundtripSpillPayloadAndNegativeValues) {
  std::vector<std::int64_t> words;
  for (int i = 0; i < 100; ++i) words.push_back(-1000000007LL * i);
  const auto bytes = encode_one(FrameKind::Data, 0, -5, words);
  const auto d = frame::decode(bytes.data(), bytes.size());
  ASSERT_EQ(d.status, frame::DecodeStatus::Ok);
  EXPECT_EQ(d.header.tag, -5);  // tags are signed through the u32 trip
  PayloadPool pool;
  MpPayload payload;
  frame::read_words(d, payload, &pool);
  ASSERT_EQ(payload.size(), words.size());
  for (std::size_t i = 0; i < words.size(); ++i)
    EXPECT_EQ(payload[i], words[i]);
}

TEST(FrameTest, EveryPrefixAsksForMoreBytes) {
  const auto bytes = encode_one(FrameKind::Data, 1, 2, {7, 8, 9});
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const auto d = frame::decode(bytes.data(), len);
    EXPECT_EQ(d.status, frame::DecodeStatus::NeedMore)
        << "prefix of " << len << " bytes";
    EXPECT_EQ(d.consumed, 0u);
  }
}

TEST(FrameTest, BackToBackFramesDecodeInOrder) {
  auto bytes = encode_one(FrameKind::Data, 1, 10, {11});
  const auto second = encode_one(FrameKind::Heartbeat, 2, 0, {});
  bytes.insert(bytes.end(), second.begin(), second.end());

  const auto d1 = frame::decode(bytes.data(), bytes.size());
  ASSERT_EQ(d1.status, frame::DecodeStatus::Ok);
  EXPECT_EQ(d1.header.tag, 10);
  const auto d2 = frame::decode(bytes.data() + d1.consumed,
                                bytes.size() - d1.consumed);
  ASSERT_EQ(d2.status, frame::DecodeStatus::Ok);
  EXPECT_EQ(d2.header.kind, FrameKind::Heartbeat);
  EXPECT_EQ(d1.consumed + d2.consumed, bytes.size());
}

TEST(FrameTest, FlippedPayloadByteFailsChecksumAndSkipsWholeFrame) {
  auto bytes = encode_one(FrameKind::Data, 1, 2, {42, 43});
  bytes[frame::kHeaderBytes + frame::kBodyFixedBytes] ^= 0x01;
  const auto d = frame::decode(bytes.data(), bytes.size());
  ASSERT_EQ(d.status, frame::DecodeStatus::Corrupt);
  // The full frame is consumed: checksummed length is trustworthy, so
  // resync lands exactly on the next frame boundary.
  EXPECT_EQ(d.consumed, bytes.size());
}

TEST(FrameTest, BadMagicSlidesOneByteAndResyncs) {
  const auto good = encode_one(FrameKind::Data, 4, 9, {5});
  std::vector<std::uint8_t> stream = {0xde, 0xad, 0xbe};  // line noise
  stream.insert(stream.end(), good.begin(), good.end());

  std::size_t at = 0;
  int corrupt = 0;
  while (true) {
    const auto d = frame::decode(stream.data() + at, stream.size() - at);
    if (d.status == frame::DecodeStatus::Corrupt) {
      ++corrupt;
      at += d.consumed;
      continue;
    }
    ASSERT_EQ(d.status, frame::DecodeStatus::Ok);
    EXPECT_EQ(d.header.source, 4);
    EXPECT_EQ(d.header.tag, 9);
    break;
  }
  EXPECT_EQ(corrupt, 3);  // one slide per noise byte
}

TEST(FrameTest, InsaneLengthIsCorruptNotAnAllocation) {
  auto bytes = encode_one(FrameKind::Data, 1, 2, {3});
  // Claim a body far beyond kMaxWords: must be rejected from the header
  // alone, never answered with NeedMore (which would buffer forever).
  bytes[4] = 0xff;
  bytes[5] = 0xff;
  bytes[6] = 0xff;
  bytes[7] = 0x7f;
  const auto d = frame::decode(bytes.data(), bytes.size());
  EXPECT_EQ(d.status, frame::DecodeStatus::Corrupt);
  EXPECT_EQ(d.consumed, 1u);
}

TEST(FrameTest, WordCountLengthMismatchIsCorrupt) {
  auto bytes = encode_one(FrameKind::Data, 1, 2, {3, 4});
  // Rewrite the in-body word count (body offset 9) from 2 to 1 and
  // repair the checksum so only the length consistency check can trip.
  std::uint8_t* body = bytes.data() + frame::kHeaderBytes;
  body[9] = 1;
  const std::uint32_t body_len = frame::get_u32(bytes.data() + 4);
  const std::uint32_t sum = frame::fnv1a(body, body_len);
  bytes[8] = static_cast<std::uint8_t>(sum);
  bytes[9] = static_cast<std::uint8_t>(sum >> 8);
  bytes[10] = static_cast<std::uint8_t>(sum >> 16);
  bytes[11] = static_cast<std::uint8_t>(sum >> 24);
  const auto d = frame::decode(bytes.data(), bytes.size());
  EXPECT_EQ(d.status, frame::DecodeStatus::Corrupt);
}

}  // namespace
}  // namespace dlb
