#include "mp/communicator.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace dlb {
namespace {

TEST(Communicator, PingPong) {
  World world(2);
  world.launch([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 7, {123, 456});
      const MpMessage reply = comm.recv(1, 8);
      EXPECT_EQ(reply.payload, (std::vector<std::int64_t>{579}));
    } else {
      const MpMessage msg = comm.recv(0, 7);
      EXPECT_EQ(msg.source, 0);
      EXPECT_EQ(msg.tag, 7);
      comm.send(0, 8, {msg.payload[0] + msg.payload[1]});
    }
  });
}

TEST(Communicator, AnySourceAndAnyTag) {
  World world(3);
  world.launch([](Comm& comm) {
    if (comm.rank() != 0) {
      comm.send(0, comm.rank(), {comm.rank()});
    } else {
      std::int64_t sum = 0;
      for (int i = 0; i < 2; ++i) {
        const MpMessage msg = comm.recv(-1, -1);
        sum += msg.payload[0];
      }
      EXPECT_EQ(sum, 3);
    }
  });
}

TEST(Communicator, TagFilteringPreservesOrder) {
  World world(2);
  world.launch([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, /*tag=*/1, {10});
      comm.send(1, /*tag=*/2, {20});
      comm.send(1, /*tag=*/1, {11});
    } else {
      // Receive tag 2 first although it was sent second.
      EXPECT_EQ(comm.recv(0, 2).payload[0], 20);
      EXPECT_EQ(comm.recv(0, 1).payload[0], 10);
      EXPECT_EQ(comm.recv(0, 1).payload[0], 11);
    }
  });
}

TEST(Communicator, TryRecvDoesNotBlock) {
  World world(2);
  world.launch([](Comm& comm) {
    if (comm.rank() == 0) {
      EXPECT_FALSE(comm.try_recv().has_value());
      comm.barrier();          // rank 1 sends before the barrier
      const auto msg = comm.recv(1, 5);
      EXPECT_EQ(msg.payload[0], 99);
    } else {
      comm.send(0, 5, {99});
      comm.barrier();
    }
  });
}

TEST(Communicator, CollectivesComputeCorrectly) {
  World world(5);
  world.launch([](Comm& comm) {
    const auto r = static_cast<std::int64_t>(comm.rank());
    EXPECT_EQ(comm.allreduce_sum(r), 0 + 1 + 2 + 3 + 4);
    EXPECT_EQ(comm.allreduce_min(10 - r), 6);
    EXPECT_EQ(comm.allreduce_max(10 - r), 10);
    EXPECT_EQ(comm.broadcast(r * 100, 3), 300);
    const auto gathered = comm.allgather(r * r);
    ASSERT_EQ(gathered.size(), 5u);
    for (int i = 0; i < 5; ++i)
      EXPECT_EQ(gathered[static_cast<std::size_t>(i)], i * i);
  });
}

TEST(Communicator, ManyCollectiveRoundsStayConsistent) {
  // Back-to-back collectives are the race-prone path (round turnover);
  // hammer it with values that differ every round.
  World world(4);
  world.launch([](Comm& comm) {
    for (std::int64_t round = 0; round < 500; ++round) {
      const std::int64_t mine = round * 10 + comm.rank();
      const auto all = comm.allgather(mine);
      for (int r = 0; r < 4; ++r) {
        ASSERT_EQ(all[static_cast<std::size_t>(r)], round * 10 + r)
            << "round " << round;
      }
    }
  });
}

TEST(Communicator, BarrierSynchronizes) {
  World world(4);
  std::atomic<int> before{0};
  std::atomic<bool> violated{false};
  world.launch([&](Comm& comm) {
    before.fetch_add(1);
    comm.barrier();
    // After the barrier every rank must observe all four arrivals.
    if (before.load() != 4) violated.store(true);
    (void)comm;
  });
  EXPECT_FALSE(violated.load());
}

TEST(Communicator, ExceptionsPropagateToLauncher) {
  World world(3);
  EXPECT_THROW(world.launch([](Comm& comm) {
    // Only rank 1 throws; barriers are avoided so the others finish.
    if (comm.rank() == 1) throw contract_error("rank 1 exploded");
  }),
               contract_error);
}

TEST(Communicator, WorldIsReusableAcrossLaunches) {
  World world(2);
  for (int iteration = 0; iteration < 3; ++iteration) {
    world.launch([iteration](Comm& comm) {
      const std::int64_t total =
          comm.allreduce_sum(comm.rank() + iteration);
      EXPECT_EQ(total, 1 + 2 * iteration);
    });
  }
}

TEST(Communicator, ValidatesArguments) {
  World world(2);
  EXPECT_THROW(World(0), contract_error);
  world.launch([](Comm& comm) {
    if (comm.rank() == 0) {
      EXPECT_THROW(comm.send(5, 0, {}), contract_error);
      EXPECT_THROW(comm.broadcast(1, 9), contract_error);
    }
    comm.barrier();
  });
}

TEST(Communicator, RandomizedTrafficConserves) {
  // Every rank sends random token amounts around a ring for several
  // rounds; the global token count must be conserved.
  const int n = 4;
  World world(n);
  world.launch([n](Comm& comm) {
    Rng rng(static_cast<std::uint64_t>(comm.rank()) + 77);
    std::int64_t tokens = 100;
    for (int round = 0; round < 50; ++round) {
      const std::int64_t give =
          static_cast<std::int64_t>(rng.below(
              static_cast<std::uint64_t>(tokens) + 1));
      tokens -= give;
      comm.send((comm.rank() + 1) % n, round, {give});
      const MpMessage msg =
          comm.recv((comm.rank() + n - 1) % n, round);
      tokens += msg.payload[0];
      const std::int64_t total = comm.allreduce_sum(tokens);
      ASSERT_EQ(total, 100 * n) << "round " << round;
    }
  });
}

}  // namespace
}  // namespace dlb
