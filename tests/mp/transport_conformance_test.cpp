// Backend-parameterized conformance suite for the Transport seam: the
// same contract checks run against the in-process LocalTransport
// (threads + mailboxes) and the multi-process SocketTransport (forked
// ranks + stream sockets).  What the protocols above rely on:
//
//   - per-link FIFO ordering,
//   - deadline-honouring timed receives (monotonic clock),
//   - fault-decorator semantics above any backend (dup delivered
//     twice, reserved tags never diced),
//   - peer death detected, with every pre-death message still
//     delivered first (drain-before-verdict),
//   - the end-to-end stake: conservation modulo declared loss under
//     drop + kill on both backends.
//
// Local ranks report through a shared result vector; socket ranks are
// real processes and report through exit codes.
#include <gtest/gtest.h>
#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "mp/communicator.hpp"
#include "mp/fault.hpp"
#include "mp/fault_transport.hpp"
#include "mp/process_group.hpp"
#include "mp/socket_transport.hpp"
#include "mp/spmd_balance.hpp"
#include "mp/spmd_socket.hpp"
#include "workload/trace.hpp"

namespace dlb {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

struct RankCtx {
  Transport& t;
  int rank = -1;
  int size = 0;
  /// Dies like a crash for the backend: SIGKILL (socket) or dead-mark +
  /// RankCrashed unwind (local).  Never returns.
  std::function<void()> die;
};

/// Body returns 0 on success, a small code identifying the failed
/// check otherwise; a rank that died reports -SIGKILL.
using RankBody = std::function<int(RankCtx&)>;

std::vector<int> run_local(int ranks, const RankBody& body) {
  World world(ranks);
  // Arm a kill-at-step-0 for every rank: die() is then one tick() away
  // for whichever rank the body chooses (ranks that never call die()
  // never tick, so the plan is inert for them).
  FaultPlan plan;
  for (int r = 0; r < ranks; ++r) plan.kill(r, 0);
  world.set_fault_plan(plan);
  std::vector<int> results(static_cast<std::size_t>(ranks), 0);
  world.launch([&](Comm& comm) {
    const int r = comm.rank();
    LocalTransport transport(world, r);
    RankCtx ctx{transport, r, ranks, [&comm, &results, r] {
                  results[static_cast<std::size_t>(r)] = -SIGKILL;
                  comm.tick();  // scheduled crash: marks dead and unwinds
                }};
    results[static_cast<std::size_t>(r)] = body(ctx);
  });
  return results;
}

std::vector<int> run_socket(int ranks, const RankBody& body,
                            bool tcp = false) {
  const std::string dir = ProcessGroup::make_rendezvous_dir();
  auto group = ProcessGroup::spawn(ranks, [&](int r) -> int {
    SocketOptions opts;
    opts.dir = dir;
    opts.tcp = tcp;
    opts.suspect_after = milliseconds(10000);  // EOF must win, not silence
    SocketTransport transport(r, ranks, opts);
    RankCtx ctx{transport, r, ranks, [] {
                  ::kill(::getpid(), SIGKILL);
                  ::_exit(137);  // unreachable
                }};
    const int rc = body(ctx);
    transport.close();
    return rc;
  });
  EXPECT_TRUE(group.wait_all(milliseconds(60000)));
  std::vector<int> results(static_cast<std::size_t>(ranks), 99);
  for (int r = 0; r < ranks; ++r) {
    if (!group.finished(r)) continue;
    results[static_cast<std::size_t>(r)] =
        group.exited(r) ? group.exit_code(r) : -group.term_signal(r);
  }
  ProcessGroup::remove_rendezvous_dir(dir);
  return results;
}

class TransportConformance : public ::testing::TestWithParam<const char*> {
 protected:
  bool socket_backend() const {
    return std::string(GetParam()) == "socket";
  }
  std::vector<int> run(int ranks, const RankBody& body) {
    return socket_backend() ? run_socket(ranks, body) : run_local(ranks, body);
  }
};

TEST_P(TransportConformance, PerLinkFifoOrdering) {
  constexpr int kMessages = 200;
  const auto results = run(2, [](RankCtx& ctx) -> int {
    if (ctx.rank == 1) {
      for (std::int64_t i = 0; i < kMessages; ++i) {
        const std::int64_t w[1] = {i};
        ctx.t.send(0, 7, w, 1);
      }
      // Stay alive until the receiver confirms, so no backend can
      // confuse completion with termination.
      ctx.t.recv(0, 8);
      return 0;
    }
    for (std::int64_t i = 0; i < kMessages; ++i) {
      const MpMessage msg = ctx.t.recv(1, 7);
      if (msg.payload.size() != 1 || msg.payload[0] != i) return 2;
    }
    const std::int64_t done[1] = {1};
    ctx.t.send(1, 8, done, 1);
    return 0;
  });
  EXPECT_EQ(results, (std::vector<int>{0, 0}));
}

TEST_P(TransportConformance, RecvUntilHonoursItsDeadline) {
  const auto results = run(2, [](RankCtx& ctx) -> int {
    if (ctx.rank == 1) {
      // Hold the line open (alive, silent) through rank 0's wait.
      ctx.t.recv(0, 6);
      return 0;
    }
    const auto t0 = steady_clock::now();
    const auto msg = ctx.t.recv_until(1, 5, t0 + milliseconds(120));
    const auto waited = std::chrono::duration_cast<milliseconds>(
        steady_clock::now() - t0);
    if (msg.has_value()) return 2;       // nothing was ever sent on tag 5
    if (waited < milliseconds(110)) return 3;  // returned early
    const std::int64_t done[1] = {1};
    ctx.t.send(1, 6, done, 1);
    return 0;
  });
  EXPECT_EQ(results, (std::vector<int>{0, 0}));
}

TEST_P(TransportConformance, FaultDecoratorDuplicatesAndSparesControlPlane) {
  const auto results = run(2, [](RankCtx& ctx) -> int {
    FaultPlan plan;
    plan.default_link.duplicate = 1.0;  // every data message twice
    std::mutex mutex;
    FaultStats stats;
    FaultSink sink;
    sink.mutex = &mutex;
    sink.stats = &stats;
    FaultyTransport faulty(ctx.t, plan, sink);
    if (ctx.rank == 1) {
      const std::int64_t w[1] = {77};
      faulty.send(0, 3, w, 1);  // diced: arrives twice
      const std::int64_t c[1] = {88};
      faulty.send(0, Transport::kReservedTagFloor + 2, c, 1);  // un-diced
      faulty.recv(0, 4);
      return 0;
    }
    const MpMessage first = faulty.recv(1, 3);
    const MpMessage second = faulty.recv(1, 3);
    if (first.payload[0] != 77 || second.payload[0] != 77) return 2;
    const MpMessage ctl = faulty.recv(1, Transport::kReservedTagFloor + 2);
    if (ctl.payload[0] != 88) return 3;
    // Exactly two data copies and one control copy: nothing further.
    if (faulty.try_recv(-1, -1).has_value()) return 4;
    const std::int64_t done[1] = {1};
    faulty.send(1, 4, done, 1);
    return 0;
  });
  EXPECT_EQ(results, (std::vector<int>{0, 0}));
}

TEST_P(TransportConformance, DeathIsDetectedAfterDrainingPreDeathTraffic) {
  const auto results = run(2, [](RankCtx& ctx) -> int {
    if (ctx.rank == 1) {
      const std::int64_t w[1] = {42};
      ctx.t.send(0, 3, w, 1);
      ctx.t.recv(0, 9);  // rank 0 saw the farewell; now die for real
      ctx.die();
      return 1;  // unreachable
    }
    // The farewell must arrive while the peer is still alive.
    const MpMessage msg = ctx.t.recv(1, 3);
    if (msg.payload.size() != 1 || msg.payload[0] != 42) return 2;
    const std::int64_t go[1] = {1};
    ctx.t.send(1, 9, go, 1);
    // Detection: EOF evidence (socket) / dead mark (local) must land
    // well inside the 10 s silence backstop — this is the OS-speed
    // detection claim, measured.
    const auto t0 = steady_clock::now();
    while (!ctx.t.peer_dead(1)) {
      if (steady_clock::now() - t0 > milliseconds(5000)) return 3;
      ctx.t.recv_until(1, 3, steady_clock::now() + milliseconds(10));
    }
    const auto latency = std::chrono::duration_cast<milliseconds>(
        steady_clock::now() - t0);
    if (latency > milliseconds(3000)) return 4;
    return 0;
  });
  EXPECT_EQ(results, (std::vector<int>{0, -SIGKILL}));
}

TEST_P(TransportConformance, ConservationHoldsUnderDropAndKill) {
  constexpr int kRanks = 4;
  constexpr std::uint32_t kSteps = 60;
  Rng wl_rng(31);
  const Workload wl = Workload::paper_benchmark(
      static_cast<std::uint32_t>(kRanks), kSteps, WorkloadParams{}, wl_rng);
  Rng trace_rng(32);
  const Trace trace = Trace::record(wl, trace_rng);

  FaultPlan plan;
  plan.seed = 2026;
  plan.default_link.drop = 0.2;
  plan.journal_interval = 10;
  plan.kill(2, 30);

  SpmdReport report;
  if (socket_backend()) {
    SocketRunOptions opts;
    opts.ranks = kRanks;
    opts.plan = plan;
    report = run_spmd_balancer_socket(trace, opts).report;
  } else {
    World world(kRanks);
    world.set_fault_plan(plan);
    report = run_spmd_balancer(world, trace, SpmdParams{});
  }
  EXPECT_TRUE(report.conserved)
      << report.total_load << " != " << report.generated << " - "
      << report.consumed << " - " << report.transfer_lost << " - "
      << report.crash_lost;
  EXPECT_EQ(report.ranks_dead, 1u);
  EXPECT_GT(report.messages_dropped, 0u);
}

INSTANTIATE_TEST_SUITE_P(Backends, TransportConformance,
                         ::testing::Values("local", "socket"));

}  // namespace
}  // namespace dlb
