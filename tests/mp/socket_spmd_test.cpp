// End-to-end multi-process balancer runs (mp/spmd_socket.hpp): forked
// ranks over real sockets, a real SIGKILL mid-run, and journal-replay
// recovery — the acceptance gate for the crash/recovery claim:
//
//   - a fault-free socket run conserves exactly and exits clean,
//   - under drop faults plus a scheduled kill, the assembled ledger
//     still closes exactly (conservation modulo *declared* loss),
//   - a restarted rank is a genuinely new process whose only input is
//     the on-disk journal, and the load it recovers equals the load
//     the report assembled for the dead rank.
#include "mp/spmd_socket.hpp"

#include <gtest/gtest.h>
#include <signal.h>

#include <chrono>
#include <fstream>
#include <sstream>
#include <thread>

#include "mp/clock_sync.hpp"
#include "mp/journal_io.hpp"
#include "mp/process_group.hpp"
#include "mp/socket_transport.hpp"
#include "obs/merge.hpp"
#include "obs/trace.hpp"
#include "workload/trace.hpp"

namespace dlb {
namespace {

Trace make_trace(int ranks, std::uint32_t steps) {
  Rng wl_rng(31);
  const Workload wl = Workload::paper_benchmark(
      static_cast<std::uint32_t>(ranks), steps, WorkloadParams{}, wl_rng);
  Rng trace_rng(32);
  return Trace::record(wl, trace_rng);
}

void expect_ledger_closes(const SpmdReport& report) {
  EXPECT_TRUE(report.conserved);
  EXPECT_EQ(report.total_load, report.generated - report.consumed -
                                   report.transfer_lost - report.crash_lost);
}

TEST(SocketSpmdTest, FaultFreeRunConservesAndExitsClean) {
  SocketRunOptions opts;
  opts.ranks = 4;
  const SocketRunResult run = run_spmd_balancer_socket(make_trace(4, 80), opts);
  expect_ledger_closes(run.report);
  EXPECT_EQ(run.report.ranks_dead, 0u);
  EXPECT_EQ(run.report.transfer_lost, 0);
  EXPECT_EQ(run.report.crash_lost, 0);
  for (int code : run.exit_codes) EXPECT_EQ(code, 0);
  EXPECT_EQ(run.report.final_loads.size(), 4u);
}

TEST(SocketSpmdTest, TcpLoopbackBackendConserves) {
  SocketRunOptions opts;
  opts.ranks = 3;
  opts.tcp = true;
  const SocketRunResult run = run_spmd_balancer_socket(make_trace(3, 50), opts);
  expect_ledger_closes(run.report);
  EXPECT_EQ(run.report.ranks_dead, 0u);
}

TEST(SocketSpmdTest, DropPlusRealKillKeepsLedgerExact) {
  SocketRunOptions opts;
  opts.ranks = 4;
  opts.plan.seed = 99;
  opts.plan.default_link.drop = 0.2;
  opts.plan.journal_interval = 10;
  opts.plan.kill(1, 35);
  const SocketRunResult run = run_spmd_balancer_socket(make_trace(4, 90), opts);
  expect_ledger_closes(run.report);
  EXPECT_EQ(run.report.ranks_dead, 1u);
  EXPECT_TRUE(run.killed[1]);
  EXPECT_EQ(run.exit_codes[1], -SIGKILL);  // a real signal, not an exit
  EXPECT_GT(run.report.messages_dropped, 0u);
  for (int r = 0; r < 4; ++r) {
    if (r != 1) {
      EXPECT_EQ(run.exit_codes[static_cast<std::size_t>(r)], 0);
    }
  }
}

TEST(SocketSpmdTest, RestartedRankRecoversItsJournaledLoad) {
  SocketRunOptions opts;
  opts.ranks = 4;
  opts.restart_dead = true;
  opts.plan.seed = 7;
  opts.plan.default_link.drop = 0.1;
  opts.plan.journal_interval = 25;
  opts.plan.kill(2, 40);
  const SocketRunResult run =
      run_spmd_balancer_socket(make_trace(4, 100), opts);
  expect_ledger_closes(run.report);
  ASSERT_TRUE(run.killed[2]);
  ASSERT_TRUE(run.restarted[2]);
  // The restarted process recovered, from nothing but the file system,
  // exactly the load the report assembled for the dead rank.
  EXPECT_EQ(run.recovered_loads[2], run.report.final_loads[2]);
  // Kill at step 40 with boundary interval 25: the journal's committed
  // value is the step-25 boundary, and the drift past it is crash loss.
  EXPECT_GE(run.report.crash_lost, 0);
}

// The crash-path observability regression: a SIGKILLed rank must not
// lose its in-memory counters — the per-journal durable flush has to
// cover every message it ever sent, so the machine-level merge still
// accounts for traffic whose sender no longer exists.
TEST(SocketSpmdTest, KilledRankMetricsSurviveInMergedSnapshot) {
  const std::string out_dir = ProcessGroup::make_rendezvous_dir();
  SocketRunOptions opts;
  opts.ranks = 4;
  opts.restart_dead = true;
  opts.collect_obs = true;
  opts.trace_out = out_dir + "/merged_trace.json";
  opts.plan.seed = 7;
  opts.plan.journal_interval = 25;
  opts.plan.kill(2, 40);
  const SocketRunResult run =
      run_spmd_balancer_socket(make_trace(4, 100), opts);
  expect_ledger_closes(run.report);
  ASSERT_TRUE(run.killed[2]);

  const obs::MetricsSnapshot& m = run.merged_metrics;
  // The dead rank's instruments made it out through the journal-side
  // flush: its sends are present under its own prefix...
  const auto* rank2_sent = m.find("rank2.mp.sent");
  ASSERT_NE(rank2_sent, nullptr);
  EXPECT_GT(rank2_sent->value, 0);
  // ...and the machine aggregate stays consistent: nothing was
  // delivered that nobody sent (in particular the survivors' receipts
  // from rank 2 are covered by rank 2's flushed send counters).
  const auto* sent = m.find("mp.sent");
  const auto* delivered = m.find("mp.delivered");
  ASSERT_NE(sent, nullptr);
  ASSERT_NE(delivered, nullptr);
  std::int64_t survivors_delivered = 0;
  for (int r = 0; r < 4; ++r) {
    if (r == 2) continue;
    const auto* d =
        m.find("rank" + std::to_string(r) + ".mp.delivered");
    ASSERT_NE(d, nullptr) << r;
    survivors_delivered += d->value;
  }
  EXPECT_GE(sent->value, survivors_delivered);
  EXPECT_GE(sent->value, delivered->value);
  // Gauges sum across ranks, so the aggregate final load is the
  // machine total the report assembled.
  const auto* total = m.find("spmd.final_load");
  ASSERT_NE(total, nullptr);

  // Cross-rank flows matched (send on one rank, recv on another) and
  // the merged Perfetto file shows the kill where it happened.
  EXPECT_GE(run.matched_flow_pairs, 1u);
  std::ifstream in(opts.trace_out);
  ASSERT_TRUE(in.is_open());
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  EXPECT_NE(json.find("\"rank 2\""), std::string::npos);
  EXPECT_NE(json.find("\"crash\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"f\""), std::string::npos);
  ProcessGroup::remove_rendezvous_dir(out_dir);
}

// The clock-offset estimator under a large injected skew: rank 1's
// trace clock runs 50 ms ahead, yet after sync_clocks correction every
// matched send->recv flow in the merged trace is monotone (recv >=
// send, within the estimator's error bound — slack far below the
// injected skew, so a broken or dropped correction fails loudly).
TEST(SocketSpmdTest, ClockOffsetCorrectionKeepsFlowsMonotone) {
  const std::string dir = ProcessGroup::make_rendezvous_dir();
  constexpr std::int64_t kSkewNs = 50'000'000;  // +50 ms on rank 1
  constexpr int kPings = 25;
  auto group = ProcessGroup::spawn(2, [&dir](int r) {
    obs::TraceBuffer trace(std::size_t{1} << 12);
    if (r == 1) trace.shift_epoch(kSkewNs);
    SocketOptions so;
    so.dir = dir;
    SocketTransport t(r, 2, so);
    t.attach_obs(SocketObs{&trace, nullptr});
    const std::int64_t offset =
        sync_clocks(t, trace).offset_ns;  // collective, both ranks
    const std::int64_t word[1] = {1};
    for (int i = 0; i < kPings; ++i) {
      if (r == 0) {
        t.send(1, 5, word, 1);
        t.recv(1, 6);
      } else {
        // Let the inbound frame sit in the kernel buffer for a moment
        // before pumping: the recv timestamp then dominates the
        // estimator error, keeping the monotonicity margin wide.
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        t.recv(0, 5);
        t.send(0, 6, word, 1);
      }
    }
    std::ofstream os(dir + "/trace." + std::to_string(r));
    obs::write_rank_trace(os, trace, r, r == 0 ? 0 : offset);
    t.close();
    return 0;
  });
  ASSERT_TRUE(group.wait_all(std::chrono::milliseconds(120000)));
  for (int r = 0; r < 2; ++r) {
    ASSERT_TRUE(group.exited(r)) << r;
    ASSERT_EQ(group.exit_code(r), 0) << r;
  }

  obs::TraceMerger merger;
  merger.add_rank_file(dir + "/trace.0");
  merger.add_rank_file(dir + "/trace.1");
  ASSERT_EQ(merger.ranks(), 2);

  int fwd = 0, back = 0;
  for (const obs::FlowPair& f : merger.matched_flows()) {
    // Uncorrected, one direction would be ~50 ms out of order; the
    // 5 ms slack only absorbs the estimator error (<= min-rtt / 2,
    // tens of us on an idle box, generous here for loaded CI).
    const auto send = static_cast<std::int64_t>(f.send_ts_ns);
    const auto recv = static_cast<std::int64_t>(f.recv_ts_ns);
    EXPECT_GE(recv - send, -5'000'000)
        << f.src_rank << "->" << f.dst_rank << " flow " << f.id;
    if (f.src_rank == 0 && f.dst_rank == 1) ++fwd;
    if (f.src_rank == 1 && f.dst_rank == 0) ++back;
  }
  EXPECT_GE(fwd, kPings);  // app pings + clock-sync ctrl traffic
  EXPECT_GE(back, kPings);
  ProcessGroup::remove_rendezvous_dir(dir);
}

TEST(SocketSpmdTest, JournalRoundtripAndTornTailRecovery) {
  const std::string dir = ProcessGroup::make_rendezvous_dir();
  const std::string path = journal_path(dir, 3);
  {
    JournalWriter writer;
    writer.open(path, 3, 5);
    writer.record(1, 10, 12, 2, 0);
    writer.record(5, 14, 20, 6, 1);   // boundary (step % 5 == 0)
    writer.record(7, 17, 25, 8, 1);   // shadow past the boundary
    writer.close();
  }
  // Simulate a torn final line (death mid-write): the recovery must
  // fall back to the last *complete* line.
  {
    std::ofstream out(path, std::ios::app | std::ios::binary);
    out << "o 8 99";  // no newline, incomplete fields
  }
  const JournalRecovery rec = recover_journal(path);
  ASSERT_TRUE(rec.valid);
  EXPECT_EQ(rec.rank, 3);
  EXPECT_EQ(rec.interval, 5u);
  EXPECT_EQ(rec.last_step, 7u);
  EXPECT_EQ(rec.shadow_load, 17);
  EXPECT_EQ(rec.committed_load, 14);
  EXPECT_EQ(rec.crash_loss(), 3);
  EXPECT_EQ(rec.generated, 25);
  EXPECT_EQ(rec.consumed, 8);
  EXPECT_EQ(rec.declared_lost, 1);
  ProcessGroup::remove_rendezvous_dir(dir);
}

}  // namespace
}  // namespace dlb
