// End-to-end multi-process balancer runs (mp/spmd_socket.hpp): forked
// ranks over real sockets, a real SIGKILL mid-run, and journal-replay
// recovery — the acceptance gate for the crash/recovery claim:
//
//   - a fault-free socket run conserves exactly and exits clean,
//   - under drop faults plus a scheduled kill, the assembled ledger
//     still closes exactly (conservation modulo *declared* loss),
//   - a restarted rank is a genuinely new process whose only input is
//     the on-disk journal, and the load it recovers equals the load
//     the report assembled for the dead rank.
#include "mp/spmd_socket.hpp"

#include <gtest/gtest.h>
#include <signal.h>

#include <fstream>

#include "mp/journal_io.hpp"
#include "mp/process_group.hpp"
#include "workload/trace.hpp"

namespace dlb {
namespace {

Trace make_trace(int ranks, std::uint32_t steps) {
  Rng wl_rng(31);
  const Workload wl = Workload::paper_benchmark(
      static_cast<std::uint32_t>(ranks), steps, WorkloadParams{}, wl_rng);
  Rng trace_rng(32);
  return Trace::record(wl, trace_rng);
}

void expect_ledger_closes(const SpmdReport& report) {
  EXPECT_TRUE(report.conserved);
  EXPECT_EQ(report.total_load, report.generated - report.consumed -
                                   report.transfer_lost - report.crash_lost);
}

TEST(SocketSpmdTest, FaultFreeRunConservesAndExitsClean) {
  SocketRunOptions opts;
  opts.ranks = 4;
  const SocketRunResult run = run_spmd_balancer_socket(make_trace(4, 80), opts);
  expect_ledger_closes(run.report);
  EXPECT_EQ(run.report.ranks_dead, 0u);
  EXPECT_EQ(run.report.transfer_lost, 0);
  EXPECT_EQ(run.report.crash_lost, 0);
  for (int code : run.exit_codes) EXPECT_EQ(code, 0);
  EXPECT_EQ(run.report.final_loads.size(), 4u);
}

TEST(SocketSpmdTest, TcpLoopbackBackendConserves) {
  SocketRunOptions opts;
  opts.ranks = 3;
  opts.tcp = true;
  const SocketRunResult run = run_spmd_balancer_socket(make_trace(3, 50), opts);
  expect_ledger_closes(run.report);
  EXPECT_EQ(run.report.ranks_dead, 0u);
}

TEST(SocketSpmdTest, DropPlusRealKillKeepsLedgerExact) {
  SocketRunOptions opts;
  opts.ranks = 4;
  opts.plan.seed = 99;
  opts.plan.default_link.drop = 0.2;
  opts.plan.journal_interval = 10;
  opts.plan.kill(1, 35);
  const SocketRunResult run = run_spmd_balancer_socket(make_trace(4, 90), opts);
  expect_ledger_closes(run.report);
  EXPECT_EQ(run.report.ranks_dead, 1u);
  EXPECT_TRUE(run.killed[1]);
  EXPECT_EQ(run.exit_codes[1], -SIGKILL);  // a real signal, not an exit
  EXPECT_GT(run.report.messages_dropped, 0u);
  for (int r = 0; r < 4; ++r) {
    if (r != 1) {
      EXPECT_EQ(run.exit_codes[static_cast<std::size_t>(r)], 0);
    }
  }
}

TEST(SocketSpmdTest, RestartedRankRecoversItsJournaledLoad) {
  SocketRunOptions opts;
  opts.ranks = 4;
  opts.restart_dead = true;
  opts.plan.seed = 7;
  opts.plan.default_link.drop = 0.1;
  opts.plan.journal_interval = 25;
  opts.plan.kill(2, 40);
  const SocketRunResult run =
      run_spmd_balancer_socket(make_trace(4, 100), opts);
  expect_ledger_closes(run.report);
  ASSERT_TRUE(run.killed[2]);
  ASSERT_TRUE(run.restarted[2]);
  // The restarted process recovered, from nothing but the file system,
  // exactly the load the report assembled for the dead rank.
  EXPECT_EQ(run.recovered_loads[2], run.report.final_loads[2]);
  // Kill at step 40 with boundary interval 25: the journal's committed
  // value is the step-25 boundary, and the drift past it is crash loss.
  EXPECT_GE(run.report.crash_lost, 0);
}

TEST(SocketSpmdTest, JournalRoundtripAndTornTailRecovery) {
  const std::string dir = ProcessGroup::make_rendezvous_dir();
  const std::string path = journal_path(dir, 3);
  {
    JournalWriter writer;
    writer.open(path, 3, 5);
    writer.record(1, 10, 12, 2, 0);
    writer.record(5, 14, 20, 6, 1);   // boundary (step % 5 == 0)
    writer.record(7, 17, 25, 8, 1);   // shadow past the boundary
    writer.close();
  }
  // Simulate a torn final line (death mid-write): the recovery must
  // fall back to the last *complete* line.
  {
    std::ofstream out(path, std::ios::app | std::ios::binary);
    out << "o 8 99";  // no newline, incomplete fields
  }
  const JournalRecovery rec = recover_journal(path);
  ASSERT_TRUE(rec.valid);
  EXPECT_EQ(rec.rank, 3);
  EXPECT_EQ(rec.interval, 5u);
  EXPECT_EQ(rec.last_step, 7u);
  EXPECT_EQ(rec.shadow_load, 17);
  EXPECT_EQ(rec.committed_load, 14);
  EXPECT_EQ(rec.crash_loss(), 3);
  EXPECT_EQ(rec.generated, 25);
  EXPECT_EQ(rec.consumed, 8);
  EXPECT_EQ(rec.declared_lost, 1);
  ProcessGroup::remove_rendezvous_dir(dir);
}

}  // namespace
}  // namespace dlb
