// Fault-injection layer: deterministic link faults, crash-aware
// collectives, liveness errors for mismatched programs (the paths that
// used to deadlock), and the conservation-under-faults soak of the SPMD
// balancer.
#include "mp/fault.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

#include "mp/communicator.hpp"
#include "mp/spmd_balance.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "workload/trace.hpp"

namespace dlb {
namespace {

using namespace std::chrono_literals;

TEST(FaultPlan, CrashScheduleLookup) {
  FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  plan.kill(2, 100).kill(5, 7);
  EXPECT_TRUE(plan.enabled());
  EXPECT_EQ(plan.crash_step(2), 100);
  EXPECT_EQ(plan.crash_step(5), 7);
  EXPECT_EQ(plan.crash_step(0), -1);
}

TEST(FaultPlan, LinkConfigEnables) {
  FaultPlan plan;
  plan.default_link.drop = 0.1;
  EXPECT_TRUE(plan.enabled());
}

TEST(LinkFaultState, SameSeedSameStream) {
  LinkFaultConfig config;
  config.drop = 0.3;
  config.duplicate = 0.2;
  config.delay = 0.1;
  LinkFaultState a, b;
  a.reset(99, 1, 2, config);
  b.reset(99, 1, 2, config);
  for (int i = 0; i < 1000; ++i) {
    const FaultDecision da = a.next();
    const FaultDecision db = b.next();
    EXPECT_EQ(da.drop, db.drop);
    EXPECT_EQ(da.duplicate, db.duplicate);
    EXPECT_EQ(da.delay, db.delay);
  }
}

TEST(LinkFaultState, DistinctLinksGetDistinctStreams) {
  LinkFaultConfig config;
  config.drop = 0.5;
  LinkFaultState ab, ba;
  ab.reset(99, 1, 2, config);
  ba.reset(99, 2, 1, config);
  int differ = 0;
  for (int i = 0; i < 256; ++i)
    if (ab.next().drop != ba.next().drop) ++differ;
  EXPECT_GT(differ, 0);
}

TEST(LinkFaultState, RatesRoughlyMatchProbabilities) {
  LinkFaultConfig config;
  config.drop = 0.2;
  config.duplicate = 0.1;
  LinkFaultState link;
  link.reset(7, 0, 1, config);
  int drops = 0, dups = 0;
  const int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    const FaultDecision d = link.next();
    drops += d.drop ? 1 : 0;
    dups += d.duplicate ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(drops) / kTrials, 0.2, 0.02);
  // A dropped message cannot also be duplicated, so the observed
  // duplication rate is P(dup) * P(not dropped) = 0.1 * 0.8.
  EXPECT_NEAR(static_cast<double>(dups) / kTrials, 0.08, 0.02);
}

TEST(FaultInjection, CertainDropLosesEveryMessage) {
  World world(2);
  FaultPlan plan;
  plan.default_link.drop = 1.0;
  world.set_fault_plan(plan);
  world.launch([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 5, {42});
    } else {
      EXPECT_FALSE(comm.recv_for(0, 5, 30ms).has_value());
    }
    EXPECT_FALSE(comm.barrier_checked());  // collectives stay reliable
  });
  EXPECT_EQ(world.fault_stats().messages_dropped, 1u);
}

TEST(FaultInjection, CertainDuplicationDeliversTwice) {
  World world(2);
  FaultPlan plan;
  plan.default_link.duplicate = 1.0;
  world.set_fault_plan(plan);
  world.launch([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 5, {42});
    } else {
      EXPECT_EQ(comm.recv(0, 5).payload[0], 42);
      EXPECT_EQ(comm.recv(0, 5).payload[0], 42);
      EXPECT_FALSE(comm.try_recv(0, 5).has_value());
    }
  });
  EXPECT_EQ(world.fault_stats().messages_duplicated, 1u);
}

TEST(FaultInjection, DelayedMessagesStillArriveInOrderPerLink) {
  // With delay = 1 every message is stashed and released by the next
  // send on the same link (or the sender's termination flush): delivery
  // is late but nothing is lost and per-link order is preserved.
  World world(2);
  FaultPlan plan;
  plan.default_link.delay = 1.0;
  world.set_fault_plan(plan);
  world.launch([](Comm& comm) {
    if (comm.rank() == 0) {
      for (std::int64_t i = 0; i < 5; ++i) comm.send(1, 5, {i});
    } else {
      for (std::int64_t i = 0; i < 5; ++i)
        EXPECT_EQ(comm.recv(0, 5).payload[0], i);
    }
  });
  EXPECT_EQ(world.fault_stats().messages_delayed, 5u);
  EXPECT_EQ(world.fault_stats().messages_dropped, 0u);
}

TEST(FaultInjection, ScheduledCrashDegradesCollectives) {
  World world(4);
  FaultPlan plan;
  plan.kill(2, 3);
  world.set_fault_plan(plan);
  world.launch([](Comm& comm) {
    for (std::uint32_t step = 0; step < 6; ++step) {
      comm.tick();  // rank 2 dies entering step 3
      const GatherResult r = comm.allgather_checked(comm.rank());
      if (step < 3) {
        EXPECT_FALSE(r.degraded) << "step " << step;
        EXPECT_EQ(r.live_count(), 4);
      } else {
        EXPECT_TRUE(r.degraded) << "step " << step;
        EXPECT_EQ(r.live_count(), 3);
        EXPECT_EQ(r.alive[2], 0);
        EXPECT_EQ(r.values[2], 0);  // dead slot contributes zero
        EXPECT_EQ(r.values[1], 1);
      }
    }
  });
  EXPECT_TRUE(world.rank_dead(2));
  EXPECT_FALSE(world.rank_dead(0));
  EXPECT_EQ(world.fault_stats().ranks_dead, 1u);
}

TEST(FaultInjection, SurvivorsAgreeOnAliveMaskEveryRound) {
  // Replicated decisions need every survivor to observe the *same*
  // alive mask in the same round; deaths land only at tick() so the
  // mask may not be split across a round.
  const int n = 5;
  World world(n);
  FaultPlan plan;
  plan.kill(1, 2).kill(3, 4);
  world.set_fault_plan(plan);
  std::vector<std::vector<std::uint64_t>> masks(
      static_cast<std::size_t>(n));
  world.launch([&](Comm& comm) {
    for (std::uint32_t step = 0; step < 8; ++step) {
      comm.tick();
      const GatherResult r = comm.allgather_checked(0);
      std::uint64_t mask = 0;
      for (int i = 0; i < n; ++i)
        if (r.alive[static_cast<std::size_t>(i)]) mask |= 1ULL << i;
      masks[static_cast<std::size_t>(comm.rank())].push_back(mask);
    }
  });
  const auto& reference = masks[0];
  ASSERT_EQ(reference.size(), 8u);
  for (int rnk = 0; rnk < n; ++rnk) {
    if (world.rank_dead(rnk)) continue;
    EXPECT_EQ(masks[static_cast<std::size_t>(rnk)], reference)
        << "rank " << rnk;
  }
}

TEST(FaultInjection, RecvFromCrashedRankFailsFastNotForever) {
  World world(2);
  FaultPlan plan;
  plan.kill(1, 0);
  world.set_fault_plan(plan);
  world.launch([](Comm& comm) {
    if (comm.rank() == 1) {
      comm.tick();  // dies immediately
      FAIL() << "rank 1 must not survive its crash step";
    }
    // recv_for must come back empty once the peer is dead -- and well
    // before the full deadline, since nothing can ever arrive.
    const auto start = std::chrono::steady_clock::now();
    EXPECT_FALSE(comm.recv_for(1, 9, 10000ms).has_value());
    EXPECT_LT(std::chrono::steady_clock::now() - start, 5000ms);
  });
}

// Satellite (a): entering a collective after a peer *terminated* (ran
// off the end of its program -- not a scheduled crash) used to deadlock;
// now it is a liveness contract error.
TEST(Liveness, BarrierAfterPeerTerminationRaises) {
  World world(2);
  EXPECT_THROW(world.launch([](Comm& comm) {
                 if (comm.rank() == 1) return;  // terminates at once
                 comm.barrier();                // would hang forever
               }),
               contract_error);
}

TEST(Liveness, RecvFromTerminatedPeerRaises) {
  World world(2);
  EXPECT_THROW(world.launch([](Comm& comm) {
                 if (comm.rank() == 1) return;  // never sends
                 comm.recv(1, 5);               // would hang forever
               }),
               contract_error);
}

TEST(Liveness, QueuedMessagesRemainReceivableAfterTermination) {
  // Termination only forbids waiting for *future* traffic; messages the
  // peer sent before exiting stay deliverable.
  World world(2);
  world.launch([](Comm& comm) {
    if (comm.rank() == 1) {
      comm.send(0, 5, {1});
      comm.send(0, 5, {2});
      return;
    }
    EXPECT_EQ(comm.recv(1, 5).payload[0], 1);
    EXPECT_EQ(comm.recv(1, 5).payload[0], 2);
  });
}

TEST(Liveness, WorldIsReusableAfterCrashLaunch) {
  World world(3);
  FaultPlan plan;
  plan.kill(1, 0);
  world.set_fault_plan(plan);
  world.launch([](Comm& comm) {
    if (comm.rank() == 1) comm.tick();
    EXPECT_TRUE(comm.barrier_checked() || comm.rank() == 1);
  });
  EXPECT_TRUE(world.rank_dead(1));
  // Re-arm with an inert plan: the next launch is fully fault-free.
  world.set_fault_plan(FaultPlan{});
  world.launch([](Comm& comm) {
    EXPECT_EQ(comm.allreduce_sum(1), 3);
  });
  EXPECT_FALSE(world.rank_dead(1));
  EXPECT_EQ(world.fault_stats().ranks_dead, 0u);
}

// Satellite (c): collectives and point-to-point traffic interleaved
// across many rounds on a lossy machine -- the concurrency stress for
// the mailbox + collective-round turnover machinery.
TEST(FaultStress, MixedCollectiveAndP2PTrafficTerminates) {
  const int n = 8;
  World world(n);
  FaultPlan plan;
  plan.seed = 2024;
  plan.default_link.drop = 0.10;
  plan.default_link.duplicate = 0.05;
  world.set_fault_plan(plan);
  world.launch([n](Comm& comm) {
    std::int64_t acks = 0;
    for (int round = 0; round < 200; ++round) {
      comm.tick();
      const int next = (comm.rank() + 1) % n;
      const int prev = (comm.rank() + n - 1) % n;
      comm.send(next, round, {round});
      // The message may be dropped or duplicated; drain whatever came.
      if (comm.recv_for(prev, round, 1ms).has_value()) ++acks;
      while (comm.try_recv(prev, round).has_value()) ++acks;
      const GatherResult r = comm.allgather_checked(acks);
      EXPECT_FALSE(r.degraded);
      EXPECT_EQ(r.live_count(), n);
    }
  });
  const FaultStats stats = world.fault_stats();
  EXPECT_GT(stats.messages_dropped, 0u);
  EXPECT_GT(stats.messages_duplicated, 0u);
}

Trace paper_trace(std::uint32_t n, std::uint32_t steps) {
  Rng wl_rng(31);
  const Workload wl =
      Workload::paper_benchmark(n, steps, WorkloadParams{}, wl_rng);
  Rng trace_rng(32);
  return Trace::record(wl, trace_rng);
}

// Acceptance: a seeded fault schedule with drop <= 20% and at least one
// crash on a 400-step SPMD run terminates without deadlock and the
// conservation check passes.
TEST(FaultSoak, SpmdBalancerConservesUnderDropAndCrash) {
  const std::uint32_t n = 8, steps = 400;
  const Trace trace = paper_trace(n, steps);
  World world(static_cast<int>(n));
  FaultPlan plan;
  plan.seed = 99;
  plan.default_link.drop = 0.20;
  plan.default_link.duplicate = 0.05;
  plan.kill(3, 200);
  plan.journal_interval = 10;
  world.set_fault_plan(plan);
  SpmdParams params;
  params.recv_timeout = 25ms;
  const SpmdReport report = run_spmd_balancer(world, trace, params);
  EXPECT_TRUE(report.conserved)
      << report.total_load << " != " << report.generated << " - "
      << report.consumed << " - " << report.transfer_lost << " - "
      << report.crash_lost;
  EXPECT_EQ(report.ranks_dead, 1u);
  EXPECT_GT(report.degraded_rounds, 0u);
  EXPECT_GT(report.messages_dropped, 0u);
  EXPECT_EQ(report.total_load,
            report.generated - report.consumed - report.transfer_lost -
                report.crash_lost);
}

TEST(FaultSoak, FaultFreeRunHasCleanLedger) {
  const std::uint32_t n = 8, steps = 200;
  const Trace trace = paper_trace(n, steps);
  World world(static_cast<int>(n));
  const SpmdReport report = run_spmd_balancer(world, trace, SpmdParams{});
  EXPECT_TRUE(report.conserved);
  EXPECT_EQ(report.transfer_lost, 0);
  EXPECT_EQ(report.crash_lost, 0);
  EXPECT_EQ(report.recv_timeouts, 0u);
  EXPECT_EQ(report.degraded_rounds, 0u);
  EXPECT_EQ(report.ranks_dead, 0u);
  EXPECT_EQ(report.total_load, report.generated - report.consumed);
}

// Reproducibility: the whole faulty trace -- loads, ledger, counters --
// is a pure function of (workload seed, decision seed, fault plan).
// Drop/duplicate/crash faults are deterministic; delay faults are
// excluded here because releases race real-time recv deadlines.  The
// receive deadline is set generously so the only expiries are the
// deterministic ones (packet genuinely dropped, peer dead) -- a tight
// deadline would race scheduler jitter and fork the trace.
TEST(FaultSoak, SameSeedSamePlanReproducesTheRun) {
  const std::uint32_t n = 6, steps = 150;
  const Trace trace = paper_trace(n, steps);
  FaultPlan plan;
  plan.seed = 7;
  plan.default_link.drop = 0.15;
  plan.kill(2, 80);
  plan.journal_interval = 5;
  SpmdParams params;
  params.recv_timeout = 100ms;
  auto run_once = [&] {
    World world(static_cast<int>(n));
    world.set_fault_plan(plan);
    return run_spmd_balancer(world, trace, params);
  };
  const SpmdReport a = run_once();
  const SpmdReport b = run_once();
  EXPECT_EQ(a.final_loads, b.final_loads);
  EXPECT_EQ(a.transfer_lost, b.transfer_lost);
  EXPECT_EQ(a.crash_lost, b.crash_lost);
  EXPECT_EQ(a.messages_dropped, b.messages_dropped);
  EXPECT_EQ(a.rounds_initiated, b.rounds_initiated);
  EXPECT_EQ(a.packets_shipped, b.packets_shipped);
  EXPECT_TRUE(a.conserved);
  EXPECT_TRUE(b.conserved);
}

}  // namespace
}  // namespace dlb
