// ProcessGroup (mp/process_group.hpp): forked ranks are real processes
// with real exit codes, real signals, and a respawn path — the
// substrate the socket transport's crash testing stands on.
#include "mp/process_group.hpp"

#include <gtest/gtest.h>
#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <fstream>
#include <string>

namespace dlb {
namespace {

using std::chrono::milliseconds;

TEST(ProcessGroupTest, CollectsPerRankExitCodes) {
  auto group = ProcessGroup::spawn(4, [](int rank) { return 10 + rank; });
  ASSERT_TRUE(group.wait_all(milliseconds(10000)));
  for (int r = 0; r < 4; ++r) {
    EXPECT_TRUE(group.finished(r));
    EXPECT_TRUE(group.exited(r));
    EXPECT_EQ(group.exit_code(r), 10 + r);
    EXPECT_EQ(group.term_signal(r), 0);
  }
}

TEST(ProcessGroupTest, KillIsObservedAsASignalNotAnExit) {
  auto group = ProcessGroup::spawn(2, [](int rank) {
    if (rank == 1) {
      ::sleep(30);  // killed long before this elapses
      return 1;
    }
    return 0;
  });
  // The sleeper keeps the group alive past a short deadline.
  EXPECT_FALSE(group.wait_all(milliseconds(200)));
  group.kill_rank(1, SIGKILL);
  ASSERT_TRUE(group.wait_all(milliseconds(10000)));
  EXPECT_TRUE(group.exited(0));
  EXPECT_EQ(group.exit_code(0), 0);
  EXPECT_FALSE(group.exited(1));
  EXPECT_EQ(group.term_signal(1), SIGKILL);
  EXPECT_EQ(group.exit_code(1), -1);
}

TEST(ProcessGroupTest, RespawnRunsANewProcessInTheDeadSlot) {
  const std::string dir = ProcessGroup::make_rendezvous_dir();
  const std::string marker = dir + "/respawned";
  auto group = ProcessGroup::spawn(2, [](int rank) { return rank; });
  ASSERT_TRUE(group.wait_all(milliseconds(10000)));

  group.respawn(1, [&marker](int rank) {
    std::ofstream out(marker);
    out << "rank " << rank << "\n";
    return 42;
  });
  ASSERT_TRUE(group.wait_all(milliseconds(10000)));
  EXPECT_TRUE(group.exited(1));
  EXPECT_EQ(group.exit_code(1), 42);
  std::ifstream check(marker);
  std::string line;
  ASSERT_TRUE(std::getline(check, line));
  EXPECT_EQ(line, "rank 1");
  ProcessGroup::remove_rendezvous_dir(dir);
}

TEST(ProcessGroupTest, RendezvousDirsAreUniqueAndRemovable) {
  const std::string a = ProcessGroup::make_rendezvous_dir();
  const std::string b = ProcessGroup::make_rendezvous_dir();
  EXPECT_NE(a, b);
  {
    std::ofstream out(a + "/file");
    out << "x";
  }
  ProcessGroup::remove_rendezvous_dir(a);
  ProcessGroup::remove_rendezvous_dir(b);
  EXPECT_FALSE(std::ifstream(a + "/file").good());
}

TEST(ProcessGroupTest, DestructorReapsStragglers) {
  // A sleeping child must not outlive its group (no orphans from a
  // test that bails early).  If the destructor failed to kill it, this
  // test would still pass immediately — the real assertion is that the
  // child is gone afterwards, checked via kill(pid, 0) through the
  // child writing its pid first.
  const std::string dir = ProcessGroup::make_rendezvous_dir();
  const std::string pid_file = dir + "/pid";
  pid_t child = -1;
  {
    auto group = ProcessGroup::spawn(1, [&pid_file](int) {
      {
        std::ofstream out(pid_file);
        out << ::getpid() << "\n";
      }
      ::sleep(30);
      return 0;
    });
    // Wait until the pid file exists so the child is provably running.
    for (int i = 0; i < 1000 && child < 0; ++i) {
      std::ifstream in(pid_file);
      long pid = 0;
      if (in >> pid) child = static_cast<pid_t>(pid);
      if (child < 0) ::usleep(10000);
    }
    ASSERT_GT(child, 0);
  }  // destructor: SIGKILL + reap
  // ESRCH proves the process is gone (it was our child, now reaped).
  EXPECT_EQ(::kill(child, 0), -1);
  ProcessGroup::remove_rendezvous_dir(dir);
}

}  // namespace
}  // namespace dlb
