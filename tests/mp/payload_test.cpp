#include "mp/payload.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <utility>
#include <vector>

#include "obs/alloc.hpp"

namespace dlb {
namespace {

std::vector<std::int64_t> iota_words(std::size_t n) {
  std::vector<std::int64_t> words(n);
  std::iota(words.begin(), words.end(), std::int64_t{1});
  return words;
}

TEST(MpPayloadTest, SmallPayloadsStayInline) {
  const auto words = iota_words(MpPayload::kInlineWords);
  MpPayload p(words.data(), words.size(), nullptr);
  EXPECT_FALSE(p.spilled());
  EXPECT_EQ(p.size(), words.size());
  EXPECT_TRUE(p == words);
}

TEST(MpPayloadTest, InlineAssignNeverAllocates) {
  const auto words = iota_words(MpPayload::kInlineWords);
  MpPayload p;
  obs::AllocPhase phase;
  phase.rebase();
  p.assign(words.data(), words.size(), nullptr);
  EXPECT_EQ(phase.delta().count, 0u);
  EXPECT_FALSE(p.spilled());
}

TEST(MpPayloadTest, OversizedPayloadSpills) {
  const auto words = iota_words(MpPayload::kInlineWords + 1);
  MpPayload p(words.data(), words.size(), nullptr);
  EXPECT_TRUE(p.spilled());
  EXPECT_GE(p.capacity(), words.size());
  EXPECT_TRUE(p == words);
}

TEST(MpPayloadTest, AssignReusesSpillStorageInPlace) {
  const auto big = iota_words(12);
  const auto smaller = iota_words(9);
  MpPayload p(big.data(), big.size(), nullptr);
  const std::int64_t* storage = p.data();
  obs::AllocPhase phase;
  phase.rebase();
  p.assign(smaller.data(), smaller.size(), nullptr);
  EXPECT_EQ(phase.delta().count, 0u);
  EXPECT_EQ(p.data(), storage);
  EXPECT_TRUE(p == smaller);
}

TEST(MpPayloadTest, ClearKeepsStorage) {
  const auto big = iota_words(10);
  MpPayload p(big.data(), big.size(), nullptr);
  const std::uint32_t cap = p.capacity();
  p.clear();
  EXPECT_TRUE(p.empty());
  EXPECT_TRUE(p.spilled());
  EXPECT_EQ(p.capacity(), cap);
}

TEST(MpPayloadTest, CopyAndMoveRoundTrip) {
  const auto big = iota_words(11);
  MpPayload original(big.data(), big.size(), nullptr);
  MpPayload copy(original);
  EXPECT_TRUE(copy == original);
  EXPECT_NE(copy.data(), original.data());  // deep copy

  const std::int64_t* storage = original.data();
  MpPayload moved(std::move(original));
  EXPECT_EQ(moved.data(), storage);  // spill buffer stolen, not copied
  EXPECT_TRUE(moved == big);
  EXPECT_TRUE(original.empty());  // NOLINT(bugprone-use-after-move)
}

TEST(MpPayloadTest, EqualityComparesContents) {
  MpPayload a{1, 2, 3};
  MpPayload b{1, 2, 3};
  MpPayload c{1, 2, 4};
  MpPayload d{1, 2};
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a == d);
  const auto big = iota_words(9);
  MpPayload spilled(big.data(), big.size(), nullptr);
  EXPECT_TRUE(spilled == big);  // inline/spill representation is invisible
}

TEST(PayloadPoolTest, SpillBuffersReturnHomeAndGetReused) {
  PayloadPool pool;
  const auto big = iota_words(10);
  {
    MpPayload p(big.data(), big.size(), &pool);
    ASSERT_TRUE(p.spilled());
    EXPECT_EQ(pool.stats().created, 1u);
    EXPECT_EQ(pool.free_count(), 0u);
  }
  // Destroyed payload parked its buffer on the free list.
  EXPECT_EQ(pool.stats().returned, 1u);
  EXPECT_EQ(pool.free_count(), 1u);

  // Steady state: the next spill is served from the list, allocation-free.
  obs::AllocPhase phase;
  phase.rebase();
  {
    MpPayload p(big.data(), big.size(), &pool);
    EXPECT_TRUE(p.spilled());
  }
  EXPECT_EQ(phase.delta().count, 0u);
  const PayloadPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.created, 1u);
  EXPECT_EQ(stats.reused, 1u);
  EXPECT_EQ(stats.returned, 2u);
}

TEST(PayloadPoolTest, GrowsToTheLiveHighWaterCount) {
  // With k payloads alive at once the pool must create k buffers; after
  // they all return, another burst of k is served entirely from the list.
  PayloadPool pool;
  const auto big = iota_words(10);
  constexpr std::size_t kLive = 5;
  {
    std::vector<MpPayload> live;
    live.reserve(kLive);
    for (std::size_t i = 0; i < kLive; ++i)
      live.emplace_back(big.data(), big.size(), &pool);
    EXPECT_EQ(pool.stats().created, kLive);
  }
  EXPECT_EQ(pool.free_count(), kLive);
  {
    std::vector<MpPayload> live;
    live.reserve(kLive);
    for (std::size_t i = 0; i < kLive; ++i)
      live.emplace_back(big.data(), big.size(), &pool);
    const PayloadPool::Stats stats = pool.stats();
    EXPECT_EQ(stats.created, kLive);  // no new buffers
    EXPECT_EQ(stats.reused, kLive);
  }
}

TEST(PayloadPoolTest, AcquireSkipsTooSmallBuffers) {
  PayloadPool pool;
  const auto small_spill = iota_words(10);   // capacity 16
  const auto large_spill = iota_words(40);   // capacity 64
  { MpPayload p(small_spill.data(), small_spill.size(), &pool); }
  ASSERT_EQ(pool.free_count(), 1u);
  // The parked 16-word buffer cannot serve a 40-word payload: a new one
  // is created, and the small buffer stays on the list.
  { MpPayload p(large_spill.data(), large_spill.size(), &pool); }
  const PayloadPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.created, 2u);
  EXPECT_EQ(stats.reused, 0u);
  EXPECT_EQ(pool.free_count(), 2u);
  // A later small payload may reuse either parked buffer (first fit).
  { MpPayload p(small_spill.data(), small_spill.size(), &pool); }
  EXPECT_EQ(pool.stats().reused, 1u);
}

TEST(PayloadPoolTest, CopyTargetsTheSourcesPool) {
  // Copying a pooled payload draws the new buffer from the same pool,
  // so copies made on the receive path stay pooled too.
  PayloadPool pool;
  const auto big = iota_words(10);
  {
    MpPayload original(big.data(), big.size(), &pool);
    MpPayload copy(original);
    EXPECT_TRUE(copy.spilled());
    EXPECT_EQ(pool.stats().created, 2u);
  }
  EXPECT_EQ(pool.free_count(), 2u);
}

TEST(PayloadPoolTest, PoollessSpillsFreeToTheHeap) {
  const auto big = iota_words(10);
  MpPayload p(big.data(), big.size(), nullptr);
  EXPECT_TRUE(p.spilled());
  // Destruction must not crash (plain operator delete path); pool
  // bookkeeping is untouched because there is no pool.
}

}  // namespace
}  // namespace dlb
