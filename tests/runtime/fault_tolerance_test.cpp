// Failure-tolerant Invite/Accept/Assign: conservation modulo the
// declared-loss ledger under lossy links and scheduled crashes, clean
// rollbacks on timeouts, blacklisting of dead partners, and the
// metrics surface for the robustness counters.
#include "runtime/threaded_system.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>

#include "metrics/recorder.hpp"
#include "support/check.hpp"

namespace dlb {
namespace {

using namespace std::chrono_literals;

Trace make_trace(std::uint32_t n, std::uint32_t horizon, std::uint64_t seed) {
  Rng rng(seed);
  return Trace::record(Workload::hotspot(n, horizon, 1, 0.9, 0.2), rng);
}

ThreadedConfig faulty_cfg(double drop, std::uint64_t seed = 11) {
  ThreadedConfig cfg;
  cfg.f = 1.2;
  cfg.delta = 2;
  cfg.seed = seed;
  cfg.faults.seed = seed * 1000 + 1;
  cfg.faults.default_link.drop = drop;
  cfg.txn_timeout = 10ms;
  return cfg;
}

/// Conservation modulo declared loss, the central robustness invariant:
/// sum(final) == generated - consumed - lost_load.
void expect_conserved(const ThreadedSystem& sys) {
  std::int64_t total = 0;
  for (std::int64_t l : sys.final_loads()) total += l;
  const ThreadedStats& stats = sys.stats();
  EXPECT_EQ(total, static_cast<std::int64_t>(stats.generated) -
                       static_cast<std::int64_t>(stats.consumed) -
                       stats.lost_load);
}

TEST(FaultTolerantRuntime, InertPlanKeepsLedgerClean) {
  ThreadedConfig cfg;
  cfg.f = 1.2;
  cfg.delta = 2;
  ThreadedSystem sys(8, cfg);
  sys.run(make_trace(8, 300, 3));
  expect_conserved(sys);
  const ThreadedStats& stats = sys.stats();
  EXPECT_EQ(stats.aborted_ops, 0u);
  EXPECT_EQ(stats.timeouts, 0u);
  EXPECT_EQ(stats.lost_packets, 0u);
  EXPECT_EQ(stats.ranks_dead, 0u);
  EXPECT_EQ(stats.lost_load, 0);
  EXPECT_GT(stats.balance_ops, 0u);
  for (std::uint32_t p = 0; p < 8; ++p) EXPECT_FALSE(sys.processor_dead(p));
}

TEST(FaultTolerantRuntime, ConservesUnderModerateDrop) {
  ThreadedSystem sys(8, faulty_cfg(0.10));
  sys.run(make_trace(8, 400, 4));
  expect_conserved(sys);
  EXPECT_GT(sys.stats().balance_ops, 0u);
}

TEST(FaultTolerantRuntime, ConservesUnderHeavyDrop) {
  // 20% loss: many transactions abort or lose their Assign, yet the
  // ledger must still close exactly.
  ThreadedSystem sys(8, faulty_cfg(0.20));
  sys.run(make_trace(8, 400, 5));
  expect_conserved(sys);
  const ThreadedStats& stats = sys.stats();
  EXPECT_GT(stats.lost_packets, 0u);
  // Dropped invites/accepts/assigns must surface as expired waits.
  EXPECT_GT(stats.timeouts, 0u);
}

TEST(FaultTolerantRuntime, ConservesUnderDuplicationAndDelay) {
  ThreadedConfig cfg = faulty_cfg(0.05);
  cfg.faults.default_link.duplicate = 0.10;
  cfg.faults.default_link.delay = 0.10;
  ThreadedSystem sys(8, cfg);
  sys.run(make_trace(8, 400, 6));
  expect_conserved(sys);
}

TEST(FaultTolerantRuntime, CrashedProcessorIsJournalRecovered) {
  ThreadedConfig cfg = faulty_cfg(0.0);
  cfg.faults.kill(3, 200);
  cfg.faults.journal_interval = 10;
  ThreadedSystem sys(8, cfg);
  sys.run(make_trace(8, 400, 7));
  expect_conserved(sys);
  EXPECT_TRUE(sys.processor_dead(3));
  EXPECT_EQ(sys.stats().ranks_dead, 1u);
  EXPECT_TRUE(sys.journal().crashed(3));
  EXPECT_EQ(sys.final_loads()[3], sys.journal().recovered_load(3));
  for (std::uint32_t p = 0; p < 8; ++p)
    if (p != 3) EXPECT_FALSE(sys.processor_dead(p));
}

TEST(FaultTolerantRuntime, SurvivesCrashPlusLoss) {
  // The acceptance scenario: lossy links and a mid-run crash on a
  // 400-step run must terminate (ctest TIMEOUT guards the deadlock
  // case) with an exactly-closing ledger.
  ThreadedConfig cfg = faulty_cfg(0.15);
  cfg.faults.default_link.duplicate = 0.05;
  cfg.faults.kill(2, 150);
  cfg.faults.journal_interval = 20;
  ThreadedSystem sys(8, cfg);
  sys.run(make_trace(8, 400, 8));
  expect_conserved(sys);
  EXPECT_EQ(sys.stats().ranks_dead, 1u);
}

TEST(FaultTolerantRuntime, EarlyCrashLeavesSurvivorsBalancing) {
  // Kill a processor at step 0: survivors must blacklist it from every
  // partner draw and still run transactions among themselves.
  ThreadedConfig cfg = faulty_cfg(0.0);
  cfg.faults.kill(1, 0);
  ThreadedSystem sys(4, cfg);
  sys.run(make_trace(4, 300, 9));
  expect_conserved(sys);
  EXPECT_TRUE(sys.processor_dead(1));
  EXPECT_EQ(sys.final_loads()[1], 0);  // died before any journal commit
  EXPECT_GT(sys.stats().balance_ops, 0u);
}

TEST(FaultTolerantRuntime, MultipleCrashesTerminate) {
  ThreadedConfig cfg = faulty_cfg(0.10);
  cfg.faults.kill(1, 100).kill(5, 250);
  cfg.faults.journal_interval = 10;
  ThreadedSystem sys(8, cfg);
  sys.run(make_trace(8, 400, 10));
  expect_conserved(sys);
  EXPECT_EQ(sys.stats().ranks_dead, 2u);
}

TEST(FaultTolerantRuntime, RecorderReceivesFaultCounters) {
  FaultCounterRecorder recorder;
  ThreadedConfig cfg = faulty_cfg(0.20);
  cfg.faults.kill(3, 150);
  ThreadedSystem sys(8, cfg);
  sys.set_recorder(&recorder);
  sys.run(make_trace(8, 300, 11));
  const ThreadedStats& stats = sys.stats();
  EXPECT_EQ(recorder.totals().timeouts, stats.timeouts);
  EXPECT_EQ(recorder.totals().aborted_ops, stats.aborted_ops);
  EXPECT_EQ(recorder.totals().lost_packets, stats.lost_packets);
  EXPECT_EQ(recorder.totals().ranks_dead, stats.ranks_dead);
}

TEST(FaultTolerantRuntime, RejectsInvalidCrashRanks) {
  ThreadedConfig cfg;
  cfg.faults.kill(9, 10);  // only 4 processors
  EXPECT_THROW(ThreadedSystem(4, cfg), contract_error);
}

TEST(FaultTolerantRuntime, RunIsRepeatableAfterFaults) {
  // The same system object must be reusable: dead flags, journal and
  // counters re-arm per run.
  ThreadedConfig cfg = faulty_cfg(0.10);
  cfg.faults.kill(2, 100);
  ThreadedSystem sys(6, cfg);
  const Trace trace = make_trace(6, 200, 12);
  sys.run(trace);
  expect_conserved(sys);
  EXPECT_TRUE(sys.processor_dead(2));
  sys.run(trace);
  expect_conserved(sys);
  EXPECT_TRUE(sys.processor_dead(2));
  EXPECT_EQ(sys.stats().ranks_dead, 1u);
}

}  // namespace
}  // namespace dlb
