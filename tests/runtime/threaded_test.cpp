#include "runtime/threaded_system.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "metrics/imbalance.hpp"
#include "support/check.hpp"

namespace dlb {
namespace {

Trace make_trace(std::uint32_t n, std::uint32_t horizon, double g, double c,
                 std::uint64_t seed) {
  Rng rng(seed);
  return Trace::record(Workload::uniform(n, horizon, g, c), rng);
}

ThreadedConfig cfg(double f = 1.3, std::uint32_t delta = 1,
                   std::uint64_t seed = 1) {
  ThreadedConfig c;
  c.f = f;
  c.delta = delta;
  c.seed = seed;
  return c;
}

TEST(ThreadedSystem, ConservesLoad) {
  const auto trace = make_trace(4, 300, 0.6, 0.3, 2);
  ThreadedSystem sys(4, cfg());
  sys.run(trace);
  const auto& stats = sys.stats();
  std::int64_t total = 0;
  for (std::int64_t l : sys.final_loads()) total += l;
  EXPECT_EQ(total, static_cast<std::int64_t>(stats.generated) -
                       static_cast<std::int64_t>(stats.consumed));
  EXPECT_EQ(stats.generated, trace.total_generations());
}

TEST(ThreadedSystem, PerformsBalancingOperations) {
  Rng rng(3);
  const Trace trace =
      Trace::record(Workload::hotspot(4, 300, 1, 0.9, 0.2), rng);
  ThreadedSystem sys(4, cfg(1.2, 2));
  sys.run(trace);
  EXPECT_GT(sys.stats().balance_ops, 0u);
  EXPECT_GT(sys.stats().messages, 0u);
}

TEST(ThreadedSystem, BalancesHotspotLoad) {
  Rng rng(4);
  const Trace trace =
      Trace::record(Workload::hotspot(8, 500, 1, 0.9, 0.0), rng);
  ThreadedSystem sys(8, cfg(1.2, 2, 5));
  sys.run(trace);
  const auto report = measure_imbalance(sys.final_loads());
  // One producer, everyone else idle: balancing must have spread the load
  // (without balancing max_over_avg would be 8).
  EXPECT_LT(report.max_over_avg, 4.0);
  EXPECT_GT(report.avg_load, 0.0);
}

TEST(ThreadedSystem, NoLoadMeansNoOps) {
  const Trace trace(4, 50);  // all-idle trace
  ThreadedSystem sys(4, cfg());
  sys.run(trace);
  EXPECT_EQ(sys.stats().balance_ops, 0u);
  for (std::int64_t l : sys.final_loads()) EXPECT_EQ(l, 0);
}

TEST(ThreadedSystem, ManyThreadsStress) {
  const auto trace = make_trace(16, 200, 0.7, 0.4, 6);
  ThreadedSystem sys(16, cfg(1.1, 3, 7));
  sys.run(trace);
  std::int64_t total = 0;
  for (std::int64_t l : sys.final_loads()) {
    EXPECT_GE(l, 0);
    total += l;
  }
  EXPECT_EQ(total, static_cast<std::int64_t>(sys.stats().generated) -
                       static_cast<std::int64_t>(sys.stats().consumed));
}

TEST(ThreadedSystem, RepeatedRunsDoNotDeadlock) {
  // Regression guard for the refusal-based deadlock-freedom argument:
  // many short runs with aggressive balancing (small f, delta close to n).
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto trace = make_trace(6, 120, 0.8, 0.5, seed + 100);
    ThreadedSystem sys(6, cfg(1.05, 4, seed));
    sys.run(trace);
    SUCCEED();
  }
}

TEST(ThreadedSystem, InvalidConfigThrows) {
  EXPECT_THROW(ThreadedSystem(1, cfg()), contract_error);
  EXPECT_THROW(ThreadedSystem(4, cfg(1.0)), contract_error);
  EXPECT_THROW(ThreadedSystem(4, cfg(1.2, 4)), contract_error);
}

TEST(ThreadedSystem, TraceSizeMismatchThrows) {
  const auto trace = make_trace(4, 50, 0.5, 0.5, 8);
  ThreadedSystem sys(8, cfg());
  EXPECT_THROW(sys.run(trace), contract_error);
}

}  // namespace
}  // namespace dlb
