#include "runtime/mailbox.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "obs/alloc.hpp"

namespace dlb {
namespace {

using namespace std::chrono_literals;

TEST(Mailbox, DeliversInFifoOrder) {
  Mailbox<int> box;
  box.send(1);
  box.send(2);
  box.send(3);
  EXPECT_EQ(box.recv(), 1);
  EXPECT_EQ(box.recv(), 2);
  EXPECT_EQ(box.recv(), 3);
  EXPECT_TRUE(box.empty());
}

TEST(Mailbox, TryRecvDoesNotBlock) {
  Mailbox<int> box;
  EXPECT_FALSE(box.try_recv().has_value());
  box.send(7);
  EXPECT_EQ(box.try_recv(), 7);
  EXPECT_FALSE(box.try_recv().has_value());
}

TEST(Mailbox, RecvForTimesOutWhenEmpty) {
  Mailbox<int> box;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(box.recv_for(20ms).has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - start, 20ms);
}

TEST(Mailbox, RecvForReturnsQueuedMessageImmediately) {
  Mailbox<int> box;
  box.send(42);
  EXPECT_EQ(box.recv_for(0ms), 42);
}

TEST(Mailbox, RecvForWakesOnConcurrentSend) {
  Mailbox<int> box;
  std::thread sender([&box] {
    std::this_thread::sleep_for(5ms);
    box.send(11);
  });
  // Deadline far beyond the send so the wait path (not the timeout
  // path) is exercised.
  EXPECT_EQ(box.recv_for(5000ms), 11);
  sender.join();
}

TEST(Mailbox, CloseWakesBlockedReceivers) {
  Mailbox<int> box;
  std::thread blocked_recv([&box] { EXPECT_FALSE(box.recv().has_value()); });
  std::thread blocked_timed([&box] {
    EXPECT_FALSE(box.recv_for(5000ms).has_value());
  });
  std::this_thread::sleep_for(5ms);
  box.close();
  blocked_recv.join();
  blocked_timed.join();
}

TEST(Mailbox, DrainsQueuedMessagesAfterClose) {
  Mailbox<int> box;
  box.send(1);
  box.send(2);
  box.close();
  EXPECT_EQ(box.recv(), 1);
  EXPECT_EQ(box.recv_for(0ms), 2);
  EXPECT_FALSE(box.recv().has_value());
}

TEST(Mailbox, ConcurrentProducersLoseNothing) {
  // MPSC stress: 4 producers x 2000 messages against one consumer that
  // alternates blocking and deadline receives.  Every message must
  // arrive exactly once.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;
  Mailbox<std::uint32_t> box;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&box, p] {
      for (int i = 0; i < kPerProducer; ++i)
        box.send(static_cast<std::uint32_t>(p * kPerProducer + i));
    });
  }
  std::vector<int> seen(kProducers * kPerProducer, 0);
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    std::optional<std::uint32_t> msg =
        (i % 2 == 0) ? box.recv() : box.recv_for(5000ms);
    ASSERT_TRUE(msg.has_value());
    ++seen[*msg];
  }
  for (std::thread& t : producers) t.join();
  EXPECT_TRUE(box.empty());
  for (int count : seen) EXPECT_EQ(count, 1);
}

TEST(Mailbox, PerProducerOrderIsPreserved) {
  // FIFO per producer even under interleaving: each producer sends an
  // increasing sequence; the consumer must see each producer's values
  // in order.
  constexpr int kProducers = 3;
  constexpr int kPerProducer = 1000;
  struct Tagged {
    int producer;
    int seq;
  };
  Mailbox<Tagged> box;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&box, p] {
      for (int i = 0; i < kPerProducer; ++i) box.send(Tagged{p, i});
    });
  }
  std::vector<int> next(kProducers, 0);
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    const auto msg = box.recv();
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(msg->seq, next[msg->producer]);
    ++next[msg->producer];
  }
  for (std::thread& t : producers) t.join();
}

TEST(Mailbox, DrainIntoTakesEverythingInOrder) {
  Mailbox<int> box;
  for (int i = 0; i < 5; ++i) box.send(i);
  std::vector<int> out;
  EXPECT_EQ(box.drain_into(out), 5u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_TRUE(box.empty());
  EXPECT_EQ(box.drain_into(out), 0u);  // empty drain is a cheap no-op
  EXPECT_EQ(out.size(), 5u);           // and appends nothing
}

TEST(Mailbox, DrainIntoAppendsAfterExistingElements) {
  Mailbox<int> box;
  box.send(10);
  box.send(11);
  std::vector<int> out{1, 2};
  EXPECT_EQ(box.drain_into(out), 2u);
  EXPECT_EQ(out, (std::vector<int>{1, 2, 10, 11}));
}

// drain_into must be observationally identical to a try_recv loop: same
// messages, same order, under concurrent producers.  (This pins the
// batched receive path ThreadedSystem's hot loop switched to.)
TEST(Mailbox, DrainIntoMatchesRecvSemanticsUnderConcurrency) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;
  struct Tagged {
    int producer;
    int seq;
  };
  Mailbox<Tagged> box;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&box, p] {
      for (int i = 0; i < kPerProducer; ++i) box.send(Tagged{p, i});
    });
  }
  std::vector<int> next(kProducers, 0);
  std::vector<Tagged> batch;
  int received = 0;
  while (received < kProducers * kPerProducer) {
    batch.clear();
    if (box.drain_into(batch) == 0) {
      std::this_thread::yield();
      continue;
    }
    for (const Tagged& msg : batch) {
      EXPECT_EQ(msg.seq, next[msg.producer]);  // per-producer FIFO held
      ++next[msg.producer];
      ++received;
    }
  }
  for (std::thread& t : producers) t.join();
  EXPECT_TRUE(box.empty());
}

// The reason the queue is a RingQueue: once the mailbox has seen its
// high-water depth, further send/recv/drain cycles reuse the same
// buffer and never touch the allocator — even when the ring's head
// wraps around the backing storage many times over.
TEST(Mailbox, SteadyStateTrafficDoesNotAllocate) {
  Mailbox<std::uint64_t> box;
  std::vector<std::uint64_t> batch;
  batch.reserve(32);
  for (std::uint64_t i = 0; i < 32; ++i) box.send(i);  // set the high water
  box.drain_into(batch);
  obs::AllocPhase phase;
  phase.rebase();
  std::uint64_t next = 32;
  for (int round = 0; round < 200; ++round) {
    for (std::uint64_t i = 0; i < 20; ++i) box.send(next + i);
    next += 20;
    for (int i = 0; i < 10; ++i) box.try_recv();
    batch.clear();
    box.drain_into(batch);
    EXPECT_EQ(batch.size(), 10u);
  }
  EXPECT_EQ(phase.delta().count, 0u);
}

}  // namespace
}  // namespace dlb
