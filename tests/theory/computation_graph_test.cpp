#include "theory/computation_graph.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/check.hpp"
#include "theory/variation.hpp"

namespace dlb {
namespace {

TEST(ComputationGraph, PaperFigure2Example) {
  // §5's example: candidate sequence (2, 4, 3, 3, 4, 2, 2) — a bow edge
  // (j, i) exists iff step i's candidate was last used in step j.
  const ComputationGraph graph({2, 4, 3, 3, 4, 2, 2});
  EXPECT_EQ(graph.steps(), 7u);
  EXPECT_EQ(graph.bow_source(1), 0u);  // candidate 2: fresh
  EXPECT_EQ(graph.bow_source(2), 0u);  // candidate 4: fresh
  EXPECT_EQ(graph.bow_source(3), 0u);  // candidate 3: fresh
  EXPECT_EQ(graph.bow_source(4), 3u);  // candidate 3 again, from step 3
  EXPECT_EQ(graph.bow_source(5), 2u);  // candidate 4, from step 2
  EXPECT_EQ(graph.bow_source(6), 1u);  // candidate 2, from step 1
  EXPECT_EQ(graph.bow_source(7), 6u);  // candidate 2, from step 6
}

TEST(ComputationGraph, SingleStepLoad) {
  // One step: v_1 = (f/2)·v_0 + (1/2)·v_0 = (f+1)/2.
  const ComputationGraph graph({1});
  EXPECT_DOUBLE_EQ(graph.generator_load(1.5), 1.25);
  // The candidate holds the post-balance value v_1.
  EXPECT_DOUBLE_EQ(graph.candidate_load(1, 1.5), 1.25);
  // A candidate that never participated keeps the initial load.
  EXPECT_DOUBLE_EQ(graph.candidate_load(2, 1.5), 1.0);
}

TEST(ComputationGraph, FreshCandidatesGiveClosedForm) {
  // All-distinct candidates: v_i = (f/2) v_{i-1} + 1/2 with v_0 = 1.
  const double f = 1.4;
  const ComputationGraph graph({1, 2, 3});
  double v = 1.0;
  for (int i = 0; i < 3; ++i) v = 0.5 * f * v + 0.5;
  EXPECT_DOUBLE_EQ(graph.generator_load(f), v);
}

TEST(ComputationGraph, RepeatedSingleCandidateMatchesTwoProcessorSystem) {
  // n = 2: the same candidate every step; the pair's total grows by the
  // generator's f-growth each step and is split evenly.
  const double f = 1.2;
  const ComputationGraph graph({1, 1, 1, 1});
  double v = 1.0;
  double w = 1.0;
  for (int i = 0; i < 4; ++i) {
    const double shared = 0.5 * (f * v + w);
    v = shared;
    w = shared;
  }
  EXPECT_NEAR(graph.generator_load(f), v, 1e-12);
  EXPECT_NEAR(graph.candidate_load(1, f), w, 1e-12);
}

TEST(ComputationGraph, InitialLoadScalesLinearly) {
  const ComputationGraph graph({1, 2, 1});
  EXPECT_NEAR(graph.generator_load(1.3, 10.0),
              10.0 * graph.generator_load(1.3, 1.0), 1e-12);
}

TEST(ComputationGraph, ValidatesInput) {
  EXPECT_THROW(ComputationGraph({0}), contract_error);
  const ComputationGraph graph({1, 2});
  EXPECT_THROW(graph.bow_source(0), contract_error);
  EXPECT_THROW(graph.bow_source(3), contract_error);
  EXPECT_THROW(graph.candidate_load(0, 1.1), contract_error);
}

TEST(EnumerateMoments, TwoProcessorsIsDeterministic) {
  // n = 2: only one candidate sequence exists, so VD must be 0.
  const auto m = enumerate_moments(2, 5, 1.3);
  EXPECT_EQ(m.sequences, 1u);
  EXPECT_DOUBLE_EQ(m.vd_generator, 0.0);
  EXPECT_DOUBLE_EQ(m.vd_other, 0.0);
}

TEST(EnumerateMoments, RejectsExplosiveEnumerations) {
  EXPECT_THROW(enumerate_moments(64, 30, 1.1), contract_error);
}

// The central cross-validation: full enumeration over the paper's own
// computation-graph formalism must agree EXACTLY with the O(t) moment
// recursion of theory/variation.hpp.
struct EnumCase {
  std::uint32_t n;
  std::uint32_t steps;
  double f;
};

class EnumerationVsRecursion : public ::testing::TestWithParam<EnumCase> {};

TEST_P(EnumerationVsRecursion, MomentsAgreeToMachinePrecision) {
  const auto& prm = GetParam();
  const auto enumerated = enumerate_moments(prm.n, prm.steps, prm.f);

  VariationParams vp;
  vp.n = prm.n;
  vp.delta = 1;
  vp.f = prm.f;
  VariationRecursion rec(vp);
  rec.advance(prm.steps);

  EXPECT_NEAR(rec.vd_other(), enumerated.vd_other, 1e-10)
      << "n=" << prm.n << " steps=" << prm.steps << " f=" << prm.f;
  EXPECT_NEAR(rec.vd_generator(), enumerated.vd_generator, 1e-10);
  EXPECT_NEAR(rec.ratio(),
              enumerated.mean_generator / enumerated.mean_other, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EnumerationVsRecursion,
    ::testing::Values(EnumCase{3, 6, 1.1}, EnumCase{3, 10, 1.5},
                      EnumCase{4, 6, 1.1}, EnumCase{4, 8, 1.2},
                      EnumCase{5, 6, 1.3}, EnumCase{6, 5, 1.1},
                      EnumCase{9, 4, 1.8}),
    [](const ::testing::TestParamInfo<EnumCase>& ti) {
      return "n" + std::to_string(ti.param.n) + "_t" +
             std::to_string(ti.param.steps) + "_f" +
             std::to_string(static_cast<int>(ti.param.f * 10));
    });

}  // namespace
}  // namespace dlb
