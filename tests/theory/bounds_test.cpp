#include "theory/bounds.hpp"

#include <gtest/gtest.h>

#include "core/one_processor.hpp"
#include "support/check.hpp"
#include "support/stats.hpp"

namespace dlb {
namespace {

TEST(Bounds, Theorem3EnvelopeOrdering) {
  for (const ModelParams& p :
       {ModelParams{16, 1, 1.1}, ModelParams{64, 4, 1.8},
        ModelParams{256, 2, 1.3}}) {
    EXPECT_LT(theorem3_lower(p), 1.0);
    EXPECT_GT(theorem3_upper(p), 1.0);
    EXPECT_LT(theorem3_lower(p), theorem3_upper(p));
  }
}

TEST(Bounds, Theorem4FactorValuesAndDomain) {
  // f = 1: factor = delta / (delta + 1 - 1) = 1... times f² = 1.
  EXPECT_DOUBLE_EQ(theorem4_factor(1, 1.0), 1.0);
  // delta = 1, f = 1.5: 1.5² * 1 / 0.5 = 4.5.
  EXPECT_DOUBLE_EQ(theorem4_factor(1, 1.5), 4.5);
  EXPECT_THROW(theorem4_factor(1, 2.0), contract_error);
  EXPECT_THROW(theorem4_factor(2, 0.5), contract_error);
}

TEST(Bounds, Theorem4FiniteFactorBelowAsymptotic) {
  ModelParams p{64, 4, 1.8};
  for (std::uint32_t t : {0u, 1u, 5u, 50u, 500u}) {
    EXPECT_LE(theorem4_factor_finite(t, p),
              theorem4_factor(p.delta, p.f) + 1e-9);
  }
  // t = 0: G^0(1) = 1 so the factor is exactly f².
  EXPECT_DOUBLE_EQ(theorem4_factor_finite(0, p), 1.8 * 1.8);
}

TEST(Bounds, UAndDAreContractionFactors) {
  for (const ModelParams& p :
       {ModelParams{16, 1, 1.3}, ModelParams{64, 4, 1.8},
        ModelParams{64, 1, 1.1}}) {
    // Both describe the per-operation shrink of the remaining surplus:
    // strictly between 0 and 1 for f > 1.
    EXPECT_GT(U_const(p), 0.0);
    EXPECT_GT(D_const(p), 0.0);
    EXPECT_LT(D_const(p), 1.0);
    EXPECT_LT(U_const(p), 1.0);
    // U uses FIX(n, δ, 1/f) < 1 < FIX(n, δ, f), so U > D: the lower
    // bound assumes slower shrink per operation than the upper bound.
    EXPECT_GE(U_const(p) + 1e-12, D_const(p));
  }
}

TEST(Bounds, Lemma5LowerBelowUpper) {
  for (const ModelParams& p :
       {ModelParams{16, 1, 1.3}, ModelParams{64, 2, 1.5}}) {
    const auto bounds = lemma5_bounds(1000.0, 500.0, p);
    EXPECT_GE(bounds.lower, 0.0);
    if (bounds.upper_valid) {
      EXPECT_GE(bounds.upper, bounds.lower);
    }
  }
}

TEST(Bounds, Lemma5RejectsBadArguments) {
  ModelParams p{16, 1, 1.3};
  EXPECT_THROW(lemma5_bounds(10.0, 10.0, p), contract_error);  // x == c
  EXPECT_THROW(lemma5_bounds(10.0, 0.0, p), contract_error);   // c == 0
  ModelParams f1{16, 1, 1.0};
  EXPECT_THROW(lemma5_bounds(10.0, 5.0, f1), contract_error);
}

TEST(Bounds, Lemma6BetweenLemma5Bounds) {
  // The improved upper bound must not exceed Lemma 5's and not undercut
  // the lower bound.
  for (const ModelParams& p :
       {ModelParams{16, 1, 1.3}, ModelParams{64, 2, 1.5},
        ModelParams{32, 4, 1.8}}) {
    const double x = 2000.0;
    const double c = 800.0;
    const auto l5 = lemma5_bounds(x, c, p);
    const double l6 = lemma6_upper(x, c, p);
    EXPECT_GE(l6 + 1e-9, l5.lower)
        << "n=" << p.n << " delta=" << p.delta << " f=" << p.f;
    if (l5.upper_valid) {
      EXPECT_LE(l6, l5.upper + 1.0 + 1e-9);
    }
  }
}

TEST(Bounds, Lemma6ScaleInvariantInCOverX) {
  // §6: "The same results can be achieved for any other x and c if c/x
  // remains constant."  The bound grows extremely slowly with x at fixed
  // c/x; check near-invariance.
  ModelParams p{32, 1, 1.4};
  const double t1 = lemma6_upper(1000.0, 400.0, p);
  const double t2 = lemma6_upper(100000.0, 40000.0, p);
  EXPECT_NEAR(t1, t2, 2.0);
}

TEST(Bounds, Lemma6MoreOpsForLargerDecrease) {
  ModelParams p{32, 1, 1.4};
  EXPECT_LE(lemma6_upper(1000.0, 100.0, p), lemma6_upper(1000.0, 500.0, p));
  EXPECT_LE(lemma6_upper(1000.0, 500.0, p), lemma6_upper(1000.0, 900.0, p));
}

TEST(Bounds, SmallerFNeedsMoreOperations) {
  // §6: the cost "is very sensitive to the parameter f ... higher for low
  // f-values".
  ModelParams low_f{32, 1, 1.1};
  ModelParams high_f{32, 1, 1.8};
  EXPECT_GT(lemma6_upper(1000.0, 500.0, low_f),
            lemma6_upper(1000.0, 500.0, high_f));
}

// Simulation cross-check (the §6 experiment): measured operation counts
// sit between Lemma 5's lower bound and (near) Lemma 6's upper bound.
struct DecreaseCase {
  std::uint32_t n;
  std::uint32_t delta;
  double f;
};

class DecreaseBoundsVsSim : public ::testing::TestWithParam<DecreaseCase> {};

TEST_P(DecreaseBoundsVsSim, MeasuredOpsRespectBounds) {
  const auto& prm = GetParam();
  const std::int64_t x = 3000;
  const std::int64_t c = 1200;
  ModelParams mp{static_cast<double>(prm.n), static_cast<double>(prm.delta),
                 prm.f};

  RunningMoments ops;
  Rng seeder(4321);
  for (int run = 0; run < 60; ++run) {
    OneProcessorModel::Params op;
    op.n = prm.n;
    op.delta = prm.delta;
    op.f = prm.f;
    OneProcessorModel model(op, seeder.next());
    // Prepare the FIX-converged state the lemma assumes: generator at x,
    // others at x / FIX.
    const double fix = fixpoint(mp);
    model.set_load(0, x);
    for (std::uint32_t i = 1; i < prm.n; ++i)
      model.set_load(i, static_cast<std::int64_t>(
                            static_cast<double>(x) / fix));
    model.set_trigger_baseline(x);
    ops.add(static_cast<double>(
        model.consume_total(static_cast<std::uint64_t>(c))));
  }

  const auto l5 = lemma5_bounds(static_cast<double>(x),
                                static_cast<double>(c), mp);
  const double l6 = lemma6_upper(static_cast<double>(x),
                                 static_cast<double>(c), mp);
  // Generous envelopes: the paper reports the bounds are "very close to
  // reality"; we assert containment with modest slack for integer
  // rounding and the prepared-state approximation.
  EXPECT_GE(ops.mean() + 1.0, l5.lower)
      << "n=" << prm.n << " delta=" << prm.delta << " f=" << prm.f;
  EXPECT_LE(ops.mean(), l6 * 1.5 + 3.0)
      << "n=" << prm.n << " delta=" << prm.delta << " f=" << prm.f;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DecreaseBoundsVsSim,
    ::testing::Values(DecreaseCase{16, 1, 1.3}, DecreaseCase{16, 1, 1.5},
                      DecreaseCase{32, 2, 1.3}, DecreaseCase{64, 1, 1.4},
                      DecreaseCase{32, 4, 1.5}),
    [](const ::testing::TestParamInfo<DecreaseCase>& ti) {
      return "n" + std::to_string(ti.param.n) + "_d" +
             std::to_string(ti.param.delta) + "_f" +
             std::to_string(static_cast<int>(ti.param.f * 10));
    });

}  // namespace
}  // namespace dlb
