#include "theory/operators.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/check.hpp"

namespace dlb {
namespace {

TEST(Operators, GAtBalancedPoint) {
  // n = 2, delta = 1, f = 1, k = 1: G(1) = (1+1)(1) / (1 + 0 + 1) = 1.
  ModelParams p{2, 1, 1.0};
  EXPECT_DOUBLE_EQ(G_op(1.0, p), 1.0);
}

TEST(Operators, GIncreasesRatioForGrowth) {
  ModelParams p{16, 1, 1.5};
  // Starting balanced, one growth + balance step must leave the generator
  // ahead of the others.
  EXPECT_GT(G_op(1.0, p), 1.0);
}

TEST(Operators, CDecreasesRatioForShrink) {
  ModelParams p{16, 1, 1.5};
  EXPECT_LT(C_op(1.0, p), 1.0);
}

TEST(Operators, CIsGWithInverseF) {
  ModelParams p{32, 2, 1.4};
  ModelParams p_inv{32, 2, 1.0 / 1.4};
  for (double k : {0.5, 1.0, 1.7, 3.0})
    EXPECT_DOUBLE_EQ(C_op(k, p), G_op(k, p_inv));
}

TEST(Operators, FixpointIsFixed) {
  for (const ModelParams& p :
       {ModelParams{8, 1, 1.1}, ModelParams{64, 4, 1.8},
        ModelParams{1024, 2, 1.2}, ModelParams{16, 8, 4.0}}) {
    const double fix = fixpoint(p);
    EXPECT_NEAR(G_op(fix, p), fix, 1e-12) << "n=" << p.n;
  }
}

TEST(Operators, Lemma2ThresholdBehaviour) {
  // G(k) >= k iff k <= FIX; G(k) <= k iff k >= FIX (Lemma 2).
  ModelParams p{64, 2, 1.3};
  const double fix = fixpoint(p);
  EXPECT_GT(G_op(fix * 0.5, p), fix * 0.5);
  EXPECT_LT(G_op(fix * 2.0, p), fix * 2.0);
}

TEST(Operators, IterationConvergesToFixpointFromAnywhere) {
  // Banach contraction: any start converges (Theorem 1's remark).
  ModelParams p{64, 4, 1.8};
  const double fix = fixpoint(p);
  for (double k0 : {0.01, 1.0, 2.0, 10.0, 100.0}) {
    EXPECT_NEAR(iterate_G(k0, 500, p), fix, 1e-9) << "k0=" << k0;
  }
}

TEST(Operators, Theorem1MonotoneApproachFromBalancedStart) {
  // G^t(1) <= FIX for all t, increasing toward it.
  ModelParams p{32, 1, 1.5};
  const double fix = fixpoint(p);
  double prev = 1.0;
  for (std::uint32_t t = 1; t <= 200; ++t) {
    const double cur = iterate_G(1.0, t, p);
    EXPECT_LE(cur, fix + 1e-12);
    EXPECT_GE(cur, prev - 1e-12);
    prev = cur;
  }
}

TEST(Operators, Theorem2LimitAndBound) {
  // FIX(n, δ, f) <= δ/(δ+1−f) and -> it as n -> ∞.
  const double delta = 2;
  const double f = 1.6;
  const double limit = fixpoint_limit(delta, f);
  double prev_gap = 1e9;
  for (double n : {4.0, 16.0, 64.0, 256.0, 4096.0, 1e6}) {
    ModelParams p{n, delta, f};
    const double fix = fixpoint(p);
    EXPECT_LE(fix, limit + 1e-9) << "n=" << n;
    const double gap = limit - fix;
    EXPECT_LE(gap, prev_gap + 1e-12);
    prev_gap = gap;
  }
  EXPECT_NEAR(fixpoint(ModelParams{1e9, delta, f}), limit, 1e-4);
}

TEST(Operators, Lemma3SandwichForProducerConsumer) {
  // FIX(n, δ, 1/f) <= 1 <= FIX(n, δ, f): a balanced system stays inside
  // the Theorem 3 envelope from the start.
  for (const ModelParams& p :
       {ModelParams{16, 1, 1.1}, ModelParams{64, 4, 1.8}}) {
    ModelParams inv = p;
    inv.f = 1.0 / p.f;
    EXPECT_LE(fixpoint(inv), 1.0 + 1e-12);
    EXPECT_GE(fixpoint(p), 1.0 - 1e-12);
    // And C^t(1) decreases toward FIX(n, δ, 1/f).
    const double c_limit = iterate_C(1.0, 500, p);
    EXPECT_NEAR(c_limit, fixpoint(inv), 1e-9);
  }
}

TEST(Operators, FixpointLimitRequiresValidF) {
  EXPECT_THROW(fixpoint_limit(1, 2.0), contract_error);
  EXPECT_NO_THROW(fixpoint_limit(1, 1.99));
  EXPECT_NO_THROW(fixpoint_limit(4, 4.5));
}

TEST(Operators, IterationsToConverge) {
  ModelParams p{16, 1, 1.5};
  const std::uint32_t t = iterations_to_converge(1.0, 1e-6, 10000, p);
  EXPECT_GT(t, 0u);
  EXPECT_LT(t, 10000u);
  EXPECT_NEAR(iterate_G(1.0, t, p), fixpoint(p), 1e-6);
}

TEST(Operators, InvalidParamsThrow) {
  EXPECT_THROW(G_op(1.0, ModelParams{1, 1, 1.1}), contract_error);
  EXPECT_THROW(G_op(1.0, ModelParams{4, 4, 1.1}), contract_error);
  EXPECT_THROW(G_op(1.0, ModelParams{4, 1, 0.0}), contract_error);
}

// Lemma 1 cross-check by brute force: simulate the *expected-value*
// dynamics directly (continuous loads, all others equal) and compare the
// ratio with G^t(1).
TEST(Operators, Lemma1MatchesDirectExpectationDynamics) {
  const double n = 12;
  const double delta = 3;
  const double f = 1.4;
  ModelParams p{n, delta, f};

  // Track E(l_0) and the common E(l_i) directly: before a balance the
  // generator holds f*v0; the balance replaces the generator and delta
  // random others by their average; a random other is a participant with
  // probability delta/(n-1).
  double v0 = 1.0;
  double vi = 1.0;
  for (int t = 0; t < 60; ++t) {
    const double grown = f * v0;
    const double avg = (grown + delta * vi) / (delta + 1.0);
    const double pc = delta / (n - 1.0);
    v0 = avg;
    vi = pc * avg + (1.0 - pc) * vi;
    const double expected_ratio = iterate_G(1.0, static_cast<std::uint32_t>(t + 1), p);
    EXPECT_NEAR(v0 / vi, expected_ratio, 1e-9) << "t=" << t;
  }
}

}  // namespace
}  // namespace dlb
