#include "theory/variation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/check.hpp"
#include "theory/operators.hpp"

namespace dlb {
namespace {

VariationParams vp(std::uint32_t n, std::uint32_t delta, double f,
                   bool relaxed = false) {
  VariationParams p;
  p.n = n;
  p.delta = delta;
  p.f = f;
  p.relaxed_pairwise = relaxed;
  return p;
}

TEST(VariationRecursion, StartsAtZeroVariation) {
  VariationRecursion rec(vp(16, 1, 1.1));
  EXPECT_DOUBLE_EQ(rec.vd_other(), 0.0);
  EXPECT_DOUBLE_EQ(rec.vd_generator(), 0.0);
  EXPECT_DOUBLE_EQ(rec.ratio(), 1.0);
}

TEST(VariationRecursion, VariationGrowsThenStabilizes) {
  VariationRecursion rec(vp(16, 1, 1.1));
  rec.advance(5);
  const double early = rec.vd_other();
  EXPECT_GT(early, 0.0);
  rec.advance(145);
  const double late = rec.vd_other();
  rec.advance(150);
  const double later = rec.vd_other();
  // Figure 6: the curve converges quickly; after 150 steps the change
  // over another 150 steps is tiny.
  EXPECT_NEAR(late, later, 0.02 * late + 1e-6);
}

TEST(VariationRecursion, RatioConvergesToFixpoint) {
  // The mean-ratio embedded in the second-moment recursion must agree
  // with the §3 fixed point — a strong internal consistency check.
  for (const auto& p : {vp(16, 1, 1.1), vp(35, 4, 1.2), vp(8, 2, 1.5)}) {
    VariationRecursion rec(p);
    rec.advance(2000);
    ModelParams mp{static_cast<double>(p.n), static_cast<double>(p.delta),
                   p.f};
    EXPECT_NEAR(rec.ratio(), fixpoint(mp), 1e-6)
        << "n=" << p.n << " delta=" << p.delta << " f=" << p.f;
  }
}

TEST(VariationRecursion, HigherDeltaLowersVariation) {
  // Figure 6's main visual: delta = 4 curves sit below delta = 1.
  VariationRecursion d1(vp(20, 1, 1.2));
  VariationRecursion d2(vp(20, 2, 1.2));
  VariationRecursion d4(vp(20, 4, 1.2));
  d1.advance(150);
  d2.advance(150);
  d4.advance(150);
  EXPECT_GT(d1.vd_other(), d2.vd_other());
  EXPECT_GT(d2.vd_other(), d4.vd_other());
}

TEST(VariationRecursion, HigherFRaisesVariation) {
  VariationRecursion f11(vp(20, 1, 1.1));
  VariationRecursion f12(vp(20, 1, 1.2));
  f11.advance(150);
  f12.advance(150);
  EXPECT_LT(f11.vd_other(), f12.vd_other());
}

TEST(VariationRecursion, BoundedInNetworkSize) {
  // Figure 6: the variation density "can be bounded independent of the
  // network size": growing n does not blow the converged value up.
  double prev = 0.0;
  for (std::uint32_t n : {5u, 10u, 20u, 35u, 70u, 140u}) {
    VariationRecursion rec(vp(n, 1, 1.1));
    rec.advance(400);
    const double v = rec.vd_other();
    EXPECT_LT(v, 2.0) << "n=" << n;
    if (n >= 20) {
      // Converging in n: successive values move by little.
      EXPECT_NEAR(v, prev, 0.35);
    }
    prev = v;
  }
}

TEST(VariationRecursion, RelaxedDiffersFromExactDeltaWay) {
  VariationRecursion exact(vp(20, 4, 1.2, false));
  VariationRecursion relaxed(vp(20, 4, 1.2, true));
  exact.advance(100);
  relaxed.advance(100);
  EXPECT_NE(exact.vd_other(), relaxed.vd_other());
}

TEST(VariationRecursion, InvalidParamsThrow) {
  EXPECT_THROW(VariationRecursion(vp(1, 1, 1.1)), contract_error);
  EXPECT_THROW(VariationRecursion(vp(4, 4, 1.1)), contract_error);
  EXPECT_THROW(VariationRecursion(vp(4, 1, 0.9)), contract_error);
}

// ---- Monte-Carlo cross-validation of the exact recursion ---------------

struct VarCase {
  std::uint32_t n;
  std::uint32_t delta;
  double f;
  bool relaxed;
};

class RecursionVsMonteCarlo : public ::testing::TestWithParam<VarCase> {};

TEST_P(RecursionVsMonteCarlo, AgreeWithinSamplingError) {
  const auto& prm = GetParam();
  const std::uint32_t steps = 40;
  VariationRecursion rec(vp(prm.n, prm.delta, prm.f, prm.relaxed));
  rec.advance(steps);
  const auto mc = estimate_variation_mc(
      vp(prm.n, prm.delta, prm.f, prm.relaxed), steps, /*runs=*/400,
      /*seed=*/2026, /*initial_load=*/2000);
  EXPECT_NEAR(mc.vd_other, rec.vd_other(),
              0.12 * rec.vd_other() + 0.02)
      << "n=" << prm.n << " delta=" << prm.delta << " f=" << prm.f
      << " relaxed=" << prm.relaxed;
  EXPECT_NEAR(mc.ratio, rec.ratio(), 0.08 * rec.ratio() + 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RecursionVsMonteCarlo,
    ::testing::Values(VarCase{8, 1, 1.1, false}, VarCase{16, 1, 1.2, false},
                      VarCase{16, 2, 1.1, false}, VarCase{10, 4, 1.2, false},
                      VarCase{16, 4, 1.2, true}),
    [](const ::testing::TestParamInfo<VarCase>& ti) {
      return "n" + std::to_string(ti.param.n) + "_d" +
             std::to_string(ti.param.delta) + "_f" +
             std::to_string(static_cast<int>(ti.param.f * 10)) +
             (ti.param.relaxed ? "_relaxed" : "");
    });

TEST(VariationMC, RequiresAtLeastTwoRuns) {
  EXPECT_THROW(estimate_variation_mc(vp(8, 1, 1.1), 10, 1, 1), contract_error);
}

}  // namespace
}  // namespace dlb
