// Threaded message-passing implementation of the balancing algorithm.
//
// The sequential System is the measurement instrument for the paper's
// figures; ThreadedSystem demonstrates that the same algorithmic principle
// runs as a real concurrent system: one thread per processor, no shared
// load state, all coordination via mailboxes — the structure a
// distributed-memory implementation ([7]'s transputer networks) would
// have, compressed onto one machine.
//
// Balancing is a three-message transaction:
//   Invite(txn)  initiator -> each of the delta partners
//   Accept(load) / Refuse   partner  -> initiator
//   Assign(delta)           initiator -> each accepting partner
// Deadlock freedom: a thread that is waiting (either for Accept/Refuse
// replies as an initiator, or for its Assign as a locked partner) answers
// every incoming Invite with Refuse, so no waits-for cycle can form; an
// initiator simply proceeds with the partners that accepted.  Load
// conservation holds because an accepting partner is locked (mutates
// nothing) between its Accept and its Assign.
//
// Failure tolerance (config.faults, a mp/fault.hpp FaultPlan): with a
// fault plan installed the transaction survives lossy links and dying
// partners.  Assign carries a *delta* against the load the partner
// offered in its Accept, and every wait inside a transaction gets a
// deadline:
//   - an initiator that times out treats the silent partners as Refuse
//     and proceeds with the rest; a late Accept is answered with a
//     rollback Assign(0) so the partner unlocks unchanged;
//   - a locked partner that times out rolls back to the pre-image of
//     its load (it never mutated, so unlocking IS the rollback), marks
//     the transaction aborted, and discards the Assign if it straggles
//     in later — the discarded delta is declared lost;
//   - a dropped Assign's delta is declared lost at the drop point, so
//     total load is conserved modulo the declared-lost ledger:
//       sum(final) == generated - consumed - lost_load
//   - a processor killed by the crash schedule stops at a step
//     boundary; its load is recovered from its last journal checkpoint
//     (the drift is declared lost), survivors blacklist it from future
//     partner draws (redrawing uniformly over the live processors), and
//     invites addressed to it simply time out.
// Without a plan every code path is byte-identical to the fault-free
// implementation (blocking waits, absolute-assign arithmetic equal to
// the delta form, no journal writes).
//
// The threaded runtime implements the practical total-load variant of the
// algorithm (trigger on the factor-f drift of the local load, like [7]);
// the per-class d/b ledger bookkeeping exists for the *analysis* and is
// exercised by the sequential System.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "core/checkpoint.hpp"
#include "metrics/recorder.hpp"
#include "mp/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/mailbox.hpp"
#include "support/rng.hpp"
#include "workload/trace.hpp"

namespace dlb {

struct ThreadedConfig {
  double f = 1.1;
  std::uint32_t delta = 1;
  std::uint64_t seed = 42;
  /// Fault schedule; an inert plan (the default) disables every fault
  /// path and reproduces the historical behaviour exactly.
  FaultPlan faults;
  /// Deadline for each in-transaction wait when faults are enabled.
  std::chrono::milliseconds txn_timeout{25};
};

struct ThreadedStats {
  std::uint64_t balance_ops = 0;
  std::uint64_t refusals = 0;
  std::uint64_t messages = 0;
  std::uint64_t consume_failures = 0;
  std::uint64_t generated = 0;
  std::uint64_t consumed = 0;
  // Robustness counters (all zero in fault-free runs).
  std::uint64_t aborted_ops = 0;   // partner rollbacks (missing Assign)
  std::uint64_t timeouts = 0;      // expired transaction waits
  std::uint64_t lost_packets = 0;  // dropped + discarded-stale messages
  std::uint32_t ranks_dead = 0;    // processors killed by the schedule
  /// Net load in dropped/discarded Assigns plus crash drift (signed:
  /// losing a negative delta *adds* load).  Conservation holds as
  /// sum(final_loads) == generated - consumed - lost_load.
  std::int64_t lost_load = 0;
};

class ThreadedSystem {
 public:
  ThreadedSystem(std::uint32_t processors, ThreadedConfig config);
  ~ThreadedSystem();

  ThreadedSystem(const ThreadedSystem&) = delete;
  ThreadedSystem& operator=(const ThreadedSystem&) = delete;

  /// Replays the trace concurrently (one thread per processor) and blocks
  /// until every thread has finished and all transactions have drained.
  void run(const Trace& trace);

  /// Observer for the robustness counters (on_fault hooks fire once per
  /// run() with the aggregate counts).  Optional; not owned.
  void set_recorder(Recorder* recorder) { recorder_ = recorder; }

  /// Operational metrics: run() publishes the aggregated ThreadedStats
  /// as threaded.* counters (and threaded.lost_load as a gauge).
  /// Optional; not owned.
  void attach_metrics(obs::MetricsRegistry* registry) {
    metrics_ = registry;
  }

  /// Structured trace: per-processor balance-transaction spans plus
  /// timeout/abort/crash instants, one track per processor thread.
  /// Optional; not owned.
  void attach_trace(obs::TraceBuffer* trace) { trace_ = trace; }

  /// Final per-processor loads (valid after run()); a crashed
  /// processor's entry is its journal-recovered load.
  const std::vector<std::int64_t>& final_loads() const { return final_loads_; }
  /// Aggregated statistics over all processor threads.
  const ThreadedStats& stats() const { return stats_; }
  /// Crash journal of the last run (valid after run()).
  const LoadJournal& journal() const { return journal_; }
  /// True when processor `p` was killed during the last run.
  bool processor_dead(std::uint32_t p) const;

 private:
  struct Message {
    enum class Type : std::uint8_t {
      Invite,
      Accept,
      Refuse,
      Assign,
      Shutdown,
    };
    Type type = Type::Shutdown;
    std::uint32_t from = 0;
    std::uint64_t txn = 0;
    std::int64_t load = 0;  // Accept: offered load; Assign: delta
  };

  class Worker;

  std::uint32_t processors_;
  ThreadedConfig config_;
  bool faults_on_ = false;
  std::vector<std::unique_ptr<Mailbox<Message>>> mailboxes_;
  std::atomic<std::uint32_t> done_count_{0};
  std::unique_ptr<std::atomic<std::uint8_t>[]> dead_;
  LoadJournal journal_;
  std::vector<std::int64_t> final_loads_;
  ThreadedStats stats_;
  Recorder* recorder_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::TraceBuffer* trace_ = nullptr;
  // Resolved once per run(); shared by all workers (record is atomic).
  obs::Histogram* txn_hist_ = nullptr;
};

}  // namespace dlb
