// Threaded message-passing implementation of the balancing algorithm.
//
// The sequential System is the measurement instrument for the paper's
// figures; ThreadedSystem demonstrates that the same algorithmic principle
// runs as a real concurrent system: one thread per processor, no shared
// load state, all coordination via mailboxes — the structure a
// distributed-memory implementation ([7]'s transputer networks) would
// have, compressed onto one machine.
//
// Balancing is a three-message transaction:
//   Invite(txn)  initiator -> each of the delta partners
//   Accept(load) / Refuse   partner  -> initiator
//   Assign(new_load)        initiator -> each accepting partner
// Deadlock freedom: a thread that is waiting (either for Accept/Refuse
// replies as an initiator, or for its Assign as a locked partner) answers
// every incoming Invite with Refuse, so no waits-for cycle can form; an
// initiator simply proceeds with the partners that accepted.  Load
// conservation holds because an accepting partner is locked (mutates
// nothing) between its Accept and its Assign.
//
// The threaded runtime implements the practical total-load variant of the
// algorithm (trigger on the factor-f drift of the local load, like [7]);
// the per-class d/b ledger bookkeeping exists for the *analysis* and is
// exercised by the sequential System.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "runtime/mailbox.hpp"
#include "support/rng.hpp"
#include "workload/trace.hpp"

namespace dlb {

struct ThreadedConfig {
  double f = 1.1;
  std::uint32_t delta = 1;
  std::uint64_t seed = 42;
};

struct ThreadedStats {
  std::uint64_t balance_ops = 0;
  std::uint64_t refusals = 0;
  std::uint64_t messages = 0;
  std::uint64_t consume_failures = 0;
  std::uint64_t generated = 0;
  std::uint64_t consumed = 0;
};

class ThreadedSystem {
 public:
  ThreadedSystem(std::uint32_t processors, ThreadedConfig config);
  ~ThreadedSystem();

  ThreadedSystem(const ThreadedSystem&) = delete;
  ThreadedSystem& operator=(const ThreadedSystem&) = delete;

  /// Replays the trace concurrently (one thread per processor) and blocks
  /// until every thread has finished and all transactions have drained.
  void run(const Trace& trace);

  /// Final per-processor loads (valid after run()).
  const std::vector<std::int64_t>& final_loads() const { return final_loads_; }
  /// Aggregated statistics over all processor threads.
  const ThreadedStats& stats() const { return stats_; }

 private:
  struct Message {
    enum class Type : std::uint8_t {
      Invite,
      Accept,
      Refuse,
      Assign,
      Shutdown,
    };
    Type type = Type::Shutdown;
    std::uint32_t from = 0;
    std::uint64_t txn = 0;
    std::int64_t load = 0;
  };

  class Worker;

  std::uint32_t processors_;
  ThreadedConfig config_;
  std::vector<std::unique_ptr<Mailbox<Message>>> mailboxes_;
  std::atomic<std::uint32_t> done_count_{0};
  std::vector<std::int64_t> final_loads_;
  ThreadedStats stats_;
};

}  // namespace dlb
