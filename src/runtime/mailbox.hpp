// Blocking MPSC mailbox used by the threaded runtime.
//
// One mailbox per processor thread; any thread may send.  recv() blocks on
// a condition variable; try_recv() polls.  close() wakes all blocked
// receivers (used only for teardown on error paths — normal shutdown goes
// through a Shutdown message so no event is ever lost).
//
// The queue is a RingQueue, not a std::deque: once the mailbox has seen
// its high-water depth, send/recv/drain_into reuse the same buffer
// forever (zero-allocation steady state, DESIGN.md §11).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <optional>
#include <vector>

#include "support/ring_queue.hpp"

namespace dlb {

template <typename T>
class Mailbox {
 public:
  void send(T message) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.push_back(std::move(message));
    }
    cv_.notify_one();
  }

  /// Blocks until a message arrives or the mailbox is closed; returns
  /// nullopt only when closed and drained.
  std::optional<T> recv() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return !queue_.empty() || closed_; });
    if (queue_.empty()) return std::nullopt;
    return queue_.pop_front();
  }

  std::optional<T> try_recv() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    return queue_.pop_front();
  }

  /// Batch receive: moves every queued message into `out` (appended in
  /// arrival order) under a single lock acquisition and returns how many
  /// were drained.  Equivalent to calling try_recv() until it returns
  /// nullopt, but the hot receive loop pays one mutex round-trip per
  /// drain instead of one per message.
  std::size_t drain_into(std::vector<T>& out) {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t drained = queue_.size();
    for (std::size_t i = 0; i < drained; ++i)
      out.push_back(std::move(queue_[i]));
    queue_.clear();
    return drained;
  }

  /// Deadline-based receive for failure-tolerant protocols: blocks
  /// until `deadline` (monotonic clock, so wall-clock adjustments
  /// cannot stretch or collapse the wait) and returns nullopt when
  /// nothing arrived (or the mailbox was closed and drained) by then.
  /// Callers that must wait for several messages against one overall
  /// budget compute the deadline once and pass it to every call —
  /// unlike a per-call timeout, the budget cannot compound.
  std::optional<T> recv_until(std::chrono::steady_clock::time_point deadline) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!cv_.wait_until(lock, deadline,
                        [&] { return !queue_.empty() || closed_; }))
      return std::nullopt;
    if (queue_.empty()) return std::nullopt;
    return queue_.pop_front();
  }

  std::optional<T> recv_for(std::chrono::milliseconds timeout) {
    return recv_until(std::chrono::steady_clock::now() + timeout);
  }

  /// Pre-sizes the ring so traffic up to `depth` queued messages never
  /// grows the buffer — lets the owner pay the warmup at setup instead
  /// of at the first in-flight high-water mark mid-run.
  void reserve(std::size_t depth) {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.reserve(depth);
  }

  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool empty() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.empty();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  RingQueue<T> queue_;
  bool closed_ = false;
};

}  // namespace dlb
