// Blocking MPSC mailbox used by the threaded runtime.
//
// One mailbox per processor thread; any thread may send.  recv() blocks on
// a condition variable; try_recv() polls.  close() wakes all blocked
// receivers (used only for teardown on error paths — normal shutdown goes
// through a Shutdown message so no event is ever lost).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

namespace dlb {

template <typename T>
class Mailbox {
 public:
  void send(T message) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.push_back(std::move(message));
    }
    cv_.notify_one();
  }

  /// Blocks until a message arrives or the mailbox is closed; returns
  /// nullopt only when closed and drained.
  std::optional<T> recv() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return !queue_.empty() || closed_; });
    if (queue_.empty()) return std::nullopt;
    T out = std::move(queue_.front());
    queue_.pop_front();
    return out;
  }

  std::optional<T> try_recv() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    T out = std::move(queue_.front());
    queue_.pop_front();
    return out;
  }

  /// Batch receive: moves every queued message into `out` (appended in
  /// arrival order) under a single lock acquisition and returns how many
  /// were drained.  Equivalent to calling try_recv() until it returns
  /// nullopt, but the hot receive loop pays one mutex round-trip per
  /// drain instead of one per message.
  std::size_t drain_into(std::vector<T>& out) {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t drained = queue_.size();
    for (T& message : queue_) out.push_back(std::move(message));
    queue_.clear();
    return drained;
  }

  /// Deadline-based receive for failure-tolerant protocols: blocks up
  /// to `timeout` and returns nullopt when nothing arrived (or the
  /// mailbox was closed and drained) by then.
  std::optional<T> recv_for(std::chrono::milliseconds timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!cv_.wait_for(lock, timeout,
                      [&] { return !queue_.empty() || closed_; }))
      return std::nullopt;
    if (queue_.empty()) return std::nullopt;
    T out = std::move(queue_.front());
    queue_.pop_front();
    return out;
  }

  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool empty() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.empty();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> queue_;
  bool closed_ = false;
};

}  // namespace dlb
