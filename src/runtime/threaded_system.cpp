#include "runtime/threaded_system.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace dlb {

class ThreadedSystem::Worker {
 public:
  Worker(std::uint32_t id, ThreadedSystem& owner, const Trace& trace,
         std::uint64_t seed)
      : id_(id), owner_(owner), trace_(trace), rng_(seed) {}

  void operator()() {
    for (std::uint32_t t = 0; t < trace_.horizon(); ++t) {
      // Serve any pending invites before acting, so heavily loaded
      // threads cannot starve their partners.
      drain_mailbox();
      const WorkEvent ev = trace_.at(id_, t);
      if (ev.generate) {
        ++load_;
        ++stats_.generated;
      }
      if (ev.consume) {
        if (load_ > 0) {
          --load_;
          ++stats_.consumed;
        } else {
          ++stats_.consume_failures;
        }
      }
      maybe_balance();
    }
    // Finished our own demand: keep serving transactions from slower
    // threads until everyone is done and the Shutdown message arrives.
    owner_.done_count_.fetch_add(1, std::memory_order_acq_rel);
    serve_until_shutdown();
  }

  std::int64_t final_load() const { return load_; }
  const ThreadedStats& stats() const { return stats_; }

 private:
  using Message = ThreadedSystem::Message;

  void send(std::uint32_t to, Message msg) {
    msg.from = id_;
    ++stats_.messages;
    owner_.mailboxes_[to]->send(msg);
  }

  void drain_mailbox() {
    while (auto msg = owner_.mailboxes_[id_]->try_recv()) handle_idle(*msg);
  }

  void serve_until_shutdown() {
    while (true) {
      auto msg = owner_.mailboxes_[id_]->recv();
      if (!msg.has_value() || msg->type == Message::Type::Shutdown) return;
      handle_idle(*msg);
    }
  }

  // Handling for a thread that is not itself waiting inside a
  // transaction: accept the invite and lock until the Assign arrives.
  void handle_idle(const Message& msg) {
    switch (msg.type) {
      case Message::Type::Invite: {
        const std::uint32_t initiator = msg.from;
        const std::uint64_t txn = msg.txn;
        send(initiator, Message{Message::Type::Accept, 0, txn, load_});
        // Locked: answer only this transaction; refuse everything else.
        while (true) {
          auto next = owner_.mailboxes_[id_]->recv();
          DLB_ENSURE(next.has_value(), "mailbox closed mid-transaction");
          if (next->type == Message::Type::Assign && next->txn == txn) {
            load_ = next->load;
            l_old_ = load_;
            return;
          }
          if (next->type == Message::Type::Invite) {
            send(next->from,
                 Message{Message::Type::Refuse, 0, next->txn, 0});
            ++stats_.refusals;
            continue;
          }
          DLB_ENSURE(next->type != Message::Type::Shutdown,
                     "shutdown during a pending transaction");
          // Stale Accept/Refuse from an earlier aborted exchange cannot
          // occur: every transaction completes before the next begins.
          DLB_ENSURE(false, "unexpected message while locked");
        }
      }
      case Message::Type::Accept:
      case Message::Type::Refuse:
      case Message::Type::Assign:
        DLB_ENSURE(false, "transaction reply without a transaction");
        return;
      case Message::Type::Shutdown:
        return;
    }
  }

  void maybe_balance() {
    const bool grew = load_ > l_old_ &&
                      static_cast<double>(load_) >=
                          owner_.config_.f * static_cast<double>(l_old_);
    const bool shrank = load_ < l_old_ && l_old_ >= 1 &&
                        static_cast<double>(load_) <=
                            static_cast<double>(l_old_) / owner_.config_.f;
    if (!grew && !shrank) return;
    initiate_balance();
  }

  void initiate_balance() {
    const std::uint64_t txn = ++txn_counter_;
    const auto partners = rng_.sample_distinct(
        owner_.processors_, owner_.config_.delta, id_);
    for (std::uint32_t q : partners)
      send(q, Message{Message::Type::Invite, 0, txn, 0});

    std::vector<std::uint32_t> accepted;
    std::vector<std::int64_t> partner_loads;
    std::size_t pending = partners.size();
    while (pending > 0) {
      auto msg = owner_.mailboxes_[id_]->recv();
      DLB_ENSURE(msg.has_value(), "mailbox closed mid-transaction");
      switch (msg->type) {
        case Message::Type::Accept:
          DLB_ENSURE(msg->txn == txn, "accept for a stale transaction");
          accepted.push_back(msg->from);
          partner_loads.push_back(msg->load);
          --pending;
          break;
        case Message::Type::Refuse:
          DLB_ENSURE(msg->txn == txn, "refuse for a stale transaction");
          --pending;
          break;
        case Message::Type::Invite:
          // We are busy initiating: refuse, which breaks wait cycles.
          send(msg->from, Message{Message::Type::Refuse, 0, msg->txn, 0});
          ++stats_.refusals;
          break;
        case Message::Type::Assign:
        case Message::Type::Shutdown:
          DLB_ENSURE(false, "unexpected message while initiating");
      }
    }

    if (accepted.empty()) {
      l_old_ = load_;
      return;
    }
    std::int64_t pool = load_;
    for (std::int64_t l : partner_loads) pool += l;
    const auto m = static_cast<std::int64_t>(accepted.size()) + 1;
    const std::int64_t base = pool / m;
    std::int64_t remainder = pool % m;
    // The initiator takes a remainder packet first, then partners in
    // order; any deterministic rule keeps loads within +/-1.
    load_ = base + (remainder > 0 ? 1 : 0);
    if (remainder > 0) --remainder;
    for (std::size_t k = 0; k < accepted.size(); ++k) {
      const std::int64_t share =
          base + (static_cast<std::int64_t>(k) <
                          remainder
                      ? 1
                      : 0);
      send(accepted[k], Message{Message::Type::Assign, 0, txn, share});
    }
    l_old_ = load_;
    ++stats_.balance_ops;
  }

  std::uint32_t id_;
  ThreadedSystem& owner_;
  const Trace& trace_;
  Rng rng_;
  std::int64_t load_ = 0;
  std::int64_t l_old_ = 0;
  std::uint64_t txn_counter_ = 0;
  ThreadedStats stats_;
};

ThreadedSystem::ThreadedSystem(std::uint32_t processors,
                               ThreadedConfig config)
    : processors_(processors), config_(config) {
  DLB_REQUIRE(processors_ >= 2, "threaded system needs >= 2 processors");
  DLB_REQUIRE(config_.delta >= 1 && config_.delta < processors_,
              "delta out of range");
  DLB_REQUIRE(config_.f > 1.0, "threaded runtime requires f > 1");
  mailboxes_.reserve(processors_);
  for (std::uint32_t p = 0; p < processors_; ++p)
    mailboxes_.push_back(std::make_unique<Mailbox<Message>>());
}

ThreadedSystem::~ThreadedSystem() = default;

void ThreadedSystem::run(const Trace& trace) {
  DLB_REQUIRE(trace.processors() == processors_,
              "trace size must match the system");
  done_count_.store(0, std::memory_order_release);
  Rng seeder(config_.seed);

  std::vector<std::unique_ptr<Worker>> workers;
  workers.reserve(processors_);
  for (std::uint32_t p = 0; p < processors_; ++p)
    workers.push_back(
        std::make_unique<Worker>(p, *this, trace, seeder.next()));

  std::vector<std::thread> threads;
  threads.reserve(processors_);
  for (auto& worker : workers)
    threads.emplace_back([&worker] { (*worker)(); });

  // Wait until every worker finished its trace column.  A worker only
  // increments done_count_ after completing all transactions it
  // initiated, so once the count reaches n there are no in-flight
  // invites from finished workers; any still-queued invites are answered
  // by the serve loops before Shutdown is processed (FIFO mailboxes).
  while (done_count_.load(std::memory_order_acquire) < processors_)
    std::this_thread::yield();
  for (std::uint32_t p = 0; p < processors_; ++p)
    mailboxes_[p]->send(Message{Message::Type::Shutdown, p, 0, 0});
  for (auto& thread : threads) thread.join();

  final_loads_.assign(processors_, 0);
  stats_ = ThreadedStats{};
  for (std::uint32_t p = 0; p < processors_; ++p) {
    final_loads_[p] = workers[p]->final_load();
    const ThreadedStats& ws = workers[p]->stats();
    stats_.balance_ops += ws.balance_ops;
    stats_.refusals += ws.refusals;
    stats_.messages += ws.messages;
    stats_.consume_failures += ws.consume_failures;
    stats_.generated += ws.generated;
    stats_.consumed += ws.consumed;
  }
}

}  // namespace dlb
