#include "runtime/threaded_system.hpp"

#include <algorithm>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "obs/alloc.hpp"
#include "obs/timer.hpp"
#include "support/check.hpp"

namespace dlb {

class ThreadedSystem::Worker {
 public:
  Worker(std::uint32_t id, ThreadedSystem& owner, const Trace& trace,
         std::uint64_t seed)
      : id_(id), owner_(owner), trace_(trace), rng_(seed) {
    // Warm the transaction scratch to its bounds up front: a partner
    // count below delta early on must not leave a short vector that
    // reallocates the first time every partner accepts late in a run.
    partners_.reserve(owner_.config_.delta);
    accepted_.reserve(owner_.config_.delta);
    partner_loads_.reserve(owner_.config_.delta);
    replied_.reserve(owner_.config_.delta);
    drain_buf_.reserve(2 * static_cast<std::size_t>(owner_.processors_));
    if (owner_.faults_on_) {
      links_.resize(owner_.processors_);
      held_.resize(owner_.processors_);
      for (std::uint32_t d = 0; d < owner_.processors_; ++d)
        links_[d].reset(owner_.config_.faults.seed, static_cast<int>(id_),
                        static_cast<int>(d),
                        owner_.config_.faults.default_link);
    }
  }

  void operator()() {
    const std::int64_t crash_at =
        owner_.faults_on_
            ? owner_.config_.faults.crash_step(static_cast<int>(id_))
            : -1;
    const bool track_allocs = owner_.metrics_ != nullptr;
    obs::AllocPhase alloc_phase;
    if (track_allocs) alloc_phase.rebase();
    for (std::uint32_t t = 0; t < trace_.horizon(); ++t) {
      if (crash_at >= 0 && crash_at == static_cast<std::int64_t>(t)) {
        die();
        return;
      }
      // Serve any pending invites before acting, so heavily loaded
      // threads cannot starve their partners.
      drain_mailbox();
      const WorkEvent ev = trace_.at(id_, t);
      if (ev.generate) {
        ++load_;
        ++stats_.generated;
      }
      if (ev.consume) {
        if (load_ > 0) {
          --load_;
          ++stats_.consumed;
        } else {
          ++stats_.consume_failures;
        }
      }
      maybe_balance();
      if (owner_.faults_on_)
        owner_.journal_.observe(
            id_, t, load_, static_cast<std::int64_t>(stats_.generated),
            static_cast<std::int64_t>(stats_.consumed));
      if (track_allocs)
        alloc_.note(static_cast<std::int64_t>(t), alloc_phase.take());
    }
    // Finished our own demand: release delayed in-flight messages, then
    // keep serving transactions from slower threads until everyone is
    // done and the Shutdown message arrives.
    flush_held();
    owner_.done_count_.fetch_add(1, std::memory_order_acq_rel);
    serve_until_shutdown();
    // Transactions served while idling are steady-state work too;
    // account them against the final step so nothing hides post-loop.
    if (track_allocs && trace_.horizon() > 0)
      alloc_.note(static_cast<std::int64_t>(trace_.horizon()) - 1,
                  alloc_phase.take());
  }

  std::int64_t final_load() const { return load_; }
  const ThreadedStats& stats() const { return stats_; }
  const obs::AllocTally& alloc_tally() const { return alloc_; }

 private:
  using Message = ThreadedSystem::Message;

  bool is_dead(std::uint32_t p) const {
    return owner_.dead_[p].load(std::memory_order_acquire) != 0;
  }

  /// The owner's trace buffer iff recording is on; null otherwise, so
  /// call sites stay a single pointer check.  Each worker renders as
  /// its own track (tid == processor id).
  obs::TraceBuffer* tracer() const {
    obs::TraceBuffer* t = owner_.trace_;
    return (t != nullptr && t->enabled()) ? t : nullptr;
  }

  /// Scheduled crash: journal-recover the load (drift is declared
  /// lost), raise the dead flag so survivors blacklist us, and stop
  /// participating — held (delayed) messages strand with the crash.
  /// The thread lingers as a silent zombie draining its mailbox until
  /// Shutdown: it never replies, but it must account Assign deltas that
  /// were in flight toward it when it died (senders that saw the dead
  /// flag account on their side; exactly one side sees each message).
  void die() {
    if (obs::TraceBuffer* tb = tracer())
      tb->instant("crash", "fault", id_, id_);
    stats_.lost_load += owner_.journal_.on_crash(id_);
    stats_.ranks_dead = 1;
    owner_.dead_[id_].store(1, std::memory_order_release);
    owner_.done_count_.fetch_add(1, std::memory_order_acq_rel);
    while (true) {
      auto msg = owner_.mailboxes_[id_]->recv();
      if (!msg.has_value() || msg->type == Message::Type::Shutdown) return;
      if (msg->type == Message::Type::Assign &&
          completed_.count(msg->txn) == 0) {
        account_lost(*msg);
        completed_.insert(msg->txn);  // a duplicate is not lost twice
      }
    }
  }

  /// A lost Assign's delta is load in no one's ledger; everything else
  /// is control traffic.
  void account_lost(const Message& msg) {
    ++stats_.lost_packets;
    if (msg.type == Message::Type::Assign) stats_.lost_load += msg.load;
  }

  void deliver(std::uint32_t to, const Message& msg) {
    owner_.mailboxes_[to]->send(msg);
  }

  void send(std::uint32_t to, Message msg) {
    msg.from = id_;
    ++stats_.messages;
    if (!owner_.faults_on_) {
      deliver(to, msg);
      return;
    }
    if (is_dead(to)) {
      account_lost(msg);
      return;
    }
    const FaultDecision decision = links_[to].next();
    if (decision.drop) {
      account_lost(msg);
      return;
    }
    // A delayed message is released just after the next message that
    // flows on the same link (deterministic reorder per link stream).
    std::optional<Message> release = std::exchange(held_[to], std::nullopt);
    if (decision.delay) {
      held_[to] = msg;
      if (release) deliver(to, *release);
      return;
    }
    if (decision.duplicate) deliver(to, msg);
    deliver(to, msg);
    if (release) deliver(to, *release);
  }

  void flush_held() {
    if (!owner_.faults_on_) return;
    for (std::uint32_t d = 0; d < owner_.processors_; ++d) {
      if (held_[d] && !is_dead(d)) deliver(d, *held_[d]);
      held_[d].reset();
    }
  }

  /// Next message out of the drained batch, if any.  The transaction
  /// wait loops consult this BEFORE blocking on the mailbox: a partner
  /// locked into one transaction must still see (and refuse) an Invite
  /// that was pulled into the batch just before the lock, exactly as it
  /// would have seen it in the mailbox — otherwise three initiators can
  /// deadlock in a cycle, each waiting on a reply buried in a batch.
  std::optional<Message> buffered_message() {
    if (drain_pos_ < drain_buf_.size()) return drain_buf_[drain_pos_++];
    return std::nullopt;
  }

  void drain_mailbox() {
    // Batch drain: one mutex round-trip pulls everything queued, then
    // the messages are handled lock-free.  Handling can send (and with
    // faults, deliver to ourselves), so keep draining until a pass
    // comes back empty.  handle_idle can consume the batch tail itself
    // through buffered_message(), hence the cursor-based walk.
    for (;;) {
      while (auto msg = buffered_message()) handle_idle(*msg);
      drain_buf_.clear();
      drain_pos_ = 0;
      if (owner_.mailboxes_[id_]->drain_into(drain_buf_) == 0) return;
    }
  }

  void serve_until_shutdown() {
    while (true) {
      auto msg = owner_.mailboxes_[id_]->recv();
      if (!msg.has_value() || msg->type == Message::Type::Shutdown) return;
      handle_idle(*msg);
    }
  }

  /// Disposes of a transaction reply that does not belong to any open
  /// wait.  Only reachable with faults enabled (drops, duplicates and
  /// timeouts create stragglers); fault-free runs assert instead.
  void handle_stray(const Message& msg) {
    switch (msg.type) {
      case Message::Type::Accept: {
        // Duplicate of an Accept we already answered with a real
        // Assign?  Then the sender is NOT stuck — rolling back here
        // could overtake the real Assign (delay reorders one link) and
        // make the partner discard its delta.  Ignore the duplicate.
        const auto it = assigned_.find(msg.txn);
        if (it != assigned_.end() &&
            std::find(it->second.begin(), it->second.end(), msg.from) !=
                it->second.end())
          break;
        // Otherwise the sender is locked awaiting an Assign for a
        // transaction we closed without it: unlock it with a rollback
        // (delta 0).
        send(msg.from, Message{Message::Type::Assign, 0, msg.txn, 0});
        break;
      }
      case Message::Type::Refuse:
        break;  // nothing was pending on it
      case Message::Type::Assign:
        if (completed_.count(msg.txn)) break;  // duplicate of an applied one
        // Rolled-back (or unknown) transaction: the delta is lost.
        // Mark the transaction closed so a duplicate of this Assign is
        // not declared lost a second time.
        account_lost(msg);
        completed_.insert(msg.txn);
        break;
      case Message::Type::Invite:
      case Message::Type::Shutdown:
        DLB_ENSURE(false, "handle_stray is for transaction replies");
    }
  }

  // Handling for a thread that is not itself waiting inside a
  // transaction: accept the invite and lock until the Assign arrives.
  void handle_idle(const Message& msg) {
    switch (msg.type) {
      case Message::Type::Invite: {
        const std::uint32_t initiator = msg.from;
        const std::uint64_t txn = msg.txn;
        if (owner_.faults_on_ &&
            (completed_.count(txn) || aborted_.count(txn))) {
          // Duplicate invite for a transaction we already served:
          // accepting again could double-apply its Assign.  Refuse.
          send(initiator, Message{Message::Type::Refuse, 0, txn, 0});
          ++stats_.refusals;
          return;
        }
        send(initiator, Message{Message::Type::Accept, 0, txn, load_});
        // Span: accepted -> Assign applied (or rollback).  Renders on
        // this worker's track next to the initiator's balance_txn span.
        const obs::ScopedTimer lock_span(nullptr, tracer(), "partner_lock",
                                         "txn", id_, txn);
        // Locked: the pre-image of the load is simply load_ — nothing
        // mutates until the Assign lands, so rolling back on a missing
        // Assign means unlocking unchanged.  Answer only this
        // transaction; refuse everything else.  The wait is a monotonic
        // deadline, re-armed on every delivered message: traffic proves
        // the initiator's side of the system is alive, silence for a
        // whole txn_timeout proves the Assign is not coming.
        auto deadline =
            std::chrono::steady_clock::now() + owner_.config_.txn_timeout;
        while (true) {
          auto next = buffered_message();
          if (!next.has_value())
            next = owner_.faults_on_
                       ? owner_.mailboxes_[id_]->recv_until(deadline)
                       : owner_.mailboxes_[id_]->recv();
          if (next.has_value())
            deadline = std::chrono::steady_clock::now() +
                       owner_.config_.txn_timeout;
          if (!next.has_value()) {
            if (owner_.faults_on_) {
              // Missing Assign: roll back.  If it straggles in later it
              // is discarded and its delta declared lost.
              if (obs::TraceBuffer* tb = tracer())
                tb->instant("txn_abort", "fault", id_, txn);
              ++stats_.timeouts;
              ++stats_.aborted_ops;
              aborted_.insert(txn);
              return;
            }
            DLB_ENSURE(false, "mailbox closed mid-transaction");
          }
          if (next->type == Message::Type::Assign && next->txn == txn) {
            load_ += next->load;  // delta against the offered pre-image
            l_old_ = load_;
            if (owner_.faults_on_) completed_.insert(txn);
            return;
          }
          if (next->type == Message::Type::Invite) {
            send(next->from,
                 Message{Message::Type::Refuse, 0, next->txn, 0});
            ++stats_.refusals;
            continue;
          }
          if (owner_.faults_on_) {
            if (next->type == Message::Type::Shutdown) {
              // Shutdown can only overtake a pending Assign when the
              // initiator already gave up on us: roll back, and re-queue
              // the Shutdown so the serve loop (which is waiting on it)
              // still terminates.
              ++stats_.aborted_ops;
              aborted_.insert(txn);
              owner_.mailboxes_[id_]->send(*next);
              return;
            }
            handle_stray(*next);
            continue;
          }
          DLB_ENSURE(next->type != Message::Type::Shutdown,
                     "shutdown during a pending transaction");
          // Stale Accept/Refuse from an earlier aborted exchange cannot
          // occur: every transaction completes before the next begins.
          DLB_ENSURE(false, "unexpected message while locked");
        }
      }
      case Message::Type::Accept:
      case Message::Type::Refuse:
      case Message::Type::Assign:
        if (owner_.faults_on_) {
          handle_stray(msg);
          return;
        }
        DLB_ENSURE(false, "transaction reply without a transaction");
        return;
      case Message::Type::Shutdown:
        return;
    }
  }

  void maybe_balance() {
    const bool grew = load_ > l_old_ &&
                      static_cast<double>(load_) >=
                          owner_.config_.f * static_cast<double>(l_old_);
    const bool shrank = load_ < l_old_ && l_old_ >= 1 &&
                        static_cast<double>(load_) <=
                            static_cast<double>(l_old_) / owner_.config_.f;
    if (!grew && !shrank) return;
    initiate_balance();
  }

  /// Partner draw into the warm partners_ scratch.  Fault-free: the
  /// historical uniform draw over all other processors.  With faults:
  /// dead processors are blacklisted and the draw is redone uniformly
  /// over the survivors, preserving the uniform-choice model restricted
  /// to live processors.
  void draw_partners() {
    if (!owner_.faults_on_) {
      rng_.sample_distinct_into(partners_, owner_.processors_,
                                owner_.config_.delta, id_);
      return;
    }
    std::uint32_t live_others = 0;
    for (std::uint32_t p = 0; p < owner_.processors_; ++p)
      if (p != id_ && !is_dead(p)) ++live_others;
    const std::uint32_t k = std::min(owner_.config_.delta, live_others);
    partners_.clear();
    partners_.reserve(k);
    while (partners_.size() < k) {
      const auto v = static_cast<std::uint32_t>(
          rng_.below(owner_.processors_));
      if (v == id_ || is_dead(v)) continue;
      if (std::find(partners_.begin(), partners_.end(), v) !=
          partners_.end())
        continue;
      partners_.push_back(v);
    }
  }

  void initiate_balance() {
    const std::uint64_t txn =
        (static_cast<std::uint64_t>(id_ + 1) << 32) | ++txn_counter_;
    // Span: whole Invite/Accept-or-Refuse/Assign exchange, histogram
    // threaded.txn_ns when metrics are attached.
    const obs::ScopedTimer txn_span(owner_.txn_hist_, tracer(),
                                    "balance_txn", "txn", id_, txn);
    draw_partners();
    if (partners_.empty()) {
      l_old_ = load_;
      return;
    }
    for (std::uint32_t q : partners_)
      send(q, Message{Message::Type::Invite, 0, txn, 0});

    // Transaction scratch: member buffers, warm across operations (one
    // transaction at a time per worker — invites arriving mid-wait are
    // refused, never served, so these never see nested use).
    std::vector<std::uint32_t>& accepted = accepted_;
    std::vector<std::int64_t>& partner_loads = partner_loads_;
    std::vector<std::uint32_t>& replied = replied_;
    accepted.clear();
    partner_loads.clear();
    replied.clear();
    std::size_t pending = partners_.size();
    // One monotonic deadline for the whole collection, re-armed only
    // when a pending reply actually resolves: strays and duplicates
    // cannot keep postponing the verdict, so the worst-case wait is
    // bounded by (partners × txn_timeout), not by inbound chatter.
    auto deadline =
        std::chrono::steady_clock::now() + owner_.config_.txn_timeout;
    while (pending > 0) {
      const std::size_t pending_before = pending;
      auto msg = buffered_message();
      if (!msg.has_value())
        msg = owner_.faults_on_
                  ? owner_.mailboxes_[id_]->recv_until(deadline)
                  : owner_.mailboxes_[id_]->recv();
      if (!msg.has_value()) {
        if (owner_.faults_on_) {
          // Silence for a whole deadline: every partner still pending
          // is treated as Refuse (dead, or its reply was lost).  A
          // straggling Accept will be rolled back as a stray.
          if (obs::TraceBuffer* tb = tracer())
            tb->instant("txn_timeout", "fault", id_, txn);
          ++stats_.timeouts;
          break;
        }
        DLB_ENSURE(false, "mailbox closed mid-transaction");
      }
      switch (msg->type) {
        case Message::Type::Accept:
          if (owner_.faults_on_ && msg->txn != txn) {
            handle_stray(*msg);  // stale: unlock the sender
            break;
          }
          if (owner_.faults_on_ &&
              std::find(replied.begin(), replied.end(), msg->from) !=
                  replied.end()) {
            // Duplicate Accept of the LIVE transaction: the real Assign
            // is still coming, so no rollback — unlocking the partner
            // early would make it discard that Assign as a duplicate
            // and leak the delta out of the ledger.
            break;
          }
          DLB_ENSURE(msg->txn == txn, "accept for a stale transaction");
          replied.push_back(msg->from);
          accepted.push_back(msg->from);
          partner_loads.push_back(msg->load);
          --pending;
          break;
        case Message::Type::Refuse:
          if (owner_.faults_on_ &&
              (msg->txn != txn ||
               std::find(replied.begin(), replied.end(), msg->from) !=
                   replied.end())) {
            break;  // stale or duplicate refusal: nothing pending on it
          }
          DLB_ENSURE(msg->txn == txn, "refuse for a stale transaction");
          replied.push_back(msg->from);
          --pending;
          break;
        case Message::Type::Invite:
          // We are busy initiating: refuse, which breaks wait cycles.
          send(msg->from, Message{Message::Type::Refuse, 0, msg->txn, 0});
          ++stats_.refusals;
          break;
        case Message::Type::Assign:
          if (owner_.faults_on_) {
            handle_stray(*msg);
            break;
          }
          DLB_ENSURE(false, "unexpected message while initiating");
          break;
        case Message::Type::Shutdown:
          DLB_ENSURE(false, "unexpected message while initiating");
      }
      if (pending < pending_before)
        deadline =
            std::chrono::steady_clock::now() + owner_.config_.txn_timeout;
    }

    if (accepted.empty()) {
      l_old_ = load_;
      return;
    }
    std::int64_t pool = load_;
    for (std::int64_t l : partner_loads) pool += l;
    const auto m = static_cast<std::int64_t>(accepted.size()) + 1;
    const std::int64_t base = pool / m;
    std::int64_t remainder = pool % m;
    // The initiator takes a remainder packet first, then partners in
    // order; any deterministic rule keeps loads within +/-1.
    load_ = base + (remainder > 0 ? 1 : 0);
    if (remainder > 0) --remainder;
    for (std::size_t k = 0; k < accepted.size(); ++k) {
      const std::int64_t share =
          base + (static_cast<std::int64_t>(k) <
                          remainder
                      ? 1
                      : 0);
      // Assign carries the delta against the partner's offered load: an
      // undelivered Assign then rolls back cleanly on the partner (its
      // pre-image stands) and the delta is declared lost at the drop.
      send(accepted[k], Message{Message::Type::Assign, 0, txn,
                                share - partner_loads[k]});
    }
    if (owner_.faults_on_) assigned_.emplace(txn, accepted);
    l_old_ = load_;
    ++stats_.balance_ops;
  }

  std::uint32_t id_;
  ThreadedSystem& owner_;
  const Trace& trace_;
  Rng rng_;
  std::int64_t load_ = 0;
  std::int64_t l_old_ = 0;
  std::uint64_t txn_counter_ = 0;
  ThreadedStats stats_;
  // Reusable buffer for the batched mailbox drain (warm across calls)
  // plus the consumption cursor (see buffered_message()).
  std::vector<Message> drain_buf_;
  std::size_t drain_pos_ = 0;
  // Transaction scratch (see initiate_balance) and the step loop's
  // allocation tally.
  std::vector<std::uint32_t> partners_;
  std::vector<std::uint32_t> accepted_;
  std::vector<std::int64_t> partner_loads_;
  std::vector<std::uint32_t> replied_;
  obs::AllocTally alloc_;
  // Fault-mode state (untouched in fault-free runs).
  std::vector<LinkFaultState> links_;
  std::vector<std::optional<Message>> held_;
  std::unordered_set<std::uint64_t> completed_;
  std::unordered_set<std::uint64_t> aborted_;
  // Initiator side: txn -> partners that received a real Assign.
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> assigned_;
};

ThreadedSystem::ThreadedSystem(std::uint32_t processors,
                               ThreadedConfig config)
    : processors_(processors), config_(std::move(config)) {
  DLB_REQUIRE(processors_ >= 2, "threaded system needs >= 2 processors");
  DLB_REQUIRE(config_.delta >= 1 && config_.delta < processors_,
              "delta out of range");
  DLB_REQUIRE(config_.f > 1.0, "threaded runtime requires f > 1");
  DLB_REQUIRE(config_.txn_timeout.count() > 0,
              "transaction timeout must be positive");
  for (const CrashEvent& c : config_.faults.crashes)
    DLB_REQUIRE(c.rank >= 0 &&
                    c.rank < static_cast<int>(processors_),
                "crash rank out of range");
  faults_on_ = config_.faults.enabled();
  mailboxes_.reserve(processors_);
  for (std::uint32_t p = 0; p < processors_; ++p) {
    mailboxes_.push_back(std::make_unique<Mailbox<Message>>());
    // Warm the ring past any realistic in-flight depth (each peer keeps
    // at most one transaction open: one Invite plus one Assign toward
    // us, plus our own replies) so steady-state traffic never grows it.
    mailboxes_.back()->reserve(2 * static_cast<std::size_t>(processors_));
  }
  dead_ = std::make_unique<std::atomic<std::uint8_t>[]>(processors_);
}

ThreadedSystem::~ThreadedSystem() = default;

bool ThreadedSystem::processor_dead(std::uint32_t p) const {
  DLB_REQUIRE(p < processors_, "processor id out of range");
  return dead_[p].load(std::memory_order_acquire) != 0;
}

void ThreadedSystem::run(const Trace& trace) {
  DLB_REQUIRE(trace.processors() == processors_,
              "trace size must match the system");
  done_count_.store(0, std::memory_order_release);
  for (std::uint32_t p = 0; p < processors_; ++p)
    dead_[p].store(0, std::memory_order_release);
  journal_ = LoadJournal(processors_, config_.faults.journal_interval);
  txn_hist_ =
      metrics_ != nullptr ? &metrics_->histogram("threaded.txn_ns") : nullptr;
  if (trace_ != nullptr && trace_->enabled())
    for (std::uint32_t p = 0; p < processors_; ++p)
      trace_->set_thread_name(p, "proc " + std::to_string(p));
  Rng seeder(config_.seed);

  std::vector<std::unique_ptr<Worker>> workers;
  workers.reserve(processors_);
  for (std::uint32_t p = 0; p < processors_; ++p)
    workers.push_back(
        std::make_unique<Worker>(p, *this, trace, seeder.next()));

  std::vector<std::thread> threads;
  threads.reserve(processors_);
  for (auto& worker : workers)
    threads.emplace_back([&worker] { (*worker)(); });

  // Wait until every worker finished its trace column (or died at its
  // scheduled step).  A live worker only increments done_count_ after
  // completing all transactions it initiated, so once the count reaches
  // n there are no in-flight invites from finished workers; any
  // still-queued invites are answered by the serve loops before
  // Shutdown is processed (FIFO mailboxes).  Invites addressed to dead
  // workers are reclaimed by the initiator's deadline.
  while (done_count_.load(std::memory_order_acquire) < processors_)
    std::this_thread::yield();
  for (std::uint32_t p = 0; p < processors_; ++p)
    mailboxes_[p]->send(Message{Message::Type::Shutdown, p, 0, 0});
  for (auto& thread : threads) thread.join();

  final_loads_.assign(processors_, 0);
  stats_ = ThreadedStats{};
  for (std::uint32_t p = 0; p < processors_; ++p) {
    final_loads_[p] = processor_dead(p) ? journal_.recovered_load(p)
                                        : workers[p]->final_load();
    const ThreadedStats& ws = workers[p]->stats();
    stats_.balance_ops += ws.balance_ops;
    stats_.refusals += ws.refusals;
    stats_.messages += ws.messages;
    stats_.consume_failures += ws.consume_failures;
    stats_.generated += ws.generated;
    stats_.consumed += ws.consumed;
    stats_.aborted_ops += ws.aborted_ops;
    stats_.timeouts += ws.timeouts;
    stats_.lost_packets += ws.lost_packets;
    stats_.ranks_dead += ws.ranks_dead;
    stats_.lost_load += ws.lost_load;
  }
  if (recorder_ != nullptr) {
    recorder_->on_fault(FaultEvent::Timeout, stats_.timeouts);
    recorder_->on_fault(FaultEvent::AbortedOp, stats_.aborted_ops);
    recorder_->on_fault(FaultEvent::LostPacket, stats_.lost_packets);
    recorder_->on_fault(FaultEvent::RankDeath, stats_.ranks_dead);
  }
  // Publish the aggregated stats as registry counters.  Done once at the
  // end of the run: the per-worker stats_ structs already accumulate on
  // each thread's own cache line, so the hot paths stay untouched.
  if (metrics_ != nullptr) {
    metrics_->counter("threaded.balance_ops").add(stats_.balance_ops);
    metrics_->counter("threaded.refusals").add(stats_.refusals);
    metrics_->counter("threaded.messages").add(stats_.messages);
    metrics_->counter("threaded.consume_failures")
        .add(stats_.consume_failures);
    metrics_->counter("threaded.generated").add(stats_.generated);
    metrics_->counter("threaded.consumed").add(stats_.consumed);
    metrics_->counter("threaded.fault.timeouts").add(stats_.timeouts);
    metrics_->counter("threaded.fault.aborted_ops").add(stats_.aborted_ops);
    metrics_->counter("threaded.fault.lost_packets")
        .add(stats_.lost_packets);
    metrics_->counter("threaded.fault.ranks_dead").add(stats_.ranks_dead);
    metrics_->gauge("threaded.lost_load").add(stats_.lost_load);
    obs::AllocTally alloc;
    for (const auto& worker : workers) alloc.merge(worker->alloc_tally());
    obs::publish(*metrics_, "threaded", alloc);
  }
}

}  // namespace dlb
