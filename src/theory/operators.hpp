// The analytic machinery of §3: the load-ratio operators G and C, the
// fixed point FIX(n, delta, f), and its network-size-independent limit.
//
// If processor 0 is the only generator and E(l_0,t) = k · E(l_i,t) before
// a balancing operation, then after the operation the ratio is G(k) for a
// workload increase by factor f and C(k) for the corresponding decrease
// (Lemma 1).  Banach's contraction theorem gives convergence of G^t to
//   FIX(n, delta, f) = sqrt((n-1)/f + A^2) - A,
//   A = (f - f·n + delta(n-2) + (n-1)) / (2·delta·f),
// bounded by delta/(delta+1-f) independent of n (Theorems 1, 2).
#pragma once

#include <cstdint>

namespace dlb {

/// Parameters of the analysis; n is the network size.
struct ModelParams {
  double n = 16;
  double delta = 1;
  double f = 1.1;
};

/// The growth operator G(k) = (kf + δ)(n−1) / (δkf + δ(n−2) + (n−1)).
double G_op(double k, const ModelParams& params);

/// The decrease operator C(k) = G(k) with f replaced by 1/f.
double C_op(double k, const ModelParams& params);

/// A = (f − fn + δ(n−2) + (n−1)) / (2δf) (Lemma 2).
double A_const(const ModelParams& params);

/// FIX(n, δ, f) = sqrt((n−1)/f + A²) − A: the fixed point of G.
double fixpoint(const ModelParams& params);

/// lim_{n→∞} FIX(n, δ, f) = δ / (δ + 1 − f) (Theorem 2).
/// Requires f < δ + 1.
double fixpoint_limit(double delta, double f);

/// G^t(k0): t applications of G.
double iterate_G(double k0, std::uint32_t t, const ModelParams& params);

/// C^t(k0): t applications of C.
double iterate_C(double k0, std::uint32_t t, const ModelParams& params);

/// Number of iterations until |G^t(k0) − FIX| <= tol (capped at `cap`).
std::uint32_t iterations_to_converge(double k0, double tol,
                                     std::uint32_t cap,
                                     const ModelParams& params);

}  // namespace dlb
