// Exact computation of the variation density (§5 / Figure 6).
//
// The paper computes VD(l_{i,t}) = sqrt(E l² − (E l)²) / E l for a
// non-generating processor through an O(p²t³) recursion over "computation
// graphs".  We obtain the same quantity exactly in O(t) per step ([D8] in
// DESIGN.md): in the one-processor-generator model, processors 1..n-1 are
// exchangeable and balancing candidates are chosen uniformly, so the
// six-tuple of moments
//   a = E v          (generator load)        b = E v²
//   m = E w          (a random other)        s = E w²
//   q = E v·w                                p = E w·w'  (distinct others)
// is closed under the balancing update
//   v' = (f·v + Σ_{c∈M} w_c) / (δ+1),  w_c' = v'  for the δ candidates.
// A Monte-Carlo estimator over the actual integer algorithm cross-checks
// the recursion (tests + bench/fig6_variation).
#pragma once

#include <cstdint>

namespace dlb {

struct VariationParams {
  std::uint32_t n = 16;     // network size
  std::uint32_t delta = 1;  // candidates per balancing step
  double f = 1.1;           // growth factor between balancing steps
  /// Figure 6's relaxed delta>1 algorithm: one balancing step = delta
  /// consecutive *pairwise* equalizations (growth f applied once, before
  /// the first pairwise operation).
  bool relaxed_pairwise = false;
};

class VariationRecursion {
 public:
  explicit VariationRecursion(const VariationParams& params);

  /// Advances by one balancing step.
  void step();
  /// Advances by `steps` balancing steps.
  void advance(std::uint32_t steps);

  std::uint32_t steps_done() const { return t_; }

  /// Variation density of a non-generating processor (the Figure 6 curve).
  double vd_other() const;
  /// Variation density of the generator itself.
  double vd_generator() const;
  /// E(l_0) / E(l_i): converges to FIX(n, delta, f) — the Theorem 1 limit
  /// recovered from the second-moment recursion (cross-check).
  double ratio() const;

  double mean_generator() const { return a_; }
  double mean_other() const { return m_; }

 private:
  // One (δ+1)-way equalization preceded by growth g of the generator.
  void equalize_step(double g, std::uint32_t delta);

  VariationParams params_;
  std::uint32_t t_ = 0;
  // Moments, renormalized every step (divide first moments by a, second
  // moments by a²) so values stay O(1) for any horizon; every reported
  // quantity is scale-invariant.
  double a_ = 1.0, b_ = 1.0;
  double m_ = 1.0, s_ = 1.0;
  double q_ = 1.0, p_ = 1.0;
};

/// Monte-Carlo estimate of the same quantities from the real integer
/// algorithm (core/OneProcessorModel), pooling processors 1..n-1 across
/// `runs` independent runs after `steps` balancing steps.  `initial_load`
/// pre-loads every processor so integer rounding is negligible.
struct VariationEstimate {
  double vd_other = 0.0;
  double mean_other = 0.0;
  double mean_generator = 0.0;
  double ratio = 0.0;
};
VariationEstimate estimate_variation_mc(const VariationParams& params,
                                        std::uint32_t steps,
                                        std::uint32_t runs,
                                        std::uint64_t seed,
                                        std::int64_t initial_load = 1000);

}  // namespace dlb
