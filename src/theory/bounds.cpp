#include "theory/bounds.hpp"

#include <cmath>

#include "support/check.hpp"

namespace dlb {

double theorem3_lower(const ModelParams& params) {
  ModelParams inverse = params;
  inverse.f = 1.0 / params.f;
  return fixpoint(inverse);
}

double theorem3_upper(const ModelParams& params) { return fixpoint(params); }

double theorem4_factor(double delta, double f) {
  DLB_REQUIRE(f >= 1.0 && f < delta + 1.0,
              "Theorem 4 requires 1 <= f < delta + 1");
  return f * f * delta / (delta + 1.0 - f);
}

double theorem4_factor_finite(std::uint32_t local_time,
                              const ModelParams& params) {
  return params.f * params.f * iterate_G(1.0, local_time, params);
}

double U_const(const ModelParams& params) {
  const double fix_inv = theorem3_lower(params);
  DLB_REQUIRE(fix_inv > 0.0, "FIX(n, delta, 1/f) must be positive");
  return 1.0 / (params.f * (params.delta + 1.0)) *
         (1.0 + params.f * params.delta / fix_inv);
}

double D_const(const ModelParams& params) {
  const double fix = fixpoint(params);
  DLB_REQUIRE(fix > 0.0, "FIX(n, delta, f) must be positive");
  return 1.0 / (params.f * (params.delta + 1.0)) *
         (1.0 + params.delta * params.f / fix);
}

DecreaseBounds lemma5_bounds(double x, double c, const ModelParams& params) {
  DLB_REQUIRE(x > c && c > 0.0, "lemma 5 needs x > c > 0");
  DLB_REQUIRE(params.f > 1.0, "lemma 5 needs f > 1");
  const double f = params.f;
  const double u = U_const(params);
  const double d = D_const(params);
  DecreaseBounds out;

  // Lower bound:
  //   t >= max{0, floor( log( (f²(c−x)+x−1)/((f−1)(x+1)) · (U−1) + 1 )
  //                      / log U )}.
  {
    const double ratio = (f * f * (c - x) + x - 1.0) / ((f - 1.0) * (x + 1.0));
    const double arg = ratio * (u - 1.0) + 1.0;
    if (arg > 0.0 && u > 0.0 && u != 1.0) {
      out.lower = std::max(0.0, std::floor(std::log(arg) / std::log(u)));
    } else {
      out.lower = 0.0;
    }
  }

  // Upper bound:
  //   t <= ceil( log( (c+xf−x−f)/((x−1)f(1−1/f)) · (D−1) + 1 ) / log D ),
  // valid only when 1/(1−D) >= (c+xf−x−f)/((x−1)f(1−1/f)).
  {
    const double ratio =
        (c + x * f - x - f) / ((x - 1.0) * f * (1.0 - 1.0 / f));
    out.upper_valid = d < 1.0 && (1.0 / (1.0 - d)) >= ratio;
    const double arg = ratio * (d - 1.0) + 1.0;
    if (out.upper_valid && arg > 0.0 && d > 0.0) {
      out.upper = std::ceil(std::log(arg) / std::log(d));
    }
  }
  return out;
}

double lemma6_upper(double x, double c, const ModelParams& params,
                    std::uint32_t cap) {
  DLB_REQUIRE(x > c && c > 0.0, "lemma 6 needs x > c > 0");
  DLB_REQUIRE(params.f > 1.0, "lemma 6 needs f > 1");
  const double f = params.f;
  const double target = (c - 1.0) / ((x - 1.0) * f * (1.0 - 1.0 / f));
  if (target <= 0.0) return 0.0;

  // D_i = 1/(f(δ+1)) · (1 + δf / C^i(FIX(n, δ, f))): the ratio between
  // processor 0 and its candidates *improves* (via operator C) with every
  // decrease operation, so each step removes a larger fraction.
  double fix_i = fixpoint(params);  // C^0(FIX)
  double product = 1.0;
  double sum = 0.0;
  for (std::uint32_t i = 0; i < cap; ++i) {
    const double d_i = 1.0 / (f * (params.delta + 1.0)) *
                       (1.0 + params.delta * f / fix_i);
    product *= d_i;
    sum += product;
    // sum now equals sum_{k=0}^{i} prod_{j=0}^{k} D_j; lemma's index t has
    // the partial sum running to t-2, so t = i + 2.
    if (sum >= target) return static_cast<double>(i) + 2.0;
    fix_i = C_op(fix_i, params);
  }
  return static_cast<double>(cap);
}

}  // namespace dlb
