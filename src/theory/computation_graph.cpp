#include "theory/computation_graph.hpp"

#include <cmath>

#include "support/check.hpp"

namespace dlb {

ComputationGraph::ComputationGraph(const CandidateSequence& candidates)
    : candidates_(candidates), bow_source_(candidates.size(), 0) {
  // last_seen[c] = last step (1-based) in which candidate c participated.
  // A bow edge (j, i) exists iff candidate of step i was last used in
  // step j and in no step between.
  std::vector<std::size_t> last_seen;
  for (std::size_t i = 0; i < candidates_.size(); ++i) {
    const std::uint32_t c = candidates_[i];
    DLB_REQUIRE(c >= 1, "candidates are 1-based");
    if (c >= last_seen.size()) last_seen.resize(c + 1, 0);
    bow_source_[i] = last_seen[c];
    last_seen[c] = i + 1;
  }
}

std::size_t ComputationGraph::bow_source(std::size_t step) const {
  DLB_REQUIRE(step >= 1 && step <= steps(), "step out of range");
  return bow_source_[step - 1];
}

double ComputationGraph::generator_load(double f, double initial) const {
  // v_0 = initial; v_i = (f/2) v_{i-1} + (1/2) v_{bow(i)}.
  std::vector<double> v(steps() + 1);
  v[0] = initial;
  for (std::size_t i = 1; i <= steps(); ++i) {
    v[i] = 0.5 * f * v[i - 1] + 0.5 * v[bow_source_[i - 1]];
  }
  return v[steps()];
}

double ComputationGraph::candidate_load(std::uint32_t candidate, double f,
                                        double initial) const {
  DLB_REQUIRE(candidate >= 1, "candidates are 1-based");
  std::vector<double> v(steps() + 1);
  v[0] = initial;
  std::size_t last = 0;  // last step this candidate participated in
  for (std::size_t i = 1; i <= steps(); ++i) {
    v[i] = 0.5 * f * v[i - 1] + 0.5 * v[bow_source_[i - 1]];
    if (candidates_[i - 1] == candidate) last = i;
  }
  return v[last];
}

EnumeratedMoments enumerate_moments(std::uint32_t n, std::uint32_t steps,
                                    double f) {
  DLB_REQUIRE(n >= 2, "need at least one candidate");
  DLB_REQUIRE(steps >= 1, "need at least one step");
  const std::uint64_t base = n - 1;
  double total_sequences = 1.0;
  for (std::uint32_t i = 0; i < steps; ++i) {
    total_sequences *= static_cast<double>(base);
    DLB_REQUIRE(total_sequences <= 1e8,
                "enumeration too large; reduce steps or n");
  }
  const auto count = static_cast<std::uint64_t>(total_sequences);

  EnumeratedMoments out;
  out.sequences = count;
  CandidateSequence seq(steps, 1);
  double sum_v = 0.0;
  double sum_v2 = 0.0;
  double sum_w = 0.0;
  double sum_w2 = 0.0;
  for (std::uint64_t index = 0; index < count; ++index) {
    std::uint64_t rest = index;
    for (std::uint32_t i = 0; i < steps; ++i) {
      seq[i] = static_cast<std::uint32_t>(rest % base) + 1;
      rest /= base;
    }
    const ComputationGraph graph(seq);
    const double v = graph.generator_load(f);
    // By symmetry every non-generator has the same marginal law; use
    // candidate 1.
    const double w = graph.candidate_load(1, f);
    sum_v += v;
    sum_v2 += v * v;
    sum_w += w;
    sum_w2 += w * w;
  }
  const double inv = 1.0 / static_cast<double>(count);
  out.mean_generator = sum_v * inv;
  out.second_generator = sum_v2 * inv;
  out.mean_other = sum_w * inv;
  out.second_other = sum_w2 * inv;
  const double var_v =
      std::max(0.0, out.second_generator -
                        out.mean_generator * out.mean_generator);
  const double var_w =
      std::max(0.0, out.second_other - out.mean_other * out.mean_other);
  out.vd_generator =
      out.mean_generator > 0 ? std::sqrt(var_v) / out.mean_generator : 0.0;
  out.vd_other =
      out.mean_other > 0 ? std::sqrt(var_w) / out.mean_other : 0.0;
  return out;
}

}  // namespace dlb
