#include "theory/variation.hpp"

#include <cmath>

#include "core/one_processor.hpp"
#include "support/check.hpp"
#include "support/stats.hpp"

namespace dlb {

VariationRecursion::VariationRecursion(const VariationParams& params)
    : params_(params) {
  DLB_REQUIRE(params_.n >= 2, "variation recursion needs n >= 2");
  DLB_REQUIRE(params_.delta >= 1 && params_.delta < params_.n,
              "delta out of range");
  DLB_REQUIRE(params_.f >= 1.0, "f must be >= 1");
}

void VariationRecursion::equalize_step(double g, std::uint32_t delta) {
  const double n = params_.n;
  const double d = delta;
  const double D = d + 1.0;

  // Growth g of the generator, then (δ+1)-way equalization with δ
  // uniformly chosen distinct candidates; all participants end at
  //   v' = (g·v + Σ w_c) / (δ+1).
  const double a1 = (g * a_ + d * m_) / D;
  const double b1 =
      (g * g * b_ + 2.0 * g * d * q_ + d * s_ + d * (d - 1.0) * p_) /
      (D * D);
  // E[v'·w_j] for a non-candidate j.
  const double cross = (g * q_ + d * p_) / D;

  const double pc = d / (n - 1.0);  // P(a given other is a candidate)
  const double m1 = pc * a1 + (1.0 - pc) * m_;
  const double s1 = pc * b1 + (1.0 - pc) * s_;
  const double q1 = pc * b1 + (1.0 - pc) * cross;

  double p1 = p_;
  if (params_.n >= 3) {
    const double denom = (n - 1.0) * (n - 2.0);
    const double p_both = d * (d - 1.0) / denom;
    const double p_one = 2.0 * d * (n - 1.0 - d) / denom;
    const double p_none = (n - 1.0 - d) * (n - 2.0 - d) / denom;
    p1 = p_both * b1 + p_one * cross + p_none * p_;
  }

  // Renormalize so the generator's mean stays 1; all reported quantities
  // are scale-invariant, and this keeps the state bounded for any t.
  const double scale = a1;
  DLB_ENSURE(scale > 0.0, "generator mean collapsed to zero");
  a_ = 1.0;
  m_ = m1 / scale;
  b_ = b1 / (scale * scale);
  s_ = s1 / (scale * scale);
  q_ = q1 / (scale * scale);
  p_ = p1 / (scale * scale);
}

void VariationRecursion::step() {
  if (params_.relaxed_pairwise && params_.delta > 1) {
    equalize_step(params_.f, 1);
    for (std::uint32_t k = 1; k < params_.delta; ++k) equalize_step(1.0, 1);
  } else {
    equalize_step(params_.f, params_.delta);
  }
  ++t_;
}

void VariationRecursion::advance(std::uint32_t steps) {
  for (std::uint32_t i = 0; i < steps; ++i) step();
}

double VariationRecursion::vd_other() const {
  const double var = std::max(0.0, s_ - m_ * m_);
  return m_ > 0.0 ? std::sqrt(var) / m_ : 0.0;
}

double VariationRecursion::vd_generator() const {
  const double var = std::max(0.0, b_ - a_ * a_);
  return a_ > 0.0 ? std::sqrt(var) / a_ : 0.0;
}

double VariationRecursion::ratio() const {
  return m_ > 0.0 ? a_ / m_ : 0.0;
}

VariationEstimate estimate_variation_mc(const VariationParams& params,
                                        std::uint32_t steps,
                                        std::uint32_t runs,
                                        std::uint64_t seed,
                                        std::int64_t initial_load) {
  DLB_REQUIRE(runs >= 2, "Monte-Carlo estimate needs at least two runs");
  DLB_REQUIRE(initial_load >= 1, "initial load must be positive");
  OneProcessorModel::Params mp;
  mp.n = params.n;
  mp.delta = params.delta;
  mp.f = params.f;
  mp.relaxed_pairwise = params.relaxed_pairwise;

  Rng master(seed);
  RunningMoments others;
  RunningMoments generator;
  for (std::uint32_t r = 0; r < runs; ++r) {
    OneProcessorModel model(mp, master.next());
    for (std::uint32_t i = 0; i < params.n; ++i)
      model.set_load(i, initial_load);
    model.set_trigger_baseline(initial_load);
    model.run_grow(steps);
    for (std::uint32_t i = 1; i < params.n; ++i)
      others.add(static_cast<double>(model.load(i)));
    generator.add(static_cast<double>(model.load(0)));
  }
  VariationEstimate est;
  est.vd_other = others.variation_density();
  est.mean_other = others.mean();
  est.mean_generator = generator.mean();
  est.ratio = others.mean() > 0.0 ? generator.mean() / others.mean() : 0.0;
  return est;
}

}  // namespace dlb
