// Closed-form bounds of Theorems 3/4 and Lemmas 5/6.
//
// Theorem 3 sandwiches the one-processor producer-consumer ratio; Theorem
// 4 bounds any pairwise expected-load ratio in the full n-processor model;
// Lemmas 5 and 6 bound the number of balancing operations needed to shrink
// a class load from x to x − c (the §6 cost analysis).
#pragma once

#include <cstdint>

#include "theory/operators.hpp"

namespace dlb {

/// Theorem 3, lower envelope: FIX(n, δ, 1/f) (and its n→∞ limit
/// δ/(δ+1−1/f) via fixpoint_limit(delta, 1/f)).
double theorem3_lower(const ModelParams& params);
/// Theorem 3, upper envelope: FIX(n, δ, f).
double theorem3_upper(const ModelParams& params);

/// Theorem 4 (2): E(l_i) <= f²·δ/(δ+1−f) · (E(l_j) + C).  This returns
/// the multiplicative factor f²·δ/(δ+1−f); requires f < δ+1.
double theorem4_factor(double delta, double f);

/// Theorem 4 (1): the finite-time factor f²·G^{t'}(1).
double theorem4_factor_finite(std::uint32_t local_time,
                              const ModelParams& params);

/// Lemma 5's constants:
///   U = 1/(f(δ+1)) · (1 + fδ / FIX(n, δ, 1/f))
///   D = 1/(f(δ+1)) · (1 + δf / FIX(n, δ, f))
double U_const(const ModelParams& params);
double D_const(const ModelParams& params);

/// Lemma 5: bounds on the expected number of balancing operations to
/// decrease the class-i load on processor i from x to x − c > 0.
struct DecreaseBounds {
  double lower = 0.0;
  double upper = 0.0;
  /// Lemma 5's upper bound "only holds in case that
  /// 1/(1−D) >= (c + xf − x − f) / ((x−1)·f·(1−1/f))".
  bool upper_valid = false;
};
DecreaseBounds lemma5_bounds(double x, double c, const ModelParams& params);

/// Lemma 6: improved upper bound — the smallest t with
///   sum_{i=0}^{t-2} prod_{j=0}^{i} D_j  >=  (c−1) / ((x−1)·f·(1−1/f)),
/// where D_i uses C^i(FIX(n, δ, f)) in place of FIX(n, δ, f).
/// Returns ceil(t); `cap` bounds the search.
double lemma6_upper(double x, double c, const ModelParams& params,
                    std::uint32_t cap = 100000);

}  // namespace dlb
