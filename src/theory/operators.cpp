#include "theory/operators.hpp"

#include <cmath>

#include "support/check.hpp"

namespace dlb {

namespace {
void check_params(const ModelParams& params) {
  DLB_REQUIRE(params.n >= 2.0, "analysis needs n >= 2");
  DLB_REQUIRE(params.delta >= 1.0 && params.delta < params.n,
              "delta out of range");
  DLB_REQUIRE(params.f > 0.0, "f must be positive");
}
}  // namespace

double G_op(double k, const ModelParams& params) {
  check_params(params);
  const double n = params.n;
  const double d = params.delta;
  const double f = params.f;
  return (k * f + d) * (n - 1.0) /
         (d * k * f + d * (n - 2.0) + (n - 1.0));
}

double C_op(double k, const ModelParams& params) {
  ModelParams inverse = params;
  inverse.f = 1.0 / params.f;
  return G_op(k, inverse);
}

double A_const(const ModelParams& params) {
  check_params(params);
  const double n = params.n;
  const double d = params.delta;
  const double f = params.f;
  return (f - f * n + d * (n - 2.0) + (n - 1.0)) / (2.0 * d * f);
}

double fixpoint(const ModelParams& params) {
  const double a = A_const(params);
  return std::sqrt((params.n - 1.0) / params.f + a * a) - a;
}

double fixpoint_limit(double delta, double f) {
  DLB_REQUIRE(f < delta + 1.0,
              "the n->infinity limit requires f < delta + 1");
  return delta / (delta + 1.0 - f);
}

double iterate_G(double k0, std::uint32_t t, const ModelParams& params) {
  double k = k0;
  for (std::uint32_t i = 0; i < t; ++i) k = G_op(k, params);
  return k;
}

double iterate_C(double k0, std::uint32_t t, const ModelParams& params) {
  double k = k0;
  for (std::uint32_t i = 0; i < t; ++i) k = C_op(k, params);
  return k;
}

std::uint32_t iterations_to_converge(double k0, double tol,
                                     std::uint32_t cap,
                                     const ModelParams& params) {
  const double fix = fixpoint(params);
  double k = k0;
  for (std::uint32_t t = 0; t <= cap; ++t) {
    if (std::fabs(k - fix) <= tol) return t;
    k = G_op(k, params);
  }
  return cap;
}

}  // namespace dlb
