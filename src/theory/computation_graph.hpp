// The §5 computation-graph formalism, implemented literally.
//
// The paper describes the one-processor-generator computation by a graph:
// nodes 0..t are balancing steps; step i has a *forward* edge (i-1, i)
// weighted f/2 and a *bow* edge (j, i) weighted 1/2, where j is the last
// step in which step i's candidate processor participated (j = 0 if it
// never did).  The generator's load after step t is the total weight of
// all paths 0 -> t:
//     v_t = (1/2) v_j + (f/2) v_{t-1}.
// E(v_t^2) is then an average over all candidate sequences.
//
// This module provides:
//   * CandidateSequence -> ComputationGraph construction (the paper's
//     Figure 2 example is a unit test),
//   * exact evaluation of v_t for a fixed graph,
//   * exact E(v_t), E(v_t^2), and the variation density of v_t by full
//     enumeration of all (n-1)^t candidate sequences (small t), and
//   * the candidate-load view w_i(t) so the non-generator's VD (what
//     Figure 6 plots) is enumerable too.
//
// It exists to cross-validate the O(t) moment recursion in
// theory/variation.hpp against the paper's own formalism: both must give
// identical results for every enumerable configuration (tested).
#pragma once

#include <cstdint>
#include <vector>

namespace dlb {

/// Candidate sequence: candidates[i] is the processor (1-based index into
/// the non-generators, i.e. in {1, ..., n-1}) chosen at balancing step
/// i+1.  Only delta = 1 is expressible as a plain sequence, matching §5
/// (the paper's recursion handles delta > 1 only via the relaxed
/// algorithm, which is again a sequence of pairwise steps).
using CandidateSequence = std::vector<std::uint32_t>;

/// The computation graph of a candidate sequence.
class ComputationGraph {
 public:
  /// Builds the graph: bow_source[i] is the step j < i+1 whose value the
  /// step-(i+1) candidate still carries (0 if the candidate is fresh).
  explicit ComputationGraph(const CandidateSequence& candidates);

  std::size_t steps() const { return bow_source_.size(); }

  /// Source of the bow edge into node i (1-based step index, i >= 1).
  std::size_t bow_source(std::size_t step) const;

  /// Generator load v_t after all steps, for growth factor f and initial
  /// balanced load v_0 = initial on every processor: evaluates the path
  /// weights via the recurrence v_i = (f/2) v_{i-1} + (1/2) v_{bow(i)}.
  double generator_load(double f, double initial = 1.0) const;

  /// Load of non-generator processor `candidate` (1-based) after all
  /// steps: the value it received at its last participation (or the
  /// initial load if it never participated).
  double candidate_load(std::uint32_t candidate, double f,
                        double initial = 1.0) const;

 private:
  CandidateSequence candidates_;
  std::vector<std::size_t> bow_source_;
};

/// Exact moments over ALL candidate sequences of length `steps` with
/// `n - 1` candidates (full enumeration; cost (n-1)^steps — keep
/// steps * log(n-1) small).
struct EnumeratedMoments {
  double mean_generator = 0.0;
  double second_generator = 0.0;  // E(v_t^2)
  double vd_generator = 0.0;
  double mean_other = 0.0;        // E of a fixed non-generator's load
  double second_other = 0.0;
  double vd_other = 0.0;          // the Figure 6 quantity
  std::uint64_t sequences = 0;
};

EnumeratedMoments enumerate_moments(std::uint32_t n, std::uint32_t steps,
                                    double f);

}  // namespace dlb
