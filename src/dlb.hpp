// Umbrella header for the dlb library — a reproduction of
// R. Lüling & B. Monien, "A Dynamic Distributed Load Balancing Algorithm
// with Provable Good Performance", SPAA 1993.
//
// Typical usage (see examples/quickstart.cpp):
//
//   #include "dlb.hpp"
//   dlb::BalancerConfig cfg;            // f, delta, C
//   dlb::System sys(16, cfg, seed);     // simulated 16-processor network
//   sys.run(dlb::Workload::paper_benchmark(16, 500, {}, rng));
//   auto report = dlb::measure_imbalance(sys.loads());
//
// Sub-headers can of course be included individually.
#pragma once

#include "baselines/adapter.hpp"    // the algorithm behind the comparison API
#include "baselines/balancer.hpp"   // strategy interface + trace replay
#include "baselines/diffusion.hpp"  // first-order diffusion baseline
#include "baselines/dimension_exchange.hpp"  // hypercube dimension exchange
#include "baselines/gradient.hpp"   // gradient model (Lin & Keller 1987) [6]
#include "baselines/rsu.hpp"        // Rudolph-Slivkin-Allalouf-Upfal (SPAA'91)
#include "baselines/simple.hpp"     // no-balancing + random-scatter strawman
#include "baselines/stealing.hpp"   // steal-half work stealing
#include "core/config.hpp"          // BalancerConfig (f, delta, C)
#include "core/experiment.hpp"      // repeated-run harness (§7)
#include "core/item_system.hpp"     // payload-carrying packets
#include "core/ledger.hpp"          // d/b packet ledger (§4)
#include "core/one_processor.hpp"   // §3 one-processor models
#include "core/snake.hpp"           // ±1 snake redistribution
#include "core/async_system.hpp"    // event-driven simulator with latency
#include "core/system.hpp"          // the n-processor simulator
#include "metrics/imbalance.hpp"    // imbalance measures
#include "metrics/recorder.hpp"     // figure/table observers
#include "net/cost_model.hpp"       // message/migration cost accounting
#include "net/topology.hpp"         // interconnection networks
#include "mp/communicator.hpp"      // mini message-passing interface
#include "runtime/threaded_system.hpp"  // actor/mailbox concurrent runtime
#include "support/cli.hpp"          // bench option parsing
#include "support/rng.hpp"          // xoshiro256** deterministic PRNG
#include "support/stats.hpp"        // Welford moments, series aggregation
#include "support/plot.hpp"         // ASCII charts for figure benches
#include "support/table.hpp"        // text/CSV tables
#include "theory/bounds.hpp"        // Thm 4, Lemmas 5/6
#include "theory/operators.hpp"     // G, C, FIX (Thms 1-3)
#include "theory/computation_graph.hpp"  // §5 formalism, literal
#include "theory/variation.hpp"     // §5 variation density (exact + MC)
#include "workload/trace.hpp"       // record/replay demand
#include "workload/workload.hpp"    // §7 phase workloads + pattern library
