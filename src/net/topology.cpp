#include "net/topology.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <sstream>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace dlb {

namespace {
constexpr unsigned kUnreached = std::numeric_limits<unsigned>::max();

void add_edge(std::vector<std::vector<ProcId>>& adj, ProcId u, ProcId v) {
  if (u == v) return;
  auto& nu = adj[u];
  if (std::find(nu.begin(), nu.end(), v) == nu.end()) {
    nu.push_back(v);
    adj[v].push_back(u);
  }
}
}  // namespace

const char* to_string(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::Complete: return "complete";
    case TopologyKind::Ring: return "ring";
    case TopologyKind::Mesh2D: return "mesh2d";
    case TopologyKind::Torus2D: return "torus2d";
    case TopologyKind::Hypercube: return "hypercube";
    case TopologyKind::DeBruijn: return "debruijn";
    case TopologyKind::CCC: return "ccc";
    case TopologyKind::Butterfly: return "butterfly";
    case TopologyKind::BinaryTree: return "binary-tree";
    case TopologyKind::RandomRegular: return "random-regular";
  }
  return "unknown";
}

Topology::Topology(TopologyKind kind,
                   std::vector<std::vector<ProcId>> adjacency)
    : kind_(kind), adjacency_(std::move(adjacency)) {
  DLB_REQUIRE(!adjacency_.empty(), "topology needs at least one processor");
  for (auto& nbrs : adjacency_) std::sort(nbrs.begin(), nbrs.end());
  dist_cache_.resize(adjacency_.size());
}

Topology Topology::complete(ProcId n) {
  DLB_REQUIRE(n >= 1, "complete topology needs n >= 1");
  std::vector<std::vector<ProcId>> adj(n);
  for (ProcId u = 0; u < n; ++u) {
    adj[u].reserve(n - 1);
    for (ProcId v = 0; v < n; ++v)
      if (u != v) adj[u].push_back(v);
  }
  return Topology(TopologyKind::Complete, std::move(adj));
}

Topology Topology::ring(ProcId n) {
  DLB_REQUIRE(n >= 2, "ring needs n >= 2");
  std::vector<std::vector<ProcId>> adj(n);
  for (ProcId u = 0; u < n; ++u) {
    add_edge(adj, u, (u + 1) % n);
  }
  return Topology(TopologyKind::Ring, std::move(adj));
}

Topology Topology::mesh2d(ProcId rows, ProcId cols) {
  DLB_REQUIRE(rows >= 1 && cols >= 1 && rows * cols >= 2,
              "mesh needs at least two processors");
  const ProcId n = rows * cols;
  std::vector<std::vector<ProcId>> adj(n);
  auto id = [cols](ProcId r, ProcId c) { return r * cols + c; };
  for (ProcId r = 0; r < rows; ++r) {
    for (ProcId c = 0; c < cols; ++c) {
      if (r + 1 < rows) add_edge(adj, id(r, c), id(r + 1, c));
      if (c + 1 < cols) add_edge(adj, id(r, c), id(r, c + 1));
    }
  }
  return Topology(TopologyKind::Mesh2D, std::move(adj));
}

Topology Topology::torus2d(ProcId rows, ProcId cols) {
  DLB_REQUIRE(rows >= 2 && cols >= 2, "torus needs rows, cols >= 2");
  const ProcId n = rows * cols;
  std::vector<std::vector<ProcId>> adj(n);
  auto id = [cols](ProcId r, ProcId c) { return r * cols + c; };
  for (ProcId r = 0; r < rows; ++r) {
    for (ProcId c = 0; c < cols; ++c) {
      add_edge(adj, id(r, c), id((r + 1) % rows, c));
      add_edge(adj, id(r, c), id(r, (c + 1) % cols));
    }
  }
  return Topology(TopologyKind::Torus2D, std::move(adj));
}

Topology Topology::hypercube(unsigned dimension) {
  DLB_REQUIRE(dimension >= 1 && dimension <= 20,
              "hypercube dimension out of range");
  const ProcId n = ProcId{1} << dimension;
  std::vector<std::vector<ProcId>> adj(n);
  for (ProcId u = 0; u < n; ++u)
    for (unsigned b = 0; b < dimension; ++b)
      add_edge(adj, u, u ^ (ProcId{1} << b));
  return Topology(TopologyKind::Hypercube, std::move(adj));
}

Topology Topology::de_bruijn(unsigned dimension) {
  DLB_REQUIRE(dimension >= 1 && dimension <= 20,
              "de Bruijn dimension out of range");
  const ProcId n = ProcId{1} << dimension;
  const ProcId mask = n - 1;
  std::vector<std::vector<ProcId>> adj(n);
  // Undirected version of the binary de Bruijn graph: u -> (2u | b) mod n.
  for (ProcId u = 0; u < n; ++u) {
    add_edge(adj, u, (u << 1) & mask);
    add_edge(adj, u, ((u << 1) | 1) & mask);
  }
  return Topology(TopologyKind::DeBruijn, std::move(adj));
}

Topology Topology::cube_connected_cycles(unsigned dimension) {
  DLB_REQUIRE(dimension >= 3 && dimension <= 16,
              "CCC dimension out of range (needs >= 3 for proper cycles)");
  const ProcId corners = ProcId{1} << dimension;
  const ProcId n = dimension * corners;
  std::vector<std::vector<ProcId>> adj(n);
  auto id = [dimension](ProcId corner, unsigned pos) {
    return corner * dimension + pos;
  };
  for (ProcId corner = 0; corner < corners; ++corner) {
    for (unsigned pos = 0; pos < dimension; ++pos) {
      // Cycle edges around the corner.
      add_edge(adj, id(corner, pos), id(corner, (pos + 1) % dimension));
      // Cube edge across dimension `pos`.
      add_edge(adj, id(corner, pos), id(corner ^ (ProcId{1} << pos), pos));
    }
  }
  return Topology(TopologyKind::CCC, std::move(adj));
}

Topology Topology::butterfly(unsigned dimension) {
  DLB_REQUIRE(dimension >= 2 && dimension <= 16,
              "butterfly dimension out of range");
  const ProcId rows = ProcId{1} << dimension;
  const ProcId n = dimension * rows;
  std::vector<std::vector<ProcId>> adj(n);
  auto id = [rows](unsigned level, ProcId row) { return level * rows + row; };
  for (unsigned level = 0; level < dimension; ++level) {
    const unsigned next = (level + 1) % dimension;
    for (ProcId row = 0; row < rows; ++row) {
      add_edge(adj, id(level, row), id(next, row));
      add_edge(adj, id(level, row), id(next, row ^ (ProcId{1} << level)));
    }
  }
  return Topology(TopologyKind::Butterfly, std::move(adj));
}

Topology Topology::binary_tree(unsigned depth) {
  DLB_REQUIRE(depth >= 2 && depth <= 20, "tree depth out of range");
  const ProcId n = (ProcId{1} << depth) - 1;
  std::vector<std::vector<ProcId>> adj(n);
  for (ProcId v = 1; v < n; ++v) add_edge(adj, v, (v - 1) / 2);
  return Topology(TopologyKind::BinaryTree, std::move(adj));
}

Topology Topology::random_regular(ProcId n, unsigned degree,
                                  std::uint64_t seed) {
  DLB_REQUIRE(n >= 3, "random regular graph needs n >= 3");
  DLB_REQUIRE(degree >= 2, "degree must be at least 2");
  std::vector<std::vector<ProcId>> adj(n);
  // Hamiltonian cycle guarantees connectivity (uses up degree 2).
  for (ProcId u = 0; u < n; ++u) add_edge(adj, u, (u + 1) % n);
  Rng rng(seed);
  std::vector<ProcId> perm(n);
  for (ProcId u = 0; u < n; ++u) perm[u] = u;
  // Each extra matching adds (up to) one more neighbor per node; self and
  // duplicate pairs are skipped, so the result is "approximately regular".
  for (unsigned m = 2; m < degree; m += 2) {
    rng.shuffle(perm);
    for (ProcId i = 0; i + 1 < n; i += 2) add_edge(adj, perm[i], perm[i + 1]);
  }
  return Topology(TopologyKind::RandomRegular, std::move(adj));
}

Topology Topology::balanced_torus(ProcId n) {
  DLB_REQUIRE(n >= 2, "balanced torus needs n >= 2");
  ProcId rows = 1;
  for (ProcId r = 2; r * r <= n; ++r) {
    if (n % r == 0) rows = r;
  }
  if (rows < 2) return ring(n);  // prime n
  return torus2d(rows, n / rows);
}

const std::vector<ProcId>& Topology::neighbors(ProcId u) const {
  DLB_REQUIRE(u < size(), "processor id out of range");
  return adjacency_[u];
}

std::size_t Topology::edge_count() const {
  std::size_t twice = 0;
  for (const auto& nbrs : adjacency_) twice += nbrs.size();
  return twice / 2;
}

const std::vector<unsigned>& Topology::bfs_from(ProcId source) const {
  auto& row = dist_cache_[source];
  if (!row.empty()) return row;
  row.assign(size(), kUnreached);
  row[source] = 0;
  std::deque<ProcId> queue{source};
  while (!queue.empty()) {
    const ProcId u = queue.front();
    queue.pop_front();
    for (ProcId v : adjacency_[u]) {
      if (row[v] == kUnreached) {
        row[v] = row[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return row;
}

unsigned Topology::distance(ProcId u, ProcId v) const {
  DLB_REQUIRE(u < size() && v < size(), "processor id out of range");
  if (u == v) return 0;
  if (kind_ == TopologyKind::Complete) return 1;
  const unsigned d = bfs_from(u)[v];
  DLB_ENSURE(d != kUnreached, "topology is disconnected");
  return d;
}

unsigned Topology::diameter() const {
  unsigned best = 0;
  for (ProcId u = 0; u < size(); ++u) {
    const auto& row = bfs_from(u);
    for (unsigned d : row) {
      DLB_ENSURE(d != kUnreached, "topology is disconnected");
      best = std::max(best, d);
    }
  }
  return best;
}

bool Topology::connected() const {
  const auto& row = bfs_from(0);
  return std::all_of(row.begin(), row.end(),
                     [](unsigned d) { return d != kUnreached; });
}

std::string Topology::describe() const {
  std::ostringstream os;
  os << to_string(kind_) << "(n=" << size() << ", edges=" << edge_count()
     << ')';
  return os.str();
}

}  // namespace dlb
