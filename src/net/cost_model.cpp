#include "net/cost_model.hpp"

namespace dlb {

CostTotals& CostTotals::operator+=(const CostTotals& other) {
  balance_ops += other.balance_ops;
  messages += other.messages;
  packets_moved += other.packets_moved;
  packets_moved_net += other.packets_moved_net;
  packet_hops += other.packet_hops;
  partner_links += other.partner_links;
  return *this;
}

void CostLedger::record_operation(ProcId initiator, std::size_t partners) {
  (void)initiator;
  totals_.balance_ops += 1;
  totals_.messages += 2 * static_cast<std::uint64_t>(partners);
  totals_.partner_links += static_cast<std::uint64_t>(partners);
}

void CostLedger::record_migration(ProcId from, ProcId to,
                                  std::uint64_t count) {
  if (count == 0 || from == to) return;
  totals_.packets_moved += count;
  const std::uint64_t hops =
      topology_ ? topology_->distance(from, to) : 1;
  totals_.packet_hops += hops * count;
}

void CostLedger::record_migration_bulk(std::uint64_t count) {
  totals_.packets_moved += count;
  totals_.packet_hops += count;  // distance 1 per packet without a topology
}

void CostLedger::record_net_migration(std::uint64_t count) {
  totals_.packets_moved_net += count;
}

double CostLedger::packets_per_operation() const {
  if (totals_.balance_ops == 0) return 0.0;
  return static_cast<double>(totals_.packets_moved) /
         static_cast<double>(totals_.balance_ops);
}

double CostLedger::hops_per_packet() const {
  if (totals_.packets_moved == 0) return 0.0;
  return static_cast<double>(totals_.packet_hops) /
         static_cast<double>(totals_.packets_moved);
}

}  // namespace dlb
