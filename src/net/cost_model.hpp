// Communication-cost accounting for balancing operations.
//
// §2 of the paper assumes a balancing operation completes in constant
// *time* independent of data volume; §6 nevertheless reasons about the
// *costs* of the algorithm (number of balancing steps, migration
// activity).  CostLedger separates those concerns: the simulator's timing
// follows the paper's model while the ledger records what a real machine
// would pay — operations, messages, migrated packets, and hop-weighted
// packet transfers on a given topology.
#pragma once

#include <cstdint>

#include "net/topology.hpp"

namespace dlb {

struct CostTotals {
  std::uint64_t balance_ops = 0;      // balancing operations performed
  std::uint64_t messages = 0;         // control messages (2 per partner)
  std::uint64_t packets_moved = 0;    // class-labeled packets that changed
                                      // processor (gross ledger traffic)
  std::uint64_t packets_moved_net = 0;  // net load flow: the minimum
                                        // physical migration implied by the
                                        // row-total changes alone
  std::uint64_t packet_hops = 0;      // packets_moved weighted by distance
  std::uint64_t partner_links = 0;    // sum of delta over all operations

  CostTotals& operator+=(const CostTotals& other);
};

class CostLedger {
 public:
  /// Topology used for hop weighting; must outlive the ledger.
  explicit CostLedger(const Topology* topology = nullptr)
      : topology_(topology) {}

  /// Records one balancing operation initiated by `initiator` with the
  /// given partner count.  Two control messages per partner: invitation
  /// (with load report) + assignment.
  void record_operation(ProcId initiator, std::size_t partners);

  /// Records `count` class-labeled packets migrating from -> to (gross).
  void record_migration(ProcId from, ProcId to, std::uint64_t count);

  /// Bulk form for hop-unweighted accounting (no topology): `count`
  /// packets moved between distinct processors in single hops.  Equal to
  /// the sum of the per-pair record_migration calls it replaces.
  void record_migration_bulk(std::uint64_t count);

  /// True when migrations are hop-weighted by a topology — per-pair
  /// record_migration calls are then required for exact packet_hops.
  bool hop_weighted() const { return topology_ != nullptr; }

  /// Records net load flow (physical migration implied by total-load
  /// changes; always <= the gross class-level traffic of the same op).
  void record_net_migration(std::uint64_t count);

  const CostTotals& totals() const { return totals_; }
  void reset() { totals_ = CostTotals{}; }
  /// Restores previously saved totals (checkpointing).
  void restore(const CostTotals& totals) { totals_ = totals; }

  /// Mean packets moved per balancing operation (0 when no ops).
  double packets_per_operation() const;
  /// Mean hops per moved packet (0 when nothing moved).
  double hops_per_packet() const;

 private:
  const Topology* topology_;
  CostTotals totals_;
};

}  // namespace dlb
