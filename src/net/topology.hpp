// Interconnection topologies.
//
// The paper's algorithm picks balancing partners uniformly at random from
// the *whole* network and assumes a balancing operation costs O(1)
// regardless of distance (justified by wormhole routing, §2).  The
// topology therefore does not affect the algorithm's decisions — but it
// does affect the *communication cost* a real machine would pay, and the
// paper's "further research" section points at locality-aware variants.
// We model the classic distributed-memory interconnects of the era
// (transputer-style grids, hypercubes, de Bruijn networks) so cost benches
// can weight migrations by hop distance and the locality ablation can
// restrict partner choice to neighborhoods.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dlb {

using ProcId = std::uint32_t;

enum class TopologyKind {
  Complete,       // every pair connected (the paper's implicit model)
  Ring,           // cycle of n nodes
  Mesh2D,         // rows x cols grid without wrap-around
  Torus2D,        // rows x cols wrap-around grid
  Hypercube,      // n = 2^d, neighbors differ in one bit
  DeBruijn,       // binary de Bruijn graph on n = 2^d nodes
  CCC,            // cube-connected cycles, n = d * 2^d
  Butterfly,      // wrapped butterfly, n = d * 2^d
  BinaryTree,     // complete binary tree with n = 2^d - 1 nodes
  RandomRegular,  // random d-regular multigraph (pairing model, simplified)
};

const char* to_string(TopologyKind kind);

/// Undirected interconnection network over processors {0, ..., n-1}.
class Topology {
 public:
  static Topology complete(ProcId n);
  static Topology ring(ProcId n);
  static Topology mesh2d(ProcId rows, ProcId cols);
  static Topology torus2d(ProcId rows, ProcId cols);
  static Topology hypercube(unsigned dimension);
  static Topology de_bruijn(unsigned dimension);
  /// Cube-connected cycles of dimension d: each hypercube corner becomes
  /// a d-cycle; node (corner, position) connects along its cycle and
  /// across dimension `position`.  n = d * 2^d, degree 3.
  static Topology cube_connected_cycles(unsigned dimension);
  /// Wrapped butterfly of dimension d: node (level, row), levels mod d;
  /// (l, r) connects to (l+1, r) and (l+1, r ^ 2^l).  n = d * 2^d,
  /// degree 4.  The network of the paper's references [5, 19].
  static Topology butterfly(unsigned dimension);
  /// Complete binary tree with 2^depth - 1 nodes (root = 0).
  static Topology binary_tree(unsigned depth);
  /// Random d-regular-ish graph: d/2 superimposed random perfect matchings
  /// plus a Hamiltonian cycle to guarantee connectivity.  Deterministic in
  /// `seed`.
  static Topology random_regular(ProcId n, unsigned degree,
                                 std::uint64_t seed);

  /// The most square torus with exactly n nodes (rows = the largest
  /// divisor of n that is <= sqrt(n)); falls back to a ring when n is
  /// prime (rows would be 1).  Convenience for "give me a 2-D-ish
  /// network of this size".
  static Topology balanced_torus(ProcId n);

  TopologyKind kind() const { return kind_; }
  ProcId size() const { return static_cast<ProcId>(adjacency_.size()); }
  const std::vector<ProcId>& neighbors(ProcId u) const;
  std::size_t degree(ProcId u) const { return neighbors(u).size(); }
  std::size_t edge_count() const;

  /// BFS hop distance between two processors.  For Complete this is O(1);
  /// otherwise results are computed per-source and memoized, so repeated
  /// cost accounting stays cheap.
  unsigned distance(ProcId u, ProcId v) const;

  /// Longest shortest path; computes all-pairs distances on first use.
  unsigned diameter() const;

  /// True if every processor can reach every other.
  bool connected() const;

  std::string describe() const;

 private:
  Topology(TopologyKind kind, std::vector<std::vector<ProcId>> adjacency);
  const std::vector<unsigned>& bfs_from(ProcId source) const;

  TopologyKind kind_;
  std::vector<std::vector<ProcId>> adjacency_;
  // distance cache, filled lazily per source row
  mutable std::vector<std::vector<unsigned>> dist_cache_;
};

}  // namespace dlb
