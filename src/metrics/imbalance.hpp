// Imbalance measures over a load vector.
//
// The paper's headline guarantee bounds the *ratio* between expected loads
// of any two processors (Thm 4); the baseline comparison additionally uses
// the classic max/avg imbalance factor and the coefficient of variation
// across processors.
#pragma once

#include <cstdint>
#include <vector>

namespace dlb {

struct ImbalanceReport {
  double min_load = 0.0;
  double max_load = 0.0;
  double avg_load = 0.0;
  /// max / avg (1.0 = perfectly balanced; 0 when avg == 0).
  double max_over_avg = 0.0;
  /// max / max(min, 1): the paper's pairwise ratio with an empty-processor
  /// guard (a single empty processor would make the raw ratio infinite).
  double max_over_min = 0.0;
  /// Coefficient of variation across processors.
  double cov = 0.0;
  /// max − avg in packets.
  double max_deviation = 0.0;
};

ImbalanceReport measure_imbalance(const std::vector<std::int64_t>& loads);

}  // namespace dlb
