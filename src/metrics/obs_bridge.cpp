#include "metrics/obs_bridge.hpp"

namespace dlb {

MetricsRecorder::MetricsRecorder(obs::MetricsRegistry& registry)
    : balance_ops_(registry.counter("recorder.balance_ops")),
      packets_moved_(registry.counter("recorder.packets_moved")),
      migrations_(registry.counter("recorder.migrations")),
      borrow_total_(registry.counter("recorder.borrow.total")),
      borrow_remote_(registry.counter("recorder.borrow.remote")),
      borrow_fail_(registry.counter("recorder.borrow.fail")),
      decrease_sim_(registry.counter("recorder.borrow.decrease_sim")),
      fault_timeouts_(registry.counter("fault.timeouts")),
      fault_aborted_(registry.counter("fault.aborted_ops")),
      fault_lost_(registry.counter("fault.lost_packets")),
      fault_dead_(registry.counter("fault.ranks_dead")) {}

void MetricsRecorder::on_balance_op(std::uint32_t initiator,
                                    std::size_t partners,
                                    std::uint64_t packets_moved) {
  (void)initiator;
  (void)partners;
  balance_ops_.add(1);
  packets_moved_.add(packets_moved);
}

void MetricsRecorder::on_migration(std::uint32_t from, std::uint32_t to,
                                   std::uint64_t count) {
  (void)from;
  (void)to;
  migrations_.add(count);
}

void MetricsRecorder::on_borrow_event(BorrowEvent event) {
  switch (event) {
    case BorrowEvent::TotalBorrow:
      borrow_total_.add(1);
      break;
    case BorrowEvent::RemoteBorrow:
      borrow_remote_.add(1);
      break;
    case BorrowEvent::BorrowFail:
      borrow_fail_.add(1);
      break;
    case BorrowEvent::DecreaseSim:
      decrease_sim_.add(1);
      break;
  }
}

void MetricsRecorder::on_fault(FaultEvent event, std::uint64_t count) {
  switch (event) {
    case FaultEvent::Timeout:
      fault_timeouts_.add(count);
      break;
    case FaultEvent::AbortedOp:
      fault_aborted_.add(count);
      break;
    case FaultEvent::LostPacket:
      fault_lost_.add(count);
      break;
    case FaultEvent::RankDeath:
      fault_dead_.add(count);
      break;
  }
}

}  // namespace dlb
