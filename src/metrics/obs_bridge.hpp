// Bridges the figure-oriented Recorder hooks into the operational
// metrics registry (src/obs).
//
// Anything that already speaks Recorder — the sequential System, the
// ThreadedSystem robustness counters, the fault benches — can fan into a
// MetricsRecorder (e.g. via MultiRecorder) and its events land as named
// counters in a MetricsRegistry next to the phase-profiling histograms,
// giving the fault counters the time dimension and export path they
// lacked.
#pragma once

#include "metrics/recorder.hpp"
#include "obs/metrics.hpp"

namespace dlb {

/// Recorder that forwards event hooks into registry counters:
///   recorder.balance_ops / .packets_moved / .migrations
///   recorder.borrow.{total,remote,fail,decrease_sim}
///   fault.{timeouts,aborted_ops,lost_packets,ranks_dead}
/// Counter references are resolved once at construction; the hooks are
/// then lock-free.
class MetricsRecorder final : public Recorder {
 public:
  explicit MetricsRecorder(obs::MetricsRegistry& registry);

  void on_balance_op(std::uint32_t initiator, std::size_t partners,
                     std::uint64_t packets_moved) override;
  void on_migration(std::uint32_t from, std::uint32_t to,
                    std::uint64_t count) override;
  void on_borrow_event(BorrowEvent event) override;
  void on_fault(FaultEvent event, std::uint64_t count) override;

 private:
  obs::Counter& balance_ops_;
  obs::Counter& packets_moved_;
  obs::Counter& migrations_;
  obs::Counter& borrow_total_;
  obs::Counter& borrow_remote_;
  obs::Counter& borrow_fail_;
  obs::Counter& decrease_sim_;
  obs::Counter& fault_timeouts_;
  obs::Counter& fault_aborted_;
  obs::Counter& fault_lost_;
  obs::Counter& fault_dead_;
};

}  // namespace dlb
