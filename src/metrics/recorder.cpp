#include "metrics/recorder.hpp"

#include "support/check.hpp"

namespace dlb {

void BorrowCounters::bump(BorrowEvent event) {
  switch (event) {
    case BorrowEvent::TotalBorrow: ++total_borrow; break;
    case BorrowEvent::RemoteBorrow: ++remote_borrow; break;
    case BorrowEvent::BorrowFail: ++borrow_fail; break;
    case BorrowEvent::DecreaseSim: ++decrease_sim; break;
  }
}

BorrowCounters& BorrowCounters::operator+=(const BorrowCounters& other) {
  total_borrow += other.total_borrow;
  remote_borrow += other.remote_borrow;
  borrow_fail += other.borrow_fail;
  decrease_sim += other.decrease_sim;
  return *this;
}

void FaultCounters::bump(FaultEvent event, std::uint64_t count) {
  switch (event) {
    case FaultEvent::Timeout: timeouts += count; break;
    case FaultEvent::AbortedOp: aborted_ops += count; break;
    case FaultEvent::LostPacket: lost_packets += count; break;
    case FaultEvent::RankDeath: ranks_dead += count; break;
  }
}

FaultCounters& FaultCounters::operator+=(const FaultCounters& other) {
  timeouts += other.timeouts;
  aborted_ops += other.aborted_ops;
  lost_packets += other.lost_packets;
  ranks_dead += other.ranks_dead;
  return *this;
}

void MultiRecorder::attach(Recorder* recorder) {
  DLB_REQUIRE(recorder != nullptr, "cannot attach a null recorder");
  recorders_.push_back(recorder);
}

void MultiRecorder::begin_run(std::uint32_t run) {
  for (Recorder* r : recorders_) r->begin_run(run);
}

void MultiRecorder::end_run() {
  for (Recorder* r : recorders_) r->end_run();
}

void MultiRecorder::on_loads(std::uint32_t t,
                             const std::vector<std::int64_t>& loads) {
  for (Recorder* r : recorders_) r->on_loads(t, loads);
}

void MultiRecorder::on_balance_op(std::uint32_t initiator,
                                  std::size_t partners,
                                  std::uint64_t packets_moved) {
  for (Recorder* r : recorders_) r->on_balance_op(initiator, partners,
                                                  packets_moved);
}

void MultiRecorder::on_migration(std::uint32_t from, std::uint32_t to,
                                 std::uint64_t count) {
  for (Recorder* r : recorders_) r->on_migration(from, to, count);
}

void MultiRecorder::on_borrow_event(BorrowEvent event) {
  for (Recorder* r : recorders_) r->on_borrow_event(event);
}

void MultiRecorder::on_fault(FaultEvent event, std::uint64_t count) {
  for (Recorder* r : recorders_) r->on_fault(event, count);
}

void FaultCounterRecorder::begin_run(std::uint32_t run) { (void)run; }

void FaultCounterRecorder::end_run() { ++runs_; }

void FaultCounterRecorder::on_fault(FaultEvent event, std::uint64_t count) {
  totals_.bump(event, count);
}

void FaultCounterRecorder::merge(const FaultCounterRecorder& other) {
  totals_ += other.totals_;
  runs_ += other.runs_;
}

LoadSeriesRecorder::LoadSeriesRecorder(std::uint32_t steps)
    : series_(steps) {}

void LoadSeriesRecorder::on_loads(std::uint32_t t,
                                  const std::vector<std::int64_t>& loads) {
  if (t >= series_.steps()) return;
  for (std::int64_t load : loads)
    series_.add(t, static_cast<double>(load));
}

SnapshotRecorder::SnapshotRecorder(std::uint32_t processors,
                                   std::vector<std::uint32_t> snapshot_times)
    : times_(std::move(snapshot_times)),
      processors_(processors),
      cells_(times_.size() * processors) {
  DLB_REQUIRE(processors >= 1, "snapshot recorder needs processors");
  DLB_REQUIRE(!times_.empty(), "snapshot recorder needs snapshot times");
}

void SnapshotRecorder::on_loads(std::uint32_t t,
                                const std::vector<std::int64_t>& loads) {
  DLB_REQUIRE(loads.size() == processors_, "load vector size mismatch");
  for (std::size_t s = 0; s < times_.size(); ++s) {
    if (times_[s] != t) continue;
    for (std::uint32_t p = 0; p < processors_; ++p) {
      cells_[s * processors_ + p].add(static_cast<double>(loads[p]));
    }
  }
}

void SnapshotRecorder::merge(const SnapshotRecorder& other) {
  DLB_REQUIRE(times_ == other.times_ && processors_ == other.processors_,
              "cannot merge snapshot recorders with different shapes");
  for (std::size_t i = 0; i < cells_.size(); ++i)
    cells_[i].merge(other.cells_[i]);
}

const RunningMoments& SnapshotRecorder::at(std::size_t snapshot,
                                           std::uint32_t processor) const {
  DLB_REQUIRE(snapshot < times_.size(), "snapshot index out of range");
  DLB_REQUIRE(processor < processors_, "processor id out of range");
  return cells_[snapshot * processors_ + processor];
}

void BorrowCounterRecorder::begin_run(std::uint32_t run) {
  (void)run;
  DLB_REQUIRE(!in_run_, "begin_run called twice without end_run");
  current_ = BorrowCounters{};
  in_run_ = true;
}

void BorrowCounterRecorder::end_run() {
  DLB_REQUIRE(in_run_, "end_run without begin_run");
  totals_ += current_;
  ++runs_;
  in_run_ = false;
}

void BorrowCounterRecorder::on_borrow_event(BorrowEvent event) {
  current_.bump(event);
}

namespace {
double per_run(std::uint64_t total, std::uint32_t runs) {
  return runs == 0 ? 0.0
                   : static_cast<double>(total) / static_cast<double>(runs);
}
}  // namespace

double BorrowCounterRecorder::avg_total_borrow() const {
  return per_run(totals_.total_borrow, runs_);
}
double BorrowCounterRecorder::avg_remote_borrow() const {
  return per_run(totals_.remote_borrow, runs_);
}
double BorrowCounterRecorder::avg_borrow_fail() const {
  return per_run(totals_.borrow_fail, runs_);
}
double BorrowCounterRecorder::avg_decrease_sim() const {
  return per_run(totals_.decrease_sim, runs_);
}

void BorrowCounterRecorder::merge(const BorrowCounterRecorder& other) {
  DLB_REQUIRE(!in_run_ && !other.in_run_,
              "cannot merge recorders mid-run");
  totals_ += other.totals_;
  runs_ += other.runs_;
}

void ActivityRecorder::merge(const ActivityRecorder& other) {
  runs_ += other.runs_;
  total_ops_ += other.total_ops_;
  total_packets_ += other.total_packets_;
}

void ActivityRecorder::begin_run(std::uint32_t run) { (void)run; }

void ActivityRecorder::on_balance_op(std::uint32_t initiator,
                                     std::size_t partners,
                                     std::uint64_t packets_moved) {
  (void)initiator;
  (void)partners;
  ++total_ops_;
  total_packets_ += packets_moved;
}

void ActivityRecorder::end_run() { ++runs_; }

double ActivityRecorder::avg_operations_per_run() const {
  return runs_ == 0 ? 0.0
                    : static_cast<double>(total_ops_) /
                          static_cast<double>(runs_);
}

double ActivityRecorder::avg_packets_moved_per_run() const {
  return runs_ == 0 ? 0.0
                    : static_cast<double>(total_packets_) /
                          static_cast<double>(runs_);
}

}  // namespace dlb
