#include "metrics/imbalance.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"
#include "support/stats.hpp"

namespace dlb {

ImbalanceReport measure_imbalance(const std::vector<std::int64_t>& loads) {
  DLB_REQUIRE(!loads.empty(), "imbalance of an empty load vector");
  RunningMoments rm;
  for (std::int64_t load : loads) rm.add(static_cast<double>(load));
  ImbalanceReport report;
  report.min_load = rm.min();
  report.max_load = rm.max();
  report.avg_load = rm.mean();
  report.max_over_avg = rm.mean() > 0.0 ? rm.max() / rm.mean() : 0.0;
  report.max_over_min = rm.max() / std::max(rm.min(), 1.0);
  report.cov = rm.variation_density();
  report.max_deviation = rm.max() - rm.mean();
  return report;
}

}  // namespace dlb
