#include "metrics/latency.hpp"

#include "support/check.hpp"

namespace dlb {

void LatencyTracker::on_generate(std::uint32_t t) {
  DLB_REQUIRE(queue_.empty() || queue_.back().step <= t,
              "latency tracker: arrival steps must be non-decreasing");
  if (!queue_.empty() && queue_.back().step == t) {
    ++queue_.back().count;
  } else {
    queue_.push_back(Cohort{t, 1});
  }
  ++arrived_;
}

void LatencyTracker::on_consume(std::uint32_t t) {
  DLB_REQUIRE(!queue_.empty(),
              "latency tracker: consume without outstanding arrival");
  Cohort& oldest = queue_.front();
  DLB_REQUIRE(oldest.step <= t,
              "latency tracker: consume before the packet arrived");
  hist_.record(t - oldest.step);
  ++served_;
  if (--oldest.count == 0) queue_.pop_front();
}

void LatencyTracker::reset() {
  queue_.clear();
  arrived_ = 0;
  served_ = 0;
  hist_.reset();
}

}  // namespace dlb
