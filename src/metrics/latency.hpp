// Per-packet queueing-latency accounting on the virtual (step) clock.
//
// The serving scenario reports tail latency next to the imbalance
// metrics: every generated packet is stamped with its arrival step, and
// every successful consume drains the oldest outstanding stamp — the
// system-wide FIFO service discipline.  The recorded latency is
// (consume step - arrival step) in steps, fed into an obs::Histogram
// for p50/p99/p999.
//
// Semantics: the tracker sees the balancer as a black box.  Packets are
// indistinguishable, so it cannot attribute a specific consume to a
// specific packet; charging the oldest outstanding arrival measures the
// best-case FIFO queueing delay *given the consume completions the
// policy achieved*.  Policies differ through exactly one channel — when
// their consume attempts succeed: a balancer that strands backlog on
// hot processors fails the cold processors' consume attempts, the
// backlog ages, and the tail percentiles grow.  Migration itself is
// charged zero latency (consistent with the paper's constant-time
// operation model); message costs are reported separately by the
// LoadBalancer counters.
#pragma once

#include <cstdint>
#include <deque>

#include "obs/metrics.hpp"

namespace dlb {

class LatencyTracker {
 public:
  /// A packet arrived at step t.  Steps must be non-decreasing across
  /// calls (the virtual clock only moves forward).
  void on_generate(std::uint32_t t);

  /// A packet was served at step t: drains the oldest outstanding
  /// arrival and records (t - arrival).  Requires pending() > 0 —
  /// guaranteed when the caller only reports *successful* consumes,
  /// since the balancer cannot serve packets that never arrived.
  void on_consume(std::uint32_t t);

  /// Packets arrived / served so far; pending = arrived - served.
  std::uint64_t arrived() const { return arrived_; }
  std::uint64_t served() const { return served_; }
  std::uint64_t pending() const { return arrived_ - served_; }

  /// Queueing-latency distribution in steps over the served packets.
  const obs::Histogram& histogram() const { return hist_; }
  double percentile(double q) const { return hist_.percentile(q); }
  double mean() const { return hist_.mean(); }

  /// Forgets all arrivals, services, and the distribution — a fresh
  /// measurement (the probe calls this at the start of every run).
  void reset();

 private:
  // Run-length encoded arrival queue: arrivals come in step order, so
  // one (step, count) pair per step with arrivals suffices — the memory
  // is O(distinct backlogged steps), not O(backlogged packets).
  struct Cohort {
    std::uint32_t step;
    std::uint64_t count;
  };
  std::deque<Cohort> queue_;
  std::uint64_t arrived_ = 0;
  std::uint64_t served_ = 0;
  obs::Histogram hist_;
};

}  // namespace dlb
