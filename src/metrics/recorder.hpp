// Measurement hooks and aggregators.
//
// The simulators are instrumented through a Recorder interface so every
// figure/table of the paper is an ordinary observer: Figures 7/8 need the
// per-step average plus the most extreme per-processor loads ever seen
// across runs; Figures 9/10 need per-processor statistics at snapshot
// times; Table 1 counts borrow-protocol events; the §6 benches read the
// cost ledger.  Keeping measurement out of the algorithm keeps the core
// honest — the balancer cannot special-case "when observed".
#pragma once

#include <cstdint>
#include <vector>

#include "support/stats.hpp"

namespace dlb {

/// Borrow-protocol events (Table 1 of the paper).
enum class BorrowEvent {
  TotalBorrow,   // a packet was borrowed from some load class
  RemoteBorrow,  // borrowed markers settled against real packets of the
                 // generating processor (the "remote borrow" exchange)
  BorrowFail,    // the generating processor itself had no packets; the
                 // §4 resolution algorithm ran
  DecreaseSim,   // a simulated workload decrease was initiated
};

/// Robustness events from the fault-tolerant runtimes (mp/fault.hpp,
/// runtime/threaded_system.hpp): protocol waits that expired, balance
/// transactions that rolled back, messages/payloads lost in flight,
/// and ranks that crashed.
enum class FaultEvent {
  Timeout,     // a deadline-based protocol wait expired
  AbortedOp,   // a balance transaction rolled back (missing Assign)
  LostPacket,  // a message or its payload was lost in flight
  RankDeath,   // a rank crashed per the fault schedule
};

/// Aggregated robustness counters (see FaultCounterRecorder).
struct FaultCounters {
  std::uint64_t timeouts = 0;
  std::uint64_t aborted_ops = 0;
  std::uint64_t lost_packets = 0;
  std::uint64_t ranks_dead = 0;

  void bump(FaultEvent event, std::uint64_t count);
  FaultCounters& operator+=(const FaultCounters& other);
};

/// Table 1 row: event counts, reported as per-run averages.
struct BorrowCounters {
  std::uint64_t total_borrow = 0;
  std::uint64_t remote_borrow = 0;
  std::uint64_t borrow_fail = 0;
  std::uint64_t decrease_sim = 0;

  void bump(BorrowEvent event);
  BorrowCounters& operator+=(const BorrowCounters& other);
};

/// Observer interface; all hooks default to no-ops.
class Recorder {
 public:
  virtual ~Recorder() = default;

  /// A new independent run (with a fresh seed) begins.
  virtual void begin_run(std::uint32_t run) { (void)run; }
  virtual void end_run() {}

  /// Called once per global step with the real load of every processor.
  /// `loads` may reference a buffer the caller reuses across steps:
  /// observe or copy during the call, never retain the reference.
  virtual void on_loads(std::uint32_t t,
                        const std::vector<std::int64_t>& loads) {
    (void)t;
    (void)loads;
  }

  /// A balancing operation completed.
  virtual void on_balance_op(std::uint32_t initiator, std::size_t partners,
                             std::uint64_t packets_moved) {
    (void)initiator;
    (void)partners;
    (void)packets_moved;
  }

  /// `count` packets migrated from processor `from` to processor `to`
  /// (fired for every flow inside a balancing operation and for remote
  /// borrow exchanges).  Payload-carrying wrappers (core/item_system.hpp)
  /// use this to move the actual objects.
  virtual void on_migration(std::uint32_t from, std::uint32_t to,
                            std::uint64_t count) {
    (void)from;
    (void)to;
    (void)count;
  }

  virtual void on_borrow_event(BorrowEvent event) { (void)event; }

  /// `count` robustness events of kind `event` occurred (the threaded
  /// runtime reports aggregate counts once per run).
  virtual void on_fault(FaultEvent event, std::uint64_t count) {
    (void)event;
    (void)count;
  }
};

/// Fans hooks out to several recorders (non-owning).
class MultiRecorder final : public Recorder {
 public:
  void attach(Recorder* recorder);

  void begin_run(std::uint32_t run) override;
  void end_run() override;
  void on_loads(std::uint32_t t,
                const std::vector<std::int64_t>& loads) override;
  void on_balance_op(std::uint32_t initiator, std::size_t partners,
                     std::uint64_t packets_moved) override;
  void on_migration(std::uint32_t from, std::uint32_t to,
                    std::uint64_t count) override;
  void on_borrow_event(BorrowEvent event) override;
  void on_fault(FaultEvent event, std::uint64_t count) override;

 private:
  std::vector<Recorder*> recorders_;
};

/// Figures 7/8: per-step statistics over (processor × run) observations.
class LoadSeriesRecorder final : public Recorder {
 public:
  explicit LoadSeriesRecorder(std::uint32_t steps);

  void on_loads(std::uint32_t t,
                const std::vector<std::int64_t>& loads) override;

  const SeriesAggregator& series() const { return series_; }

  /// Merges another recorder over the same horizon (parallel runner).
  void merge(const LoadSeriesRecorder& other) {
    series_.merge(other.series_);
  }

 private:
  SeriesAggregator series_;
};

/// Figures 9/10: per-processor statistics at fixed snapshot times.
class SnapshotRecorder final : public Recorder {
 public:
  SnapshotRecorder(std::uint32_t processors,
                   std::vector<std::uint32_t> snapshot_times);

  void on_loads(std::uint32_t t,
                const std::vector<std::int64_t>& loads) override;

  const std::vector<std::uint32_t>& snapshot_times() const { return times_; }
  /// Statistics of processor p at snapshot index s (across runs).
  const RunningMoments& at(std::size_t snapshot, std::uint32_t processor) const;

  /// Merges another recorder with identical shape (parallel runner).
  void merge(const SnapshotRecorder& other);

 private:
  std::vector<std::uint32_t> times_;
  std::uint32_t processors_;
  // times_.size() x processors_ moment cells
  std::vector<RunningMoments> cells_;
};

/// Table 1: accumulates borrow counters, reports per-run averages.
class BorrowCounterRecorder final : public Recorder {
 public:
  void begin_run(std::uint32_t run) override;
  void end_run() override;
  void on_borrow_event(BorrowEvent event) override;

  std::uint32_t runs() const { return runs_; }
  const BorrowCounters& totals() const { return totals_; }
  double avg_total_borrow() const;
  double avg_remote_borrow() const;
  double avg_borrow_fail() const;
  double avg_decrease_sim() const;

  /// Merges completed runs of another recorder (parallel runner).
  void merge(const BorrowCounterRecorder& other);

 private:
  std::uint32_t runs_ = 0;
  BorrowCounters current_;
  BorrowCounters totals_;
  bool in_run_ = false;
};

/// Robustness counters for the fault benches and the ThreadedSystem
/// metrics surface: accumulates FaultEvent counts across runs.
class FaultCounterRecorder final : public Recorder {
 public:
  void begin_run(std::uint32_t run) override;
  void end_run() override;
  void on_fault(FaultEvent event, std::uint64_t count) override;

  std::uint32_t runs() const { return runs_; }
  const FaultCounters& totals() const { return totals_; }

  /// Merges completed runs of another recorder (parallel runner).
  void merge(const FaultCounterRecorder& other);

 private:
  std::uint32_t runs_ = 0;
  FaultCounters totals_;
};

/// Per-step balancing-activity counts (for the §6 cost benches).
class ActivityRecorder final : public Recorder {
 public:
  void begin_run(std::uint32_t run) override;
  void on_balance_op(std::uint32_t initiator, std::size_t partners,
                     std::uint64_t packets_moved) override;
  void end_run() override;

  double avg_operations_per_run() const;
  double avg_packets_moved_per_run() const;

  /// Merges completed runs of another recorder (parallel runner).
  void merge(const ActivityRecorder& other);
  std::uint64_t total_operations() const { return total_ops_; }
  std::uint64_t total_packets_moved() const { return total_packets_; }

 private:
  std::uint32_t runs_ = 0;
  std::uint64_t total_ops_ = 0;
  std::uint64_t total_packets_ = 0;
};

}  // namespace dlb
