// RAII profiling hooks: Stopwatch for benches, ScopedTimer for feeding
// histograms and trace spans.
//
// The bench binaries used to hand-roll std::chrono arithmetic at every
// measurement site; Stopwatch centralizes that.  ScopedTimer is the
// instrumentation form: on destruction it records the elapsed
// nanoseconds into an optional Histogram and an optional TraceBuffer
// span.  With both sinks null (or the trace disabled) its constructor
// skips the clock read entirely, so an always-present timer costs two
// null checks when observability is off.
#pragma once

#include <chrono>
#include <cstdint>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dlb::obs {

/// Monotonic elapsed-time reader.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  void reset() { start_ = std::chrono::steady_clock::now(); }

  std::uint64_t elapsed_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }
  double elapsed_us() const {
    return static_cast<double>(elapsed_ns()) / 1000.0;
  }
  double elapsed_ms() const {
    return static_cast<double>(elapsed_ns()) / 1000000.0;
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Times the enclosing scope into a histogram (ns) and/or a trace span.
/// `name`/`cat` must be string literals (see TraceEvent).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* hist)
      : hist_(hist), armed_(hist != nullptr) {
    if (armed_) start_ns_ = clock_ns();
  }

  ScopedTimer(Histogram* hist, TraceBuffer* trace, const char* name,
              const char* cat, std::uint32_t tid, std::uint64_t arg = 0)
      : hist_(hist),
        trace_(trace != nullptr && trace->enabled() ? trace : nullptr),
        name_(name),
        cat_(cat),
        tid_(tid),
        arg_(arg),
        armed_(hist != nullptr || trace_ != nullptr) {
    // The trace span needs the buffer-epoch clock; the histogram only
    // needs a difference, so one timebase serves both.
    if (armed_)
      start_ns_ = trace_ != nullptr ? trace_->now_ns() : clock_ns();
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (!armed_) return;
    const std::uint64_t end =
        trace_ != nullptr ? trace_->now_ns() : clock_ns();
    const std::uint64_t dur = end > start_ns_ ? end - start_ns_ : 0;
    if (hist_ != nullptr) hist_->record(dur);
    if (trace_ != nullptr)
      trace_->record(name_, cat_, start_ns_, dur, tid_, arg_);
  }

 private:
  static std::uint64_t clock_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  Histogram* hist_ = nullptr;
  TraceBuffer* trace_ = nullptr;
  const char* name_ = "";
  const char* cat_ = "";
  std::uint32_t tid_ = 0;
  std::uint64_t arg_ = 0;
  bool armed_ = false;
  std::uint64_t start_ns_ = 0;
};

}  // namespace dlb::obs
