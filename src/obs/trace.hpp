// Structured trace buffer with Chrome trace-event export.
//
// A fixed-capacity buffer of timestamped spans (and zero-duration
// instants) with thread/shard attribution.  Cost model:
//   - detached (no TraceBuffer wired in): one pointer-null check;
//   - attached but disabled: one relaxed atomic load;
//   - enabled: two steady_clock reads per span plus one wait-free slot
//     claim (fetch_add) and a plain write into a pre-allocated slot.
// Slots are claimed by an atomic ticket; when the buffer fills, further
// events are dropped and counted (the capacity bounds memory, nothing
// blocks, and no slot is ever written twice — recording threads never
// race on a slot, so the buffer is safe to export after the run joins
// its workers).
//
// Export is the Chrome trace-event JSON array format: load the file in
// Perfetto (ui.perfetto.dev) or chrome://tracing and a sharded
// run_parallel renders as one named track per shard plus the serial
// coordinator track.  Timestamps are microseconds from the buffer's
// epoch (construction or the last clear()).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace dlb::obs {

/// Event shape.  Span/Instant cover the single-process cases (and
/// record() keeps inferring them from dur_ns, so existing callers are
/// untouched); FlowStart/FlowEnd are the cross-process arrows — a
/// started flow binds to the finishing event carrying the same flow id,
/// which Perfetto renders as an arc between the two tracks.
enum class TracePhase : std::uint8_t {
  Span = 0,
  Instant = 1,
  FlowStart = 2,
  FlowEnd = 3,
};

/// One recorded event.  `name` and `cat` must be string literals (or
/// otherwise outlive the buffer): recording must not allocate.
struct TraceEvent {
  const char* name = "";
  const char* cat = "";
  std::uint64_t ts_ns = 0;   // span start, ns since the buffer epoch
  std::uint64_t dur_ns = 0;  // 0 => instant event (Span/Instant only)
  std::uint32_t tid = 0;     // track id (shard / rank / 0 = main)
  std::uint64_t arg = 0;     // free-form payload (step, txn id, tag, ...)
  TracePhase phase = TracePhase::Instant;
  std::uint64_t flow_id = 0;  // binds FlowStart to FlowEnd
};

class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity = 1u << 16);

  /// Recording gate.  Disabled buffers drop record() calls after one
  /// relaxed load; enable() re-arms without clearing.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Nanoseconds since the buffer epoch (monotonic).
  std::uint64_t now_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  /// Records a span [ts_ns, ts_ns + dur_ns); dur_ns == 0 records an
  /// instant.  Wait-free; drops (and counts) when full or disabled.
  void record(const char* name, const char* cat, std::uint64_t ts_ns,
              std::uint64_t dur_ns, std::uint32_t tid,
              std::uint64_t arg = 0) {
    const TracePhase phase =
        dur_ns == 0 ? TracePhase::Instant : TracePhase::Span;
    record_event(TraceEvent{name, cat, ts_ns, dur_ns, tid, arg, phase, 0});
  }

  /// Records a flow endpoint: `start` marks the producing side (a send),
  /// `!start` the consuming side (the matching recv).  Both halves must
  /// carry the same `flow_id` (and the same name/cat — Chrome binds
  /// flows by (cat, id, name)).  Wait-free like record().
  void record_flow(const char* name, const char* cat, std::uint64_t ts_ns,
                   std::uint32_t tid, std::uint64_t flow_id, bool start,
                   std::uint64_t arg = 0) {
    record_event(TraceEvent{name, cat, ts_ns, 0, tid, arg,
                            start ? TracePhase::FlowStart
                                  : TracePhase::FlowEnd,
                            flow_id});
  }

  /// Convenience: a complete span ending now.
  void span_end(const char* name, const char* cat, std::uint64_t start_ns,
                std::uint32_t tid, std::uint64_t arg = 0) {
    const std::uint64_t end = now_ns();
    record(name, cat, start_ns, end > start_ns ? end - start_ns : 0, tid,
           arg);
  }

  /// Instant marker at the current time.
  void instant(const char* name, const char* cat, std::uint32_t tid,
               std::uint64_t arg = 0) {
    record(name, cat, now_ns(), 0, tid, arg);
  }

  /// Labels a track in the exported trace (Perfetto shows the name).
  void set_thread_name(std::uint32_t tid, const std::string& name);

  /// Moves the epoch back by `delta_ns`, so every later now_ns() reads
  /// `delta_ns` higher (negative shifts read lower).  Tests inject an
  /// artificial clock offset this way to exercise the cross-process
  /// offset estimator; production code never calls it.
  void shift_epoch(std::int64_t delta_ns) {
    epoch_ -= std::chrono::nanoseconds(delta_ns);
  }

  std::size_t capacity() const { return ring_.size(); }
  std::size_t size() const;
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Recorded events in claim order.  Call only after recording threads
  /// have been joined (or with recording disabled).
  std::vector<TraceEvent> events() const;

  /// Empties the buffer and restarts the epoch.
  void clear();

  /// Chrome trace-event JSON ({"traceEvents": [...]}), one event per
  /// line.  Same quiescence requirement as events().
  void write_chrome_json(std::ostream& os,
                         const std::string& process_name = "dlb") const;

 private:
  void record_event(const TraceEvent& e) {
    if (!enabled()) return;
    const std::size_t slot = next_.fetch_add(1, std::memory_order_relaxed);
    if (slot >= ring_.size()) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    ring_[slot] = e;
  }

  std::vector<TraceEvent> ring_;
  std::atomic<std::size_t> next_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<bool> enabled_{true};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex names_mutex_;
  std::map<std::uint32_t, std::string> thread_names_;
};

}  // namespace dlb::obs
