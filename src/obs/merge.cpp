#include "obs/merge.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "obs/metrics.hpp"  // json_escape
#include "support/check.hpp"

namespace dlb::obs {

namespace {

bool whitespace_free(const char* s) {
  for (; *s; ++s)
    if (*s == ' ' || *s == '\t' || *s == '\n' || *s == '\r') return false;
  return true;
}

}  // namespace

void write_rank_trace(std::ostream& os, const TraceBuffer& buf, int rank,
                      std::int64_t clock_offset_ns) {
  os << "dlb-rank-trace 1 " << rank << ' ' << clock_offset_ns << ' '
     << buf.dropped() << '\n';
  for (const TraceEvent& e : buf.events()) {
    DLB_REQUIRE(whitespace_free(e.name) && whitespace_free(e.cat),
                "rank trace: event names/categories must be whitespace-free");
    os << "e " << static_cast<int>(e.phase) << ' ' << e.ts_ns << ' '
       << e.dur_ns << ' ' << e.tid << ' ' << e.flow_id << ' ' << e.arg << ' '
       << (*e.name ? e.name : "-") << ' ' << (*e.cat ? e.cat : "-") << '\n';
  }
}

void TraceMerger::add_rank_file(const std::string& path) {
  std::ifstream is(path);
  DLB_REQUIRE(is.good(), "trace merge: cannot open " + path);
  add_rank(is);
}

void TraceMerger::add_rank(std::istream& is) {
  std::string magic;
  int version = 0;
  int rank = -1;
  std::int64_t offset = 0;
  std::uint64_t dropped = 0;
  is >> magic >> version >> rank >> offset >> dropped;
  DLB_REQUIRE(!is.fail() && magic == "dlb-rank-trace" && version == 1 &&
                  rank >= 0,
              "trace merge: bad rank-trace header");
  DLB_REQUIRE(offsets_.count(rank) == 0,
              "trace merge: duplicate rank " + std::to_string(rank));
  offsets_[rank] = offset;
  dropped_[rank] = dropped;
  std::string line;
  std::getline(is, line);  // rest of the header line
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    char tag = 0;
    int phase = 0;
    std::uint64_t ts = 0;
    Raw r;
    ls >> tag >> phase >> ts >> r.dur_ns >> r.tid >> r.flow_id >> r.arg >>
        r.name >> r.cat;
    DLB_REQUIRE(!ls.fail() && tag == 'e' && phase >= 0 && phase <= 3,
                "trace merge: bad event record: " + line);
    if (r.name == "-") r.name.clear();
    if (r.cat == "-") r.cat.clear();
    r.phase = static_cast<TracePhase>(phase);
    r.ts_ns = static_cast<std::int64_t>(ts) + offset;
    r.rank = rank;
    raw_.push_back(std::move(r));
  }
}

std::int64_t TraceMerger::offset_ns(int rank) const {
  auto it = offsets_.find(rank);
  DLB_REQUIRE(it != offsets_.end(),
              "trace merge: no such rank " + std::to_string(rank));
  return it->second;
}

std::uint64_t TraceMerger::dropped(int rank) const {
  auto it = dropped_.find(rank);
  DLB_REQUIRE(it != dropped_.end(),
              "trace merge: no such rank " + std::to_string(rank));
  return it->second;
}

std::int64_t TraceMerger::base_ns() const {
  std::int64_t base = std::numeric_limits<std::int64_t>::max();
  for (const Raw& r : raw_) base = std::min(base, r.ts_ns);
  return raw_.empty() ? 0 : base;
}

std::vector<MergedEvent> TraceMerger::events() const {
  const std::int64_t base = base_ns();
  std::vector<MergedEvent> out;
  out.reserve(raw_.size());
  for (const Raw& r : raw_) {
    MergedEvent e;
    e.name = r.name;
    e.cat = r.cat;
    e.ts_ns = static_cast<std::uint64_t>(r.ts_ns - base);
    e.dur_ns = r.dur_ns;
    e.rank = r.rank;
    e.tid = r.tid;
    e.phase = r.phase;
    e.flow_id = r.flow_id;
    e.arg = r.arg;
    out.push_back(std::move(e));
  }
  std::sort(out.begin(), out.end(),
            [](const MergedEvent& a, const MergedEvent& b) {
              return a.ts_ns < b.ts_ns;
            });
  return out;
}

std::vector<FlowPair> TraceMerger::matched_flows() const {
  const std::int64_t base = base_ns();
  struct Half {
    int rank = -1;
    std::int64_t ts = 0;
    std::uint64_t arg = 0;
    bool seen = false;
  };
  std::map<std::uint64_t, std::pair<Half, Half>> halves;  // id -> (s, f)
  for (const Raw& r : raw_) {
    if (r.phase != TracePhase::FlowStart && r.phase != TracePhase::FlowEnd)
      continue;
    auto& [s, f] = halves[r.flow_id];
    Half& h = r.phase == TracePhase::FlowStart ? s : f;
    h.rank = r.rank;
    h.ts = r.ts_ns;
    h.arg = r.arg;
    h.seen = true;
  }
  std::vector<FlowPair> out;
  for (const auto& [id, sf] : halves) {
    const auto& [s, f] = sf;
    if (!s.seen || !f.seen) continue;
    FlowPair p;
    p.id = id;
    p.src_rank = s.rank;
    p.dst_rank = f.rank;
    p.send_ts_ns = static_cast<std::uint64_t>(s.ts - base);
    p.recv_ts_ns = static_cast<std::uint64_t>(f.ts - base);
    p.arg = s.arg;
    out.push_back(p);
  }
  return out;
}

void TraceMerger::write_chrome_json(std::ostream& os) const {
  os << "{\"traceEvents\": [\n";
  bool first = true;
  const auto comma = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  // Every rank that contributed a file gets a process track; detector
  // verdicts can indict a rank whose own file never made it out (e.g.
  // killed before its first flush), so collect those pids too.
  std::map<int, bool> pids;  // rank -> has own file
  for (const auto& [rank, off] : offsets_) pids[rank] = true;
  for (const Raw& r : raw_)
    if (r.cat == "detector") pids.emplace(static_cast<int>(r.arg), false);
  for (const auto& [rank, own] : pids) {
    comma();
    os << R"({"name": "process_name", "ph": "M", "pid": )" << rank
       << R"(, "tid": 0, "args": {"name": "rank )" << rank << "\"}}";
    comma();
    os << R"({"name": "process_sort_index", "ph": "M", "pid": )" << rank
       << R"(, "tid": 0, "args": {"sort_index": )" << rank << "}}";
    if (own) {
      comma();
      os << R"({"name": "process_labels", "ph": "M", "pid": )" << rank
         << R"(, "tid": 0, "args": {"labels": "clock_offset_ns=)"
         << offsets_.at(rank) << "\"}}";
    }
  }
  for (const MergedEvent& e : events()) {
    comma();
    // Detector verdicts are drawn on the indicted rank's track; the
    // noticing rank is preserved in args.by.
    const bool detector = e.cat == "detector";
    const int pid = detector ? static_cast<int>(e.arg) : e.rank;
    const double ts = static_cast<double>(e.ts_ns) / 1000.0;
    os << "{\"name\": \"" << json_escape(e.name) << "\", \"cat\": \""
       << json_escape(e.cat) << "\", ";
    switch (e.phase) {
      case TracePhase::Instant:
        os << R"("ph": "i", "s": "p", )";
        break;
      case TracePhase::Span:
        os << "\"ph\": \"X\", \"dur\": "
           << static_cast<double>(e.dur_ns) / 1000.0 << ", ";
        break;
      case TracePhase::FlowStart:
        os << "\"ph\": \"s\", \"id\": " << e.flow_id << ", ";
        break;
      case TracePhase::FlowEnd:
        os << "\"ph\": \"f\", \"bp\": \"e\", \"id\": " << e.flow_id << ", ";
        break;
    }
    os << "\"ts\": " << ts << ", \"pid\": " << pid << ", \"tid\": " << e.tid
       << ", \"args\": {\"v\": " << e.arg;
    if (detector) os << ", \"by\": " << e.rank;
    os << "}}";
  }
  os << "\n]}\n";
}

}  // namespace dlb::obs
