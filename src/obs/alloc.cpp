// Counting replacements for the replaceable global allocation functions
// ([new.delete] — plain, array, nothrow, sized, and aligned forms), plus
// the publish helper.  See alloc.hpp for the contract.
//
// The replacements forward to malloc/posix_memalign/free and bump two
// thread-local counters on every successful allocation.  The counters
// are constinit trivially-initializable integers, so touching them from
// inside operator new is safe even during thread start-up and static
// initialization (no dynamic TLS constructor, no recursion into new).

#include "obs/alloc.hpp"

#include <cstdlib>
#include <new>
#include <string>

namespace {

struct ThreadCounters {
  std::uint64_t count;
  std::uint64_t bytes;
};

constinit thread_local ThreadCounters tls_counters{0, 0};

void* counted_alloc(std::size_t size) noexcept {
  void* p = std::malloc(size ? size : 1);
  if (p != nullptr) {
    ++tls_counters.count;
    tls_counters.bytes += size;
  }
  return p;
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) noexcept {
  if (align < sizeof(void*)) align = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, align, size ? size : 1) != 0) return nullptr;
  ++tls_counters.count;
  tls_counters.bytes += size;
  return p;
}

}  // namespace

void* operator new(std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

void* operator new[](std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = counted_aligned_alloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = counted_aligned_alloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace dlb::obs {

AllocCounts alloc_counts() {
  return {tls_counters.count, tls_counters.bytes};
}

void publish(MetricsRegistry& registry, const char* prefix,
             const AllocTally& tally) {
  const std::string p(prefix);
  registry.counter(p + ".alloc.count").add(tally.count);
  registry.counter(p + ".alloc.bytes").add(tally.bytes);
  registry.counter(p + ".alloc.dirty_steps").add(tally.dirty_steps);
  registry.gauge(p + ".alloc.warmup_end_step")
      .set(tally.last_dirty_step + 1);
}

}  // namespace dlb::obs
