#include "obs/metrics.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

#include "support/check.hpp"

namespace dlb::obs {

void Histogram::record(std::uint64_t value) {
  cells_[cell_of(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  // Monotone clamp via CAS; contention is negligible (extrema settle
  // after a few updates).
  std::uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

Histogram::State Histogram::state() const {
  State out;
  out.count = count();
  out.sum = sum();
  out.min = min();
  out.max = max();
  for (std::size_t i = 0; i < kCells; ++i) {
    const std::uint64_t n = cells_[i].load(std::memory_order_relaxed);
    if (n != 0) out.cells.emplace_back(i, n);
  }
  return out;
}

void Histogram::merge(const State& other) {
  if (other.count == 0) return;
  for (const auto& [cell, n] : other.cells) {
    DLB_REQUIRE(cell < kCells, "histogram merge: cell index out of range");
    cells_[cell].fetch_add(n, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count, std::memory_order_relaxed);
  sum_.fetch_add(other.sum, std::memory_order_relaxed);
  std::uint64_t seen = min_.load(std::memory_order_relaxed);
  while (other.min < seen &&
         !min_.compare_exchange_weak(seen, other.min,
                                     std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (other.max > seen &&
         !max_.compare_exchange_weak(seen, other.max,
                                     std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::min() const {
  return count() == 0 ? 0 : min_.load(std::memory_order_relaxed);
}

std::uint64_t Histogram::max() const {
  return max_.load(std::memory_order_relaxed);
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

double Histogram::percentile(double q) const {
  DLB_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  const auto counts = cells();
  std::uint64_t n = 0;
  for (std::uint64_t c : counts) n += c;
  if (n == 0) return 0.0;
  // Rank of the order statistic (nearest-rank, 1-based), then walk the
  // fine cells to the one containing it.
  const auto rank = static_cast<std::uint64_t>(
      std::max(1.0, std::min(static_cast<double>(n),
                             q * static_cast<double>(n) + 0.5)));
  std::uint64_t before = 0;
  std::size_t c = 0;
  for (; c < kCells; ++c) {
    if (before + counts[c] >= rank) break;
    before += counts[c];
  }
  if (c >= kCells) c = kCells - 1;
  // Linear interpolation across the cell's span, clamped to the
  // recorded extrema so single-cell distributions report sane edges.
  const double lo = cell_lo(c);
  const double hi = cell_hi(c);
  const double inside =
      counts[c] == 0
          ? 0.0
          : static_cast<double>(rank - before) / static_cast<double>(counts[c]);
  double v = lo + (hi - lo) * inside;
  v = std::min(v, static_cast<double>(max()));
  v = std::max(v, static_cast<double>(min()));
  return v;
}

std::array<std::uint64_t, Histogram::kBuckets> Histogram::buckets() const {
  std::array<std::uint64_t, kBuckets> out{};
  for (std::size_t i = 0; i < kCells; ++i)
    out[i / kSubBuckets] += cells_[i].load(std::memory_order_relaxed);
  return out;
}

std::array<std::uint64_t, Histogram::kCells> Histogram::cells() const {
  std::array<std::uint64_t, kCells> out{};
  for (std::size_t i = 0; i < kCells; ++i)
    out[i] = cells_[i].load(std::memory_order_relaxed);
  return out;
}

void Histogram::reset() {
  for (std::size_t i = 0; i < kCells; ++i)
    cells_[i].store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~std::uint64_t{0}, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

MetricsRegistry::Cell& MetricsRegistry::cell(const std::string& name,
                                             Kind kind) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = cells_.find(name);
  if (it == cells_.end()) {
    Cell c;
    c.kind = kind;
    switch (kind) {
      case Kind::Counter:
        c.counter = std::make_unique<Counter>();
        break;
      case Kind::Gauge:
        c.gauge = std::make_unique<Gauge>();
        break;
      case Kind::Histogram:
        c.histogram = std::make_unique<Histogram>();
        break;
    }
    it = cells_.emplace(name, std::move(c)).first;
  }
  DLB_REQUIRE(it->second.kind == kind,
              "metric re-registered with a different kind: " + name);
  return it->second;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  return *cell(name, Kind::Counter).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return *cell(name, Kind::Gauge).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  return *cell(name, Kind::Histogram).histogram;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  std::lock_guard<std::mutex> lock(mutex_);
  out.values.reserve(cells_.size());
  for (const auto& [name, c] : cells_) {
    MetricValue v;
    v.name = name;
    switch (c.kind) {
      case Kind::Counter:
        v.kind = MetricValue::Kind::Counter;
        v.value = static_cast<std::int64_t>(c.counter->value());
        break;
      case Kind::Gauge:
        v.kind = MetricValue::Kind::Gauge;
        v.value = c.gauge->value();
        break;
      case Kind::Histogram:
        v.kind = MetricValue::Kind::Histogram;
        v.count = c.histogram->count();
        v.total = c.histogram->sum();
        v.min = c.histogram->min();
        v.max = c.histogram->max();
        v.mean = c.histogram->mean();
        v.p50 = c.histogram->percentile(0.50);
        v.p90 = c.histogram->percentile(0.90);
        v.p99 = c.histogram->percentile(0.99);
        v.p999 = c.histogram->percentile(0.999);
        break;
    }
    out.values.push_back(std::move(v));
  }
  return out;
}

void MetricsRegistry::write_state(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mutex_);
  os << "dlb-metrics 1\n";
  for (const auto& [name, c] : cells_) {
    DLB_REQUIRE(name.find_first_of(" \t\n") == std::string::npos,
                "metric name must be whitespace-free for state dumps: " +
                    name);
    switch (c.kind) {
      case Kind::Counter:
        os << "c " << name << ' ' << c.counter->value() << '\n';
        break;
      case Kind::Gauge:
        os << "g " << name << ' ' << c.gauge->value() << '\n';
        break;
      case Kind::Histogram: {
        const Histogram::State s = c.histogram->state();
        os << "h " << name << ' ' << s.count << ' ' << s.sum << ' ' << s.min
           << ' ' << s.max << ' ' << s.cells.size();
        for (const auto& [cell, n] : s.cells) os << ' ' << cell << ' ' << n;
        os << '\n';
        break;
      }
    }
  }
}

void merge_state(std::istream& is, MetricsRegistry& into,
                 const std::string& prefix) {
  std::string header;
  std::getline(is, header);
  DLB_REQUIRE(header == "dlb-metrics 1",
              "metrics state dump: bad header: " + header);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string tag, name;
    ls >> tag >> name;
    DLB_REQUIRE(!name.empty(), "metrics state dump: bad record: " + line);
    const std::string full = prefix + name;
    if (tag == "c") {
      std::uint64_t v = 0;
      ls >> v;
      DLB_REQUIRE(!ls.fail(), "metrics state dump: bad counter: " + line);
      into.counter(full).add(v);
    } else if (tag == "g") {
      std::int64_t v = 0;
      ls >> v;
      DLB_REQUIRE(!ls.fail(), "metrics state dump: bad gauge: " + line);
      into.gauge(full).add(v);
    } else if (tag == "h") {
      Histogram::State s;
      std::size_t ncells = 0;
      ls >> s.count >> s.sum >> s.min >> s.max >> ncells;
      DLB_REQUIRE(!ls.fail() && ncells <= Histogram::kCells,
                  "metrics state dump: bad histogram: " + line);
      s.cells.reserve(ncells);
      for (std::size_t i = 0; i < ncells; ++i) {
        std::size_t cell = 0;
        std::uint64_t n = 0;
        ls >> cell >> n;
        DLB_REQUIRE(!ls.fail() && cell < Histogram::kCells,
                    "metrics state dump: bad histogram cell: " + line);
        s.cells.emplace_back(cell, n);
      }
      into.histogram(full).merge(s);
    } else {
      DLB_REQUIRE(false, "metrics state dump: unknown record: " + line);
    }
  }
}

const MetricValue* MetricsSnapshot::find(const std::string& name) const {
  for (const MetricValue& v : values)
    if (v.name == name) return &v;
  return nullptr;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(ch >> 4) & 0xf];
          out += hex[ch & 0xf];
        } else {
          out += ch;
        }
    }
  }
  return out;
}

namespace {

void write_group(std::ostream& os, const MetricsSnapshot& snap,
                 MetricValue::Kind kind) {
  bool first = true;
  for (const MetricValue& v : snap.values) {
    if (v.kind != kind) continue;
    if (!first) os << ", ";
    first = false;
    os << '"' << json_escape(v.name) << "\": ";
    if (kind == MetricValue::Kind::Histogram) {
      os << "{\"count\": " << v.count << ", \"sum\": " << v.total
         << ", \"min\": " << v.min << ", \"max\": " << v.max
         << ", \"mean\": " << v.mean << ", \"p50\": " << v.p50
         << ", \"p90\": " << v.p90 << ", \"p99\": " << v.p99
         << ", \"p999\": " << v.p999 << '}';
    } else {
      os << v.value;
    }
  }
}

}  // namespace

void MetricsSnapshot::write_json(std::ostream& os) const {
  os << "{\n  \"counters\": {";
  write_group(os, *this, MetricValue::Kind::Counter);
  os << "},\n  \"gauges\": {";
  write_group(os, *this, MetricValue::Kind::Gauge);
  os << "},\n  \"histograms\": {";
  write_group(os, *this, MetricValue::Kind::Histogram);
  os << "}\n}\n";
}

void MetricsSnapshot::write_csv(std::ostream& os) const {
  os << "name,kind,value,count,sum,min,max,mean,p50,p90,p99,p999\n";
  for (const MetricValue& v : values) {
    const char* kind = v.kind == MetricValue::Kind::Counter   ? "counter"
                       : v.kind == MetricValue::Kind::Gauge   ? "gauge"
                                                              : "histogram";
    os << v.name << ',' << kind << ',' << v.value << ',' << v.count << ','
       << v.total << ',' << v.min << ',' << v.max << ',' << v.mean << ','
       << v.p50 << ',' << v.p90 << ',' << v.p99 << ',' << v.p999 << '\n';
  }
}

}  // namespace dlb::obs
