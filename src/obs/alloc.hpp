// Heap-allocation accounting for the zero-allocation steady-state gate.
//
// The balancing hot paths are supposed to stop touching the allocator
// once their scratch has warmed up (ISSUE 7 / DESIGN.md §11).  "Supposed
// to" is not a property reviews can keep true — so this module replaces
// the replaceable global `operator new` family with a counting shim
// (alloc.cpp) and exposes the counts to engines, tests, and benches:
//
//   - alloc_counts()        — this thread's cumulative (count, bytes).
//   - AllocPhase            — rebase-and-delta sampler for a code span.
//   - AllocTally            — per-engine accumulator: total allocations,
//                             how many steps were dirty, and the last
//                             dirty step (== end of warmup when the
//                             invariant holds).
//
// Counters are *thread-local*: each engine thread samples only its own
// allocations, exactly and without atomic contention, so concurrent
// engines (run_parallel shards, run_async shards, ThreadedSystem
// workers) can each account their own phases and merge tallies at join
// points.  The shim counts every operator-new call made by this binary
// (including std::vector growth); operator delete is not tracked — the
// invariant under test is "no allocations", not leak accounting.
//
// The shim is linked into every binary that references this header's
// symbols (the dlb_obs object file is pulled in by the engines'
// instrumentation), costs two thread-local increments per allocation,
// and nothing at all on code paths that do not allocate — which is the
// entire point.
#pragma once

#include <cstdint>

#include "obs/metrics.hpp"

namespace dlb::obs {

/// Cumulative operator-new activity of the calling thread.
struct AllocCounts {
  std::uint64_t count = 0;
  std::uint64_t bytes = 0;

  AllocCounts operator-(const AllocCounts& o) const {
    return {count - o.count, bytes - o.bytes};
  }
};

/// Returns the calling thread's cumulative allocation counters
/// (monotone; starts at 0 per thread).
AllocCounts alloc_counts();

/// Delta sampler: rebase() pins the current counters, delta() reports
/// activity since the last rebase.  A phase is typically one step:
///   phase.rebase();  ...step body...  tally.note(step, phase.delta());
class AllocPhase {
 public:
  void rebase() { base_ = alloc_counts(); }
  AllocCounts delta() const { return alloc_counts() - base_; }
  /// delta() then rebase() in one sample (single counter read).
  AllocCounts take() {
    const AllocCounts now = alloc_counts();
    const AllocCounts d = now - base_;
    base_ = now;
    return d;
  }

 private:
  AllocCounts base_{};
};

/// Per-engine accumulation of per-phase deltas.  `last_dirty_step` is
/// the highest phase index that allocated (-1 when none did): when the
/// zero-allocation invariant holds it marks the end of warmup, and every
/// later step ran allocation-free.
struct AllocTally {
  std::uint64_t count = 0;        // allocations across all noted phases
  std::uint64_t bytes = 0;        // bytes across all noted phases
  std::uint64_t dirty_steps = 0;  // phases with count > 0
  std::int64_t last_dirty_step = -1;

  void note(std::int64_t step, const AllocCounts& delta) {
    if (delta.count == 0) return;
    count += delta.count;
    bytes += delta.bytes;
    ++dirty_steps;
    if (step > last_dirty_step) last_dirty_step = step;
  }

  /// Merges another tally (e.g. a worker thread's) into this one.
  void merge(const AllocTally& o) {
    count += o.count;
    bytes += o.bytes;
    dirty_steps += o.dirty_steps;
    if (o.last_dirty_step > last_dirty_step)
      last_dirty_step = o.last_dirty_step;
  }
};

/// Publishes a tally under `<prefix>.alloc.*`: `count`/`bytes`/
/// `dirty_steps` counters (cumulative across runs sharing the registry)
/// plus the `warmup_end_step` gauge — last_dirty_step + 1, so 0 means
/// "no instrumented phase ever allocated" (overwritten per run).
void publish(MetricsRegistry& registry, const char* prefix,
             const AllocTally& tally);

}  // namespace dlb::obs
