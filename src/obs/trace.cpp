#include "obs/trace.hpp"

#include <algorithm>
#include <ostream>

#include "obs/metrics.hpp"  // json_escape
#include "support/check.hpp"

namespace dlb::obs {

TraceBuffer::TraceBuffer(std::size_t capacity)
    : ring_(capacity), epoch_(std::chrono::steady_clock::now()) {
  DLB_REQUIRE(capacity >= 1, "trace buffer needs capacity");
}

void TraceBuffer::set_thread_name(std::uint32_t tid,
                                  const std::string& name) {
  std::lock_guard<std::mutex> lock(names_mutex_);
  thread_names_[tid] = name;
}

std::size_t TraceBuffer::size() const {
  return std::min(next_.load(std::memory_order_relaxed), ring_.size());
}

std::vector<TraceEvent> TraceBuffer::events() const {
  return {ring_.begin(),
          ring_.begin() + static_cast<std::ptrdiff_t>(size())};
}

void TraceBuffer::clear() {
  next_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  epoch_ = std::chrono::steady_clock::now();
}

void TraceBuffer::write_chrome_json(std::ostream& os,
                                    const std::string& process_name) const {
  os << "{\"traceEvents\": [\n";
  bool first = true;
  const auto comma = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  // Metadata rows: process name plus one thread_name row per labeled
  // track, so Perfetto shows "shard 0" instead of "tid 1".
  comma();
  os << R"({"name": "process_name", "ph": "M", "pid": 0, "tid": 0, )"
     << R"("args": {"name": ")" << json_escape(process_name) << "\"}}";
  {
    std::lock_guard<std::mutex> lock(names_mutex_);
    for (const auto& [tid, name] : thread_names_) {
      comma();
      os << R"({"name": "thread_name", "ph": "M", "pid": 0, "tid": )" << tid
         << R"(, "args": {"name": ")" << json_escape(name) << "\"}}";
    }
  }
  const std::size_t n = size();
  for (std::size_t i = 0; i < n; ++i) {
    const TraceEvent& e = ring_[i];
    comma();
    // Chrome timestamps are microseconds (fractions allowed).
    const double ts = static_cast<double>(e.ts_ns) / 1000.0;
    os << "{\"name\": \"" << json_escape(e.name) << "\", \"cat\": \""
       << json_escape(e.cat) << "\", ";
    switch (e.phase) {
      case TracePhase::Instant:
        os << R"("ph": "i", "s": "t", )";
        break;
      case TracePhase::Span:
        os << "\"ph\": \"X\", \"dur\": "
           << static_cast<double>(e.dur_ns) / 1000.0 << ", ";
        break;
      case TracePhase::FlowStart:
        os << "\"ph\": \"s\", \"id\": " << e.flow_id << ", ";
        break;
      case TracePhase::FlowEnd:
        // "bp": "e" binds the finish to the enclosing slice, which is
        // how the receive arrow lands on the ingest span.
        os << "\"ph\": \"f\", \"bp\": \"e\", \"id\": " << e.flow_id << ", ";
        break;
    }
    os << "\"ts\": " << ts << ", \"pid\": 0, \"tid\": " << e.tid
       << ", \"args\": {\"v\": " << e.arg << "}}";
  }
  os << "\n]}\n";
}

}  // namespace dlb::obs
