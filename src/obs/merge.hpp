// Cross-process trace stitching: per-rank trace files -> one Perfetto
// trace.
//
// Each forked rank owns a private TraceBuffer whose epoch is its own
// construction instant, so raw timestamps from different ranks are not
// comparable.  The export path therefore ships, per rank, the raw
// events *plus* a clock offset estimated against a reference rank
// (mp/clock_sync.hpp): reference_now ~= local_now + offset.  The
// TraceMerger applies the offsets, rebases everything so the earliest
// event sits at t = 0, and writes a single Chrome trace-event JSON
// where rank r's events live under pid r ("rank r" process track, the
// offset recorded as a process label).
//
// Two event classes get special treatment:
//   - FlowStart/FlowEnd pairs (mp send -> matching recv, bound by flow
//     id) become Chrome flow events, so a balance transaction renders
//     as causal arcs across the rank tracks; matched_flows() exposes
//     the same pairs for programmatic checks (e.g. monotonicity of
//     corrected send/recv timestamps).
//   - failure-detector verdicts (cat "detector", arg = the indicted
//     rank) are rerouted onto the indicted rank's track, so a SIGKILL
//     shows up where the rank died, not where it was noticed.
//
// File format ("rank trace", one per rank in the rendezvous dir):
//   dlb-rank-trace 1 <rank> <clock_offset_ns> <dropped>
//   e <phase> <ts_ns> <dur_ns> <tid> <flow_id> <arg> <name> <cat>
// Names and categories are whitespace-free (enforced at write time).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace dlb::obs {

/// Writes one rank's buffer in the rank-trace format.  `offset_ns`
/// maps the rank's clock onto the reference clock (see above); the
/// reference rank itself writes 0.
void write_rank_trace(std::ostream& os, const TraceBuffer& buf, int rank,
                      std::int64_t clock_offset_ns);

/// One merged event: offset-corrected onto the reference clock,
/// rebased so the earliest event in the merged trace is at 0, and
/// attributed to its source rank.
struct MergedEvent {
  std::string name;
  std::string cat;
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;
  int rank = 0;
  std::uint32_t tid = 0;
  TracePhase phase = TracePhase::Instant;
  std::uint64_t flow_id = 0;
  std::uint64_t arg = 0;
};

/// A FlowStart/FlowEnd pair matched by flow id (timestamps rebased
/// like MergedEvent's).
struct FlowPair {
  std::uint64_t id = 0;
  int src_rank = 0;
  int dst_rank = 0;
  std::uint64_t send_ts_ns = 0;
  std::uint64_t recv_ts_ns = 0;
  std::uint64_t arg = 0;  // as recorded on the send side (message tag)
};

class TraceMerger {
 public:
  /// Parses one rank-trace file and folds it in.  Throws contract_error
  /// on an unreadable/malformed file or a duplicate rank.
  void add_rank_file(const std::string& path);
  /// Same, from an already-open stream.
  void add_rank(std::istream& is);

  int ranks() const { return static_cast<int>(offsets_.size()); }
  bool has_rank(int rank) const { return offsets_.count(rank) != 0; }
  /// The clock offset recorded in rank's file (throws if absent).
  std::int64_t offset_ns(int rank) const;
  std::uint64_t dropped(int rank) const;

  /// All events, corrected + rebased, sorted by timestamp.
  std::vector<MergedEvent> events() const;
  /// Send/recv pairs bound by flow id; halves whose partner never made
  /// it into any rank file (dropped message, dead rank) are skipped.
  std::vector<FlowPair> matched_flows() const;

  /// The merged Chrome trace-event JSON (see file comment).
  void write_chrome_json(std::ostream& os) const;

 private:
  struct Raw {
    std::string name;
    std::string cat;
    std::int64_t ts_ns = 0;  // offset-corrected, NOT yet rebased
    std::uint64_t dur_ns = 0;
    int rank = 0;
    std::uint32_t tid = 0;
    TracePhase phase = TracePhase::Instant;
    std::uint64_t flow_id = 0;
    std::uint64_t arg = 0;
  };

  std::int64_t base_ns() const;  // earliest corrected timestamp

  std::map<int, std::int64_t> offsets_;
  std::map<int, std::uint64_t> dropped_;
  std::vector<Raw> raw_;
};

}  // namespace dlb::obs
