// Metrics registry: named counters, gauges and log2-bucketed histograms.
//
// The Recorder interface (metrics/recorder.hpp) serves the paper's
// figures; this registry serves *operations*: how many balance ops ran,
// how long each shard of run_parallel waited at the barrier, how many
// messages a link dropped.  Instruments are created once by name and
// then updated lock-free (relaxed atomics), so a hot path pays one
// pointer-null check when observability is detached and one relaxed
// atomic RMW when attached.  A snapshot() walks the registry under its
// mutex and yields plain values, exportable as JSON or CSV.
//
// Histograms bucket by floor(log2(value)) — 64 buckets cover the full
// uint64 range — and answer percentile queries by linear interpolation
// inside the selected bucket.  The guarantee is therefore bucket-level:
// the reported p-quantile lies in the same power-of-two bucket as the
// exact order statistic (tested against a sorted-vector oracle).
#pragma once

#include <atomic>
#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dlb::obs {

/// Monotone event count.  Thread-safe (relaxed; totals are read after
/// the run, not used for synchronization).
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value (e.g. active processors this
/// step).  Thread-safe.
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Log2-bucketed histogram of non-negative values (typically
/// nanoseconds).  record() is wait-free; percentile() interpolates
/// within the bucket holding the requested order statistic.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  /// Bucket index for a value: 0 holds {0, 1}, bucket i >= 1 holds
  /// [2^i, 2^(i+1)).
  static std::size_t bucket_of(std::uint64_t value) {
    return value <= 1 ? 0
                      : static_cast<std::size_t>(63 - __builtin_clzll(value));
  }
  /// Inclusive lower edge of bucket `i`.
  static std::uint64_t bucket_lo(std::size_t i) {
    return i == 0 ? 0 : (std::uint64_t{1} << i);
  }

  void record(std::uint64_t value);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Smallest / largest recorded value (0 when empty).
  std::uint64_t min() const;
  std::uint64_t max() const;
  double mean() const;

  /// Value at quantile q in [0, 1]: the exact order statistic's bucket,
  /// linearly interpolated.  Returns 0 when empty.
  double percentile(double q) const;

  /// Per-bucket counts (index by bucket_of).
  std::array<std::uint64_t, kBuckets> buckets() const;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
};

/// One exported instrument (see MetricsRegistry::snapshot).
struct MetricValue {
  enum class Kind { Counter, Gauge, Histogram };
  std::string name;
  Kind kind = Kind::Counter;
  // Counter / gauge value.
  std::int64_t value = 0;
  // Histogram summary (valid when kind == Histogram).
  std::uint64_t count = 0;
  std::uint64_t total = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// A point-in-time copy of every instrument, ordered by name.
struct MetricsSnapshot {
  std::vector<MetricValue> values;

  const MetricValue* find(const std::string& name) const;
  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {count,
  /// sum, min, max, mean, p50, p90, p99}}}
  void write_json(std::ostream& os) const;
  /// name,kind,value,count,sum,min,max,mean,p50,p90,p99 rows.
  void write_csv(std::ostream& os) const;
};

/// Owns the instruments.  Creation is mutex-guarded and returns stable
/// references; callers cache the reference and update it lock-free.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  MetricsSnapshot snapshot() const;

 private:
  enum class Kind { Counter, Gauge, Histogram };
  struct Cell {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  Cell& cell(const std::string& name, Kind kind);

  mutable std::mutex mutex_;
  std::map<std::string, Cell> cells_;
};

/// Escapes `s` for embedding in a JSON string literal (shared by the
/// metrics/trace exporters and the bench JSON-row emitter).
std::string json_escape(const std::string& s);

}  // namespace dlb::obs
