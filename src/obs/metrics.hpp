// Metrics registry: named counters, gauges and log2-bucketed histograms.
//
// The Recorder interface (metrics/recorder.hpp) serves the paper's
// figures; this registry serves *operations*: how many balance ops ran,
// how long each shard of run_parallel waited at the barrier, how many
// messages a link dropped.  Instruments are created once by name and
// then updated lock-free (relaxed atomics), so a hot path pays one
// pointer-null check when observability is detached and one relaxed
// atomic RMW when attached.  A snapshot() walks the registry under its
// mutex and yields plain values, exportable as JSON or CSV.
//
// Histograms bucket log-linearly (HdrHistogram-style): 64 power-of-two
// major buckets, each split into kSubBuckets linear sub-buckets, and
// percentile queries interpolate linearly inside the sub-bucket holding
// the requested order statistic.  The quantile therefore lands in the
// same 1/kSubBuckets slice of the power-of-two bucket as the exact
// order statistic, bounding the relative error by 1/kSubBuckets
// (6.25%) — tight enough that a p999 latency column is meaningful
// instead of collapsing onto power-of-two edges (tested against a
// sorted-vector oracle).
#pragma once

#include <atomic>
#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dlb::obs {

/// Monotone event count.  Thread-safe (relaxed; totals are read after
/// the run, not used for synchronization).
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value (e.g. active processors this
/// step).  Thread-safe.
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Log-linear histogram of non-negative values (typically nanoseconds):
/// 64 power-of-two major buckets, each split into kSubBuckets linear
/// sub-buckets.  record() is wait-free; percentile() interpolates
/// within the sub-bucket holding the requested order statistic, so the
/// relative error is bounded by 1/kSubBuckets instead of a full binary
/// order of magnitude.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;
  static constexpr std::size_t kSubBuckets = 16;
  static constexpr std::size_t kCells = kBuckets * kSubBuckets;

  /// Major bucket index for a value: 0 holds {0, 1}, bucket i >= 1
  /// holds [2^i, 2^(i+1)).
  static std::size_t bucket_of(std::uint64_t value) {
    return value <= 1 ? 0
                      : static_cast<std::size_t>(63 - __builtin_clzll(value));
  }
  /// Inclusive lower edge of bucket `i`.
  static std::uint64_t bucket_lo(std::size_t i) {
    return i == 0 ? 0 : (std::uint64_t{1} << i);
  }
  /// Fine cell index: major bucket b, then the value's position within
  /// the bucket span scaled to kSubBuckets.  Buckets narrower than
  /// kSubBuckets (b <= 4) leave some sub-cells unused; integer values
  /// then map injectively, making small values exact.
  static std::size_t cell_of(std::uint64_t value) {
    const std::size_t b = bucket_of(value);
    const std::uint64_t lo = bucket_lo(b);
    const std::uint64_t span = b == 0 ? 2 : lo;  // bucket width
    // Divide-before-multiply when the span allows it: (value-lo) *
    // kSubBuckets overflows 64 bits in the top buckets.  2^b is
    // divisible by kSubBuckets for b >= 4, so the division is exact.
    const std::uint64_t sub = span >= kSubBuckets
                                  ? (value - lo) / (span / kSubBuckets)
                                  : (value - lo) * kSubBuckets / span;
    return b * kSubBuckets + static_cast<std::size_t>(sub);
  }
  /// Inclusive lower edge of fine cell `c`.
  static double cell_lo(std::size_t c) {
    const std::size_t b = c / kSubBuckets;
    const std::size_t sub = c % kSubBuckets;
    const double lo = static_cast<double>(bucket_lo(b));
    const double span = b == 0 ? 2.0 : lo;
    return lo + span * static_cast<double>(sub) /
                    static_cast<double>(kSubBuckets);
  }
  /// Exclusive upper edge of fine cell `c`.
  static double cell_hi(std::size_t c) {
    return c + 1 >= kCells ? 18446744073709551616.0  // 2^64
                           : cell_lo(c + 1);
  }

  void record(std::uint64_t value);

  /// Transportable copy of the histogram: summary scalars plus the
  /// sparse non-zero fine cells.  min/max are meaningful only when
  /// count > 0.
  struct State {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    std::vector<std::pair<std::size_t, std::uint64_t>> cells;
  };
  State state() const;

  /// Folds another histogram's recordings into this one cell-wise, so
  /// the merged percentiles equal percentiles of the concatenated
  /// sample sets up to the usual sub-bucket error.  Thread-safe like
  /// record().
  void merge(const State& other);
  void merge(const Histogram& other) { merge(other.state()); }

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Smallest / largest recorded value (0 when empty).
  std::uint64_t min() const;
  std::uint64_t max() const;
  double mean() const;

  /// Value at quantile q in [0, 1]: the exact order statistic's fine
  /// cell, linearly interpolated.  Returns 0 when empty.
  double percentile(double q) const;

  /// Per-major-bucket counts (index by bucket_of), aggregated over the
  /// sub-buckets.
  std::array<std::uint64_t, kBuckets> buckets() const;
  /// Per-fine-cell counts (index by cell_of).
  std::array<std::uint64_t, kCells> cells() const;

  /// Forgets everything recorded.  Not atomic with respect to
  /// concurrent record() calls — callers reset between runs, not
  /// mid-measurement.
  void reset();

 private:
  std::array<std::atomic<std::uint64_t>, kCells> cells_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
};

/// One exported instrument (see MetricsRegistry::snapshot).
struct MetricValue {
  enum class Kind { Counter, Gauge, Histogram };
  std::string name;
  Kind kind = Kind::Counter;
  // Counter / gauge value.
  std::int64_t value = 0;
  // Histogram summary (valid when kind == Histogram).
  std::uint64_t count = 0;
  std::uint64_t total = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
};

/// A point-in-time copy of every instrument, ordered by name.
struct MetricsSnapshot {
  std::vector<MetricValue> values;

  const MetricValue* find(const std::string& name) const;
  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {count,
  /// sum, min, max, mean, p50, p90, p99, p999}}}
  void write_json(std::ostream& os) const;
  /// name,kind,value,count,sum,min,max,mean,p50,p90,p99,p999 rows.
  void write_csv(std::ostream& os) const;
};

/// Owns the instruments.  Creation is mutex-guarded and returns stable
/// references; callers cache the reference and update it lock-free.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  MetricsSnapshot snapshot() const;

  /// Line-oriented machine dump of every instrument — the unit of
  /// cross-process metrics transport (each forked rank writes one next
  /// to its journal; the parent folds them back with merge_state):
  ///
  ///   dlb-metrics 1
  ///   c <name> <value>
  ///   g <name> <value>
  ///   h <name> <count> <sum> <min> <max> <ncells> (<cell> <count>)*
  ///
  /// Instrument names must be whitespace-free (enforced).
  void write_state(std::ostream& os) const;

 private:
  enum class Kind { Counter, Gauge, Histogram };
  struct Cell {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  Cell& cell(const std::string& name, Kind kind);

  mutable std::mutex mutex_;
  std::map<std::string, Cell> cells_;
};

/// Parses a write_state() dump and folds it into `into`, prepending
/// `prefix` to every instrument name: counters and gauges add,
/// histograms merge cell-wise.  A name already registered in `into`
/// under a different kind trips the registry's kind contract; a
/// malformed dump (bad header or record) throws.
void merge_state(std::istream& is, MetricsRegistry& into,
                 const std::string& prefix = "");

/// Escapes `s` for embedding in a JSON string literal (shared by the
/// metrics/trace exporters and the bench JSON-row emitter).
std::string json_escape(const std::string& s);

}  // namespace dlb::obs
