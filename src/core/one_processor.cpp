#include "core/one_processor.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace dlb {

OneProcessorModel::OneProcessorModel(const Params& params, std::uint64_t seed)
    : params_(params), rng_(seed), loads_(params.n, 0) {
  DLB_REQUIRE(params_.n >= 2, "model needs at least two processors");
  DLB_REQUIRE(params_.delta >= 1 && params_.delta < params_.n,
              "delta out of range");
  DLB_REQUIRE(params_.f >= 1.0, "f must be >= 1");
}

std::uint64_t OneProcessorModel::grow_round() {
  std::uint64_t generated = 0;
  // repeat { l_new += 1 } until l_new >= f * l_old, then balance (Fig. 1).
  while (true) {
    loads_[0] += 1;
    ++generated;
    const bool trigger =
        loads_[0] > l_old_ &&
        static_cast<double>(loads_[0]) >=
            params_.f * static_cast<double>(l_old_);
    if (trigger) break;
  }
  balance();
  return generated;
}

void OneProcessorModel::run_grow(std::uint32_t rounds) {
  for (std::uint32_t r = 0; r < rounds; ++r) grow_round();
}

std::uint64_t OneProcessorModel::consume_total(std::uint64_t target) {
  const std::uint64_t ops_before = balance_ops_;
  std::uint64_t consumed = 0;
  while (consumed < target && total_load() > 0) {
    if (loads_[0] > 0) {
      loads_[0] -= 1;
      ++consumed;
    }
    const bool trigger =
        loads_[0] < l_old_ && l_old_ >= 1 &&
        static_cast<double>(loads_[0]) <=
            static_cast<double>(l_old_) / params_.f;
    if (trigger || loads_[0] == 0) balance();
  }
  return balance_ops_ - ops_before;
}

void OneProcessorModel::balance() {
  if (params_.relaxed_pairwise && params_.delta > 1) {
    // delta consecutive pairwise equalizations, counted as one operation
    // (Figure 6's relaxed algorithm).
    for (std::uint32_t k = 0; k < params_.delta; ++k) {
      std::vector<std::uint32_t> pair{
          0, static_cast<std::uint32_t>(rng_.below(params_.n - 1)) + 1};
      equalize(pair);
    }
  } else {
    std::vector<std::uint32_t> participants{0};
    for (std::uint32_t q : rng_.sample_distinct(params_.n, params_.delta, 0))
      participants.push_back(q);
    equalize(participants);
  }
  l_old_ = loads_[0];
  ++balance_ops_;
}

void OneProcessorModel::equalize(std::vector<std::uint32_t>& participants) {
  std::int64_t pool = 0;
  for (std::uint32_t p : participants) pool += loads_[p];
  const auto m = static_cast<std::int64_t>(participants.size());
  const std::int64_t base = pool / m;
  std::int64_t remainder = pool % m;
  // Deal the remainder starting at a random rotation so no participant is
  // systematically favored.
  const auto start =
      static_cast<std::size_t>(rng_.below(participants.size()));
  for (std::uint32_t p : participants) loads_[p] = base;
  for (std::int64_t r = 0; r < remainder; ++r) {
    loads_[participants[(start + static_cast<std::size_t>(r)) %
                        participants.size()]] += 1;
  }
}

std::int64_t OneProcessorModel::load(std::uint32_t i) const {
  DLB_REQUIRE(i < params_.n, "processor id out of range");
  return loads_[i];
}

std::int64_t OneProcessorModel::total_load() const {
  std::int64_t total = 0;
  for (std::int64_t l : loads_) total += l;
  return total;
}

double OneProcessorModel::ratio_to_average() const {
  std::int64_t others = 0;
  for (std::uint32_t i = 1; i < params_.n; ++i) others += loads_[i];
  if (others == 0) return 0.0;
  const double avg = static_cast<double>(others) /
                     static_cast<double>(params_.n - 1);
  return static_cast<double>(loads_[0]) / avg;
}

void OneProcessorModel::set_load(std::uint32_t i, std::int64_t value) {
  DLB_REQUIRE(i < params_.n, "processor id out of range");
  DLB_REQUIRE(value >= 0, "load cannot be negative");
  loads_[i] = value;
}

}  // namespace dlb
