// The n-processor-generator-consumer system (§4 + appendix).
//
// A sequential, deterministic simulator of n processors running the load
// balancing algorithm.  Time advances in global steps; in each step every
// processor draws a WorkEvent from the workload (or trace), applies it,
// and checks its factor-f trigger.  Balancing operations execute
// atomically within a step, matching the paper's model that an operation
// completes in constant time (§2, [D10] in DESIGN.md).
//
// All randomness flows through one seeded generator, so a (seed, workload)
// pair fully determines a run — the property the 100-run experiment
// harnesses and the record/replay tests rely on.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/config.hpp"
#include "core/ledger.hpp"
#include "metrics/recorder.hpp"
#include "net/cost_model.hpp"
#include "net/topology.hpp"
#include "support/rng.hpp"
#include "workload/trace.hpp"
#include "workload/workload.hpp"

namespace dlb {

/// State of one simulated processor.
struct ProcessorState {
  explicit ProcessorState(std::uint32_t classes) : ledger(classes) {}

  Ledger ledger;
  /// l_{i,old}: the self-generated load d[i] at the last balancing
  /// operation this processor was involved in.
  std::int64_t l_old = 0;
  /// Local clock: number of balancing operations this processor was
  /// involved in (the t' of Theorem 4).
  std::uint64_t local_time = 0;
};

class System {
 public:
  /// `topology` is optional and only used for hop-cost accounting and,
  /// when `local_partners` is set, for neighborhood-restricted partner
  /// choice; it must outlive the System.
  System(std::uint32_t processors, BalancerConfig config, std::uint64_t seed,
         const Topology* topology = nullptr);

  std::uint32_t processors() const {
    return static_cast<std::uint32_t>(procs_.size());
  }
  const BalancerConfig& config() const { return config_; }

  /// Observer for figures/tables; may be null.  Not owned.
  void attach_recorder(Recorder* recorder) { recorder_ = recorder; }

  /// Locality ablation: draw the delta partners from the initiator's
  /// topology neighborhood (ball of radius `radius`) instead of the whole
  /// network.  Requires a topology with enough reachable processors.
  void restrict_partners_to_neighborhood(unsigned radius);

  // ---- Driving the simulation -----------------------------------------

  /// Runs the workload over its full horizon, sampling events with this
  /// system's generator.
  void run(const Workload& workload);

  /// Replays a pre-recorded trace (identical demand across algorithms).
  void run(const Trace& trace);

  /// Applies one global step given each processor's event.
  void step(std::uint32_t t, const std::vector<WorkEvent>& events);

  // ---- Direct manipulation (tests, examples, one-processor models) ----

  /// Processor `p` generates one packet (the x = +1 branch).
  void generate(std::uint32_t p);

  /// Processor `p` attempts to consume one packet (the x = -1 branch).
  /// Returns false when no packet could be consumed (l_p == 0 or the
  /// borrow protocol could not free one).
  bool consume(std::uint32_t p);

  /// Unconditionally runs a balancing operation initiated by `p` with
  /// delta random partners (exposed for the §3 one-processor drivers).
  void force_balance(std::uint32_t p);

  // ---- Inspection ------------------------------------------------------

  const ProcessorState& processor(std::uint32_t p) const;
  std::vector<std::int64_t> loads() const;
  std::int64_t load(std::uint32_t p) const;
  std::int64_t total_load() const;
  std::uint64_t total_generated() const { return generated_; }
  std::uint64_t total_consumed() const { return consumed_; }
  std::uint64_t balance_operations() const { return balance_ops_; }
  const CostLedger& costs() const { return costs_; }
  Rng& rng() { return rng_; }

  /// Verifies every ledger invariant plus global packet conservation
  /// (sum of loads == generated − consumed).  Throws contract_error.
  void check_invariants() const;

  /// Neighborhood restriction radius, if any (checkpointing support).
  std::optional<unsigned> partner_radius() const { return partner_radius_; }

 private:
  friend void save_checkpoint(const System& system, std::ostream& os);
  friend System load_checkpoint(std::istream& is, const Topology* topology);

  // Trigger check for p ([D1]); initiates a balancing operation when the
  // self-generated load has drifted by the factor f.
  void maybe_balance(std::uint32_t p);

  // Balancing operation over initiator + delta random partners.
  void balance(std::uint32_t initiator, const std::vector<ProcId>& partners);

  // Draws the delta partners for `initiator` (global or neighborhood).
  std::vector<ProcId> draw_partners(std::uint32_t initiator);

  // The appendix's consume branch when d[p][p] == 0: borrow or settle.
  bool consume_via_borrow(std::uint32_t p);

  // Settlement when p's borrow capacity is exhausted: pick a marked class
  // j; remote-exchange against j's generator or run the §4 resolution.
  void settle_debts(std::uint32_t p);

  // Remote exchange [D4]: up to min(d[j][j], borrowed_total(p)) real
  // class-j packets migrate j -> p, clearing that many markers on p;
  // j then simulates the corresponding workload decrease.
  void remote_exchange(std::uint32_t p, std::uint32_t j);

  // [D5] resolution when class j's generator holds none of its own
  // packets.
  void resolve_empty_generator(std::uint32_t p, std::uint32_t j);

  // [D6] a participant holding markers of its own class settles them
  // immediately ("simulate a load decrease of b_ii").
  void cancel_self_markers(std::uint32_t p);

  void emit_borrow_event(BorrowEvent event);

  BalancerConfig config_;
  const Topology* topology_;
  Rng rng_;
  std::vector<ProcessorState> procs_;
  Recorder* recorder_ = nullptr;
  CostLedger costs_;
  std::uint64_t generated_ = 0;
  std::uint64_t consumed_ = 0;
  std::uint64_t balance_ops_ = 0;
  std::optional<unsigned> partner_radius_;
  // Scratch buffers reused across balancing operations.  A balancing
  // operation works on compact row-major (delta+1) x k matrices whose k
  // columns are union_classes_ — the union of the participants' active
  // classes — instead of full (delta+1) x n matrices, making its cost
  // O((delta+1) * k) rather than O((delta+1) * n).
  std::vector<std::int64_t> scratch_d_;
  std::vector<std::int64_t> scratch_b_;
  std::vector<std::uint32_t> union_classes_;
  std::vector<std::uint32_t> union_scratch_;
  std::vector<std::size_t> excluded_cols_;
  std::vector<std::int64_t> row_delta_;
  std::vector<std::uint32_t> candidate_classes_;
  std::vector<std::int64_t> loads_scratch_;
};

}  // namespace dlb
