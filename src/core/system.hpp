// The n-processor-generator-consumer system (§4 + appendix).
//
// A sequential, deterministic simulator of n processors running the load
// balancing algorithm.  Time advances in global steps; in each step every
// processor with a workload phase draws a WorkEvent (or replays one from
// a trace), applies it, and checks its factor-f trigger.  Balancing
// operations execute atomically within a step, matching the paper's model
// that an operation completes in constant time (§2, [D10] in DESIGN.md).
//
// The step engine is *event-batched*: run(Workload) precompiles the
// static phase schedule into per-step active-processor lists
// (workload/schedule.hpp) and iterates only those — a processor outside
// any phase draws no RNG values, so skipping it is bit-identical to the
// plain O(n) loop (run_reference keeps that loop as the test oracle).
// A step costs O(active + balancing), independent of n.
//
// All randomness flows through one seeded generator, so a (seed, workload)
// pair fully determines a run — the property the 100-run experiment
// harnesses and the record/replay tests rely on.  run_parallel shards
// the step loop across threads with per-shard split RNG streams; its
// runs are determined by (seed, workload, shards) instead.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/config.hpp"
#include "core/ledger.hpp"
#include "metrics/recorder.hpp"
#include "net/cost_model.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/rng.hpp"
#include "workload/trace.hpp"
#include "workload/workload.hpp"

namespace dlb {

class AsyncEngine;

/// Tuning knobs for the barrier-free asynchronous driver (run_async).
struct AsyncOptions {
  /// Steps each shard advances locally before the quiescence fence (the
  /// deterministic mode's epoch length).  Larger epochs amortize the
  /// token circulation over more steps; 1 reproduces a per-step fence.
  std::uint32_t epoch_steps = 16;
  /// Trades bit-reproducibility for throughput: shards free-run the
  /// whole horizon and execute balancing operations concurrently under
  /// per-processor locks, with a single quiescence detection at the end.
  /// Off (default): epoch-fenced execution, deterministic per
  /// (seed, shards, epoch_steps).
  bool relaxed_order = false;
};

/// Relaxed atomic counter that stays copyable, so System keeps its move
/// semantics (checkpoint restore returns a System by value).  Copies are
/// not atomic — only single-threaded contexts copy or move a System.
class AtomicCounter {
 public:
  AtomicCounter(std::uint64_t value = 0) noexcept : value_(value) {}
  AtomicCounter(const AtomicCounter& other) noexcept : value_(other.get()) {}
  AtomicCounter& operator=(const AtomicCounter& other) noexcept {
    value_.store(other.get(), std::memory_order_relaxed);
    return *this;
  }

  std::uint64_t get() const {
    return value_.load(std::memory_order_relaxed);
  }
  void set(std::uint64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  void add(std::uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_;
};

/// State of one simulated processor.
struct ProcessorState {
  explicit ProcessorState(std::uint32_t classes) : ledger(classes) {}

  Ledger ledger;
  /// l_{i,old}: the self-generated load d[i] at the last balancing
  /// operation this processor was involved in.
  std::int64_t l_old = 0;
  /// Local clock: number of balancing operations this processor was
  /// involved in (the t' of Theorem 4).
  std::uint64_t local_time = 0;
};

class System {
 public:
  /// `topology` is optional and only used for hop-cost accounting and,
  /// when `local_partners` is set, for neighborhood-restricted partner
  /// choice; it must outlive the System.
  System(std::uint32_t processors, BalancerConfig config, std::uint64_t seed,
         const Topology* topology = nullptr);

  std::uint32_t processors() const {
    return static_cast<std::uint32_t>(procs_.size());
  }
  const BalancerConfig& config() const { return config_; }

  /// Observer for figures/tables; may be null.  Not owned.
  void attach_recorder(Recorder* recorder) { recorder_ = recorder; }

  /// Operational metrics (src/obs): balance/borrow/settle counters, the
  /// per-step active-processor gauge, balance-duration and run_parallel
  /// phase histograms.  May be null (detached); not owned.  Hot paths
  /// pay only a null check while detached.
  void attach_metrics(obs::MetricsRegistry* registry);

  /// Structured trace sink (src/obs): step, balance-op and run_parallel
  /// shard-phase spans.  May be null; not owned.  Recording also honours
  /// the buffer's own enabled() gate.
  void attach_trace(obs::TraceBuffer* trace) { trace_ = trace; }

  /// Locality ablation: draw the delta partners from the initiator's
  /// topology neighborhood (ball of radius `radius`) instead of the whole
  /// network.  Requires a topology with enough reachable processors.
  void restrict_partners_to_neighborhood(unsigned radius);

  // ---- Driving the simulation -----------------------------------------

  /// Runs the workload over its full horizon, sampling events with this
  /// system's generator.  Event-batched: only processors inside a phase
  /// are touched each step; bit-identical to run_reference.
  void run(const Workload& workload);

  /// The plain O(n)-per-step loop (sample every processor, then apply).
  /// Kept as the reference implementation the equivalence tests compare
  /// the batched path against; produces the same results as run().
  void run_reference(const Workload& workload);

  /// Shards the step loop across `shards` threads: processors are
  /// partitioned into contiguous blocks, each with its own split RNG
  /// stream and compiled schedule.  Each step runs a parallel local
  /// phase (generate/consume/borrow against the own ledger only) and a
  /// serial phase that executes the deferred balance triggers and borrow
  /// settlements — the operations that touch other shards' ledgers — in
  /// shard order.  Reproducible given (seed, workload, shards); NOT
  /// bit-identical to run() (the RNG stream layout differs by design).
  void run_parallel(const Workload& workload, std::uint32_t shards);

  /// Barrier-free sharded driver: shards own processors round-robin
  /// (owner = p mod shards), advance their own strided schedule in
  /// epochs, and route cross-shard work (balance triggers, marker
  /// cancels) as messages through per-shard-pair SPSC rings; a
  /// Dijkstra–Safra token decides epoch completion instead of a barrier
  /// (core/quiescence.hpp).  Deterministic per (seed, workload, shards,
  /// epoch_steps) by default; options.relaxed_order trades that for
  /// concurrent balancing under per-processor locks.  A recorder must
  /// not be attached (no serial point to observe per-step loads from);
  /// with post-step checks enabled, invariants are verified per epoch
  /// (deterministic mode) or once at the end (relaxed mode).
  void run_async(const Workload& workload, std::uint32_t shards,
                 AsyncOptions options = {});

  /// Replays a pre-recorded trace (identical demand across algorithms).
  void run(const Trace& trace);

  /// Applies one global step given each processor's event.
  void step(std::uint32_t t, const std::vector<WorkEvent>& events);

  /// Test hook: when enabled, every run()/run_parallel() step ends with
  /// check_invariants() (packet conservation after each global step).
  void set_post_step_check(bool enabled) { post_step_check_ = enabled; }

  // ---- Direct manipulation (tests, examples, one-processor models) ----

  /// Processor `p` generates one packet (the x = +1 branch).
  void generate(std::uint32_t p);

  /// Processor `p` attempts to consume one packet (the x = -1 branch).
  /// Returns false when no packet could be consumed (l_p == 0 or the
  /// borrow protocol could not free one).
  bool consume(std::uint32_t p);

  /// Unconditionally runs a balancing operation initiated by `p` with
  /// delta random partners (exposed for the §3 one-processor drivers).
  void force_balance(std::uint32_t p);

  // ---- Inspection ------------------------------------------------------

  const ProcessorState& processor(std::uint32_t p) const;
  std::vector<std::int64_t> loads() const;
  /// Fills `out` with the per-processor real loads, reusing its capacity
  /// (the allocation-free variant of loads() for polling callers).
  void loads_into(std::vector<std::int64_t>& out) const;
  std::int64_t load(std::uint32_t p) const;
  std::int64_t total_load() const;
  std::uint64_t total_generated() const { return generated_.get(); }
  std::uint64_t total_consumed() const { return consumed_.get(); }
  std::uint64_t balance_operations() const { return balance_ops_.get(); }
  const CostLedger& costs() const { return costs_; }
  Rng& rng() { return rng_; }

  /// Verifies every ledger invariant plus global packet conservation
  /// (sum of loads == generated − consumed).  Throws contract_error.
  void check_invariants() const;

  /// Neighborhood restriction radius, if any (checkpointing support).
  std::optional<unsigned> partner_radius() const { return partner_radius_; }

 private:
  friend void save_checkpoint(const System& system, std::ostream& os);
  friend System load_checkpoint(std::istream& is, const Topology* topology);
  // The asynchronous driver (core/system_async.cpp) reaches the shard-
  // safe internals directly: the local event halves, the decomposed
  // balancing core, and the counters (all atomic or per-thread).
  friend class AsyncEngine;

  // Per-call event counters.  The sharded phase-1 workers run
  // generate/consume concurrently, so the shared totals (and the
  // recorder) cannot be bumped from inside those paths; counts accumulate
  // here and are committed at a serial point.  The sequential wrappers
  // commit immediately after each call, preserving the original stream.
  struct StepCounters {
    std::uint64_t generated = 0;
    std::uint64_t consumed = 0;
    std::uint64_t total_borrows = 0;  // BorrowEvent::TotalBorrow emissions
  };
  void commit(const StepCounters& counters);

  // Outcome of the shard-local part of a consume.
  enum class ConsumeLocal {
    Failed,          // nothing to consume / borrowing impossible
    ConsumedOwn,     // own-class packet consumed: trigger check is due
    ConsumedBorrow,  // consumed on credit (no own-class change)
    NeedsSettle,     // borrow capacity exhausted: settle debts, retry
  };

  // Internal paths take the Rng to draw from explicitly: the sequential
  // drivers pass rng_, the sharded driver its per-shard streams.

  // Ledger mutation + counter halves of generate/consume: touch only
  // processor p's own ledger (safe to run in parallel across disjoint
  // processors) and defer the trigger check to the caller.
  void generate_packet(std::uint32_t p, Rng& rng, StepCounters& counters);
  ConsumeLocal consume_packet(std::uint32_t p, Rng& rng,
                              StepCounters& counters);
  bool try_borrow(std::uint32_t p, Rng& rng, StepCounters& counters);

  // Full sequential semantics (local half + trigger/settlement).
  void generate(std::uint32_t p, Rng& rng);
  bool consume(std::uint32_t p, Rng& rng);

  // Trigger predicate for p ([D1]): the self-generated load has drifted
  // by the factor f since the last balancing operation.
  bool trigger_fires(std::uint32_t p) const;

  // Trigger check + balancing operation when it fires.
  void maybe_balance(std::uint32_t p, Rng& rng);

  // Zero-alloc opt-in (reserve_classes > 0, DESIGN.md §11): pre-sizes
  // every lazily-grown thread_local on the balancing path — balance
  // scratch, borrow candidates, ledger merge buffers, snake flow
  // scratch, the partner-draw pool — to its analytic bound.  Each driver
  // calls this once per worker thread at startup, so a thread whose
  // first balancing operation lands late in the run does not pay its
  // one-time warmup there.  No-op without the opt-in.
  void warm_thread_scratch();

  // Balancing operation over initiator + delta random partners.
  void balance(std::uint32_t initiator, const std::vector<ProcId>& partners,
               Rng& rng);

  // The reusable core of balance(): the snake deal, write-back and
  // accounting, WITHOUT the trailing self-marker cancels (the sequential
  // wrapper runs those inline; the async engine routes them to the
  // participants' owner shards as messages).  Costs land in `costs` (the
  // sequential drivers pass costs_, the async shards their private
  // ledgers merged at the end); `cancel_due`, when non-null, collects
  // the participants left holding own-class markers; `tid` is the trace
  // track.  Thread-safe under the async locking protocol: all
  // participant ledgers must be exclusively held by the caller.
  void balance_deal(std::uint32_t initiator,
                    const std::vector<ProcId>& partners, Rng& rng,
                    CostLedger& costs, std::vector<ProcId>* cancel_due,
                    std::uint32_t tid = 0);

  // Draws the delta partners for `initiator` (global or neighborhood)
  // into `out`, reusing its capacity.  Callers lease `out` from the
  // thread's scratch pool (core/scratch.hpp) — balancing operations nest,
  // so a single scratch vector is not enough.
  void draw_partners(std::uint32_t initiator, Rng& rng,
                     std::vector<ProcId>& out);

  // Settlement when p's borrow capacity is exhausted: pick a marked class
  // j; remote-exchange against j's generator or run the §4 resolution.
  void settle_debts(std::uint32_t p, Rng& rng);

  // Remote exchange [D4]: up to min(d[j][j], borrowed_total(p)) real
  // class-j packets migrate j -> p, clearing that many markers on p;
  // j then simulates the corresponding workload decrease.
  void remote_exchange(std::uint32_t p, std::uint32_t j, Rng& rng);

  // [D5] resolution when class j's generator holds none of its own
  // packets.
  void resolve_empty_generator(std::uint32_t p, std::uint32_t j, Rng& rng);

  // [D6] a participant holding markers of its own class settles them
  // immediately ("simulate a load decrease of b_ii").
  void cancel_self_markers(std::uint32_t p, Rng& rng);

  void emit_borrow_event(BorrowEvent event);

  // Per-step active-processor accounting (gauge + distribution).
  void note_active(std::size_t active);

  // Recorder loads snapshot, maintained incrementally: every real-load
  // mutation routes through touch_load, so the per-step recorder call is
  // O(1) instead of an O(n) rebuild.
  void touch_load(std::uint32_t p);
  void emit_loads(std::uint32_t t);

  BalancerConfig config_;
  const Topology* topology_;
  Rng rng_;
  std::vector<ProcessorState> procs_;
  Recorder* recorder_ = nullptr;
  // Cached instrument handles, resolved once in attach_metrics so the
  // hot paths never touch the registry map.  Valid iff metrics_ != null.
  struct SystemMetrics {
    obs::Counter* generated = nullptr;
    obs::Counter* consumed = nullptr;
    obs::Counter* balance_ops = nullptr;
    obs::Counter* packets_moved = nullptr;
    obs::Counter* borrow_total = nullptr;
    obs::Counter* borrow_remote = nullptr;
    obs::Counter* borrow_fail = nullptr;
    obs::Counter* decrease_sim = nullptr;
    obs::Counter* settlements = nullptr;
    obs::Gauge* active_procs = nullptr;
    obs::Histogram* step_active = nullptr;
    obs::Histogram* balance_ns = nullptr;
  };
  obs::MetricsRegistry* metrics_ = nullptr;
  SystemMetrics m_;
  obs::TraceBuffer* trace_ = nullptr;
  CostLedger costs_;
  // Run counters are atomic so the async shards can commit concurrently
  // (relaxed adds; no ordering is derived from them).  The sequential
  // drivers pay nothing: an uncontended relaxed add is a plain add.
  AtomicCounter generated_;
  AtomicCounter consumed_;
  AtomicCounter balance_ops_;
  std::optional<unsigned> partner_radius_;
  bool post_step_check_ = false;
  // The balancing scratch matrices (compact (delta+1) x k deal buffers)
  // live in a thread_local inside balance_deal — run_async executes
  // balancing operations concurrently, one per shard thread — as does
  // the borrow-candidate scratch inside try_borrow.
  // Delta-maintained loads for the recorder path (see touch_load).
  std::vector<std::int64_t> loads_cache_;
  bool loads_cache_valid_ = false;
};

}  // namespace dlb
