// Dijkstra–Safra-style distributed termination (quiescence) detection.
//
// The asynchronous step engine has no barrier: shards exchange work
// through message rings, and "this epoch / this run is finished" is a
// *global* property — every shard passive and no message in flight.  A
// local check cannot decide it: a shard that looks idle may be about to
// receive a message that reactivates it.
//
// The classic fix (Dijkstra, Feijen, van Gasteren; Safra's refinement)
// circulates a token carrying a message-count accumulator and a color:
//
//   - every shard keeps a local counter (sends minus receives) and a
//     color; receiving a message blackens the shard,
//   - a shard forwards the token only while passive, adding its counter
//     and blackening the token if it is black itself, then turns white,
//   - the initiator (shard 0) declares quiescence when a full circle
//     returns a white token, the initiator is white, and the token count
//     plus the initiator's own counter is zero; otherwise it launches
//     another (white, zero-count) probe.
//
// The count proves no message is in flight; the color guards the race
// where a message overtakes the token within one circle (the receiver
// would look passive after its counter was already read).  Safety: a
// quiescent() verdict is never premature.  Liveness: once the system is
// truly quiescent, at most two further circles reach the verdict.
//
// Threading contract: each shard calls on_send / on_receive /
// forward_token only from its own thread, and touches the token payload
// only while holds_token() is true.  The token hand-off (a release store
// / acquire load on the holder index) transfers payload ownership, so
// the payload itself needs no synchronization.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace dlb {

class QuiescenceDetector {
 public:
  explicit QuiescenceDetector(std::uint32_t shards);

  std::uint32_t shards() const { return shards_; }

  /// Shard `s` sent `n` cross-shard messages (call from shard s only).
  void on_send(std::uint32_t s, std::uint64_t n = 1);

  /// Shard `s` received `n` cross-shard messages; blackens the shard.
  void on_receive(std::uint32_t s, std::uint64_t n = 1);

  /// True when shard `s` currently holds the token.  An acquire load:
  /// seeing the token also publishes every effect of the previous
  /// holders' work.
  bool holds_token(std::uint32_t s) const;

  /// Forwards the token from shard `s` (which must hold it and be
  /// passive).  At the initiator this first evaluates the completed
  /// circle and, when quiescence is proven, latches it and returns true
  /// (the token is retained); otherwise a fresh probe starts.  At every
  /// other shard it folds the local state into the token and passes it
  /// on; always returns false there.
  bool forward_token(std::uint32_t s);

  /// Latched verdict (acquire).
  bool quiescent() const {
    return quiescent_.load(std::memory_order_acquire);
  }

  /// Completed token circles so far (cumulative across resets).
  std::uint64_t circles() const {
    return circles_.load(std::memory_order_relaxed);
  }

  /// Re-arms the detector for another round (the epoch-fenced engine
  /// reuses one detector per epoch).  Only the initiator may call this,
  /// while holding the token, after a quiescent() verdict — at that
  /// point every counter is provably zero, so only the token state needs
  /// clearing.
  void reset();

 private:
  // Per-shard state, owner-thread only; padded so neighbouring shards
  // never false-share.
  struct alignas(64) ShardState {
    std::int64_t counter = 0;  // sends - receives
    bool black = false;
  };

  std::uint32_t shards_;
  std::vector<ShardState> local_;
  // Token payload: owned by the shard holding the token (see
  // holds_token / forward_token for the release/acquire hand-off).
  std::int64_t token_count_ = 0;
  bool token_black_ = false;
  bool probing_ = false;  // a circle is in flight / just returned
  std::atomic<std::uint32_t> token_at_{0};
  std::atomic<bool> quiescent_{false};
  std::atomic<std::uint64_t> circles_{0};
};

}  // namespace dlb
