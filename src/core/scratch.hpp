// Depth-indexed thread-local vector pool for the balancing hot paths.
//
// The partner draw (System::draw_partners) runs on every balancing
// operation, and balancing operations *nest*: balance → cancel_self_
// markers → maybe_balance → another balance, and resolve_empty_generator
// draws twice.  A single thread_local scratch vector would be clobbered
// by the inner operation while the outer one still reads it — so the
// pool hands out one warm vector per nesting depth.  After warmup the
// pool holds as many vectors as the deepest chain ever needed and no
// lease allocates again; each vector's capacity likewise plateaus at its
// depth's historical maximum (the BalanceScratch pattern of system.cpp,
// extended to re-entrant callers).
//
// Thread safety: the pool is thread_local — the sequential drivers use
// one, each async shard / parallel worker its own.  Leases are strictly
// LIFO by construction (stack scoping), which is what the depth index
// relies on.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace dlb::detail {

struct ScratchVecPool {
  // unique_ptr cells keep each vector's address stable while the pool
  // itself grows under an outstanding outer lease.
  std::vector<std::unique_ptr<std::vector<std::uint32_t>>> bufs;
  std::size_t depth = 0;
};

inline ScratchVecPool& scratch_vec_pool() {
  thread_local ScratchVecPool pool;
  return pool;
}

/// Pre-grows the calling thread's pool to `depth` vectors of at least
/// `capacity` elements each, so the first balancing chain on the thread
/// allocates nothing even if it nests (DESIGN.md §11).  Never shrinks.
inline void warm_scratch_vec_pool(std::size_t depth, std::size_t capacity) {
  ScratchVecPool& pool = scratch_vec_pool();
  while (pool.bufs.size() < depth)
    pool.bufs.push_back(std::make_unique<std::vector<std::uint32_t>>());
  for (auto& buf : pool.bufs)
    if (buf->capacity() < capacity) buf->reserve(capacity);
}

/// RAII lease of one cleared, warm std::vector<uint32_t> from the
/// calling thread's pool.  Allocates only when the current nesting depth
/// exceeds the thread's historical maximum.
class ScratchVecLease {
 public:
  ScratchVecLease() {
    ScratchVecPool& pool = scratch_vec_pool();
    if (pool.depth == pool.bufs.size())
      pool.bufs.push_back(std::make_unique<std::vector<std::uint32_t>>());
    vec_ = pool.bufs[pool.depth].get();
    ++pool.depth;
    vec_->clear();
  }
  ~ScratchVecLease() { --scratch_vec_pool().depth; }
  ScratchVecLease(const ScratchVecLease&) = delete;
  ScratchVecLease& operator=(const ScratchVecLease&) = delete;

  std::vector<std::uint32_t>& operator*() { return *vec_; }
  std::vector<std::uint32_t>* operator->() { return vec_; }

 private:
  std::vector<std::uint32_t>* vec_;
};

}  // namespace dlb::detail
