#include "core/system.hpp"

#include <algorithm>
#include <utility>

#include "core/scratch.hpp"
#include "core/snake.hpp"
#include "obs/alloc.hpp"
#include "obs/timer.hpp"
#include "support/check.hpp"
#include "workload/schedule.hpp"

namespace dlb {

namespace {

// try_borrow's candidate list, hoisted out of the function so
// warm_thread_scratch can pre-size it (one warm vector per thread — the
// sharded workers borrow concurrently).
std::vector<std::uint32_t>& borrow_candidates() {
  thread_local std::vector<std::uint32_t> candidates;
  return candidates;
}

}  // namespace

System::System(std::uint32_t processors, BalancerConfig config,
               std::uint64_t seed, const Topology* topology)
    : config_(config),
      topology_(topology),
      rng_(seed),
      costs_(topology) {
  config_.validate(processors);
  if (topology_ != nullptr) {
    DLB_REQUIRE(topology_->size() == processors,
                "topology size must match the processor count");
  }
  procs_.reserve(processors);
  for (std::uint32_t p = 0; p < processors; ++p)
    procs_.emplace_back(processors);
  if (config_.reserve_classes > 0)
    for (ProcessorState& st : procs_)
      st.ledger.reserve_active(config_.reserve_classes);
}

void System::attach_metrics(obs::MetricsRegistry* registry) {
  metrics_ = registry;
  if (registry == nullptr) {
    m_ = SystemMetrics{};
    return;
  }
  m_.generated = &registry->counter("system.generated");
  m_.consumed = &registry->counter("system.consumed");
  m_.balance_ops = &registry->counter("system.balance_ops");
  m_.packets_moved = &registry->counter("system.packets_moved");
  m_.borrow_total = &registry->counter("system.borrow.total");
  m_.borrow_remote = &registry->counter("system.borrow.remote");
  m_.borrow_fail = &registry->counter("system.borrow.fail");
  m_.decrease_sim = &registry->counter("system.borrow.decrease_sim");
  m_.settlements = &registry->counter("system.settlements");
  m_.active_procs = &registry->gauge("system.active_procs");
  m_.step_active = &registry->histogram("system.step.active");
  m_.balance_ns = &registry->histogram("system.balance_ns");
}

void System::note_active(std::size_t active) {
  if (metrics_ == nullptr) return;
  m_.active_procs->set(static_cast<std::int64_t>(active));
  m_.step_active->record(static_cast<std::uint64_t>(active));
}

void System::restrict_partners_to_neighborhood(unsigned radius) {
  DLB_REQUIRE(topology_ != nullptr,
              "neighborhood partner choice needs a topology");
  DLB_REQUIRE(radius >= 1, "neighborhood radius must be at least 1");
  partner_radius_ = radius;
}

const ProcessorState& System::processor(std::uint32_t p) const {
  DLB_REQUIRE(p < processors(), "processor id out of range");
  return procs_[p];
}

std::vector<std::int64_t> System::loads() const {
  std::vector<std::int64_t> out;
  loads_into(out);
  return out;
}

void System::loads_into(std::vector<std::int64_t>& out) const {
  out.resize(processors());
  for (std::uint32_t p = 0; p < processors(); ++p)
    out[p] = procs_[p].ledger.real_load();
}

std::int64_t System::load(std::uint32_t p) const {
  DLB_REQUIRE(p < processors(), "processor id out of range");
  return procs_[p].ledger.real_load();
}

std::int64_t System::total_load() const {
  std::int64_t total = 0;
  for (const auto& st : procs_) total += st.ledger.real_load();
  return total;
}

void System::run(const Workload& workload) {
  DLB_REQUIRE(workload.processors() == processors(),
              "workload size must match the system");
  ActiveSchedule schedule(workload);
  // Sampled events of the step's active processors (ascending).  Two
  // passes per step — sample everything, then apply — because the
  // reference loop draws all of a step's workload randomness before any
  // balancing randomness; interleaving would reorder the RNG stream.
  std::vector<std::pair<std::uint32_t, WorkEvent>> events;
  // Zero-alloc opt-in: pre-size to the bound (one event per active
  // processor) so the occupancy high-water mark never grows the vector
  // mid-run.  Gated — the O(n) reserve touches fresh pages, a real cost
  // for short runs on large systems.
  if (config_.reserve_classes > 0) events.reserve(processors());
  warm_thread_scratch();
  // Per-step allocation accounting (DESIGN.md §11): sampled only with
  // metrics attached, so the detached hot loop pays nothing.
  const bool track_allocs = metrics_ != nullptr;
  obs::AllocPhase alloc_phase;
  obs::AllocTally alloc_tally;
  if (track_allocs) alloc_phase.rebase();
  for (std::uint32_t t = 0; t < workload.horizon(); ++t) {
    obs::ScopedTimer step_span(nullptr, trace_, "step", "step", 0, t);
    const std::vector<ActiveSchedule::Entry>& entries = schedule.advance(t);
    note_active(entries.size());
    events.clear();
    for (const ActiveSchedule::Entry& e : entries) {
      WorkEvent ev;
      ev.generate = rng_.bernoulli(e.phase->generate_prob);
      ev.consume = rng_.bernoulli(e.phase->consume_prob);
      if (ev.generate || ev.consume) events.emplace_back(e.proc, ev);
    }
    for (const auto& [p, ev] : events) {
      if (ev.generate) generate(p, rng_);
      if (ev.consume) consume(p, rng_);
    }
    if (post_step_check_) check_invariants();
    emit_loads(t);
    if (track_allocs)
      alloc_tally.note(static_cast<std::int64_t>(t), alloc_phase.take());
  }
  if (track_allocs) obs::publish(*metrics_, "system", alloc_tally);
}

void System::run_reference(const Workload& workload) {
  DLB_REQUIRE(workload.processors() == processors(),
              "workload size must match the system");
  std::vector<WorkEvent> events(processors());
  for (std::uint32_t t = 0; t < workload.horizon(); ++t) {
    for (std::uint32_t p = 0; p < processors(); ++p)
      events[p] = workload.sample(p, t, rng_);
    step(t, events);
  }
}

void System::run(const Trace& trace) {
  DLB_REQUIRE(trace.processors() == processors(),
              "trace size must match the system");
  warm_thread_scratch();
  std::vector<WorkEvent> events(processors());
  for (std::uint32_t t = 0; t < trace.horizon(); ++t) {
    for (std::uint32_t p = 0; p < processors(); ++p)
      events[p] = trace.at(p, t);
    step(t, events);
  }
}

void System::step(std::uint32_t t, const std::vector<WorkEvent>& events) {
  DLB_REQUIRE(events.size() == processors(),
              "one event per processor required");
  for (std::uint32_t p = 0; p < processors(); ++p) {
    if (events[p].generate) generate(p, rng_);
    if (events[p].consume) consume(p, rng_);
  }
  if (post_step_check_) check_invariants();
  emit_loads(t);
}

void System::touch_load(std::uint32_t p) {
  if (loads_cache_valid_) loads_cache_[p] = procs_[p].ledger.real_load();
}

void System::emit_loads(std::uint32_t t) {
  if (recorder_ == nullptr) return;
  if (!loads_cache_valid_ || loads_cache_.size() != processors()) {
    // One full rebuild when a recorder first observes this system; from
    // then on touch_load keeps the snapshot current incrementally.
    loads_cache_.resize(processors());
    for (std::uint32_t p = 0; p < processors(); ++p)
      loads_cache_[p] = procs_[p].ledger.real_load();
    loads_cache_valid_ = true;
  }
  // Recorders only observe the loads for the duration of the call (see
  // Recorder::on_loads), so handing them the live cache is safe.
  recorder_->on_loads(t, loads_cache_);
}

void System::commit(const StepCounters& counters) {
  generated_.add(counters.generated);
  consumed_.add(counters.consumed);
  if (metrics_ != nullptr) {
    m_.generated->add(counters.generated);
    m_.consumed->add(counters.consumed);
  }
  for (std::uint64_t i = 0; i < counters.total_borrows; ++i)
    emit_borrow_event(BorrowEvent::TotalBorrow);
}

void System::generate(std::uint32_t p) { generate(p, rng_); }

void System::generate(std::uint32_t p, Rng& rng) {
  StepCounters counters;
  generate_packet(p, rng, counters);
  commit(counters);
  maybe_balance(p, rng);
}

void System::generate_packet(std::uint32_t p, Rng& rng,
                             StepCounters& counters) {
  DLB_REQUIRE(p < processors(), "processor id out of range");
  Ledger& ledger = procs_[p].ledger;
  if (ledger.borrowed_total() > 0) {
    // Appendix generate path: a new packet is booked against an
    // outstanding debt (the marker becomes a real packet of its class).
    // marked_classes() is ascending, matching the class order the dense
    // scan produced, so the drawn index maps to the same class.
    const std::vector<std::uint32_t>& marked = ledger.marked_classes();
    const std::uint32_t j =
        marked[static_cast<std::size_t>(rng.below(marked.size()))];
    ledger.repay_with_generation(j);
  } else {
    ledger.add_real(p, 1);
  }
  ++counters.generated;
  touch_load(p);
}

bool System::consume(std::uint32_t p) { return consume(p, rng_); }

bool System::consume(std::uint32_t p, Rng& rng) {
  StepCounters counters;
  const ConsumeLocal result = consume_packet(p, rng, counters);
  commit(counters);
  switch (result) {
    case ConsumeLocal::ConsumedOwn:
      maybe_balance(p, rng);
      return true;
    case ConsumeLocal::ConsumedBorrow:
      return true;
    case ConsumeLocal::Failed:
      return false;
    case ConsumeLocal::NeedsSettle:
      break;
  }
  // Capacity exhausted or every held class already carries a marker:
  // settle outstanding debts, then retry once.
  settle_debts(p, rng);
  StepCounters retry;
  const bool ok = try_borrow(p, rng, retry);
  commit(retry);
  return ok;
}

System::ConsumeLocal System::consume_packet(std::uint32_t p, Rng& rng,
                                            StepCounters& counters) {
  DLB_REQUIRE(p < processors(), "processor id out of range");
  Ledger& ledger = procs_[p].ledger;
  if (ledger.real_load() == 0) return ConsumeLocal::Failed;  // nothing held
  if (ledger.d(p) >= 1) {
    ledger.remove_real(p, 1);
    ++counters.consumed;
    touch_load(p);
    return ConsumeLocal::ConsumedOwn;
  }
  if (try_borrow(p, rng, counters)) return ConsumeLocal::ConsumedBorrow;
  // If there are no markers to settle nothing can free capacity (this
  // can only happen with borrow_cap == 0).
  if (ledger.borrowed_total() == 0) return ConsumeLocal::Failed;
  return ConsumeLocal::NeedsSettle;
}

bool System::try_borrow(std::uint32_t p, Rng& rng, StepCounters& counters) {
  Ledger& ledger = procs_[p].ledger;
  if (ledger.borrowed_total() >=
      static_cast<std::int64_t>(config_.borrow_cap))
    return false;
  // Candidates {j : d[j] > 0, b[j] == 0} enumerated over the active
  // classes only — ascending, like the dense scan, so the drawn index
  // maps to the same class.  Thread-local scratch: the sharded phase-1
  // workers borrow concurrently.
  std::vector<std::uint32_t>& candidates = borrow_candidates();
  candidates.clear();
  const auto& active = ledger.active_classes();
  // Track the ledger's reserved capacity, not the current occupancy —
  // an exact-fit reserve would reallocate on every occupancy high-water
  // mark for the rest of the run (the zero-alloc dribble).
  candidates.reserve(active.capacity());
  const auto& d_counts = ledger.active_d();
  const auto& b_counts = ledger.active_b();
  for (std::size_t i = 0; i < active.size(); ++i)
    if (d_counts[i] > 0 && b_counts[i] == 0)
      candidates.push_back(active[i]);
  if (candidates.empty()) return false;
  const std::uint32_t j = candidates[static_cast<std::size_t>(
      rng.below(candidates.size()))];
  ledger.borrow(j);
  ++counters.consumed;
  ++counters.total_borrows;
  touch_load(p);
  return true;
}

void System::settle_debts(std::uint32_t p, Rng& rng) {
  if (metrics_ != nullptr) m_.settlements->add(1);
  if (trace_ != nullptr) trace_->instant("settle", "borrow", 0, p);
  Ledger& ledger = procs_[p].ledger;
  const std::vector<std::uint32_t>& marked = ledger.marked_classes();
  DLB_ENSURE(!marked.empty(), "settle_debts without outstanding markers");
  const std::uint32_t j =
      marked[static_cast<std::size_t>(rng.below(marked.size()))];
  if (j == p) {
    // A marker of p's own class can be settled locally: the deferred
    // virtual decrease of class p is realized on the spot ([D6]).
    ledger.clear_marker(j);
    emit_borrow_event(BorrowEvent::DecreaseSim);
    maybe_balance(p, rng);
    return;
  }
  if (procs_[j].ledger.d(j) > 0) {
    remote_exchange(p, j, rng);
  } else {
    resolve_empty_generator(p, j, rng);
  }
}

void System::remote_exchange(std::uint32_t p, std::uint32_t j, Rng& rng) {
  emit_borrow_event(BorrowEvent::RemoteBorrow);
  Ledger& debtor = procs_[p].ledger;
  Ledger& generator = procs_[j].ledger;
  const std::int64_t x =
      std::min(generator.d(j), debtor.borrowed_total());
  DLB_ENSURE(x >= 1, "remote exchange with nothing to exchange");
  // x real class-j packets migrate from their generator to p, replacing
  // x of p's borrow markers (class j's markers first) — [D4].
  generator.remove_real(j, x);
  debtor.add_real(j, x);
  touch_load(p);
  touch_load(j);
  costs_.record_migration(j, p, static_cast<std::uint64_t>(x));
  costs_.record_net_migration(static_cast<std::uint64_t>(x));
  if (recorder_ != nullptr)
    recorder_->on_migration(j, p, static_cast<std::uint64_t>(x));
  std::int64_t to_clear = x;
  if (debtor.b(j) > 0) {
    debtor.clear_marker(j);
    --to_clear;
  }
  // Remaining markers are cleared smallest class first, the order the
  // dense ascending scan used.
  while (to_clear > 0) {
    const std::uint32_t k = debtor.first_marked_class();
    DLB_ENSURE(k < processors(), "failed to clear the exchanged markers");
    debtor.clear_marker(k);
    --to_clear;
  }
  // j's self-generated load dropped by x: simulate the workload decrease
  // (at most one balancing operation, as required by §4).
  emit_borrow_event(BorrowEvent::DecreaseSim);
  maybe_balance(j, rng);
}

void System::resolve_empty_generator(std::uint32_t p, std::uint32_t j,
                                     Rng& rng) {
  emit_borrow_event(BorrowEvent::BorrowFail);
  // [D5] The generator j holds none of its own packets.  It first runs a
  // balancing operation with delta random partners, which pulls class-j
  // packets (or markers) toward j.
  {
    detail::ScratchVecLease partners;
    draw_partners(j, rng, *partners);
    balance(j, *partners, rng);
  }
  if (procs_[j].ledger.d(j) > 0 && procs_[p].ledger.borrowed_total() > 0) {
    remote_exchange(p, j, rng);
    return;
  }
  // Still empty: a balancing operation initiated by p spreads p's load
  // and markers across a fresh random set, after which p can borrow
  // again (§4: "in any case processor i is allowed to borrow some new
  // load packets ... or has received some of his own load packets").
  detail::ScratchVecLease partners;
  draw_partners(p, rng, *partners);
  balance(p, *partners, rng);
}

void System::draw_partners(std::uint32_t initiator, Rng& rng,
                           std::vector<ProcId>& out) {
  const std::uint32_t n = processors();
  if (!partner_radius_.has_value()) {
    rng.sample_distinct_into(out, n, config_.delta, initiator);
    return;
  }
  // Locality ablation: partners from the topology ball around initiator.
  detail::ScratchVecLease ball;
  for (ProcId v = 0; v < n; ++v) {
    if (v == initiator) continue;
    if (topology_->distance(initiator, v) <= *partner_radius_)
      ball->push_back(v);
  }
  DLB_ENSURE(!ball->empty(), "neighborhood contains no candidates");
  if (ball->size() <= config_.delta) {
    out.assign(ball->begin(), ball->end());
    return;
  }
  detail::ScratchVecLease idx;
  rng.sample_distinct_into(*idx, static_cast<std::uint32_t>(ball->size()),
                           config_.delta,
                           static_cast<std::uint32_t>(ball->size() + 1));
  out.clear();
  out.reserve(config_.delta);
  for (std::uint32_t k : *idx) out.push_back((*ball)[k]);
}

bool System::trigger_fires(std::uint32_t p) const {
  const ProcessorState& st = procs_[p];
  const std::int64_t d_now = st.ledger.d(p);
  const auto d_self = static_cast<double>(d_now);
  const auto old = static_cast<double>(st.l_old);
  // [D1] factor-f drift triggers with strict-change guards so f == 1 (or
  // an unchanged load) cannot retrigger immediately after a balance.
  const bool grew =
      d_now > st.l_old && d_self >= config_.f * old && d_now >= 1;
  const bool shrank =
      d_now < st.l_old && st.l_old >= 1 && d_self <= old / config_.f;
  return grew || shrank;
}

void System::maybe_balance(std::uint32_t p, Rng& rng) {
  if (!trigger_fires(p)) return;
  detail::ScratchVecLease partners;
  draw_partners(p, rng, *partners);
  balance(p, *partners, rng);
}

namespace {

// Streams the compact deal's per-column flows into the cost ledger and
// recorder, and accumulates the per-row load deltas for the net-flow
// accounting — the replacement for diffing a full before_d matrix copy.
class BalanceFlowSink final : public SnakeFlowSink {
 public:
  BalanceFlowSink(CostLedger& costs, Recorder* recorder,
                  const std::vector<ProcId>& participants,
                  std::vector<std::int64_t>& row_delta)
      : costs_(costs),
        recorder_(recorder),
        participants_(participants),
        row_delta_(row_delta) {}

  void on_flow(std::size_t col, std::size_t from, std::size_t to,
               std::int64_t amount) override {
    (void)col;
    costs_.record_migration(participants_[from], participants_[to],
                            static_cast<std::uint64_t>(amount));
    if (recorder_ != nullptr)
      recorder_->on_migration(participants_[from], participants_[to],
                              static_cast<std::uint64_t>(amount));
    moves_ += static_cast<std::uint64_t>(amount);
    row_delta_[from] -= amount;
    row_delta_[to] += amount;
  }

  // Pair attribution is only needed for hop weighting and the migration
  // recorder; without either, the kernel reports whole columns at once
  // (same totals, far fewer virtual calls and no matching pass).
  bool wants_pair_flows() const override {
    return recorder_ != nullptr || costs_.hop_weighted();
  }

  void on_column_moved(std::size_t col, std::int64_t moved,
                       const std::int64_t* delta_per_row) override {
    (void)col;
    moves_ += static_cast<std::uint64_t>(moved);
    bulk_moves_ += static_cast<std::uint64_t>(moved);
    for (std::size_t r = 0; r < row_delta_.size(); ++r)
      row_delta_[r] += delta_per_row[r];
  }

  /// Flushes aggregate-mode gross traffic into the cost ledger (no-op in
  /// pair mode, where on_flow recorded each amount already).
  void flush() {
    if (bulk_moves_ > 0) {
      costs_.record_migration_bulk(bulk_moves_);
      bulk_moves_ = 0;
    }
  }

  std::uint64_t moves() const { return moves_; }

 private:
  CostLedger& costs_;
  Recorder* recorder_;
  const std::vector<ProcId>& participants_;
  std::vector<std::int64_t>& row_delta_;
  std::uint64_t moves_ = 0;
  std::uint64_t bulk_moves_ = 0;
};

// Scratch buffers reused across balancing operations.  A balancing
// operation works on compact row-major (delta+1) x k matrices whose k
// columns are the union of the participants' active classes, making its
// cost O((delta+1) * k) rather than O((delta+1) * n).  One warm buffer
// set per thread: the sequential drivers use one, the async shards one
// each (their balancing operations run concurrently).  balance_deal
// never re-enters itself — recursion happens only through the follow-up
// cancels outside it — so a single per-thread set suffices.
struct BalanceScratch {
  std::vector<ProcId> participants;
  std::vector<std::int64_t> d;
  std::vector<std::int64_t> b;
  std::vector<std::uint32_t> union_classes;
  std::vector<std::uint32_t> union_scratch;
  std::vector<std::size_t> excluded_cols;
  std::vector<std::int64_t> row_delta;

  // Reserves every buffer to its worst case for an m-participant deal
  // over n classes: the union holds at most n classes, its merge buffer
  // peaks at the two inputs' combined size (≤ 2n), and the matrices at
  // m x n.  Growing to the bound up front (instead of tracking the
  // occupancy high-water mark) is what makes a deal allocation-free for
  // the rest of the run even while class occupancy is still rising —
  // the zero-alloc opt-in (reserve_classes) pays it once per thread.
  void reserve_bounds(std::size_t m, std::size_t n) {
    participants.reserve(m);
    d.reserve(m * n);
    b.reserve(m * n);
    // Both 2n, not n: the merge swaps the two buffers, so either one can
    // end up holding the (≤ 2n) pre-dedup merge output on a later call.
    union_classes.reserve(2 * n);
    union_scratch.reserve(2 * n);
    excluded_cols.reserve(n);
    row_delta.reserve(m);
  }
};

BalanceScratch& balance_scratch() {
  thread_local BalanceScratch scratch;
  return scratch;
}

}  // namespace

void System::warm_thread_scratch() {
  if (config_.reserve_classes == 0) return;
  const std::size_t m = static_cast<std::size_t>(config_.delta) + 1;
  balance_scratch().reserve_bounds(m, processors());
  borrow_candidates().reserve(config_.reserve_classes);
  // The merge peaks at old entries + dealt columns, each bounded by the
  // per-ledger reserve.
  Ledger::warm_thread_scratch(
      2 * static_cast<std::size_t>(config_.reserve_classes));
  snake_warm_thread_scratch(m);
  // Depth 8 covers every balance → cancel → re-balance chain seen in
  // practice; a deeper chain merely re-warms lazily at that depth.
  detail::warm_scratch_vec_pool(8, config_.delta);
}

void System::balance(std::uint32_t initiator,
                     const std::vector<ProcId>& partners, Rng& rng) {
  balance_deal(initiator, partners, rng, costs_, nullptr);
  // [D6] markers of a participant's own class are settled on the spot.
  cancel_self_markers(initiator, rng);
  for (ProcId q : partners) cancel_self_markers(q, rng);
}

void System::balance_deal(std::uint32_t initiator,
                          const std::vector<ProcId>& partners, Rng& rng,
                          CostLedger& costs, std::vector<ProcId>* cancel_due,
                          std::uint32_t tid) {
  obs::ScopedTimer balance_span(m_.balance_ns, trace_, "balance_op",
                                "balance", tid, initiator);
  const std::uint32_t n = processors();
  BalanceScratch& scratch = balance_scratch();
  if (config_.reserve_classes > 0)
    scratch.reserve_bounds(partners.size() + 1, n);
  std::vector<ProcId>& participants = scratch.participants;
  participants.clear();
  participants.reserve(partners.size() + 1);
  participants.push_back(initiator);
  for (ProcId q : partners) {
    DLB_REQUIRE(q < n && q != initiator, "invalid balancing partner");
    participants.push_back(q);
  }
  const std::size_t m = participants.size();
  std::vector<std::uint32_t>& union_classes = scratch.union_classes;
  std::vector<std::uint32_t>& union_scratch = scratch.union_scratch;
  std::vector<std::int64_t>& scratch_d = scratch.d;
  std::vector<std::int64_t>& scratch_b = scratch.b;

  // Union of the participants' active classes, ascending.  Classes
  // outside the union are zero in every participant's ledger: dealing
  // them would move nothing and never advance the snake pointer, so
  // restricting the deal to the union is bit-identical to dealing over
  // all n classes.
  union_classes.clear();
  for (std::size_t r = 0; r < m; ++r) {
    const Ledger& ledger = procs_[participants[r]].ledger;
    const auto& active = ledger.active_classes();
    // The gather below streams each participant's count vectors; their
    // first lines are cold (random partners), so start the loads now and
    // let the union merge hide the latency.
    __builtin_prefetch(ledger.active_d().data());
    __builtin_prefetch(ledger.active_b().data());
    if (r == 0) {
      union_classes.assign(active.begin(), active.end());
      continue;
    }
    // Each active list is already sorted, so the union is a linear merge
    // into a pre-sized buffer (no per-element push_back bookkeeping).
    union_scratch.resize(union_classes.size() + active.size());
    const auto merged_end =
        std::set_union(union_classes.begin(), union_classes.end(),
                       active.begin(), active.end(), union_scratch.begin());
    union_scratch.resize(
        static_cast<std::size_t>(merged_end - union_scratch.begin()));
    union_classes.swap(union_scratch);
  }
  const std::size_t k = union_classes.size();

  // Gather the participants' ledgers into the compact scratch matrices.
  // Each participant's compact storage is copied in one sequential pass
  // over its parallel count vectors — the rest of the scratch row is
  // zero-filled sequentially; no scattered loads anywhere.
  bool any_markers = false;
  for (std::size_t r = 0; r < m && !any_markers; ++r)
    any_markers = procs_[participants[r]].ledger.borrowed_total() > 0;
  scratch_d.assign(m * k, 0);
  scratch_b.assign(m * k, 0);
  for (std::size_t r = 0; r < m; ++r) {
    const Ledger& ledger = procs_[participants[r]].ledger;
    const auto& active = ledger.active_classes();
    const auto& d_counts = ledger.active_d();
    const auto& b_counts = ledger.active_b();
    std::size_t c = 0;
    for (std::size_t i = 0; i < active.size(); ++i) {
      // active[i] is in the union by construction.
      while (union_classes[c] < active[i]) ++c;
      scratch_d[r * k + c] = d_counts[i];
      // Without markers anywhere, every b count is zero — the zero fill
      // above already wrote the row.
      if (any_markers) scratch_b[r * k + c] = b_counts[i];
    }
  }


  // [D7] analysis mode: a non-initiating participant's own class is dealt
  // only among the other participants.
  SnakeCompactOptions opts;
  opts.start = static_cast<std::size_t>(rng.below(m));
  if (config_.analysis_mode) {
    scratch.excluded_cols.assign(k, static_cast<std::size_t>(-1));
    for (std::size_t r = 0; r < m; ++r) {
      if (participants[r] == initiator) continue;
      const auto it = std::lower_bound(union_classes.begin(),
                                       union_classes.end(), participants[r]);
      if (it != union_classes.end() && *it == participants[r])
        scratch.excluded_cols[static_cast<std::size_t>(
            it - union_classes.begin())] = r;
    }
    opts.excluded_row_per_column = scratch.excluded_cols.data();
  }

  scratch.row_delta.assign(m, 0);
  BalanceFlowSink flows(costs, recorder_, participants, scratch.row_delta);
  opts.flows = &flows;
  SnakeCompactOptions marker_opts = opts;
  marker_opts.flows = nullptr;  // marker moves are not migration traffic
  marker_opts.start = snake_redistribute(scratch_d.data(), m, k, opts);
  flows.flush();
  // Marker deal: skipped when no participant holds a marker — the matrix
  // is all zero, so the deal would move nothing, report no flows and
  // leave the pointer untouched (its return value is discarded anyway).
  if (any_markers) snake_redistribute(scratch_b.data(), m, k, marker_opts);

  // Net physical flow: positive row-total changes (what a label-free
  // implementation would actually ship), accumulated from the flows.
  std::uint64_t net_moves = 0;
  for (std::size_t r = 0; r < m; ++r)
    if (scratch.row_delta[r] > 0)
      net_moves += static_cast<std::uint64_t>(scratch.row_delta[r]);
  costs.record_net_migration(net_moves);

  // Write back; every participant's local clock ticks and its trigger
  // baseline resets (§4: an operation counts as delta+1 independent
  // operations initiated by each participant).
  for (std::size_t r = 0; r < m; ++r) {
    ProcessorState& st = procs_[participants[r]];
    // The union covers every participant's active classes by
    // construction, so the cheap rebuild path applies (no merge).
    st.ledger.replace_dealt(union_classes.data(), k,
                            scratch_d.data() + r * k,
                            scratch_b.data() + r * k);
    st.l_old = st.ledger.d(participants[r]);
    ++st.local_time;
    touch_load(participants[r]);
    // [D6] due: the deal left this participant holding markers of its
    // own class.  The sequential wrapper cancels them right here; the
    // async engine routes a cancel to the participant's owner shard.
    if (cancel_due != nullptr && st.ledger.b(participants[r]) > 0)
      cancel_due->push_back(participants[r]);
  }

  balance_ops_.add(1);
  costs.record_operation(initiator, partners.size());
  if (metrics_ != nullptr) {
    m_.balance_ops->add(1);
    m_.packets_moved->add(flows.moves());
  }
  if (recorder_ != nullptr)
    recorder_->on_balance_op(initiator, partners.size(), flows.moves());
}

void System::cancel_self_markers(std::uint32_t p, Rng& rng) {
  Ledger& ledger = procs_[p].ledger;
  if (ledger.b(p) == 0) return;
  while (ledger.b(p) > 0) ledger.clear_marker(p);
  emit_borrow_event(BorrowEvent::DecreaseSim);
  maybe_balance(p, rng);
}

void System::force_balance(std::uint32_t p) {
  DLB_REQUIRE(p < processors(), "processor id out of range");
  detail::ScratchVecLease partners;
  draw_partners(p, rng_, *partners);
  balance(p, *partners, rng_);
}

void System::emit_borrow_event(BorrowEvent event) {
  if (metrics_ != nullptr) {
    switch (event) {
      case BorrowEvent::TotalBorrow:
        m_.borrow_total->add(1);
        break;
      case BorrowEvent::RemoteBorrow:
        m_.borrow_remote->add(1);
        break;
      case BorrowEvent::BorrowFail:
        m_.borrow_fail->add(1);
        break;
      case BorrowEvent::DecreaseSim:
        m_.decrease_sim->add(1);
        break;
    }
  }
  if (recorder_ != nullptr) recorder_->on_borrow_event(event);
}

void System::check_invariants() const {
  std::int64_t total = 0;
  for (std::uint32_t p = 0; p < processors(); ++p) {
    procs_[p].ledger.check(config_.borrow_cap);
    for (std::uint32_t j : procs_[p].ledger.marked_classes()) {
      DLB_ENSURE(procs_[p].ledger.b(j) <= 1,
                 "more than one marker per class");
    }
    total += procs_[p].ledger.real_load();
  }
  DLB_ENSURE(total == static_cast<std::int64_t>(generated_.get()) -
                          static_cast<std::int64_t>(consumed_.get()),
             "packet conservation violated");
}

}  // namespace dlb
