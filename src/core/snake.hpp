// Snake-like redistribution (the appendix's "snake like distribution of
// packets").
//
// A balancing operation must reassign the participants' packets so that,
// simultaneously,
//   (S1) for every load class j the per-participant counts differ by <= 1,
//   (S2) the per-participant row totals differ by <= 1.
// Dealing each class's remainder with a *circulating* pointer achieves
// both: concatenated over classes, the remainder assignments form one
// round-robin deal of R = sum_j r_j extra packets over m participants, so
// each participant receives floor(R/m) or ceil(R/m) extras — which is
// exactly (S2), while each class individually satisfies (S1) by
// construction.  (Property-tested in tests/core/snake_test.cpp.)
#pragma once

#include <cstdint>
#include <vector>

namespace dlb {

/// Options for snake_redistribute.
struct SnakeOptions {
  /// Initial dealing position in [0, participants).  Callers pass a
  /// random start so the remainder packets do not systematically favor
  /// low-indexed participants.
  std::size_t start = 0;

  /// [D7] Analysis-mode exclusion: if non-null, entry j holds the index
  /// (into the participant array) of a participant excluded from the
  /// dealing of class j — its class-j packets stay put and it receives
  /// none — or SIZE_MAX for "no exclusion".  With exclusions active, (S2)
  /// is not guaranteed (the §4 proof does not need it for excluded
  /// classes).
  const std::vector<std::size_t>* excluded_participant_per_class = nullptr;
};

/// Redistributes counts[p][j] (participant p, class j) in place subject to
/// (S1)/(S2).  All rows must have equal length; counts must be
/// non-negative.  Returns the final dealing pointer (useful when chaining
/// two matrices, e.g. real packets then borrow markers, so their combined
/// deal stays balanced).
std::size_t snake_redistribute(std::vector<std::vector<std::int64_t>>& counts,
                               const SnakeOptions& options = {});

/// Number of packets that changed owner between `before` and `after`
/// (counted at the receiving side); used for migration cost accounting.
std::uint64_t count_moves(const std::vector<std::vector<std::int64_t>>& before,
                          const std::vector<std::vector<std::int64_t>>& after);

}  // namespace dlb
