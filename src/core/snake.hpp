// Snake-like redistribution (the appendix's "snake like distribution of
// packets").
//
// A balancing operation must reassign the participants' packets so that,
// simultaneously,
//   (S1) for every load class j the per-participant counts differ by <= 1,
//   (S2) the per-participant row totals differ by <= 1.
// Dealing each class's remainder with a *circulating* pointer achieves
// both: concatenated over classes, the remainder assignments form one
// round-robin deal of R = sum_j r_j extra packets over m participants, so
// each participant receives floor(R/m) or ceil(R/m) extras — which is
// exactly (S2), while each class individually satisfies (S1) by
// construction.  (Property-tested in tests/core/snake_test.cpp.)
//
// Two entry points share that dealing logic:
//   * the dense overload takes an m x n matrix over every load class —
//     the reference implementation, kept for tests and small callers;
//   * the compact overload takes a flat row-major m x k matrix whose k
//     columns are an arbitrary (ascending) subset of the classes — the
//     balancing hot path passes only the classes actually populated by
//     some participant.  A column that is all zero never advances the
//     circulating pointer (its pool and remainder are zero), so dealing
//     over the nonzero subset is bit-identical to dealing over all n
//     classes.
#pragma once

#include <cstdint>
#include <vector>

namespace dlb {

/// Options for snake_redistribute.
struct SnakeOptions {
  /// Initial dealing position in [0, participants).  Callers pass a
  /// random start so the remainder packets do not systematically favor
  /// low-indexed participants.
  std::size_t start = 0;

  /// [D7] Analysis-mode exclusion: if non-null, entry j holds the index
  /// (into the participant array) of a participant excluded from the
  /// dealing of class j — its class-j packets stay put and it receives
  /// none — or SIZE_MAX for "no exclusion".  With exclusions active, (S2)
  /// is not guaranteed (the §4 proof does not need it for excluded
  /// classes).
  const std::vector<std::size_t>* excluded_participant_per_class = nullptr;
};

/// Receives the per-column packet flows of a compact deal: after each
/// column is dealt, its surplus rows are greedily matched (both sides in
/// ascending row order) against its deficit rows and each resulting flow
/// is reported once.  This is the delta accounting that replaced the
/// before/after matrix diff (count_moves): the flows are computed during
/// the deal, so callers need no pre-deal copy of the matrix.
class SnakeFlowSink {
 public:
  virtual ~SnakeFlowSink() = default;
  /// `amount` (> 0) packets of column `col`'s class move from participant
  /// row `from` to participant row `to`.
  virtual void on_flow(std::size_t col, std::size_t from, std::size_t to,
                       std::int64_t amount) = 0;

  /// When false, the kernel skips the greedy surplus/deficit matching and
  /// reports each changed column once through on_column_moved instead of
  /// per-pair on_flow calls.  Sinks that only aggregate totals (no
  /// per-pair attribution: no migration recorder, no hop-weighted
  /// topology) opt out of the matching this way — the aggregate numbers
  /// are identical because every matched flow decomposes into the same
  /// per-row deltas.
  virtual bool wants_pair_flows() const { return true; }

  /// Aggregate report for one dealt column (only when wants_pair_flows()
  /// is false and something moved): `moved` (> 0) is the column's total
  /// surplus = sum of the matched-flow amounts; delta_per_row[p] is the
  /// signed count change of participant row p (sums to zero).
  virtual void on_column_moved(std::size_t col, std::int64_t moved,
                               const std::int64_t* delta_per_row) {
    (void)col;
    (void)moved;
    (void)delta_per_row;
  }
};

/// Options for the compact overload.
struct SnakeCompactOptions {
  /// Initial dealing position in [0, rows).
  std::size_t start = 0;

  /// [D7] per-column exclusion, SIZE_MAX = none; length = columns when
  /// non-null.
  const std::size_t* excluded_row_per_column = nullptr;

  /// Optional flow observer (delta accounting during the deal).
  SnakeFlowSink* flows = nullptr;
};

/// Redistributes counts[p][j] (participant p, class j) in place subject to
/// (S1)/(S2).  All rows must have equal length; counts must be
/// non-negative.  Returns the final dealing pointer (useful when chaining
/// two matrices, e.g. real packets then borrow markers, so their combined
/// deal stays balanced).
std::size_t snake_redistribute(std::vector<std::vector<std::int64_t>>& counts,
                               const SnakeOptions& options = {});

/// Compact overload: `counts` is a flat row-major `rows` x `columns`
/// scratch matrix whose columns are the active-class subset.  Deals in
/// place, reports flows through options.flows (if set), and returns the
/// final dealing pointer.  Bit-identical to the dense overload restricted
/// to the nonzero columns (see the header comment).
std::size_t snake_redistribute(std::int64_t* counts, std::size_t rows,
                               std::size_t columns,
                               const SnakeCompactOptions& options);

/// Pre-sizes the calling thread's flow-accounting scratch for deals with
/// up to `rows` participants, so the thread's first flow-reporting deal
/// allocates nothing (DESIGN.md §11).  Never shrinks.
void snake_warm_thread_scratch(std::size_t rows);

}  // namespace dlb
