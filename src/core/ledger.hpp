// Per-processor packet ledger: the d_{i,j} / b_{i,j} bookkeeping of §4.
//
// Every load packet carries the identity of the processor that generated
// it (its *load class*).  Processor i's ledger records
//   d[j] — real packets of class j currently held by i, and
//   b[j] — packets of class j that i has consumed on credit ("borrowed"),
//          i.e. virtual markers that keep class j's total invariant.
// The reduction of the n-processor model to n independent one-processor
// models (and hence Theorem 4) rests on two ledger invariants that this
// class maintains and can verify:
//   (L1) real load of i  ==  sum_j d[j]        (tracked incrementally)
//   (L2) sum_j b[j] <= C  and  b[j] in {0,1}   (the borrow cap)
//
// The dense d_/b_ arrays are the source of truth; alongside them the
// ledger maintains two sparse indexes so the balancing hot path never
// scans all n classes:
//   (L3) active_classes() is exactly {j : d[j] > 0 || b[j] > 0}, sorted
//        ascending, and
//   (L4) marked_classes() is exactly {j : b[j] > 0}, sorted ascending
//        (at most C entries by L2).
// Ascending order matters: callers draw uniformly from these lists, and
// the pre-sparse-path implementation enumerated candidates by scanning
// j = 0..n-1 — keeping the same order keeps the RNG-to-class mapping (and
// therefore the whole simulation) bit-identical.
#pragma once

#include <cstdint>
#include <vector>

namespace dlb {

class Ledger {
 public:
  /// Creates an empty ledger over `classes` load classes (= network size).
  explicit Ledger(std::uint32_t classes);

  std::uint32_t classes() const {
    return static_cast<std::uint32_t>(d_.size());
  }

  std::int64_t d(std::uint32_t j) const { return d_[j]; }
  std::int64_t b(std::uint32_t j) const { return b_[j]; }

  /// Real load: sum_j d[j] (O(1), maintained incrementally).
  std::int64_t real_load() const { return real_; }
  /// Total borrow markers: sum_j b[j] (O(1)).
  std::int64_t borrowed_total() const { return borrowed_; }
  /// Virtual load: real + borrowed — the quantity the §3/§4 analysis
  /// bounds.
  std::int64_t virtual_load() const { return real_ + borrowed_; }

  /// Classes with d[j] > 0 || b[j] > 0, ascending (L3).  The reference is
  /// invalidated by any mutating call.
  const std::vector<std::uint32_t>& active_classes() const { return active_; }

  /// Classes with b[j] > 0, ascending (L4); at most C entries.  The
  /// reference is invalidated by any mutating call.
  const std::vector<std::uint32_t>& marked_classes() const { return marked_; }

  /// Adds `count` real packets of class j.
  void add_real(std::uint32_t j, std::int64_t count);
  /// Removes `count` real packets of class j (must be available).
  void remove_real(std::uint32_t j, std::int64_t count);

  /// Converts one real class-j packet into a borrow marker: the packet is
  /// consumed, class j's virtual total is preserved.  Requires d[j] > 0
  /// and b[j] == 0.
  void borrow(std::uint32_t j);

  /// Clears one borrow marker of class j (debt settled).
  void clear_marker(std::uint32_t j);

  /// Converts one borrow marker of class j back into a real packet
  /// (the appendix's generate path: a newly generated packet is booked
  /// against an outstanding debt).  Requires b[j] > 0.
  void repay_with_generation(std::uint32_t j);

  /// Sets d[j] to an absolute value (balancing write-back).  O(A) in the
  /// active-class count; totals and indexes are maintained incrementally.
  void set_d(std::uint32_t j, std::int64_t value);

  /// Sets b[j] to an absolute value in {0, 1} (balancing write-back).
  void set_b(std::uint32_t j, std::int64_t value);

  /// Batch write-back for a balancing operation: assigns
  /// d[cls[c]] = d_vals[c] and b[cls[c]] = b_vals[c] for c in [0, k).
  /// `cls` must be sorted ascending with no duplicates; d values
  /// non-negative, b values in {0, 1}.  The sparse indexes are updated in
  /// one merge pass — O(A + k) total, instead of the O(A) per-class cost
  /// of k individual set_d/set_b calls.
  void apply_dealt(const std::uint32_t* cls, std::size_t k,
                   const std::int64_t* d_vals, const std::int64_t* b_vals);

  /// Wholesale replacement (checkpoint restore, tests).  Vectors must
  /// have size classes(); entries must be non-negative and new b entries
  /// in {0,1}.  O(n): totals and sparse indexes are rebuilt.
  void replace(std::vector<std::int64_t> d_new,
               std::vector<std::int64_t> b_new);

  /// Smallest class index with b[j] > 0, or classes() if none.  O(1).
  std::uint32_t first_marked_class() const;

  /// Verifies L1-L4 and non-negativity; throws contract_error on failure.
  void check(std::uint32_t borrow_cap) const;

  const std::vector<std::int64_t>& d_vector() const { return d_; }
  const std::vector<std::int64_t>& b_vector() const { return b_; }

 private:
  bool is_active(std::uint32_t j) const { return d_[j] > 0 || b_[j] > 0; }
  // Reconciles j's membership in active_ with the dense arrays; `was`
  // is j's activity before the mutation.
  void update_active(std::uint32_t j, bool was);
  void rebuild_indexes();

  std::vector<std::int64_t> d_;
  std::vector<std::int64_t> b_;
  std::int64_t real_ = 0;
  std::int64_t borrowed_ = 0;
  std::vector<std::uint32_t> active_;
  std::vector<std::uint32_t> marked_;
  // Merge buffers for apply_dealt (kept to avoid per-call allocation).
  std::vector<std::uint32_t> active_merge_;
  std::vector<std::uint32_t> marked_merge_;
};

}  // namespace dlb
