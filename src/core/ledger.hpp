// Per-processor packet ledger: the d_{i,j} / b_{i,j} bookkeeping of §4.
//
// Every load packet carries the identity of the processor that generated
// it (its *load class*).  Processor i's ledger records
//   d[j] — real packets of class j currently held by i, and
//   b[j] — packets of class j that i has consumed on credit ("borrowed"),
//          i.e. virtual markers that keep class j's total invariant.
// The reduction of the n-processor model to n independent one-processor
// models (and hence Theorem 4) rests on two ledger invariants that this
// class maintains and can verify:
//   (L1) real load of i  ==  sum_j d[j]        (tracked incrementally)
//   (L2) sum_j b[j] <= C  and  b[j] in {0,1}   (the borrow cap)
#pragma once

#include <cstdint>
#include <vector>

namespace dlb {

class Ledger {
 public:
  /// Creates an empty ledger over `classes` load classes (= network size).
  explicit Ledger(std::uint32_t classes);

  std::uint32_t classes() const {
    return static_cast<std::uint32_t>(d_.size());
  }

  std::int64_t d(std::uint32_t j) const { return d_[j]; }
  std::int64_t b(std::uint32_t j) const { return b_[j]; }

  /// Real load: sum_j d[j] (O(1), maintained incrementally).
  std::int64_t real_load() const { return real_; }
  /// Total borrow markers: sum_j b[j] (O(1)).
  std::int64_t borrowed_total() const { return borrowed_; }
  /// Virtual load: real + borrowed — the quantity the §3/§4 analysis
  /// bounds.
  std::int64_t virtual_load() const { return real_ + borrowed_; }

  /// Adds `count` real packets of class j.
  void add_real(std::uint32_t j, std::int64_t count);
  /// Removes `count` real packets of class j (must be available).
  void remove_real(std::uint32_t j, std::int64_t count);

  /// Converts one real class-j packet into a borrow marker: the packet is
  /// consumed, class j's virtual total is preserved.  Requires d[j] > 0
  /// and b[j] == 0.
  void borrow(std::uint32_t j);

  /// Clears one borrow marker of class j (debt settled).
  void clear_marker(std::uint32_t j);

  /// Converts one borrow marker of class j back into a real packet
  /// (the appendix's generate path: a newly generated packet is booked
  /// against an outstanding debt).  Requires b[j] > 0.
  void repay_with_generation(std::uint32_t j);

  /// Wholesale replacement used by the balancing operation's snake
  /// redistribution.  Vectors must have size classes(); entries must be
  /// non-negative and new b entries in {0,1}... b entries may exceed 1
  /// transiently only if the previous state had them (never, by L2), so
  /// {0,1} is enforced.
  void replace(std::vector<std::int64_t> d_new,
               std::vector<std::int64_t> b_new);

  /// Smallest class index with b[j] > 0, or classes() if none.
  std::uint32_t first_marked_class() const;

  /// Verifies L1/L2 and non-negativity; throws contract_error on failure.
  void check(std::uint32_t borrow_cap) const;

  const std::vector<std::int64_t>& d_vector() const { return d_; }
  const std::vector<std::int64_t>& b_vector() const { return b_; }

 private:
  std::vector<std::int64_t> d_;
  std::vector<std::int64_t> b_;
  std::int64_t real_ = 0;
  std::int64_t borrowed_ = 0;
};

}  // namespace dlb
