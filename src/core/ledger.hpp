// Per-processor packet ledger: the d_{i,j} / b_{i,j} bookkeeping of §4.
//
// Every load packet carries the identity of the processor that generated
// it (its *load class*).  Processor i's ledger records
//   d[j] — real packets of class j currently held by i, and
//   b[j] — packets of class j that i has consumed on credit ("borrowed"),
//          i.e. virtual markers that keep class j's total invariant.
// The reduction of the n-processor model to n independent one-processor
// models (and hence Theorem 4) rests on two ledger invariants that this
// class maintains and can verify:
//   (L1) real load of i  ==  sum_j d[j]        (tracked incrementally)
//   (L2) sum_j b[j] <= C  and  b[j] in {0,1}   (the borrow cap)
//
// Storage is *sparse*: the ledger holds no O(n) arrays.  The source of
// truth is three parallel vectors keyed by the sorted active-class list —
// active_[i] is a class with a nonzero ledger entry, d_counts_[i] and
// b_counts_[i] are its counts — plus the marked-class list.  A ledger
// therefore costs O(A) memory in the number A of active classes, not
// O(n); with every processor holding a handful of classes the whole
// n-processor simulator is O(n·A) bytes instead of the former O(n²)
// (which at n = 65536 would be ~64 GB of dense arrays).  Structural
// invariants of the compact form:
//   (S1) active_ is strictly ascending and every listed class satisfies
//        d > 0 || b > 0 — no zero entries are stored;
//   (S2) d_counts_/b_counts_ have exactly one slot per active_ entry and
//        hold non-negative counts.
// The derived views keep their PR-1 contracts:
//   (L3) active_classes() is exactly {j : d[j] > 0 || b[j] > 0}, sorted
//        ascending, and
//   (L4) marked_classes() is exactly {j : b[j] > 0}, sorted ascending
//        (at most C entries by L2).
// Ascending order matters: callers draw uniformly from these lists, and
// the original dense implementation enumerated candidates by scanning
// j = 0..n-1 — keeping the same order keeps the RNG-to-class mapping (and
// therefore the whole simulation) bit-identical.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dlb {

class Ledger {
 public:
  /// Creates an empty ledger over `classes` load classes (= network size).
  /// O(1) memory regardless of `classes`.
  explicit Ledger(std::uint32_t classes);

  std::uint32_t classes() const { return classes_; }

  /// Count lookups by class: O(log A) binary search in the active list;
  /// classes without an entry are zero.
  std::int64_t d(std::uint32_t j) const;
  std::int64_t b(std::uint32_t j) const;

  /// Real load: sum_j d[j] (O(1), maintained incrementally).
  std::int64_t real_load() const { return real_; }
  /// Total borrow markers: sum_j b[j] (O(1)).
  std::int64_t borrowed_total() const { return borrowed_; }
  /// Virtual load: real + borrowed — the quantity the §3/§4 analysis
  /// bounds.
  std::int64_t virtual_load() const { return real_ + borrowed_; }

  /// Classes with d[j] > 0 || b[j] > 0, ascending (L3).  The reference is
  /// invalidated by any mutating call.
  const std::vector<std::uint32_t>& active_classes() const { return active_; }

  /// Per-class counts parallel to active_classes(): active_d()[i] is
  /// d[active_classes()[i]], active_b()[i] is b[active_classes()[i]].
  /// Lets bulk readers (the balance gather) walk the compact storage
  /// without per-class binary searches.  Invalidated by any mutation.
  const std::vector<std::int64_t>& active_d() const { return d_counts_; }
  const std::vector<std::int64_t>& active_b() const { return b_counts_; }

  /// Classes with b[j] > 0, ascending (L4); at most C entries.  The
  /// reference is invalidated by any mutating call.
  const std::vector<std::uint32_t>& marked_classes() const { return marked_; }

  /// Adds `count` real packets of class j.
  void add_real(std::uint32_t j, std::int64_t count);
  /// Removes `count` real packets of class j (must be available).
  void remove_real(std::uint32_t j, std::int64_t count);

  /// Converts one real class-j packet into a borrow marker: the packet is
  /// consumed, class j's virtual total is preserved.  Requires d[j] > 0
  /// and b[j] == 0.
  void borrow(std::uint32_t j);

  /// Clears one borrow marker of class j (debt settled).
  void clear_marker(std::uint32_t j);

  /// Converts one borrow marker of class j back into a real packet
  /// (the appendix's generate path: a newly generated packet is booked
  /// against an outstanding debt).  Requires b[j] > 0.
  void repay_with_generation(std::uint32_t j);

  /// Sets d[j] to an absolute value (balancing write-back, checkpoint
  /// compat).  O(A) worst case (entry insert/erase); totals and the
  /// marked list are maintained incrementally.
  void set_d(std::uint32_t j, std::int64_t value);

  /// Sets b[j] to an absolute value in {0, 1}.
  void set_b(std::uint32_t j, std::int64_t value);

  /// Batch write-back for a balancing operation: assigns
  /// d[cls[c]] = d_vals[c] and b[cls[c]] = b_vals[c] for c in [0, k).
  /// `cls` must be sorted ascending with no duplicates; d values
  /// non-negative, b values in {0, 1}.  One merge pass over the compact
  /// storage and the k dealt columns — O(A + k) total, touching only
  /// cache-resident vectors (no scattered dense cells exist anymore).
  /// Also the sparse bulk-load path: on an empty ledger it installs the
  /// nonzero entries directly (checkpoint restore).
  void apply_dealt(const std::uint32_t* cls, std::size_t k,
                   const std::int64_t* d_vals, const std::int64_t* b_vals);

  /// apply_dealt for the balancing hot path, where `cls` covers every
  /// currently active class (the deal spans the participants' class
  /// union, a superset of each one's active list — verified here).  The
  /// post state then depends on the dealt arrays alone: totals are plain
  /// sums and the entry vectors rebuild in place with no merge against
  /// the old storage.  O(A + k) like apply_dealt but with a much smaller
  /// constant — this is the hottest write path in the simulator.
  void replace_dealt(const std::uint32_t* cls, std::size_t k,
                     const std::int64_t* d_vals, const std::int64_t* b_vals);

  /// Wholesale replacement from dense vectors (tests, v1 checkpoints).
  /// Vectors must have size classes(); entries must be non-negative.
  /// O(n) input scan; only the nonzero entries are stored.
  void replace(std::vector<std::int64_t> d_new,
               std::vector<std::int64_t> b_new);

  /// Capacity floor: pre-sizes the compact storage for `k` active-class
  /// entries (clamped to classes()), so later writes up to that
  /// occupancy never reallocate — the zero-allocation steady-state knob
  /// (BalancerConfig::reserve_classes).  Never shrinks.
  void reserve_active(std::uint32_t k);

  /// Pre-sizes the calling thread's apply_dealt merge scratch for
  /// `entries` merged entries, so a thread's *first* deal is as
  /// allocation-free as its hundredth (the lazy warmup would otherwise
  /// land wherever that first deal happens to fall in the run —
  /// DESIGN.md §11).  Never shrinks.
  static void warm_thread_scratch(std::size_t entries);

  /// Smallest class index with b[j] > 0, or classes() if none.  O(1).
  std::uint32_t first_marked_class() const;

  /// Verifies L1-L4 and the compact-storage invariants S1/S2; throws
  /// contract_error on failure.  O(A) — independent of classes().
  void check(std::uint32_t borrow_cap) const;

  /// Dense materializations for tests and tools; O(n) each, allocates.
  std::vector<std::int64_t> dense_d() const;
  std::vector<std::int64_t> dense_b() const;

  /// Heap bytes held by this ledger's sparse storage (capacities of the
  /// entry, marked and merge vectors) — the bytes-per-processor metric
  /// BENCH_core.json records.
  std::size_t memory_bytes() const;

 private:
  // lower_bound slot of class j in active_.
  std::size_t lower_slot(std::uint32_t j) const;
  // Slot of class j, or active_.size() when j has no entry.  The const
  // overload is write-free (it consults hint_ but never updates it), so
  // concurrent const lookups on one shared ledger are race-free; the
  // non-const overload additionally memoizes the hit in hint_.
  std::size_t slot(std::uint32_t j) const;
  std::size_t slot(std::uint32_t j);
  void insert_entry(std::size_t pos, std::uint32_t j, std::int64_t d_val,
                    std::int64_t b_val);
  void erase_entry(std::size_t pos);
  // Drops the entry at `pos` if both counts reached zero (S1).
  void drop_if_zero(std::size_t pos);

  std::uint32_t classes_;
  std::int64_t real_ = 0;
  std::int64_t borrowed_ = 0;
  // Compact storage: parallel vectors keyed by the ascending active list.
  std::vector<std::uint32_t> active_;
  std::vector<std::int64_t> d_counts_;
  std::vector<std::int64_t> b_counts_;
  std::vector<std::uint32_t> marked_;
  // apply_dealt merges through shared thread-local scratch buffers (see
  // ledger.cpp): per-ledger buffers would re-pay the vector growth
  // cascade on every balancing write-back, a malloc storm on the hot
  // path; one warm buffer set per thread serves every ledger.
  // Memo of the last mutating slot() hit.  The event loop queries the
  // same class many times in a row (generate/consume/trigger checks on
  // the own class), so this turns most lookups into one comparison.  Safe
  // against staleness: the cached slot is only used after re-verifying
  // active_[hint_] == j.  Deliberately NOT mutable: const accessors read
  // the hint but never write it, so the const API carries no hidden
  // writes (shared const reads across threads are race-free).
  std::size_t hint_ = 0;
};

}  // namespace dlb
