// System::run_async — the barrier-free asynchronous sharded step engine.
//
// run_parallel (system_parallel.cpp) pays two barrier waits per step, and
// the PR-5 phase histograms showed those barriers dominating under sparse
// demand: the sharded driver lost to the serial batched engine on every
// sweep we run.  The paper's algorithm needs no global round structure —
// a balancing operation touches only its initiator and delta random
// partners — so this driver removes the barrier instead of amortizing it:
//
//   - Shards own processors round-robin (owner = p mod shards, strided
//     ActiveSchedule), so a contiguous hotspot spreads across shards.
//   - Each shard samples and applies the *local* event halves
//     (generate_packet / consume_packet / try_borrow) against its own
//     processors, using its own split RNG stream.
//   - Cross-shard work — balance triggers, self-marker cancels, debt
//     settlements — travels as messages through per-shard-pair SPSC
//     rings (support/spsc_ring.hpp), drained opportunistically.
//   - Global progress ("this epoch / this run is done") is decided by a
//     Dijkstra–Safra token (core/quiescence.hpp), not a barrier.
//
// Two modes share the operation layer:
//
//   Deterministic (default).  Time is split into epochs of
//   options.epoch_steps steps.  Shards run their local phases in
//   parallel, deferring every operation; then the token serializes the
//   operation layer: only the token holder executes (its deferred queue
//   first, then its inbound rings in sender order, with follow-ups
//   pumped in FIFO order), so each shard's slot has exclusive ledger
//   access and the execution order is a pure function of
//   (seed, workload, shards, epoch_steps).  The epoch closes when the
//   token proves quiescence; shard 0 then opens the next epoch.  One
//   token circulation costs a handful of cache-line hand-offs —
//   amortized over epoch_steps steps it replaces 2*epoch_steps barrier
//   waits.
//
//   Relaxed (options.relaxed_order).  Shards free-run the whole horizon
//   and execute operations *inline* under per-processor spinlocks
//   (sorted acquisition, no locks held across operations, re-validation
//   after every re-lock).  Balancing operations on disjoint participant
//   sets — the common case with random partners — run concurrently,
//   which is where the throughput comes from.  The token runs once at
//   the end as pure termination detection.  Reproducibility is
//   explicitly traded away; conservation and ledger invariants still
//   hold and are what the tests pin.
//
// Both modes queue an operation's follow-up work (the [D6] self-marker
// cancels after a deal, the trigger re-check after a remote exchange)
// instead of nesting calls: an operation never holds more than one
// sorted lock set, which is what makes the relaxed mode deadlock-free
// and the deterministic mode's drain order well-defined.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/quiescence.hpp"
#include "core/system.hpp"
#include "obs/alloc.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/backoff.hpp"
#include "support/check.hpp"
#include "support/ring_queue.hpp"
#include "support/spsc_ring.hpp"
#include "workload/schedule.hpp"

namespace dlb {

namespace {

// The two-phase pause/yield waiter lives in support/backoff.hpp now
// (shared with the socket transport's receive pump); this engine is its
// original home and heaviest user.

}  // namespace

class AsyncEngine {
 public:
  AsyncEngine(System& sys, const Workload& workload, std::uint32_t shards,
              const AsyncOptions& options)
      : sys_(sys),
        workload_(workload),
        shards_(shards),
        options_(options),
        detector_(shards),
        locks_(sys.processors()) {
    shard_.reserve(shards);
    for (std::uint32_t s = 0; s < shards; ++s) {
      // split() draws from the system generator, so the stream layout is
      // fixed by (seed, shards) alone — same scheme as run_parallel.
      shard_.push_back(std::make_unique<Shard>(
          s, shards, sys_.rng_.split(),
          ActiveSchedule::strided(workload, s, shards), sys_.topology_));
      // Zero-alloc opt-in (DESIGN.md §11): warm the per-shard scratch to
      // its bounds — every sampled event is at most one queued op plus
      // follow-ups, and an op touches at most delta+1 processors.  A run
      // must not depend on the workload hitting each high-water mark
      // early (the allocation would land mid-run, at a schedule-
      // dependent step).  Gated on the opt-in: the span-scaled reserves
      // touch O(n) fresh pages, a real cost inside short timed runs.
      if (sys_.config_.reserve_classes > 0) {
        Shard& sh = *shard_.back();
        const std::uint32_t span = (sys_.processors() + shards - 1) / shards;
        sh.events.reserve(span);
        sh.fifo.reserve(4 * static_cast<std::size_t>(span) + 64);
        sh.lock_ids.reserve(sys_.config_.delta + 1);
        sh.partners.reserve(sys_.config_.delta);
        sh.cancel_due.reserve(sys_.config_.delta + 1);
      }
    }
    rings_.resize(static_cast<std::size_t>(shards) * shards);
    for (std::uint32_t from = 0; from < shards; ++from)
      for (std::uint32_t to = 0; to < shards; ++to)
        if (from != to)
          rings_[from * shards + to] =
              std::make_unique<SpscRing<Msg>>(kRingCapacity);
  }

  void run();

 private:
  enum class OpKind : std::uint8_t {
    Trigger,  // balance trigger check due on proc
    Cancel,   // [D6] settle own-class markers left by a deal
    Settle,   // borrow capacity exhausted: settle debts, retry borrow
  };
  struct Msg {
    std::uint32_t proc;
    OpKind kind;
  };

  static constexpr std::size_t kRingCapacity = 1024;
  // Relaxed-mode bound on re-draw attempts when a settlement's state
  // goes stale between lock scopes; deterministic mode never re-draws
  // (the token gives exclusive access).  Giving up leaves the debt
  // standing for a later settle event — conservation is unaffected.
  static constexpr int kMaxSettleRetries = 8;

  struct Shard {
    Shard(std::uint32_t shard_id, std::uint32_t shards, Rng stream,
          ActiveSchedule compiled, const Topology* topology)
        : id(shard_id),
          tid(shard_id + 1),
          rng(stream),
          schedule(std::move(compiled)),
          costs(topology),
          pending(shards) {}

    std::uint32_t id;
    std::uint32_t tid;  // trace track: shard s renders as tid s + 1
    Rng rng;
    ActiveSchedule schedule;
    System::StepCounters counters;
    // Private cost ledger, merged into the system's at the end (the
    // operation layer runs concurrently in relaxed mode).
    CostLedger costs;
    // Sampled events of the current step.
    std::vector<std::pair<std::uint32_t, WorkEvent>> events;
    // Deterministic mode: operations deferred by the local phase, moved
    // into the fifo at the shard's first token slot of the epoch.
    std::vector<Msg> deferred;
    bool deferred_moved = false;
    // Own-shard operation queue (follow-ups and, in relaxed mode, the
    // live event operations), executed in FIFO order.  A growable ring
    // (not a deque): capacity plateaus, so the steady state re-enqueues
    // without touching the allocator.
    RingQueue<Msg> fifo;
    // Per-destination overflow for full rings, flushed FIFO-first so the
    // per-pair message order is preserved.
    std::vector<std::vector<Msg>> pending;
    // Scratch for sorted multi-lock acquisition, the partner draw, and
    // [D6] collection.  balance_op never nests within a shard (follow-up
    // work travels as messages), so one buffer each suffices.
    std::vector<std::uint32_t> lock_ids;
    std::vector<ProcId> partners;
    std::vector<ProcId> cancel_due;
    // Heap-allocation accounting of this shard's step loop (merged and
    // published by the epilogue when metrics are attached).
    obs::AllocTally alloc;
    std::uint64_t ops = 0;   // operations executed
    std::uint64_t msgs = 0;  // cross-shard messages sent
    // Epochs whose local phase finished (deterministic mode fence).
    alignas(64) std::atomic<std::uint64_t> local_done{0};
  };

  // ---- per-processor spinlocks (relaxed mode's exclusivity) ----------

  class ProcLocks {
   public:
    explicit ProcLocks(std::size_t n) : locks_(n) {}
    void lock(std::uint32_t p) {
      Backoff backoff;
      while (locks_[p].exchange(1, std::memory_order_acquire) != 0)
        backoff.wait();
    }
    void unlock(std::uint32_t p) {
      locks_[p].store(0, std::memory_order_release);
    }

   private:
    std::vector<std::atomic<std::uint8_t>> locks_;
  };

  class ScopedLock {
   public:
    ScopedLock(ProcLocks& locks, std::uint32_t p) : locks_(locks), p_(p) {
      locks_.lock(p_);
    }
    ~ScopedLock() { locks_.unlock(p_); }
    ScopedLock(const ScopedLock&) = delete;
    ScopedLock& operator=(const ScopedLock&) = delete;

   private:
    ProcLocks& locks_;
    std::uint32_t p_;
  };

  // Sorted multi-lock over `ids` (deduplicated by the sort being over
  // distinct processors; acquisition in ascending order makes the
  // global lock order consistent, so two concurrent operations can
  // never deadlock).  `ids` is caller-owned scratch that must stay
  // untouched for the guard's lifetime; operation scopes never nest, so
  // one scratch vector per shard suffices.
  class ScopedLockSet {
   public:
    ScopedLockSet(ProcLocks& locks, std::vector<std::uint32_t>& ids)
        : locks_(locks), ids_(ids) {
      std::sort(ids_.begin(), ids_.end());
      for (std::uint32_t p : ids_) locks_.lock(p);
    }
    ~ScopedLockSet() {
      for (auto it = ids_.rbegin(); it != ids_.rend(); ++it)
        locks_.unlock(*it);
    }
    ScopedLockSet(const ScopedLockSet&) = delete;
    ScopedLockSet& operator=(const ScopedLockSet&) = delete;

   private:
    ProcLocks& locks_;
    std::vector<std::uint32_t>& ids_;
  };

  // ---- message plumbing ----------------------------------------------

  std::uint32_t owner(std::uint32_t p) const { return p % shards_; }
  SpscRing<Msg>& ring(std::uint32_t from, std::uint32_t to) {
    return *rings_[static_cast<std::size_t>(from) * shards_ + to];
  }

  // Routes an operation to its processor's owner shard: own shard goes
  // to the local fifo, a remote shard through the ring (with the Safra
  // send accounted *before* the message becomes visible, so the
  // detector can never undercount in-flight work).
  void dispatch(Shard& sh, Msg msg) {
    const std::uint32_t to = owner(msg.proc);
    if (to == sh.id) {
      sh.fifo.push_back(msg);
      return;
    }
    detector_.on_send(sh.id);
    ++sh.msgs;
    auto& pend = sh.pending[to];
    // Pending-first keeps the per-pair FIFO order.
    if (!pend.empty() || !ring(sh.id, to).push(msg)) pend.push_back(msg);
  }

  void flush_pending(Shard& sh) {
    for (std::uint32_t to = 0; to < shards_; ++to) {
      auto& pend = sh.pending[to];
      if (pend.empty()) continue;
      std::size_t i = 0;
      while (i < pend.size() && ring(sh.id, to).push(pend[i])) ++i;
      pend.erase(pend.begin(),
                 pend.begin() + static_cast<std::ptrdiff_t>(i));
    }
  }

  bool passive(const Shard& sh) const {
    if (!sh.fifo.empty()) return false;
    for (const auto& pend : sh.pending)
      if (!pend.empty()) return false;
    for (std::uint32_t from = 0; from < shards_; ++from)
      if (from != sh.id &&
          !rings_[static_cast<std::size_t>(from) * shards_ + sh.id]->empty())
        return false;
    return true;
  }

  // Executes everything currently runnable: pending flushes, the own
  // fifo, then the inbound rings in sender order with follow-ups pumped
  // before the next message.  Loops until a full pass finds nothing.
  // Deterministic mode calls this only while holding the token, when the
  // ring contents are frozen (every producer executes in its own slot),
  // so the drain order is a pure function of the epoch's operations.
  std::size_t pump(Shard& sh) {
    std::size_t executed = 0;
    for (;;) {
      flush_pending(sh);
      bool did = false;
      while (!sh.fifo.empty()) {
        const Msg msg = sh.fifo.pop_front();
        exec(sh, msg);
        ++executed;
        did = true;
        flush_pending(sh);
      }
      for (std::uint32_t from = 0; from < shards_; ++from) {
        if (from == sh.id) continue;
        Msg msg;
        while (ring(from, sh.id).pop(msg)) {
          detector_.on_receive(sh.id);
          exec(sh, msg);
          ++executed;
          did = true;
          // Follow-ups precede the next inbound message, so the order
          // within a slot is fully determined by the messages alone.
          while (!sh.fifo.empty()) {
            const Msg follow = sh.fifo.pop_front();
            exec(sh, follow);
            ++executed;
          }
          flush_pending(sh);
        }
      }
      if (!did) return executed;
    }
  }

  // ---- the operation layer (shared by both modes) --------------------

  void exec(Shard& sh, Msg msg) {
    ++sh.ops;
    switch (msg.kind) {
      case OpKind::Trigger:
        exec_trigger(sh, msg.proc);
        break;
      case OpKind::Cancel:
        exec_cancel(sh, msg.proc);
        break;
      case OpKind::Settle:
        exec_settle(sh, msg.proc);
        break;
    }
  }

  // Balance trigger check ([D1]) and the deal when it fires.
  void exec_trigger(Shard& sh, std::uint32_t p) {
    {
      ScopedLock guard(locks_, p);
      if (!sys_.trigger_fires(p)) return;
    }
    balance_op(sh, p, /*forced=*/false);
  }

  // A balancing operation initiated by p: draw partners (lock-free),
  // lock the sorted participant set, re-validate the trigger under the
  // lock (relaxed mode: another shard's deal may have reset p's baseline
  // since the peek), deal, then route the [D6] self-marker cancels to
  // the participants' owners.
  void balance_op(Shard& sh, std::uint32_t p, bool forced) {
    sys_.draw_partners(p, sh.rng, sh.partners);
    sh.lock_ids.clear();
    sh.lock_ids.push_back(p);
    for (ProcId q : sh.partners) sh.lock_ids.push_back(q);
    sh.cancel_due.clear();
    {
      ScopedLockSet guard(locks_, sh.lock_ids);
      if (!forced && !sys_.trigger_fires(p)) return;
      sys_.balance_deal(p, sh.partners, sh.rng, sh.costs, &sh.cancel_due,
                        sh.tid);
    }
    for (ProcId q : sh.cancel_due) dispatch(sh, Msg{q, OpKind::Cancel});
  }

  // [D6] q settles markers of its own class on the spot; the simulated
  // load decrease re-checks q's trigger (as a follow-up, not inline).
  void exec_cancel(Shard& sh, std::uint32_t q) {
    {
      ScopedLock guard(locks_, q);
      Ledger& ledger = sys_.procs_[q].ledger;
      if (ledger.b(q) == 0) return;  // already settled meanwhile
      while (ledger.b(q) > 0) ledger.clear_marker(q);
    }
    sys_.emit_borrow_event(BorrowEvent::DecreaseSim);
    dispatch(sh, Msg{q, OpKind::Trigger});
  }

  // Remote exchange [D4] with both ledgers held by the caller; the
  // generator's simulated decrease becomes a Trigger follow-up.
  void remote_exchange_locked(Shard& sh, std::uint32_t p, std::uint32_t j) {
    sys_.emit_borrow_event(BorrowEvent::RemoteBorrow);
    Ledger& debtor = sys_.procs_[p].ledger;
    Ledger& generator = sys_.procs_[j].ledger;
    const std::int64_t x = std::min(generator.d(j), debtor.borrowed_total());
    DLB_ENSURE(x >= 1, "remote exchange with nothing to exchange");
    generator.remove_real(j, x);
    debtor.add_real(j, x);
    sh.costs.record_migration(j, p, static_cast<std::uint64_t>(x));
    sh.costs.record_net_migration(static_cast<std::uint64_t>(x));
    std::int64_t to_clear = x;
    if (debtor.b(j) > 0) {
      debtor.clear_marker(j);
      --to_clear;
    }
    while (to_clear > 0) {
      const std::uint32_t k = debtor.first_marked_class();
      DLB_ENSURE(k < sys_.processors(),
                 "failed to clear the exchanged markers");
      debtor.clear_marker(k);
      --to_clear;
    }
    sys_.emit_borrow_event(BorrowEvent::DecreaseSim);
  }

  // Debt settlement + borrow retry (the deferred form of the sequential
  // consume()'s NeedsSettle branch, like run_parallel's Settle).  The
  // sequential nesting (settle -> remote exchange -> balance -> ...) is
  // decomposed into a sequence of bounded lock scopes with re-validation
  // after every re-lock; follow-up triggers travel as messages.
  void exec_settle(Shard& sh, std::uint32_t p) {
    bool emitted = false;
    for (int attempt = 0; attempt < kMaxSettleRetries; ++attempt) {
      std::uint32_t j = 0;
      {
        ScopedLock guard(locks_, p);
        Ledger& ledger = sys_.procs_[p].ledger;
        if (ledger.borrowed_total() == 0) break;  // settled meanwhile
        if (!emitted) {
          emitted = true;
          if (sys_.metrics_ != nullptr) sys_.m_.settlements->add(1);
          if (sys_.trace_ != nullptr)
            sys_.trace_->instant("settle", "borrow", sh.tid, p);
        }
        const auto& marked = ledger.marked_classes();
        j = marked[static_cast<std::size_t>(sh.rng.below(marked.size()))];
        if (j == p) {
          // [D6]: a marker of p's own class settles locally.
          ledger.clear_marker(j);
        }
      }
      if (j == p) {
        sys_.emit_borrow_event(BorrowEvent::DecreaseSim);
        dispatch(sh, Msg{p, OpKind::Trigger});
        break;
      }
      bool resolved = false;
      {
        sh.lock_ids.assign({p, j});
        ScopedLockSet guard(locks_, sh.lock_ids);
        Ledger& debtor = sys_.procs_[p].ledger;
        if (debtor.borrowed_total() == 0) break;  // settled meanwhile
        if (debtor.b(j) == 0) continue;           // stale draw: redraw
        if (sys_.procs_[j].ledger.d(j) > 0) {
          remote_exchange_locked(sh, p, j);
          resolved = true;
        }
      }
      if (resolved) {
        dispatch(sh, Msg{j, OpKind::Trigger});
        break;
      }
      // [D5] resolution: class j's generator holds none of its own
      // packets.  A deal initiated by j pulls class-j packets toward it;
      // if that restocked the generator, exchange, otherwise a deal
      // initiated by p spreads p's load and markers afresh.
      sys_.emit_borrow_event(BorrowEvent::BorrowFail);
      balance_op(sh, j, /*forced=*/true);
      bool exchanged = false;
      {
        sh.lock_ids.assign({p, j});
        ScopedLockSet guard(locks_, sh.lock_ids);
        if (sys_.procs_[j].ledger.d(j) > 0 &&
            sys_.procs_[p].ledger.borrowed_total() > 0) {
          remote_exchange_locked(sh, p, j);
          exchanged = true;
        }
      }
      if (exchanged) {
        dispatch(sh, Msg{j, OpKind::Trigger});
      } else {
        balance_op(sh, p, /*forced=*/true);
      }
      break;
    }
    // Retry the borrow that exhausted capacity ("in any case processor i
    // is allowed to borrow some new load packets", §4).
    {
      ScopedLock guard(locks_, p);
      sys_.try_borrow(p, sh.rng, sh.counters);
    }
  }

  // ---- drivers -------------------------------------------------------

  void det_worker(Shard& sh);
  void relaxed_worker(Shard& sh);
  void run_threads(void (AsyncEngine::*worker)(Shard&));
  void wait_local_done(std::uint64_t epoch);
  void close_epoch(std::uint64_t epoch);

  std::uint64_t now_ns() const {
    if (tracing_) return sys_.trace_->now_ns();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  System& sys_;
  const Workload& workload_;
  const std::uint32_t shards_;
  const AsyncOptions options_;
  QuiescenceDetector detector_;
  ProcLocks locks_;
  std::vector<std::unique_ptr<Shard>> shard_;
  std::vector<std::unique_ptr<SpscRing<Msg>>> rings_;

  // Deterministic mode: highest epoch whose local phase may start.
  std::atomic<std::uint64_t> epoch_open_{0};
  // Relaxed mode: global-termination latch.
  std::atomic<bool> done_{false};

  std::atomic<bool> stop_{false};
  std::exception_ptr error_;
  std::mutex error_mu_;

  bool tracing_ = false;
  bool timed_ = false;
  obs::Histogram* drain_hist_ = nullptr;
  obs::Histogram* quiesce_hist_ = nullptr;
  obs::Counter* epochs_counter_ = nullptr;
};

void AsyncEngine::run_threads(void (AsyncEngine::*worker)(Shard&)) {
  const auto record_error = [&] {
    const std::lock_guard<std::mutex> lock(error_mu_);
    if (error_ == nullptr) error_ = std::current_exception();
    stop_.store(true, std::memory_order_release);
  };
  {
    std::vector<std::jthread> threads;
    threads.reserve(shards_);
    for (std::uint32_t s = 0; s < shards_; ++s) {
      threads.emplace_back([this, worker, s, &record_error] {
        try {
          // Pay the per-thread scratch warmup here, not at this shard's
          // first balancing operation (which can land arbitrarily late).
          sys_.warm_thread_scratch();
          (this->*worker)(*shard_[s]);
        } catch (...) {
          record_error();
        }
      });
    }
  }  // jthread joins
  if (error_ != nullptr) std::rethrow_exception(error_);
}

void AsyncEngine::run() {
  tracing_ = sys_.trace_ != nullptr && sys_.trace_->enabled();
  if (sys_.metrics_ != nullptr) {
    drain_hist_ = &sys_.metrics_->histogram("async.drain_ns");
    quiesce_hist_ = &sys_.metrics_->histogram("async.quiesce_ns");
    epochs_counter_ = &sys_.metrics_->counter("async.epochs");
  }
  timed_ = tracing_ || sys_.metrics_ != nullptr;
  if (tracing_)
    for (std::uint32_t s = 0; s < shards_; ++s)
      sys_.trace_->set_thread_name(s + 1, "async shard " + std::to_string(s));

  if (options_.relaxed_order) {
    run_threads(&AsyncEngine::relaxed_worker);
  } else {
    run_threads(&AsyncEngine::det_worker);
  }

  // Serial epilogue: fold the per-shard ledgers and tallies back into
  // the system.
  CostTotals merged = sys_.costs_.totals();
  std::uint64_t msgs = 0;
  std::uint64_t ops = 0;
  for (const auto& sh : shard_) {
    merged += sh->costs.totals();
    msgs += sh->msgs;
    ops += sh->ops;
  }
  sys_.costs_.restore(merged);
  if (sys_.metrics_ != nullptr) {
    sys_.metrics_->counter("async.msgs").add(msgs);
    sys_.metrics_->counter("async.ops").add(ops);
    sys_.metrics_->counter("async.circles").add(detector_.circles());
    obs::AllocTally alloc;
    for (const auto& sh : shard_) alloc.merge(sh->alloc);
    obs::publish(*sys_.metrics_, "async", alloc);
  }
  // Relaxed mode has no epoch fences, so the per-epoch invariant check
  // degrades to a single post-run verification.
  if (options_.relaxed_order && sys_.post_step_check_)
    sys_.check_invariants();
}

void AsyncEngine::wait_local_done(std::uint64_t epoch) {
  Backoff backoff;
  for (std::uint32_t r = 0; r < shards_; ++r)
    while (shard_[r]->local_done.load(std::memory_order_acquire) < epoch) {
      if (stop_.load(std::memory_order_acquire)) return;
      backoff.wait();
    }
}

// Epoch close, executed by shard 0 right after the quiescence verdict:
// every shard is passive and every ring is empty, so shard 0 briefly has
// the whole system to itself — the per-epoch invariant check runs here.
void AsyncEngine::close_epoch(std::uint64_t epoch) {
  if (sys_.post_step_check_) sys_.check_invariants();
  if (epochs_counter_ != nullptr) epochs_counter_->add(1);
  detector_.reset();
  epoch_open_.store(epoch + 1, std::memory_order_release);
}

void AsyncEngine::det_worker(Shard& sh) {
  const std::uint32_t horizon = workload_.horizon();
  const std::uint32_t epoch_steps = options_.epoch_steps;
  const std::uint64_t epochs =
      (static_cast<std::uint64_t>(horizon) + epoch_steps - 1) / epoch_steps;
  // Allocation accounting is per *epoch* here (the engine's unit of
  // progress); the tally's step index is the epoch number.
  const bool track_allocs = sys_.metrics_ != nullptr;
  obs::AllocPhase alloc_phase;
  if (track_allocs) alloc_phase.rebase();
  for (std::uint64_t e = 0; e < epochs; ++e) {
    // Wait for shard 0 to open this epoch (quiescence of the previous
    // one), which also publishes every operation's ledger writes.
    Backoff open_backoff;
    while (epoch_open_.load(std::memory_order_acquire) < e) {
      if (stop_.load(std::memory_order_acquire)) return;
      open_backoff.wait();
    }
    if (stop_.load(std::memory_order_acquire)) return;

    // ---- local phase: own processors only, no locks needed (the
    // operation layer is quiescent until every local_done is posted).
    const std::uint64_t local_start = timed_ ? now_ns() : 0;
    const auto t_end = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(horizon, (e + 1) * epoch_steps));
    for (auto t = static_cast<std::uint32_t>(e * epoch_steps); t < t_end;
         ++t) {
      const auto& entries = sh.schedule.advance(t);
      sh.events.clear();
      for (const ActiveSchedule::Entry& entry : entries) {
        WorkEvent ev;
        ev.generate = sh.rng.bernoulli(entry.phase->generate_prob);
        ev.consume = sh.rng.bernoulli(entry.phase->consume_prob);
        if (ev.generate || ev.consume) sh.events.emplace_back(entry.proc, ev);
      }
      for (const auto& [p, ev] : sh.events) {
        if (ev.generate) {
          sys_.generate_packet(p, sh.rng, sh.counters);
          sh.deferred.push_back(Msg{p, OpKind::Trigger});
        }
        if (ev.consume) {
          switch (sys_.consume_packet(p, sh.rng, sh.counters)) {
            case System::ConsumeLocal::ConsumedOwn:
              sh.deferred.push_back(Msg{p, OpKind::Trigger});
              break;
            case System::ConsumeLocal::NeedsSettle:
              sh.deferred.push_back(Msg{p, OpKind::Settle});
              break;
            case System::ConsumeLocal::ConsumedBorrow:
            case System::ConsumeLocal::Failed:
              break;
          }
        }
      }
    }
    sys_.commit(sh.counters);
    sh.counters = System::StepCounters{};
    if (tracing_)
      sys_.trace_->record("async_local", "async", local_start,
                          now_ns() - local_start, sh.tid, e);
    sh.local_done.store(e + 1, std::memory_order_release);
    sh.deferred_moved = false;

    // ---- drain phase: the token serializes the operation layer.
    const std::uint64_t drain_phase_start =
        (sh.id == 0 && timed_) ? now_ns() : 0;
    Backoff token_backoff;
    while (epoch_open_.load(std::memory_order_acquire) <= e) {
      if (stop_.load(std::memory_order_acquire)) return;
      if (!detector_.holds_token(sh.id)) {
        token_backoff.wait();
        continue;
      }
      token_backoff.reset();
      const bool first = !sh.deferred_moved;
      const std::uint64_t slot_start = timed_ ? now_ns() : 0;
      if (first) {
        // The epoch fence: no operation may run before every shard
        // finished its local phase (operations touch arbitrary
        // processors).  The token starts at shard 0, so gating its
        // first slot gates them all.
        if (sh.id == 0) {
          wait_local_done(e + 1);
          if (stop_.load(std::memory_order_acquire)) return;
        }
        for (const Msg& deferred : sh.deferred) sh.fifo.push_back(deferred);
        sh.deferred.clear();
        sh.deferred_moved = true;
      }
      const std::size_t executed = pump(sh);
      // Settlements retry their borrow inside the slot; publish those
      // counts before the epoch can close.
      sys_.commit(sh.counters);
      sh.counters = System::StepCounters{};
      if (timed_ && (first || executed > 0)) {
        const std::uint64_t slot_end = now_ns();
        if (drain_hist_ != nullptr)
          drain_hist_->record(slot_end - slot_start);
        if (tracing_)
          sys_.trace_->record("async_drain", "async", slot_start,
                              slot_end - slot_start, sh.tid, e);
      }
      if (detector_.forward_token(sh.id)) {
        // Quiescence verdict (only shard 0 gets true): the epoch is
        // complete — no active shard, no message in flight.
        if (timed_ && quiesce_hist_ != nullptr)
          quiesce_hist_->record(now_ns() - drain_phase_start);
        close_epoch(e);
      }
    }
    if (track_allocs)
      sh.alloc.note(static_cast<std::int64_t>(e), alloc_phase.take());
  }
}

void AsyncEngine::relaxed_worker(Shard& sh) {
  const std::uint32_t horizon = workload_.horizon();
  const std::uint64_t local_start = timed_ ? now_ns() : 0;
  const bool track_allocs = sys_.metrics_ != nullptr;
  obs::AllocPhase alloc_phase;
  if (track_allocs) alloc_phase.rebase();
  for (std::uint32_t t = 0; t < horizon; ++t) {
    if (stop_.load(std::memory_order_acquire)) return;
    const auto& entries = sh.schedule.advance(t);
    sh.events.clear();
    for (const ActiveSchedule::Entry& entry : entries) {
      WorkEvent ev;
      ev.generate = sh.rng.bernoulli(entry.phase->generate_prob);
      ev.consume = sh.rng.bernoulli(entry.phase->consume_prob);
      if (ev.generate || ev.consume) sh.events.emplace_back(entry.proc, ev);
    }
    for (const auto& [p, ev] : sh.events) {
      if (ev.generate) {
        {
          // Unlike the deterministic local phase, remote operations run
          // concurrently and may touch p — even the local halves lock.
          ScopedLock guard(locks_, p);
          sys_.generate_packet(p, sh.rng, sh.counters);
        }
        dispatch(sh, Msg{p, OpKind::Trigger});
      }
      if (ev.consume) {
        System::ConsumeLocal result;
        {
          ScopedLock guard(locks_, p);
          result = sys_.consume_packet(p, sh.rng, sh.counters);
        }
        switch (result) {
          case System::ConsumeLocal::ConsumedOwn:
            dispatch(sh, Msg{p, OpKind::Trigger});
            break;
          case System::ConsumeLocal::NeedsSettle:
            dispatch(sh, Msg{p, OpKind::Settle});
            break;
          case System::ConsumeLocal::ConsumedBorrow:
          case System::ConsumeLocal::Failed:
            break;
        }
      }
      // Execute inline (fifo) and drain whatever other shards sent us.
      pump(sh);
    }
    pump(sh);
    if (track_allocs)
      sh.alloc.note(static_cast<std::int64_t>(t), alloc_phase.take());
  }
  sys_.commit(sh.counters);
  sh.counters = System::StepCounters{};
  if (tracing_)
    sys_.trace_->record("async_local", "async", local_start,
                        now_ns() - local_start, sh.tid, 0);

  // ---- termination: keep serving inbound work until the token proves
  // global quiescence.
  const std::uint64_t term_start = timed_ ? now_ns() : 0;
  Backoff term_backoff;
  while (!done_.load(std::memory_order_acquire)) {
    if (stop_.load(std::memory_order_acquire)) return;
    if (pump(sh) > 0) term_backoff.reset();
    if (passive(sh) && detector_.holds_token(sh.id)) {
      term_backoff.reset();
      if (detector_.forward_token(sh.id)) {
        if (timed_ && quiesce_hist_ != nullptr)
          quiesce_hist_->record(now_ns() - term_start);
        done_.store(true, std::memory_order_release);
      }
    } else {
      term_backoff.wait();
    }
  }
  sys_.commit(sh.counters);
  sh.counters = System::StepCounters{};
  // The termination pump is ordinary operation execution — account it
  // against the final step so late allocations cannot hide.
  if (track_allocs && horizon > 0)
    sh.alloc.note(static_cast<std::int64_t>(horizon) - 1, alloc_phase.take());
  if (timed_) {
    const std::uint64_t term_end = now_ns();
    if (drain_hist_ != nullptr) drain_hist_->record(term_end - term_start);
    if (tracing_)
      sys_.trace_->record("async_drain", "async", term_start,
                          term_end - term_start, sh.tid, 0);
  }
}

void System::run_async(const Workload& workload, std::uint32_t shards,
                       AsyncOptions options) {
  DLB_REQUIRE(workload.processors() == processors(),
              "workload size must match the system");
  DLB_REQUIRE(shards >= 1, "at least one shard required");
  DLB_REQUIRE(shards <= processors(), "more shards than processors");
  DLB_REQUIRE(options.epoch_steps >= 1,
              "an epoch must cover at least one step");
  // No serial per-step point exists to observe loads from; recorder
  // output is a sequential-driver (or run_parallel) feature.
  DLB_REQUIRE(recorder_ == nullptr, "run_async does not support a recorder");
  loads_cache_valid_ = false;
  AsyncEngine engine(*this, workload, shards, options);
  engine.run();
}

}  // namespace dlb
