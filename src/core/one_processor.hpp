// The one-processor-generator(-consumer) model of §3 (Figure 1).
//
// Only processor 0 generates (or consumes) load; all packets belong to one
// class, so the full d/b ledger machinery collapses to a plain load
// vector.  This driver is the measurement object for:
//   * Theorems 1-3 — the ratio E(l_0,t) / E(l_i,t) after t balancing
//     operations, converging to FIX(n, delta, f);
//   * Figure 6   — the variation density of l_i for a non-generating
//     processor (Monte-Carlo cross-check of the exact recursion);
//   * Lemmas 5/6 — the number of balancing operations needed to shrink
//     processor 0's load from x to x − c.
#pragma once

#include <cstdint>
#include <vector>

#include "support/rng.hpp"

namespace dlb {

class OneProcessorModel {
 public:
  struct Params {
    std::uint32_t n = 16;      // network size
    std::uint32_t delta = 1;   // partners per balancing operation
    double f = 1.1;            // trigger factor
    /// Figure 6's "relaxed" delta > 1 algorithm: instead of one
    /// (delta+1)-way equalization, perform delta consecutive pairwise
    /// equalizations with independently drawn candidates.
    bool relaxed_pairwise = false;
  };

  OneProcessorModel(const Params& params, std::uint64_t seed);

  /// Generates packets on processor 0 one per step until the factor-f
  /// growth trigger fires, then performs one balancing operation
  /// (relaxed: delta pairwise operations counted as one).  Returns the
  /// number of packets generated during the round.
  std::uint64_t grow_round();

  /// Runs `rounds` grow rounds.
  void run_grow(std::uint32_t rounds);

  /// Consumes packets from processor 0 one per step; when the factor-f
  /// shrink trigger fires, a balancing operation refills processor 0 from
  /// the network.  Stops once `target` packets have been consumed in
  /// total (or the whole system is empty).  Returns the number of
  /// balancing operations performed.
  std::uint64_t consume_total(std::uint64_t target);

  std::int64_t load(std::uint32_t i) const;
  const std::vector<std::int64_t>& loads() const { return loads_; }
  std::uint64_t balance_operations() const { return balance_ops_; }
  std::int64_t total_load() const;

  /// l_0 divided by the mean load of processors 1..n-1 (the quantity
  /// Theorems 1-3 bound); 0 when the others are empty.
  double ratio_to_average() const;

  /// Direct injection for experiments that need a prepared state.
  void set_load(std::uint32_t i, std::int64_t value);
  void set_trigger_baseline(std::int64_t l_old) { l_old_ = l_old; }

 private:
  void balance();
  void equalize(std::vector<std::uint32_t>& participants);

  Params params_;
  Rng rng_;
  std::vector<std::int64_t> loads_;
  std::int64_t l_old_ = 0;
  std::uint64_t balance_ops_ = 0;
};

}  // namespace dlb
