#include "core/async_system.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace dlb {

AsyncSystem::AsyncSystem(const Topology& topology, AsyncConfig config)
    : topology_(topology),
      config_(config),
      rng_(config.seed),
      loads_(topology.size(), 0),
      procs_(topology.size()) {
  DLB_REQUIRE(topology_.size() >= 2, "async system needs >= 2 processors");
  DLB_REQUIRE(config_.f > 1.0, "async runtime requires f > 1");
  DLB_REQUIRE(config_.delta >= 1 && config_.delta < topology_.size(),
              "delta out of range");
  DLB_REQUIRE(config_.hop_latency >= 0.0, "latency cannot be negative");
}

void AsyncSystem::schedule_message(const Message& msg) {
  ++stats_.messages;
  const double latency =
      config_.hop_latency *
      static_cast<double>(topology_.distance(msg.from, msg.to));
  Event ev;
  ev.time = now_ + latency;
  ev.seq = ++seq_;
  ev.app = false;
  ev.proc = msg.to;
  ev.t = 0;
  ev.msg = msg;
  queue_.push(ev);
}

void AsyncSystem::run(const Trace& trace) {
  DLB_REQUIRE(!used_, "AsyncSystem::run may only be called once");
  used_ = true;
  DLB_REQUIRE(trace.processors() == topology_.size(),
              "trace size must match the topology");

  for (std::uint32_t t = 0; t < trace.horizon(); ++t) {
    for (ProcId p = 0; p < trace.processors(); ++p) {
      const WorkEvent we = trace.at(p, t);
      if (!we.generate && !we.consume) continue;
      Event ev;
      ev.time = static_cast<double>(t);
      ev.seq = ++seq_;
      ev.app = true;
      ev.proc = p;
      ev.t = t;
      queue_.push(ev);
    }
  }

  std::uint32_t next_snapshot = 0;
  snapshots_.reserve(trace.horizon());
  while (!queue_.empty()) {
    const Event ev = queue_.top();
    while (next_snapshot < trace.horizon() &&
           ev.time > static_cast<double>(next_snapshot)) {
      snapshots_.push_back(loads_);
      ++next_snapshot;
    }
    queue_.pop();
    now_ = ev.time;
    if (ev.app) {
      execute_app(ev.proc, ev.t, trace.at(ev.proc, ev.t));
    } else {
      deliver(ev.msg);
    }
  }
  while (next_snapshot < trace.horizon()) {
    snapshots_.push_back(loads_);
    ++next_snapshot;
  }

  // Every transaction must have drained.
  for (ProcId p = 0; p < topology_.size(); ++p) {
    DLB_ENSURE(procs_[p].mode == Mode::Idle,
               "transaction still open after drain");
    DLB_ENSURE(procs_[p].deferred.empty(), "deferred demand lost");
  }
}

void AsyncSystem::execute_app(ProcId p, std::uint32_t t, WorkEvent ev) {
  Proc& proc = procs_[p];
  if (proc.mode == Mode::Locked) {
    // The processor's load is under negotiation; its demand waits for
    // the assignment (and is replayed in release()).
    proc.deferred.emplace_back(t, ev);
    ++stats_.deferred_events;
    return;
  }
  if (ev.generate) {
    loads_[p] += 1;
    ++stats_.generated;
  }
  if (ev.consume) {
    if (loads_[p] > 0) {
      loads_[p] -= 1;
      ++stats_.consumed;
    } else {
      ++stats_.consume_failures;
    }
  }
  maybe_initiate(p);
}

void AsyncSystem::deliver(const Message& msg) {
  switch (msg.type) {
    case MsgType::Invite: handle_invite(msg); return;
    case MsgType::Accept:
    case MsgType::Refuse: handle_reply(msg); return;
    case MsgType::Assign: handle_assign(msg); return;
  }
}

void AsyncSystem::handle_invite(const Message& msg) {
  Proc& proc = procs_[msg.to];
  if (proc.mode != Mode::Idle) {
    ++stats_.refusals;
    schedule_message(
        Message{MsgType::Refuse, msg.to, msg.from, msg.txn, 0});
    return;
  }
  proc.mode = Mode::Locked;
  proc.txn = msg.txn;  // reused as the lock's transaction id
  schedule_message(
      Message{MsgType::Accept, msg.to, msg.from, msg.txn, loads_[msg.to]});
}

void AsyncSystem::handle_reply(const Message& msg) {
  Proc& proc = procs_[msg.to];
  DLB_ENSURE(proc.mode == Mode::Initiating && msg.txn == proc.txn,
             "reply without a matching open transaction");
  DLB_ENSURE(proc.pending > 0, "more replies than invitations");
  if (msg.type == MsgType::Accept) {
    proc.accepted.push_back(msg.from);
    proc.reported.push_back(msg.payload);
  }
  --proc.pending;
  if (proc.pending == 0) finish_transaction(msg.to);
}

void AsyncSystem::finish_transaction(ProcId p) {
  Proc& proc = procs_[p];
  if (proc.accepted.empty()) {
    ++stats_.aborted_ops;
    proc.mode = Mode::Idle;
    proc.l_old = loads_[p];
    return;
  }
  std::int64_t pool = loads_[p];
  for (std::int64_t l : proc.reported) pool += l;
  const auto m = static_cast<std::int64_t>(proc.accepted.size()) + 1;
  const std::int64_t base = pool / m;
  std::int64_t remainder = pool % m;

  const std::int64_t own_before = loads_[p];
  const std::int64_t own_share = base + (remainder > 0 ? 1 : 0);
  if (remainder > 0) --remainder;
  if (own_share > own_before)
    stats_.packets_moved +=
        static_cast<std::uint64_t>(own_share - own_before);
  loads_[p] = own_share;

  for (std::size_t k = 0; k < proc.accepted.size(); ++k) {
    const std::int64_t share =
        base + (static_cast<std::int64_t>(k) < remainder ? 1 : 0);
    if (share > proc.reported[k])
      stats_.packets_moved +=
          static_cast<std::uint64_t>(share - proc.reported[k]);
    schedule_message(
        Message{MsgType::Assign, p, proc.accepted[k], proc.txn, share});
  }

  ++stats_.balance_ops;
  proc.mode = Mode::Idle;
  proc.l_old = loads_[p];
  proc.accepted.clear();
  proc.reported.clear();
}

void AsyncSystem::handle_assign(const Message& msg) {
  Proc& proc = procs_[msg.to];
  DLB_ENSURE(proc.mode == Mode::Locked && msg.txn == proc.txn,
             "assignment without a matching lock");
  loads_[msg.to] = msg.payload;
  proc.l_old = msg.payload;
  proc.mode = Mode::Idle;
  release(msg.to);
}

void AsyncSystem::release(ProcId p) {
  // Replay demand that arrived while the processor was locked.  The
  // replay itself may initiate a new transaction (execute_app handles
  // all modes), and further deferred events then apply immediately.
  Proc& proc = procs_[p];
  std::vector<std::pair<std::uint32_t, WorkEvent>> pending;
  pending.swap(proc.deferred);
  for (const auto& [t, ev] : pending) execute_app(p, t, ev);
}

void AsyncSystem::maybe_initiate(ProcId p) {
  Proc& proc = procs_[p];
  if (proc.mode != Mode::Idle) return;
  const std::int64_t load = loads_[p];
  const bool grew = load > proc.l_old &&
                    static_cast<double>(load) >=
                        config_.f * static_cast<double>(proc.l_old);
  const bool shrank = load < proc.l_old && proc.l_old >= 1 &&
                      static_cast<double>(load) <=
                          static_cast<double>(proc.l_old) / config_.f;
  if (!grew && !shrank) return;

  proc.mode = Mode::Initiating;
  proc.txn = ++txn_counter_;
  proc.accepted.clear();
  proc.reported.clear();
  std::vector<ProcId> partners;
  if (config_.partner_radius == 0) {
    partners = rng_.sample_distinct(topology_.size(), config_.delta, p);
  } else {
    std::vector<ProcId> ball;
    for (ProcId v = 0; v < topology_.size(); ++v) {
      if (v != p && topology_.distance(p, v) <= config_.partner_radius)
        ball.push_back(v);
    }
    DLB_ENSURE(!ball.empty(), "neighborhood contains no candidates");
    if (ball.size() <= config_.delta) {
      partners = ball;
    } else {
      for (std::uint32_t k : rng_.sample_distinct(
               static_cast<std::uint32_t>(ball.size()), config_.delta,
               static_cast<std::uint32_t>(ball.size() + 1)))
        partners.push_back(ball[k]);
    }
  }
  proc.pending = static_cast<std::uint32_t>(partners.size());
  for (ProcId q : partners)
    schedule_message(Message{MsgType::Invite, p, q, proc.txn, 0});
}

}  // namespace dlb
