// System::run_parallel — the opt-in sharded step driver.
//
// Processors are partitioned into contiguous shards, one thread each,
// with a per-shard RNG stream split off the system generator in shard
// order (so a (seed, workload, shards) triple fully determines the run).
// Every step has two phases:
//
//   Phase 1 (parallel): each shard samples its active processors from
//   its own compiled schedule and applies the *local* halves of the
//   events — generate_packet / consume_packet / try_borrow touch only
//   the owning processor's ledger, so disjoint shards never share data.
//   Anything that would reach across shards (a balance trigger, a debt
//   settlement) is queued, and counters accumulate per shard.
//
//   Phase 2 (serial): the coordinator commits each shard's counters and
//   drains the queues in shard order, drawing from the owning shard's
//   stream.  Triggers are re-checked at execution time (an earlier
//   balance this step may have changed the picture); settlements re-run
//   the borrow after settling.  Recorder output and cost accounting all
//   happen here.
//
// The protocol is reproducible but intentionally NOT bit-identical to
// the sequential driver: the RNG-stream layout differs, and deferred
// triggers interleave differently with balancing.  Tests pin down
// determinism and conservation instead of golden equality.
#include <atomic>
#include <barrier>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "core/system.hpp"
#include "support/check.hpp"
#include "workload/schedule.hpp"

namespace dlb {

void System::run_parallel(const Workload& workload, std::uint32_t shards) {
  DLB_REQUIRE(workload.processors() == processors(),
              "workload size must match the system");
  DLB_REQUIRE(shards >= 1, "at least one shard required");
  DLB_REQUIRE(shards <= processors(), "more shards than processors");

  enum class Deferred : std::uint8_t {
    Trigger,  // generate / own-class consume: balance trigger check due
    Settle,   // borrow capacity exhausted: settle debts, retry borrow
  };

  struct Shard {
    Shard(const Workload& w, std::uint32_t begin, std::uint32_t end, Rng rng)
        : rng(rng), schedule(w, begin, end) {}

    Rng rng;
    ActiveSchedule schedule;
    StepCounters counters;
    // Sampled events and deferred cross-shard work, in event order.
    std::vector<std::pair<std::uint32_t, WorkEvent>> events;
    std::vector<std::pair<Deferred, std::uint32_t>> queue;
  };

  // Contiguous partition: the first (n mod shards) shards get one extra.
  const std::uint32_t n = processors();
  std::vector<Shard> state;
  state.reserve(shards);
  {
    const std::uint32_t base = n / shards;
    const std::uint32_t extra = n % shards;
    std::uint32_t begin = 0;
    for (std::uint32_t s = 0; s < shards; ++s) {
      const std::uint32_t end = begin + base + (s < extra ? 1 : 0);
      // split() draws from rng_, so the stream layout is fixed by the
      // seed and the shard count alone.
      state.emplace_back(workload, begin, end, rng_.split());
      begin = end;
    }
  }

  std::atomic<bool> stop{false};
  std::exception_ptr error;
  std::mutex error_mu;
  const auto record_error = [&] {
    const std::lock_guard<std::mutex> lock(error_mu);
    if (error == nullptr) error = std::current_exception();
    stop.store(true, std::memory_order_release);
  };

  // Two rendezvous per step: one ends phase 1, one ends the serial
  // phase.  Everyone checks the stop flag after the second, so all
  // threads leave the loop at the same step.
  std::barrier sync(static_cast<std::ptrdiff_t>(shards) + 1);

  const auto worker = [&](Shard& shard) {
    for (std::uint32_t t = 0; t < workload.horizon(); ++t) {
      if (!stop.load(std::memory_order_acquire)) {
        try {
          // Sample-then-apply, like the sequential driver: all of the
          // step's workload draws precede any borrow draws.
          shard.events.clear();
          for (const ActiveSchedule::Entry& e : shard.schedule.advance(t)) {
            WorkEvent ev;
            ev.generate = shard.rng.bernoulli(e.phase->generate_prob);
            ev.consume = shard.rng.bernoulli(e.phase->consume_prob);
            if (ev.generate || ev.consume) shard.events.emplace_back(e.proc, ev);
          }
          for (const auto& [p, ev] : shard.events) {
            if (ev.generate) {
              generate_packet(p, shard.rng, shard.counters);
              shard.queue.emplace_back(Deferred::Trigger, p);
            }
            if (ev.consume) {
              switch (consume_packet(p, shard.rng, shard.counters)) {
                case ConsumeLocal::ConsumedOwn:
                  shard.queue.emplace_back(Deferred::Trigger, p);
                  break;
                case ConsumeLocal::NeedsSettle:
                  shard.queue.emplace_back(Deferred::Settle, p);
                  break;
                case ConsumeLocal::ConsumedBorrow:
                case ConsumeLocal::Failed:
                  break;
              }
            }
          }
        } catch (...) {
          record_error();
        }
      }
      sync.arrive_and_wait();  // phase 1 done; coordinator runs serial
      sync.arrive_and_wait();  // serial phase done
      if (stop.load(std::memory_order_acquire)) break;
    }
  };

  std::vector<std::jthread> threads;
  threads.reserve(shards);
  for (std::uint32_t s = 0; s < shards; ++s)
    threads.emplace_back(worker, std::ref(state[s]));

  for (std::uint32_t t = 0; t < workload.horizon(); ++t) {
    sync.arrive_and_wait();  // wait for every shard's phase 1
    if (!stop.load(std::memory_order_acquire)) {
      try {
        for (Shard& shard : state) {
          commit(shard.counters);
          shard.counters = StepCounters{};
        }
        for (Shard& shard : state) {
          for (const auto& [kind, p] : shard.queue) {
            switch (kind) {
              case Deferred::Trigger:
                maybe_balance(p, shard.rng);
                break;
              case Deferred::Settle: {
                // An earlier balance this phase may have cleared the
                // markers (or handed p own-class packets) already.
                if (procs_[p].ledger.borrowed_total() > 0)
                  settle_debts(p, shard.rng);
                StepCounters retry;
                try_borrow(p, shard.rng, retry);
                commit(retry);
                break;
              }
            }
          }
          shard.queue.clear();
        }
        if (post_step_check_) check_invariants();
        emit_loads(t);
      } catch (...) {
        record_error();
      }
    }
    sync.arrive_and_wait();  // release the shards into the next step
    if (stop.load(std::memory_order_acquire)) break;
  }

  threads.clear();  // jthread joins
  if (error != nullptr) std::rethrow_exception(error);
}

}  // namespace dlb
