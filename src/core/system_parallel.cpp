// System::run_parallel — the opt-in sharded step driver.
//
// Processors are partitioned into contiguous shards, one thread each,
// with a per-shard RNG stream split off the system generator in shard
// order (so a (seed, workload, shards) triple fully determines the run).
// Every step has two phases:
//
//   Phase 1 (parallel): each shard samples its active processors from
//   its own compiled schedule and applies the *local* halves of the
//   events — generate_packet / consume_packet / try_borrow touch only
//   the owning processor's ledger, so disjoint shards never share data.
//   Anything that would reach across shards (a balance trigger, a debt
//   settlement) is queued, and counters accumulate per shard.
//
//   Phase 2 (serial): the coordinator commits each shard's counters and
//   drains the queues in shard order, drawing from the owning shard's
//   stream.  Triggers are re-checked at execution time (an earlier
//   balance this step may have changed the picture); settlements re-run
//   the borrow after settling.  Recorder output and cost accounting all
//   happen here.
//
// The protocol is reproducible but intentionally NOT bit-identical to
// the sequential driver: the RNG-stream layout differs, and deferred
// triggers interleave differently with balancing.  Tests pin down
// determinism and conservation instead of golden equality.
#include <atomic>
#include <barrier>
#include <chrono>
#include <cstdint>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/system.hpp"
#include "obs/alloc.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"
#include "workload/schedule.hpp"

namespace dlb {

void System::run_parallel(const Workload& workload, std::uint32_t shards) {
  DLB_REQUIRE(workload.processors() == processors(),
              "workload size must match the system");
  DLB_REQUIRE(shards >= 1, "at least one shard required");
  DLB_REQUIRE(shards <= processors(), "more shards than processors");

  enum class Deferred : std::uint8_t {
    Trigger,  // generate / own-class consume: balance trigger check due
    Settle,   // borrow capacity exhausted: settle debts, retry borrow
  };

  struct Shard {
    Shard(const Workload& w, std::uint32_t begin, std::uint32_t end, Rng rng)
        : rng(rng), schedule(w, begin, end) {}

    Rng rng;
    ActiveSchedule schedule;
    StepCounters counters;
    // Sampled events and deferred cross-shard work, in event order.
    std::vector<std::pair<std::uint32_t, WorkEvent>> events;
    std::vector<std::pair<Deferred, std::uint32_t>> queue;
    // Active processors this step; written in phase 1, read by the
    // coordinator in the serial phase (the barrier orders the accesses).
    std::size_t active = 0;
    // Phase profiling (null when metrics are detached).
    obs::Histogram* work_hist = nullptr;
    obs::Histogram* barrier_hist = nullptr;
    std::uint32_t tid = 0;  // trace track: shard s renders as tid s + 1
    // Phase-1 heap-allocation accounting (merged with the coordinator's
    // tally and published when metrics are attached).
    obs::AllocTally alloc;
  };

  // Contiguous partition: the first (n mod shards) shards get one extra.
  const std::uint32_t n = processors();
  std::vector<Shard> state;
  state.reserve(shards);
  {
    const std::uint32_t base = n / shards;
    const std::uint32_t extra = n % shards;
    std::uint32_t begin = 0;
    for (std::uint32_t s = 0; s < shards; ++s) {
      const std::uint32_t end = begin + base + (s < extra ? 1 : 0);
      // split() draws from rng_, so the stream layout is fixed by the
      // seed and the shard count alone.
      state.emplace_back(workload, begin, end, rng_.split());
      // Zero-alloc opt-in: warm the per-step scratch to its bounds (≤ 1
      // event and ≤ 2 deferred entries per owned processor) so the first
      // unusually busy step — which can land anywhere in the run —
      // doesn't grow the buffers mid-flight.  Gated: the span-scaled
      // reserves touch O(n) fresh pages.
      if (config_.reserve_classes > 0) {
        state.back().events.reserve(end - begin);
        state.back().queue.reserve(2 * static_cast<std::size_t>(end - begin));
      }
      begin = end;
    }
  }

  // Phase profiling: per-shard work / barrier-wait histograms, a serial
  // drain histogram, and trace tracks (tid 0 = the serial coordinator,
  // tid s + 1 = shard s).  `tracing` is latched for the whole run so
  // every thread agrees on whether to read clocks.
  const bool tracing = trace_ != nullptr && trace_->enabled();
  obs::Histogram* drain_hist = nullptr;
  if (metrics_ != nullptr) {
    drain_hist = &metrics_->histogram("run_parallel.serial_drain_ns");
    for (std::uint32_t s = 0; s < shards; ++s) {
      const std::string prefix =
          "run_parallel.shard" + std::to_string(s) + ".";
      state[s].work_hist = &metrics_->histogram(prefix + "work_ns");
      state[s].barrier_hist =
          &metrics_->histogram(prefix + "barrier_wait_ns");
    }
  }
  if (tracing) {
    trace_->set_thread_name(0, "serial (coordinator)");
    for (std::uint32_t s = 0; s < shards; ++s)
      trace_->set_thread_name(s + 1, "shard " + std::to_string(s));
  }
  for (std::uint32_t s = 0; s < shards; ++s) state[s].tid = s + 1;
  // One clock for histograms and spans: the trace epoch when tracing
  // (spans need epoch-relative stamps), the raw steady clock otherwise.
  const auto now_ns = [&]() -> std::uint64_t {
    if (tracing) return trace_->now_ns();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  };

  std::atomic<bool> stop{false};
  std::exception_ptr error;
  std::mutex error_mu;
  const auto record_error = [&] {
    const std::lock_guard<std::mutex> lock(error_mu);
    if (error == nullptr) error = std::current_exception();
    stop.store(true, std::memory_order_release);
  };

  // Two rendezvous per step: one ends phase 1, one ends the serial
  // phase.  Everyone checks the stop flag after the second, so all
  // threads leave the loop at the same step.
  std::barrier sync(static_cast<std::ptrdiff_t>(shards) + 1);

  const bool track_allocs = metrics_ != nullptr;

  const auto worker = [&](Shard& shard) {
    const bool timed = shard.work_hist != nullptr || tracing;
    // Per-thread scratch warmup at startup, not at the thread's first
    // borrow/balance (which can land arbitrarily late in the run).
    warm_thread_scratch();
    obs::AllocPhase alloc_phase;
    if (track_allocs) alloc_phase.rebase();
    for (std::uint32_t t = 0; t < workload.horizon(); ++t) {
      std::uint64_t work_end = 0;
      if (!stop.load(std::memory_order_acquire)) {
        const std::uint64_t work_start = timed ? now_ns() : 0;
        try {
          // Sample-then-apply, like the sequential driver: all of the
          // step's workload draws precede any borrow draws.
          shard.events.clear();
          const auto& entries = shard.schedule.advance(t);
          shard.active = entries.size();
          for (const ActiveSchedule::Entry& e : entries) {
            WorkEvent ev;
            ev.generate = shard.rng.bernoulli(e.phase->generate_prob);
            ev.consume = shard.rng.bernoulli(e.phase->consume_prob);
            if (ev.generate || ev.consume) shard.events.emplace_back(e.proc, ev);
          }
          for (const auto& [p, ev] : shard.events) {
            if (ev.generate) {
              generate_packet(p, shard.rng, shard.counters);
              shard.queue.emplace_back(Deferred::Trigger, p);
            }
            if (ev.consume) {
              switch (consume_packet(p, shard.rng, shard.counters)) {
                case ConsumeLocal::ConsumedOwn:
                  shard.queue.emplace_back(Deferred::Trigger, p);
                  break;
                case ConsumeLocal::NeedsSettle:
                  shard.queue.emplace_back(Deferred::Settle, p);
                  break;
                case ConsumeLocal::ConsumedBorrow:
                case ConsumeLocal::Failed:
                  break;
              }
            }
          }
        } catch (...) {
          record_error();
        }
        if (timed) {
          work_end = now_ns();
          if (shard.work_hist != nullptr)
            shard.work_hist->record(work_end - work_start);
          if (tracing)
            trace_->record("local_phase", "shard", work_start,
                           work_end - work_start, shard.tid, t);
        }
        if (track_allocs)
          shard.alloc.note(static_cast<std::int64_t>(t), alloc_phase.take());
      }
      sync.arrive_and_wait();  // phase 1 done; coordinator runs serial
      sync.arrive_and_wait();  // serial phase done
      // Everything between the end of our local work and the second
      // barrier's release is synchronization: waiting out the slower
      // shards plus the whole serial phase.  This is the number that
      // decides whether sharding pays off (see ROADMAP's NUMA item).
      if (timed && work_end != 0) {
        const std::uint64_t resumed = now_ns();
        if (shard.barrier_hist != nullptr)
          shard.barrier_hist->record(resumed - work_end);
        if (tracing)
          trace_->record("barrier_wait", "shard", work_end,
                         resumed - work_end, shard.tid, t);
      }
      if (stop.load(std::memory_order_acquire)) break;
    }
  };

  std::vector<std::jthread> threads;
  threads.reserve(shards);
  for (std::uint32_t s = 0; s < shards; ++s)
    threads.emplace_back(worker, std::ref(state[s]));

  const bool coordinator_timed = drain_hist != nullptr || tracing;
  warm_thread_scratch();  // the serial drain balances on this thread
  obs::AllocPhase alloc_phase;
  obs::AllocTally alloc_tally;
  for (std::uint32_t t = 0; t < workload.horizon(); ++t) {
    sync.arrive_and_wait();  // wait for every shard's phase 1
    if (!stop.load(std::memory_order_acquire)) {
      const std::uint64_t drain_start = coordinator_timed ? now_ns() : 0;
      if (track_allocs) alloc_phase.rebase();
      try {
        std::size_t active = 0;
        for (const Shard& shard : state) active += shard.active;
        note_active(active);
        for (Shard& shard : state) {
          commit(shard.counters);
          shard.counters = StepCounters{};
        }
        for (Shard& shard : state) {
          for (const auto& [kind, p] : shard.queue) {
            switch (kind) {
              case Deferred::Trigger:
                maybe_balance(p, shard.rng);
                break;
              case Deferred::Settle: {
                // An earlier balance this phase may have cleared the
                // markers (or handed p own-class packets) already.
                if (procs_[p].ledger.borrowed_total() > 0)
                  settle_debts(p, shard.rng);
                StepCounters retry;
                try_borrow(p, shard.rng, retry);
                commit(retry);
                break;
              }
            }
          }
          shard.queue.clear();
        }
        if (post_step_check_) check_invariants();
        emit_loads(t);
      } catch (...) {
        record_error();
      }
      if (track_allocs)
        alloc_tally.note(static_cast<std::int64_t>(t), alloc_phase.delta());
      if (coordinator_timed) {
        const std::uint64_t drain_end = now_ns();
        if (drain_hist != nullptr)
          drain_hist->record(drain_end - drain_start);
        if (tracing)
          trace_->record("serial_drain", "serial", drain_start,
                         drain_end - drain_start, 0, t);
      }
    }
    sync.arrive_and_wait();  // release the shards into the next step
    if (stop.load(std::memory_order_acquire)) break;
  }

  threads.clear();  // jthread joins
  if (track_allocs) {
    for (const Shard& shard : state) alloc_tally.merge(shard.alloc);
    obs::publish(*metrics_, "run_parallel", alloc_tally);
  }
  if (error != nullptr) std::rethrow_exception(error);
}

}  // namespace dlb
