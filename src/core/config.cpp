#include "core/config.hpp"

#include <sstream>

#include "support/check.hpp"

namespace dlb {

void BalancerConfig::validate(std::uint32_t n, bool strict_theory) const {
  DLB_REQUIRE(n >= 2, "the algorithm needs at least two processors");
  DLB_REQUIRE(f >= 1.0, "trigger factor f must be >= 1");
  DLB_REQUIRE(delta >= 1, "partner count delta must be >= 1");
  DLB_REQUIRE(delta < n, "delta must be smaller than the network size");
  if (strict_theory) {
    DLB_REQUIRE(f < static_cast<double>(delta) + 1.0,
                "theory requires 1 <= f < delta + 1");
  }
}

std::string BalancerConfig::describe() const {
  std::ostringstream os;
  os << "f=" << f << " delta=" << delta << " C=" << borrow_cap
     << (analysis_mode ? " (analysis-mode)" : "");
  return os.str();
}

}  // namespace dlb
