// Repeated-run experiment harness (§7's "every experiment was performed
// 100 times").
//
// Each run draws a fresh workload realization and a fresh System seed from
// a master seed, runs the full horizon, and reports into the attached
// recorder between begin_run/end_run brackets.  Invariants are verified at
// the end of every run, so a silently corrupted simulation can never
// produce a figure.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "core/config.hpp"
#include "core/system.hpp"
#include "metrics/recorder.hpp"
#include "support/check.hpp"
#include "workload/workload.hpp"

namespace dlb {

struct ExperimentSpec {
  std::uint32_t processors = 64;
  std::uint32_t horizon = 500;
  std::uint32_t runs = 100;
  BalancerConfig config;
  std::uint64_t seed = 42;
};

/// Factory invoked once per run with a run-specific generator.
using WorkloadFactory =
    std::function<Workload(std::uint32_t processors, std::uint32_t horizon,
                           Rng& rng)>;

/// Runs the experiment; `recorder` receives begin_run / per-step loads /
/// borrow + balance events / end_run for every run.
void run_experiment(const ExperimentSpec& spec,
                    const WorkloadFactory& make_workload,
                    Recorder& recorder);

/// Pre-derived per-run seeds, so parallel and sequential execution of
/// the same spec feed identical (workload, system) randomness per run.
struct RunSeeds {
  Rng workload_rng;
  std::uint64_t system_seed;
};
std::vector<RunSeeds> derive_run_seeds(const ExperimentSpec& spec);

/// Executes one run (given its seeds) against `recorder`.
void run_single(const ExperimentSpec& spec,
                const WorkloadFactory& make_workload, RunSeeds seeds,
                std::uint32_t run_index, Recorder& recorder);

/// Parallel experiment runner: splits the runs over `threads` worker
/// threads, each with its own RecorderT instance created by
/// `make_recorder`, and merges the partial recorders into `result` via
/// RecorderT::merge.  Per-run randomness matches run_experiment exactly,
/// so the aggregate differs from the sequential result only by
/// floating-point merge order (tested).
template <typename RecorderT, typename MakeRecorder>
void run_experiment_parallel(const ExperimentSpec& spec,
                             const WorkloadFactory& make_workload,
                             RecorderT& result, unsigned threads,
                             const MakeRecorder& make_recorder);

/// The §7 benchmark workload factory (paper parameters by default).
WorkloadFactory paper_workload_factory(
    const WorkloadParams& params = WorkloadParams{});

// ---- template implementation ------------------------------------------

template <typename RecorderT, typename MakeRecorder>
void run_experiment_parallel(const ExperimentSpec& spec,
                             const WorkloadFactory& make_workload,
                             RecorderT& result, unsigned threads,
                             const MakeRecorder& make_recorder) {
  DLB_REQUIRE(threads >= 1, "need at least one worker thread");
  const std::vector<RunSeeds> seeds = derive_run_seeds(spec);
  std::vector<RecorderT> partials;
  partials.reserve(threads);
  for (unsigned w = 0; w < threads; ++w) partials.push_back(make_recorder());

  std::vector<std::thread> workers;
  workers.reserve(threads);
  std::atomic<std::uint32_t> next_run{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  for (unsigned w = 0; w < threads; ++w) {
    workers.emplace_back([&, w] {
      try {
        while (true) {
          const std::uint32_t run =
              next_run.fetch_add(1, std::memory_order_relaxed);
          if (run >= spec.runs) break;
          run_single(spec, make_workload, seeds[run], run, partials[w]);
        }
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& worker : workers) worker.join();
  if (first_error) std::rethrow_exception(first_error);
  for (const RecorderT& partial : partials) result.merge(partial);
}

}  // namespace dlb
