// Parameters of the load balancing algorithm.
//
// The paper exposes three knobs and proves how each trades balancing
// quality against cost:
//   f      — trigger factor: a processor starts a balancing operation when
//            its self-generated load has grown or shrunk by a factor f
//            since its last operation.  Smaller f = better balance, more
//            operations (§6).
//   delta  — number of random partners per operation.  Larger delta =
//            better balance (Thm 2: ratio bound delta/(delta+1-f)) at
//            higher per-operation cost.
//   C      — borrow cap: how many packets a processor without
//            self-generated load may "borrow" from other load classes
//            before a (more expensive) remote settlement is forced.
//            Larger C = fewer remote operations, looser additive bound
//            (Thm 4 degrades by +C).
// The theorems need 1 <= f < delta + 1; the constructor-style validate()
// enforces that plus delta < n.
#pragma once

#include <cstdint>
#include <string>

namespace dlb {

struct BalancerConfig {
  /// Trigger factor f (> 1 for a meaningful trigger; theory: f < delta+1).
  double f = 1.1;

  /// Partner count delta (the paper's δ); partners are drawn uniformly
  /// without replacement from the other n-1 processors.
  std::uint32_t delta = 1;

  /// Borrow cap C; 0 disables borrowing entirely (processors without
  /// self-generated load simply cannot consume foreign packets, which is
  /// the pre-§4 model).
  std::uint32_t borrow_cap = 4;

  /// Capacity floor for every processor's sparse ledger, in active-class
  /// entries (clamped to n).  0 (default) grows ledgers on demand —
  /// O(active) memory, but the first deal that lands new classes on a
  /// cold processor reallocates its count vectors.  Deployments chasing
  /// the zero-allocation steady state (DESIGN.md §11) pre-size here:
  /// ~20 B per reserved entry per processor buys allocation-free ledger
  /// writes up to that many concurrently active classes.
  std::uint32_t reserve_classes = 0;

  /// [D7] Analysis-mode class exclusion: during a balancing operation,
  /// load class c of a *non-initiating* participant c is balanced only
  /// among the other participants (its own share stays put), as required
  /// by the §4 proof.  The practical algorithm of [7] (default) balances
  /// every class over all participants.
  bool analysis_mode = false;

  /// Throws contract_error if the configuration is unusable for a network
  /// of n processors.  `strict_theory` additionally enforces f < delta+1
  /// (the hypothesis of Theorems 1-4); the algorithm runs fine outside
  /// that regime, the bounds just no longer apply.
  void validate(std::uint32_t n, bool strict_theory = false) const;

  std::string describe() const;
};

}  // namespace dlb
