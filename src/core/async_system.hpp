// Asynchronous discrete-event simulation of the balancing algorithm with
// explicit message latencies.
//
// §2 of the paper assumes a balancing operation completes in constant
// time independent of distance and data volume.  The synchronous System
// implements that model; AsyncSystem removes the assumption: a balancing
// operation is a three-message transaction (Invite -> Accept/Refuse ->
// Assign) whose messages travel for `hop_latency x distance(u, v)` time
// units on a given topology, while application demand keeps arriving.
// This quantifies how much of the paper's guarantee survives when the
// O(1) abstraction is false — the degradation benches
// (bench/ablation_latency) sweep the hop latency — and exercises the
// refusal-based deadlock-freedom argument under a precise event order.
//
// Protocol states per processor: Idle, Initiating (sent invites, awaits
// all replies; refuses incoming invites), Locked (accepted an invite,
// awaits the assignment; refuses everything else).  The initiator
// equalizes over the loads *reported in the Accept messages*; a locked
// partner defers its application demand until released, so reported
// loads stay exact and packets are conserved.
//
// Determinism: events are ordered by (time, sequence number) and all
// randomness flows from one seeded generator.
#pragma once

#include <cstdint>
#include <optional>
#include <queue>
#include <vector>

#include "net/topology.hpp"
#include "support/rng.hpp"
#include "workload/trace.hpp"

namespace dlb {

struct AsyncConfig {
  double f = 1.1;
  std::uint32_t delta = 1;
  /// Message latency per topology hop, in units of one application time
  /// step.  0 models the paper's instantaneous operations.
  double hop_latency = 0.0;
  /// Locality: when > 0, partners are drawn from the topology ball of
  /// this radius around the initiator instead of the whole network —
  /// with latency enabled this is the natural pairing (short messages).
  unsigned partner_radius = 0;
  std::uint64_t seed = 1;
};

struct AsyncStats {
  std::uint64_t balance_ops = 0;     // completed transactions
  std::uint64_t aborted_ops = 0;     // all partners refused
  std::uint64_t refusals = 0;
  std::uint64_t messages = 0;
  std::uint64_t packets_moved = 0;
  std::uint64_t consume_failures = 0;
  std::uint64_t deferred_events = 0;  // app events delayed by a lock
  std::uint64_t generated = 0;
  std::uint64_t consumed = 0;
};

class AsyncSystem {
 public:
  /// `topology` provides distances for message latency; must outlive the
  /// system.
  AsyncSystem(const Topology& topology, AsyncConfig config);

  /// Replays the trace: processor p's step-t demand enters the event
  /// queue at time t.  Runs until all events (including in-flight
  /// transactions) have drained.  May be called once per instance.
  void run(const Trace& trace);

  const std::vector<std::int64_t>& loads() const { return loads_; }
  const AsyncStats& stats() const { return stats_; }
  /// Simulated time when the last event executed.
  double end_time() const { return now_; }

  /// Per-integer-time-step load snapshots (index t = loads after all
  /// events at time <= t executed); filled by run().
  const std::vector<std::vector<std::int64_t>>& snapshots() const {
    return snapshots_;
  }

 private:
  enum class MsgType : std::uint8_t { Invite, Accept, Refuse, Assign };
  enum class Mode : std::uint8_t { Idle, Initiating, Locked };

  struct Message {
    MsgType type;
    ProcId from;
    ProcId to;
    std::uint64_t txn;
    std::int64_t payload;  // Accept: reported load; Assign: new load
  };

  struct Event {
    double time;
    std::uint64_t seq;
    // Either an application event (app == true) or a message delivery.
    bool app;
    ProcId proc;       // app target
    std::uint32_t t;   // app step
    Message msg;       // valid when !app
  };

  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  struct Proc {
    Mode mode = Mode::Idle;
    std::int64_t l_old = 0;
    // Initiator bookkeeping.
    std::uint64_t txn = 0;
    std::uint32_t pending = 0;
    std::vector<ProcId> accepted;
    std::vector<std::int64_t> reported;
    // Deferred application events while Locked.
    std::vector<std::pair<std::uint32_t, WorkEvent>> deferred;
  };

  void schedule_message(const Message& msg);
  void execute_app(ProcId p, std::uint32_t t, WorkEvent ev);
  void deliver(const Message& msg);
  void handle_invite(const Message& msg);
  void handle_reply(const Message& msg);
  void handle_assign(const Message& msg);
  void maybe_initiate(ProcId p);
  void finish_transaction(ProcId p);
  void release(ProcId p);

  const Topology& topology_;
  AsyncConfig config_;
  Rng rng_;
  std::vector<std::int64_t> loads_;
  std::vector<Proc> procs_;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  double now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint64_t txn_counter_ = 0;
  AsyncStats stats_;
  std::vector<std::vector<std::int64_t>> snapshots_;
  bool used_ = false;
};

}  // namespace dlb
