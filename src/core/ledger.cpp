#include "core/ledger.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace dlb {

namespace {

void insert_sorted(std::vector<std::uint32_t>& v, std::uint32_t j) {
  v.insert(std::lower_bound(v.begin(), v.end(), j), j);
}

void erase_sorted(std::vector<std::uint32_t>& v, std::uint32_t j) {
  const auto it = std::lower_bound(v.begin(), v.end(), j);
  DLB_ENSURE(it != v.end() && *it == j, "sparse index out of sync");
  v.erase(it);
}

}  // namespace

Ledger::Ledger(std::uint32_t classes) : d_(classes, 0), b_(classes, 0) {
  DLB_REQUIRE(classes >= 1, "ledger needs at least one load class");
}

void Ledger::update_active(std::uint32_t j, bool was) {
  const bool now = is_active(j);
  if (was == now) return;
  if (now) {
    insert_sorted(active_, j);
  } else {
    erase_sorted(active_, j);
  }
}

void Ledger::add_real(std::uint32_t j, std::int64_t count) {
  DLB_REQUIRE(j < classes(), "load class out of range");
  DLB_REQUIRE(count >= 0, "cannot add a negative packet count");
  const bool was = is_active(j);
  d_[j] += count;
  real_ += count;
  update_active(j, was);
}

void Ledger::remove_real(std::uint32_t j, std::int64_t count) {
  DLB_REQUIRE(j < classes(), "load class out of range");
  DLB_REQUIRE(count >= 0, "cannot remove a negative packet count");
  DLB_REQUIRE(d_[j] >= count, "not enough real packets of this class");
  const bool was = is_active(j);
  d_[j] -= count;
  real_ -= count;
  update_active(j, was);
}

void Ledger::borrow(std::uint32_t j) {
  DLB_REQUIRE(j < classes(), "load class out of range");
  DLB_REQUIRE(d_[j] > 0, "borrow needs a real packet of the class");
  DLB_REQUIRE(b_[j] == 0, "at most one marker per class (paper, §4)");
  // d + b goes 1 packet -> 1 marker: j stays active throughout.
  d_[j] -= 1;
  real_ -= 1;
  b_[j] += 1;
  borrowed_ += 1;
  insert_sorted(marked_, j);
}

void Ledger::clear_marker(std::uint32_t j) {
  DLB_REQUIRE(j < classes(), "load class out of range");
  DLB_REQUIRE(b_[j] > 0, "no marker of this class to clear");
  const bool was = is_active(j);
  b_[j] -= 1;
  borrowed_ -= 1;
  if (b_[j] == 0) erase_sorted(marked_, j);
  update_active(j, was);
}

void Ledger::repay_with_generation(std::uint32_t j) {
  DLB_REQUIRE(j < classes(), "load class out of range");
  DLB_REQUIRE(b_[j] > 0, "no outstanding debt of this class");
  // Marker -> real packet: j stays active throughout.
  b_[j] -= 1;
  borrowed_ -= 1;
  if (b_[j] == 0) erase_sorted(marked_, j);
  d_[j] += 1;
  real_ += 1;
}

void Ledger::set_d(std::uint32_t j, std::int64_t value) {
  DLB_REQUIRE(j < classes(), "load class out of range");
  DLB_REQUIRE(value >= 0, "negative real count");
  const bool was = is_active(j);
  real_ += value - d_[j];
  d_[j] = value;
  update_active(j, was);
}

void Ledger::set_b(std::uint32_t j, std::int64_t value) {
  DLB_REQUIRE(j < classes(), "load class out of range");
  DLB_REQUIRE(value == 0 || value == 1,
              "marker counts are 0 or 1 (paper, §4)");
  if (b_[j] == value) return;
  const bool was = is_active(j);
  borrowed_ += value - b_[j];
  b_[j] = value;
  if (value > 0) {
    insert_sorted(marked_, j);
  } else {
    erase_sorted(marked_, j);
  }
  update_active(j, was);
}

void Ledger::apply_dealt(const std::uint32_t* cls, std::size_t k,
                         const std::int64_t* d_vals,
                         const std::int64_t* b_vals) {
  DLB_REQUIRE(cls != nullptr || k == 0, "null class list");
  active_merge_.clear();
  marked_merge_.clear();
  std::size_t ai = 0;
  std::size_t mi = 0;
  std::uint32_t prev = 0;
  for (std::size_t c = 0; c < k; ++c) {
    const std::uint32_t j = cls[c];
    DLB_REQUIRE(j < classes(), "load class out of range");
    DLB_REQUIRE(c == 0 || j > prev, "class list must be strictly ascending");
    prev = j;
    DLB_REQUIRE(d_vals[c] >= 0, "negative real count");
    DLB_REQUIRE(b_vals[c] == 0 || b_vals[c] == 1,
                "marker counts are 0 or 1 (paper, §4)");
    // Carry over index entries for classes below j, then drop j's own
    // (re-added below if it remains active/marked).
    while (ai < active_.size() && active_[ai] < j)
      active_merge_.push_back(active_[ai++]);
    const bool was_active = ai < active_.size() && active_[ai] == j;
    if (was_active) ++ai;
    while (mi < marked_.size() && marked_[mi] < j)
      marked_merge_.push_back(marked_[mi++]);
    if (mi < marked_.size() && marked_[mi] == j) ++mi;
    const bool now_active = d_vals[c] > 0 || b_vals[c] > 0;
    // An inactive class has d[j] == b[j] == 0; when it stays zero the
    // dense cells need not be touched at all (avoids pulling their cache
    // lines in for nothing — the common case in sparse deals).
    if (!was_active && !now_active) continue;
    real_ += d_vals[c] - d_[j];
    borrowed_ += b_vals[c] - b_[j];
    d_[j] = d_vals[c];
    b_[j] = b_vals[c];
    if (now_active) active_merge_.push_back(j);
    if (b_vals[c] > 0) marked_merge_.push_back(j);
  }
  while (ai < active_.size()) active_merge_.push_back(active_[ai++]);
  while (mi < marked_.size()) marked_merge_.push_back(marked_[mi++]);
  active_.swap(active_merge_);
  marked_.swap(marked_merge_);
}

void Ledger::replace(std::vector<std::int64_t> d_new,
                     std::vector<std::int64_t> b_new) {
  DLB_REQUIRE(d_new.size() == d_.size() && b_new.size() == b_.size(),
              "replacement vectors must match the class count");
  std::int64_t real = 0;
  std::int64_t borrowed = 0;
  for (std::size_t j = 0; j < d_new.size(); ++j) {
    DLB_REQUIRE(d_new[j] >= 0, "negative real count in replacement");
    DLB_REQUIRE(b_new[j] >= 0, "negative marker count in replacement");
    real += d_new[j];
    borrowed += b_new[j];
  }
  d_ = std::move(d_new);
  b_ = std::move(b_new);
  real_ = real;
  borrowed_ = borrowed;
  rebuild_indexes();
}

void Ledger::rebuild_indexes() {
  active_.clear();
  marked_.clear();
  for (std::uint32_t j = 0; j < classes(); ++j) {
    if (is_active(j)) active_.push_back(j);
    if (b_[j] > 0) marked_.push_back(j);
  }
}

std::uint32_t Ledger::first_marked_class() const {
  return marked_.empty() ? classes() : marked_.front();
}

void Ledger::check(std::uint32_t borrow_cap) const {
  std::int64_t real = 0;
  std::int64_t borrowed = 0;
  std::size_t active_count = 0;
  std::size_t marked_count = 0;
  for (std::size_t j = 0; j < d_.size(); ++j) {
    DLB_ENSURE(d_[j] >= 0, "negative real count");
    DLB_ENSURE(b_[j] >= 0, "negative marker count");
    real += d_[j];
    borrowed += b_[j];
    const auto cls = static_cast<std::uint32_t>(j);
    if (d_[j] > 0 || b_[j] > 0) {
      DLB_ENSURE(active_count < active_.size() &&
                     active_[active_count] == cls,
                 "active-class index out of sync (L3)");
      ++active_count;
    }
    if (b_[j] > 0) {
      DLB_ENSURE(marked_count < marked_.size() &&
                     marked_[marked_count] == cls,
                 "marked-class index out of sync (L4)");
      ++marked_count;
    }
  }
  DLB_ENSURE(active_count == active_.size(),
             "stale entries in the active-class index (L3)");
  DLB_ENSURE(marked_count == marked_.size(),
             "stale entries in the marked-class index (L4)");
  DLB_ENSURE(real == real_, "cached real load out of sync (L1)");
  DLB_ENSURE(borrowed == borrowed_, "cached borrow total out of sync");
  DLB_ENSURE(borrowed_ <= static_cast<std::int64_t>(borrow_cap),
             "borrow cap exceeded (L2)");
}

}  // namespace dlb
