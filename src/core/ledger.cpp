#include "core/ledger.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace dlb {

namespace {

void insert_sorted(std::vector<std::uint32_t>& v, std::uint32_t j) {
  v.insert(std::lower_bound(v.begin(), v.end(), j), j);
}

void erase_sorted(std::vector<std::uint32_t>& v, std::uint32_t j) {
  const auto it = std::lower_bound(v.begin(), v.end(), j);
  DLB_ENSURE(it != v.end() && *it == j, "sparse index out of sync");
  v.erase(it);
}

// The per-thread apply_dealt merge buffers, hoisted to an accessor so
// warm_thread_scratch can pre-size them before a thread's first deal.
struct MergeScratch {
  std::vector<std::uint32_t> active;
  std::vector<std::int64_t> d;
  std::vector<std::int64_t> b;
  std::vector<std::uint32_t> marked;
};

MergeScratch& merge_scratch() {
  thread_local MergeScratch scratch;
  return scratch;
}

}  // namespace

Ledger::Ledger(std::uint32_t classes) : classes_(classes) {
  DLB_REQUIRE(classes >= 1, "ledger needs at least one load class");
}

std::size_t Ledger::lower_slot(std::uint32_t j) const {
  return static_cast<std::size_t>(
      std::lower_bound(active_.begin(), active_.end(), j) - active_.begin());
}

std::size_t Ledger::slot(std::uint32_t j) const {
  if (hint_ < active_.size() && active_[hint_] == j) return hint_;
  const std::size_t pos = lower_slot(j);
  if (pos < active_.size() && active_[pos] == j) return pos;
  return active_.size();
}

std::size_t Ledger::slot(std::uint32_t j) {
  const std::size_t pos = static_cast<const Ledger&>(*this).slot(j);
  if (pos < active_.size()) hint_ = pos;
  return pos;
}

std::int64_t Ledger::d(std::uint32_t j) const {
  const std::size_t pos = slot(j);
  return pos < active_.size() ? d_counts_[pos] : 0;
}

std::int64_t Ledger::b(std::uint32_t j) const {
  const std::size_t pos = slot(j);
  return pos < active_.size() ? b_counts_[pos] : 0;
}

void Ledger::insert_entry(std::size_t pos, std::uint32_t j,
                          std::int64_t d_val, std::int64_t b_val) {
  active_.insert(active_.begin() + static_cast<std::ptrdiff_t>(pos), j);
  d_counts_.insert(d_counts_.begin() + static_cast<std::ptrdiff_t>(pos),
                   d_val);
  b_counts_.insert(b_counts_.begin() + static_cast<std::ptrdiff_t>(pos),
                   b_val);
}

void Ledger::erase_entry(std::size_t pos) {
  active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(pos));
  d_counts_.erase(d_counts_.begin() + static_cast<std::ptrdiff_t>(pos));
  b_counts_.erase(b_counts_.begin() + static_cast<std::ptrdiff_t>(pos));
}

void Ledger::drop_if_zero(std::size_t pos) {
  if (d_counts_[pos] == 0 && b_counts_[pos] == 0) erase_entry(pos);
}

void Ledger::add_real(std::uint32_t j, std::int64_t count) {
  DLB_REQUIRE(j < classes_, "load class out of range");
  DLB_REQUIRE(count >= 0, "cannot add a negative packet count");
  const std::size_t pos = lower_slot(j);
  if (pos < active_.size() && active_[pos] == j) {
    d_counts_[pos] += count;
  } else if (count > 0) {
    insert_entry(pos, j, count, 0);
  }
  real_ += count;
}

void Ledger::remove_real(std::uint32_t j, std::int64_t count) {
  DLB_REQUIRE(j < classes_, "load class out of range");
  DLB_REQUIRE(count >= 0, "cannot remove a negative packet count");
  const std::size_t pos = slot(j);
  const std::int64_t held = pos < active_.size() ? d_counts_[pos] : 0;
  DLB_REQUIRE(held >= count, "not enough real packets of this class");
  if (pos < active_.size()) {
    d_counts_[pos] -= count;
    drop_if_zero(pos);
  }
  real_ -= count;
}

void Ledger::borrow(std::uint32_t j) {
  DLB_REQUIRE(j < classes_, "load class out of range");
  const std::size_t pos = slot(j);
  DLB_REQUIRE(pos < active_.size() && d_counts_[pos] > 0,
              "borrow needs a real packet of the class");
  DLB_REQUIRE(b_counts_[pos] == 0, "at most one marker per class (paper, §4)");
  // d + b goes 1 packet -> 1 marker: the entry stays active throughout.
  d_counts_[pos] -= 1;
  b_counts_[pos] += 1;
  real_ -= 1;
  borrowed_ += 1;
  insert_sorted(marked_, j);
}

void Ledger::clear_marker(std::uint32_t j) {
  DLB_REQUIRE(j < classes_, "load class out of range");
  const std::size_t pos = slot(j);
  DLB_REQUIRE(pos < active_.size() && b_counts_[pos] > 0,
              "no marker of this class to clear");
  b_counts_[pos] -= 1;
  borrowed_ -= 1;
  if (b_counts_[pos] == 0) erase_sorted(marked_, j);
  drop_if_zero(pos);
}

void Ledger::repay_with_generation(std::uint32_t j) {
  DLB_REQUIRE(j < classes_, "load class out of range");
  const std::size_t pos = slot(j);
  DLB_REQUIRE(pos < active_.size() && b_counts_[pos] > 0,
              "no outstanding debt of this class");
  // Marker -> real packet: the entry stays active throughout.
  b_counts_[pos] -= 1;
  borrowed_ -= 1;
  if (b_counts_[pos] == 0) erase_sorted(marked_, j);
  d_counts_[pos] += 1;
  real_ += 1;
}

void Ledger::set_d(std::uint32_t j, std::int64_t value) {
  DLB_REQUIRE(j < classes_, "load class out of range");
  DLB_REQUIRE(value >= 0, "negative real count");
  const std::size_t pos = lower_slot(j);
  if (pos < active_.size() && active_[pos] == j) {
    real_ += value - d_counts_[pos];
    d_counts_[pos] = value;
    drop_if_zero(pos);
  } else if (value > 0) {
    insert_entry(pos, j, value, 0);
    real_ += value;
  }
}

void Ledger::set_b(std::uint32_t j, std::int64_t value) {
  DLB_REQUIRE(j < classes_, "load class out of range");
  DLB_REQUIRE(value == 0 || value == 1,
              "marker counts are 0 or 1 (paper, §4)");
  const std::size_t pos = lower_slot(j);
  if (pos < active_.size() && active_[pos] == j) {
    if (b_counts_[pos] == value) return;
    borrowed_ += value - b_counts_[pos];
    b_counts_[pos] = value;
    if (value > 0) {
      insert_sorted(marked_, j);
    } else {
      erase_sorted(marked_, j);
      drop_if_zero(pos);
    }
  } else if (value > 0) {
    insert_entry(pos, j, 0, 1);
    borrowed_ += 1;
    insert_sorted(marked_, j);
  }
}

void Ledger::apply_dealt(const std::uint32_t* cls, std::size_t k,
                         const std::int64_t* d_vals,
                         const std::int64_t* b_vals) {
  DLB_REQUIRE(cls != nullptr || k == 0, "null class list");
  // Shared merge scratch: one warm buffer set per thread instead of four
  // growth-cascading vectors per ledger.  The final swap donates the
  // merged buffers to this ledger and parks its old vectors here, so
  // capacities circulate and reach the steady-state maximum after a few
  // balancing operations — after which the write-back allocates nothing.
  MergeScratch& merge = merge_scratch();
  std::vector<std::uint32_t>& active_merge_ = merge.active;
  std::vector<std::int64_t>& d_merge_ = merge.d;
  std::vector<std::int64_t>& b_merge_ = merge.b;
  std::vector<std::uint32_t>& marked_merge_ = merge.marked;
  active_merge_.clear();
  d_merge_.clear();
  b_merge_.clear();
  marked_merge_.clear();
  const std::size_t max_entries = active_.size() + k;
  if (active_merge_.capacity() < max_entries) {
    const std::size_t cap =
        std::max(max_entries, 2 * active_merge_.capacity());
    active_merge_.reserve(cap);
    d_merge_.reserve(cap);
    b_merge_.reserve(cap);
    marked_merge_.reserve(cap);
  }
  std::size_t ai = 0;
  std::size_t mi = 0;
  std::uint32_t prev = 0;
  for (std::size_t c = 0; c < k; ++c) {
    const std::uint32_t j = cls[c];
    DLB_REQUIRE(j < classes_, "load class out of range");
    DLB_REQUIRE(c == 0 || j > prev, "class list must be strictly ascending");
    prev = j;
    DLB_REQUIRE(d_vals[c] >= 0, "negative real count");
    DLB_REQUIRE(b_vals[c] == 0 || b_vals[c] == 1,
                "marker counts are 0 or 1 (paper, §4)");
    // Carry over entries for classes below j, then drop j's own (re-added
    // below if it remains active/marked).
    while (ai < active_.size() && active_[ai] < j) {
      active_merge_.push_back(active_[ai]);
      d_merge_.push_back(d_counts_[ai]);
      b_merge_.push_back(b_counts_[ai]);
      ++ai;
    }
    std::int64_t old_d = 0;
    std::int64_t old_b = 0;
    if (ai < active_.size() && active_[ai] == j) {
      old_d = d_counts_[ai];
      old_b = b_counts_[ai];
      ++ai;
    }
    while (mi < marked_.size() && marked_[mi] < j)
      marked_merge_.push_back(marked_[mi++]);
    if (mi < marked_.size() && marked_[mi] == j) ++mi;
    real_ += d_vals[c] - old_d;
    borrowed_ += b_vals[c] - old_b;
    if (d_vals[c] > 0 || b_vals[c] > 0) {
      active_merge_.push_back(j);
      d_merge_.push_back(d_vals[c]);
      b_merge_.push_back(b_vals[c]);
    }
    if (b_vals[c] > 0) marked_merge_.push_back(j);
  }
  while (ai < active_.size()) {
    active_merge_.push_back(active_[ai]);
    d_merge_.push_back(d_counts_[ai]);
    b_merge_.push_back(b_counts_[ai]);
    ++ai;
  }
  while (mi < marked_.size()) marked_merge_.push_back(marked_[mi++]);
  active_.swap(active_merge_);
  d_counts_.swap(d_merge_);
  b_counts_.swap(b_merge_);
  marked_.swap(marked_merge_);
}

void Ledger::replace_dealt(const std::uint32_t* cls, std::size_t k,
                           const std::int64_t* d_vals,
                           const std::int64_t* b_vals) {
  DLB_REQUIRE(cls != nullptr || k == 0, "null class list");
  // Pass 1 (pure reads): validate the dealt columns, verify the superset
  // precondition by walking the old active list alongside cls, and sum the
  // new totals.  Because cls covers every active class, the post state is
  // determined by the dealt arrays alone: real_/borrowed_ are plain sums
  // and no old entry survives outside cls.
  std::size_t ai = 0;
  std::uint32_t prev = 0;
  std::int64_t real = 0;
  std::int64_t borrowed = 0;
  for (std::size_t c = 0; c < k; ++c) {
    const std::uint32_t j = cls[c];
    DLB_REQUIRE(j < classes_, "load class out of range");
    DLB_REQUIRE(c == 0 || j > prev, "class list must be strictly ascending");
    prev = j;
    DLB_REQUIRE(d_vals[c] >= 0, "negative real count");
    DLB_REQUIRE(b_vals[c] == 0 || b_vals[c] == 1,
                "marker counts are 0 or 1 (paper, §4)");
    if (ai < active_.size() && active_[ai] == j) ++ai;
    real += d_vals[c];
    borrowed += b_vals[c];
  }
  DLB_REQUIRE(ai == active_.size(),
              "replace_dealt needs cls to cover every active class");
  // Pass 2: rebuild the compact storage in place — the old contents are
  // fully superseded, so no merge (and no scratch buffer) is needed.
  active_.clear();
  d_counts_.clear();
  b_counts_.clear();
  marked_.clear();
  if (active_.capacity() < k) {
    const std::size_t cap = std::max(k, 2 * active_.capacity());
    active_.reserve(cap);
    d_counts_.reserve(cap);
    b_counts_.reserve(cap);
  }
  for (std::size_t c = 0; c < k; ++c) {
    if (d_vals[c] > 0 || b_vals[c] > 0) {
      active_.push_back(cls[c]);
      d_counts_.push_back(d_vals[c]);
      b_counts_.push_back(b_vals[c]);
      if (b_vals[c] > 0) marked_.push_back(cls[c]);
    }
  }
  real_ = real;
  borrowed_ = borrowed;
}

void Ledger::replace(std::vector<std::int64_t> d_new,
                     std::vector<std::int64_t> b_new) {
  DLB_REQUIRE(d_new.size() == classes_ && b_new.size() == classes_,
              "replacement vectors must match the class count");
  std::int64_t real = 0;
  std::int64_t borrowed = 0;
  for (std::size_t j = 0; j < d_new.size(); ++j) {
    DLB_REQUIRE(d_new[j] >= 0, "negative real count in replacement");
    DLB_REQUIRE(b_new[j] >= 0, "negative marker count in replacement");
    real += d_new[j];
    borrowed += b_new[j];
  }
  active_.clear();
  d_counts_.clear();
  b_counts_.clear();
  marked_.clear();
  for (std::uint32_t j = 0; j < classes_; ++j) {
    if (d_new[j] > 0 || b_new[j] > 0) {
      active_.push_back(j);
      d_counts_.push_back(d_new[j]);
      b_counts_.push_back(b_new[j]);
    }
    if (b_new[j] > 0) marked_.push_back(j);
  }
  real_ = real;
  borrowed_ = borrowed;
}

void Ledger::reserve_active(std::uint32_t k) {
  const auto cap = static_cast<std::size_t>(std::min(k, classes_));
  active_.reserve(cap);
  d_counts_.reserve(cap);
  b_counts_.reserve(cap);
  marked_.reserve(cap);
}

void Ledger::warm_thread_scratch(std::size_t entries) {
  MergeScratch& scratch = merge_scratch();
  if (scratch.active.capacity() >= entries) return;
  scratch.active.reserve(entries);
  scratch.d.reserve(entries);
  scratch.b.reserve(entries);
  scratch.marked.reserve(entries);
}

std::uint32_t Ledger::first_marked_class() const {
  return marked_.empty() ? classes_ : marked_.front();
}

void Ledger::check(std::uint32_t borrow_cap) const {
  DLB_ENSURE(d_counts_.size() == active_.size() &&
                 b_counts_.size() == active_.size(),
             "parallel count vectors out of shape (S2)");
  std::int64_t real = 0;
  std::int64_t borrowed = 0;
  std::size_t marked_count = 0;
  for (std::size_t i = 0; i < active_.size(); ++i) {
    DLB_ENSURE(active_[i] < classes_, "active class out of range (S1)");
    DLB_ENSURE(i == 0 || active_[i] > active_[i - 1],
               "active classes not strictly ascending (S1/L3)");
    DLB_ENSURE(d_counts_[i] >= 0, "negative real count");
    DLB_ENSURE(b_counts_[i] >= 0, "negative marker count");
    DLB_ENSURE(d_counts_[i] > 0 || b_counts_[i] > 0,
               "zero entry stored in the compact ledger (S1)");
    real += d_counts_[i];
    borrowed += b_counts_[i];
    if (b_counts_[i] > 0) {
      DLB_ENSURE(marked_count < marked_.size() &&
                     marked_[marked_count] == active_[i],
                 "marked-class index out of sync (L4)");
      ++marked_count;
    }
  }
  DLB_ENSURE(marked_count == marked_.size(),
             "stale entries in the marked-class index (L4)");
  DLB_ENSURE(real == real_, "cached real load out of sync (L1)");
  DLB_ENSURE(borrowed == borrowed_, "cached borrow total out of sync");
  DLB_ENSURE(borrowed_ <= static_cast<std::int64_t>(borrow_cap),
             "borrow cap exceeded (L2)");
}

std::vector<std::int64_t> Ledger::dense_d() const {
  std::vector<std::int64_t> out(classes_, 0);
  for (std::size_t i = 0; i < active_.size(); ++i)
    out[active_[i]] = d_counts_[i];
  return out;
}

std::vector<std::int64_t> Ledger::dense_b() const {
  std::vector<std::int64_t> out(classes_, 0);
  for (std::size_t i = 0; i < active_.size(); ++i)
    out[active_[i]] = b_counts_[i];
  return out;
}

std::size_t Ledger::memory_bytes() const {
  return active_.capacity() * sizeof(std::uint32_t) +
         d_counts_.capacity() * sizeof(std::int64_t) +
         b_counts_.capacity() * sizeof(std::int64_t) +
         marked_.capacity() * sizeof(std::uint32_t);
}

}  // namespace dlb
