#include "core/ledger.hpp"

#include <numeric>

#include "support/check.hpp"

namespace dlb {

Ledger::Ledger(std::uint32_t classes) : d_(classes, 0), b_(classes, 0) {
  DLB_REQUIRE(classes >= 1, "ledger needs at least one load class");
}

void Ledger::add_real(std::uint32_t j, std::int64_t count) {
  DLB_REQUIRE(j < classes(), "load class out of range");
  DLB_REQUIRE(count >= 0, "cannot add a negative packet count");
  d_[j] += count;
  real_ += count;
}

void Ledger::remove_real(std::uint32_t j, std::int64_t count) {
  DLB_REQUIRE(j < classes(), "load class out of range");
  DLB_REQUIRE(count >= 0, "cannot remove a negative packet count");
  DLB_REQUIRE(d_[j] >= count, "not enough real packets of this class");
  d_[j] -= count;
  real_ -= count;
}

void Ledger::borrow(std::uint32_t j) {
  DLB_REQUIRE(j < classes(), "load class out of range");
  DLB_REQUIRE(d_[j] > 0, "borrow needs a real packet of the class");
  DLB_REQUIRE(b_[j] == 0, "at most one marker per class (paper, §4)");
  d_[j] -= 1;
  real_ -= 1;
  b_[j] += 1;
  borrowed_ += 1;
}

void Ledger::clear_marker(std::uint32_t j) {
  DLB_REQUIRE(j < classes(), "load class out of range");
  DLB_REQUIRE(b_[j] > 0, "no marker of this class to clear");
  b_[j] -= 1;
  borrowed_ -= 1;
}

void Ledger::repay_with_generation(std::uint32_t j) {
  DLB_REQUIRE(j < classes(), "load class out of range");
  DLB_REQUIRE(b_[j] > 0, "no outstanding debt of this class");
  b_[j] -= 1;
  borrowed_ -= 1;
  d_[j] += 1;
  real_ += 1;
}

void Ledger::replace(std::vector<std::int64_t> d_new,
                     std::vector<std::int64_t> b_new) {
  DLB_REQUIRE(d_new.size() == d_.size() && b_new.size() == b_.size(),
              "replacement vectors must match the class count");
  std::int64_t real = 0;
  std::int64_t borrowed = 0;
  for (std::size_t j = 0; j < d_new.size(); ++j) {
    DLB_REQUIRE(d_new[j] >= 0, "negative real count in replacement");
    DLB_REQUIRE(b_new[j] >= 0, "negative marker count in replacement");
    real += d_new[j];
    borrowed += b_new[j];
  }
  d_ = std::move(d_new);
  b_ = std::move(b_new);
  real_ = real;
  borrowed_ = borrowed;
}

std::uint32_t Ledger::first_marked_class() const {
  for (std::uint32_t j = 0; j < classes(); ++j)
    if (b_[j] > 0) return j;
  return classes();
}

void Ledger::check(std::uint32_t borrow_cap) const {
  std::int64_t real = 0;
  std::int64_t borrowed = 0;
  for (std::size_t j = 0; j < d_.size(); ++j) {
    DLB_ENSURE(d_[j] >= 0, "negative real count");
    DLB_ENSURE(b_[j] >= 0, "negative marker count");
    real += d_[j];
    borrowed += b_[j];
  }
  DLB_ENSURE(real == real_, "cached real load out of sync (L1)");
  DLB_ENSURE(borrowed == borrowed_, "cached borrow total out of sync");
  DLB_ENSURE(borrowed_ <= static_cast<std::int64_t>(borrow_cap),
             "borrow cap exceeded (L2)");
}

}  // namespace dlb
