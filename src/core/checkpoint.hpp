// Checkpoint / restore for the sequential simulator.
//
// Long experiments (the 1024-processor scalability sweeps, multi-million
// step soak runs) need resumability, and regression fixtures need a way
// to pin down a mid-run state.  The checkpoint captures *everything* that
// determines future behaviour — configuration, PRNG state, every ledger,
// trigger baselines, local clocks, statistics and cost counters — so a
// restored System continues bit-identically to an uninterrupted one
// (tested in tests/core/checkpoint_test.cpp).
//
// Format: versioned line-oriented text ("dlb-checkpoint 2"), endianness-
// and locale-independent.  Version 2 serializes each ledger sparsely as
// ascending (class, d, b) triples — O(active) bytes per processor, the
// on-disk mirror of the in-memory compact storage.  Version 1 files
// (dense 2n-cell rows) are still restorable.
#pragma once

#include <iosfwd>

#include "core/system.hpp"

namespace dlb {

/// Writes the complete state of `system` to `os`.
void save_checkpoint(const System& system, std::ostream& os);

/// Reconstructs a System from a checkpoint.  `topology` must be the same
/// network the saved system used (pass nullptr if none was used); it is
/// NOT serialized because Topology is shared, immutable context.
System load_checkpoint(std::istream& is, const Topology* topology = nullptr);

}  // namespace dlb
