// Checkpoint / restore for the sequential simulator.
//
// Long experiments (the 1024-processor scalability sweeps, multi-million
// step soak runs) need resumability, and regression fixtures need a way
// to pin down a mid-run state.  The checkpoint captures *everything* that
// determines future behaviour — configuration, PRNG state, every ledger,
// trigger baselines, local clocks, statistics and cost counters — so a
// restored System continues bit-identically to an uninterrupted one
// (tested in tests/core/checkpoint_test.cpp).
//
// Format: versioned line-oriented text ("dlb-checkpoint 2"), endianness-
// and locale-independent.  Version 2 serializes each ledger sparsely as
// ascending (class, d, b) triples — O(active) bytes per processor, the
// on-disk mirror of the in-memory compact storage.  Version 1 files
// (dense 2n-cell rows) are still restorable.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "core/system.hpp"

namespace dlb {

/// Writes the complete state of `system` to `os`.
void save_checkpoint(const System& system, std::ostream& os);

/// Reconstructs a System from a checkpoint.  `topology` must be the same
/// network the saved system used (pass nullptr if none was used); it is
/// NOT serialized because Topology is shared, immutable context.
System load_checkpoint(std::istream& is, const Topology* topology = nullptr);

/// Crash-recovery journal for the distributed runtimes.
///
/// Each rank reports (load, generated, consumed) once per step; the
/// journal commits the load at every `interval`-step checkpoint boundary
/// and keeps an always-current shadow.  When a rank crashes, its
/// recovered load is the last *committed* value and the drift since that
/// boundary — work the crash destroyed — is returned as declared loss,
/// so conservation checks can hold modulo declared loss:
///
///   sum(final loads) == generated - consumed - declared_lost
///
/// Concurrency contract: each rank slot has exactly one writer (that
/// rank's thread); aggregate readers run only after the threads joined.
class LoadJournal {
 public:
  LoadJournal() = default;
  LoadJournal(std::uint32_t ranks, std::uint32_t interval);

  /// Re-arms the journal for a fresh run (same shape).
  void reset();

  /// Called by rank `rank`'s thread once per step, after applying the
  /// step's demand.  Commits at boundaries (step % interval == 0).
  void observe(std::uint32_t rank, std::uint32_t step, std::int64_t load,
               std::int64_t generated, std::int64_t consumed);

  /// Called by the crashing rank's thread as it dies.  Freezes the slot
  /// and returns the load lost since the last checkpoint boundary
  /// (shadow - committed; may be negative if load shrank since).
  std::int64_t on_crash(std::uint32_t rank);

  std::uint32_t ranks() const {
    return static_cast<std::uint32_t>(slots_.size());
  }
  std::uint32_t interval() const { return interval_; }

  /// The recovered load of `rank`: last committed value for crashed
  /// ranks, current shadow for live ones.
  std::int64_t recovered_load(std::uint32_t rank) const;
  /// Exact counters at the last observe() (crash-exact for dead ranks).
  std::int64_t generated(std::uint32_t rank) const;
  std::int64_t consumed(std::uint32_t rank) const;
  bool crashed(std::uint32_t rank) const;

  /// Sum over crashed ranks of (load at death - last committed load).
  std::int64_t total_crash_loss() const;

 private:
  struct Slot {
    std::int64_t shadow_load = 0;
    std::int64_t committed_load = 0;
    std::int64_t generated = 0;
    std::int64_t consumed = 0;
    std::int64_t crash_loss = 0;
    bool committed_once = false;
    bool crashed = false;
  };
  std::uint32_t interval_ = 1;
  std::vector<Slot> slots_;
};

}  // namespace dlb
