#include "core/snake.hpp"

#include "support/check.hpp"

namespace dlb {

std::size_t snake_redistribute(
    std::vector<std::vector<std::int64_t>>& counts,
    const SnakeOptions& options) {
  const std::size_t m = counts.size();
  DLB_REQUIRE(m >= 1, "snake_redistribute needs participants");
  const std::size_t classes = counts[0].size();
  for (const auto& row : counts)
    DLB_REQUIRE(row.size() == classes, "ragged count matrix");
  DLB_REQUIRE(options.start < m || m == 0, "dealing start out of range");
  const auto* excluded = options.excluded_participant_per_class;
  DLB_REQUIRE(excluded == nullptr || excluded->size() == classes,
              "exclusion vector must have one entry per class");

  std::size_t ptr = options.start;
  for (std::size_t j = 0; j < classes; ++j) {
    const std::size_t skip =
        excluded ? (*excluded)[j] : static_cast<std::size_t>(-1);
    // Pool the class over the participating (non-excluded) rows.
    std::int64_t pool = 0;
    std::size_t dealt_to = 0;
    for (std::size_t p = 0; p < m; ++p) {
      if (p == skip) continue;
      DLB_REQUIRE(counts[p][j] >= 0, "negative packet count");
      pool += counts[p][j];
      ++dealt_to;
    }
    if (dealt_to == 0) continue;  // every participant excluded (m==1 case)
    const std::int64_t base = pool / static_cast<std::int64_t>(dealt_to);
    std::int64_t remainder = pool % static_cast<std::int64_t>(dealt_to);
    for (std::size_t p = 0; p < m; ++p) {
      if (p == skip) continue;
      counts[p][j] = base;
    }
    // Deal the remainder with the circulating pointer, skipping the
    // excluded row without advancing the global deal for it.
    while (remainder > 0) {
      if (ptr != skip) {
        counts[ptr][j] += 1;
        --remainder;
      }
      ptr = (ptr + 1) % m;
    }
  }
  return ptr;
}

std::uint64_t count_moves(
    const std::vector<std::vector<std::int64_t>>& before,
    const std::vector<std::vector<std::int64_t>>& after) {
  DLB_REQUIRE(before.size() == after.size(), "matrix shape mismatch");
  std::uint64_t moves = 0;
  for (std::size_t p = 0; p < before.size(); ++p) {
    DLB_REQUIRE(before[p].size() == after[p].size(), "matrix shape mismatch");
    for (std::size_t j = 0; j < before[p].size(); ++j) {
      const std::int64_t diff = after[p][j] - before[p][j];
      if (diff > 0) moves += static_cast<std::uint64_t>(diff);
    }
  }
  return moves;
}

}  // namespace dlb
