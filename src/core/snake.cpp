#include "core/snake.hpp"

#include "support/check.hpp"

namespace dlb {

namespace {

std::vector<std::int64_t>& snake_old_col() {
  thread_local std::vector<std::int64_t> old_col;
  return old_col;
}

}  // namespace

void snake_warm_thread_scratch(std::size_t rows) {
  snake_old_col().reserve(rows);
}

std::size_t snake_redistribute(
    std::vector<std::vector<std::int64_t>>& counts,
    const SnakeOptions& options) {
  const std::size_t m = counts.size();
  DLB_REQUIRE(m >= 1, "snake_redistribute needs participants");
  const std::size_t classes = counts[0].size();
  for (const auto& row : counts)
    DLB_REQUIRE(row.size() == classes, "ragged count matrix");
  DLB_REQUIRE(options.start < m || m == 0, "dealing start out of range");
  const auto* excluded = options.excluded_participant_per_class;
  DLB_REQUIRE(excluded == nullptr || excluded->size() == classes,
              "exclusion vector must have one entry per class");

  std::size_t ptr = options.start;
  for (std::size_t j = 0; j < classes; ++j) {
    const std::size_t skip =
        excluded ? (*excluded)[j] : static_cast<std::size_t>(-1);
    // Pool the class over the participating (non-excluded) rows.
    std::int64_t pool = 0;
    std::size_t dealt_to = 0;
    for (std::size_t p = 0; p < m; ++p) {
      if (p == skip) continue;
      DLB_REQUIRE(counts[p][j] >= 0, "negative packet count");
      pool += counts[p][j];
      ++dealt_to;
    }
    if (dealt_to == 0) continue;  // every participant excluded (m==1 case)
    const std::int64_t base = pool / static_cast<std::int64_t>(dealt_to);
    std::int64_t remainder = pool % static_cast<std::int64_t>(dealt_to);
    for (std::size_t p = 0; p < m; ++p) {
      if (p == skip) continue;
      counts[p][j] = base;
    }
    // Deal the remainder with the circulating pointer, skipping the
    // excluded row without advancing the global deal for it.
    while (remainder > 0) {
      if (ptr != skip) {
        counts[ptr][j] += 1;
        --remainder;
      }
      ptr = (ptr + 1) % m;
    }
  }
  return ptr;
}

std::size_t snake_redistribute(std::int64_t* counts, std::size_t rows,
                               std::size_t columns,
                               const SnakeCompactOptions& options) {
  DLB_REQUIRE(counts != nullptr, "null compact count matrix");
  DLB_REQUIRE(rows >= 1, "snake_redistribute needs participants");
  DLB_REQUIRE(options.start < rows, "dealing start out of range");

  // Old column values for the flow accounting; rows is tiny (delta + 1)
  // but unbounded by the API, so the buffer is a warm thread-local
  // instead of a per-call allocation (deals run on every balancing
  // operation, and the async shards deal concurrently).  No recursion:
  // snake_redistribute never calls back into itself through the sink.
  std::vector<std::int64_t>& old_col = snake_old_col();
  old_col.assign(options.flows != nullptr ? rows : 0, 0);
  const bool pair_flows =
      options.flows != nullptr && options.flows->wants_pair_flows();

  std::size_t ptr = options.start;
  for (std::size_t c = 0; c < columns; ++c) {
    const std::size_t skip = options.excluded_row_per_column
                                 ? options.excluded_row_per_column[c]
                                 : static_cast<std::size_t>(-1);
    std::int64_t pool = 0;
    std::size_t dealt_to = 0;
    for (std::size_t p = 0; p < rows; ++p) {
      const std::int64_t v = counts[p * columns + c];
      if (options.flows != nullptr) old_col[p] = v;
      if (p == skip) continue;
      DLB_REQUIRE(v >= 0, "negative packet count");
      pool += v;
      ++dealt_to;
    }
    if (dealt_to == 0) continue;  // every participant excluded (rows==1)
    // Empty pool: every dealt cell is already zero, nothing moves and the
    // pointer does not advance — skipping the column is bit-identical.
    // (This makes dealing an all-zero marker matrix near-free.)
    if (pool == 0) continue;
    // Common sparse case pool < dealt_to needs no division at all.
    const std::int64_t parties = static_cast<std::int64_t>(dealt_to);
    const std::int64_t base = pool < parties ? 0 : pool / parties;
    std::int64_t remainder = pool - base * parties;
    for (std::size_t p = 0; p < rows; ++p) {
      if (p == skip) continue;
      counts[p * columns + c] = base;
    }
    while (remainder > 0) {
      if (ptr != skip) {
        counts[ptr * columns + c] += 1;
        --remainder;
      }
      if (++ptr == rows) ptr = 0;
    }

    if (options.flows == nullptr) continue;
    if (!pair_flows) {
      // Aggregate accounting: the sink needs no (from, to) attribution,
      // so report the column's surplus and per-row deltas in one call.
      std::int64_t moved = 0;
      for (std::size_t p = 0; p < rows; ++p) {
        const std::int64_t delta = counts[p * columns + c] - old_col[p];
        old_col[p] = delta;  // reuse the buffer for the delta report
        if (delta < 0) moved -= delta;
      }
      if (moved > 0)
        options.flows->on_column_moved(c, moved, old_col.data());
      continue;
    }
    // Delta accounting: greedily match this column's surplus rows to its
    // deficit rows, both sides scanned in ascending row order — the same
    // matching (and therefore the same flow sequence) the dense
    // before/after diff used to produce.
    std::size_t give = 0;
    std::size_t take = 0;
    while (true) {
      while (give < rows && counts[give * columns + c] >= old_col[give])
        ++give;
      while (take < rows && counts[take * columns + c] <= old_col[take])
        ++take;
      if (give >= rows || take >= rows) break;
      const std::int64_t lost = old_col[give] - counts[give * columns + c];
      const std::int64_t gained = counts[take * columns + c] - old_col[take];
      const std::int64_t amount = lost < gained ? lost : gained;
      options.flows->on_flow(c, give, take, amount);
      old_col[give] -= amount;
      old_col[take] += amount;
    }
  }
  return ptr;
}

}  // namespace dlb
