#include "core/quiescence.hpp"

#include "support/check.hpp"

namespace dlb {

QuiescenceDetector::QuiescenceDetector(std::uint32_t shards)
    : shards_(shards), local_(shards) {
  DLB_REQUIRE(shards >= 1, "quiescence detector needs at least one shard");
}

void QuiescenceDetector::on_send(std::uint32_t s, std::uint64_t n) {
  local_[s].counter += static_cast<std::int64_t>(n);
}

void QuiescenceDetector::on_receive(std::uint32_t s, std::uint64_t n) {
  local_[s].counter -= static_cast<std::int64_t>(n);
  local_[s].black = true;
}

bool QuiescenceDetector::holds_token(std::uint32_t s) const {
  return token_at_.load(std::memory_order_acquire) == s;
}

bool QuiescenceDetector::forward_token(std::uint32_t s) {
  DLB_REQUIRE(holds_token(s), "forwarding a token the shard does not hold");
  ShardState& me = local_[s];
  if (s != 0) {
    // Fold local state into the token, whiten, pass on.
    token_count_ += me.counter;
    if (me.black) token_black_ = true;
    me.black = false;
    token_at_.store(s + 1 == shards_ ? 0 : s + 1,
                    std::memory_order_release);
    return false;
  }
  // Initiator.  A returned circle is evaluated first; only a fully white
  // circle with a zero global count proves no shard is active and no
  // message is in flight.
  if (probing_) {
    circles_.fetch_add(1, std::memory_order_relaxed);
    if (!token_black_ && !me.black && token_count_ + me.counter == 0) {
      quiescent_.store(true, std::memory_order_release);
      return true;  // token retained by the initiator
    }
  }
  // Launch a fresh white probe.
  probing_ = true;
  token_count_ = 0;
  token_black_ = false;
  me.black = false;
  if (shards_ == 1) {
    // Degenerate circle: the token "returns" immediately, so the probe
    // completes within this very call and can be evaluated on the spot.
    circles_.fetch_add(1, std::memory_order_relaxed);
    if (me.counter == 0) {
      quiescent_.store(true, std::memory_order_release);
      return true;
    }
    return false;
  }
  token_at_.store(1, std::memory_order_release);
  return false;
}

void QuiescenceDetector::reset() {
  DLB_REQUIRE(quiescent(), "reset before a quiescence verdict");
  DLB_REQUIRE(holds_token(0), "only the initiator may reset the detector");
  // Quiescence proved every counter zero and every message drained, so
  // only the token/verdict state needs clearing; colors were whitened as
  // the deciding circle passed through.
  token_count_ = 0;
  token_black_ = false;
  probing_ = false;
  quiescent_.store(false, std::memory_order_release);
}

}  // namespace dlb
