#include "core/checkpoint.hpp"

#include <cstdlib>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "support/check.hpp"

namespace dlb {

namespace {
constexpr const char* kMagic = "dlb-checkpoint";
// Version 2: sparse ledgers.  Each processor stores its active-entry
// count followed by ascending (class, d, b) triples — O(active) bytes
// per processor instead of the version-1 dense 2n-cell rows, which at
// n = 65536 would be ~2.5 GB of text per checkpoint.  Version 1 files
// are still readable (restore only; saving always writes version 2).
constexpr int kVersion = 2;
}  // namespace

void save_checkpoint(const System& system, std::ostream& os) {
  os << kMagic << ' ' << kVersion << '\n';
  const BalancerConfig& cfg = system.config_;
  os << system.processors() << ' ' << cfg.delta << ' ' << cfg.borrow_cap
     << ' ' << (cfg.analysis_mode ? 1 : 0) << '\n';
  // Hex-encode the double so the round trip is exact.
  os.precision(17);
  os << std::hexfloat << cfg.f << std::defaultfloat << '\n';

  const auto rng_state = system.rng_.state();
  os << rng_state[0] << ' ' << rng_state[1] << ' ' << rng_state[2] << ' '
     << rng_state[3] << '\n';

  os << system.generated_.get() << ' ' << system.consumed_.get() << ' '
     << system.balance_ops_.get() << '\n';
  const CostTotals& totals = system.costs_.totals();
  os << totals.balance_ops << ' ' << totals.messages << ' '
     << totals.packets_moved << ' ' << totals.packets_moved_net << ' '
     << totals.packet_hops << ' ' << totals.partner_links << '\n';
  os << (system.partner_radius_.has_value()
             ? static_cast<long long>(*system.partner_radius_)
             : -1LL)
     << '\n';

  for (std::uint32_t p = 0; p < system.processors(); ++p) {
    const ProcessorState& st = system.procs_[p];
    const Ledger& ledger = st.ledger;
    const auto& active = ledger.active_classes();
    const auto& d_counts = ledger.active_d();
    const auto& b_counts = ledger.active_b();
    os << st.l_old << ' ' << st.local_time << ' ' << active.size() << '\n';
    for (std::size_t i = 0; i < active.size(); ++i) {
      if (i) os << ' ';
      os << active[i] << ' ' << d_counts[i] << ' ' << b_counts[i];
    }
    os << '\n';
  }
}

System load_checkpoint(std::istream& is, const Topology* topology) {
  std::string magic;
  int version = 0;
  is >> magic >> version;
  DLB_REQUIRE(is.good() && magic == kMagic, "not a dlb checkpoint");
  DLB_REQUIRE(version == 1 || version == kVersion,
              "unsupported checkpoint version");

  std::uint32_t processors = 0;
  BalancerConfig cfg;
  int analysis = 0;
  is >> processors >> cfg.delta >> cfg.borrow_cap >> analysis;
  cfg.analysis_mode = analysis != 0;
  // operator>> cannot parse hexfloat portably; go through strtod.
  std::string f_text;
  is >> f_text;
  char* end = nullptr;
  cfg.f = std::strtod(f_text.c_str(), &end);
  DLB_REQUIRE(end != f_text.c_str() && *end == '\0',
              "checkpoint f value malformed");
  DLB_REQUIRE(is.good(), "checkpoint header malformed");

  System system(processors, cfg, /*seed=*/0, topology);

  std::array<std::uint64_t, 4> rng_state{};
  is >> rng_state[0] >> rng_state[1] >> rng_state[2] >> rng_state[3];
  system.rng_ = Rng::from_state(rng_state);

  std::uint64_t generated = 0;
  std::uint64_t consumed = 0;
  std::uint64_t balance_ops = 0;
  is >> generated >> consumed >> balance_ops;
  system.generated_.set(generated);
  system.consumed_.set(consumed);
  system.balance_ops_.set(balance_ops);
  CostTotals totals;
  is >> totals.balance_ops >> totals.messages >> totals.packets_moved >>
      totals.packets_moved_net >> totals.packet_hops >>
      totals.partner_links;
  system.costs_.restore(totals);
  long long radius = -1;
  is >> radius;
  DLB_REQUIRE(is.good(), "checkpoint counters malformed");
  if (radius >= 0) {
    DLB_REQUIRE(topology != nullptr,
                "checkpoint uses neighborhood partners; topology required");
    system.partner_radius_ = static_cast<unsigned>(radius);
  }

  std::vector<std::uint32_t> cls;
  std::vector<std::int64_t> d_vals;
  std::vector<std::int64_t> b_vals;
  for (std::uint32_t p = 0; p < processors; ++p) {
    ProcessorState& st = system.procs_[p];
    is >> st.l_old >> st.local_time;
    if (version == 1) {
      // Dense rows: stream the cells into the ledger; only the nonzero
      // ones are stored (ascending order makes each insert an append).
      std::int64_t v = 0;
      for (std::uint32_t j = 0; j < processors; ++j) {
        is >> v;
        st.ledger.set_d(j, v);
      }
      for (std::uint32_t j = 0; j < processors; ++j) {
        is >> v;
        st.ledger.set_b(j, v);
      }
    } else {
      std::size_t entries = 0;
      is >> entries;
      DLB_REQUIRE(is.good() && entries <= processors,
                  "checkpoint ledger malformed");
      cls.resize(entries);
      d_vals.resize(entries);
      b_vals.resize(entries);
      for (std::size_t i = 0; i < entries; ++i)
        is >> cls[i] >> d_vals[i] >> b_vals[i];
      // apply_dealt on the fresh (empty) ledger installs the entries in
      // one pass and validates ascending order and value ranges.
      st.ledger.apply_dealt(cls.data(), entries, d_vals.data(),
                            b_vals.data());
    }
    DLB_REQUIRE(is.good(), "checkpoint ledger malformed");
  }
  system.check_invariants();
  return system;
}

LoadJournal::LoadJournal(std::uint32_t ranks, std::uint32_t interval)
    : interval_(interval), slots_(ranks) {
  DLB_REQUIRE(interval >= 1, "journal interval must be >= 1");
}

void LoadJournal::reset() {
  for (Slot& slot : slots_) slot = Slot{};
}

void LoadJournal::observe(std::uint32_t rank, std::uint32_t step,
                          std::int64_t load, std::int64_t generated,
                          std::int64_t consumed) {
  DLB_REQUIRE(rank < slots_.size(), "journal rank out of range");
  Slot& slot = slots_[rank];
  if (slot.crashed) return;  // a dead rank's slot is frozen
  slot.shadow_load = load;
  slot.generated = generated;
  slot.consumed = consumed;
  if (step % interval_ == 0) {
    slot.committed_load = load;
    slot.committed_once = true;
  }
}

std::int64_t LoadJournal::on_crash(std::uint32_t rank) {
  DLB_REQUIRE(rank < slots_.size(), "journal rank out of range");
  Slot& slot = slots_[rank];
  if (slot.crashed) return 0;
  slot.crashed = true;
  // A rank that never reached a boundary recovers as empty; everything
  // it held is drift.
  if (!slot.committed_once) slot.committed_load = 0;
  slot.crash_loss = slot.shadow_load - slot.committed_load;
  return slot.crash_loss;
}

std::int64_t LoadJournal::recovered_load(std::uint32_t rank) const {
  DLB_REQUIRE(rank < slots_.size(), "journal rank out of range");
  const Slot& slot = slots_[rank];
  return slot.crashed ? slot.committed_load : slot.shadow_load;
}

std::int64_t LoadJournal::generated(std::uint32_t rank) const {
  DLB_REQUIRE(rank < slots_.size(), "journal rank out of range");
  return slots_[rank].generated;
}

std::int64_t LoadJournal::consumed(std::uint32_t rank) const {
  DLB_REQUIRE(rank < slots_.size(), "journal rank out of range");
  return slots_[rank].consumed;
}

bool LoadJournal::crashed(std::uint32_t rank) const {
  DLB_REQUIRE(rank < slots_.size(), "journal rank out of range");
  return slots_[rank].crashed;
}

std::int64_t LoadJournal::total_crash_loss() const {
  std::int64_t loss = 0;
  for (const Slot& slot : slots_)
    if (slot.crashed) loss += slot.crash_loss;
  return loss;
}

}  // namespace dlb
