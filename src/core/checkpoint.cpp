#include "core/checkpoint.hpp"

#include <cstdlib>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "support/check.hpp"

namespace dlb {

namespace {
constexpr const char* kMagic = "dlb-checkpoint";
// Version 2: sparse ledgers.  Each processor stores its active-entry
// count followed by ascending (class, d, b) triples — O(active) bytes
// per processor instead of the version-1 dense 2n-cell rows, which at
// n = 65536 would be ~2.5 GB of text per checkpoint.  Version 1 files
// are still readable (restore only; saving always writes version 2).
constexpr int kVersion = 2;
}  // namespace

void save_checkpoint(const System& system, std::ostream& os) {
  os << kMagic << ' ' << kVersion << '\n';
  const BalancerConfig& cfg = system.config_;
  os << system.processors() << ' ' << cfg.delta << ' ' << cfg.borrow_cap
     << ' ' << (cfg.analysis_mode ? 1 : 0) << '\n';
  // Hex-encode the double so the round trip is exact.
  os.precision(17);
  os << std::hexfloat << cfg.f << std::defaultfloat << '\n';

  const auto rng_state = system.rng_.state();
  os << rng_state[0] << ' ' << rng_state[1] << ' ' << rng_state[2] << ' '
     << rng_state[3] << '\n';

  os << system.generated_ << ' ' << system.consumed_ << ' '
     << system.balance_ops_ << '\n';
  const CostTotals& totals = system.costs_.totals();
  os << totals.balance_ops << ' ' << totals.messages << ' '
     << totals.packets_moved << ' ' << totals.packets_moved_net << ' '
     << totals.packet_hops << ' ' << totals.partner_links << '\n';
  os << (system.partner_radius_.has_value()
             ? static_cast<long long>(*system.partner_radius_)
             : -1LL)
     << '\n';

  for (std::uint32_t p = 0; p < system.processors(); ++p) {
    const ProcessorState& st = system.procs_[p];
    const Ledger& ledger = st.ledger;
    const auto& active = ledger.active_classes();
    const auto& d_counts = ledger.active_d();
    const auto& b_counts = ledger.active_b();
    os << st.l_old << ' ' << st.local_time << ' ' << active.size() << '\n';
    for (std::size_t i = 0; i < active.size(); ++i) {
      if (i) os << ' ';
      os << active[i] << ' ' << d_counts[i] << ' ' << b_counts[i];
    }
    os << '\n';
  }
}

System load_checkpoint(std::istream& is, const Topology* topology) {
  std::string magic;
  int version = 0;
  is >> magic >> version;
  DLB_REQUIRE(is.good() && magic == kMagic, "not a dlb checkpoint");
  DLB_REQUIRE(version == 1 || version == kVersion,
              "unsupported checkpoint version");

  std::uint32_t processors = 0;
  BalancerConfig cfg;
  int analysis = 0;
  is >> processors >> cfg.delta >> cfg.borrow_cap >> analysis;
  cfg.analysis_mode = analysis != 0;
  // operator>> cannot parse hexfloat portably; go through strtod.
  std::string f_text;
  is >> f_text;
  char* end = nullptr;
  cfg.f = std::strtod(f_text.c_str(), &end);
  DLB_REQUIRE(end != f_text.c_str() && *end == '\0',
              "checkpoint f value malformed");
  DLB_REQUIRE(is.good(), "checkpoint header malformed");

  System system(processors, cfg, /*seed=*/0, topology);

  std::array<std::uint64_t, 4> rng_state{};
  is >> rng_state[0] >> rng_state[1] >> rng_state[2] >> rng_state[3];
  system.rng_ = Rng::from_state(rng_state);

  is >> system.generated_ >> system.consumed_ >> system.balance_ops_;
  CostTotals totals;
  is >> totals.balance_ops >> totals.messages >> totals.packets_moved >>
      totals.packets_moved_net >> totals.packet_hops >>
      totals.partner_links;
  system.costs_.restore(totals);
  long long radius = -1;
  is >> radius;
  DLB_REQUIRE(is.good(), "checkpoint counters malformed");
  if (radius >= 0) {
    DLB_REQUIRE(topology != nullptr,
                "checkpoint uses neighborhood partners; topology required");
    system.partner_radius_ = static_cast<unsigned>(radius);
  }

  std::vector<std::uint32_t> cls;
  std::vector<std::int64_t> d_vals;
  std::vector<std::int64_t> b_vals;
  for (std::uint32_t p = 0; p < processors; ++p) {
    ProcessorState& st = system.procs_[p];
    is >> st.l_old >> st.local_time;
    if (version == 1) {
      // Dense rows: stream the cells into the ledger; only the nonzero
      // ones are stored (ascending order makes each insert an append).
      std::int64_t v = 0;
      for (std::uint32_t j = 0; j < processors; ++j) {
        is >> v;
        st.ledger.set_d(j, v);
      }
      for (std::uint32_t j = 0; j < processors; ++j) {
        is >> v;
        st.ledger.set_b(j, v);
      }
    } else {
      std::size_t entries = 0;
      is >> entries;
      DLB_REQUIRE(is.good() && entries <= processors,
                  "checkpoint ledger malformed");
      cls.resize(entries);
      d_vals.resize(entries);
      b_vals.resize(entries);
      for (std::size_t i = 0; i < entries; ++i)
        is >> cls[i] >> d_vals[i] >> b_vals[i];
      // apply_dealt on the fresh (empty) ledger installs the entries in
      // one pass and validates ascending order and value ranges.
      st.ledger.apply_dealt(cls.data(), entries, d_vals.data(),
                            b_vals.data());
    }
    DLB_REQUIRE(is.good(), "checkpoint ledger malformed");
  }
  system.check_invariants();
  return system;
}

}  // namespace dlb
