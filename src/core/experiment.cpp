#include "core/experiment.hpp"

#include "support/check.hpp"

namespace dlb {

std::vector<RunSeeds> derive_run_seeds(const ExperimentSpec& spec) {
  DLB_REQUIRE(spec.runs >= 1, "experiment needs at least one run");
  Rng master(spec.seed);
  std::vector<RunSeeds> seeds;
  seeds.reserve(spec.runs);
  for (std::uint32_t run = 0; run < spec.runs; ++run) {
    Rng workload_rng = master.split();
    const std::uint64_t system_seed = master.next();
    seeds.push_back(RunSeeds{workload_rng, system_seed});
  }
  return seeds;
}

void run_single(const ExperimentSpec& spec,
                const WorkloadFactory& make_workload, RunSeeds seeds,
                std::uint32_t run_index, Recorder& recorder) {
  spec.config.validate(spec.processors);
  const Workload workload =
      make_workload(spec.processors, spec.horizon, seeds.workload_rng);
  recorder.begin_run(run_index);
  System system(spec.processors, spec.config, seeds.system_seed);
  system.attach_recorder(&recorder);
  system.run(workload);
  system.check_invariants();
  recorder.end_run();
}

void run_experiment(const ExperimentSpec& spec,
                    const WorkloadFactory& make_workload,
                    Recorder& recorder) {
  const std::vector<RunSeeds> seeds = derive_run_seeds(spec);
  for (std::uint32_t run = 0; run < spec.runs; ++run)
    run_single(spec, make_workload, seeds[run], run, recorder);
}

WorkloadFactory paper_workload_factory(const WorkloadParams& params) {
  return [params](std::uint32_t processors, std::uint32_t horizon,
                  Rng& rng) {
    return Workload::paper_benchmark(processors, horizon, params, rng);
  };
}

}  // namespace dlb
