// Payload-carrying packets: ItemSystem<T> keeps real task objects in
// lockstep with the balancer's packet counts.
//
// The paper's packets "represent data or processes" with identical
// characteristics; the System tracks only counts.  Applications, though,
// have actual objects (search nodes, render tiles, Prolog goals).
// ItemSystem<T> owns one deque of T per processor and mirrors every load
// change of an embedded System:
//   produce(p, item)  -> System::generate(p)   + push item on p
//   consume(p)        -> System::consume(p)    + pop an item from p
//   balancing/borrow migrations (reported through the Recorder's
//   on_migration hook) move the corresponding items between deques.
// Migrated items are taken from the back of the sender's deque (newest
// first, the work-stealing convention that keeps old/cheap items local).
//
// Invariant (verified by check()): queue_size(p) == System::load(p) for
// every p at every quiescent point.
#pragma once

#include <deque>
#include <optional>

#include "core/system.hpp"
#include "support/check.hpp"

namespace dlb {

template <typename T>
class ItemSystem final : private Recorder {
 public:
  /// `topology` (optional) enables hop-cost accounting and neighborhood
  /// partner restriction, exactly as for System.
  ItemSystem(std::uint32_t processors, BalancerConfig config,
             std::uint64_t seed, const Topology* topology = nullptr)
      : system_(processors, config, seed, topology), queues_(processors) {
    system_.attach_recorder(this);
  }

  /// Passthrough to System::restrict_partners_to_neighborhood.
  void restrict_partners_to_neighborhood(unsigned radius) {
    system_.restrict_partners_to_neighborhood(radius);
  }

  // The embedded System holds a pointer to *this as its recorder.
  ItemSystem(const ItemSystem&) = delete;
  ItemSystem& operator=(const ItemSystem&) = delete;

  /// The application created a work item on processor p.
  void produce(std::uint32_t p, T item) {
    DLB_REQUIRE(p < queues_.size(), "processor id out of range");
    queues_[p].push_back(std::move(item));
    system_.generate(p);
  }

  /// The application wants one work item on processor p; nullopt when
  /// the balancer could not provide one (processor truly starved).
  std::optional<T> consume(std::uint32_t p) {
    DLB_REQUIRE(p < queues_.size(), "processor id out of range");
    if (!system_.consume(p)) return std::nullopt;
    // The consume (and any settlement migrations it triggered) has been
    // mirrored into the queues; the consumed item is taken oldest-first.
    DLB_ENSURE(!queues_[p].empty(), "queue desynchronized from load");
    T item = std::move(queues_[p].front());
    queues_[p].pop_front();
    return item;
  }

  std::size_t queue_size(std::uint32_t p) const {
    DLB_REQUIRE(p < queues_.size(), "processor id out of range");
    return queues_[p].size();
  }

  /// Read-only access to a processor's pending items.
  const std::deque<T>& queue(std::uint32_t p) const {
    DLB_REQUIRE(p < queues_.size(), "processor id out of range");
    return queues_[p];
  }

  std::size_t total_items() const {
    std::size_t total = 0;
    for (const auto& q : queues_) total += q.size();
    return total;
  }

  /// The embedded balancer (for inspection and theory checks).  Callers
  /// must not mutate loads through it directly — use produce/consume.
  const System& system() const { return system_; }

  /// Verifies queue/load synchronization and the System's own
  /// invariants.
  void check() const {
    for (std::uint32_t p = 0; p < queues_.size(); ++p) {
      DLB_ENSURE(static_cast<std::int64_t>(queues_[p].size()) ==
                     system_.load(p),
                 "item queue out of sync with packet count");
    }
    system_.check_invariants();
  }

 private:
  // Consume pops oldest-first; migration takes newest-first, so freshly
  // spawned (typically deepest/most speculative) work travels.
  void on_migration(std::uint32_t from, std::uint32_t to,
                    std::uint64_t count) override {
    auto& src = queues_[from];
    auto& dst = queues_[to];
    DLB_ENSURE(src.size() >= count, "migration exceeds sender queue");
    for (std::uint64_t i = 0; i < count; ++i) {
      dst.push_back(std::move(src.back()));
      src.pop_back();
    }
  }

  System system_;
  std::vector<std::deque<T>> queues_;
};

}  // namespace dlb
