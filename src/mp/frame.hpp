// Wire format of the socket transport: length-prefixed, checksummed
// frames carrying the MpPayload word encoding.
//
// Stream sockets preserve order and bytes but not message boundaries,
// so every message travels as one frame:
//
//   offset  size  field
//   0       4     magic      0x444c4246 ("DLBF"), stream resync guard
//   4       4     body_len   bytes following the 12-byte header
//   8       4     checksum   FNV-1a over the body bytes
//   12      1     kind       Data / Hello / Heartbeat / Goodbye
//   13      4     source     sending rank (i32)
//   17      4     tag        message tag (i32)
//   21      4     words      payload word count (u32)
//   25      8w    payload    words, 64-bit little-endian
//
// All integers are little-endian on the wire.  The checksum is a
// correctness tripwire, not cryptography: a frame whose checksum (or
// magic, or bounds) fails to verify is *dropped and counted* — the
// transport treats corruption exactly like message loss, which the
// protocols above already survive (PR 3's declared-loss accounting).
//
// Encoding and decoding are allocation-aware: encode appends to a
// caller-owned byte vector (reused across sends) and decode parses in
// place from the receive buffer without copying the payload twice.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mp/payload.hpp"

namespace dlb {

enum class FrameKind : std::uint8_t {
  Data = 0,       // application message (source, tag, payload)
  Hello = 1,      // connection handshake; payload[0] = sender rank
  Heartbeat = 2,  // failure-detector keepalive, empty payload
  Goodbye = 3,    // clean termination announcement, empty payload
};

struct FrameHeader {
  FrameKind kind = FrameKind::Data;
  int source = -1;
  int tag = 0;
  std::uint32_t words = 0;
};

namespace frame {

inline constexpr std::uint32_t kMagic = 0x444c4246u;  // "DLBF"
inline constexpr std::size_t kHeaderBytes = 12;       // magic+len+checksum
inline constexpr std::size_t kBodyFixedBytes = 13;    // kind+source+tag+words
/// Upper bound on payload words per frame — far above any protocol
/// message, low enough that a corrupted length cannot ask the receiver
/// to buffer gigabytes before the checksum verdict.
inline constexpr std::uint32_t kMaxWords = 1u << 20;

inline void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

inline void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

inline std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

inline std::uint64_t get_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

/// FNV-1a over `len` bytes — tiny, dependency-free, good enough to
/// catch truncation, bit rot and framing bugs.
inline std::uint32_t fnv1a(const std::uint8_t* data, std::size_t len) {
  std::uint32_t h = 2166136261u;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 16777619u;
  }
  return h;
}

/// Appends one complete frame to `out`.
inline void encode(std::vector<std::uint8_t>& out, const FrameHeader& header,
                   const std::int64_t* words, std::size_t count) {
  const std::size_t body_len = kBodyFixedBytes + count * 8;
  const std::size_t body_at = out.size() + kHeaderBytes;
  put_u32(out, kMagic);
  put_u32(out, static_cast<std::uint32_t>(body_len));
  put_u32(out, 0);  // checksum backpatched below
  out.push_back(static_cast<std::uint8_t>(header.kind));
  put_u32(out, static_cast<std::uint32_t>(header.source));
  put_u32(out, static_cast<std::uint32_t>(header.tag));
  put_u32(out, static_cast<std::uint32_t>(count));
  for (std::size_t i = 0; i < count; ++i)
    put_u64(out, static_cast<std::uint64_t>(words[i]));
  const std::uint32_t sum = fnv1a(out.data() + body_at, body_len);
  out[body_at - 4] = static_cast<std::uint8_t>(sum);
  out[body_at - 3] = static_cast<std::uint8_t>(sum >> 8);
  out[body_at - 2] = static_cast<std::uint8_t>(sum >> 16);
  out[body_at - 1] = static_cast<std::uint8_t>(sum >> 24);
}

enum class DecodeStatus {
  NeedMore,   // buffer holds a frame prefix; read more bytes
  Ok,         // one frame decoded; `consumed` bytes may be discarded
  Corrupt,    // bad magic/length/checksum; `consumed` bytes skipped
};

struct Decoded {
  DecodeStatus status = DecodeStatus::NeedMore;
  std::size_t consumed = 0;
  FrameHeader header;
  const std::uint8_t* words = nullptr;  // into the input buffer
};

/// Attempts to decode one frame from the front of [data, data+len).
/// On Corrupt the caller should drop `consumed` bytes (resync will
/// re-attempt at the next byte) and count the event.
inline Decoded decode(const std::uint8_t* data, std::size_t len) {
  Decoded d;
  if (len < kHeaderBytes) return d;
  if (get_u32(data) != kMagic) {
    d.status = DecodeStatus::Corrupt;
    d.consumed = 1;  // slide one byte: resync on the next magic
    return d;
  }
  const std::uint32_t body_len = get_u32(data + 4);
  if (body_len < kBodyFixedBytes ||
      body_len > kBodyFixedBytes + std::size_t{kMaxWords} * 8) {
    d.status = DecodeStatus::Corrupt;
    d.consumed = 1;
    return d;
  }
  if (len < kHeaderBytes + body_len) return d;  // NeedMore
  const std::uint8_t* body = data + kHeaderBytes;
  if (fnv1a(body, body_len) != get_u32(data + 8)) {
    d.status = DecodeStatus::Corrupt;
    d.consumed = kHeaderBytes + body_len;
    return d;
  }
  const std::uint32_t words = get_u32(body + 9);
  if (kBodyFixedBytes + std::size_t{words} * 8 != body_len) {
    d.status = DecodeStatus::Corrupt;
    d.consumed = kHeaderBytes + body_len;
    return d;
  }
  d.status = DecodeStatus::Ok;
  d.consumed = kHeaderBytes + body_len;
  d.header.kind = static_cast<FrameKind>(body[0]);
  d.header.source = static_cast<int>(get_u32(body + 1));
  d.header.tag = static_cast<int>(get_u32(body + 5));
  d.header.words = words;
  d.words = body + kBodyFixedBytes;
  return d;
}

/// Copies a decoded frame's words into a payload (pooled when `pool`
/// is given).  Kept out of decode() so header-only peeks stay free.
inline void read_words(const Decoded& d, MpPayload& payload,
                       PayloadPool* pool) {
  // Words are 8-byte little-endian but possibly unaligned in the rx
  // buffer; stage through a small stack array for the aligned assign.
  std::int64_t stack[MpPayload::kInlineWords];
  if (d.header.words <= MpPayload::kInlineWords) {
    for (std::uint32_t i = 0; i < d.header.words; ++i)
      stack[i] = static_cast<std::int64_t>(get_u64(d.words + i * 8));
    payload.assign(stack, d.header.words, pool);
    return;
  }
  std::vector<std::int64_t> heap(d.header.words);
  for (std::uint32_t i = 0; i < d.header.words; ++i)
    heap[i] = static_cast<std::int64_t>(get_u64(d.words + i * 8));
  payload.assign(heap.data(), d.header.words, pool);
}

}  // namespace frame
}  // namespace dlb
