// Seeded fault injection as a transport decorator.
//
// PR 3 taught the in-process World to drop/duplicate/delay messages
// from per-link SplitMix64 streams; with the transport seam the dice
// move here, *above* the backend, so the identical (plan seed, traffic)
// pair produces the identical fault schedule whether the bytes travel
// through in-process mailboxes or real sockets.  The decision streams
// are keyed exactly as before — (plan seed, source, dest) — and only
// the owning rank's thread/process ever touches its outgoing links, so
// determinism needs no locks.
//
// Semantics preserved verbatim from the pre-seam World::faulty_send:
//   - a send to a peer already known *dead* is discarded before any
//     dice roll (the wire leads nowhere; counted as sends_to_dead),
//   - drop: the message vanishes, the held slot is untouched,
//   - delay: the message is stashed and released just after the next
//     message that actually flows on the link (deterministic reorder);
//     flush() releases stragglers at clean termination, a crash
//     strands them,
//   - duplicate: delivered twice.
//
// Tags at or above Transport::kReservedTagFloor bypass the dice: the
// control plane (collective rounds, handshakes) is modelled as
// reliable, mirroring the in-process collectives' contract.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "mp/fault.hpp"
#include "mp/message.hpp"
#include "mp/transport.hpp"
#include "obs/metrics.hpp"

namespace dlb {

/// Shared fault accounting: counter cells are optional (null = detached
/// metrics); `stats` guarded by `mutex` (never hot — fault paths only).
struct FaultSink {
  std::mutex* mutex = nullptr;
  FaultStats* stats = nullptr;
  obs::Counter* dropped = nullptr;
  obs::Counter* duplicated = nullptr;
  obs::Counter* delayed = nullptr;
  obs::Counter* sends_to_dead = nullptr;
};

class FaultyTransport : public Transport {
 public:
  /// Decorates `inner` with the plan's per-link fault streams for this
  /// endpoint's outgoing links.  `sink.stats`/`sink.mutex` must outlive
  /// the decorator; counters may be null.
  FaultyTransport(Transport& inner, const FaultPlan& plan,
                  const FaultSink& sink);

  int rank() const override { return inner_.rank(); }
  int size() const override { return inner_.size(); }
  void send(int dest, int tag, const std::int64_t* words,
            std::size_t count) override;
  MpMessage recv(int source, int tag) override {
    return inner_.recv(source, tag);
  }
  std::optional<MpMessage> recv_until(
      int source, int tag,
      std::chrono::steady_clock::time_point deadline) override {
    return inner_.recv_until(source, tag, deadline);
  }
  std::optional<MpMessage> try_recv(int source, int tag) override {
    return inner_.try_recv(source, tag);
  }
  PeerState peer_state(int rank) const override {
    return inner_.peer_state(rank);
  }

  /// Releases every held (delayed) message to its non-dead destination.
  /// Called on clean termination; a crash skips it (stranded traffic).
  void flush();

  /// flush() then close the inner transport.
  void close() override;

 private:
  struct HeldMessage {
    int tag = 0;
    MpPayload payload;
  };
  struct Link {
    LinkFaultState faults;
    std::optional<HeldMessage> held;
  };

  void count_fault(std::uint64_t FaultStats::*counter, obs::Counter* cell);

  Transport& inner_;
  FaultSink sink_;
  std::vector<Link> links_;  // by destination rank
};

}  // namespace dlb
