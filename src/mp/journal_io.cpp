#include "mp/journal_io.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "support/check.hpp"

namespace dlb {

namespace {

void write_all(int fd, const char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, data + off, len - off);
    if (n < 0 && errno == EINTR) continue;
    DLB_ENSURE(n > 0, "journal write failed");
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

JournalWriter::~JournalWriter() { close(); }

void JournalWriter::open(const std::string& path, int rank,
                         std::uint32_t interval) {
  DLB_REQUIRE(fd_ < 0, "journal already open");
  DLB_REQUIRE(interval >= 1, "journal interval must be >= 1");
  fd_ = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_APPEND, 0644);
  DLB_ENSURE(fd_ >= 0, "cannot create journal file");
  char line[96];
  const int len = std::snprintf(line, sizeof(line), "dlb-journal 1 %d %u\n",
                                rank, interval);
  write_all(fd_, line, static_cast<std::size_t>(len));
}

void JournalWriter::record(std::uint32_t step, std::int64_t load,
                           std::int64_t generated, std::int64_t consumed,
                           std::int64_t declared_lost) {
  DLB_REQUIRE(fd_ >= 0, "journal not open");
  char line[160];
  const int len = std::snprintf(
      line, sizeof(line),
      "o %u %" PRId64 " %" PRId64 " %" PRId64 " %" PRId64 "\n", step, load,
      generated, consumed, declared_lost);
  // One write(2) for the whole line: the kernel appends it atomically
  // for this size, so death between calls tears nothing and death
  // during the call tears at most the final line (detected on read).
  write_all(fd_, line, static_cast<std::size_t>(len));
}

void JournalWriter::close() {
  if (fd_ < 0) return;
  ::close(fd_);
  fd_ = -1;
}

std::string journal_path(const std::string& dir, int rank) {
  return dir + "/journal." + std::to_string(rank);
}

JournalRecovery recover_journal(const std::string& path) {
  JournalRecovery rec;
  std::ifstream in(path);
  if (!in.is_open()) return rec;
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  std::size_t pos = 0;
  bool have_header = false;
  while (pos < content.size()) {
    const std::size_t eol = content.find('\n', pos);
    if (eol == std::string::npos) break;  // torn trailing line: ignore
    const std::string line = content.substr(pos, eol - pos);
    pos = eol + 1;
    std::istringstream ls(line);
    if (!have_header) {
      std::string magic;
      int version = 0;
      if (!(ls >> magic >> version >> rec.rank >> rec.interval) ||
          magic != "dlb-journal" || version != 1 || rec.interval < 1)
        return rec;  // malformed header: unrecoverable
      have_header = true;
      rec.valid = true;
      continue;
    }
    std::string kind;
    std::uint32_t step = 0;
    std::int64_t load = 0, generated = 0, consumed = 0, declared = 0;
    if (!(ls >> kind >> step >> load >> generated >> consumed >> declared) ||
        kind != "o")
      continue;  // unknown/garbled line: skip, keep what we have
    rec.last_step = step;
    rec.shadow_load = load;
    rec.generated = generated;
    rec.consumed = consumed;
    rec.declared_lost = declared;
    if (step % rec.interval == 0) rec.committed_load = load;
  }
  return rec;
}

}  // namespace dlb
