// Multi-process SPMD balancer runs: fork the ranks (mp/process_group),
// wire them with the socket transport, run the shared rank body
// (mp/spmd_rank.hpp), and assemble the machine-wide report from what
// survives each process — a report file for clean exits, the durable
// journal mirror for ranks that died.
//
// Crash/recovery semantics (the whole point of this runner):
//   - A scheduled kill (`plan.kill(rank, step)`) is a *real* SIGKILL
//     the rank delivers to itself at that step's tick — peers observe
//     an actual process death through the transport's failure
//     detector, not a simulated flag.
//   - With `restart_dead`, every killed rank is re-forked after the
//     run; the new process replays the on-disk journal
//     (mp/journal_io.hpp) and reports the recovered load — real
//     cross-process recovery from nothing but the file system.
//   - Conservation is assembled exactly like the in-process runner:
//     a dead rank contributes its last committed (checkpoint-boundary)
//     load, its drift past that boundary is crash loss, and the losses
//     it *declared* before dying ride in the journal lines.  Then
//       sum(final) == generated - consumed - transfer_lost - crash_lost
//     must hold exactly, even under drop faults plus kills.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "mp/fault.hpp"
#include "mp/spmd_balance.hpp"
#include "obs/metrics.hpp"
#include "workload/trace.hpp"

namespace dlb {

struct SocketRunOptions {
  int ranks = 4;
  bool tcp = false;  // TCP loopback instead of Unix-domain sockets
  SpmdParams params;
  /// Drop/dup/delay streams (applied by the FaultyTransport decorator
  /// in every child) and the kill schedule (self-SIGKILL at tick).
  FaultPlan plan;
  /// Re-fork killed ranks after the run to replay their journals.
  bool restart_dead = false;
  std::chrono::milliseconds heartbeat{50};
  /// Generous: false suspicion of a live rank would fork the
  /// replicated decision streams (see mp/remote_comm.hpp).
  std::chrono::milliseconds suspect_after{5000};
  std::chrono::milliseconds connect_timeout{10000};
  std::chrono::milliseconds run_timeout{120000};
  /// Cross-process observability.  When any of the three below is set,
  /// every rank attaches a private MetricsRegistry + TraceBuffer to
  /// its transport, clock-syncs against rank 0 right after the
  /// rendezvous (mp/clock_sync.hpp), flushes a durable metrics
  /// snapshot next to the journal every step, and exports a rank trace
  /// file at clean exit or scheduled kill; the parent then merges
  /// everything (obs/merge.hpp) into SocketRunResult::merged_metrics
  /// and the files below.
  std::string trace_out;    // merged Perfetto trace path; empty = none
  std::string metrics_out;  // merged machine-metrics JSON; empty = none
  bool collect_obs = false; // merge in-memory only (tests)
};

struct SocketRunResult {
  SpmdReport report;
  /// Per rank: 0 for a clean conserving exit; <0 encodes "killed by
  /// signal -term_signal" (e.g. -9 for SIGKILL).
  std::vector<int> exit_codes;
  std::vector<std::uint8_t> killed;     // died by signal during the run
  std::vector<std::uint8_t> restarted;  // re-forked for journal replay
  /// For restarted ranks: the load their new process recovered from
  /// the journal (== report.final_loads[r] when replay is faithful).
  std::vector<std::int64_t> recovered_loads;
  /// Rendezvous/journal directory (removed before returning unless a
  /// child behaved unexpectedly; kept then, for post-mortems).
  std::string dir;
  std::uint64_t transport_retries = 0;  // summed connect retries
  /// Machine-level metrics (observability runs only): every rank's
  /// instruments both under a "rank<r>." prefix and folded into an
  /// unprefixed aggregate (counters/gauges add, histograms cell-merge).
  obs::MetricsSnapshot merged_metrics;
  /// Send/recv flow pairs the trace merger matched across ranks.
  std::uint64_t matched_flow_pairs = 0;
};

/// Runs the balancer over `trace` on `opts.ranks` forked processes.
/// Throws contract_error if the group does not finish within
/// `run_timeout` (stragglers are killed first).
SocketRunResult run_spmd_balancer_socket(const Trace& trace,
                                         const SocketRunOptions& opts);

}  // namespace dlb
