// The transport seam of the message-passing layer.
//
// `Comm` (mp/communicator.hpp) exposes the SPMD programming model —
// ranks, tagged point-to-point messages, collectives.  Everything a
// backend must supply to carry that model is collected here as the
// `Transport` interface: tagged sends, matching receives with monotonic
// deadlines, and a per-peer liveness verdict.  Two backends implement
// it:
//
//   LocalTransport   (mp/communicator.hpp)  one OS process, one thread
//                    per rank, delivery through in-process mailboxes —
//                    the original substrate, unchanged in behaviour.
//   SocketTransport  (mp/socket_transport.hpp)  one OS process per
//                    rank, length-prefixed + checksummed frames over
//                    Unix-domain (or TCP-loopback) stream sockets, a
//                    heartbeat failure detector feeding the same
//                    alive-mask path.
//
// The seeded fault injector sits *above* the seam as a decorator
// (mp/fault_transport.hpp), so an identical (seed, traffic) pair
// produces the identical drop/dup/delay schedule against either
// backend.
//
// Contracts shared by all backends:
//   - send() never blocks the caller indefinitely (buffered locally
//     when the peer is slow) and silently discards traffic to a peer
//     already known dead (counted by the caller-visible stats).
//   - recv_until() honours a std::chrono::steady_clock deadline — the
//     monotonic clock, immune to wall-clock steps — and returns early
//     with nullopt when no matching message can ever arrive (source
//     dead or cleanly terminated with nothing queued).
//   - Matching follows MPI convention: source -1 matches any source,
//     tag -1 matches any tag.  Per ordered link, matching receives see
//     messages in send order.
//   - Tags at or above kReservedTagFloor belong to the transport /
//     control plane (collective rounds, acks); application protocols
//     must stay below it.  The fault decorator never touches reserved
//     tags — the control plane is modelled as reliable, exactly like
//     the in-process collectives (see mp/communicator.hpp).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>

#include "mp/message.hpp"

namespace dlb {

/// Liveness of a peer as this endpoint currently believes it.
enum class PeerState : std::uint8_t {
  Alive = 0,       // responsive (or not yet proven otherwise)
  Dead = 1,        // crashed: EOF/reset, missed heartbeats, or a fault
                   // plan's scheduled kill
  Terminated = 2,  // ran off the end of its program and said goodbye
};

class Transport {
 public:
  /// First tag reserved for transport-internal traffic.  Application
  /// tags must be < kReservedTagFloor; the fault decorator passes
  /// reserved tags through un-diced.
  static constexpr int kReservedTagFloor = 0x7fff0000;

  virtual ~Transport() = default;

  virtual int rank() const = 0;
  virtual int size() const = 0;

  /// Buffered, non-blocking send of `count` 64-bit words to `dest`.
  virtual void send(int dest, int tag, const std::int64_t* words,
                    std::size_t count) = 0;

  /// Blocking receive of the oldest matching message.  Raises
  /// contract_error when no matching message can ever arrive (source —
  /// or, for any-source, every peer — dead/terminated, nothing queued).
  virtual MpMessage recv(int source, int tag) = 0;

  /// Oldest matching message, waiting at most until `deadline`
  /// (steady_clock).  nullopt on deadline expiry, and early-nullopt
  /// when nothing matching can ever arrive.
  virtual std::optional<MpMessage> recv_until(
      int source, int tag, std::chrono::steady_clock::time_point deadline) = 0;

  /// Non-blocking probe-and-receive.
  virtual std::optional<MpMessage> try_recv(int source, int tag) = 0;

  /// This endpoint's current belief about `rank` (its own rank reports
  /// Alive until it terminates).
  virtual PeerState peer_state(int rank) const = 0;

  /// Clean shutdown: announce termination to peers and release
  /// resources.  Idempotent.  A crash is the *absence* of this call.
  virtual void close() = 0;

  bool peer_alive(int r) const { return peer_state(r) == PeerState::Alive; }
  bool peer_dead(int r) const { return peer_state(r) == PeerState::Dead; }

  /// Live peers including self (unless self terminated).
  int live_count() const {
    int live = 0;
    for (int r = 0; r < size(); ++r)
      if (peer_state(r) == PeerState::Alive) ++live;
    return live;
  }
};

}  // namespace dlb
