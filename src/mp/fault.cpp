#include "mp/fault.hpp"

namespace dlb {

void LinkFaultState::reset(std::uint64_t plan_seed, int source, int dest,
                           const LinkFaultConfig& config) {
  config_ = config;
  // Derive an independent stream per ordered link: hash the link id into
  // the plan seed through SplitMix64 (the same construction Rng uses to
  // expand seeds), so neighbouring links do not share correlated draws.
  SplitMix64 mix(plan_seed);
  const std::uint64_t base = mix.next();
  const std::uint64_t link =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(source)) << 32) |
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(dest));
  rng_ = Rng(base ^ (link * 0x9e3779b97f4a7c15ULL));
}

FaultDecision LinkFaultState::next() {
  FaultDecision d;
  if (!config_.any()) return d;
  // One uniform draw per knob keeps the stream length independent of the
  // probabilities, so changing one probability does not reshuffle the
  // other faults' positions in the schedule.
  const double u_drop = rng_.uniform01();
  const double u_dup = rng_.uniform01();
  const double u_delay = rng_.uniform01();
  if (u_drop < config_.drop) {
    d.drop = true;
    return d;  // a dropped message cannot also be duplicated or delayed
  }
  d.duplicate = u_dup < config_.duplicate;
  d.delay = u_delay < config_.delay;
  return d;
}

}  // namespace dlb
