#include "mp/spmd_balance.hpp"

#include <algorithm>

#include "mp/spmd_rank.hpp"
#include "support/check.hpp"

namespace dlb {

SpmdReport run_spmd_balancer(World& world, const Trace& trace,
                             const SpmdParams& params) {
  const int n = world.size();
  DLB_REQUIRE(trace.processors() == static_cast<std::uint32_t>(n),
              "trace size must match the world");
  DLB_REQUIRE(params.f > 1.0, "spmd balancer requires f > 1");
  DLB_REQUIRE(params.delta >= 1, "delta must be >= 1");

  // Per-rank tallies: one writer per slot (that rank's thread), read
  // only after the launch joined.  The rank body itself lives in
  // mp/spmd_rank.hpp, shared with the socket runner.
  std::vector<RankTallies> tallies(static_cast<std::size_t>(n));

  world.launch([&](Comm& comm) {
    spmd_balance_rank(comm, trace, params,
                      tallies[static_cast<std::size_t>(comm.rank())]);
  });

  // Assemble the machine-wide report from the journal (crash-exact
  // counters), the world's fault accounting and the per-rank tallies.
  const LoadJournal& journal = world.journal();
  const FaultStats stats = world.fault_stats();
  SpmdReport report;
  report.final_loads.resize(static_cast<std::size_t>(n));
  bool first_live = true;
  std::int64_t live_total = 0;
  int live_ranks = 0;
  for (int r = 0; r < n; ++r) {
    const auto ru = static_cast<std::uint32_t>(r);
    const RankTallies& tally = tallies[static_cast<std::size_t>(r)];
    report.final_loads[static_cast<std::size_t>(r)] =
        journal.recovered_load(ru);
    report.total_load += journal.recovered_load(ru);
    report.generated += journal.generated(ru);
    report.consumed += journal.consumed(ru);
    report.rounds_initiated += tally.rounds_initiated;
    report.packets_shipped += tally.packets_moved;
    report.recv_timeouts += tally.recv_timeouts;
    report.degraded_rounds =
        std::max(report.degraded_rounds, tally.degraded_rounds);
    if (!journal.crashed(ru)) {
      const std::int64_t l = journal.recovered_load(ru);
      report.min_live_load = first_live ? l : std::min(report.min_live_load, l);
      report.max_live_load = first_live ? l : std::max(report.max_live_load, l);
      first_live = false;
      live_total += l;
      ++live_ranks;
    }
  }
  report.crash_lost = journal.total_crash_loss();
  report.transfer_lost = stats.declared_lost_load - report.crash_lost;
  report.messages_dropped = stats.messages_dropped;
  report.messages_duplicated = stats.messages_duplicated;
  report.messages_delayed = stats.messages_delayed;
  report.ranks_dead = stats.ranks_dead;
  report.conserved =
      report.total_load == report.generated - report.consumed -
                               report.transfer_lost - report.crash_lost;
  if (live_ranks > 0 && live_total > 0) {
    const double avg =
        static_cast<double>(live_total) / static_cast<double>(live_ranks);
    report.max_over_avg = static_cast<double>(report.max_live_load) / avg;
  }
  return report;
}

}  // namespace dlb
