#include "mp/clock_sync.hpp"

#include <limits>

#include "support/check.hpp"

namespace dlb {

ClockSyncResult sync_clocks(Transport& transport,
                            const obs::TraceBuffer& clock, int reference,
                            int pings) {
  DLB_REQUIRE(reference >= 0 && reference < transport.size(),
              "clock sync: reference rank out of range");
  DLB_REQUIRE(pings >= 1, "clock sync: need at least one ping");
  ClockSyncResult out;
  if (transport.size() <= 1) return out;

  if (transport.rank() == reference) {
    // Serve exactly (size-1) * pings echo requests.  The control plane
    // is reliable and no rank dies before its sync round finishes, so
    // the count needs no termination handshake.
    const int expect = (transport.size() - 1) * pings;
    for (int i = 0; i < expect; ++i) {
      MpMessage msg = transport.recv(-1, kTagClockSync);
      DLB_REQUIRE(msg.payload.size() == 1, "clock sync: bad ping");
      const std::int64_t echo[2] = {
          msg.payload[0], static_cast<std::int64_t>(clock.now_ns())};
      transport.send(msg.source, kTagClockSync, echo, 2);
    }
    return out;
  }

  std::int64_t best_rtt = std::numeric_limits<std::int64_t>::max();
  for (int i = 0; i < pings; ++i) {
    const auto t0 = static_cast<std::int64_t>(clock.now_ns());
    transport.send(reference, kTagClockSync, &t0, 1);
    MpMessage msg = transport.recv(reference, kTagClockSync);
    const auto t3 = static_cast<std::int64_t>(clock.now_ns());
    DLB_REQUIRE(msg.payload.size() == 2 && msg.payload[0] == t0,
                "clock sync: bad echo");
    const std::int64_t rtt = t3 - t0;
    if (rtt < best_rtt) {
      best_rtt = rtt;
      out.offset_ns = msg.payload[1] - (t0 + t3) / 2;
      out.rtt_ns = rtt;
    }
  }
  return out;
}

}  // namespace dlb
