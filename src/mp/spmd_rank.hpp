// The per-rank body of the SPMD balancer, shared by both transports.
//
// run_spmd_balancer (spmd_balance.cpp) runs this under the in-process
// World; run_spmd_balancer_socket (spmd_socket.cpp) runs it in a forked
// process over the socket transport.  The body is a template over the
// communicator type rather than a virtual interface: the two Comm
// classes already agree on names and semantics (tick / allgather_checked
// / send / recv_for / journal / declare_lost), and the per-step loop is
// the hot path — a template keeps the local backend's calls direct.
//
// The algorithm and its conservation argument are documented in
// mp/spmd_balance.hpp; this header is the mechanism only.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "mp/message.hpp"
#include "mp/spmd_balance.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "workload/trace.hpp"

namespace dlb {

/// Per-rank outcome counters, owned by the caller (one writer per rank).
struct RankTallies {
  std::int64_t rounds_initiated = 0;
  std::int64_t packets_moved = 0;
  std::uint64_t recv_timeouts = 0;
  std::uint64_t degraded_rounds = 0;
};

namespace detail {

/// Draws up to `want` distinct live partners for `initiator` into
/// `partners` (cleared first), uniformly over the survivors, by
/// rejection from the full rank range.  Every rank runs this with the
/// same RNG stream and the same alive mask, so the draw is replicated
/// without coordination.  `draw_scratch` is reused caller scratch.
inline void draw_live_partners(std::vector<int>& partners,
                               std::vector<std::uint32_t>& draw_scratch,
                               Rng& decisions, int n, int initiator,
                               std::uint32_t want,
                               const std::vector<std::uint8_t>& alive,
                               int live_count) {
  partners.clear();
  const std::uint32_t k =
      std::min<std::uint32_t>(want, static_cast<std::uint32_t>(
                                        std::max(0, live_count - 1)));
  if (live_count == n) {
    // Healthy machine: draw exactly as the fault-free implementation
    // always did, so fault-free runs replay bit-identically.
    decisions.sample_distinct_into(draw_scratch,
                                   static_cast<std::uint32_t>(n), k,
                                   static_cast<std::uint32_t>(initiator));
    partners.assign(draw_scratch.begin(), draw_scratch.end());
    return;
  }
  partners.reserve(k);
  while (partners.size() < k) {
    const int v = static_cast<int>(
        decisions.below(static_cast<std::uint64_t>(n)));
    if (v == initiator || !alive[static_cast<std::size_t>(v)]) continue;
    if (std::find(partners.begin(), partners.end(), v) != partners.end())
      continue;
    partners.push_back(v);
  }
}

}  // namespace detail

template <class CommT>
void spmd_balance_rank(CommT& comm, const Trace& trace,
                       const SpmdParams& params, RankTallies& tally) {
  const int n = comm.size();
  const int me = comm.rank();
  const auto meu = static_cast<std::uint32_t>(me);
  const std::uint32_t steps = trace.horizon();
  std::int64_t load = 0;
  std::int64_t l_old = 0;
  std::int64_t generated = 0;
  std::int64_t consumed = 0;
  // Every rank runs the SAME decision RNG: decisions are replicated,
  // so no coordination messages are needed to agree on partners.
  Rng decisions(params.decision_seed);

  // Per-step working sets, hoisted so the steady-state loop reuses
  // their capacity instead of allocating per step/operation.
  struct Flow {
    int giver;
    int taker;
    std::int64_t amount;
    int tag;
  };
  GatherResult triggers;
  GatherResult loads;
  std::vector<Flow> flows;
  std::vector<int> partners;
  std::vector<std::uint32_t> draw_scratch;
  std::vector<int> group;
  std::vector<std::int64_t> share;
  std::vector<std::int64_t> delta_v;

  for (std::uint32_t t = 0; t < steps; ++t) {
    comm.tick();  // scheduled deaths happen here, before any step-t send
    const WorkEvent ev = trace.at(meu, t);
    if (ev.generate) {
      ++load;
      ++generated;
    }
    if (ev.consume && load > 0) {
      --load;
      ++consumed;
    }

    // Replicated balancing round over the survivors.
    const bool grew = load > l_old &&
                      static_cast<double>(load) >=
                          params.f * static_cast<double>(l_old);
    const bool shrank = load < l_old && l_old >= 1 &&
                        static_cast<double>(load) <=
                            static_cast<double>(l_old) / params.f;
    comm.allgather_checked(grew || shrank ? 1 : 0, triggers);
    comm.allgather_checked(load, loads);
    // Ranks die only at their tick, so both step-t collectives carry
    // the same alive mask and the replicated decisions below consume
    // the decision stream identically on every survivor.
    const std::vector<std::uint8_t>& alive = loads.alive;
    const int live = loads.live_count();
    if (loads.degraded) ++tally.degraded_rounds;

    int flow_seq = 0;  // unique tags: losses cannot cross-match flows
    // The step's flow plan is computed first and communicated after:
    // all sends go out (non-blocking) before any receive blocks, so a
    // receive deadline can only expire on a packet that was genuinely
    // dropped (or whose sender died).  Interleaving sends with
    // blocking receives would chain deadline budgets -- one dropped
    // packet could stall a sender for the full timeout and push its
    // own outgoing packet into a photo-finish with the downstream
    // receiver's deadline, forking otherwise-deterministic runs.
    flows.clear();
    bool participated = false;
    for (int initiator = 0; initiator < n; ++initiator) {
      if (!alive[static_cast<std::size_t>(initiator)]) continue;
      if (!triggers.values[static_cast<std::size_t>(initiator)]) continue;
      // All survivors draw the same partners from the replicated RNG,
      // uniformly over the live ranks (the paper's uniform-choice
      // model, restricted to survivors).
      detail::draw_live_partners(partners, draw_scratch, decisions, n,
                                 initiator, params.delta, alive, live);
      if (partners.empty()) continue;
      group.clear();
      group.push_back(initiator);
      group.insert(group.end(), partners.begin(), partners.end());
      std::int64_t pool = 0;
      for (int g : group) pool += loads.values[static_cast<std::size_t>(g)];
      const auto m = static_cast<std::int64_t>(group.size());
      const std::int64_t base = pool / m;
      const std::int64_t rem = pool % m;
      // Deal shares deterministically (rotation from the replicated
      // RNG keeps the remainder fair).
      const std::size_t start =
          static_cast<std::size_t>(decisions.below(group.size()));
      share.assign(group.size(), base);
      for (std::int64_t k = 0; k < rem; ++k)
        share[(start + static_cast<std::size_t>(k)) % group.size()] += 1;
      // Surplus members ship packets to deficit members (every rank
      // computes the same flow plan, but only the endpoints act on
      // it).  The plan is recorded here and executed below.
      delta_v.assign(group.size(), 0);
      for (std::size_t i = 0; i < group.size(); ++i)
        delta_v[i] =
            share[i] - loads.values[static_cast<std::size_t>(group[i])];
      std::size_t give = 0;
      std::size_t take = 0;
      while (true) {
        while (give < group.size() && delta_v[give] >= 0) ++give;
        while (take < group.size() && delta_v[take] <= 0) ++take;
        if (give >= group.size() || take >= group.size()) break;
        const std::int64_t amount = std::min(-delta_v[give], delta_v[take]);
        const int tag =
            static_cast<int>(t) * 4096 + (flow_seq++ & 4095);
        if (group[give] == me || group[take] == me)
          flows.push_back(Flow{group[give], group[take], amount, tag});
        delta_v[give] += amount;
        delta_v[take] -= amount;
      }
      // Commit the replicated view so later groups in this step see
      // the post-balance shares.
      for (std::size_t i = 0; i < group.size(); ++i) {
        loads.values[static_cast<std::size_t>(group[i])] = share[i];
        if (group[i] == me) participated = true;
      }
      if (initiator == me) ++tally.rounds_initiated;
    }

    // Execute the plan.  The sender debits itself at send time and
    // the receiver credits itself on arrival, so a lost packet is
    // load in no one's ledger — exactly what the receiver then
    // declares lost.  Send everything first: sends never block.
    for (const Flow& f : flows) {
      if (f.giver != me) continue;
      comm.send(f.taker, f.tag, {f.amount});
      load -= f.amount;
    }
    for (const Flow& f : flows) {
      if (f.taker != me) continue;
      const std::optional<MpMessage> msg =
          comm.recv_for(f.giver, f.tag, params.recv_timeout);
      if (msg.has_value()) {
        load += msg->payload[0];
        tally.packets_moved += msg->payload[0];
      } else {
        ++tally.recv_timeouts;
        comm.declare_lost(f.amount);
      }
    }
    // Participants reset their trigger baseline (§4: an operation
    // counts as delta+1 independent operations).  The baseline is the
    // *actual* local load — under loss it may differ from the share,
    // and the next step's allgather resynchronizes the replicated
    // view with reality.
    if (participated) l_old = load;

    // Journal after the step's transfers so the shadow is exact; the
    // journal commits at checkpoint boundaries (FaultPlan interval).
    comm.journal(load, generated, consumed);
  }
}

}  // namespace dlb
