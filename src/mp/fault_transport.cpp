#include "mp/fault_transport.hpp"

namespace dlb {

FaultyTransport::FaultyTransport(Transport& inner, const FaultPlan& plan,
                                 const FaultSink& sink)
    : inner_(inner), sink_(sink) {
  links_.resize(static_cast<std::size_t>(inner.size()));
  for (int d = 0; d < inner.size(); ++d)
    links_[static_cast<std::size_t>(d)].faults.reset(
        plan.seed, inner.rank(), d, plan.default_link);
}

void FaultyTransport::count_fault(std::uint64_t FaultStats::*counter,
                                  obs::Counter* cell) {
  if (cell != nullptr) cell->add(1);
  std::lock_guard<std::mutex> lock(*sink_.mutex);
  ++(sink_.stats->*counter);
}

void FaultyTransport::send(int dest, int tag, const std::int64_t* words,
                           std::size_t count) {
  if (tag >= kReservedTagFloor) {  // control plane: reliable by contract
    inner_.send(dest, tag, words, count);
    return;
  }
  if (inner_.peer_dead(dest)) {
    // The wire to a dead rank leads nowhere; count it so protocols'
    // accounting can reconcile.  No dice roll is consumed.
    count_fault(&FaultStats::sends_to_dead, sink_.sends_to_dead);
    return;
  }
  Link& link = links_[static_cast<std::size_t>(dest)];
  const FaultDecision decision = link.faults.next();
  if (decision.drop) {
    count_fault(&FaultStats::messages_dropped, sink_.dropped);
    return;
  }
  // A message marked `delay` is stashed and released just after the next
  // message that actually flows on this link (a deterministic reorder);
  // a previously held message is released now.
  std::optional<HeldMessage> release = std::move(link.held);
  link.held.reset();
  if (decision.delay) {
    link.held.emplace();
    link.held->tag = tag;
    link.held->payload.assign(words, count, nullptr);
    count_fault(&FaultStats::messages_delayed, sink_.delayed);
    if (release)
      inner_.send(dest, release->tag, release->payload.data(),
                  release->payload.size());
    return;
  }
  if (decision.duplicate) {
    count_fault(&FaultStats::messages_duplicated, sink_.duplicated);
    inner_.send(dest, tag, words, count);  // first copy
  }
  inner_.send(dest, tag, words, count);
  if (release)
    inner_.send(dest, release->tag, release->payload.data(),
                release->payload.size());
}

void FaultyTransport::flush() {
  for (int d = 0; d < inner_.size(); ++d) {
    Link& link = links_[static_cast<std::size_t>(d)];
    if (link.held && !inner_.peer_dead(d))
      inner_.send(d, link.held->tag, link.held->payload.data(),
                  link.held->payload.size());
    link.held.reset();
  }
}

void FaultyTransport::close() {
  flush();
  inner_.close();
}

}  // namespace dlb
