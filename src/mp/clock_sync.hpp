// Pairwise clock-offset estimation for multi-process tracing.
//
// Every forked rank stamps its trace events with its own TraceBuffer
// clock (steady_clock since the buffer's construction), so timestamps
// from different ranks live on unrelated axes.  Before the workload
// starts — and before any scheduled fault can fire — all ranks run one
// round of NTP-style ping exchange against a reference rank over a
// reserved control-plane tag:
//
//   client r:  t0 = now, send {t0} ............ reference: T1 = now,
//              t3 = now on echo {t0, T1}                   echo back
//
// For each ping, offset = T1 - (t0 + t3) / 2 maps the client clock
// onto the reference clock (reference_now ~= local_now + offset); the
// sample taken over the minimum-RTT ping bounds the estimation error
// by rtt_min / 2, a few tens of microseconds over loopback — far finer
// than the millisecond-scale skew the staggered rendezvous introduces
// between buffer epochs.  The reference rank's own offset is 0 by
// definition.
//
// The exchange uses blocking receives on a reserved tag (the fault
// decorator never dices the control plane), and the reference serves a
// fixed request count, so the round needs no termination protocol.
#pragma once

#include <cstdint>

#include "mp/transport.hpp"
#include "obs/trace.hpp"

namespace dlb {

/// Reserved control-plane tag for the clock-sync exchange
/// (kReservedTagFloor + 1 is the gather round in mp/remote_comm.hpp).
inline constexpr int kTagClockSync = Transport::kReservedTagFloor + 2;

struct ClockSyncResult {
  /// reference_now_ns ~= local now_ns() + offset_ns.
  std::int64_t offset_ns = 0;
  /// RTT of the sample the offset was taken from (0 on the reference).
  std::int64_t rtt_ns = 0;
};

/// Collective: every rank must call this exactly once, right after the
/// transport mesh completes and before any traffic that could kill a
/// rank.  `clock` supplies the timestamps (the same buffer the rank's
/// trace events use, so injected epoch shifts flow into the estimate).
ClockSyncResult sync_clocks(Transport& transport, const obs::TraceBuffer& clock,
                            int reference = 0, int pings = 16);

}  // namespace dlb
