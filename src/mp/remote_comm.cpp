#include "mp/remote_comm.hpp"

#include <signal.h>
#include <unistd.h>

#include <algorithm>

#include "support/check.hpp"

namespace dlb {

SocketComm::SocketComm(Transport& transport, SocketCommConfig config)
    : transport_(&transport), config_(std::move(config)) {
  lookahead_.assign(static_cast<std::size_t>(size()), PendingRound{});
  resolved_.assign(static_cast<std::size_t>(size()), 0);
  if (!config_.journal_path.empty())
    journal_.open(config_.journal_path, rank(),
                  config_.plan.journal_interval);
}

void SocketComm::send(int dest, int tag, const std::int64_t* words,
                      std::size_t count) {
  DLB_REQUIRE(dest >= 0 && dest < size(), "invalid destination");
  DLB_REQUIRE(tag < Transport::kReservedTagFloor,
              "application tags must stay below the reserved floor");
  transport_->send(dest, tag, words, count);
}

MpMessage SocketComm::recv(int source, int tag) {
  return transport_->recv(source, tag);
}

std::optional<MpMessage> SocketComm::try_recv(int source, int tag) {
  return transport_->try_recv(source, tag);
}

std::optional<MpMessage> SocketComm::recv_for(
    int source, int tag, std::chrono::milliseconds timeout) {
  return transport_->recv_until(
      source, tag, std::chrono::steady_clock::now() + timeout);
}

void SocketComm::tick() {
  if (config_.plan.enabled() &&
      config_.plan.crash_step(rank()) == static_cast<std::int64_t>(step_)) {
    // A real crash: the kernel closes our sockets (peers see EOF), the
    // journal keeps only what record() already handed to write(2), and
    // nothing below this line runs.  SIGKILL cannot be caught, so the
    // death is as abrupt as the failure model demands.  The crash
    // instant and the on_crash flush are a courtesy of the *scheduled*
    // kill — a real crash would get neither, which is why the
    // per-journal metrics flush exists.
    if (config_.trace != nullptr)
      config_.trace->instant("crash", "crash", 0, step_);
    if (config_.on_crash) config_.on_crash(step_);
    ::kill(::getpid(), SIGKILL);
    ::_exit(137);  // unreachable backstop
  }
  if (config_.trace != nullptr)
    config_.trace->instant("step", "spmd", 0, step_);
  ++step_;
}

void SocketComm::journal(std::int64_t load, std::int64_t generated,
                         std::int64_t consumed) {
  if (journal_.is_open())
    journal_.record(step_, load, generated, consumed, declared_lost_);
  if (config_.on_journal) config_.on_journal();
}

bool SocketComm::absorb(const MpMessage& msg, GatherResult& out) {
  const int src = msg.source;
  if (src < 0 || src >= size() || msg.payload.size() < 2) return false;
  const std::int64_t msg_round = msg.payload[0];
  const std::int64_t value = msg.payload[1];
  if (msg_round == static_cast<std::int64_t>(round_)) {
    const auto s = static_cast<std::size_t>(src);
    if (resolved_[s]) return false;  // late copy of a resolved rank
    out.values[s] = value;
    out.alive[s] = 1;
    resolved_[s] = 1;
    --unresolved_;
    return true;
  }
  if (msg_round > static_cast<std::int64_t>(round_)) {
    // A fast peer already finished this round and moved on; stash its
    // next-round contribution (it can be at most one round ahead).
    PendingRound& p = lookahead_[static_cast<std::size_t>(src)];
    p.round = msg_round;
    p.value = value;
    p.armed = true;
  }
  // Older rounds: a straggler from a round we closed without it
  // (we had proven it down).  Dead stays dead; discard.
  return false;
}

void SocketComm::gather_into(std::int64_t value, GatherResult& out) {
  const int n = size();
  const int me = rank();
  ++round_;
  out.values.assign(static_cast<std::size_t>(n), 0);
  out.alive.assign(static_cast<std::size_t>(n), 0);
  std::fill(resolved_.begin(), resolved_.end(), 0);
  out.values[static_cast<std::size_t>(me)] = value;
  out.alive[static_cast<std::size_t>(me)] = 1;
  resolved_[static_cast<std::size_t>(me)] = 1;
  unresolved_ = n - 1;
  const std::int64_t msg[2] = {static_cast<std::int64_t>(round_), value};
  for (int r = 0; r < n; ++r) {
    if (r == me) continue;
    if (transport_->peer_alive(r)) transport_->send(r, kTagGather, msg, 2);
    // Stashed lookahead from the previous round resolves immediately.
    PendingRound& p = lookahead_[static_cast<std::size_t>(r)];
    if (p.armed && p.round == static_cast<std::int64_t>(round_)) {
      const auto s = static_cast<std::size_t>(r);
      out.values[s] = p.value;
      out.alive[s] = 1;
      resolved_[s] = 1;
      --unresolved_;
      p.armed = false;
    }
  }
  while (unresolved_ > 0) {
    // Drain-before-verdict (see header): consume every queued round
    // message before consulting liveness, so a peer that sent its
    // contribution and *then* died still counts for this round on
    // every survivor.
    while (auto msg_in = transport_->try_recv(-1, kTagGather))
      absorb(*msg_in, out);
    if (unresolved_ == 0) break;
    bool progressed = false;
    for (int r = 0; r < n; ++r) {
      const auto s = static_cast<std::size_t>(r);
      if (resolved_[s]) continue;
      if (!transport_->peer_alive(r)) {
        // Proven down with a drained stream: its contribution will
        // never come.  Degraded slot, zero value — same contract as
        // the in-process crash-aware collectives.
        resolved_[s] = 1;
        --unresolved_;
        progressed = true;
      }
    }
    if (unresolved_ == 0 || progressed) continue;
    // Block one slice; liveness (heartbeats, EOFs, suspicion) advances
    // inside the transport's pump, so this loop terminates within the
    // failure detector's bound even if a peer silently wedges.
    if (auto msg_in = transport_->recv_until(
            -1, kTagGather,
            std::chrono::steady_clock::now() + config_.gather_slice))
      absorb(*msg_in, out);
  }
  out.degraded = false;
  for (std::uint8_t a : out.alive)
    if (a == 0) out.degraded = true;
}

void SocketComm::barrier() { gather_into(0, gather_scratch_); }

bool SocketComm::barrier_checked() {
  gather_into(0, gather_scratch_);
  return gather_scratch_.degraded;
}

std::int64_t SocketComm::broadcast(std::int64_t value, int root) {
  DLB_REQUIRE(root >= 0 && root < size(), "invalid root");
  gather_into(value, gather_scratch_);
  return gather_scratch_.values[static_cast<std::size_t>(root)];
}

std::int64_t SocketComm::allreduce_sum(std::int64_t value) {
  gather_into(value, gather_scratch_);
  std::int64_t total = 0;
  for (std::int64_t v : gather_scratch_.values) total += v;
  return total;
}

std::int64_t SocketComm::allreduce_min(std::int64_t value) {
  gather_into(value, gather_scratch_);
  std::int64_t best = value;
  for (std::size_t r = 0; r < gather_scratch_.values.size(); ++r)
    if (gather_scratch_.alive[r])
      best = std::min(best, gather_scratch_.values[r]);
  return best;
}

std::int64_t SocketComm::allreduce_max(std::int64_t value) {
  gather_into(value, gather_scratch_);
  std::int64_t best = value;
  for (std::size_t r = 0; r < gather_scratch_.values.size(); ++r)
    if (gather_scratch_.alive[r])
      best = std::max(best, gather_scratch_.values[r]);
  return best;
}

std::vector<std::int64_t> SocketComm::allgather(std::int64_t value) {
  gather_into(value, gather_scratch_);
  return gather_scratch_.values;
}

GatherResult SocketComm::allgather_checked(std::int64_t value) {
  GatherResult out;
  gather_into(value, out);
  return out;
}

void SocketComm::allgather_checked(std::int64_t value, GatherResult& out) {
  gather_into(value, out);
}

void SocketComm::close() {
  journal_.close();
  transport_->close();
}

}  // namespace dlb
