#include "mp/communicator.hpp"

#include <algorithm>
#include <exception>
#include <string>
#include <thread>

#include "mp/fault_transport.hpp"
#include "support/check.hpp"

namespace dlb {

int Comm::size() const { return world_->size(); }

void Comm::send(int dest, int tag,
                std::initializer_list<std::int64_t> words) {
  send(dest, tag, words.begin(), words.size());
}

void Comm::send(int dest, int tag, const std::int64_t* words,
                std::size_t count) {
  DLB_REQUIRE(dest >= 0 && dest < world_->size(), "invalid destination");
  transport_->send(dest, tag, words, count);
}

MpMessage Comm::recv(int source, int tag) {
  return transport_->recv(source, tag);
}

std::optional<MpMessage> Comm::try_recv(int source, int tag) {
  return transport_->try_recv(source, tag);
}

std::optional<MpMessage> Comm::recv_for(int source, int tag,
                                        std::chrono::milliseconds timeout) {
  return transport_->recv_until(source, tag,
                                std::chrono::steady_clock::now() + timeout);
}

void Comm::barrier() {
  world_->gather_all_into(rank_, 0, gather_scratch_);
}

bool Comm::barrier_checked() {
  world_->gather_all_into(rank_, 0, gather_scratch_);
  return gather_scratch_.degraded;
}

std::int64_t Comm::broadcast(std::int64_t value, int root) {
  DLB_REQUIRE(root >= 0 && root < world_->size(), "invalid root");
  world_->gather_all_into(rank_, value, gather_scratch_);
  return gather_scratch_.values[static_cast<std::size_t>(root)];
}

std::int64_t Comm::allreduce_sum(std::int64_t value) {
  world_->gather_all_into(rank_, value, gather_scratch_);
  std::int64_t total = 0;
  for (std::int64_t v : gather_scratch_.values) total += v;
  return total;
}

std::int64_t Comm::allreduce_min(std::int64_t value) {
  world_->gather_all_into(rank_, value, gather_scratch_);
  const GatherResult& all = gather_scratch_;
  std::int64_t best = value;
  for (std::size_t r = 0; r < all.values.size(); ++r)
    if (all.alive[r]) best = std::min(best, all.values[r]);
  return best;
}

std::int64_t Comm::allreduce_max(std::int64_t value) {
  world_->gather_all_into(rank_, value, gather_scratch_);
  const GatherResult& all = gather_scratch_;
  std::int64_t best = value;
  for (std::size_t r = 0; r < all.values.size(); ++r)
    if (all.alive[r]) best = std::max(best, all.values[r]);
  return best;
}

std::vector<std::int64_t> Comm::allgather(std::int64_t value) {
  return world_->gather_all(rank_, value).values;
}

GatherResult Comm::allgather_checked(std::int64_t value) {
  return world_->gather_all(rank_, value);
}

void Comm::allgather_checked(std::int64_t value, GatherResult& out) {
  world_->gather_all_into(rank_, value, out);
}

void Comm::tick() {
  if (world_->faults_armed_ &&
      world_->plan_.crash_step(rank_) == static_cast<std::int64_t>(step_)) {
    world_->mark_dead(rank_, step_);
    throw RankCrashed{rank_, step_};
  }
  ++step_;
}

void Comm::journal(std::int64_t load, std::int64_t generated,
                   std::int64_t consumed) {
  world_->journal_.observe(static_cast<std::uint32_t>(rank_), step_, load,
                           generated, consumed);
}

void Comm::declare_lost(std::int64_t amount) {
  std::lock_guard<std::mutex> lock(world_->stats_mutex_);
  world_->stats_.declared_lost_load += amount;
}

bool Comm::rank_alive(int rank) const {
  DLB_REQUIRE(rank >= 0 && rank < world_->size(), "invalid rank");
  return world_->status(rank) == World::RankStatus::Alive;
}

World::World(int size) : size_(size) {
  DLB_REQUIRE(size >= 1, "world needs at least one rank");
  mailboxes_.reserve(static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r)
    mailboxes_.push_back(std::make_unique<Mailbox>());
  collective_.slots.assign(static_cast<std::size_t>(size), 0);
  collective_.alive_snapshot.assign(static_cast<std::size_t>(size), 1);
  statuses_ =
      std::make_unique<std::atomic<std::uint8_t>[]>(static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r)
    statuses_[static_cast<std::size_t>(r)].store(
        static_cast<std::uint8_t>(RankStatus::Alive),
        std::memory_order_relaxed);
  journal_ = LoadJournal(static_cast<std::uint32_t>(size), 1);
}

void World::set_fault_plan(FaultPlan plan) {
  DLB_REQUIRE(plan.journal_interval >= 1, "journal interval must be >= 1");
  for (const CrashEvent& c : plan.crashes)
    DLB_REQUIRE(c.rank >= 0 && c.rank < size_, "crash rank out of range");
  plan_ = std::move(plan);
}

void World::arm_launch() {
  faults_armed_ = plan_.enabled();
  for (int r = 0; r < size_; ++r)
    statuses_[static_cast<std::size_t>(r)].store(
        static_cast<std::uint8_t>(RankStatus::Alive),
        std::memory_order_release);
  // A crashed launch can strand messages and leave a round half-open;
  // re-arm from a clean slate so launches are independent.
  for (auto& box : mailboxes_) {
    std::lock_guard<std::mutex> lock(box->mutex);
    box->messages.clear();
  }
  {
    std::lock_guard<std::mutex> lock(collective_.mutex);
    collective_.arrived = 0;
    collective_.departing = 0;
    collective_.generation = 0;
    std::fill(collective_.slots.begin(), collective_.slots.end(), 0);
    std::fill(collective_.alive_snapshot.begin(),
              collective_.alive_snapshot.end(), 1);
    collective_.degraded_snapshot = false;
  }
  journal_ = LoadJournal(static_cast<std::uint32_t>(size_),
                         plan_.journal_interval);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_ = FaultStats{};
  }
}

void World::launch(const std::function<void(Comm&)>& body) {
  DLB_REQUIRE(static_cast<bool>(body), "launch needs a body");
  arm_launch();
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(size_));
  for (int r = 0; r < size_; ++r) {
    threads.emplace_back([this, r, &body, &first_error, &error_mutex] {
      // The transport stack is per-rank, per-launch: the in-process
      // backend, wrapped by the fault decorator when a plan is armed.
      LocalTransport local(*this, r);
      std::optional<FaultyTransport> faulty;
      if (faults_armed_)
        faulty.emplace(local, plan_,
                       FaultSink{&stats_mutex_, &stats_, wm_.dropped,
                                 wm_.duplicated, wm_.delayed,
                                 wm_.sends_to_dead});
      Transport& transport =
          faulty ? static_cast<Transport&>(*faulty) : local;
      Comm comm(*this, r, transport);
      try {
        body(comm);
        // Normal completion: release any delayed in-flight messages
        // (fault-free semantics must not lose traffic), then announce
        // termination so peers error out instead of waiting forever.
        if (faulty) faulty->flush();
        mark_terminated(r);
      } catch (const RankCrashed&) {
        // Scheduled death, already marked dead in tick(); in-flight
        // (held) packets strand with the crash.
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        mark_terminated(r);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  if (first_error) std::rethrow_exception(first_error);
}

void World::attach_metrics(obs::MetricsRegistry* registry) {
  metrics_ = registry;
  link_metrics_.clear();
  wm_ = WorldMetrics{};
  if (registry == nullptr) return;
  wm_.messages = &registry->counter("mp.messages");
  wm_.bytes = &registry->counter("mp.bytes");
  wm_.dropped = &registry->counter("mp.dropped");
  wm_.duplicated = &registry->counter("mp.duplicated");
  wm_.delayed = &registry->counter("mp.delayed");
  wm_.sends_to_dead = &registry->counter("mp.sends_to_dead");
  wm_.recv_timeouts = &registry->counter("mp.recv_timeouts");
  wm_.collective_rounds = &registry->counter("mp.collective_rounds");
  link_metrics_.resize(static_cast<std::size_t>(size_) *
                       static_cast<std::size_t>(size_));
  for (int s = 0; s < size_; ++s) {
    for (int d = 0; d < size_; ++d) {
      const std::string prefix = "mp.link." + std::to_string(s) + "->" +
                                 std::to_string(d) + ".";
      LinkMetrics& lm =
          link_metrics_[static_cast<std::size_t>(s) *
                            static_cast<std::size_t>(size_) +
                        static_cast<std::size_t>(d)];
      lm.messages = &registry->counter(prefix + "messages");
      lm.bytes = &registry->counter(prefix + "bytes");
    }
  }
}

FaultStats World::fault_stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

bool World::rank_dead(int rank) const {
  DLB_REQUIRE(rank >= 0 && rank < size_, "invalid rank");
  return status(rank) == RankStatus::Dead;
}

World::RankStatus World::status(int rank) const {
  return static_cast<RankStatus>(
      statuses_[static_cast<std::size_t>(rank)].load(
          std::memory_order_acquire));
}

void World::post(int dest, MpMessage message) {
  // Delivered-traffic accounting per ordered link (dropped messages
  // never reach here; duplicates count each copy).
  if (metrics_ != nullptr && message.source >= 0) {
    const std::uint64_t nbytes =
        message.payload.size() * sizeof(std::int64_t);
    const LinkMetrics& lm =
        link_metrics_[static_cast<std::size_t>(message.source) *
                          static_cast<std::size_t>(size_) +
                      static_cast<std::size_t>(dest)];
    lm.messages->add(1);
    lm.bytes->add(nbytes);
    wm_.messages->add(1);
    wm_.bytes->add(nbytes);
  }
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dest)];
  {
    std::lock_guard<std::mutex> lock(box.mutex);
    box.messages.push_back(std::move(message));
  }
  box.cv.notify_all();
}

void World::wake_all_mailboxes() {
  for (auto& box : mailboxes_) {
    { std::lock_guard<std::mutex> lock(box->mutex); }
    box->cv.notify_all();
  }
}

void World::mark_dead(int rank, std::uint32_t step) {
  (void)step;
  const std::int64_t drift =
      journal_.on_crash(static_cast<std::uint32_t>(rank));
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.ranks_dead;
    stats_.declared_lost_load += drift;
  }
  {
    std::lock_guard<std::mutex> lock(collective_.mutex);
    statuses_[static_cast<std::size_t>(rank)].store(
        static_cast<std::uint8_t>(RankStatus::Dead),
        std::memory_order_release);
    // Our absence may be exactly what an open round was waiting for.
    maybe_complete_round_locked();
  }
  collective_.cv.notify_all();
  wake_all_mailboxes();
}

void World::mark_terminated(int rank) {
  {
    std::lock_guard<std::mutex> lock(collective_.mutex);
    statuses_[static_cast<std::size_t>(rank)].store(
        static_cast<std::uint8_t>(RankStatus::Terminated),
        std::memory_order_release);
  }
  collective_.cv.notify_all();
  wake_all_mailboxes();
}

namespace {
bool matches(const MpMessage& msg, int source, int tag) {
  return (source < 0 || msg.source == source) &&
         (tag < 0 || msg.tag == tag);
}

std::optional<MpMessage> take_match(RingQueue<MpMessage>& messages,
                                    int source, int tag) {
  for (std::size_t i = 0; i < messages.size(); ++i) {
    if (matches(messages[i], source, tag)) {
      std::optional<MpMessage> out = std::move(messages[i]);
      messages.erase(i);
      return out;
    }
  }
  return std::nullopt;
}
}  // namespace

bool World::can_still_arrive(int receiver, int source) const {
  if (source >= 0) return status(source) == RankStatus::Alive;
  for (int r = 0; r < size_; ++r) {
    if (r == receiver) continue;
    if (status(r) == RankStatus::Alive) return true;
  }
  return false;
}

MpMessage World::wait_recv(int rank, int source, int tag) {
  DLB_REQUIRE(source < size_, "invalid source");
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(rank)];
  std::unique_lock<std::mutex> lock(box.mutex);
  while (true) {
    if (auto out = take_match(box.messages, source, tag))
      return std::move(*out);
    DLB_ENSURE(can_still_arrive(rank, source),
               "recv would block forever: source terminated or crashed "
               "with no matching message queued");
    box.cv.wait(lock);
  }
}

std::optional<MpMessage> World::poll_recv(int rank, int source, int tag) {
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(rank)];
  std::lock_guard<std::mutex> lock(box.mutex);
  return take_match(box.messages, source, tag);
}

std::optional<MpMessage> World::timed_recv(
    int rank, int source, int tag,
    std::chrono::steady_clock::time_point deadline) {
  DLB_REQUIRE(source < size_, "invalid source");
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(rank)];
  std::unique_lock<std::mutex> lock(box.mutex);
  while (true) {
    if (auto out = take_match(box.messages, source, tag)) return out;
    if (!can_still_arrive(rank, source)) return std::nullopt;
    if (box.cv.wait_until(lock, deadline) == std::cv_status::timeout) {
      auto out = take_match(box.messages, source, tag);
      if (!out.has_value() && metrics_ != nullptr)
        wm_.recv_timeouts->add(1);
      return out;
    }
  }
}

int World::live_count_locked() const {
  int live = 0;
  for (int r = 0; r < size_; ++r)
    if (status(r) == RankStatus::Alive) ++live;
  return live;
}

void World::maybe_complete_round_locked() {
  CollectiveState& c = collective_;
  if (c.arrived == 0) return;
  // Only *crashed* (Dead) ranks may be absent from a closing round --
  // that is the tolerated, degraded case.  A rank that *terminated*
  // (ran off the end of its program) signals a mismatched SPMD program:
  // leave the round open so every waiter hits the mismatch error
  // instead of silently closing a degraded round over its absence.
  for (int r = 0; r < size_; ++r)
    if (status(r) == RankStatus::Terminated) return;
  if (c.arrived < live_count_locked()) return;
  // Everyone who can still arrive has: snapshot, mark dead slots, turn
  // the round over.  (Arrivers are necessarily alive — ranks only die at
  // their own tick(), never inside a collective.)
  c.snapshot = c.slots;
  c.degraded_snapshot = false;
  for (int r = 0; r < size_; ++r) {
    const bool alive = status(r) == RankStatus::Alive;
    c.alive_snapshot[static_cast<std::size_t>(r)] = alive ? 1 : 0;
    if (!alive) {
      c.snapshot[static_cast<std::size_t>(r)] = 0;
      c.degraded_snapshot = true;
    }
  }
  c.departing = c.arrived;
  c.arrived = 0;
  ++c.generation;
  if (metrics_ != nullptr) wm_.collective_rounds->add(1);
  c.cv.notify_all();
}

GatherResult World::gather_all(int rank, std::int64_t value) {
  GatherResult result;
  gather_all_into(rank, value, result);
  return result;
}

void World::gather_all_into(int rank, std::int64_t value, GatherResult& out) {
  CollectiveState& c = collective_;
  std::unique_lock<std::mutex> lock(c.mutex);
  const auto mismatched_peer = [&] {
    for (int r = 0; r < size_; ++r)
      if (r != rank && status(r) == RankStatus::Terminated) return true;
    return false;
  };
  // Entry gate: a new round may not start while the previous round's
  // participants are still reading its snapshot.
  c.cv.wait(lock, [&] { return c.departing == 0 || mismatched_peer(); });
  DLB_ENSURE(!mismatched_peer(),
             "collective entered after a peer terminated: mismatched "
             "SPMD program (this used to deadlock)");
  const std::uint64_t generation = c.generation;
  c.slots[static_cast<std::size_t>(rank)] = value;
  ++c.arrived;
  maybe_complete_round_locked();
  while (c.generation == generation) {
    // A peer's death may have made the open round completable; any
    // waiter may promote itself to completer.  Check completion before
    // the mismatch check: a peer terminating right after this round
    // closed must not read as abandonment.
    maybe_complete_round_locked();
    if (c.generation != generation) break;
    DLB_ENSURE(!mismatched_peer(),
               "collective abandoned: a peer terminated mid-round "
               "(this used to deadlock)");
    c.cv.wait(lock);
  }
  // Copy-assign into the caller's buffers: same world size every round,
  // so after the first round this reuses their capacity.
  out.values = c.snapshot;
  out.alive = c.alive_snapshot;
  out.degraded = c.degraded_snapshot;
  if (--c.departing == 0) c.cv.notify_all();
}

void LocalTransport::send(int dest, int tag, const std::int64_t* words,
                          std::size_t count) {
  MpMessage msg;
  msg.source = rank_;
  msg.tag = tag;
  msg.payload.assign(words, count, &world_->payload_pool_);
  world_->post(dest, std::move(msg));
}

MpMessage LocalTransport::recv(int source, int tag) {
  return world_->wait_recv(rank_, source, tag);
}

std::optional<MpMessage> LocalTransport::recv_until(
    int source, int tag, std::chrono::steady_clock::time_point deadline) {
  return world_->timed_recv(rank_, source, tag, deadline);
}

std::optional<MpMessage> LocalTransport::try_recv(int source, int tag) {
  return world_->poll_recv(rank_, source, tag);
}

PeerState LocalTransport::peer_state(int rank) const {
  // RankStatus and PeerState agree on values by construction.
  return static_cast<PeerState>(world_->status(rank));
}

}  // namespace dlb
