#include "mp/communicator.hpp"

#include <algorithm>
#include <exception>
#include <thread>

#include "support/check.hpp"

namespace dlb {

int Comm::size() const { return world_->size(); }

void Comm::send(int dest, int tag, std::vector<std::int64_t> payload) {
  DLB_REQUIRE(dest >= 0 && dest < world_->size(), "invalid destination");
  MpMessage msg;
  msg.source = rank_;
  msg.tag = tag;
  msg.payload = std::move(payload);
  world_->post(dest, std::move(msg));
}

MpMessage Comm::recv(int source, int tag) {
  return world_->wait_recv(rank_, source, tag);
}

std::optional<MpMessage> Comm::try_recv(int source, int tag) {
  return world_->poll_recv(rank_, source, tag);
}

void Comm::barrier() { (void)world_->gather_all(rank_, 0); }

std::int64_t Comm::broadcast(std::int64_t value, int root) {
  DLB_REQUIRE(root >= 0 && root < world_->size(), "invalid root");
  return world_->gather_all(rank_, value)[static_cast<std::size_t>(root)];
}

std::int64_t Comm::allreduce_sum(std::int64_t value) {
  std::int64_t total = 0;
  for (std::int64_t v : world_->gather_all(rank_, value)) total += v;
  return total;
}

std::int64_t Comm::allreduce_min(std::int64_t value) {
  const auto all = world_->gather_all(rank_, value);
  return *std::min_element(all.begin(), all.end());
}

std::int64_t Comm::allreduce_max(std::int64_t value) {
  const auto all = world_->gather_all(rank_, value);
  return *std::max_element(all.begin(), all.end());
}

std::vector<std::int64_t> Comm::allgather(std::int64_t value) {
  return world_->gather_all(rank_, value);
}

World::World(int size) : size_(size) {
  DLB_REQUIRE(size >= 1, "world needs at least one rank");
  mailboxes_.reserve(static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r)
    mailboxes_.push_back(std::make_unique<Mailbox>());
  collective_.slots.assign(static_cast<std::size_t>(size), 0);
}

void World::launch(const std::function<void(Comm&)>& body) {
  DLB_REQUIRE(static_cast<bool>(body), "launch needs a body");
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(size_));
  for (int r = 0; r < size_; ++r) {
    threads.emplace_back([this, r, &body, &first_error, &error_mutex] {
      Comm comm(*this, r);
      try {
        body(comm);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  if (first_error) std::rethrow_exception(first_error);
}

void World::post(int dest, MpMessage message) {
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dest)];
  {
    std::lock_guard<std::mutex> lock(box.mutex);
    box.messages.push_back(std::move(message));
  }
  box.cv.notify_all();
}

namespace {
bool matches(const MpMessage& msg, int source, int tag) {
  return (source < 0 || msg.source == source) &&
         (tag < 0 || msg.tag == tag);
}
}  // namespace

MpMessage World::wait_recv(int rank, int source, int tag) {
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(rank)];
  std::unique_lock<std::mutex> lock(box.mutex);
  while (true) {
    for (auto it = box.messages.begin(); it != box.messages.end(); ++it) {
      if (matches(*it, source, tag)) {
        MpMessage out = std::move(*it);
        box.messages.erase(it);
        return out;
      }
    }
    box.cv.wait(lock);
  }
}

std::optional<MpMessage> World::poll_recv(int rank, int source, int tag) {
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(rank)];
  std::lock_guard<std::mutex> lock(box.mutex);
  for (auto it = box.messages.begin(); it != box.messages.end(); ++it) {
    if (matches(*it, source, tag)) {
      MpMessage out = std::move(*it);
      box.messages.erase(it);
      return out;
    }
  }
  return std::nullopt;
}

std::vector<std::int64_t> World::gather_all(int rank, std::int64_t value) {
  CollectiveState& c = collective_;
  std::unique_lock<std::mutex> lock(c.mutex);
  // Entry gate: a new round may not start while the previous round's
  // participants are still reading its snapshot.
  c.cv.wait(lock, [&] { return c.departing == 0; });
  const std::uint64_t generation = c.generation;
  c.slots[static_cast<std::size_t>(rank)] = value;
  ++c.arrived;
  if (c.arrived == size_) {
    c.snapshot = c.slots;
    c.arrived = 0;
    c.departing = size_;
    ++c.generation;
    c.cv.notify_all();
  } else {
    c.cv.wait(lock, [&] { return c.generation != generation; });
  }
  std::vector<std::int64_t> result = c.snapshot;
  if (--c.departing == 0) c.cv.notify_all();
  return result;
}

}  // namespace dlb
