// The multi-process backend of the transport seam: one OS process per
// rank, stream sockets between every pair.
//
// Topology: rank r listens on an endpoint derived from a shared
// rendezvous directory (Unix-domain socket `<dir>/rank<r>.sock` by
// default; with `tcp` a 127.0.0.1 ephemeral port published as
// `<dir>/rank<r>.port`).  For each pair (i, j) with i < j, j connects
// to i and announces itself with a Hello frame, so the full mesh is
// n·(n-1)/2 bidirectional connections.  Connect attempts retry with
// bounded exponential backoff plus jitter until the peer's listener
// appears (ranks start in any order).
//
// Wire format: mp/frame.hpp — length-prefixed, FNV-1a-checksummed
// frames over the MpPayload word encoding.  A frame that fails its
// checksum is dropped and counted; corruption is treated exactly like
// message loss, which the protocols above already survive.
//
// Failure detector: three kinds of evidence feed the per-peer state —
//   - a Goodbye frame marks the peer Terminated (clean exit),
//   - EOF / ECONNRESET / EPIPE without a Goodbye marks it Dead
//     (a SIGKILLed process's kernel closes its sockets, so real
//     crashes are detected at OS speed, not heartbeat speed),
//   - silence longer than `suspect_after` marks it Dead (the backstop
//     for wedged-but-connected peers); heartbeats every `heartbeat`
//     keep healthy-but-quiet peers from being suspected.
// The verdict surfaces through Transport::peer_state — the same
// alive-mask path the in-process backend feeds.
//
// Blocking discipline: sends are buffered (never block the caller);
// receives run a spin-then-block pump — a short burst of non-blocking
// polls through support/backoff.hpp's two-phase waiter for the
// request-response fast path, then poll(2) with a timeout capped at
// the heartbeat interval so the detector keeps running during long
// waits.  All deadlines are std::chrono::steady_clock.
//
// Threading: a SocketTransport belongs to one thread (its rank's);
// nothing here is locked.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mp/frame.hpp"
#include "mp/payload.hpp"
#include "mp/transport.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/ring_queue.hpp"

namespace dlb {

/// Per-rank observability sinks for a SocketTransport (the
/// multi-process analogue of World::attach_metrics).  Both pointers
/// must outlive the transport; either may be null.
struct SocketObs {
  obs::TraceBuffer* trace = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

struct SocketOptions {
  /// Rendezvous directory shared by all ranks (created by the parent,
  /// e.g. ProcessGroup::make_rendezvous_dir()).
  std::string dir;
  /// false: Unix-domain sockets (default); true: TCP over 127.0.0.1.
  bool tcp = false;
  /// Keepalive period; also caps every blocking poll so the detector
  /// and outbound flushing make progress during long receives.
  std::chrono::milliseconds heartbeat{50};
  /// Silence beyond this marks a connected peer Dead.  <= 0 disables
  /// the silence detector (EOF/Goodbye evidence still applies).
  std::chrono::milliseconds suspect_after{2000};
  /// Overall budget for the startup rendezvous (bind + full mesh).
  std::chrono::milliseconds connect_timeout{10000};
};

class SocketTransport : public Transport {
 public:
  /// Performs the full rendezvous: binds this rank's endpoint, connects
  /// to every lower rank (with retry/backoff), accepts every higher
  /// rank.  Throws contract_error if the mesh is not complete within
  /// `opts.connect_timeout`.
  SocketTransport(int rank, int size, SocketOptions opts);
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  int rank() const override { return rank_; }
  int size() const override { return size_; }
  void send(int dest, int tag, const std::int64_t* words,
            std::size_t count) override;
  MpMessage recv(int source, int tag) override;
  std::optional<MpMessage> recv_until(
      int source, int tag,
      std::chrono::steady_clock::time_point deadline) override;
  std::optional<MpMessage> try_recv(int source, int tag) override;
  PeerState peer_state(int rank) const override;
  void close() override;

  /// Drives I/O without receiving: flushes pending sends, ingests
  /// inbound frames, runs the failure detector.  `budget` bounds the
  /// blocking poll (0 = non-blocking probe).
  void pump(std::chrono::milliseconds budget);

  /// Attaches observability.  Counters are resolved once here and
  /// updated lock-free on the data path; detached (the default) the
  /// data path pays one pointer-null check.  Data-frame counters:
  /// aggregate mp.sent/mp.sent_bytes and mp.delivered/
  /// mp.delivered_bytes plus per-ordered-link
  /// mp.link.<s>-><d>.{sent_messages,sent_bytes} on the sender and
  /// mp.link.<s>-><d>.{messages,bytes} on the receiver (delivered,
  /// matching the local backend's naming).  When a trace buffer is
  /// given, every framed Data send records a FlowStart and every
  /// matching decode a FlowEnd, bound by a (src, dst, per-link seq)
  /// flow id — per-link stream order makes the two sides agree without
  /// any wire overhead — and failure-detector verdicts become cat
  /// "detector" instants (arg = the indicted rank).  Call before any
  /// traffic so both ends of each link count from seq 0.
  void attach_obs(const SocketObs& obs);

  /// Diagnostics (single-threaded counters, reset never).
  std::uint64_t frames_corrupt() const { return frames_corrupt_; }
  std::uint64_t frames_sent() const { return frames_sent_; }
  std::uint64_t frames_received() const { return frames_received_; }
  std::uint64_t recv_timeouts() const { return recv_timeouts_; }
  std::uint64_t connect_retries() const { return connect_retries_; }

  /// Endpoint this rank binds in `dir` (socket path, or port file for
  /// TCP) — exposed for cleanup and tests.
  static std::string endpoint_path(const std::string& dir, int rank,
                                   bool tcp);

 private:
  struct Peer {
    int fd = -1;
    PeerState state = PeerState::Alive;
    bool said_goodbye = false;
    std::vector<std::uint8_t> rx;          // undecoded inbound bytes
    std::vector<std::uint8_t> tx;          // unflushed outbound bytes
    std::size_t tx_off = 0;                // flushed prefix of tx
    std::chrono::steady_clock::time_point last_heard{};
    std::uint64_t tx_seq = 0;  // Data frames enqueued on this link
    std::uint64_t rx_seq = 0;  // Data frames decoded off this link
  };

  void bind_listener();
  void connect_out(std::chrono::steady_clock::time_point deadline);
  void accept_in(std::chrono::steady_clock::time_point deadline);
  void adopt_fd(int peer_rank, int fd, const std::uint8_t* leftover,
                std::size_t leftover_len);
  void enqueue_frame(Peer& peer, FrameKind kind, int tag,
                     const std::int64_t* words, std::size_t count);
  void flush_peer(int peer_rank);
  void ingest(int peer_rank);
  /// `verdict` names the detector evidence ("eof", "suspect",
  /// "send_error") for the trace instant; must be a string literal.
  void mark_peer_down(int peer_rank, const char* verdict);
  bool can_still_arrive(int source) const;
  bool tracing() const { return trace_ != nullptr && trace_->enabled(); }

  int rank_;
  int size_;
  SocketOptions opts_;
  bool closed_ = false;
  int listen_fd_ = -1;
  std::string listen_path_;  // unlinked on close (unix socket / port file)
  std::vector<Peer> peers_;  // indexed by rank; self slot unused
  RingQueue<MpMessage> inbox_;  // decoded Data frames, arrival order
  PayloadPool pool_;            // spill recycling for oversized payloads
  std::vector<std::uint8_t> encode_scratch_;
  std::chrono::steady_clock::time_point last_beat_{};

  std::uint64_t frames_corrupt_ = 0;
  std::uint64_t frames_sent_ = 0;
  std::uint64_t frames_received_ = 0;
  std::uint64_t recv_timeouts_ = 0;
  std::uint64_t connect_retries_ = 0;

  // Observability (null / empty when detached; see attach_obs).
  obs::TraceBuffer* trace_ = nullptr;
  struct LinkCell {
    obs::Counter* messages = nullptr;
    obs::Counter* bytes = nullptr;
  };
  obs::Counter* m_sent_ = nullptr;
  obs::Counter* m_sent_bytes_ = nullptr;
  obs::Counter* m_delivered_ = nullptr;
  obs::Counter* m_delivered_bytes_ = nullptr;
  obs::Counter* m_corrupt_ = nullptr;
  obs::Counter* m_heartbeats_ = nullptr;
  obs::Counter* m_recv_timeouts_ = nullptr;
  std::vector<LinkCell> link_tx_;  // indexed by dest rank
  std::vector<LinkCell> link_rx_;  // indexed by source rank
};

}  // namespace dlb
