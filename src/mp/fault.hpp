// Deterministic fault injection for the message-passing substrates.
//
// The paper's guarantees assume every balance operation conserves load
// and completes; the transputer implementations [7, 8] (and our mp /
// threaded runtimes until now) took lossless, live links for granted.
// This module makes faults a first-class, *seeded* model parameter so
// the robustness of the protocols can be tested reproducibly:
//
//   FaultPlan plan;
//   plan.seed = 7;
//   plan.default_link.drop = 0.05;       // 5% of messages vanish
//   plan.kill(3, 120);                   // rank 3 dies at step 120
//   world.set_fault_plan(plan);
//
// Faults are decided by per-link SplitMix64 streams derived from the
// plan seed, so a (seed, traffic) pair always produces the identical
// fault sequence regardless of thread scheduling: link (s, d) consults
// only its own stream, and only the sender thread of s ever touches it.
//
// Three link faults are modelled:
//   drop       the message silently vanishes (sender does not know*)
//   duplicate  the message is delivered twice
//   delay      the message is held back and delivered just *after* the
//              next message on the same link (a deterministic reorder;
//              a held message with no successor is flushed when the
//              sending rank terminates)
// plus a per-rank crash schedule: kill(rank, at_step) makes that rank's
// step-counter tick throw RankCrashed, after which the rank is dead —
// it sends nothing, answers nothing, and collectives complete without
// it (degraded) instead of hanging.
//
// (*) The injector does tell the *accounting* about dropped payloads —
// this is simulation, not espionage: conservation checks need to know
// the declared loss, the protocol under test must not peek.
#pragma once

#include <cstdint>
#include <vector>

#include "support/rng.hpp"

namespace dlb {

/// Per-link fault probabilities, each in [0, 1].
struct LinkFaultConfig {
  double drop = 0.0;
  double duplicate = 0.0;
  double delay = 0.0;

  bool any() const { return drop > 0.0 || duplicate > 0.0 || delay > 0.0; }
};

/// A scheduled crash: `rank` dies when its local step counter reaches
/// `at_step` (i.e. on the tick that enters step `at_step`).
struct CrashEvent {
  int rank = -1;
  std::uint32_t at_step = 0;
};

/// The complete, seeded fault schedule for one launch.
struct FaultPlan {
  std::uint64_t seed = 0x0badfa117'0000001ULL;
  LinkFaultConfig default_link;
  std::vector<CrashEvent> crashes;
  /// Loads are journaled every `journal_interval` steps; on a crash the
  /// rank's recovered load is its last journaled value and the drift
  /// since that boundary is declared lost.
  std::uint32_t journal_interval = 1;

  FaultPlan& kill(int rank, std::uint32_t at_step) {
    crashes.push_back(CrashEvent{rank, at_step});
    return *this;
  }

  /// True when the plan can produce any fault at all.  A default plan is
  /// inert: installing it must not change behaviour.
  bool enabled() const { return default_link.any() || !crashes.empty(); }

  /// The step at which `rank` is scheduled to die, or no value.
  /// (Returned as int64 so -1 can mean "never".)
  std::int64_t crash_step(int rank) const {
    for (const CrashEvent& c : crashes)
      if (c.rank == rank) return static_cast<std::int64_t>(c.at_step);
    return -1;
  }
};

/// What the injector decided for one message on one link.
struct FaultDecision {
  bool drop = false;
  bool duplicate = false;
  bool delay = false;
};

/// The per-link decision stream.  Exactly one sender thread may use a
/// given instance (the World keeps one per ordered link), which makes
/// the stream deterministic without locks.
class LinkFaultState {
 public:
  LinkFaultState() : rng_(0) {}

  void reset(std::uint64_t plan_seed, int source, int dest,
             const LinkFaultConfig& config);

  /// Rolls the dice for the next message on this link.  Never returns
  /// both drop and duplicate/delay.
  FaultDecision next();

  const LinkFaultConfig& config() const { return config_; }

 private:
  LinkFaultConfig config_;
  Rng rng_;
};

/// Aggregate fault counters for one launch.  Written by rank threads
/// under their own locks / single-writer slots; read after the launch.
struct FaultStats {
  std::uint64_t messages_dropped = 0;
  std::uint64_t messages_duplicated = 0;
  std::uint64_t messages_delayed = 0;
  std::uint64_t sends_to_dead = 0;
  std::uint32_t ranks_dead = 0;
  /// Sum of payload "load" declared lost by protocol-level accounting
  /// (dropped transfers, aborted assigns, crash drift).  Signed: an
  /// aborted negative transfer *adds* load to the system.
  std::int64_t declared_lost_load = 0;
};

}  // namespace dlb
