#include "mp/process_group.hpp"

#include <dirent.h>
#include <signal.h>
#include <stdlib.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>

#include "support/check.hpp"

namespace dlb {

pid_t ProcessGroup::fork_rank(int rank, const std::function<int(int)>& body) {
  const pid_t pid = ::fork();
  DLB_ENSURE(pid >= 0, "fork failed");
  if (pid == 0) {
    int code = 1;
    try {
      code = body(rank);
    } catch (...) {
      code = 70;  // EX_SOFTWARE: uncaught exception in a child rank
    }
    // _exit, not exit: the child shares the parent's stdio buffers and
    // atexit registrations; running them here would corrupt the parent.
    ::_exit(code & 0xff);
  }
  return pid;
}

ProcessGroup ProcessGroup::spawn(int ranks,
                                 const std::function<int(int)>& body) {
  DLB_REQUIRE(ranks >= 1, "process group needs at least one rank");
  DLB_REQUIRE(static_cast<bool>(body), "spawn needs a body");
  ProcessGroup group;
  group.pids_.resize(static_cast<std::size_t>(ranks), -1);
  group.status_.assign(static_cast<std::size_t>(ranks), 0);
  group.done_.assign(static_cast<std::size_t>(ranks), false);
  for (int r = 0; r < ranks; ++r)
    group.pids_[static_cast<std::size_t>(r)] = fork_rank(r, body);
  return group;
}

std::string ProcessGroup::make_rendezvous_dir() {
  const char* base = ::getenv("TMPDIR");
  std::string tmpl = (base != nullptr && *base != '\0') ? base : "/tmp";
  // Unique per run (mkdtemp) so parallel CI jobs and leftover dirs from
  // killed runs can never collide on socket paths.
  tmpl += "/dlb-sock-XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  DLB_ENSURE(::mkdtemp(buf.data()) != nullptr,
             "cannot create rendezvous directory");
  return std::string(buf.data());
}

void ProcessGroup::remove_rendezvous_dir(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return;
  while (dirent* entry = ::readdir(d)) {
    if (std::strcmp(entry->d_name, ".") == 0 ||
        std::strcmp(entry->d_name, "..") == 0)
      continue;
    ::unlink((dir + "/" + entry->d_name).c_str());
  }
  ::closedir(d);
  ::rmdir(dir.c_str());
}

ProcessGroup::~ProcessGroup() {
  for (int r = 0; r < size(); ++r) {
    if (done_[static_cast<std::size_t>(r)] ||
        pids_[static_cast<std::size_t>(r)] < 0)
      continue;
    ::kill(pids_[static_cast<std::size_t>(r)], SIGKILL);
    reap(r, 0);  // blocking: a SIGKILLed child reaps immediately
  }
}

void ProcessGroup::reap(int rank, int options) {
  const std::size_t i = static_cast<std::size_t>(rank);
  if (done_[i] || pids_[i] < 0) return;
  int status = 0;
  const pid_t got = ::waitpid(pids_[i], &status, options);
  if (got == pids_[i]) {
    status_[i] = status;
    done_[i] = true;
  }
}

bool ProcessGroup::wait_all(std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (true) {
    bool all = true;
    for (int r = 0; r < size(); ++r) {
      reap(r, WNOHANG);
      if (!done_[static_cast<std::size_t>(r)]) all = false;
    }
    if (all) return true;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::microseconds{500});
  }
}

bool ProcessGroup::finished(int rank) const {
  DLB_REQUIRE(rank >= 0 && rank < size(), "invalid rank");
  return done_[static_cast<std::size_t>(rank)];
}

bool ProcessGroup::exited(int rank) const {
  DLB_REQUIRE(finished(rank), "child still running");
  return WIFEXITED(status_[static_cast<std::size_t>(rank)]);
}

int ProcessGroup::exit_code(int rank) const {
  DLB_REQUIRE(finished(rank), "child still running");
  const int status = status_[static_cast<std::size_t>(rank)];
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

int ProcessGroup::term_signal(int rank) const {
  DLB_REQUIRE(finished(rank), "child still running");
  const int status = status_[static_cast<std::size_t>(rank)];
  return WIFSIGNALED(status) ? WTERMSIG(status) : 0;
}

void ProcessGroup::kill_rank(int rank, int sig) {
  DLB_REQUIRE(rank >= 0 && rank < size(), "invalid rank");
  const std::size_t i = static_cast<std::size_t>(rank);
  if (done_[i] || pids_[i] < 0) return;
  ::kill(pids_[i], sig);
}

void ProcessGroup::respawn(int rank, const std::function<int(int)>& body) {
  DLB_REQUIRE(rank >= 0 && rank < size(), "invalid rank");
  DLB_REQUIRE(finished(rank), "respawn of a still-running rank");
  const std::size_t i = static_cast<std::size_t>(rank);
  pids_[i] = fork_rank(rank, body);
  status_[i] = 0;
  done_[i] = false;
}

}  // namespace dlb
